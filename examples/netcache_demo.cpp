// In-network computing demo (paper §3): a NetCache-style key-value cache
// in the switch, with timer-driven approximate-LRU decay and periodic
// statistics clearing — the maintenance the paper says timer events make
// possible entirely in the data plane.
//
// A client issues Zipf-distributed GETs; hot keys are answered by the
// switch. Halfway through, the popular key set SHIFTS — the timer-cleared
// statistics let the cache adapt within a few decay periods.
//
//   $ ./example_netcache_demo
#include <cstdio>

#include "edp.hpp"

using namespace edp;

namespace {

net::Packet kv_pkt(std::uint8_t op, std::uint64_t key, std::uint64_t value,
                   net::Ipv4Address src, net::Ipv4Address dst,
                   bool to_server) {
  net::KvHeader kv;
  kv.op = op;
  kv.key = key;
  kv.value = value;
  return net::PacketBuilder()
      .ethernet(net::MacAddress::from_u64(0x10), net::MacAddress::from_u64(0x20))
      .ipv4(src, dst, net::kIpProtoUdp)
      .udp(to_server ? 40000 : net::kPortKvCache,
           to_server ? net::kPortKvCache : 40000)
      .kv(kv)
      .pad_to(64)
      .build();
}

}  // namespace

int main() {
  std::printf("NetCache-style in-switch KV cache with timer-driven LRU\n\n");

  sim::Scheduler sched;
  core::EventSwitchConfig cfg;
  cfg.num_ports = 2;  // 0 = client side, 1 = server side
  core::EventSwitch sw(sched, cfg);

  apps::NetCacheConfig nc;
  nc.cache_slots = 64;
  nc.hot_thresh = 4;
  nc.decay_period = sim::Time::millis(1);
  nc.clear_every = 4;
  nc.server_ip = net::Ipv4Address(10, 0, 9, 9);
  apps::NetCacheProgram cache(nc);
  sw.set_program(&cache);

  const net::Ipv4Address client_ip(10, 0, 0, 1);
  std::uint64_t server_load = 0;
  sw.connect_tx(1, [&](net::Packet p) {  // the storage server
    auto phv = pisa::Parser::standard().parse(std::move(p));
    if (phv.kv && phv.kv->op == net::KvHeader::kGet) {
      ++server_load;
      sw.receive(1, kv_pkt(net::KvHeader::kReply, phv.kv->key,
                           phv.kv->key * 1000, nc.server_ip, client_ip,
                           /*to_server=*/false));
    }
  });
  std::uint64_t client_replies = 0;
  sw.connect_tx(0, [&](net::Packet) { ++client_replies; });

  // Phase 1 keys 0..: Zipf over base 0; phase 2 shifts popularity by 1000.
  sim::Random rng(11);
  sim::ZipfSampler zipf(128, 1.3);
  const sim::Time phase = sim::Time::millis(25);
  for (int i = 0; i < 10'000; ++i) {
    sched.at(sim::Time::micros(5 * (i + 1)), [&, i] {
      const std::uint64_t base = sched.now() >= phase ? 1000 : 0;
      const std::uint64_t key = base + zipf.sample(rng);
      sw.receive(0, kv_pkt(net::KvHeader::kGet, key, 0, client_ip,
                           nc.server_ip, /*to_server=*/true));
    });
  }

  // Report hit rate each 5 ms window.
  std::uint64_t last_hits = 0, last_total = 0;
  sim::PeriodicTask reporter(sched, sim::Time::millis(5), [&] {
    const std::uint64_t hits = cache.cache_hits();
    const std::uint64_t total = hits + cache.cache_misses();
    const std::uint64_t dh = hits - last_hits;
    const std::uint64_t dt = total - last_total;
    std::printf("  t=%-6s window hit rate %5.1f%%   (cumulative %5.1f%%)%s\n",
                sched.now().to_string().c_str(),
                dt == 0 ? 0.0 : 100.0 * static_cast<double>(dh) /
                                    static_cast<double>(dt),
                100.0 * cache.hit_rate(),
                sched.now() == phase + sim::Time::millis(5)
                    ? "   <- workload shifted"
                    : "");
    last_hits = hits;
    last_total = total;
  });
  reporter.start();

  sched.run_until(sim::Time::millis(55));
  reporter.stop();

  std::printf("\ntotals: %llu GETs, %llu served by the switch (%.1f%%), "
              "server handled %llu\n",
              static_cast<unsigned long long>(cache.cache_hits() +
                                              cache.cache_misses()),
              static_cast<unsigned long long>(cache.cache_hits()),
              100.0 * cache.hit_rate(),
              static_cast<unsigned long long>(server_load));
  std::printf("cache insertions: %llu (timer decay made cold slots "
              "replaceable after the shift)\n",
              static_cast<unsigned long long>(cache.insertions()));
  return 0;
}
