// Fast Re-Route on link-status events (paper §3/§5), side by side with
// control-plane recovery.
//
// Diamond topology: h0 - s0 = (primary via s1 | backup via s2) = s3 - h1.
// The primary link fails mid-flow. With the event architecture, s0's
// program flips to the backup the instant the LinkStatusChange event
// arrives; with the baseline, the flow bleeds packets until the control
// plane (500 us away) rewrites the route.
//
//   $ ./example_fast_reroute_demo
#include <cstdio>

#include "edp.hpp"

using namespace edp;

namespace {

struct Outcome {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
};

Outcome run(bool event_driven) {
  sim::Scheduler sched;
  topo::Network net(sched);
  core::EventSwitchConfig c3;
  c3.num_ports = 3;
  core::EventSwitchConfig c2;
  c2.num_ports = 2;
  core::EventSwitchConfig s0_cfg = c3;
  s0_cfg.event_architecture = event_driven;
  const auto s0 = net.add_switch(s0_cfg);
  const auto s1 = net.add_switch(c2);
  const auto s2 = net.add_switch(c2);
  const auto s3 = net.add_switch(c3);
  topo::Host::Config hc;
  hc.name = "h0";
  hc.ip = net::Ipv4Address(10, 0, 0, 1);
  const auto h0 = net.add_host(hc);
  hc.name = "h1";
  hc.ip = net::Ipv4Address(10, 0, 1, 1);
  const auto h1 = net.add_host(hc);
  net.connect_host(h0, s0, 0);
  net.connect_host(h1, s3, 0);
  const auto primary = net.connect_switches(s0, 1, s1, 0);
  net.connect_switches(s1, 1, s3, 1);
  net.connect_switches(s0, 2, s2, 0);
  net.connect_switches(s2, 1, s3, 2);

  apps::FrrProgram frr(3);
  frr.add_route(apps::FrrRoute{net::Ipv4Address(10, 0, 1, 0), /*primary=*/1,
                               /*backup=*/2});
  topo::L3Program p1, p2, p3;
  p1.add_route(net::Ipv4Address(10, 0, 1, 0), 24, 1);
  p2.add_route(net::Ipv4Address(10, 0, 1, 0), 24, 1);
  p3.add_route(net::Ipv4Address(10, 0, 1, 0), 24, 0);
  net.sw(s0).set_program(&frr);
  net.sw(s1).set_program(&p1);
  net.sw(s2).set_program(&p2);
  net.sw(s3).set_program(&p3);

  const sim::Time fail_at = sim::Time::millis(10);
  net.link(primary).fail_at(fail_at);
  if (!event_driven) {
    // Baseline: the control plane hears about the failure 550 us later
    // and only then rewrites the route.
    sched.at(fail_at + sim::Time::micros(550),
             [&frr] { frr.control_set_port_down(1, true); });
  }

  topo::CbrGenerator::Config gc;
  gc.flow.src = net.host(h0).ip();
  gc.flow.dst = net.host(h1).ip();
  gc.flow.packet_size = 500;
  gc.rate_bps = 100e6;  // 25k pps
  gc.stop = sim::Time::millis(20);
  topo::CbrGenerator gen(sched, net.host(h0), gc);
  gen.start();

  net.run_until(sim::Time::millis(40));
  return Outcome{gen.sent(), net.host(h1).rx_packets()};
}

}  // namespace

int main() {
  std::printf("fast re-route demo: 100 Mb/s flow, primary link dies at "
              "t=10ms\n\n");
  const Outcome ev = run(/*event_driven=*/true);
  const Outcome bl = run(/*event_driven=*/false);
  std::printf("event-driven FRR : sent %llu, delivered %llu, lost %llu\n",
              static_cast<unsigned long long>(ev.sent),
              static_cast<unsigned long long>(ev.delivered),
              static_cast<unsigned long long>(ev.sent - ev.delivered));
  std::printf("baseline + CP    : sent %llu, delivered %llu, lost %llu\n",
              static_cast<unsigned long long>(bl.sent),
              static_cast<unsigned long long>(bl.delivered),
              static_cast<unsigned long long>(bl.sent - bl.delivered));
  std::printf(
      "\nThe event-driven switch reacts within one pipeline slot of the\n"
      "LinkStatusChange event; the baseline bleeds ~latency x rate "
      "packets.\n");
  return 0;
}
