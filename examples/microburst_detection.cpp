// The paper's §2 worked example, end to end: microburst culprit detection
// with per-flow buffer occupancy maintained by enqueue/dequeue events.
//
// Topology: two senders and a sink behind a 1 Gb/s port. One sender emits
// smooth background traffic, the other violent on/off bursts. The
// event-driven detector flags the burster at ingress — before its packets
// are even buffered — while the background flow stays clean.
//
//   $ ./example_microburst_detection
#include <cstdio>

#include "edp.hpp"

using namespace edp;

int main() {
  std::printf("microburst culprit detection (paper §2, microburst.p4)\n\n");

  sim::Scheduler sched;
  topo::Network net(sched);

  core::EventSwitchConfig cfg;
  cfg.num_ports = 3;
  cfg.port_rate_bps = 1e9;  // the bottleneck
  const auto s0 = net.add_switch(cfg);

  topo::Host::Config hc;
  hc.name = "background";
  hc.ip = net::Ipv4Address(10, 0, 0, 1);
  const auto bg_host = net.add_host(hc);
  hc.name = "burster";
  hc.ip = net::Ipv4Address(10, 0, 0, 2);
  const auto burst_host = net.add_host(hc);
  hc.name = "sink";
  hc.ip = net::Ipv4Address(10, 0, 1, 1);
  const auto sink = net.add_host(hc);
  net.connect_host(bg_host, s0, 0);
  net.connect_host(burst_host, s0, 1);
  net.connect_host(sink, s0, 2);

  // The detector program: flowBufSize_reg with 1024 entries, 16 KB
  // threshold, aggregated (single-ported, §4) state realization.
  apps::MicroburstConfig mc;
  mc.num_regs = 1024;
  mc.flow_thresh = 16 * 1024;
  mc.state = apps::StateModel::kAggregated;
  apps::MicroburstProgram detector(mc);
  detector.add_route(net::Ipv4Address(10, 0, 1, 0), 24, 2);
  net.sw(s0).register_aggregated(*detector.aggregated());
  net.sw(s0).set_program(&detector);

  // Background: steady 100 Mb/s.
  topo::CbrGenerator::Config cbr;
  cbr.flow.src = net.host(bg_host).ip();
  cbr.flow.dst = net.host(sink).ip();
  cbr.rate_bps = 100e6;
  cbr.stop = sim::Time::millis(50);
  topo::CbrGenerator background(sched, net.host(bg_host), cbr);
  background.start();

  // Bursts: 50 x 1500 B at 10G every 10 ms.
  topo::BurstGenerator::Config bc;
  bc.flow.src = net.host(burst_host).ip();
  bc.flow.dst = net.host(sink).ip();
  bc.flow.packet_size = 1500;
  bc.burst_rate_bps = 10e9;
  bc.burst_packets = 50;
  bc.gap = sim::Time::millis(10);
  bc.stop = sim::Time::millis(50);
  topo::BurstGenerator burster(sched, net.host(burst_host), bc);
  burster.start();

  net.run_until(sim::Time::millis(60));

  const std::uint32_t burst_flow = net::flow_id_src_dst(
      net.host(burst_host).ip(), net.host(sink).ip());
  std::printf("traffic: background sent %llu pkts, burster sent %llu pkts "
              "in %llu bursts\n",
              static_cast<unsigned long long>(background.sent()),
              static_cast<unsigned long long>(burster.sent()),
              static_cast<unsigned long long>(burster.bursts()));
  std::printf("detections (threshold %lld B):\n",
              static_cast<long long>(mc.flow_thresh));
  for (const auto& d : detector.detections()) {
    std::printf("  t=%-10s flow %08x occupancy %6lld B  %s  %s\n",
                d.when.to_string().c_str(), d.flow_id,
                static_cast<long long>(d.occupancy),
                d.at_ingress ? "[at ingress, pre-enqueue]" : "[at egress]",
                d.flow_id == burst_flow ? "<-- the burster" : "");
  }
  std::printf("\nstate used: %zu bytes (main + enq/deq aggregation arrays); "
              "staleness max %llu cycles\n",
              detector.state_bytes(),
              static_cast<unsigned long long>(
                  detector.aggregated()->staleness_max()));
  return detector.detections().empty() ? 1 : 0;
}
