// HULA-style congestion-aware load balancing with data-plane probes
// (paper §1 and §3): a 2-ToR / 2-spine leaf-spine where each ToR's packet
// generator originates utilization probes on a timer — no control plane,
// no end-host involvement.
//
// Mid-run, an interference flow congests spine0; watch ToR0's path choice
// flip to spine1 within a probe period.
//
//   $ ./example_hula_probes
#include <cstdio>

#include "edp.hpp"

using namespace edp;

int main() {
  std::printf("HULA probes demo: 2 ToRs x 2 spines, data-plane probes "
              "every 100 us\n\n");

  sim::Scheduler sched;
  topo::Network net(sched);
  core::EventSwitchConfig cfg;
  cfg.num_ports = 3;
  const auto tor0 = net.add_switch(cfg);
  const auto tor1 = net.add_switch(cfg);
  const auto spine0 = net.add_switch(cfg);
  const auto spine1 = net.add_switch(cfg);

  topo::Host::Config hc;
  hc.name = "src";
  hc.ip = net::Ipv4Address(10, 0, 0, 5);
  const auto hsrc = net.add_host(hc);
  hc.name = "dst";
  hc.ip = net::Ipv4Address(10, 0, 1, 5);
  const auto hdst = net.add_host(hc);
  hc.name = "interference";
  hc.ip = net::Ipv4Address(10, 0, 0, 99);
  const auto hintf = net.add_host(hc);

  net.connect_host(hsrc, tor0, 0);
  net.connect_host(hdst, tor1, 0);
  net.connect_switches(tor0, 1, spine0, 0);
  net.connect_switches(tor1, 1, spine0, 1);
  net.connect_switches(tor0, 2, spine1, 0);
  net.connect_switches(tor1, 2, spine1, 1);
  net.connect_host(hintf, spine0, 2);

  const std::vector<apps::TorSubnet> subnets = {
      {net::Ipv4Address(10, 0, 0, 0), 0}, {net::Ipv4Address(10, 0, 1, 0), 1}};
  apps::HulaTorConfig t0;
  t0.tor_id = 0;
  t0.host_port = 0;
  t0.uplink_ports = {1, 2};
  t0.num_tors = 2;
  t0.probe_period = sim::Time::micros(100);
  t0.subnets = subnets;
  apps::HulaTorConfig t1 = t0;
  t1.tor_id = 1;
  apps::HulaTorProgram ptor0(t0), ptor1(t1);
  apps::HulaSpineConfig sc;
  sc.num_tors = 2;
  sc.tor_port = {0, 1};
  sc.subnets = subnets;
  apps::HulaSpineProgram pspine0(sc), pspine1(sc);
  net.sw(tor0).set_program(&ptor0);
  net.sw(tor1).set_program(&ptor1);
  net.sw(spine0).set_program(&pspine0);
  net.sw(spine1).set_program(&pspine1);

  // Data: 1 Gb/s ToR0 -> ToR1.
  topo::CbrGenerator::Config gc;
  gc.flow.src = net.host(hsrc).ip();
  gc.flow.dst = net.host(hdst).ip();
  gc.flow.packet_size = 1000;
  gc.rate_bps = 1e9;
  gc.stop = sim::Time::millis(20);
  topo::CbrGenerator gen(sched, net.host(hsrc), gc);
  gen.start();

  // Interference floods spine0 from t=5ms to t=12ms.
  topo::CbrGenerator::Config ic;
  ic.flow.src = net.host(hintf).ip();
  ic.flow.dst = net.host(hdst).ip();
  ic.flow.packet_size = 1500;
  ic.rate_bps = 9e9;
  ic.start = sim::Time::millis(5);
  ic.stop = sim::Time::millis(12);
  topo::CbrGenerator interference(sched, net.host(hintf), ic);
  interference.start();

  // Narrate ToR0's view every 2 ms.
  sim::PeriodicTask narrator(sched, sim::Time::millis(2), [&] {
    std::printf("  t=%-6s  path util to ToR1: spine0=%u spine1=%u  -> "
                "forwarding via %s\n",
                sched.now().to_string().c_str(), ptor0.path_util(1, 0),
                ptor0.path_util(1, 1),
                ptor0.best_uplink(1) == 1 ? "spine0" : "spine1");
  });
  narrator.start();

  net.run_until(sim::Time::millis(20));
  narrator.stop();

  std::printf("\nprobes: ToR0 originated %llu, ToR1 received %llu; "
              "freshness %.1f us mean (zero CP messages)\n",
              static_cast<unsigned long long>(ptor0.probes_originated()),
              static_cast<unsigned long long>(ptor1.probes_received()),
              ptor1.probe_staleness_us().mean());
  std::printf("data delivered: %llu / %llu packets\n",
              static_cast<unsigned long long>(net.host(hdst).rx_packets()),
              static_cast<unsigned long long>(gen.sent() +
                                              interference.sent()));
  return 0;
}
