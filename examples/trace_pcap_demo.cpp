// Workload tooling demo: replay a CSV packet trace through an event
// switch and capture what the switch transmits into a pcap file that
// tcpdump/Wireshark can open — with the per-flow queue state maintained by
// enqueue/dequeue events printed at the end.
//
//   $ ./example_trace_pcap_demo [trace.csv] [out.pcap]
//
// Without arguments a built-in sample trace is replayed and the capture is
// written to /tmp/edp_demo.pcap.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "edp.hpp"

using namespace edp;

namespace {

constexpr const char* kSampleTrace =
    "# time_us,src,dst,sport,dport,size\n"
    "0,10.0.0.1,10.0.1.1,1000,2000,500\n"
    "10,10.0.0.2,10.0.1.1,1001,2000,1500\n"
    "20,10.0.0.1,10.0.1.1,1000,2000,500\n"
    "25,10.0.0.3,10.0.1.1,1002,2000,64\n"
    "40,10.0.0.2,10.0.1.1,1001,2000,1500\n"
    "55,10.0.0.1,10.0.1.1,1000,2000,500\n"
    "60,10.0.0.3,10.0.1.1,1002,2000,64\n"
    "80,10.0.0.2,10.0.1.1,1001,2000,1500\n";

}  // namespace

int main(int argc, char** argv) {
  std::string trace_text = kSampleTrace;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open trace %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    trace_text = ss.str();
  }
  const std::string pcap_path = argc > 2 ? argv[2] : "/tmp/edp_demo.pcap";

  std::size_t parse_errors = 0;
  const auto trace =
      topo::TraceReplayGenerator::parse_csv(trace_text, &parse_errors);
  std::printf("trace: %zu packets (%zu malformed lines skipped)\n",
              trace.size(), parse_errors);

  sim::Scheduler sched;
  topo::Network net(sched);
  core::EventSwitchConfig cfg;
  cfg.num_ports = 2;
  cfg.port_rate_bps = 1e9;
  const auto s0 = net.add_switch(cfg);
  topo::Host::Config hc;
  hc.name = "replayer";
  hc.ip = net::Ipv4Address(10, 0, 0, 1);
  const auto src = net.add_host(hc);
  hc.name = "sink";
  hc.ip = net::Ipv4Address(10, 0, 1, 1);
  const auto sink = net.add_host(hc);
  net.connect_host(src, s0, 0);
  net.connect_host(sink, s0, 1);

  apps::MicroburstConfig mc;
  mc.flow_thresh = 1LL << 40;  // occupancy tracking only
  apps::MicroburstProgram prog(mc);
  prog.add_route(net::Ipv4Address(10, 0, 1, 0), 24, 1);
  net.sw(s0).register_aggregated(*prog.aggregated());
  net.sw(s0).set_program(&prog);

  net::PcapWriter pcap(pcap_path);
  if (!pcap.ok()) {
    std::fprintf(stderr, "cannot open %s for writing\n", pcap_path.c_str());
    return 1;
  }
  net.host(sink).on_receive = [&](const net::Packet& p) {
    pcap.write(p, sched.now());
  };

  topo::TraceReplayGenerator replay(sched, net.host(src), trace);
  replay.start();
  net.run_until(sim::Time::millis(10));
  pcap.flush();

  std::printf("replayed %llu packets; sink received %llu; %llu captured "
              "to %s\n",
              static_cast<unsigned long long>(replay.sent()),
              static_cast<unsigned long long>(net.host(sink).rx_packets()),
              static_cast<unsigned long long>(pcap.packets_written()),
              pcap_path.c_str());
  std::printf("\nswitch statistics:\n%s", net.sw(s0).describe().c_str());
  return 0;
}
