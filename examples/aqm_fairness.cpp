// The §5 student project "Computing Congestion Signals": a FRED-like
// flow-fair AQM built from enqueue/dequeue events, compared against
// classic RED (the fixed-function baseline).
//
// Two senders share a 100 Mb/s bottleneck: a hog offering 400 Mb/s and a
// mouse offering 10 Mb/s. RED drops by average queue depth — blind to who
// fills the queue — while the event-driven AQM tracks per-active-flow
// occupancy and drops only the over-share flow.
//
//   $ ./example_aqm_fairness
#include <cstdio>

#include "edp.hpp"

using namespace edp;

namespace {

struct Outcome {
  std::uint64_t hog_delivered = 0;
  std::uint64_t mouse_delivered = 0;
  std::uint64_t mouse_sent = 0;
};

/// Run with per-flow delivery accounting at the sink.
Outcome run_counted(bool event_driven_aqm) {
  // Same topology as run(), with a counting sink hook.
  sim::Scheduler sched;
  topo::Network net(sched);
  core::EventSwitchConfig cfg;
  cfg.num_ports = 3;
  cfg.port_rate_bps = 1e8;
  cfg.queue_limits.max_bytes = 1 << 20;
  cfg.queue_limits.max_packets = 4096;
  const auto s0 = net.add_switch(cfg);
  topo::Host::Config hc;
  hc.name = "hog";
  hc.ip = net::Ipv4Address(10, 0, 0, 1);
  const auto hog = net.add_host(hc);
  hc.name = "mouse";
  hc.ip = net::Ipv4Address(10, 0, 0, 2);
  const auto mouse = net.add_host(hc);
  hc.name = "sink";
  hc.ip = net::Ipv4Address(10, 0, 1, 1);
  const auto sink = net.add_host(hc);
  net.connect_host(hog, s0, 0);
  net.connect_host(mouse, s0, 1);
  net.connect_host(sink, s0, 2);

  apps::FairAqmConfig fc;
  fc.engage_bytes = 8'000;
  fc.share_factor = 1.5;
  apps::FairAqmProgram fair(fc);
  topo::L3Program plain;
  apps::RedAqm::Config rc;
  rc.min_thresh_bytes = 16'000;
  rc.max_thresh_bytes = 64'000;
  rc.max_p = 0.2;
  apps::RedAqm red(rc);
  if (event_driven_aqm) {
    fair.add_route(net::Ipv4Address(10, 0, 1, 0), 24, 2);
    net.sw(s0).set_program(&fair);
  } else {
    plain.add_route(net::Ipv4Address(10, 0, 1, 0), 24, 2);
    net.sw(s0).set_program(&plain);
    red.install(net.sw(s0).traffic_manager());
  }

  Outcome o;
  net.host(sink).on_receive = [&](const net::Packet& p) {
    const auto t = net::extract_five_tuple(p);
    if (t.src == net::Ipv4Address(10, 0, 0, 1)) {
      ++o.hog_delivered;
    } else if (t.src == net::Ipv4Address(10, 0, 0, 2)) {
      ++o.mouse_delivered;
    }
  };

  topo::CbrGenerator::Config hcfg;
  hcfg.flow.src = net.host(hog).ip();
  hcfg.flow.dst = net.host(sink).ip();
  hcfg.rate_bps = 4e8;
  hcfg.stop = sim::Time::millis(50);
  topo::CbrGenerator hog_gen(sched, net.host(hog), hcfg);
  topo::CbrGenerator::Config mcfg;
  mcfg.flow.src = net.host(mouse).ip();
  mcfg.flow.dst = net.host(sink).ip();
  mcfg.rate_bps = 1e7;
  mcfg.stop = sim::Time::millis(50);
  topo::CbrGenerator mouse_gen(sched, net.host(mouse), mcfg);
  hog_gen.start();
  mouse_gen.start();
  net.run_until(sim::Time::millis(150));
  o.mouse_sent = mouse_gen.sent();
  return o;
}

}  // namespace

int main() {
  std::printf("AQM fairness demo: hog (400 Mb/s) vs mouse (10 Mb/s) on a "
              "100 Mb/s bottleneck\n\n");
  const Outcome red = run_counted(false);
  const Outcome fair = run_counted(true);
  std::printf("classic RED (fixed-function):\n");
  std::printf("  hog delivered   %llu pkts\n",
              static_cast<unsigned long long>(red.hog_delivered));
  std::printf("  mouse delivered %llu / %llu pkts (%.0f%%)\n\n",
              static_cast<unsigned long long>(red.mouse_delivered),
              static_cast<unsigned long long>(red.mouse_sent),
              100.0 * static_cast<double>(red.mouse_delivered) /
                  static_cast<double>(red.mouse_sent));
  std::printf("event-driven flow-fair AQM (FRED-like, enq/deq events):\n");
  std::printf("  hog delivered   %llu pkts\n",
              static_cast<unsigned long long>(fair.hog_delivered));
  std::printf("  mouse delivered %llu / %llu pkts (%.0f%%)\n\n",
              static_cast<unsigned long long>(fair.mouse_delivered),
              static_cast<unsigned long long>(fair.mouse_sent),
              100.0 * static_cast<double>(fair.mouse_delivered) /
                  static_cast<double>(fair.mouse_sent));
  std::printf(
      "RED's average-queue drops hit whoever arrives; the event-driven AQM\n"
      "sees per-active-flow occupancy at ingress and only throttles the "
      "hog.\n");
  return 0;
}
