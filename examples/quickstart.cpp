// Quickstart: your first event-driven data-plane program.
//
// Builds a 2-port SUME Event Switch, writes a small EventProgram that
//  (1) routes packets,
//  (2) tracks the output queue depth from enqueue/dequeue events, and
//  (3) prints a heartbeat from a periodic timer —
// then pushes some traffic through and dumps the statistics.
//
//   $ ./example_quickstart
#include <cstdio>

#include "edp.hpp"

using namespace edp;

namespace {

/// A minimal event-driven program. Handlers are the logical pipelines of
/// the paper's Figure 2; this one uses three of them.
class QuickstartProgram : public core::EventProgram {
 public:
  // Runs once when attached: configure a heartbeat timer (an event-driven
  // architecture grants this; a baseline PISA switch would refuse).
  void on_attach(core::EventContext& ctx) override {
    ctx.set_periodic_timer(sim::Time::millis(1), /*cookie=*/1);
  }

  // Packet events: forward everything to port 1.
  void on_ingress(pisa::Phv& phv, core::EventContext&) override {
    phv.std_meta.egress_port = 1;
  }

  // Buffer events: maintain the queue depth as algorithmic state.
  void on_enqueue(const tm_::EnqueueRecord& e, core::EventContext&) override {
    queue_bytes_ += e.pkt_len;
    peak_bytes_ = std::max(peak_bytes_, queue_bytes_);
  }
  void on_dequeue(const tm_::DequeueRecord& e, core::EventContext&) override {
    queue_bytes_ -= e.pkt_len;
  }

  // Timer events: periodic work with no control-plane involvement.
  void on_timer(const core::TimerEventData&, core::EventContext& ctx) override {
    std::printf("  [t=%s] heartbeat: queue=%lld B (peak %lld B)\n",
                ctx.now().to_string().c_str(),
                static_cast<long long>(queue_bytes_),
                static_cast<long long>(peak_bytes_));
  }

  std::int64_t peak_bytes() const { return peak_bytes_; }

 private:
  std::int64_t queue_bytes_ = 0;
  std::int64_t peak_bytes_ = 0;
};

}  // namespace

int main() {
  std::printf("edp quickstart: event-driven packet processing\n\n");

  // 1. A simulation clock and a switch.
  sim::Scheduler sched;
  core::EventSwitchConfig config;
  config.num_ports = 2;
  config.port_rate_bps = 1e9;  // 1 Gb/s ports so a queue actually forms
  core::EventSwitch sw(sched, config);

  // 2. Attach the program and wire port 1's transmit side.
  QuickstartProgram program;
  sw.set_program(&program);
  std::uint64_t delivered = 0;
  sw.connect_tx(1, [&delivered](net::Packet) { ++delivered; });

  // 3. Offer a burst of traffic: 2 Gb/s into the 1 Gb/s port for 4 ms.
  const auto src = net::Ipv4Address(10, 0, 0, 1);
  const auto dst = net::Ipv4Address(10, 0, 1, 1);
  for (int i = 0; i < 1000; ++i) {
    sched.at(sim::Time::micros(4 * i), [&sw, src, dst] {
      sw.receive(0, net::make_udp_packet(src, dst, 1234, 80, 1000));
    });
  }

  // 4. Run.
  sched.run_until(sim::Time::millis(10));

  // 5. Report.
  const auto& c = sw.counters();
  std::printf("\nresults:\n");
  std::printf("  packets in/out     : %llu / %llu (delivered %llu)\n",
              static_cast<unsigned long long>(c.rx_packets),
              static_cast<unsigned long long>(c.tx_packets),
              static_cast<unsigned long long>(delivered));
  std::printf("  peak queue depth   : %lld bytes (tracked by enq/deq events)\n",
              static_cast<long long>(program.peak_bytes()));
  std::printf("  enqueue events     : %llu observed\n",
              static_cast<unsigned long long>(
                  c.observed[static_cast<std::size_t>(
                      core::EventKind::kEnqueue)]));
  std::printf("  pipeline slots     : %llu (%llu carried packets, %llu "
              "carrier frames)\n",
              static_cast<unsigned long long>(sw.merger().slots_total()),
              static_cast<unsigned long long>(sw.merger().slots_with_packet()),
              static_cast<unsigned long long>(sw.merger().slots_carrier()));
  return 0;
}
