// Tests for edp::analysis::value_analysis_pass — the abstract-interpretation
// value analysis (edp-verify v3).
//
// Static side: fixture programs plant one value-domain defect each
// (overflow against an annotated width, a non-commutative event-thread
// update, an occupancy counter nobody decrements, a writer handler the rate
// model knows nothing about) and the assertions match on the stable finding
// codes. Dynamic side: storm replays of the aggregated microburst apps
// assert the *observed* worst-case value deviation stays under the static
// staleness-value-error bound — the paper's bandwidth-vs-accuracy
// trade-off, checked end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <iterator>
#include <memory>
#include <string>
#include <string_view>

#include "analysis/analyzer.hpp"
#include "analysis/hardware_model.hpp"
#include "analysis/optimizer.hpp"
#include "analysis/sarif.hpp"
#include "analysis/value_analysis.hpp"
#include "apps/registry.hpp"
#include "core/event_program.hpp"
#include "core/shared_register.hpp"
#include "workload/replay.hpp"

namespace edp {
namespace {

using analysis::Finding;
using analysis::Report;
using analysis::Severity;

template <typename Program>
Report analyze(const std::string& name,
               analysis::AnalyzerOptions options = {}) {
  return analysis::analyze_program(
      name, [] { return std::make_unique<Program>(); }, options);
}

const analysis::HardwareModel* tor_model() {
  return analysis::find_hardware_model("linerate-tor");
}

const apps::RegisteredProgram* find_app(std::string_view name) {
  for (const apps::RegisteredProgram& entry : apps::program_registry()) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

const Finding* find_code(const Report& report, std::string_view code) {
  for (const Finding& f : report.findings) {
    if (f.code == code) {
      return &f;
    }
  }
  return nullptr;
}

analysis::AnalyzerOptions app_options(const apps::RegisteredProgram& app,
                                      const analysis::HardwareModel* model) {
  analysis::AnalyzerOptions options;
  options.lint = app.lint;
  options.model = model;
  options.rates = app.rates;
  options.widths = app.widths;
  return options;
}

// ---- fixture programs -------------------------------------------------------

/// Pure +2 counter on the packet thread: the congruence domain must learn
/// v == 0 (mod 2), and a narrow width annotation must trip the overflow
/// check with the aliasing caveat.
class EvenCounterProgram : public core::EventProgram {
 public:
  void on_ingress(pisa::Phv&, core::EventContext& ctx) override {
    ctr_.rmw(0, [](std::uint64_t v) { return v + 2; },
             core::ThreadId::kIngress, ctx.cycle());
  }

 private:
  core::SharedRegister<std::uint64_t> ctr_{"even_ctr", 4, /*ports=*/1};
};

/// An EWMA-style gauge updated from the enqueue thread: v/2 + c is not a
/// translation (f(v+1)-(v+1) != f(v)-v at every v), so the optimizer's
/// sum-of-deltas merge is unsound and the 3-port constraint must stay
/// unresolved.
class EwmaGaugeProgram : public core::EventProgram {
 public:
  void on_ingress(pisa::Phv&, core::EventContext& ctx) override {
    ewma_.rmw(0, [](std::int64_t v) { return v + 1; },
              core::ThreadId::kIngress, ctx.cycle());
  }
  void on_enqueue(const tm_::EnqueueRecord&,
                  core::EventContext& ctx) override {
    ewma_.rmw(0, [](std::int64_t v) { return v / 2 + 9; },
              core::ThreadId::kEnqueue, ctx.cycle());
  }
  void on_dequeue(const tm_::DequeueRecord&,
                  core::EventContext& ctx) override {
    ewma_.rmw(0, [](std::int64_t v) { return v - 1; },
              core::ThreadId::kDequeue, ctx.cycle());
  }

 private:
  core::SharedRegister<std::int64_t> ewma_{"ewma_gauge", 1, /*ports=*/3};
};

/// Occupancy accounting with the decrement forgotten: the admission-side
/// increment never closes, so the interval outgrows any TM buffer.
class LeakyOccupancyProgram : public core::EventProgram {
 public:
  void on_enqueue(const tm_::EnqueueRecord&,
                  core::EventContext& ctx) override {
    occ_.rmw(0, [](std::uint64_t v) { return v + 1; },
             core::ThreadId::kEnqueue, ctx.cycle());
  }

 private:
  core::SharedRegister<std::uint64_t> occ_{"leaky_occ", 1, /*ports=*/1};
};

/// A control-plane handler that writes state, with no declared rate and no
/// derivable one: the overflow and drain budgets silently ignore it unless
/// the registry audit note fires.
class UnratedControlWriterProgram : public core::EventProgram {
 public:
  void on_control(const core::ControlEventData&,
                  core::EventContext& ctx) override {
    cfg_.rmw(0, [](std::uint64_t v) { return v + 1; },
             core::ThreadId::kOther, ctx.cycle());
  }

 private:
  core::SharedRegister<std::uint64_t> cfg_{"ctl_cfg", 1, /*ports=*/1};
};

/// Read-only from the packet thread: no event deltas, nothing to flag.
class ReadOnlyProgram : public core::EventProgram {
 public:
  void on_ingress(pisa::Phv&, core::EventContext& ctx) override {
    std::uint64_t v = 0;
    ro_.read(0, v, core::ThreadId::kIngress, ctx.cycle());
  }

 private:
  core::SharedRegister<std::uint64_t> ro_{"ro_table", 2, /*ports=*/1};
};

/// A blind write taints its register, and a read of that register feeding a
/// later RMW taints the dependent one too — both must widen to top instead
/// of carrying a fake interval into the overflow check.
class BlindWriteChainProgram : public core::EventProgram {
 public:
  void on_ingress(pisa::Phv&, core::EventContext& ctx) override {
    src_.write(0, 42, core::ThreadId::kIngress, ctx.cycle());
    std::uint64_t v = 0;
    src_.read(0, v, core::ThreadId::kIngress, ctx.cycle());
    dst_.rmw(0, [v](std::uint64_t x) { return x + v; },
             core::ThreadId::kIngress, ctx.cycle());
  }

 private:
  core::SharedRegister<std::uint64_t> src_{"blind_src", 1, /*ports=*/1};
  core::SharedRegister<std::uint64_t> dst_{"blind_dst", 1, /*ports=*/1};
};

// ---- the abstract domain on the shipped apps --------------------------------

TEST(ValueAnalysis, MicroburstDomainIsGroundedInObservedDeltas) {
  const apps::RegisteredProgram* app = find_app("microburst-shared");
  ASSERT_NE(app, nullptr);
  // The registry audit annotates the byte counter at 48 bits.
  EXPECT_EQ(app->widths.get("bufSize_reg", 64), 48u);

  const Report report = analysis::analyze_program(
      app->name, app->factory, app_options(*app, tor_model()));
  const analysis::RegisterValueInfo* info =
      report.values.find("bufSize_reg");
  ASSERT_NE(info, nullptr) << report.values.format();
  EXPECT_FALSE(info->opaque);
  EXPECT_TRUE(info->has_event_deltas);
  // Enqueue adds packet bytes, dequeue subtracts them.
  EXPECT_GT(info->delta_max, 0);
  EXPECT_LT(info->delta_min, 0);
  EXPECT_GT(info->max_abs_delta, 0);
  EXPECT_GT(info->growth_up, 0.0);
  EXPECT_LT(info->growth_down, 0.0);
  EXPECT_FALSE(info->after_horizon.top);
  EXPECT_GT(info->after_horizon.hi, 0.0);

  // 2^47 comfortably holds one second of worst-case byte growth: the
  // annotated width must analyze clean.
  EXPECT_EQ(find_code(report, "register-overflow"), nullptr)
      << report.format(false);
  // Dequeue closes every enqueue increment.
  EXPECT_EQ(find_code(report, "queue-occupancy-unbounded"), nullptr);
  // Both updates are pure deltas — the probe must not cry wolf.
  EXPECT_EQ(find_code(report, "merge-noncommutative"), nullptr);
  // Every handler the registry rate model needs is declared or derivable.
  EXPECT_EQ(find_code(report, "missing-rates"), nullptr);
}

TEST(ValueAnalysis, AllRegisteredAppsCarryNoValueFindingsUnconstrained) {
  for (const apps::RegisteredProgram& app : apps::program_registry()) {
    analysis::AnalyzerOptions options = app_options(app, nullptr);
    const Report report =
        analysis::analyze_program(app.name, app.factory, options);
    EXPECT_EQ(find_code(report, "register-overflow"), nullptr) << app.name;
    EXPECT_EQ(find_code(report, "queue-occupancy-unbounded"), nullptr)
        << app.name;
    EXPECT_EQ(find_code(report, "merge-noncommutative"), nullptr) << app.name;
    EXPECT_EQ(find_code(report, "missing-rates"), nullptr) << app.name;
  }
}

// ---- register-overflow ------------------------------------------------------

TEST(ValueAnalysis, NarrowWidthAnnotationTripsOverflow) {
  const apps::RegisteredProgram* app = find_app("microburst-shared");
  ASSERT_NE(app, nullptr);
  analysis::AnalyzerOptions options = app_options(*app, tor_model());
  options.widths.set("bufSize_reg", 24);  // ~1e11 bytes/s >> 2^23
  const Report report =
      analysis::analyze_program(app->name, app->factory, options);
  const Finding* f = find_code(report, "register-overflow");
  ASSERT_NE(f, nullptr) << report.format(false);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->subject, "bufSize_reg");
  EXPECT_NE(f->message.find("24-bit range"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("wraps after"), std::string::npos) << f->message;
}

TEST(ValueAnalysis, OverflowReportsCongruenceAliasing) {
  analysis::AnalyzerOptions options;
  options.model = tor_model();
  options.widths.set("even_ctr", 16);
  const Report report = analyze<EvenCounterProgram>("even-counter", options);
  const analysis::RegisterValueInfo* info = report.values.find("even_ctr");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->congruence, 2u);
  const Finding* f = find_code(report, "register-overflow");
  ASSERT_NE(f, nullptr) << report.format(false);
  // A +2 counter wrapping a 16-bit register lands on even values again —
  // the wrap aliases a plausible reading, which is the dangerous case.
  EXPECT_NE(f->message.find("mod 2"), std::string::npos) << f->message;
}

TEST(ValueAnalysis, UnconstrainedTargetNeverFlagsOverflow) {
  analysis::AnalyzerOptions options;
  options.widths.set("even_ctr", 8);
  const Report report = analyze<EvenCounterProgram>("even-counter", options);
  EXPECT_EQ(find_code(report, "register-overflow"), nullptr);
}

// ---- merge-noncommutative ---------------------------------------------------

TEST(ValueAnalysis, EwmaGaugeFailsTheLinearityProbe) {
  analysis::AnalyzerOptions options;
  options.model = tor_model();
  const Report report = analyze<EwmaGaugeProgram>("ewma-gauge", options);
  const Finding* f = find_code(report, "merge-noncommutative");
  ASSERT_NE(f, nullptr) << report.format(false);
  EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_EQ(f->subject, "ewma_gauge");
  EXPECT_NE(f->message.find("on_enqueue"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("not a pure delta"), std::string::npos)
      << f->message;

  // Unconstrained it is advisory only.
  const Report plain = analyze<EwmaGaugeProgram>("ewma-gauge");
  const Finding* note = find_code(plain, "merge-noncommutative");
  ASSERT_NE(note, nullptr);
  EXPECT_EQ(note->severity, Severity::kNote);
}

TEST(ValueAnalysis, NoncommutativeMergeBlocksAggregationRewrite) {
  // The contrast pair the optimizer must distinguish: microburst-shared's
  // +/- byte deltas aggregate fine...
  const apps::RegisteredProgram* burst = find_app("microburst-shared");
  ASSERT_NE(burst, nullptr);
  const analysis::OptimizationResult good = analysis::optimize_program(
      burst->name, burst->factory, app_options(*burst, tor_model()));
  EXPECT_TRUE(good.feasible) << good.format(false);

  // ...while the EWMA gauge, an identical 3-port shape, must be refused:
  // deferring v/2 + c through sum-merged side arrays changes the result.
  analysis::AnalyzerOptions options;
  options.model = tor_model();
  const analysis::OptimizationResult bad = analysis::optimize_program(
      "ewma-gauge", [] { return std::make_unique<EwmaGaugeProgram>(); },
      options);
  EXPECT_FALSE(bad.feasible) << bad.format(false);
  const Finding* blocked = nullptr;
  for (const Finding& f : bad.diagnostics) {
    if (f.code == "unresolvable-constraint" && f.subject == "ewma_gauge") {
      blocked = &f;
    }
  }
  ASSERT_NE(blocked, nullptr) << bad.format(false);
  EXPECT_NE(blocked->message.find("not commutative"), std::string::npos)
      << blocked->message;
  bool aggregated = false;
  for (const analysis::TransformRecord& t : bad.transforms) {
    aggregated = aggregated || (t.kind == "aggregation-insertion" &&
                                t.subject == "ewma_gauge");
  }
  EXPECT_FALSE(aggregated);
}

// ---- staleness-value-error --------------------------------------------------

TEST(ValueAnalysis, StalenessValueErrorMatchesOptimizerBound) {
  const apps::RegisteredProgram* app = find_app("microburst-shared");
  ASSERT_NE(app, nullptr);
  const analysis::OptimizationResult result = analysis::optimize_program(
      app->name, app->factory, app_options(*app, tor_model()));
  ASSERT_EQ(result.staleness.size(), 1u);
  const analysis::StalenessBound& sb = result.staleness[0];
  EXPECT_GT(sb.max_abs_delta, 0);
  EXPECT_GT(sb.value_error_bound, 0.0);

  ASSERT_EQ(result.optimized.values.value_errors.size(), 1u)
      << result.optimized.values.format();
  const analysis::ValueErrorBound& vb =
      result.optimized.values.value_errors[0];
  EXPECT_EQ(vb.name, "bufSize_reg");
  EXPECT_TRUE(vb.stable);
  EXPECT_EQ(vb.max_abs_delta, sb.max_abs_delta);
  // Same window, same demand, same unit — the two layers must agree.
  EXPECT_DOUBLE_EQ(vb.staleness_seconds, sb.bound_seconds);
  EXPECT_DOUBLE_EQ(vb.bound, sb.value_error_bound);
  EXPECT_DOUBLE_EQ(vb.bound,
                   static_cast<double>(vb.max_abs_delta) *
                       vb.events_per_window);

  const Finding* f = nullptr;
  for (const Finding& g : result.optimized.findings) {
    if (g.code == "staleness-value-error") {
      f = &g;
    }
  }
  ASSERT_NE(f, nullptr) << result.optimized.format(false);
  EXPECT_EQ(f->severity, Severity::kNote);
}

TEST(ValueAnalysis, ZeroIdleRateMakesTheErrorUnboundedNotNan) {
  // A clock so slow the packet slots eat every cycle: idle_rate <= 0. The
  // bound must degrade to "unbounded" (stable == false), never divide by
  // the idle rate.
  analysis::HardwareModel starved = *tor_model();
  starved.name = "starved-tor";
  starved.clock_hz = 1.0;
  const apps::RegisteredProgram* app = find_app("microburst-aggregated");
  ASSERT_NE(app, nullptr);
  const Report report = analysis::analyze_program(
      app->name, app->factory, app_options(*app, &starved));
  EXPECT_LE(report.mapping.idle_rate, 0.0);
  ASSERT_EQ(report.values.value_errors.size(), 1u)
      << report.values.format();
  const analysis::ValueErrorBound& vb = report.values.value_errors[0];
  EXPECT_FALSE(vb.stable);
  EXPECT_EQ(vb.staleness_seconds, 0.0);
  EXPECT_EQ(vb.bound, 0.0);
  EXPECT_FALSE(std::isnan(vb.bound));
  const Finding* f = find_code(report, "staleness-value-error");
  ASSERT_NE(f, nullptr) << report.format(false);
  EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_NE(f->message.find("unbounded"), std::string::npos) << f->message;
}

// ---- queue-occupancy-unbounded ----------------------------------------------

TEST(ValueAnalysis, LeakyOccupancyIsFlaggedOnConstrainedTargets) {
  analysis::AnalyzerOptions options;
  options.model = tor_model();
  const Report report =
      analyze<LeakyOccupancyProgram>("leaky-occupancy", options);
  const Finding* f = find_code(report, "queue-occupancy-unbounded");
  ASSERT_NE(f, nullptr) << report.format(false);
  EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_EQ(f->subject, "leaky_occ");
  EXPECT_NE(f->message.find("never closed by a decrement"),
            std::string::npos)
      << f->message;

  // Unconstrained, the same program is silent.
  const Report plain = analyze<LeakyOccupancyProgram>("leaky-occupancy");
  EXPECT_EQ(find_code(plain, "queue-occupancy-unbounded"), nullptr);
}

// ---- missing-rates ----------------------------------------------------------

TEST(ValueAnalysis, UnratedControlWriterGetsTheAuditNote) {
  const Report report =
      analyze<UnratedControlWriterProgram>("unrated-control");
  const Finding* f = find_code(report, "missing-rates");
  ASSERT_NE(f, nullptr) << report.format(false);
  EXPECT_EQ(f->severity, Severity::kNote);
  EXPECT_EQ(f->subject, "on_control");
  EXPECT_NE(f->message.find("ctl_cfg"), std::string::npos) << f->message;

  // Declaring the rate satisfies the audit.
  analysis::AnalyzerOptions options;
  options.rates.set(analysis::Handler::kControl, 1000.0);
  const Report rated =
      analyze<UnratedControlWriterProgram>("unrated-control", options);
  EXPECT_EQ(find_code(rated, "missing-rates"), nullptr)
      << rated.format(false);
}

// ---- IR edge cases ----------------------------------------------------------

TEST(ValueAnalysis, EmptyProgramYieldsEmptyDomain) {
  struct NoopProgram : core::EventProgram {};
  const Report report = analyze<NoopProgram>("noop");
  EXPECT_TRUE(report.values.registers.empty());
  EXPECT_TRUE(report.values.value_errors.empty());
}

TEST(ValueAnalysis, ReadOnlyRegisterStaysConstantZero) {
  analysis::AnalyzerOptions options;
  options.model = tor_model();
  options.widths.set("ro_table", 8);  // even an 8-bit cell cannot overflow
  const Report report = analyze<ReadOnlyProgram>("read-only", options);
  const analysis::RegisterValueInfo* info = report.values.find("ro_table");
  ASSERT_NE(info, nullptr);
  EXPECT_FALSE(info->opaque);
  EXPECT_FALSE(info->has_event_deltas);
  EXPECT_EQ(info->congruence, 0u);
  EXPECT_EQ(info->after_horizon.lo, 0.0);
  EXPECT_EQ(info->after_horizon.hi, 0.0);
  EXPECT_EQ(find_code(report, "register-overflow"), nullptr);
  EXPECT_EQ(find_code(report, "queue-occupancy-unbounded"), nullptr);
}

TEST(ValueAnalysis, BlindWritesWidenToTopAndTaintDependents) {
  analysis::AnalyzerOptions options;
  options.model = tor_model();
  options.widths.set("blind_src", 8);
  options.widths.set("blind_dst", 8);
  const Report report =
      analyze<BlindWriteChainProgram>("blind-chain", options);
  const analysis::RegisterValueInfo* src = report.values.find("blind_src");
  const analysis::RegisterValueInfo* dst = report.values.find("blind_dst");
  ASSERT_NE(src, nullptr);
  ASSERT_NE(dst, nullptr);
  EXPECT_TRUE(src->opaque);
  EXPECT_TRUE(src->after_horizon.top);
  // The RMW on dst observed clean deltas, but its input flows from a blind
  // write — the dependency fixpoint must taint it too.
  EXPECT_TRUE(dst->opaque);
  EXPECT_TRUE(dst->after_horizon.top);
  // Top never reaches the width check: no fabricated overflow.
  EXPECT_EQ(find_code(report, "register-overflow"), nullptr)
      << report.format(false);
}

// ---- SARIF catalogue drift --------------------------------------------------

TEST(ValueAnalysis, SarifRuleCatalogueMatchesFindingCodeList) {
  const std::vector<analysis::RuleInfo>& rules = analysis::finding_rules();
  ASSERT_EQ(rules.size(), std::size(analysis::kFindingCodes));
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].id, analysis::kFindingCodes[i]) << "index " << i;
  }
}

// ---- dynamic gate: observed deviation vs static bound -----------------------

workload::ScenarioSpec value_storm(std::uint64_t seed) {
  workload::ScenarioSpec spec;
  spec.name = "value-error-storm";
  spec.seed = seed;
  spec.edges = 2;
  spec.hosts_per_edge = 2;
  spec.flows = 300;
  spec.incast_degree = 2;
  spec.burst_packets = 8;
  return spec;
}

TEST(ValueAnalysis, ObservedValueErrorStaysUnderStaticBound) {
  bool saw_aggregated_error = false;
  for (const char* name :
       {"microburst-shared", "microburst-aggregated", "cms-monitor"}) {
    const apps::RegisteredProgram* app = workload::find_program(name);
    ASSERT_NE(app, nullptr) << name;
    for (std::uint64_t seed : {1, 2, 3}) {
      for (std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
        workload::ReplayOptions opt;
        opt.optimize = true;
        opt.shards = shards;
        const workload::ScenarioOutcome out =
            workload::replay(value_storm(seed), *app, opt);
        EXPECT_TRUE(out.optimized) << name;
        if (out.value_error_bound > 0) {
          EXPECT_LE(out.agg_value_error_max, out.value_error_bound)
              << name << " seed " << seed << " shards " << shards;
        }
        saw_aggregated_error =
            saw_aggregated_error || out.agg_value_error_max > 0;
      }
    }
  }
  // The gate must not pass vacuously: the microburst replays do defer
  // deltas through the side arrays.
  EXPECT_TRUE(saw_aggregated_error);
}

}  // namespace
}  // namespace edp
