// runtime/ tests: the SPSC cross-shard ring, shard planning over a Spec,
// and the headline property of the parallel runtime — bit-identical results
// versus the sequential scheduler for every (seed, shard count) pair.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "runtime/parallel_runtime.hpp"
#include "runtime/spsc_ring.hpp"
#include "topo/network.hpp"
#include "topo/routing.hpp"
#include "topo/spec.hpp"
#include "topo/traffic_gen.hpp"

namespace edp {
namespace {

using net::Ipv4Address;
using net::MacAddress;

// ---- SpscRing --------------------------------------------------------------------

TEST(SpscRing, PushPopFifoOrder) {
  runtime::SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.try_push(int(i)));
  }
  EXPECT_FALSE(ring.try_push(99));  // full at capacity
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));  // empty
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  runtime::SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  runtime::SpscRing<int> one(1);
  EXPECT_EQ(one.capacity(), 1u);
}

TEST(SpscRing, WrapAroundManyTimes) {
  runtime::SpscRing<int> ring(4);
  int v = -1;
  for (int round = 0; round < 1000; ++round) {
    EXPECT_TRUE(ring.try_push(int(round)));
    EXPECT_TRUE(ring.try_push(int(round + 1000000)));
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, round);
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, round + 1000000);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, MoveOnlyPayload) {
  runtime::SpscRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 7);
}

TEST(SpscRing, TwoThreadStress) {
  runtime::SpscRing<int> ring(64);
  constexpr int kCount = 20000;
  // Yield on full/empty so the test also passes quickly on one core.
  std::thread producer([&ring] {
    for (int i = 0; i < kCount;) {
      if (ring.try_push(int(i))) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  int expected = 0;
  int v = -1;
  while (expected < kCount) {
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PopBurstDrainsFifoWithOnePublish) {
  runtime::SpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ring.try_push(int(i)));
  }
  int out[16];
  // Burst smaller than occupancy: takes exactly `max`, oldest first.
  EXPECT_EQ(ring.pop_burst(out, 4), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i], i);
  }
  // Burst larger than occupancy: takes what's there.
  EXPECT_EQ(ring.pop_burst(out, 16), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(out[i], i + 4);
  }
  EXPECT_EQ(ring.pop_burst(out, 16), 0u);  // empty
  EXPECT_TRUE(ring.empty());
  // The freed slots are reusable (head really was published).
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(ring.try_push(int(i)));
  }
  EXPECT_FALSE(ring.try_push(99));
}

TEST(SpscRing, PopBurstTwoThreadStress) {
  runtime::SpscRing<int> ring(64);
  constexpr int kCount = 20000;
  std::thread producer([&ring] {
    for (int i = 0; i < kCount;) {
      if (ring.try_push(int(i))) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  int burst[32];
  int expected = 0;
  while (expected < kCount) {
    const std::size_t n = ring.pop_burst(burst, 32);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(burst[i], expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// ---- topology under test --------------------------------------------------------

topo::Host::Config host_cfg(const std::string& name, Ipv4Address ip) {
  topo::Host::Config c;
  c.name = name;
  c.mac = MacAddress::from_u64(0x020000000000ULL + ip.value());
  c.ip = ip;
  return c;
}

core::EventSwitchConfig sw_cfg(const std::string& name, std::uint16_t ports) {
  core::EventSwitchConfig c;
  c.name = name;
  c.num_ports = ports;
  c.port_rate_bps = 10e9;
  return c;
}

constexpr std::size_t kLeaves = 4;
constexpr std::size_t kSpines = 2;

// Leaf-spine fabric: leaf l = switch l (port 0 host, port 1+s spine s),
// spine s = switch kLeaves+s (port l -> leaf l), host l on leaf l with
// ip 10.0.l.1. Host links 1us, fabric links 2us (the lookahead).
topo::Spec make_spec() {
  topo::Spec spec;
  for (std::size_t l = 0; l < kLeaves; ++l) {
    spec.add_switch(sw_cfg("leaf" + std::to_string(l),
                           static_cast<std::uint16_t>(1 + kSpines)));
  }
  for (std::size_t s = 0; s < kSpines; ++s) {
    spec.add_switch(sw_cfg("spine" + std::to_string(s),
                           static_cast<std::uint16_t>(kLeaves)));
  }
  topo::Link::Config host_link;
  host_link.delay = sim::Time::micros(1);
  topo::Link::Config fabric_link;
  fabric_link.delay = sim::Time::micros(2);
  for (std::size_t l = 0; l < kLeaves; ++l) {
    const auto h = spec.add_host(host_cfg(
        "h" + std::to_string(l),
        Ipv4Address(10, 0, static_cast<std::uint8_t>(l), 1)));
    spec.connect_host(h, l, 0, host_link);
  }
  for (std::size_t l = 0; l < kLeaves; ++l) {
    for (std::size_t s = 0; s < kSpines; ++s) {
      spec.connect_switches(l, static_cast<std::uint16_t>(1 + s), kLeaves + s,
                            static_cast<std::uint16_t>(l), fabric_link);
    }
  }
  return spec;
}

// One L3Program per switch; uplink spine chosen by destination leaf parity
// so paths are deterministic without ECMP.
std::vector<std::unique_ptr<topo::L3Program>> make_programs() {
  std::vector<std::unique_ptr<topo::L3Program>> progs;
  for (std::size_t l = 0; l < kLeaves; ++l) {
    auto p = std::make_unique<topo::L3Program>();
    for (std::size_t m = 0; m < kLeaves; ++m) {
      const Ipv4Address prefix(10, 0, static_cast<std::uint8_t>(m), 0);
      if (m == l) {
        p->add_route(prefix, 24, 0);
      } else {
        p->add_route(prefix, 24, static_cast<std::uint16_t>(1 + (m % kSpines)));
      }
    }
    progs.push_back(std::move(p));
  }
  for (std::size_t s = 0; s < kSpines; ++s) {
    auto p = std::make_unique<topo::L3Program>();
    for (std::size_t m = 0; m < kLeaves; ++m) {
      p->add_route(Ipv4Address(10, 0, static_cast<std::uint8_t>(m), 0), 24,
                   static_cast<std::uint16_t>(m));
    }
    progs.push_back(std::move(p));
  }
  return progs;
}

topo::PoissonGenerator::Config gen_cfg(std::uint64_t seed, std::size_t host,
                                       Ipv4Address src, Ipv4Address dst,
                                       double rate_bps) {
  topo::PoissonGenerator::Config c;
  c.flow.src = src;
  c.flow.dst = dst;
  c.flow.src_port = static_cast<std::uint16_t>(10000 + host);
  c.flow.dst_port = static_cast<std::uint16_t>(20000 + host);
  c.flow.packet_size = 1000;
  c.mean_rate_bps = rate_bps;
  c.start = sim::Time::zero();
  c.stop = sim::Time::millis(4);
  c.seed = seed * 1000 + host;
  return c;
}

constexpr auto kRunSpan = sim::Time::millis(6);

// FNV-1a over every observable the workload can perturb: switch counters,
// per-kind event observations, host rx/tx statistics.
struct Digest {
  std::uint64_t h = 1469598103934665603ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
  void mix_switch(const core::EventSwitch& sw) {
    const auto& c = sw.counters();
    for (std::uint64_t v :
         {c.rx_packets, c.tx_packets, c.tx_bytes, c.parse_drops,
          c.program_drops, c.bad_port_drops, c.recirculated,
          c.recirc_loop_drops, c.generated, c.punts, c.refused_ops}) {
      mix(v);
    }
    for (std::uint64_t v : c.observed) {
      mix(v);
    }
  }
  void mix_host(const topo::Host& host, std::size_t sender) {
    mix(host.tx_packets());
    mix(host.rx_packets());
    mix(host.rx_bytes());
    // Host (sender+1) receives sender's flow on dst_port 20000+sender.
    mix(host.rx_on_port(static_cast<std::uint16_t>(20000 + sender)));
  }
};

struct RunStats {
  std::uint64_t digest = 0;
  std::uint64_t cross_shard = 0;
  std::uint64_t overflows = 0;
};

std::uint64_t run_sequential(std::uint64_t seed, double rate_bps = 200e6) {
  sim::Scheduler sched;
  topo::Network net(sched);
  const topo::Spec spec = make_spec();
  spec.instantiate(net);
  auto progs = make_programs();
  for (std::size_t i = 0; i < spec.num_switches(); ++i) {
    net.sw(i).set_program(progs[i].get());
  }
  std::vector<std::unique_ptr<topo::PoissonGenerator>> gens;
  for (std::size_t h = 0; h < spec.num_hosts(); ++h) {
    const auto dst = net.host((h + 1) % spec.num_hosts()).ip();
    gens.push_back(std::make_unique<topo::PoissonGenerator>(
        sched, net.host(h), gen_cfg(seed, h, net.host(h).ip(), dst, rate_bps)));
    gens.back()->start();
  }
  net.run_until(kRunSpan);
  Digest d;
  for (std::size_t i = 0; i < spec.num_switches(); ++i) {
    d.mix_switch(net.sw(i));
  }
  for (std::size_t h = 0; h < spec.num_hosts(); ++h) {
    d.mix_host(net.host((h + 1) % spec.num_hosts()), h);
  }
  return d.h;
}

RunStats run_parallel(std::uint64_t seed, std::size_t shards,
                      runtime::RuntimeOptions options = {},
                      bool split_run = false, double rate_bps = 200e6,
                      bool contiguous_plan = false) {
  const topo::Spec spec = make_spec();
  runtime::ParallelRuntime rt(spec,
                              contiguous_plan
                                  ? topo::plan_shards_contiguous(spec, shards)
                                  : topo::plan_shards(spec, shards),
                              options);
  auto progs = make_programs();
  for (std::size_t i = 0; i < spec.num_switches(); ++i) {
    rt.sw(i).set_program(progs[i].get());
  }
  std::vector<std::unique_ptr<topo::PoissonGenerator>> gens;
  for (std::size_t h = 0; h < spec.num_hosts(); ++h) {
    const auto dst = rt.host((h + 1) % spec.num_hosts()).ip();
    gens.push_back(std::make_unique<topo::PoissonGenerator>(
        rt.scheduler_of_host(h), rt.host(h),
        gen_cfg(seed, h, rt.host(h).ip(), dst, rate_bps)));
    gens.back()->start();
  }
  if (split_run) {
    rt.run_until(kRunSpan / 3);
    rt.run_until(kRunSpan);
  } else {
    rt.run_until(kRunSpan);
  }
  Digest d;
  for (std::size_t i = 0; i < spec.num_switches(); ++i) {
    d.mix_switch(rt.sw(i));
  }
  for (std::size_t h = 0; h < spec.num_hosts(); ++h) {
    d.mix_host(rt.host((h + 1) % spec.num_hosts()), h);
  }
  return RunStats{d.h, rt.cross_shard_messages(), rt.overflow_messages()};
}

// ---- shard planning --------------------------------------------------------------

TEST(ShardPlan, ContiguousBlockPartitionAndCutDetection) {
  const topo::Spec spec = make_spec();
  const auto plan = topo::plan_shards_contiguous(spec, 2);
  ASSERT_EQ(plan.switch_shard.size(), kLeaves + kSpines);
  // Block partition: first half of the switch list -> shard 0.
  EXPECT_EQ(plan.switch_shard.front(), 0u);
  EXPECT_EQ(plan.switch_shard.back(), 1u);
  // Hosts follow their leaf.
  for (std::size_t h = 0; h < spec.num_hosts(); ++h) {
    EXPECT_EQ(plan.host_shard[h], plan.switch_shard[h]);
  }
  // Every leaf<->spine link whose ends differ is a cut; lookahead is the
  // fabric delay.
  EXPECT_FALSE(plan.cut_links.empty());
  ASSERT_TRUE(plan.lookahead.has_value());
  EXPECT_EQ(*plan.lookahead, sim::Time::micros(2));
  for (std::size_t c : plan.cut_links) {
    const auto& ls = spec.link_spec(c);
    EXPECT_FALSE(ls.host_side);  // host links are never cut under auto-plan
  }
}

TEST(ShardPlan, GreedyPlannerCutsNoMoreThanContiguous) {
  const topo::Spec spec = make_spec();
  for (std::size_t shards : {std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
    const auto greedy = topo::plan_shards(spec, shards);
    const auto block = topo::plan_shards_contiguous(spec, shards);
    EXPECT_LE(greedy.cut_links.size(), block.cut_links.size())
        << shards << " shards";
    EXPECT_LE(greedy.cut_fraction, block.cut_fraction);
    EXPECT_EQ(greedy.num_shards, shards);
    EXPECT_EQ(greedy.empty_shards, 0u);
    // Deterministic: replanning yields the identical assignment.
    const auto again = topo::plan_shards(spec, shards);
    EXPECT_EQ(again.switch_shard, greedy.switch_shard);
    EXPECT_EQ(again.host_shard, greedy.host_shard);
  }
}

TEST(ShardPlan, PairLookaheadMatrixAndCutFraction) {
  const topo::Spec spec = make_spec();
  const auto plan = topo::plan_shards(spec, 2);
  ASSERT_EQ(plan.pair_lookahead_ps.size(), 4u);
  // All cut links are 2us fabric links, both directions of the pair.
  ASSERT_TRUE(plan.pair_lookahead(0, 1).has_value());
  ASSERT_TRUE(plan.pair_lookahead(1, 0).has_value());
  EXPECT_EQ(*plan.pair_lookahead(0, 1), sim::Time::micros(2));
  EXPECT_EQ(*plan.pair_lookahead(1, 0), sim::Time::micros(2));
  // Self-pairs never carry a channel.
  EXPECT_FALSE(plan.pair_lookahead(0, 0).has_value());
  EXPECT_FALSE(plan.pair_lookahead(1, 1).has_value());
  // The matrix min equals the legacy global lookahead.
  EXPECT_EQ(*plan.lookahead, sim::Time::micros(2));
  EXPECT_DOUBLE_EQ(plan.cut_fraction,
                   static_cast<double>(plan.cut_links.size()) /
                       static_cast<double>(spec.num_links()));
  EXPECT_GT(plan.cut_fraction, 0.0);
}

TEST(ShardPlan, ExplicitAssignmentAndNoCuts) {
  const topo::Spec spec = make_spec();
  // Everything in shard 0 of 2: no cut links, no lookahead bound, and the
  // unused shard id is surfaced as an empty shard.
  std::vector<std::size_t> all_zero(spec.num_switches(), 0);
  const auto plan = topo::plan_shards(spec, 2, all_zero);
  EXPECT_TRUE(plan.cut_links.empty());
  EXPECT_FALSE(plan.lookahead.has_value());
  EXPECT_EQ(plan.empty_shards, 1u);
  EXPECT_EQ(plan.cut_fraction, 0.0);
  for (std::int64_t cell : plan.pair_lookahead_ps) {
    EXPECT_EQ(cell, topo::ShardPlan::kNoChannel);
  }
}

// Regression for the degenerate-split bug: asking for more shards than
// switches used to produce empty shards whose worker threads barriered
// every window without ever executing an event. The planner now clamps and
// records the clamp in the plan.
TEST(ShardPlan, ClampsShardsToSwitchCountAndStaysCorrect) {
  // 3-switch line: h0 - sw0 - sw1 - sw2 - h1, fabric links 2us.
  topo::Spec spec;
  spec.add_switch(sw_cfg("sw0", 2));
  spec.add_switch(sw_cfg("sw1", 2));
  spec.add_switch(sw_cfg("sw2", 2));
  topo::Link::Config host_link;
  host_link.delay = sim::Time::micros(1);
  topo::Link::Config fabric_link;
  fabric_link.delay = sim::Time::micros(2);
  spec.connect_host(spec.add_host(host_cfg("h0", Ipv4Address(10, 0, 0, 1))), 0,
                    0, host_link);
  spec.connect_host(spec.add_host(host_cfg("h1", Ipv4Address(10, 0, 2, 1))), 2,
                    0, host_link);
  spec.connect_switches(0, 1, 1, 0, fabric_link);
  spec.connect_switches(1, 1, 2, 1, fabric_link);

  const auto plan = topo::plan_shards(spec, 4);
  EXPECT_EQ(plan.num_shards, 3u);  // clamped: one switch per shard max
  EXPECT_EQ(plan.requested_shards, 4u);
  EXPECT_EQ(plan.empty_shards, 0u);
  const auto contiguous = topo::plan_shards_contiguous(spec, 4);
  EXPECT_EQ(contiguous.num_shards, 3u);
  EXPECT_EQ(contiguous.requested_shards, 4u);

  // The clamped plan still runs and matches the sequential reference.
  auto programs = [] {
    std::vector<std::unique_ptr<topo::L3Program>> progs;
    for (std::size_t i = 0; i < 3; ++i) {
      auto p = std::make_unique<topo::L3Program>();
      // Line routing: sw0/sw1 reach h0 via port 0 and h1 via port 1; sw2
      // has its host on port 0 and its uplink on port 1.
      p->add_route(Ipv4Address(10, 0, 0, 0), 24, i == 2 ? 1 : 0);
      p->add_route(Ipv4Address(10, 0, 2, 0), 24, i == 2 ? 0 : 1);
      progs.push_back(std::move(p));
    }
    return progs;
  };
  const auto run = [&](auto&& body) {
    topo::CbrGenerator::Config gc;
    gc.flow.src = Ipv4Address(10, 0, 0, 1);
    gc.flow.dst = Ipv4Address(10, 0, 2, 1);
    gc.flow.packet_size = 500;
    gc.rate_bps = 50e6;
    gc.stop = sim::Time::millis(1);
    return body(gc);
  };
  const std::uint64_t seq_digest = run([&](auto gc) {
    sim::Scheduler sched;
    topo::Network net(sched);
    spec.instantiate(net);
    auto progs = programs();
    for (std::size_t i = 0; i < 3; ++i) {
      net.sw(i).set_program(progs[i].get());
    }
    topo::CbrGenerator gen(sched, net.host(0), gc);
    gen.start();
    net.run_until(sim::Time::millis(2));
    EXPECT_GT(net.host(1).rx_packets(), 0u);
    Digest d;
    for (std::size_t i = 0; i < 3; ++i) {
      d.mix_switch(net.sw(i));
    }
    d.mix(net.host(1).rx_packets());
    return d.h;
  });
  const std::uint64_t par_digest = run([&](auto gc) {
    runtime::ParallelRuntime rt(spec, plan);
    auto progs = programs();
    for (std::size_t i = 0; i < 3; ++i) {
      rt.sw(i).set_program(progs[i].get());
    }
    topo::CbrGenerator gen(rt.scheduler_of_host(0), rt.host(0), gc);
    gen.start();
    rt.run_until(sim::Time::millis(2));
    Digest d;
    for (std::size_t i = 0; i < 3; ++i) {
      d.mix_switch(rt.sw(i));
    }
    d.mix(rt.host(1).rx_packets());
    return d.h;
  });
  EXPECT_EQ(par_digest, seq_digest);
}

TEST(ShardPlan, SingleShardHasNoCuts) {
  const topo::Spec spec = make_spec();
  const auto plan = topo::plan_shards(spec, 1);
  EXPECT_TRUE(plan.cut_links.empty());
  EXPECT_FALSE(plan.lookahead.has_value());
}

// ---- parallel runtime ------------------------------------------------------------

TEST(ParallelRuntime, CrossShardTrafficIsDelivered) {
  const topo::Spec spec = make_spec();
  runtime::ParallelRuntime rt(spec, topo::plan_shards(spec, 2));
  auto progs = make_programs();
  for (std::size_t i = 0; i < spec.num_switches(); ++i) {
    rt.sw(i).set_program(progs[i].get());
  }
  // Host 0 (shard 0) -> host 3 (shard 1): every packet crosses the cut.
  topo::CbrGenerator::Config gc;
  gc.flow.src = rt.host(0).ip();
  gc.flow.dst = rt.host(3).ip();
  gc.flow.packet_size = 500;
  gc.rate_bps = 100e6;
  gc.stop = sim::Time::millis(2);
  topo::CbrGenerator gen(rt.scheduler_of_host(0), rt.host(0), gc);
  gen.start();

  rt.run_until(sim::Time::millis(4));
  EXPECT_GT(gen.sent(), 40u);
  EXPECT_EQ(rt.host(3).rx_packets(), gen.sent());
  EXPECT_GE(rt.cross_shard_messages(), gen.sent());
  // Adaptive windows: the busy phase still needs hundreds of rounds (the
  // flow keeps both shards' next-event times within one lookahead).
  EXPECT_GT(rt.windows(), 100u);
}

TEST(ParallelRuntime, DeterminismAcrossSeedsAndShardCounts) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::uint64_t reference = run_sequential(seed);
    for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      const RunStats par = run_parallel(seed, shards);
      EXPECT_EQ(par.digest, reference)
          << "seed " << seed << ", " << shards << " shards";
      if (shards > 1) {
        EXPECT_GT(par.cross_shard, 0u);
      }
    }
  }
}

TEST(ParallelRuntime, RepeatedRunUntilMatchesSingleRun) {
  const RunStats one_shot = run_parallel(7, 2);
  const RunStats split = run_parallel(7, 2, {}, /*split_run=*/true);
  EXPECT_EQ(split.digest, one_shot.digest);
  EXPECT_EQ(one_shot.digest, run_sequential(7));
}

// The scenario-engine pattern under the persistent pool: resuming a paused
// run must be invisible in the results, for every seed and shard count.
// The pool's round counter (ring parity) and the in-flight channel minima
// persist across run_until calls; a bug in either shows up here as a
// digest mismatch.
TEST(ParallelRuntime, SplitRunsMatchAcrossSeedsAndShardCounts) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
      const RunStats one_shot = run_parallel(seed, shards);
      const RunStats split =
          run_parallel(seed, shards, {}, /*split_run=*/true);
      EXPECT_EQ(split.digest, one_shot.digest)
          << "seed " << seed << ", " << shards << " shards";
    }
  }
}

// The contiguous planner stays available as a fixed-plan baseline: its
// digests must match the sequential reference too (same events, different
// partition), proving determinism is plan-independent.
TEST(ParallelRuntime, ContiguousPlanMatchesSequential) {
  for (std::uint64_t seed : {std::uint64_t{2}, std::uint64_t{5}}) {
    const std::uint64_t reference = run_sequential(seed);
    for (std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
      const RunStats par = run_parallel(seed, shards, {}, false, 200e6,
                                        /*contiguous_plan=*/true);
      EXPECT_EQ(par.digest, reference)
          << "seed " << seed << ", " << shards << " shards";
    }
  }
}

TEST(ParallelRuntime, RingOverflowFallbackStaysDeterministic) {
  runtime::RuntimeOptions tiny;
  tiny.ring_capacity = 1;  // force the overflow path
  const double heavy = 2e9;  // enough load that >1 packet crosses per window
  const RunStats par =
      run_parallel(3, 2, tiny, /*split_run=*/false, heavy);
  EXPECT_GT(par.overflows, 0u);
  EXPECT_EQ(par.digest, run_sequential(3, heavy));
}

// Overflow stress with real concurrency: four pool threads (max_workers
// overrides the core count), capacity-1 rings, heavy load. Run under TSan
// in CI, this is the witness that the unlocked overflow vectors are
// phase-separated by the round barrier — producers append only while the
// consumer side is parked on the opposite parity.
TEST(ParallelRuntime, RingOverflowStressUnderFourWorkers) {
  runtime::RuntimeOptions opt;
  opt.ring_capacity = 1;
  opt.max_workers = 4;
  const double heavy = 2e9;
  const RunStats par = run_parallel(9, 4, opt, /*split_run=*/true, heavy);
  EXPECT_GT(par.overflows, 0u);
  EXPECT_EQ(par.digest, run_sequential(9, heavy));
}

// Idle-window skipping: once traffic stops (4ms) the shards publish empty
// next-event times and the window fixpoint jumps straight to the deadline
// instead of barriering once per 2us lookahead. 96ms of idle tail under
// the old runtime would cost 48000 windows on its own.
TEST(ParallelRuntime, IdleWindowsAreSkipped) {
  const topo::Spec spec = make_spec();
  runtime::ParallelRuntime rt(spec, topo::plan_shards(spec, 2));
  auto progs = make_programs();
  for (std::size_t i = 0; i < spec.num_switches(); ++i) {
    rt.sw(i).set_program(progs[i].get());
  }
  std::vector<std::unique_ptr<topo::PoissonGenerator>> gens;
  for (std::size_t h = 0; h < spec.num_hosts(); ++h) {
    const auto dst = rt.host((h + 1) % spec.num_hosts()).ip();
    gens.push_back(std::make_unique<topo::PoissonGenerator>(
        rt.scheduler_of_host(h), rt.host(h),
        gen_cfg(11, h, rt.host(h).ip(), dst, 200e6)));
    gens.back()->start();
  }
  rt.run_until(sim::Time::millis(100));
  // Active phase is 4ms; under the old fixed-window runtime the full run
  // would cost 100ms / 2us = 50000 windows. The adaptive windows must not
  // pay for the quiet 96ms.
  EXPECT_LT(rt.windows(), 10000u);
  EXPECT_GT(rt.windows(), 100u);  // the busy phase still synchronizes
}

TEST(ParallelRuntime, ShardIdTagIsApplied) {
  const topo::Spec spec = make_spec();
  runtime::ParallelRuntime rt(spec, topo::plan_shards(spec, 2));
  for (std::size_t i = 0; i < spec.num_switches(); ++i) {
    EXPECT_EQ(rt.sw(i).shard_id(), rt.shard_of_switch(i));
  }
}

}  // namespace
}  // namespace edp
