// Unit tests for edp::core — events, timing wheel, packet generator, the
// shared/aggregated registers, the event merger, the event switch, the
// baseline comparator, and the resource model.
#include <gtest/gtest.h>

#include "core/aggregated_register.hpp"
#include "core/baseline_switch.hpp"
#include "core/event.hpp"
#include "core/event_merger.hpp"
#include "core/event_switch.hpp"
#include "core/packet_generator.hpp"
#include "core/resource_model.hpp"
#include "core/shared_register.hpp"
#include "core/timer_wheel.hpp"
#include "net/packet_builder.hpp"

namespace edp::core {
namespace {

// ---- events -------------------------------------------------------------------

TEST(Event, AllThirteenKindsHaveNames) {
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    EXPECT_NE(to_string(static_cast<EventKind>(k)), "Unknown");
  }
}

TEST(Event, FactoryTagsKindAndPayload) {
  tm_::EnqueueRecord enq;
  enq.pkt_len = 123;
  enq.when = sim::Time::micros(7);
  const Event e = Event::enqueue(enq);
  EXPECT_EQ(e.kind, EventKind::kEnqueue);
  EXPECT_EQ(e.created, sim::Time::micros(7));
  EXPECT_EQ(std::get<tm_::EnqueueRecord>(e.data).pkt_len, 123u);

  const Event t = Event::timer(TimerEventData{1, 2, {}, {}},
                               sim::Time::micros(1));
  EXPECT_EQ(t.kind, EventKind::kTimer);
}

// ---- timing wheel ----------------------------------------------------------------

TEST(TimingWheel, FiresAtExactTick) {
  TimingWheel wheel;
  wheel.add(10, 0xaa);
  std::vector<TimingWheel::Expired> out;
  wheel.advance_to(9, out);
  EXPECT_TRUE(out.empty());
  wheel.advance_to(10, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].cookie, 0xaau);
  EXPECT_EQ(out[0].fire_tick, 10u);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimingWheel, LongDelaysCascadeCorrectly) {
  TimingWheel wheel;
  // Far beyond level 0 (256 ticks) and level 1 (65536 ticks).
  wheel.add(300, 1);
  wheel.add(70'000, 2);
  wheel.add(17'000'000, 3);
  std::vector<TimingWheel::Expired> out;
  wheel.advance_to(20'000'000, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].cookie, 1u);
  EXPECT_EQ(out[0].fire_tick, 300u);
  EXPECT_EQ(out[1].cookie, 2u);
  EXPECT_EQ(out[1].fire_tick, 70'000u);
  EXPECT_EQ(out[2].cookie, 3u);
  EXPECT_EQ(out[2].fire_tick, 17'000'000u);
}

TEST(TimingWheel, CancelSuppressesFire) {
  TimingWheel wheel;
  const TimerId id = wheel.add(50, 9);
  wheel.add(60, 10);
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id + 100));
  std::vector<TimingWheel::Expired> out;
  wheel.advance_to(100, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].cookie, 10u);
}

TEST(TimingWheel, PastTicksClampToNextTick) {
  TimingWheel wheel;
  std::vector<TimingWheel::Expired> out;
  wheel.advance_to(100, out);
  wheel.add(50, 1);  // in the past -> clamps to 101
  wheel.advance_to(101, out);
  ASSERT_EQ(out.size(), 1u);
}

TEST(TimingWheel, NextExpiryHintNeverOvershoots) {
  TimingWheel wheel;
  wheel.add(42, 1);
  const auto hint = wheel.next_expiry_hint();
  ASSERT_TRUE(hint.has_value());
  EXPECT_LE(*hint, 42u);
  EXPECT_EQ(*hint, 42u);  // within level 0, the hint is exact
  EXPECT_FALSE(TimingWheel().next_expiry_hint().has_value());
}

TEST(TimingWheel, ManyTimersSameSlotDistinctLaps) {
  TimingWheel wheel;
  // Same level-0 slot (5), different laps: 5, 261.
  wheel.add(5, 1);
  wheel.add(5 + 256, 2);
  std::vector<TimingWheel::Expired> out;
  wheel.advance_to(5, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].cookie, 1u);
  wheel.advance_to(261, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].cookie, 2u);
}

// ---- timer block ------------------------------------------------------------------

TEST(TimerBlock, PeriodicFiresAtConfiguredRate) {
  sim::Scheduler sched;
  TimerBlock timers(sched, sim::Time::micros(1));
  std::vector<sim::Time> fires;
  timers.on_expire = [&](const TimerEventData& d) {
    fires.push_back(d.fired_at);
    EXPECT_EQ(d.cookie, 0x77u);
  };
  timers.set_periodic(sim::Time::micros(100), 0x77);
  sched.run_until(sim::Time::millis(1));
  EXPECT_EQ(fires.size(), 10u);
  EXPECT_EQ(fires[0], sim::Time::micros(100));
  EXPECT_EQ(fires[9], sim::Time::micros(1000));
}

TEST(TimerBlock, OneShotFiresOnce) {
  sim::Scheduler sched;
  TimerBlock timers(sched, sim::Time::micros(1));
  int fires = 0;
  timers.on_expire = [&](const TimerEventData&) { ++fires; };
  timers.set_oneshot(sim::Time::micros(50));
  sched.run_until(sim::Time::millis(10));
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(timers.pending(), 0u);
}

TEST(TimerBlock, CancelPeriodicByStableId) {
  sim::Scheduler sched;
  TimerBlock timers(sched, sim::Time::micros(1));
  int fires = 0;
  timers.on_expire = [&](const TimerEventData&) { ++fires; };
  const TimerId id = timers.set_periodic(sim::Time::micros(100));
  sched.run_until(sim::Time::micros(350));
  EXPECT_EQ(fires, 3);
  // The public id survives re-arming.
  EXPECT_TRUE(timers.cancel(id));
  sched.run_until(sim::Time::millis(2));
  EXPECT_EQ(fires, 3);
}

TEST(TimerBlock, QuantizesToResolution) {
  sim::Scheduler sched;
  TimerBlock timers(sched, sim::Time::micros(10));
  std::vector<sim::Time> fires;
  timers.on_expire =
      [&](const TimerEventData& d) { fires.push_back(d.fired_at); };
  timers.set_oneshot(sim::Time::micros(15));
  sched.run_until(sim::Time::millis(1));
  ASSERT_EQ(fires.size(), 1u);
  // 15 us at 10 us resolution fires on a 10 us boundary >= 15 us.
  EXPECT_EQ(fires[0], sim::Time::micros(20));
}

TEST(TimerBlock, ManyIndependentPeriodics) {
  sim::Scheduler sched;
  TimerBlock timers(sched, sim::Time::micros(1));
  std::array<int, 3> fires{};
  timers.on_expire = [&](const TimerEventData& d) {
    ++fires[static_cast<std::size_t>(d.cookie)];
  };
  timers.set_periodic(sim::Time::micros(100), 0);
  timers.set_periodic(sim::Time::micros(250), 1);
  timers.set_periodic(sim::Time::micros(997), 2);
  sched.run_until(sim::Time::millis(10));
  EXPECT_EQ(fires[0], 100);
  EXPECT_EQ(fires[1], 40);
  EXPECT_EQ(fires[2], 10);
}

TEST(TimerBlock, BatchDeliveryCoalescesSameTickExpirations) {
  // Several timers expiring on the same wheel tick must arrive as ONE
  // on_expire_batch call, carrying the same records in the same order the
  // per-record on_expire path would have seen.
  sim::Scheduler sched;
  TimerBlock timers(sched, sim::Time::micros(1));
  std::vector<std::size_t> burst_sizes;
  std::vector<std::uint64_t> cookies;
  timers.on_expire_batch = [&](const TimerEventData* d, std::size_t n) {
    burst_sizes.push_back(n);
    for (std::size_t i = 0; i < n; ++i) {
      cookies.push_back(d[i].cookie);
    }
  };
  // Four one-shots on one tick (set in a deliberate non-cookie order), one
  // straggler a tick later.
  timers.set_oneshot(sim::Time::micros(50), 10);
  timers.set_oneshot(sim::Time::micros(50), 11);
  timers.set_oneshot(sim::Time::micros(50), 12);
  timers.set_oneshot(sim::Time::micros(50), 13);
  timers.set_oneshot(sim::Time::micros(51), 14);
  sched.run_until(sim::Time::millis(1));
  EXPECT_EQ(burst_sizes, (std::vector<std::size_t>{4, 1}));
  EXPECT_EQ(cookies,
            (std::vector<std::uint64_t>{10, 11, 12, 13, 14}));
  EXPECT_EQ(timers.fired(), 5u);
}

TEST(TimerBlock, BatchAndSingleDeliveryAgree) {
  // Differential: the same periodic/one-shot mix produces identical
  // (cookie, fired_at) streams whichever delivery hook is installed.
  const auto run_mode = [](bool batched) {
    sim::Scheduler sched;
    TimerBlock timers(sched, sim::Time::micros(1));
    std::vector<std::pair<std::uint64_t, std::int64_t>> log;
    const auto record = [&log](const TimerEventData& d) {
      log.emplace_back(d.cookie, d.fired_at.ps());
    };
    if (batched) {
      timers.on_expire_batch = [&](const TimerEventData* d, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
          record(d[i]);
        }
      };
    } else {
      timers.on_expire = record;
    }
    timers.set_periodic(sim::Time::micros(100), 1);
    timers.set_periodic(sim::Time::micros(100), 2);  // same tick as 1
    timers.set_periodic(sim::Time::micros(333), 3);
    timers.set_oneshot(sim::Time::micros(500), 4);
    sched.run_until(sim::Time::millis(5));
    return log;
  };
  EXPECT_EQ(run_mode(true), run_mode(false));
}

// ---- packet generator ---------------------------------------------------------------

TEST(PacketGenerator, PeriodicEmission) {
  sim::Scheduler sched;
  PacketGenerator gen(sched);
  int emitted = 0;
  gen.on_generate = [&](GeneratorId, net::Packet p) {
    ++emitted;
    EXPECT_EQ(p.size(), 64u);
  };
  PacketGenerator::Config cfg;
  cfg.packet_template = net::Packet(64);
  cfg.period = sim::Time::micros(100);
  cfg.start_immediately = true;
  gen.add(cfg);
  sched.run_until(sim::Time::micros(450));
  EXPECT_EQ(emitted, 5);  // t = 0, 100, 200, 300, 400
}

TEST(PacketGenerator, CountLimitedBurst) {
  sim::Scheduler sched;
  PacketGenerator gen(sched);
  int emitted = 0;
  gen.on_generate = [&](GeneratorId, net::Packet) { ++emitted; };
  PacketGenerator::Config cfg;
  cfg.packet_template = net::Packet(100);
  cfg.period = sim::Time::micros(10);
  cfg.count = 3;
  gen.add(cfg);
  sched.run_until(sim::Time::millis(1));
  EXPECT_EQ(emitted, 3);
  EXPECT_EQ(gen.active(), 0u);  // finished generators are removed
}

TEST(PacketGenerator, RemoveStopsEmission) {
  sim::Scheduler sched;
  PacketGenerator gen(sched);
  int emitted = 0;
  gen.on_generate = [&](GeneratorId, net::Packet) { ++emitted; };
  PacketGenerator::Config cfg;
  cfg.packet_template = net::Packet(60);
  cfg.period = sim::Time::micros(10);
  const GeneratorId id = gen.add(cfg);
  sched.run_until(sim::Time::micros(35));
  EXPECT_TRUE(gen.remove(id));
  EXPECT_FALSE(gen.remove(id));
  sched.run_until(sim::Time::millis(1));
  EXPECT_EQ(emitted, 4);  // t = 0, 10, 20, 30
}

TEST(PacketGenerator, TriggerAndTemplateUpdate) {
  sim::Scheduler sched;
  PacketGenerator gen(sched);
  std::vector<std::size_t> sizes;
  gen.on_generate = [&](GeneratorId, net::Packet p) {
    sizes.push_back(p.size());
  };
  PacketGenerator::Config cfg;
  cfg.packet_template = net::Packet(64);
  cfg.period = sim::Time::zero();  // no periodic emission
  cfg.count = 1000;                // stays alive for manual triggering
  cfg.start_immediately = true;
  const GeneratorId id = gen.add(cfg);
  sched.run(100);
  gen.trigger(id, 2);
  EXPECT_TRUE(gen.set_template(id, net::Packet(128)));
  gen.trigger(id, 1);
  ASSERT_EQ(sizes.size(), 4u);  // 1 initial + 2 + 1
  EXPECT_EQ(sizes[1], 64u);
  EXPECT_EQ(sizes[3], 128u);
}

// ---- shared register ----------------------------------------------------------------

TEST(SharedRegister, ThreadsShareStateImmediately) {
  SharedRegister<std::int64_t> reg("r", 16, 3);
  reg.rmw(5, [](std::int64_t v) { return v + 100; }, ThreadId::kEnqueue, 1);
  std::int64_t seen = 0;
  reg.read(5, seen, ThreadId::kIngress, 1);
  EXPECT_EQ(seen, 100);  // zero staleness
  reg.rmw(5, [](std::int64_t v) { return v - 40; }, ThreadId::kDequeue, 1);
  reg.read(5, seen, ThreadId::kIngress, 2);
  EXPECT_EQ(seen, 60);
}

TEST(SharedRegister, PortBudgetVerification) {
  SharedRegister<std::int64_t> reg("r", 4, 2);
  std::int64_t v;
  reg.read(0, v, ThreadId::kIngress, 10);
  reg.read(1, v, ThreadId::kEnqueue, 10);
  EXPECT_EQ(reg.overcommitted_cycles(), 0u);
  reg.read(2, v, ThreadId::kDequeue, 10);  // third access in cycle 10
  EXPECT_EQ(reg.overcommitted_cycles(), 1u);
  EXPECT_EQ(reg.accesses(ThreadId::kIngress), 1u);
  EXPECT_EQ(reg.total_accesses(), 3u);
}

// ---- aggregated register --------------------------------------------------------------

TEST(AggregatedRegister, PacketOpsHitMainDirectly) {
  AggregatedRegister reg("r", 8);
  reg.packet_add(3, 500, 1);
  EXPECT_EQ(reg.packet_read(3, 2), 500);
  EXPECT_EQ(reg.true_value(3), 500);
}

TEST(AggregatedRegister, EventOpsAreStaleUntilDrained) {
  AggregatedRegister reg("r", 8);
  reg.enqueue_add(2, 300, 10);
  // Main register hasn't seen the delta yet: stale read.
  EXPECT_EQ(reg.packet_read(2, 11), 0);
  EXPECT_EQ(reg.true_value(2), 300);
  EXPECT_EQ(reg.backlog(), 1u);
  // One idle cycle drains it.
  EXPECT_EQ(reg.drain(12, 1), 1u);
  EXPECT_EQ(reg.packet_read(2, 13), 300);
  EXPECT_EQ(reg.backlog(), 0u);
}

TEST(AggregatedRegister, CoalescingMergesSameIndex) {
  AggregatedRegister reg("r", 8);
  reg.enqueue_add(1, 100, 1);
  reg.enqueue_add(1, 100, 2);
  reg.enqueue_add(1, 100, 3);
  EXPECT_EQ(reg.backlog(), 1u);  // coalesced into one pending entry
  reg.drain(4, 1);
  EXPECT_EQ(reg.main_value(1), 300);
}

TEST(AggregatedRegister, EnqueueAndDequeueArraysAreSeparate) {
  AggregatedRegister reg("r", 8);
  reg.enqueue_add(1, 1000, 1);
  reg.dequeue_add(1, -400, 1);
  EXPECT_EQ(reg.backlog(), 2u);
  EXPECT_EQ(reg.true_value(1), 600);
  reg.drain_all(2);
  EXPECT_EQ(reg.main_value(1), 600);
  EXPECT_EQ(reg.backlog(), 0u);
}

TEST(AggregatedRegister, StalenessTracking) {
  AggregatedRegister reg("r", 8);
  reg.enqueue_add(0, 10, 100);
  reg.enqueue_add(1, 10, 100);
  EXPECT_EQ(reg.oldest_age(110), 10u);
  reg.drain(110, 2);
  EXPECT_EQ(reg.drained(), 2u);
  EXPECT_EQ(reg.staleness_max(), 10u);
  EXPECT_DOUBLE_EQ(reg.staleness_mean(), 10.0);
  EXPECT_EQ(reg.backlog_max(), 2u);
}

TEST(AggregatedRegister, DrainBudgetRespected) {
  AggregatedRegister reg("r", 16);
  for (std::size_t i = 0; i < 10; ++i) {
    reg.enqueue_add(i, 1, 1);
  }
  EXPECT_EQ(reg.drain(2, 4), 4u);
  EXPECT_EQ(reg.backlog(), 6u);
}

TEST(AggregatedRegister, FootprintIsTripleMain) {
  AggregatedRegister reg("r", 128);
  EXPECT_EQ(reg.bytes(), 3u * 128u * sizeof(std::int64_t));
}

// ---- event merger -----------------------------------------------------------------------

MergerConfig merger_cfg() {
  MergerConfig c;
  c.cycle_time = sim::Time::nanos(10);
  c.event_fifo_depth = 4;
  c.packet_fifo_depth = 8;
  return c;
}

TEST(EventMerger, PacketGetsSlotOnClockGrid) {
  sim::Scheduler sched;
  EventMerger merger(sched, merger_cfg());
  std::vector<SlotWork> slots;
  merger.on_slot = [&](SlotWork&& w) { slots.push_back(std::move(w)); };
  sched.at(sim::Time::nanos(13), [&] {
    merger.submit_packet(net::Packet(64), PacketOrigin::kIngress);
  });
  sched.run(100);
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_TRUE(slots[0].packet.has_value());
  EXPECT_EQ(slots[0].time, sim::Time::nanos(20));  // aligned up
  EXPECT_EQ(slots[0].cycle, 2u);
}

TEST(EventMerger, EventsPiggybackOnPackets) {
  sim::Scheduler sched;
  EventMerger merger(sched, merger_cfg());
  std::vector<SlotWork> slots;
  merger.on_slot = [&](SlotWork&& w) { slots.push_back(std::move(w)); };
  merger.submit_event(Event::timer(TimerEventData{}, sched.now()));
  merger.submit_packet(net::Packet(64), PacketOrigin::kIngress);
  sched.run(100);
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_TRUE(slots[0].packet.has_value());
  ASSERT_EQ(slots[0].events.size(), 1u);
  EXPECT_FALSE(slots[0].carrier);
  EXPECT_EQ(merger.events_piggybacked(), 1u);
  EXPECT_EQ(merger.events_on_carrier(), 0u);
}

TEST(EventMerger, CarrierSlotWhenNoPacket) {
  sim::Scheduler sched;
  EventMerger merger(sched, merger_cfg());
  std::vector<SlotWork> slots;
  merger.on_slot = [&](SlotWork&& w) { slots.push_back(std::move(w)); };
  merger.submit_event(Event::timer(TimerEventData{}, sched.now()));
  sched.run(100);
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_FALSE(slots[0].packet.has_value());
  EXPECT_TRUE(slots[0].carrier);
  EXPECT_EQ(merger.slots_carrier(), 1u);
}

TEST(EventMerger, OnePerKindPerSlot) {
  sim::Scheduler sched;
  EventMerger merger(sched, merger_cfg());
  std::vector<SlotWork> slots;
  merger.on_slot = [&](SlotWork&& w) { slots.push_back(std::move(w)); };
  // Two timer events (same kind) + one link event.
  merger.submit_event(Event::timer(TimerEventData{1, 0, {}, {}}, sched.now()));
  merger.submit_event(Event::timer(TimerEventData{2, 0, {}, {}}, sched.now()));
  merger.submit_event(
      Event::link_status(LinkStatusEventData{0, false, sched.now()}));
  sched.run(100);
  ASSERT_EQ(slots.size(), 2u);
  // Slot 1: one timer + the link event; slot 2: the second timer.
  EXPECT_EQ(slots[0].events.size(), 2u);
  EXPECT_EQ(slots[1].events.size(), 1u);
  EXPECT_EQ(slots[1].time - slots[0].time, sim::Time::nanos(10));
}

TEST(EventMerger, FifoOverflowDropsEvents) {
  sim::Scheduler sched;
  EventMerger merger(sched, merger_cfg());  // depth 4
  merger.on_slot = [](SlotWork&&) {};
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    accepted += merger.submit_event(
        Event::timer(TimerEventData{}, sched.now()));
  }
  EXPECT_EQ(accepted, 4);
  const auto& st = merger.kind_stats(EventKind::kTimer);
  EXPECT_EQ(st.submitted, 10u);
  EXPECT_EQ(st.dropped, 6u);
}

TEST(EventMerger, PacketBacklogBounded) {
  sim::Scheduler sched;
  EventMerger merger(sched, merger_cfg());  // packet fifo depth 8
  merger.on_slot = [](SlotWork&&) {};
  int accepted = 0;
  for (int i = 0; i < 12; ++i) {
    accepted += merger.submit_packet(net::Packet(64), PacketOrigin::kIngress);
  }
  EXPECT_EQ(accepted, 8);
  EXPECT_EQ(merger.packet_backlog_drops(), 4u);
}

TEST(EventMerger, WaitTimesMeasured) {
  sim::Scheduler sched;
  EventMerger merger(sched, merger_cfg());
  merger.on_slot = [](SlotWork&&) {};
  merger.submit_event(Event::timer(TimerEventData{}, sched.now()));
  sched.run(10);
  const auto& st = merger.kind_stats(EventKind::kTimer);
  EXPECT_EQ(st.delivered, 1u);
  EXPECT_GE(st.wait_max, sim::Time::zero());
  EXPECT_LE(st.wait_max, sim::Time::nanos(10));
}

TEST(EventMerger, PerSlotBudgetLimitsEventCount) {
  sim::Scheduler sched;
  MergerConfig cfg = merger_cfg();
  cfg.events_per_slot = 1;
  EventMerger merger(sched, cfg);
  std::vector<SlotWork> slots;
  merger.on_slot = [&](SlotWork&& w) { slots.push_back(std::move(w)); };
  merger.submit_event(Event::timer(TimerEventData{}, sched.now()));
  merger.submit_event(
      Event::link_status(LinkStatusEventData{0, false, sched.now()}));
  sched.run(100);
  // Two different kinds, but the shared budget is 1 per slot.
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots[0].events.size(), 1u);
  EXPECT_EQ(slots[1].events.size(), 1u);
}

TEST(EventMerger, PriorityOrdersKindsUnderBudget) {
  sim::Scheduler sched;
  MergerConfig cfg = merger_cfg();
  cfg.events_per_slot = 1;
  // Link status outranks timers.
  cfg.priority[static_cast<std::size_t>(EventKind::kLinkStatus)] = 5;
  EventMerger merger(sched, cfg);
  std::vector<SlotWork> slots;
  merger.on_slot = [&](SlotWork&& w) { slots.push_back(std::move(w)); };
  // Submit the low-priority kind first; it would win a FIFO/kind-order
  // race, but priority must put link status in the first slot.
  merger.submit_event(Event::timer(TimerEventData{}, sched.now()));
  merger.submit_event(
      Event::link_status(LinkStatusEventData{2, false, sched.now()}));
  sched.run(100);
  ASSERT_EQ(slots.size(), 2u);
  ASSERT_EQ(slots[0].events.size(), 1u);
  EXPECT_EQ(slots[0].events[0].kind, EventKind::kLinkStatus);
  EXPECT_EQ(slots[1].events[0].kind, EventKind::kTimer);
}

TEST(AggregatedRegister, DrainPolicyStrictPriority) {
  // One drain credit, one pending entry in each array: the policy decides
  // which array's update becomes visible.
  AggregatedRegister enq_first("r", 8, DrainPolicy::kEnqueueFirst);
  enq_first.enqueue_add(0, 100, 1);
  enq_first.dequeue_add(1, -50, 1);
  enq_first.drain(2, 1);
  EXPECT_EQ(enq_first.main_value(0), 100);
  EXPECT_EQ(enq_first.main_value(1), 0);  // dequeue still pending

  AggregatedRegister deq_first("r", 8, DrainPolicy::kDequeueFirst);
  deq_first.enqueue_add(0, 100, 1);
  deq_first.dequeue_add(1, -50, 1);
  deq_first.drain(2, 1);
  EXPECT_EQ(deq_first.main_value(0), 0);
  EXPECT_EQ(deq_first.main_value(1), -50);
}

TEST(AggregatedRegister, PendingErrorExposesStaleness) {
  AggregatedRegister reg("r", 8);
  EXPECT_EQ(reg.pending_error(3), 0);
  reg.enqueue_add(3, 700, 1);
  reg.dequeue_add(3, -200, 1);
  // The §4 staleness-awareness API: main lags truth by exactly this much.
  EXPECT_EQ(reg.pending_error(3), 500);
  EXPECT_EQ(reg.main_value(3) + reg.pending_error(3), reg.true_value(3));
  reg.drain_all(2);
  EXPECT_EQ(reg.pending_error(3), 0);
}

TEST(EventMerger, BackToBackSlotsUnderLoad) {
  sim::Scheduler sched;
  EventMerger merger(sched, merger_cfg());
  std::vector<sim::Time> slot_times;
  merger.on_slot = [&](SlotWork&& w) { slot_times.push_back(w.time); };
  for (int i = 0; i < 5; ++i) {
    merger.submit_packet(net::Packet(64), PacketOrigin::kIngress);
  }
  sched.run(100);
  ASSERT_EQ(slot_times.size(), 5u);
  for (std::size_t i = 1; i < slot_times.size(); ++i) {
    EXPECT_EQ(slot_times[i] - slot_times[i - 1], sim::Time::nanos(10));
  }
  EXPECT_EQ(merger.last_gap_cycles(), 0u);
}

// ---- event switch -------------------------------------------------------------------------

EventSwitchConfig switch_cfg() {
  EventSwitchConfig c;
  c.num_ports = 2;
  c.port_rate_bps = 10e9;
  c.merger.cycle_time = sim::Time::nanos(5);
  c.timer_resolution = sim::Time::micros(1);
  return c;
}

/// Minimal program: forwards everything to a fixed port and records which
/// handlers ran.
class RecordingProgram : public EventProgram {
 public:
  explicit RecordingProgram(std::uint16_t out_port) : out_(out_port) {}

  void on_ingress(pisa::Phv& phv, EventContext&) override {
    ++ingress;
    phv.std_meta.egress_port = out_;
  }
  void on_enqueue(const tm_::EnqueueRecord&, EventContext&) override {
    ++enqueue;
  }
  void on_dequeue(const tm_::DequeueRecord&, EventContext&) override {
    ++dequeue;
  }
  void on_timer(const TimerEventData&, EventContext&) override { ++timer; }
  void on_link_status(const LinkStatusEventData& e, EventContext&) override {
    ++link;
    last_link = e;
  }
  void on_control(const ControlEventData& e, EventContext&) override {
    ++control;
    last_control = e;
  }
  void on_user(const UserEventData&, EventContext&) override { ++user; }
  void on_generated(pisa::Phv& phv, EventContext&) override {
    ++generated;
    phv.std_meta.egress_port = out_;
  }

  int ingress = 0, enqueue = 0, dequeue = 0, timer = 0, link = 0;
  int control = 0, user = 0, generated = 0;
  LinkStatusEventData last_link;
  ControlEventData last_control;

 private:
  std::uint16_t out_;
};

net::Packet test_packet(std::size_t size = 200) {
  return net::make_udp_packet(net::Ipv4Address(10, 0, 0, 1),
                              net::Ipv4Address(10, 0, 1, 1), 1, 2, size);
}

TEST(EventSwitch, ForwardsPacketAndFiresBufferEvents) {
  sim::Scheduler sched;
  EventSwitch sw(sched, switch_cfg());
  RecordingProgram prog(1);
  sw.set_program(&prog);
  std::vector<net::Packet> out;
  sw.connect_tx(1, [&](net::Packet p) { out.push_back(std::move(p)); });

  sw.receive(0, test_packet());
  sched.run(10'000);

  EXPECT_EQ(prog.ingress, 1);
  EXPECT_EQ(prog.enqueue, 1);
  EXPECT_EQ(prog.dequeue, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 200u);
  EXPECT_EQ(sw.counters().rx_packets, 1u);
  EXPECT_EQ(sw.counters().tx_packets, 1u);
}

TEST(EventSwitch, TimerEventsReachProgram) {
  sim::Scheduler sched;
  EventSwitch sw(sched, switch_cfg());
  RecordingProgram prog(1);
  sw.set_program(&prog);
  sw.set_periodic_timer(sim::Time::micros(100), 1);
  // Fires at 100..1000 us; allow a little slack for the merger slot that
  // carries the final event (the timer itself keeps running, so bound by
  // time, not by event count).
  sched.run_until(sim::Time::micros(1050));
  EXPECT_EQ(prog.timer, 10);
}

TEST(EventSwitch, LinkStatusEventsReachProgram) {
  sim::Scheduler sched;
  EventSwitch sw(sched, switch_cfg());
  RecordingProgram prog(1);
  sw.set_program(&prog);
  sw.set_link_status(0, false);
  sw.set_link_status(0, false);  // no change -> no event
  sw.set_link_status(0, true);
  sched.run(1000);
  EXPECT_EQ(prog.link, 2);
  EXPECT_TRUE(prog.last_link.up);
  EXPECT_EQ(prog.last_link.port, 0);
}

TEST(EventSwitch, ControlAndUserEvents) {
  sim::Scheduler sched;
  EventSwitch sw(sched, switch_cfg());
  RecordingProgram prog(1);
  sw.set_program(&prog);
  ControlEventData cd;
  cd.opcode = 9;
  cd.args = {1, 2, 3, 4};
  EXPECT_TRUE(sw.control_event(cd));
  EXPECT_TRUE(sw.raise_user_event(UserEventData{5, {}}));
  sched.run(1000);
  EXPECT_EQ(prog.control, 1);
  EXPECT_EQ(prog.last_control.opcode, 9u);
  EXPECT_EQ(prog.user, 1);
}

TEST(EventSwitch, GeneratedPacketsTraverseProgram) {
  sim::Scheduler sched;
  EventSwitch sw(sched, switch_cfg());
  RecordingProgram prog(1);
  sw.set_program(&prog);
  int tx = 0;
  sw.connect_tx(1, [&](net::Packet) { ++tx; });
  PacketGenerator::Config g;
  g.packet_template = test_packet(64);
  g.period = sim::Time::micros(10);
  g.count = 5;
  sw.add_generator(std::move(g));
  sched.run_until(sim::Time::millis(1));
  sched.run(1000);
  EXPECT_EQ(prog.generated, 5);
  EXPECT_EQ(tx, 5);
  EXPECT_EQ(sw.counters().generated, 5u);
}

TEST(EventSwitch, DropAndBadPortAccounting) {
  sim::Scheduler sched;
  EventSwitch sw(sched, switch_cfg());

  class Dropper : public EventProgram {
   public:
    void on_ingress(pisa::Phv& phv, EventContext&) override {
      if (phv.std_meta.packet_length > 100) {
        phv.std_meta.drop = true;
      } else {
        phv.std_meta.egress_port = 77;  // out of range
      }
    }
  } prog;
  sw.set_program(&prog);

  sw.receive(0, test_packet(200));  // dropped by program
  sw.receive(0, test_packet(64));   // bad port
  sched.run(1000);
  EXPECT_EQ(sw.counters().program_drops, 1u);
  EXPECT_EQ(sw.counters().bad_port_drops, 1u);
  EXPECT_EQ(sw.counters().tx_packets, 0u);
}

TEST(EventSwitch, RecirculationReentersPipeline) {
  sim::Scheduler sched;
  EventSwitch sw(sched, switch_cfg());

  class Recirc : public EventProgram {
   public:
    void on_ingress(pisa::Phv& phv, EventContext&) override {
      ++ingress;
      phv.std_meta.recirculate = true;  // first pass: go around
    }
    void on_recirculate(pisa::Phv& phv, EventContext&) override {
      ++recirc;
      phv.std_meta.egress_port = 1;
    }
    int ingress = 0;
    int recirc = 0;
  } prog;
  sw.set_program(&prog);
  int tx = 0;
  sw.connect_tx(1, [&](net::Packet) { ++tx; });

  sw.receive(0, test_packet());
  sched.run(10'000);
  EXPECT_EQ(prog.ingress, 1);
  EXPECT_EQ(prog.recirc, 1);
  EXPECT_EQ(tx, 1);
  EXPECT_EQ(sw.counters().recirculated, 1u);
}

TEST(EventSwitch, TransmitPacingAtLineRate) {
  sim::Scheduler sched;
  EventSwitchConfig cfg = switch_cfg();
  cfg.port_rate_bps = 1e9;  // 1 Gb/s: 1500B takes 12 us
  EventSwitch sw(sched, cfg);
  RecordingProgram prog(1);
  sw.set_program(&prog);
  std::vector<sim::Time> tx_times;
  sw.connect_tx(1, [&](net::Packet) { tx_times.push_back(sched.now()); });
  sw.receive(0, test_packet(1500));
  sw.receive(0, test_packet(1500));
  sched.run(10'000);
  ASSERT_EQ(tx_times.size(), 2u);
  EXPECT_EQ(tx_times[1] - tx_times[0], sim::Time::micros(12));
}

TEST(EventSwitch, DownLinkHoldsTraffic) {
  sim::Scheduler sched;
  EventSwitch sw(sched, switch_cfg());
  RecordingProgram prog(1);
  sw.set_program(&prog);
  int tx = 0;
  sw.connect_tx(1, [&](net::Packet) { ++tx; });
  sw.set_link_status(1, false);
  sw.receive(0, test_packet());
  sched.run(10'000);
  EXPECT_EQ(tx, 0);
  EXPECT_GT(sw.traffic_manager().port_bytes(1), 0u);
  sw.set_link_status(1, true);
  sched.run(10'000);
  EXPECT_EQ(tx, 1);
}

TEST(EventSwitch, EventDeliveryPolicyToggle) {
  sim::Scheduler sched;
  EventSwitch sw(sched, switch_cfg());
  RecordingProgram prog(1);
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});
  sw.enable_event(EventKind::kEnqueue, false);
  sw.receive(0, test_packet());
  sched.run(10'000);
  EXPECT_EQ(prog.enqueue, 0);  // disabled
  EXPECT_EQ(prog.dequeue, 1);  // still on
  // Observed counters see the event regardless of delivery.
  EXPECT_EQ(sw.counters()
                .observed[static_cast<std::size_t>(EventKind::kEnqueue)],
            1u);
}

TEST(EventSwitch, PuntReachesControlPlane) {
  sim::Scheduler sched;
  EventSwitch sw(sched, switch_cfg());
  class Punter : public EventProgram {
   public:
    void on_ingress(pisa::Phv& phv, EventContext& ctx) override {
      ControlEventData msg;
      msg.opcode = 42;
      ctx.notify_control_plane(msg);
      phv.std_meta.drop = true;
    }
  } prog;
  sw.set_program(&prog);
  std::vector<ControlEventData> punts;
  sw.on_punt = [&](const ControlEventData& m) { punts.push_back(m); };
  sw.receive(0, test_packet());
  sched.run(1000);
  ASSERT_EQ(punts.size(), 1u);
  EXPECT_EQ(punts[0].opcode, 42u);
  EXPECT_EQ(sw.counters().punts, 1u);
}

TEST(EventSwitch, ContextGeneratorTriggerAndTemplate) {
  sim::Scheduler sched;
  EventSwitch sw(sched, switch_cfg());
  class Prog : public EventProgram {
   public:
    void on_attach(EventContext& ctx) override {
      PacketGenerator::Config g;
      g.packet_template = net::Packet(64);
      g.period = sim::Time::zero();
      g.count = 1000;  // manual triggering only
      gen_id = ctx.add_generator(std::move(g));
    }
    void on_timer(const TimerEventData&, EventContext& ctx) override {
      // Rewrite the template, then emit two copies on demand.
      ctx.set_generator_template(gen_id, net::Packet(256));
      ctx.trigger_generator(gen_id, 2);
    }
    void on_generated(pisa::Phv& phv, EventContext&) override {
      sizes.push_back(phv.std_meta.packet_length);
      phv.std_meta.drop = true;
    }
    GeneratorId gen_id = 0;
    std::vector<std::uint32_t> sizes;
  } prog;
  sw.set_program(&prog);
  sw.set_oneshot_timer(sim::Time::micros(10), 0);
  sched.run_until(sim::Time::millis(1));
  // One immediate emission at attach (64B) + two triggered (256B).
  ASSERT_EQ(prog.sizes.size(), 3u);
  EXPECT_EQ(prog.sizes[0], 64u);
  EXPECT_EQ(prog.sizes[1], 256u);
  EXPECT_EQ(prog.sizes[2], 256u);
}

TEST(EventSwitch, EventEnabledReflectsPolicy) {
  sim::Scheduler sched;
  EventSwitch sw(sched, switch_cfg());
  EXPECT_TRUE(sw.event_enabled(EventKind::kEnqueue));
  EXPECT_FALSE(sw.event_enabled(EventKind::kPacketTransmitted));
  sw.enable_event(EventKind::kPacketTransmitted, true);
  EXPECT_TRUE(sw.event_enabled(EventKind::kPacketTransmitted));
  sw.enable_event(EventKind::kEnqueue, false);
  EXPECT_FALSE(sw.event_enabled(EventKind::kEnqueue));
  // Baseline architectures have nothing to enable.
  EventSwitchConfig bcfg = switch_cfg();
  bcfg.event_architecture = false;
  EventSwitch bsw(sched, bcfg);
  bsw.enable_event(EventKind::kEnqueue, true);
  EXPECT_FALSE(bsw.event_enabled(EventKind::kEnqueue));
}

TEST(EventSwitch, ProgramInjectedPacketsTraversePipeline) {
  sim::Scheduler sched;
  EventSwitch sw(sched, switch_cfg());
  class Injector : public EventProgram {
   public:
    void on_timer(const TimerEventData&, EventContext& ctx) override {
      // Program-built packet enters as a GeneratedPacket event.
      ctx.inject_packet(net::make_udp_packet(net::Ipv4Address(1, 1, 1, 1),
                                             net::Ipv4Address(2, 2, 2, 2), 3,
                                             4, 128));
    }
    void on_generated(pisa::Phv& phv, EventContext&) override {
      ++generated;
      phv.std_meta.egress_port = 1;
    }
    int generated = 0;
  } prog;
  sw.set_program(&prog);
  int tx = 0;
  sw.connect_tx(1, [&](net::Packet p) {
    ++tx;
    EXPECT_EQ(p.size(), 128u);
  });
  sw.set_oneshot_timer(sim::Time::micros(10), 0);
  sched.run_until(sim::Time::millis(1));
  EXPECT_EQ(prog.generated, 1);
  EXPECT_EQ(tx, 1);
}

TEST(EventSwitch, SendPacketBypassesIngress) {
  sim::Scheduler sched;
  EventSwitch sw(sched, switch_cfg());
  class DirectSender : public EventProgram {
   public:
    void on_timer(const TimerEventData&, EventContext& ctx) override {
      ctx.send_packet(net::Packet(64), 1);
    }
    void on_ingress(pisa::Phv&, EventContext&) override { ++ingress; }
    int ingress = 0;
  } prog;
  sw.set_program(&prog);
  int tx = 0;
  sw.connect_tx(1, [&](net::Packet) { ++tx; });
  sw.set_oneshot_timer(sim::Time::micros(10), 0);
  sched.run_until(sim::Time::millis(1));
  EXPECT_EQ(tx, 1);
  EXPECT_EQ(prog.ingress, 0);  // never re-entered the ingress pipeline
  // send_packet to an out-of-range port is refused and counted.
  EXPECT_FALSE(sw.send_packet(net::Packet(64), 99, 0));
  EXPECT_EQ(sw.counters().bad_port_drops, 1u);
}

TEST(EventSwitch, CyclesElapsedTracksActivity) {
  sim::Scheduler sched;
  EventSwitchConfig cfg = switch_cfg();  // 5 ns cycle
  EventSwitch sw(sched, cfg);
  RecordingProgram prog(1);
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});
  EXPECT_EQ(sw.cycles_elapsed(), 0u);  // no slot yet
  sw.receive(0, test_packet());
  sched.run_until(sim::Time::micros(1));
  const std::uint64_t after_first = sw.cycles_elapsed();
  EXPECT_GE(after_first, 1u);
  sched.run_until(sim::Time::micros(2));
  EXPECT_GT(sw.cycles_elapsed(), after_first);  // wall cycles keep counting
}

TEST(TimerBlock, CancelOneShotBeforeFire) {
  sim::Scheduler sched;
  TimerBlock timers(sched, sim::Time::micros(1));
  int fires = 0;
  timers.on_expire = [&](const TimerEventData&) { ++fires; };
  const TimerId id = timers.set_oneshot(sim::Time::micros(100), 0);
  EXPECT_TRUE(timers.cancel(id));
  EXPECT_FALSE(timers.cancel(id));  // already gone
  sched.run_until(sim::Time::millis(1));
  EXPECT_EQ(fires, 0);
  EXPECT_EQ(timers.fired(), 0u);
}

TEST(EventMerger, BacklogAccounting) {
  sim::Scheduler sched;
  EventMerger merger(sched, merger_cfg());
  merger.on_slot = [](SlotWork&&) {};
  EXPECT_EQ(merger.event_backlog(), 0u);
  merger.submit_event(Event::timer(TimerEventData{}, sched.now()));
  merger.submit_event(
      Event::link_status(LinkStatusEventData{0, false, sched.now()}));
  EXPECT_EQ(merger.event_backlog(), 2u);
  sched.run(100);
  EXPECT_EQ(merger.event_backlog(), 0u);
}

TEST(EventSwitch, EgressCloneRecirculatesACopy) {
  sim::Scheduler sched;
  EventSwitchConfig cfg = switch_cfg();
  cfg.egress_pipeline = true;
  cfg.event_architecture = false;  // the §6 trick is baseline-legal
  EventSwitch sw(sched, cfg);
  class CloningProgram : public EventProgram {
   public:
    void on_ingress(pisa::Phv& phv, EventContext&) override {
      ++ingress;
      phv.std_meta.egress_port = 1;
    }
    void on_egress(pisa::Phv& phv, EventContext&) override {
      phv.std_meta.recirc_clone = true;
    }
    void on_recirculate(pisa::Phv& phv, EventContext&) override {
      ++clones;
      phv.std_meta.drop = true;  // consume the signal
    }
    int ingress = 0;
    int clones = 0;
  } prog;
  sw.set_program(&prog);
  int tx = 0;
  sw.connect_tx(1, [&](net::Packet) { ++tx; });
  sw.receive(0, test_packet());
  sched.run(10'000);
  EXPECT_EQ(prog.ingress, 1);  // clones enter via on_recirculate, not ingress
  EXPECT_EQ(prog.clones, 1);   // exactly one clone, not a loop
  EXPECT_EQ(tx, 1);            // the original still left the port
  EXPECT_EQ(sw.counters().recirculated, 1u);
}

TEST(EventSwitch, EgressCloneRespectsRecirculationGuard) {
  sim::Scheduler sched;
  EventSwitchConfig cfg = switch_cfg();
  cfg.egress_pipeline = true;
  cfg.max_recirculations = 3;
  EventSwitch sw(sched, cfg);
  class LoopProgram : public EventProgram {
   public:
    void on_ingress(pisa::Phv& phv, EventContext&) override {
      phv.std_meta.egress_port = 1;
    }
    void on_recirculate(pisa::Phv& phv, EventContext&) override {
      ++clones;
      phv.std_meta.egress_port = 1;  // keep forwarding the clone too
    }
    void on_egress(pisa::Phv& phv, EventContext&) override {
      phv.std_meta.recirc_clone = true;  // pathological: clone forever
    }
    int clones = 0;
  } prog;
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});
  sw.receive(0, test_packet());
  sched.run(100'000);
  EXPECT_TRUE(sched.empty());           // the guard terminated the loop
  EXPECT_EQ(prog.clones, 3);            // exactly max_recirculations
}

TEST(EventSwitch, MulticastReplicatesToGroupMembers) {
  sim::Scheduler sched;
  EventSwitchConfig cfg = switch_cfg();
  cfg.num_ports = 4;
  EventSwitch sw(sched, cfg);
  class McastProg : public EventProgram {
   public:
    void on_ingress(pisa::Phv& phv, EventContext&) override {
      phv.std_meta.mcast_group = 7;
    }
  } prog;
  sw.set_program(&prog);
  sw.set_multicast_group(7, {1, 2, 3});
  int tx[4] = {0, 0, 0, 0};
  for (std::uint16_t p = 1; p < 4; ++p) {
    sw.connect_tx(p, [&tx, p](net::Packet) { ++tx[p]; });
  }
  sw.receive(0, test_packet());
  sched.run(10'000);
  EXPECT_EQ(tx[1], 1);
  EXPECT_EQ(tx[2], 1);
  EXPECT_EQ(tx[3], 1);
  EXPECT_EQ(sw.counters().tx_packets, 3u);
  // Each replica produced its own enqueue event.
  EXPECT_EQ(sw.counters()
                .observed[static_cast<std::size_t>(EventKind::kEnqueue)],
            3u);
}

TEST(EventSwitch, MulticastUnknownGroupDrops) {
  sim::Scheduler sched;
  EventSwitch sw(sched, switch_cfg());
  class McastProg : public EventProgram {
   public:
    void on_ingress(pisa::Phv& phv, EventContext&) override {
      phv.std_meta.mcast_group = 99;  // never configured
    }
  } prog;
  sw.set_program(&prog);
  sw.receive(0, test_packet());
  sched.run(1000);
  EXPECT_EQ(sw.counters().bad_port_drops, 1u);
  EXPECT_EQ(sw.counters().tx_packets, 0u);
}

TEST(EventSwitch, DescribeSummarizesActivity) {
  sim::Scheduler sched;
  EventSwitch sw(sched, switch_cfg());
  RecordingProgram prog(1);
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});
  sw.receive(0, test_packet());
  sched.run(10'000);
  const std::string d = sw.describe();
  EXPECT_NE(d.find("event-driven"), std::string::npos);
  EXPECT_NE(d.find("rx=1"), std::string::npos);
  EXPECT_NE(d.find("BufferEnqueue"), std::string::npos);
}

// ---- baseline switch --------------------------------------------------------------------

TEST(BaselineSwitch, RefusesEventFacilities) {
  sim::Scheduler sched;
  BaselineSwitch bsw(sched, switch_cfg());
  RecordingProgram prog(1);
  bsw.set_program(&prog);

  EventContext& ctx = bsw.device();
  EXPECT_EQ(ctx.set_periodic_timer(sim::Time::micros(100), 0), 0u);
  EXPECT_EQ(ctx.set_oneshot_timer(sim::Time::micros(100), 0), 0u);
  EXPECT_EQ(ctx.add_generator(PacketGenerator::Config{}), 0u);
  EXPECT_FALSE(ctx.raise_user_event(UserEventData{}));
  EXPECT_FALSE(ctx.inject_packet(net::Packet(64)));
  EXPECT_FALSE(bsw.device().control_event(ControlEventData{}));
  EXPECT_EQ(bsw.counters().refused_ops, 6u);
}

TEST(BaselineSwitch, PacketEventsStillWork) {
  sim::Scheduler sched;
  BaselineSwitch bsw(sched, switch_cfg());
  RecordingProgram prog(1);
  bsw.set_program(&prog);
  int tx = 0;
  bsw.connect_tx(1, [&](net::Packet) { ++tx; });
  bsw.receive(0, test_packet());
  sched.run(10'000);
  EXPECT_EQ(prog.ingress, 1);
  EXPECT_EQ(tx, 1);
  // Buffer events happen in hardware but never reach the program.
  EXPECT_EQ(prog.enqueue, 0);
  EXPECT_EQ(prog.dequeue, 0);
  EXPECT_EQ(bsw.counters()
                .observed[static_cast<std::size_t>(EventKind::kEnqueue)],
            1u);
}

TEST(BaselineSwitch, ControlPlanePacketOutWorks) {
  sim::Scheduler sched;
  BaselineSwitch bsw(sched, switch_cfg());
  RecordingProgram prog(1);
  bsw.set_program(&prog);
  int tx = 0;
  bsw.connect_tx(1, [&](net::Packet) { ++tx; });
  bsw.inject_from_control_plane(test_packet());
  sched.run(10'000);
  EXPECT_EQ(prog.ingress, 1);
  EXPECT_EQ(tx, 1);
}

// ---- resource model ------------------------------------------------------------------------

TEST(ResourceModel, Table3ShapeHolds) {
  const auto cost = ResourceModel::event_logic(EventLogicParams{});
  const auto pct =
      ResourceModel::percent_of(cost, DeviceBudget::virtex7_690t());
  // Paper Table 3: LUT +0.5%, FF +0.4%, BRAM +2.0%. The model must land in
  // the same regime: all small, BRAM the largest.
  EXPECT_GT(pct.luts, 0.1);
  EXPECT_LT(pct.luts, 1.5);
  EXPECT_GT(pct.flip_flops, 0.1);
  EXPECT_LT(pct.flip_flops, 1.5);
  EXPECT_GT(pct.bram36, 1.0);
  EXPECT_LT(pct.bram36, 3.0);
  EXPECT_GT(pct.bram36, pct.luts);
  EXPECT_GT(pct.bram36, pct.flip_flops);
}

TEST(ResourceModel, BreakdownSumsToTotal) {
  const EventLogicParams p;
  const auto items = ResourceModel::event_logic_breakdown(p);
  ResourceVector sum;
  for (const auto& item : items) {
    sum = sum + item.cost;
  }
  const auto total = ResourceModel::event_logic(p);
  EXPECT_DOUBLE_EQ(sum.luts, total.luts);
  EXPECT_DOUBLE_EQ(sum.flip_flops, total.flip_flops);
  EXPECT_DOUBLE_EQ(sum.bram36, total.bram36);
  EXPECT_GE(items.size(), 5u);
}

TEST(ResourceModel, CostScalesWithFifoDepth) {
  EventLogicParams small;
  small.fifo_depth = 128;
  EventLogicParams big;
  big.fifo_depth = 4096;
  EXPECT_GT(ResourceModel::event_logic(big).bram36,
            ResourceModel::event_logic(small).bram36);
}

TEST(ResourceModel, FromConfigTracksMergerDepth) {
  EventSwitchConfig cfg;
  cfg.merger.event_fifo_depth = 2048;
  cfg.num_ports = 8;
  const auto p = EventLogicParams::from_config(cfg);
  EXPECT_EQ(p.fifo_depth, 2048u);
  EXPECT_EQ(p.num_ports, 8u);
}

}  // namespace
}  // namespace edp::core
