// Unit tests for edp::sim — time, randomness, and the discrete-event
// scheduler that everything else rides on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "sim/inline_callback.hpp"
#include "sim/object_pool.hpp"
#include "sim/random.hpp"
#include "sim/ring_queue.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace edp::sim {

/// Test-only access to Scheduler internals, for driving the slot generation
/// counter to its wraparound point without 2^32 schedule/cancel cycles.
class SchedulerTestPeer {
 public:
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu);
  }
  static std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static void set_slot_generation(Scheduler& s, std::uint32_t slot,
                                  std::uint32_t gen) {
    s.slots_[slot].gen = gen;
  }
};

namespace {

// ---- Time ---------------------------------------------------------------------

TEST(Time, NamedConstructorsAgree) {
  EXPECT_EQ(Time::nanos(1).ps(), 1'000);
  EXPECT_EQ(Time::micros(1).ps(), 1'000'000);
  EXPECT_EQ(Time::millis(1).ps(), 1'000'000'000);
  EXPECT_EQ(Time::seconds(1).ps(), 1'000'000'000'000);
  EXPECT_EQ(Time::micros(3), Time::nanos(3000));
}

TEST(Time, ArithmeticAndComparisons) {
  const Time a = Time::micros(5);
  const Time b = Time::micros(2);
  EXPECT_EQ((a + b).ps(), Time::micros(7).ps());
  EXPECT_EQ((a - b).ps(), Time::micros(3).ps());
  EXPECT_EQ((a * 3).ps(), Time::micros(15).ps());
  EXPECT_EQ((a / 5).ps(), Time::micros(1).ps());
  EXPECT_EQ(a / b, 2);  // duration ratio truncates
  EXPECT_EQ((a % b).ps(), Time::micros(1).ps());
  EXPECT_LT(b, a);
  EXPECT_GE(a, a);
}

TEST(Time, FromSecondsRoundsToPicoseconds) {
  EXPECT_EQ(Time::from_seconds(1e-6).ps(), 1'000'000);
  EXPECT_EQ(Time::from_seconds(0.5).ps(), 500'000'000'000);
}

TEST(Time, ConversionsToFloating) {
  const Time t = Time::micros(1500);
  EXPECT_DOUBLE_EQ(t.as_micros(), 1500.0);
  EXPECT_DOUBLE_EQ(t.as_millis(), 1.5);
  EXPECT_DOUBLE_EQ(t.as_seconds(), 0.0015);
}

TEST(Time, ToStringPicksUnits) {
  EXPECT_EQ(Time::zero().to_string(), "0s");
  EXPECT_EQ(Time::picos(500).to_string(), "500ps");
  EXPECT_NE(Time::micros(12).to_string().find("us"), std::string::npos);
  EXPECT_NE(Time::millis(3).to_string().find("ms"), std::string::npos);
}

TEST(Time, SerializationTime) {
  // 1500 bytes at 10 Gb/s = 1.2 us.
  EXPECT_EQ(serialization_time(1500, 10e9), Time::nanos(1200));
  // 64 bytes at 10 Gb/s = 51.2 ns.
  EXPECT_EQ(serialization_time(64, 10e9).ps(), 51'200);
  EXPECT_EQ(serialization_time(1500, 0), Time::zero());
}

TEST(Time, RateBps) {
  EXPECT_DOUBLE_EQ(rate_bps(1250, Time::micros(1)), 10e9);
  EXPECT_DOUBLE_EQ(rate_bps(100, Time::zero()), 0.0);
}

// ---- Random -------------------------------------------------------------------

TEST(Random, DeterministicForSeed) {
  Random a(42), b(42), c(43);
  std::vector<std::uint64_t> va, vb, vc;
  for (int i = 0; i < 64; ++i) {
    va.push_back(a.next_u64());
    vb.push_back(b.next_u64());
    vc.push_back(c.next_u64());
  }
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(Random, UniformRespectsBound) {
  Random rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.uniform(13), 13u);
  }
  EXPECT_EQ(rng.uniform(0), 0u);
  EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Random, UniformRangeInclusive) {
  Random rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Random, Uniform01InHalfOpenInterval) {
  Random rng(9);
  double sum = 0;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100'000, 0.5, 0.01);
}

TEST(Random, ChanceEdgeCases) {
  Random rng(1);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_FALSE(rng.chance(-1.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_TRUE(rng.chance(2.0));
  int heads = 0;
  for (int i = 0; i < 100'000; ++i) {
    heads += rng.chance(0.25);
  }
  EXPECT_NEAR(heads / 100'000.0, 0.25, 0.01);
}

TEST(Random, ExponentialHasRequestedMean) {
  Random rng(5);
  double sum = 0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(3.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 3.0, 0.05);
}

TEST(Random, ParetoBoundedBelowByXm) {
  Random rng(6);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Random, ForkProducesIndependentStream) {
  Random a(11);
  Random b = a.fork();
  // The forked stream must differ from the parent's continued stream.
  bool differs = false;
  for (int i = 0; i < 16; ++i) {
    if (a.next_u64() != b.next_u64()) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Random, PermutationIsValid) {
  Random rng(3);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(ZipfSampler, SkewFavorsLowRanks) {
  Random rng(12);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100'000; ++i) {
    ++counts[zipf.sample(rng)];
  }
  // Rank 0 must dominate rank 50 heavily under skew 1.2.
  EXPECT_GT(counts[0], counts[50] * 10);
  // Every sample in range (vector indexing would have crashed otherwise).
  int total = 0;
  for (const int c : counts) {
    total += c;
  }
  EXPECT_EQ(total, 100'000);
}

// ---- Scheduler -----------------------------------------------------------------

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.at(Time::micros(3), [&] { order.push_back(3); });
  sched.at(Time::micros(1), [&] { order.push_back(1); });
  sched.at(Time::micros(2), [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), Time::micros(3));
}

TEST(Scheduler, SameTimeIsFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.at(Time::micros(5), [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  int fired = 0;
  const EventId id = sched.at(Time::micros(1), [&] { ++fired; });
  sched.at(Time::micros(2), [&] { ++fired; });
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));       // double cancel
  EXPECT_FALSE(sched.cancel(999'999));  // unknown id
  sched.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, CancelAfterFireIsDetectedNoOp) {
  Scheduler sched;
  int fired = 0;
  const EventId id = sched.at(Time::micros(1), [&] { ++fired; });
  sched.at(Time::micros(5), [&] { ++fired; });
  sched.run_until(Time::micros(2));  // first callback has fired
  EXPECT_EQ(fired, 1);
  // Cancelling the fired id must fail and must NOT disturb the pending
  // accounting of the remaining event.
  EXPECT_FALSE(sched.cancel(id));
  EXPECT_FALSE(sched.empty());
  sched.run();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(sched.empty());
}

TEST(Scheduler, RunUntilAdvancesClockEvenWhenIdle) {
  Scheduler sched;
  sched.run_until(Time::millis(5));
  EXPECT_EQ(sched.now(), Time::millis(5));
}

TEST(Scheduler, RunUntilExecutesOnlyDueEvents) {
  Scheduler sched;
  int fired = 0;
  sched.at(Time::micros(1), [&] { ++fired; });
  sched.at(Time::micros(10), [&] { ++fired; });
  sched.run_until(Time::micros(5));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sched.empty());
  sched.run();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(sched.empty());
}

TEST(Scheduler, CallbacksMayScheduleMore) {
  Scheduler sched;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) {
      sched.after(Time::micros(1), chain);
    }
  };
  sched.after(Time::micros(1), chain);
  sched.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sched.now(), Time::micros(5));
  EXPECT_EQ(sched.executed(), 5u);
}

TEST(Scheduler, MaxEventsGuardStopsRunawayLoops) {
  Scheduler sched;
  std::function<void()> forever = [&] { sched.after(Time::picos(1), forever); };
  sched.after(Time::picos(1), forever);
  const std::size_t executed = sched.run(1000);
  EXPECT_EQ(executed, 1000u);
  EXPECT_FALSE(sched.empty());
}

TEST(PeriodicTask, FiresAtPeriod) {
  Scheduler sched;
  int fires = 0;
  PeriodicTask task(sched, Time::micros(10), [&] { ++fires; });
  task.start();
  sched.run_until(Time::micros(95));
  EXPECT_EQ(fires, 9);  // t=10..90
  EXPECT_TRUE(task.running());
}

TEST(PeriodicTask, StopHaltsFiring) {
  Scheduler sched;
  int fires = 0;
  PeriodicTask task(sched, Time::micros(10), [&] { ++fires; });
  task.start();
  sched.run_until(Time::micros(35));
  task.stop();
  sched.run_until(Time::micros(200));
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, CallbackMayStopItself) {
  Scheduler sched;
  int fires = 0;
  PeriodicTask task(sched, Time::micros(1), [&] {
    if (++fires == 4) {
      task.stop();
    }
  });
  task.start();
  sched.run_until(Time::millis(1));
  EXPECT_EQ(fires, 4);
}

TEST(Scheduler, CancelOwnIdFromWithinFiringCallbackIsNoOp) {
  Scheduler sched;
  EventId id = 0;
  bool self_cancel_result = true;
  int other_fired = 0;
  id = sched.at(Time::micros(1), [&] {
    // The slot is released before the callback runs, so cancelling the
    // id of the event currently firing must be a detected no-op.
    self_cancel_result = sched.cancel(id);
  });
  sched.at(Time::micros(2), [&] { ++other_fired; });
  sched.run();
  EXPECT_FALSE(self_cancel_result);
  EXPECT_EQ(other_fired, 1);
  EXPECT_TRUE(sched.empty());
}

TEST(Scheduler, CancelPeerFromWithinFiringCallback) {
  Scheduler sched;
  int fired = 0;
  const EventId peer = sched.at(Time::micros(2), [&] { ++fired; });
  sched.at(Time::micros(1), [&] { EXPECT_TRUE(sched.cancel(peer)); });
  sched.run();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.executed(), 1u);
}

TEST(Scheduler, CancelIdScheduledAtNow) {
  Scheduler sched;
  sched.run_until(Time::micros(5));
  int fired = 0;
  const EventId id = sched.at(sched.now(), [&] { ++fired; });
  EXPECT_EQ(sched.pending(), 1u);
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_TRUE(sched.empty());
  sched.run();  // collects the stale heap entry without firing anything
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sched.now(), Time::micros(5));
}

TEST(Scheduler, SlotReuseMintsDistinctIds) {
  Scheduler sched;
  const EventId a = sched.at(Time::micros(1), [] {});
  EXPECT_TRUE(sched.cancel(a));
  const EventId b = sched.at(Time::micros(1), [] {});
  // Same storage slot, different generation: the old handle stays dead.
  EXPECT_EQ(SchedulerTestPeer::slot_of(a), SchedulerTestPeer::slot_of(b));
  EXPECT_NE(a, b);
  EXPECT_FALSE(sched.cancel(a));  // stale id
  EXPECT_FALSE(sched.cancel(a));  // double-cancel of a stale id
  EXPECT_TRUE(sched.cancel(b));
  EXPECT_FALSE(sched.cancel(b));  // double-cancel of the live id
  EXPECT_TRUE(sched.empty());
}

TEST(Scheduler, IdReuseAfterGenerationWraparound) {
  Scheduler sched;
  const EventId a = sched.at(Time::micros(1), [] {});
  EXPECT_EQ(SchedulerTestPeer::gen_of(a), 1u);
  EXPECT_TRUE(sched.cancel(a));
  // Drive the freed slot to the last generation before wraparound.
  SchedulerTestPeer::set_slot_generation(sched, SchedulerTestPeer::slot_of(a),
                                         0xFFFFFFFFu);
  int fired = 0;
  const EventId b = sched.at(Time::micros(2), [&] { ++fired; });
  ASSERT_EQ(SchedulerTestPeer::slot_of(b), SchedulerTestPeer::slot_of(a));
  EXPECT_EQ(SchedulerTestPeer::gen_of(b), 0xFFFFFFFFu);
  EXPECT_FALSE(sched.cancel(a));  // pre-wrap id must not hit the new event
  sched.run();
  EXPECT_EQ(fired, 1);
  // Releasing the slot wrapped its generation, skipping 0: the next id on
  // this slot has generation 1 (0 stays reserved as the "none" sentinel).
  const EventId c = sched.at(Time::micros(3), [] {});
  ASSERT_EQ(SchedulerTestPeer::slot_of(c), SchedulerTestPeer::slot_of(a));
  EXPECT_EQ(SchedulerTestPeer::gen_of(c), 1u);
  EXPECT_NE(c, 0u);
  EXPECT_TRUE(sched.cancel(c));
}

TEST(Scheduler, PendingIsExactUnderCancellation) {
  Scheduler sched;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sched.after(Time::micros(i + 1), [] {}));
  }
  EXPECT_EQ(sched.pending(), 100u);
  for (int i = 0; i < 100; i += 2) {
    sched.cancel(ids[static_cast<std::size_t>(i)]);
  }
  // Exact immediately — not "minus lazily-collected heap entries".
  EXPECT_EQ(sched.pending(), 50u);
  EXPECT_FALSE(sched.empty());
  sched.run();
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_EQ(sched.executed(), 50u);
  EXPECT_TRUE(sched.empty());
}

// ---- Timing-wheel tier + batch APIs -------------------------------------------

namespace {

/// Horizon of the default wheel in absolute time: kSlots ticks of
/// 2^kDefaultResBits picoseconds each (~2.1 ms).
constexpr Time wheel_horizon() {
  return Time::picos(static_cast<std::int64_t>(WheelTier::kSlots)
                     << WheelTier::kDefaultResBits);
}

}  // namespace

TEST(Scheduler, WheelCascadeAcrossHorizonBoundary) {
  // Entries past the wheel horizon start in the overflow heap and must
  // cascade into the wheel — and fire in exact time order — as the cursor
  // advances past multiple horizons.
  Scheduler sched;
  std::vector<int> order;
  const Time h = wheel_horizon();
  // One event per half-horizon, spanning five horizons, inserted shuffled.
  const int kEvents = 10;
  for (int i = kEvents - 1; i >= 0; --i) {
    sched.at(Time::picos(h.ps() / 2 * (i + 1)),
             [&order, i] { order.push_back(i); });
  }
  EXPECT_GT(sched.pending(), 0u);
  sched.run();
  for (int i = 0; i < kEvents; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(sched.wheel_entries(), 0u);
}

TEST(Scheduler, CancelWorksInBothTiers) {
  // One event within the wheel horizon, one far beyond it (heap tier);
  // cancel must be O(1)-honest in both: pending() drops immediately and
  // neither callback runs.
  Scheduler sched;
  int fired = 0;
  const Time h = wheel_horizon();
  const EventId near_id = sched.at(Time::nanos(100), [&] { ++fired; });
  const EventId far_id =
      sched.at(Time::picos(h.ps() * 10), [&] { ++fired; });
  sched.at(Time::nanos(200), [&] { ++fired; });  // survivor (wheel)
  sched.at(Time::picos(h.ps() * 20), [&] { ++fired; });  // survivor (heap)
  EXPECT_EQ(sched.pending(), 4u);
  EXPECT_TRUE(sched.cancel(near_id));
  EXPECT_TRUE(sched.cancel(far_id));
  EXPECT_EQ(sched.pending(), 2u);
  EXPECT_FALSE(sched.cancel(near_id));
  EXPECT_FALSE(sched.cancel(far_id));
  sched.run();
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, BatchAndSingleInsertsShareOneTotalOrder) {
  // at_batch() mints sequence numbers in array order, so a batch interleaved
  // with plain at() calls fires exactly as the equivalent flat at() sequence
  // would: by (when, scheduling order).
  Scheduler sched;
  std::vector<int> order;
  const Time t = Time::micros(5);
  sched.at(t, [&] { order.push_back(0); });
  Scheduler::BatchItem items[3];
  items[0] = {t, InlineCallback([&] { order.push_back(1); })};
  items[1] = {Time::micros(1), InlineCallback([&] { order.push_back(-1); })};
  items[2] = {t, InlineCallback([&] { order.push_back(2); })};
  sched.at_batch(items, 3);
  sched.at(t, [&] { order.push_back(3); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3}));
}

TEST(Scheduler, CancelBatchCountsOnlyGenuinePending) {
  Scheduler sched;
  int fired = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(sched.at(Time::micros(10 + i), [&] { ++fired; }));
  }
  const EventId early = sched.at(Time::micros(1), [&] { ++fired; });
  sched.run_until(Time::micros(2));  // `early` has fired
  ids.push_back(early);              // already fired: must not count
  ids.push_back(0);                  // never-valid id: must not count
  EXPECT_EQ(sched.cancel_batch(ids.data(), ids.size()), 8u);
  sched.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sched.empty());
}

TEST(Scheduler, WheelAndHeapOnlyModesFireIdentically) {
  // Differential check of the whole tiering machinery: a pseudo-random
  // schedule with duplicate fire times and cancellations must produce a
  // bit-identical (label, time) fire log whether the wheel tier is on or
  // off — the wheel changes *where* entries wait, never the order.
  const auto run_mode = [](bool use_wheel) {
    Scheduler sched{SchedulerOptions{use_wheel, WheelTier::kDefaultResBits}};
    std::vector<std::pair<int, std::int64_t>> log;
    Random rng(0xC0FFEE);
    std::vector<EventId> ids;
    for (int i = 0; i < 500; ++i) {
      // 200 distinct instants over ~3.5 wheel horizons: plenty of exact
      // same-time collisions plus both tiers exercised.
      const auto when =
          Time::picos(static_cast<std::int64_t>(rng.uniform(200)) *
                      37'000'000);
      ids.push_back(sched.at(when, [&log, i, &sched] {
        log.emplace_back(i, sched.now().ps());
      }));
    }
    for (int i = 0; i < 500; i += 3) {
      sched.cancel(ids[static_cast<std::size_t>(i)]);
    }
    sched.run();
    return log;
  };
  EXPECT_EQ(run_mode(true), run_mode(false));
}

TEST(Scheduler, RunUntilDeadlineSplitsAWheelTick) {
  // Two events share one wheel bucket (same 524 ns tick) but straddle a
  // run_until deadline: only the due one may fire, and the later one must
  // survive, still pending, to the next call.
  Scheduler sched;
  std::vector<int> order;
  sched.at(Time::picos(100'000), [&] { order.push_back(1); });
  sched.at(Time::picos(400'000), [&] { order.push_back(2); });
  ASSERT_EQ(WheelTier{}.tick_of(Time::picos(100'000)),
            WheelTier{}.tick_of(Time::picos(400'000)));
  sched.run_until(Time::picos(200'000));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sched.pending(), 1u);
  sched.run_until(Time::picos(500'000));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_TRUE(sched.empty());
}

TEST(Scheduler, CallbackSchedulingIntoItsOwnTickFiresInOrder) {
  // An event scheduled *during* a burst, landing later in the same wheel
  // tick, must fire within that same drain — after everything earlier,
  // before everything later (the same-tick merge heap in fire_tick).
  Scheduler sched;
  std::vector<int> order;
  sched.at(Time::picos(100'000), [&] {
    order.push_back(1);
    sched.at(Time::picos(300'000), [&] { order.push_back(2); });
  });
  sched.at(Time::picos(400'000), [&] { order.push_back(3); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), Time::picos(400'000));
}

TEST(Scheduler, ScheduleAfterDrainingStaleBucketMakesProgress) {
  // Regression for the cursor anomaly: drain a tick whose entries were all
  // cancelled (fires nothing), then schedule again into the now-current
  // tick — run() must fire it rather than spin or skip.
  Scheduler sched;
  int fired = 0;
  const EventId a = sched.at(Time::picos(100'000), [&] { ++fired; });
  const EventId b = sched.at(Time::picos(200'000), [&] { ++fired; });
  sched.cancel(a);
  sched.cancel(b);
  sched.run_until(Time::picos(300'000));
  EXPECT_EQ(fired, 0);
  sched.at(Time::picos(350'000), [&] { ++fired; });
  sched.run();
  EXPECT_EQ(fired, 1);
}

TEST(WheelTier, NextOccupiedTickScansAcrossBitmapWrap) {
  WheelTier w;
  // Park the cursor late in the slot array so the next occupied tick sits
  // past the bitmap's wrap point.
  const std::uint64_t cursor = WheelTier::kSlots - 3;
  w.set_cursor(cursor);
  const std::uint64_t target = cursor + 7;  // wraps: (kSlots - 3 + 7) & mask
  w.insert(target, QueueEntry{Time::zero(), 1, 0, 1});
  ASSERT_TRUE(w.next_occupied_tick().has_value());
  EXPECT_EQ(*w.next_occupied_tick(), target);
  std::vector<QueueEntry> out;
  EXPECT_EQ(w.take_bucket(target, out), 1u);
  EXPECT_EQ(w.count(), 0u);
  EXPECT_FALSE(w.next_occupied_tick().has_value());
}

TEST(WheelTier, BucketIsolationAcrossLaps) {
  // Ticks one full lap apart map to the same slot index; the horizon check
  // (covers) is what keeps them from mixing. Verify covers() draws the line
  // exactly at kSlots ticks.
  WheelTier w;
  w.set_cursor(100);
  EXPECT_TRUE(w.covers(100));
  EXPECT_TRUE(w.covers(100 + WheelTier::kSlots - 1));
  EXPECT_FALSE(w.covers(100 + WheelTier::kSlots));
}

// ---- InlineCallback -----------------------------------------------------------

TEST(InlineCallback, InvokesAndSurvivesMove) {
  int count = 0;
  InlineCallback cb([&count] { ++count; });
  EXPECT_TRUE(static_cast<bool>(cb));
  cb();
  InlineCallback moved = std::move(cb);
  EXPECT_FALSE(static_cast<bool>(cb));
  moved();
  EXPECT_EQ(count, 2);
}

TEST(InlineCallback, DestroysCapturedState) {
  auto token = std::make_shared<int>(7);
  EXPECT_EQ(token.use_count(), 1);
  {
    InlineCallback cb([token] { (void)*token; });
    EXPECT_EQ(token.use_count(), 2);
    cb();
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);  // destructor ran the capture's dtor
}

TEST(InlineCallback, HoldsMoveOnlyCaptures) {
  auto boxed = std::make_unique<int>(41);
  int seen = 0;
  InlineCallback cb([&seen, p = std::move(boxed)] { seen = ++*p; });
  InlineCallback moved = std::move(cb);
  moved();
  EXPECT_EQ(seen, 42);
}

// ---- ObjectPool ---------------------------------------------------------------

TEST(ObjectPool, ReusesReleasedObjects) {
  ObjectPool<std::vector<int>> pool(8);
  std::vector<int> v = pool.acquire();
  v.reserve(1024);
  const int* storage = v.data();
  pool.release(std::move(v));
  EXPECT_EQ(pool.idle(), 1u);
  std::vector<int> again = pool.acquire();
  EXPECT_EQ(again.data(), storage);  // same buffer came back
  EXPECT_EQ(pool.stats().acquired, 2u);
  EXPECT_EQ(pool.stats().allocated, 1u);
  EXPECT_EQ(pool.stats().reused, 1u);
  EXPECT_EQ(pool.stats().released, 1u);
}

TEST(ObjectPool, ResetRunsOnAcquireOfRecycledObjects) {
  ObjectPool<std::vector<int>> pool(8, [](std::vector<int>& v) { v.clear(); });
  std::vector<int> v = pool.acquire();
  EXPECT_TRUE(v.empty());  // fresh objects are default-constructed
  v.assign(100, 7);
  const std::size_t cap = v.capacity();
  pool.release(std::move(v));
  std::vector<int> again = pool.acquire();
  EXPECT_TRUE(again.empty());         // recycled state must not leak...
  EXPECT_GE(again.capacity(), cap);   // ...but the capacity is retained
}

TEST(ObjectPool, BoundsIdleObjects) {
  ObjectPool<std::vector<int>> pool(2);
  std::vector<std::vector<int>> out;
  for (int i = 0; i < 3; ++i) {
    auto v = pool.acquire();
    v.reserve(16);  // give the object real storage so the drop is meaningful
    out.push_back(std::move(v));
  }
  for (auto& v : out) {
    pool.release(std::move(v));
  }
  EXPECT_EQ(pool.idle(), 2u);
  EXPECT_EQ(pool.stats().released, 2u);
  EXPECT_EQ(pool.stats().dropped, 1u);
}

// ---- RingQueue ----------------------------------------------------------------

TEST(RingQueue, FifoOrderAcrossGrowth) {
  RingQueue<int> q;
  for (int i = 0; i < 100; ++i) {
    q.push_back(i);
  }
  EXPECT_EQ(q.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, WrapsWithoutLosingElements) {
  RingQueue<int> q;
  q.reserve(8);
  const std::size_t cap = q.capacity();
  int next_in = 0;
  int next_out = 0;
  // Oscillate below capacity for many laps: indices wrap, capacity stays.
  for (int lap = 0; lap < 50; ++lap) {
    for (int i = 0; i < 5; ++i) {
      q.push_back(next_in++);
    }
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(q.front(), next_out++);
      q.pop_front();
    }
  }
  EXPECT_EQ(q.capacity(), cap);
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, GrowthPreservesOrderAcrossWrapPoint) {
  RingQueue<int> q;
  q.reserve(8);
  // Advance the head so the live range straddles the wrap point, then force
  // a growth and verify the linearized order survived.
  for (int i = 0; i < 6; ++i) {
    q.push_back(i);
  }
  for (int i = 0; i < 6; ++i) {
    q.pop_front();
  }
  for (int i = 0; i < 20; ++i) {
    q.push_back(100 + i);
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(q.front(), 100 + i);
    q.pop_front();
  }
}

TEST(PeriodicTask, StartAtAbsoluteTime) {
  Scheduler sched;
  std::vector<Time> fire_times;
  PeriodicTask task(sched, Time::micros(10),
                    [&] { fire_times.push_back(sched.now()); });
  task.start_at(Time::micros(100));
  sched.run_until(Time::micros(125));
  ASSERT_EQ(fire_times.size(), 3u);
  EXPECT_EQ(fire_times[0], Time::micros(100));
  EXPECT_EQ(fire_times[1], Time::micros(110));
  EXPECT_EQ(fire_times[2], Time::micros(120));
}

}  // namespace
}  // namespace edp::sim
