// Unit tests for edp::pisa — parser, deparser, tables, registers, counters,
// meters, pipeline.
#include <gtest/gtest.h>

#include "net/packet_builder.hpp"
#include "pisa/counter.hpp"
#include "pisa/deparser.hpp"
#include "pisa/meter.hpp"
#include "pisa/parser.hpp"
#include "pisa/pipeline.hpp"
#include "pisa/register.hpp"
#include "pisa/table.hpp"

namespace edp::pisa {
namespace {

using net::Ipv4Address;
using net::MacAddress;

net::Packet udp_packet(std::uint16_t dst_port = 2000,
                       std::size_t size = 200) {
  return net::make_udp_packet(Ipv4Address(10, 0, 0, 1),
                              Ipv4Address(10, 0, 1, 1), 1000, dst_port,
                              size);
}

// ---- parser -------------------------------------------------------------------

TEST(Parser, ParsesEthernetIpv4Udp) {
  const Parser parser = Parser::standard();
  Phv phv = parser.parse(udp_packet());
  ASSERT_FALSE(phv.parse_error);
  ASSERT_TRUE(phv.eth.has_value());
  ASSERT_TRUE(phv.ipv4.has_value());
  ASSERT_TRUE(phv.udp.has_value());
  EXPECT_FALSE(phv.tcp.has_value());
  EXPECT_EQ(phv.ipv4->src, Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(phv.udp->dst_port, 2000);
  EXPECT_EQ(phv.std_meta.packet_length, 200u);
  EXPECT_EQ(phv.payload_offset, net::EthernetHeader::kSize +
                                    net::Ipv4Header::kSize +
                                    net::UdpHeader::kSize);
}

TEST(Parser, ParsesKvOverWellKnownPort) {
  net::KvHeader kv;
  kv.op = net::KvHeader::kGet;
  kv.key = 77;
  const net::Packet p =
      net::PacketBuilder()
          .ethernet(MacAddress::from_u64(1), MacAddress::from_u64(2))
          .ipv4(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2),
                net::kIpProtoUdp)
          .udp(5000, net::kPortKvCache)
          .kv(kv)
          .build();
  const Phv phv = Parser::standard().parse(p);
  ASSERT_TRUE(phv.kv.has_value());
  EXPECT_EQ(phv.kv->key, 77u);
}

TEST(Parser, ParsesHulaAndLiveness) {
  net::HulaProbeHeader probe{3, 500, 9};
  const net::Packet hp =
      net::PacketBuilder()
          .ethernet(MacAddress::from_u64(1), MacAddress::from_u64(2),
                    net::kEtherTypeHula)
          .hula_probe(probe)
          .pad_to(64)
          .build();
  const Phv hphv = Parser::standard().parse(hp);
  ASSERT_TRUE(hphv.hula.has_value());
  EXPECT_EQ(hphv.hula->tor_id, 3u);

  net::LivenessHeader echo;
  echo.kind = net::LivenessHeader::kRequest;
  const net::Packet lp =
      net::PacketBuilder()
          .ethernet(MacAddress::from_u64(1), MacAddress::from_u64(2),
                    net::kEtherTypeLiveness)
          .liveness(echo)
          .pad_to(64)
          .build();
  const Phv lphv = Parser::standard().parse(lp);
  ASSERT_TRUE(lphv.liveness.has_value());
  EXPECT_EQ(lphv.liveness->kind, net::LivenessHeader::kRequest);
}

TEST(Parser, TruncatedPacketIsRejected) {
  net::Packet p(10);  // shorter than an Ethernet header
  EXPECT_TRUE(Parser::standard().parse(std::move(p)).parse_error);

  // Ethernet claims IPv4 but the packet ends after 14 bytes.
  net::Packet q(net::EthernetHeader::kSize);
  net::EthernetHeader eth;
  eth.ether_type = net::kEtherTypeIpv4;
  eth.encode(q, 0);
  EXPECT_TRUE(Parser::standard().parse(std::move(q)).parse_error);
}

TEST(Parser, UnknownEtherTypeAcceptsAtL2) {
  net::Packet p(64);
  net::EthernetHeader eth;
  eth.ether_type = 0x9999;
  eth.encode(p, 0);
  const Phv phv = Parser::standard().parse(std::move(p));
  EXPECT_FALSE(phv.parse_error);
  EXPECT_TRUE(phv.eth.has_value());
  EXPECT_FALSE(phv.ipv4.has_value());
  EXPECT_EQ(phv.payload_offset, net::EthernetHeader::kSize);
}

TEST(Parser, CustomStateCanBeAdded) {
  Parser parser = Parser::standard();
  // Replace the ethernet state for a fictitious ethertype path.
  bool custom_hit = false;
  parser.add_state("start", [&](Phv&, std::size_t off) {
    custom_hit = true;
    return ParseStep{"ethernet", off};
  });
  parser.parse(udp_packet());
  EXPECT_TRUE(custom_hit);
}

TEST(Parser, FastPathMatchesGeneric) {
  // The compiled parse_standard() fast path must be observationally
  // identical to the generic name-dispatched walk of the standard() graph.
  // Re-registering any state drops a parser to the generic dispatcher, so
  // build the generic twin by re-adding a verbatim "start" state, then run
  // both parsers over one packet of every shape the graph distinguishes.
  const Parser fast = Parser::standard();
  Parser generic = Parser::standard();
  generic.add_state("start", [](Phv&, std::size_t off) {
    return ParseStep{"ethernet", off};
  });

  const auto mac = [](std::uint64_t v) { return MacAddress::from_u64(v); };
  std::vector<net::Packet> corpus;
  corpus.push_back(udp_packet());  // plain UDP
  corpus.push_back(net::PacketBuilder()  // TCP
                       .ethernet(mac(1), mac(2))
                       .ipv4(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2),
                             net::kIpProtoTcp)
                       .tcp(1234, 80)
                       .payload(40)
                       .build());
  net::KvHeader kv;
  kv.op = net::KvHeader::kGet;
  kv.key = 42;
  corpus.push_back(net::PacketBuilder()  // KV, well-known port as *source*
                       .ethernet(mac(1), mac(2))
                       .ipv4(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2),
                             net::kIpProtoUdp)
                       .udp(net::kPortKvCache, 7777)
                       .kv(kv)
                       .build());
  corpus.push_back(net::PacketBuilder()  // INT report
                       .ethernet(mac(1), mac(2))
                       .ipv4(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2),
                             net::kIpProtoUdp)
                       .udp(3333, net::kPortIntReport)
                       .int_report(net::IntReportHeader{})
                       .build());
  corpus.push_back(net::PacketBuilder()  // VLAN-tagged IPv4/UDP
                       .ethernet(mac(1), mac(2))
                       .vlan(100)
                       .ipv4(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2),
                             net::kIpProtoUdp)
                       .udp(1000, 2000)
                       .payload(20)
                       .build());
  corpus.push_back(net::PacketBuilder()  // HULA probe
                       .ethernet(mac(1), mac(2), net::kEtherTypeHula)
                       .hula_probe(net::HulaProbeHeader{3, 500, 9})
                       .pad_to(64)
                       .build());
  net::LivenessHeader echo;
  echo.kind = net::LivenessHeader::kRequest;
  corpus.push_back(net::PacketBuilder()  // liveness echo
                       .ethernet(mac(1), mac(2), net::kEtherTypeLiveness)
                       .liveness(echo)
                       .pad_to(64)
                       .build());
  {
    net::Packet carrier(64);  // event-metadata carrier frame
    net::EthernetHeader eth;
    eth.ether_type = net::kEtherTypeCarrier;
    eth.encode(carrier, 0);
    corpus.push_back(std::move(carrier));
  }
  {
    net::Packet other(64);  // unknown EtherType: accept at L2
    net::EthernetHeader eth;
    eth.ether_type = 0x9999;
    eth.encode(other, 0);
    corpus.push_back(std::move(other));
  }
  corpus.push_back(net::Packet(10));  // truncated before Ethernet
  {
    net::Packet q(net::EthernetHeader::kSize);  // truncated after Ethernet
    net::EthernetHeader eth;
    eth.ether_type = net::kEtherTypeIpv4;
    eth.encode(q, 0);
    corpus.push_back(std::move(q));
  }
  {
    // IPv4 claims UDP but the packet ends mid-UDP-header.
    net::Packet q = net::PacketBuilder()
                        .ethernet(mac(1), mac(2))
                        .ipv4(Ipv4Address(1, 1, 1, 1),
                              Ipv4Address(2, 2, 2, 2), net::kIpProtoUdp)
                        .build();
    corpus.push_back(std::move(q));
  }

  const Deparser deparser;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    SCOPED_TRACE("corpus packet " + std::to_string(i));
    const Phv a = fast.parse(net::Packet(corpus[i]));
    const Phv b = generic.parse(net::Packet(corpus[i]));
    EXPECT_EQ(a.parse_error, b.parse_error);
    EXPECT_EQ(a.payload_offset, b.payload_offset);
    EXPECT_EQ(a.eth.has_value(), b.eth.has_value());
    EXPECT_EQ(a.vlan.has_value(), b.vlan.has_value());
    EXPECT_EQ(a.ipv4.has_value(), b.ipv4.has_value());
    EXPECT_EQ(a.tcp.has_value(), b.tcp.has_value());
    EXPECT_EQ(a.udp.has_value(), b.udp.has_value());
    EXPECT_EQ(a.kv.has_value(), b.kv.has_value());
    EXPECT_EQ(a.int_report.has_value(), b.int_report.has_value());
    EXPECT_EQ(a.hula.has_value(), b.hula.has_value());
    EXPECT_EQ(a.liveness.has_value(), b.liveness.has_value());
    // Deparsing re-encodes every extracted field: byte equality means the
    // two parsers decoded identical header contents.
    const net::Packet da = deparser.deparse(a);
    const net::Packet db = deparser.deparse(b);
    ASSERT_EQ(da.size(), db.size());
    EXPECT_TRUE(std::equal(da.bytes().begin(), da.bytes().end(),
                           db.bytes().begin()));
  }
}

TEST(Parser, MetadataFromPacketMeta) {
  net::Packet p = udp_packet();
  p.meta().ingress_port = 3;
  p.meta().arrival = sim::Time::micros(9);
  const Phv phv = Parser::standard().parse(std::move(p));
  EXPECT_EQ(phv.std_meta.ingress_port, 3);
  EXPECT_EQ(phv.std_meta.ingress_timestamp, sim::Time::micros(9));
}

// ---- deparser -----------------------------------------------------------------

TEST(Deparser, RoundTripIsIdentity) {
  const net::Packet original = udp_packet(2000, 300);
  Phv phv = Parser::standard().parse(original);
  const net::Packet out = Deparser().deparse(phv);
  ASSERT_EQ(out.size(), original.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out.u8(i), original.u8(i)) << "byte " << i;
  }
}

TEST(Deparser, FieldRewriteIsReflected) {
  Phv phv = Parser::standard().parse(udp_packet());
  phv.ipv4->ttl = 1;
  phv.ipv4->dst = Ipv4Address(99, 99, 99, 99);
  const net::Packet out = Deparser().deparse(phv);
  const auto ip = net::Ipv4Header::decode(out, net::EthernetHeader::kSize);
  EXPECT_EQ(ip.ttl, 1);
  EXPECT_EQ(ip.dst, Ipv4Address(99, 99, 99, 99));
  EXPECT_TRUE(ip.checksum_ok());  // checksum recomputed on deparse
}

TEST(Deparser, HeaderInvalidationRemovesBytes) {
  Phv phv = Parser::standard().parse(udp_packet(2000, 200));
  phv.udp.reset();  // drop the UDP header (decap-style)
  const net::Packet out = Deparser().deparse(phv);
  EXPECT_EQ(out.size(), 200u - net::UdpHeader::kSize);
}

// ---- tables -------------------------------------------------------------------

std::vector<std::uint64_t> key_of(std::uint64_t v) { return {v}; }

TEST(MatchActionTable, ExactMatchHitAndMiss) {
  MatchActionTable t("t", {MatchField{MatchKind::kExact, 32, "f"}}, 4);
  int hits = 0;
  TableEntry e;
  e.key = {KeyField{42, 0, ~0ULL}};
  e.action_name = "hit";
  e.action = [&hits](Phv&, const ActionData&) { ++hits; };
  ASSERT_TRUE(t.insert(std::move(e)));

  Phv phv;
  EXPECT_TRUE(t.apply(phv, [](const Phv&) { return key_of(42); }));
  EXPECT_FALSE(t.apply(phv, [](const Phv&) { return key_of(43); }));
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(t.lookups(), 2u);
  EXPECT_EQ(t.misses(), 1u);
}

TEST(MatchActionTable, DefaultActionOnMiss) {
  MatchActionTable t("t", {MatchField{MatchKind::kExact, 32, "f"}});
  bool default_ran = false;
  t.set_default_action("d", [&](Phv&, const ActionData&) {
    default_ran = true;
  });
  Phv phv;
  t.apply(phv, [](const Phv&) { return key_of(1); });
  EXPECT_TRUE(default_ran);
}

TEST(MatchActionTable, CapacityEnforcedAndDuplicateRejected) {
  MatchActionTable t("t", {MatchField{MatchKind::kExact, 32, "f"}}, 2);
  TableEntry e1;
  e1.key = {KeyField{1, 0, ~0ULL}};
  TableEntry dup;
  dup.key = {KeyField{1, 0, ~0ULL}};
  TableEntry e2;
  e2.key = {KeyField{2, 0, ~0ULL}};
  TableEntry e3;
  e3.key = {KeyField{3, 0, ~0ULL}};
  EXPECT_TRUE(t.insert(std::move(e1)));
  EXPECT_FALSE(t.insert(std::move(dup)));
  EXPECT_TRUE(t.insert(std::move(e2)));
  EXPECT_FALSE(t.insert(std::move(e3)));  // full
  EXPECT_EQ(t.size(), 2u);
}

TEST(MatchActionTable, LongestPrefixWins) {
  MatchActionTable t("lpm", {MatchField{MatchKind::kLpm, 32, "dst"}});
  std::uint64_t chosen = 0;
  const auto mk = [&](std::uint32_t prefix, int len, std::uint64_t tag) {
    TableEntry e;
    e.key = {KeyField{prefix, len, ~0ULL}};
    e.data.args = {tag};
    e.action = [&chosen](Phv&, const ActionData& d) { chosen = d.arg(0); };
    ASSERT_TRUE(t.insert(std::move(e)));
  };
  mk(0x0a000000, 8, 8);    // 10/8
  mk(0x0a010000, 16, 16);  // 10.1/16
  mk(0x0a010200, 24, 24);  // 10.1.2/24

  Phv phv;
  t.apply(phv, [](const Phv&) { return key_of(0x0a010203); });
  EXPECT_EQ(chosen, 24u);
  t.apply(phv, [](const Phv&) { return key_of(0x0a01ff01); });
  EXPECT_EQ(chosen, 16u);
  t.apply(phv, [](const Phv&) { return key_of(0x0aff0001); });
  EXPECT_EQ(chosen, 8u);
  EXPECT_FALSE(t.apply(phv, [](const Phv&) { return key_of(0x0b000001); }));
}

TEST(MatchActionTable, TernaryPriority) {
  MatchActionTable t("acl", {MatchField{MatchKind::kTernary, 32, "dst"}});
  std::uint64_t chosen = 0;
  const auto mk = [&](std::uint64_t value, std::uint64_t mask,
                      std::int32_t prio, std::uint64_t tag) {
    TableEntry e;
    e.key = {KeyField{value, 0, mask}};
    e.priority = prio;
    e.data.args = {tag};
    e.action = [&chosen](Phv&, const ActionData& d) { chosen = d.arg(0); };
    ASSERT_TRUE(t.insert(std::move(e)));
  };
  mk(0x0a000000, 0xff000000, 1, 100);   // 10.*.*.*
  mk(0x0a000005, 0xff0000ff, 50, 200);  // 10.*.*.5 (more specific bits)

  Phv phv;
  t.apply(phv, [](const Phv&) { return key_of(0x0a000005); });
  EXPECT_EQ(chosen, 200u);
  t.apply(phv, [](const Phv&) { return key_of(0x0a000006); });
  EXPECT_EQ(chosen, 100u);
}

TEST(MatchActionTable, EraseRebuildsIndex) {
  MatchActionTable t("t", {MatchField{MatchKind::kExact, 32, "f"}}, 8);
  for (std::uint64_t v = 0; v < 4; ++v) {
    TableEntry e;
    e.key = {KeyField{v, 0, ~0ULL}};
    ASSERT_TRUE(t.insert(std::move(e)));
  }
  EXPECT_EQ(t.erase({KeyField{2, 0, ~0ULL}}), 1u);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_FALSE(t.lookup(key_of(2)).hit);
  EXPECT_TRUE(t.lookup(key_of(3)).hit);
  // Reinsertion of the erased key now succeeds.
  TableEntry e;
  e.key = {KeyField{2, 0, ~0ULL}};
  EXPECT_TRUE(t.insert(std::move(e)));
}

TEST(MatchActionTable, EntryHitCounters) {
  MatchActionTable t("t", {MatchField{MatchKind::kExact, 32, "f"}});
  TableEntry e;
  e.key = {KeyField{9, 0, ~0ULL}};
  ASSERT_TRUE(t.insert(std::move(e)));
  for (int i = 0; i < 5; ++i) {
    t.lookup(key_of(9));
  }
  EXPECT_EQ(t.lookup(key_of(9)).entry->hits, 6u);
}

// ---- registers ------------------------------------------------------------------

TEST(Register, ReadWriteAndWrapIndexing) {
  Register<std::uint32_t> r("r", 8);
  r.write(3, 77);
  EXPECT_EQ(r.read(3), 77u);
  EXPECT_EQ(r.read(11), 77u);  // 11 % 8 == 3
  r.write(11, 78);
  EXPECT_EQ(r.read(3), 78u);
  EXPECT_EQ(r.bytes(), 8 * sizeof(std::uint32_t));
}

TEST(Register, RmwIsAtomicValueUpdate) {
  Register<std::int64_t> r("r", 4);
  r.rmw(1, [](std::int64_t v) { return v + 10; });
  r.rmw(1, [](std::int64_t v) { return v * 3; });
  EXPECT_EQ(r.read(1), 30);
  EXPECT_EQ(r.reads(), 3u);
  EXPECT_EQ(r.writes(), 2u);
}

TEST(PortUsage, SinglePortContention) {
  PortUsage p(1);
  EXPECT_TRUE(p.try_acquire(100));
  EXPECT_FALSE(p.available(100));
  EXPECT_FALSE(p.try_acquire(100));  // second access, same cycle
  EXPECT_EQ(p.contention(), 1u);
  EXPECT_TRUE(p.try_acquire(101));  // new cycle
  EXPECT_EQ(p.acquired(), 2u);
}

TEST(PortUsage, MultiPort) {
  PortUsage p(3);
  EXPECT_TRUE(p.try_acquire(5));
  EXPECT_TRUE(p.try_acquire(5));
  EXPECT_TRUE(p.try_acquire(5));
  EXPECT_FALSE(p.try_acquire(5));
  EXPECT_EQ(p.contention(), 1u);
}

// ---- counters / meters -------------------------------------------------------------

TEST(Counter, CountsPacketsAndBytes) {
  Counter c("c", 4);
  c.count(0, 100);
  c.count(0, 200);
  c.count(1, 50);
  EXPECT_EQ(c.cell(0).packets, 2u);
  EXPECT_EQ(c.cell(0).bytes, 300u);
  EXPECT_EQ(c.total().packets, 3u);
  EXPECT_EQ(c.total().bytes, 350u);
  c.reset();
  EXPECT_EQ(c.total().packets, 0u);
}

TEST(Meter, GreenWithinCommittedRate) {
  Meter::Config cfg;
  cfg.cir_bytes_per_sec = 1e6;
  cfg.cbs_bytes = 1500;
  cfg.ebs_bytes = 3000;
  Meter m("m", 1, cfg);
  // First packet fits the committed burst.
  EXPECT_EQ(m.execute(0, 1000, sim::Time::zero()), MeterColor::kGreen);
  // Immediately metering far more than cbs+ebs -> red.
  EXPECT_EQ(m.execute(0, 4000, sim::Time::zero()), MeterColor::kRed);
}

TEST(Meter, YellowFromExcessBucket) {
  Meter::Config cfg;
  cfg.cir_bytes_per_sec = 1e6;
  cfg.cbs_bytes = 1000;
  cfg.ebs_bytes = 2000;
  Meter m("m", 1, cfg);
  EXPECT_EQ(m.execute(0, 1000, sim::Time::zero()), MeterColor::kGreen);
  EXPECT_EQ(m.execute(0, 1000, sim::Time::zero()), MeterColor::kYellow);
  EXPECT_EQ(m.execute(0, 1000, sim::Time::zero()), MeterColor::kYellow);
  EXPECT_EQ(m.execute(0, 1000, sim::Time::zero()), MeterColor::kRed);
}

TEST(Meter, RefillsOverTime) {
  Meter::Config cfg;
  cfg.cir_bytes_per_sec = 1e6;  // 1 MB/s
  cfg.cbs_bytes = 1000;
  cfg.ebs_bytes = 0;
  Meter m("m", 1, cfg);
  EXPECT_EQ(m.execute(0, 1000, sim::Time::zero()), MeterColor::kGreen);
  EXPECT_EQ(m.execute(0, 1000, sim::Time::zero()), MeterColor::kRed);
  // 1 ms at 1 MB/s = 1000 bytes refilled.
  EXPECT_EQ(m.execute(0, 1000, sim::Time::millis(1)), MeterColor::kGreen);
}

TEST(Meter, CellsAreIndependent) {
  Meter::Config cfg;
  cfg.cir_bytes_per_sec = 1e6;
  cfg.cbs_bytes = 500;
  cfg.ebs_bytes = 0;
  Meter m("m", 4, cfg);
  EXPECT_EQ(m.execute(0, 500, sim::Time::zero()), MeterColor::kGreen);
  EXPECT_EQ(m.execute(1, 500, sim::Time::zero()), MeterColor::kGreen);
  EXPECT_EQ(m.execute(0, 500, sim::Time::zero()), MeterColor::kRed);
}

// ---- pipeline ---------------------------------------------------------------------

TEST(Pipeline, StagesRunInOrder) {
  Pipeline pipe("ingress");
  std::vector<int> order;
  pipe.add_stage("a", [&](Phv&) { order.push_back(1); });
  pipe.add_stage("b", [&](Phv&) { order.push_back(2); });
  Phv phv;
  pipe.process(phv);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(pipe.phvs_processed(), 1u);
  EXPECT_EQ(pipe.depth(), 2u);
}

TEST(Pipeline, DroppedPhvStillTraversesByDefault) {
  Pipeline pipe("ingress");
  int later = 0;
  pipe.add_stage("drop", [](Phv& p) { p.std_meta.drop = true; });
  pipe.add_stage("after", [&](Phv&) { ++later; });
  Phv phv;
  pipe.process(phv);
  EXPECT_EQ(later, 1);  // hardware PHVs traverse all stages
}

TEST(Pipeline, StopOnDropMode) {
  Pipeline pipe("ingress", /*stop_on_drop=*/true);
  int later = 0;
  pipe.add_stage("drop", [](Phv& p) { p.std_meta.drop = true; });
  pipe.add_stage("after", [&](Phv&) { ++later; });
  Phv phv;
  pipe.process(phv);
  EXPECT_EQ(later, 0);
}

}  // namespace
}  // namespace edp::pisa
