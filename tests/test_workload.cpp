// Tests for edp::workload — the trace-driven scenario engine.
//
// Covers the four layers: distribution sanity (the canonical DC mixes
// really are heavy-tailed and hit their analytic means), scenario lowering
// (registry EventRates consumption, the edge loop-breaker), replay
// determinism (the seed x shard digest matrix the engine's contract
// promises), and the fuzzer (a seeded always-failing oracle must be found,
// shrunk to the minimal case, and reported with a stable reproducer).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "core/event_switch.hpp"
#include "net/packet_builder.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "workload/distributions.hpp"
#include "workload/fuzzer.hpp"
#include "workload/replay.hpp"
#include "workload/scenario.hpp"

namespace edp::workload {
namespace {

// ---- flow-size distributions ------------------------------------------------

TEST(FlowSizeCdf, RejectsMalformedKnots) {
  // Last knot must close the CDF at cum == 1.
  EXPECT_THROW(FlowSizeCdf({{1000, 0.5}, {2000, 0.9}}), std::invalid_argument);
  // Both fields must be strictly increasing.
  EXPECT_THROW(FlowSizeCdf({{2000, 0.5}, {1000, 1.0}}), std::invalid_argument);
  EXPECT_THROW(FlowSizeCdf({{1000, 0.8}, {2000, 0.4}}), std::invalid_argument);
  EXPECT_THROW(FlowSizeCdf({}), std::invalid_argument);
}

TEST(FlowSizeCdf, FixedIsDegenerate) {
  FlowSizeCdf cdf = FlowSizeCdf::fixed(4096);
  sim::Random rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(cdf.sample(rng), 4096u);
  }
  EXPECT_DOUBLE_EQ(cdf.mean_bytes(), 4096.0);
}

// Empirical mean over many samples must converge to the analytic
// `mean_bytes()` — the value the engine uses to convert offered load into
// an arrival rate, so a mismatch would silently mis-load every scenario.
void check_mean_convergence(const FlowSizeCdf& cdf) {
  sim::Random rng(42);
  constexpr int kSamples = 200'000;
  double sum = 0;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(cdf.sample(rng));
  }
  const double empirical = sum / kSamples;
  const double analytic = cdf.mean_bytes();
  EXPECT_NEAR(empirical / analytic, 1.0, 0.05);
}

TEST(FlowSizeCdf, WebSearchMeanConverges) {
  check_mean_convergence(FlowSizeCdf::web_search());
}

TEST(FlowSizeCdf, HadoopMeanConverges) {
  check_mean_convergence(FlowSizeCdf::hadoop());
}

TEST(FlowSizeCdf, WebSearchIsHeavyTailed) {
  const FlowSizeCdf& cdf = FlowSizeCdf::web_search();
  // Mice dominate the flow count: the median is far below the mean, and
  // the p99 flow dwarfs both — the defining shape of the DCTCP mix.
  EXPECT_LT(cdf.quantile(0.5) * 4, cdf.mean_bytes());
  EXPECT_GT(cdf.quantile(0.99), cdf.mean_bytes() * 4);
}

TEST(FlowSizeCdf, CapLowersMeanButNotBelowBody) {
  const FlowSizeCdf& cdf = FlowSizeCdf::web_search();
  const double uncapped = cdf.mean_bytes();
  const double capped = cdf.mean_bytes(64 * 1024);
  EXPECT_LT(capped, uncapped);       // the elephant tail was clipped
  EXPECT_GT(capped, cdf.quantile(0.5));  // the body is untouched
  // Sampling respects the same cap the analytic mean uses.
  sim::Random rng(3);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GE(cdf.sample(rng), 1u);
  }
}

// ---- arrival processes ------------------------------------------------------

TEST(ArrivalSampler, PoissonHitsConfiguredRate) {
  ArrivalSampler::Config c;
  c.kind = ArrivalSampler::Kind::kPoisson;
  c.flows_per_sec = 50'000;
  ArrivalSampler sampler(c);
  EXPECT_DOUBLE_EQ(sampler.effective_rate(), 50'000.0);
  sim::Random rng(11);
  sim::Time total = sim::Time::zero();
  constexpr int kGaps = 100'000;
  for (int i = 0; i < kGaps; ++i) {
    const sim::Time gap = sampler.next_gap(rng);
    EXPECT_GT(gap, sim::Time::zero());
    total = total + gap;
  }
  const double rate = kGaps / total.as_seconds();
  EXPECT_NEAR(rate / 50'000.0, 1.0, 0.05);
}

TEST(ArrivalSampler, OnOffLongRunRateIsDutyCycled) {
  ArrivalSampler::Config c;
  c.kind = ArrivalSampler::Kind::kOnOff;
  c.flows_per_sec = 100'000;
  c.on_mean = sim::Time::millis(1);
  c.off_mean = sim::Time::millis(4);
  ArrivalSampler sampler(c);
  // 1 ms ON every 5 ms -> 20% duty cycle.
  EXPECT_NEAR(sampler.effective_rate(), 20'000.0, 1e-6);
  sim::Random rng(13);
  sim::Time total = sim::Time::zero();
  constexpr int kGaps = 50'000;
  for (int i = 0; i < kGaps; ++i) {
    total = total + sampler.next_gap(rng);
  }
  const double rate = kGaps / total.as_seconds();
  EXPECT_NEAR(rate / sampler.effective_rate(), 1.0, 0.15);
}

// ---- scenario lowering ------------------------------------------------------

TEST(ApplyRates, AdoptsPacketBytesAndCapsLoad) {
  ScenarioSpec spec;
  spec.flows = 10'000;
  spec.load = 0.5;

  analysis::EventRates rates;
  rates.avg_packet_bytes = 1500;
  // A budget far below what 50% of 10 Gb/s offers: load must come down.
  rates.set(analysis::Handler::kIngress, 1e5);
  const ScenarioSpec scaled = apply_rates(spec, rates);
  EXPECT_EQ(scaled.packet_bytes, 1500u);
  EXPECT_LT(scaled.load, spec.load);

  // A generous budget never *raises* the offered load.
  analysis::EventRates roomy;
  roomy.set(analysis::Handler::kIngress, 1e12);
  EXPECT_DOUBLE_EQ(apply_rates(spec, roomy).load, spec.load);

  // No annotations -> identity.
  const ScenarioSpec same = apply_rates(spec, analysis::EventRates{});
  EXPECT_EQ(same.packet_bytes, spec.packet_bytes);
  EXPECT_DOUBLE_EQ(same.load, spec.load);
}

TEST(BuildTopology, ShapeMatchesSpec) {
  ScenarioSpec spec;
  spec.edges = 3;
  spec.hosts_per_edge = 2;
  topo::Spec topo;
  const TopologyMap map = build_topology(spec, topo);
  EXPECT_EQ(topo.num_switches(), 1 + spec.edges);
  EXPECT_EQ(topo.num_hosts(), 2 + spec.num_sources());  // sink + aux + sources
  // host links (sink, aux, sources) + one uplink per edge.
  EXPECT_EQ(topo.num_links(), 2 + spec.num_sources() + spec.edges);
  EXPECT_EQ(map.source_hosts.size(), spec.num_sources());
  EXPECT_EQ(map.source_ips.size(), spec.num_sources());
  // Source addresses are distinct and inside 10/8 but outside the sink /24.
  std::set<std::uint32_t> ips;
  for (const net::Ipv4Address& ip : map.source_ips) {
    ips.insert(ip.value());
    EXPECT_TRUE(net::Ipv4Address(10, 0, 0, 0).matches_prefix(ip, 8));
    EXPECT_FALSE(net::Ipv4Address(10, 0, 0, 0).matches_prefix(ip, 24));
  }
  EXPECT_EQ(ips.size(), spec.num_sources());
}

TEST(EdgeProgram, LoopBreakerDropsUplinkBounce) {
  sim::Scheduler sched;
  core::EventSwitchConfig cfg;
  cfg.name = "edge";
  cfg.num_ports = 3;  // hosts on 0..1, uplink on 2
  core::EventSwitch sw(sched, cfg);
  EdgeProgram prog(/*uplink_port=*/2);
  prog.add_route(net::Ipv4Address(10, 0, 0, 0), 8, 2);
  prog.add_route(net::Ipv4Address(10, 1, 1, 1), 32, 0);
  sw.set_program(&prog);
  int tx_host = 0, tx_uplink = 0;
  sw.connect_tx(0, [&](net::Packet) { ++tx_host; });
  sw.connect_tx(2, [&](net::Packet) { ++tx_uplink; });

  const net::Ipv4Address local(10, 1, 1, 1);
  const net::Ipv4Address remote(10, 0, 0, 1);
  // Host -> uplink: forwarded.
  sw.receive(0, net::make_udp_packet(local, remote, 1, 2, 100));
  // Uplink -> local host: forwarded down.
  sw.receive(2, net::make_udp_packet(remote, local, 1, 2, 100));
  // Uplink -> non-local 10/8: would bounce straight back up; the
  // structural loop-breaker must drop it instead.
  sw.receive(2, net::make_udp_packet(remote, net::Ipv4Address(10, 2, 2, 2),
                                     1, 2, 100));
  sched.run(100'000);
  EXPECT_EQ(tx_uplink, 1);
  EXPECT_EQ(tx_host, 1);
  EXPECT_EQ(prog.uplink_drops(), 1u);
}

TEST(ScenarioSpec, ReproCoversEveryReplayDimension) {
  ScenarioSpec spec;
  spec.seed = 77;
  spec.sizes = SizeMix::kFixed;
  spec.fixed_flow_bytes = 9000;
  spec.arrivals = ArrivalSampler::Kind::kOnOff;
  spec.incast_degree = 3;
  spec.burst_packets = 16;
  LinkFlap flap;
  flap.target = LinkFlap::Target::kAux;
  flap.down_at = sim::Time::micros(100);
  flap.up_at = sim::Time::micros(250);
  spec.flaps.push_back(flap);
  const std::string repro = spec.repro();
  for (const char* token :
       {"--mix fixed", "--arrivals onoff", "--seed 77", "--fixed-bytes 9000",
        "--on-us", "--off-us", "--incast 3", "--incast-period-us",
        "--bursts 16", "--burst-period-us", "--flap aux:0:100:250",
        "--load", "--packet-bytes"}) {
    EXPECT_NE(repro.find(token), std::string::npos) << "missing " << token;
  }
}

// ---- replay engine ----------------------------------------------------------

ScenarioSpec small_storm(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "test-storm";
  spec.seed = seed;
  spec.edges = 2;
  spec.hosts_per_edge = 2;
  spec.flows = 600;
  spec.incast_degree = 2;
  spec.burst_packets = 8;
  LinkFlap flap;
  flap.target = LinkFlap::Target::kAux;
  flap.down_at = sim::Time::micros(50);
  flap.up_at = sim::Time::micros(150);
  spec.flaps.push_back(flap);
  return spec;
}

TEST(Replay, DigestMatrixSeedByShards) {
  const apps::RegisteredProgram* app = find_program("cms-monitor");
  ASSERT_NE(app, nullptr);
  std::set<std::uint64_t> per_seed_digests;
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    const ScenarioSpec spec = small_storm(seed);
    std::optional<std::uint64_t> digest;
    for (std::size_t shards : {1, 2, 4}) {
      ReplayOptions opt;
      opt.shards = shards;
      const ScenarioOutcome out = replay(spec, *app, opt);
      EXPECT_GT(out.flows_started, 0u);
      EXPECT_GT(out.sink_rx_packets, 0u);
      if (!digest) {
        digest = out.digest;
      } else {
        EXPECT_EQ(out.digest, *digest)
            << "seed " << seed << " diverged at " << shards << " shards";
      }
    }
    per_seed_digests.insert(*digest);
  }
  // Different seeds replay different traffic.
  EXPECT_EQ(per_seed_digests.size(), 5u);
}

TEST(Replay, SteadyStateLoopDoesNotAllocate) {
  const apps::RegisteredProgram* app = find_program("ecn-marking");
  ASSERT_NE(app, nullptr);
  ScenarioSpec spec = small_storm(1);
  spec.flows = 1200;
  ReplayOptions opt;
  opt.shards = 2;
  const ScenarioOutcome out = replay(spec, *app, opt);
  EXPECT_EQ(out.allocations_per_event, 0.0);
}

TEST(Replay, EveryRegisteredAppSurvivesAStorm) {
  ScenarioSpec spec = small_storm(5);
  spec.flows = 200;
  for (const auto& app : apps::program_registry()) {
    const ScenarioOutcome out = replay(spec, app, ReplayOptions{});
    EXPECT_EQ(out.flows_started, out.flows_completed) << app.name;
    EXPECT_GT(out.packets_sent, 0u) << app.name;
    // Forwarding apps must actually deliver to the sink (the aux flap in
    // small_storm never touches the sink path).
    if (app_routes_to_sink(app)) {
      EXPECT_GT(out.sink_rx_packets, 0u) << app.name;
    }
  }
}

TEST(Replay, FrrGetsRoutesInjected) {
  const apps::RegisteredProgram* frr = find_program("fast-reroute");
  ASSERT_NE(frr, nullptr);
  EXPECT_TRUE(app_routes_to_sink(*frr));
  ScenarioSpec spec = small_storm(9);
  spec.flows = 300;
  spec.flaps.clear();
  const ScenarioOutcome out = replay(spec, *frr, ReplayOptions{});
  EXPECT_EQ(out.sink_rx_packets, out.dut_tx_packets);
  EXPECT_GT(out.sink_rx_packets, 0u);
  EXPECT_EQ(out.dut_program_drops, 0u);
}

TEST(Replay, RoutingProbeSeparatesForwardersFromTelemetry) {
  const apps::RegisteredProgram* l3 = find_program("cms-monitor");
  const apps::RegisteredProgram* tor = find_program("hula-spine");
  ASSERT_NE(l3, nullptr);
  ASSERT_NE(tor, nullptr);
  EXPECT_TRUE(app_routes_to_sink(*l3));
  EXPECT_FALSE(app_routes_to_sink(*tor));
}

// ---- fuzzer -----------------------------------------------------------------

TEST(Fuzzer, GenerateIsDeterministicPerIndex) {
  FuzzConfig config;
  config.seed = 99;
  ScenarioFuzzer a(config);
  ScenarioFuzzer b(config);
  for (std::size_t i = 0; i < 10; ++i) {
    auto [sa, app_a] = a.generate(i);
    auto [sb, app_b] = b.generate(i);
    EXPECT_EQ(app_a, app_b);
    EXPECT_EQ(sa.seed, sb.seed);
    EXPECT_EQ(sa.repro(), sb.repro());
  }
}

TEST(Fuzzer, ShrinksInjectedFailureToMinimalCase) {
  FuzzConfig config;
  config.seed = 4;
  config.runs = 1;
  config.flows = 400;
  config.apps = {"cms-monitor"};
  // A deliberately-too-strong oracle: every scenario "fails", so the
  // shrinker must be able to strip every dimension and still reproduce.
  config.extra_invariants.push_back(
      [](const ScenarioSpec&, const ScenarioOutcome&,
         const ScenarioOutcome&) -> std::optional<std::string> {
        return "injected: always fails";
      });
  ScenarioFuzzer fuzzer(config);
  const FuzzReport report = fuzzer.run(/*max_failures=*/1);
  ASSERT_EQ(report.failures, 1u);
  ASSERT_EQ(report.shrunk.size(), 1u);
  const FuzzFailure& f = report.shrunk[0];
  EXPECT_EQ(f.what, "injected: always fails");
  EXPECT_GT(f.shrink_steps, 0u);
  // Fully shrinkable failure -> fully shrunk scenario.
  EXPECT_EQ(f.scenario.flows, 1u);
  EXPECT_EQ(f.scenario.edges, 1u);
  EXPECT_EQ(f.scenario.hosts_per_edge, 1u);
  EXPECT_TRUE(f.scenario.flaps.empty());
  EXPECT_EQ(f.scenario.incast_degree, 0u);
  EXPECT_EQ(f.scenario.burst_packets, 0u);
  EXPECT_NE(f.repro.find("edp_scen run --app cms-monitor"),
            std::string::npos);
}

TEST(Fuzzer, CleanCampaignReportsNoFailures) {
  FuzzConfig config;
  config.seed = 12;
  config.runs = 3;
  config.flows = 400;
  config.apps = {"ecn-marking"};
  ScenarioFuzzer fuzzer(config);
  const FuzzReport report = fuzzer.run();
  EXPECT_EQ(report.runs, 3u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_TRUE(report.shrunk.empty());
}

}  // namespace
}  // namespace edp::workload
