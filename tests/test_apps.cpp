// Unit tests for edp::apps — each application program exercised on a real
// EventSwitch (and, where relevant, its baseline counterpart).
#include <gtest/gtest.h>

#include "apps/aqm.hpp"
#include "apps/chain_replication.hpp"
#include "apps/cms_monitor.hpp"
#include "apps/fast_reroute.hpp"
#include "apps/hula.hpp"
#include "apps/int_aggregator.hpp"
#include "apps/liveness.hpp"
#include "apps/microburst.hpp"
#include "apps/ndp_trim.hpp"
#include "apps/netcache.hpp"
#include "apps/policer.hpp"
#include "apps/rate_measurement.hpp"
#include "apps/snappy_baseline.hpp"
#include "apps/swing_state.hpp"
#include "apps/wfq.hpp"
#include "apps/ecn_marking.hpp"
#include "core/baseline_switch.hpp"
#include "net/flow.hpp"
#include "net/packet_builder.hpp"

namespace edp::apps {
namespace {

using net::Ipv4Address;
using net::MacAddress;

core::EventSwitchConfig basic_cfg(std::uint16_t ports = 2,
                                  double rate = 10e9) {
  core::EventSwitchConfig c;
  c.num_ports = ports;
  c.port_rate_bps = rate;
  c.merger.cycle_time = sim::Time::nanos(5);
  c.timer_resolution = sim::Time::micros(1);
  return c;
}

net::Packet flow_packet(Ipv4Address src, Ipv4Address dst,
                        std::size_t size = 1000) {
  return net::make_udp_packet(src, dst, 1111, 2222, size);
}

// ---- microburst (paper §2 example) ---------------------------------------------

class MicroburstFixture : public ::testing::TestWithParam<StateModel> {};

TEST_P(MicroburstFixture, OccupancyTracksEnqueueDequeue) {
  sim::Scheduler sched;
  // Slow egress so the buffer actually builds.
  core::EventSwitch sw(sched, basic_cfg(2, 1e9));
  MicroburstConfig mc;
  mc.flow_thresh = 1 << 30;  // no detections in this test
  mc.state = GetParam();
  MicroburstProgram prog(mc);
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  if (prog.aggregated() != nullptr) {
    sw.register_aggregated(*prog.aggregated());
  }
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});

  const Ipv4Address src(10, 0, 0, 1), dst(10, 0, 1, 1);
  const std::uint32_t flow = net::flow_id_src_dst(src, dst);
  for (int i = 0; i < 10; ++i) {
    sw.receive(0, flow_packet(src, dst, 1000));
  }
  // Mid-flight: some bytes buffered; settle pending events first.
  sched.run_until(sim::Time::micros(4));
  sw.settle();
  EXPECT_GT(prog.occupancy(flow), 0);
  // After the queue drains completely, occupancy returns to zero.
  sched.run_until(sim::Time::millis(1));
  sw.settle();
  EXPECT_EQ(prog.occupancy(flow), 0);
}

TEST_P(MicroburstFixture, DetectsCulpritAtIngress) {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, basic_cfg(2, 1e9));  // 1 Gb/s egress
  MicroburstConfig mc;
  mc.flow_thresh = 8 * 1000;  // 8 KB
  mc.state = GetParam();
  MicroburstProgram prog(mc);
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  if (prog.aggregated() != nullptr) {
    sw.register_aggregated(*prog.aggregated());
  }
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});

  // 30 x 1000B nearly back-to-back into a 1G port: definite microburst.
  const Ipv4Address src(10, 0, 0, 1), dst(10, 0, 1, 1);
  for (int i = 0; i < 30; ++i) {
    sched.at(sim::Time::nanos(800 * i),
             [&sw, src, dst] { sw.receive(0, flow_packet(src, dst)); });
  }
  sched.run_until(sim::Time::millis(1));
  ASSERT_GE(prog.detections().size(), 1u);
  const auto& d = prog.detections().front();
  EXPECT_TRUE(d.at_ingress);
  EXPECT_GT(d.occupancy, mc.flow_thresh);
  EXPECT_EQ(d.flow_id, net::flow_id_src_dst(src, dst));
}

INSTANTIATE_TEST_SUITE_P(BothStateModels, MicroburstFixture,
                         ::testing::Values(StateModel::kShared,
                                           StateModel::kAggregated),
                         [](const auto& info) {
                           return info.param == StateModel::kShared
                                      ? "SharedRegister"
                                      : "AggregatedRegister";
                         });

TEST(Microburst, InnocentFlowsNotFlagged) {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, basic_cfg(2, 1e9));
  MicroburstConfig mc;
  mc.flow_thresh = 8 * 1000;
  MicroburstProgram prog(mc);
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.register_aggregated(*prog.aggregated());
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});

  // Burst flow A + slow flow B: only A may be flagged.
  const Ipv4Address a(10, 0, 0, 1), b(10, 0, 0, 2), dst(10, 0, 1, 1);
  for (int i = 0; i < 30; ++i) {
    sched.at(sim::Time::nanos(800 * i),
             [&sw, a, dst] { sw.receive(0, flow_packet(a, dst)); });
  }
  for (int i = 0; i < 5; ++i) {
    sched.at(sim::Time::micros(50 * (i + 1)),
             [&sw, b, dst] { sw.receive(0, flow_packet(b, dst, 200)); });
  }
  sched.run_until(sim::Time::millis(1));
  const std::uint32_t flow_b = net::flow_id_src_dst(b, dst);
  for (const auto& d : prog.detections()) {
    EXPECT_NE(d.flow_id, flow_b);
  }
}

TEST(Microburst, StateBytesShrinkVsSnappy) {
  MicroburstConfig mc;
  mc.num_regs = 1024;
  mc.state = StateModel::kShared;
  SnappyConfig sc;
  sc.num_regs = 1024;
  sc.num_snapshots = 8;
  MicroburstProgram shared_prog(mc);
  SnappyProgram snappy(sc);
  // The paper claims >= 4x reduction: one shared register array vs
  // Snappy's k snapshot arrays (k = 8 here).
  EXPECT_GE(static_cast<double>(snappy.state_bytes()),
            4.0 * static_cast<double>(shared_prog.state_bytes()));
}

// ---- Snappy baseline -------------------------------------------------------------

TEST(Snappy, DetectsAtEgressOnly) {
  sim::Scheduler sched;
  core::BaselineSwitch bsw(sched, basic_cfg(2, 1e9));
  SnappyConfig sc;
  sc.flow_thresh = 8 * 1000;
  sc.rotation = sim::Time::micros(20);
  SnappyProgram prog(sc);
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  bsw.set_program(&prog);
  bsw.connect_tx(1, [](net::Packet) {});

  const Ipv4Address src(10, 0, 0, 1), dst(10, 0, 1, 1);
  for (int i = 0; i < 40; ++i) {
    sched.at(sim::Time::nanos(800 * i),
             [&bsw, src, dst] { bsw.receive(0, flow_packet(src, dst)); });
  }
  sched.run_until(sim::Time::millis(1));
  ASSERT_GE(prog.detections().size(), 1u);
  EXPECT_FALSE(prog.detections().front().at_ingress);
  // Baseline facilities were sufficient: no refused operations.
  EXPECT_EQ(bsw.counters().refused_ops, 0u);
}

// ---- CMS monitor -------------------------------------------------------------------

TEST(CmsMonitor, TimerResetsInDataPlane) {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, basic_cfg());
  CmsMonitorConfig cc;
  cc.reset_period = sim::Time::millis(1);
  CmsMonitorProgram prog(cc);
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});

  const Ipv4Address src(10, 0, 0, 1), dst(10, 0, 1, 1);
  sw.receive(0, flow_packet(src, dst, 100));
  sched.run_until(sim::Time::micros(100));
  EXPECT_GE(prog.estimate(net::flow_id_src_dst(src, dst)), 1u);
  sched.run_until(sim::Time::millis(10) + sim::Time::micros(50));
  EXPECT_EQ(prog.resets(), 10u);
  EXPECT_EQ(prog.estimate(net::flow_id_src_dst(src, dst)), 0u);
  // Data-plane resets are quartz-precise: jitter bounded by the timer
  // resolution, not by a control-plane round trip.
  EXPECT_LE(prog.reset_jitter_us().max(), 2.0);
}

TEST(CmsMonitor, BaselineRefusesTimerNeedsCp) {
  sim::Scheduler sched;
  core::BaselineSwitch bsw(sched, basic_cfg());
  CmsMonitorProgram prog(CmsMonitorConfig{});
  bsw.set_program(&prog);
  EXPECT_EQ(bsw.counters().refused_ops, 1u);  // the on_attach timer request
  // A CP-driven reset still works, via the explicit entry point.
  prog.control_reset(sim::Time::millis(3));
  EXPECT_EQ(prog.resets(), 1u);
}

// ---- AQM ---------------------------------------------------------------------------

TEST(RedAqm, DropsProbabilisticallyAboveMinThresh) {
  sim::Scheduler sched;
  core::EventSwitchConfig cfg = basic_cfg(2, 1e8);  // slow egress: 100 Mb/s
  cfg.queue_limits.max_bytes = 1 << 20;
  cfg.queue_limits.max_packets = 4096;
  core::EventSwitch sw(sched, cfg);
  topo::L3Program router;
  router.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.set_program(&router);
  sw.connect_tx(1, [](net::Packet) {});

  RedAqm::Config rc;
  rc.min_thresh_bytes = 5'000;
  rc.max_thresh_bytes = 20'000;
  rc.max_p = 0.5;
  rc.weight = 0.2;
  RedAqm red(rc);
  red.install(sw.traffic_manager());

  for (int i = 0; i < 300; ++i) {
    sched.at(sim::Time::micros(2 * i), [&sw] {
      sw.receive(0, flow_packet(Ipv4Address(10, 0, 0, 1),
                                Ipv4Address(10, 0, 1, 1)));
    });
  }
  sched.run_until(sim::Time::millis(50));
  EXPECT_GT(red.early_drops(), 0u);
  EXPECT_GT(red.avg_queue(), 0.0);
}

TEST(FairAqm, ThrottlesHogWithFairnessDrops) {
  sim::Scheduler sched;
  core::EventSwitchConfig cfg = basic_cfg(2, 1e8);  // 100 Mb/s bottleneck
  cfg.queue_limits.max_bytes = 1 << 20;
  cfg.queue_limits.max_packets = 4096;
  core::EventSwitch sw(sched, cfg);
  FairAqmConfig fc;
  fc.engage_bytes = 4'000;
  fc.share_factor = 1.5;
  FairAqmProgram prog(fc);
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.set_program(&prog);
  int tx = 0;
  sw.connect_tx(1, [&](net::Packet) { ++tx; });

  const Ipv4Address hog(10, 0, 0, 1), mouse(10, 0, 0, 2), dst(10, 0, 1, 1);
  // Hog: 1000B every 2us (4 Gb/s offered); mouse: 1000B every 100us.
  for (int i = 0; i < 500; ++i) {
    sched.at(sim::Time::micros(2 * i),
             [&sw, hog, dst] { sw.receive(0, flow_packet(hog, dst)); });
  }
  for (int i = 0; i < 10; ++i) {
    sched.at(sim::Time::micros(100 * i),
             [&sw, mouse, dst] { sw.receive(0, flow_packet(mouse, dst)); });
  }
  sched.run_until(sim::Time::millis(100));
  EXPECT_GT(prog.fairness_drops(), 0u);
  EXPECT_EQ(prog.active_flows(), 0u);  // everything drained by now
  EXPECT_GT(tx, 10);                   // mouse + surviving hog packets
}

TEST(FairAqm, TimerReportsFlowToMonitorPort) {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, basic_cfg(3, 1e9));
  FairAqmConfig fc;
  fc.send_reports = true;
  fc.sample_period = sim::Time::millis(1);
  fc.report_port = 2;
  fc.monitor_ip = Ipv4Address(10, 0, 2, 2);
  fc.self_ip = Ipv4Address(10, 0, 254, 1);
  FairAqmProgram prog(fc);
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.set_program(&prog);
  int reports = 0;
  sw.connect_tx(2, [&](net::Packet p) {
    ++reports;
    const auto phv = pisa::Parser::standard().parse(std::move(p));
    ASSERT_TRUE(phv.int_report.has_value());
  });
  sw.connect_tx(1, [](net::Packet) {});
  sched.run_until(sim::Time::millis(5) + sim::Time::micros(10));
  EXPECT_EQ(reports, 5);
  EXPECT_EQ(prog.reports_sent(), 5u);
}

TEST(PieAqm, DropProbabilityRisesWithDelay) {
  sim::Scheduler sched;
  core::EventSwitchConfig cfg = basic_cfg(2, 1e8);
  cfg.queue_limits.max_bytes = 1 << 20;
  cfg.queue_limits.max_packets = 4096;
  core::EventSwitch sw(sched, cfg);
  PieConfig pc;
  pc.target_delay = sim::Time::micros(50);
  pc.update_period = sim::Time::millis(1);
  PieAqmProgram prog(pc);
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});

  // Overload 4:1 -> queueing delay far above target.
  for (int i = 0; i < 2000; ++i) {
    sched.at(sim::Time::micros(2 * i), [&sw] {
      sw.receive(0, flow_packet(Ipv4Address(10, 0, 0, 1),
                                Ipv4Address(10, 0, 1, 1)));
    });
  }
  sched.run_until(sim::Time::millis(4));
  EXPECT_GT(prog.drop_probability(), 0.0);
  sched.run_until(sim::Time::millis(100));
  EXPECT_GT(prog.early_drops(), 0u);
}

// ---- policers -----------------------------------------------------------------------

TEST(TimerTokenBucket, EnforcesConfiguredRate) {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, basic_cfg());
  TokenBucketConfig tc;
  tc.rate_bytes_per_sec = 1.25e6;  // 10 Mb/s
  tc.burst_bytes = 5'000;
  tc.refill_period = sim::Time::micros(100);
  TimerTokenBucketProgram prog(tc);
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.set_program(&prog);
  int tx = 0;
  sw.connect_tx(1, [&](net::Packet) { ++tx; });

  // Offer 100 Mb/s for 10 ms: 10x the committed rate.
  for (int i = 0; i < 125; ++i) {
    sched.at(sim::Time::micros(80 * i), [&sw] {
      sw.receive(0, flow_packet(Ipv4Address(10, 0, 0, 1),
                                Ipv4Address(10, 0, 1, 1)));
    });
  }
  sched.run_until(sim::Time::millis(20));
  // Conformant bytes ~ burst (5KB) + rate x 10ms (12.5KB) = ~17.5KB.
  EXPECT_NEAR(static_cast<double>(prog.conformant()), 17.0, 3.0);
  EXPECT_EQ(prog.conformant() + prog.policed(), 125u);
  EXPECT_EQ(static_cast<int>(prog.conformant()), tx);
}

TEST(TimerTokenBucket, BaselineCannotRefill) {
  sim::Scheduler sched;
  core::BaselineSwitch bsw(sched, basic_cfg());
  TimerTokenBucketProgram prog(TokenBucketConfig{});
  bsw.set_program(&prog);
  // The refill timer was refused: the paper's point that baseline PISA
  // cannot build token buckets from registers alone.
  EXPECT_EQ(bsw.counters().refused_ops, 1u);
}

TEST(MeterPolicer, FixedFunctionComparator) {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, basic_cfg());
  pisa::Meter::Config mc;
  mc.cir_bytes_per_sec = 1.25e6;
  mc.cbs_bytes = 5'000;
  mc.ebs_bytes = 0;
  MeterPolicerProgram prog(64, mc);
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});
  for (int i = 0; i < 125; ++i) {
    sched.at(sim::Time::micros(80 * i), [&sw] {
      sw.receive(0, flow_packet(Ipv4Address(10, 0, 0, 1),
                                Ipv4Address(10, 0, 1, 1)));
    });
  }
  sched.run_until(sim::Time::millis(20));
  EXPECT_NEAR(static_cast<double>(prog.conformant()), 17.0, 3.0);
}

// ---- fast re-route --------------------------------------------------------------------

TEST(FastReroute, SwitchesToBackupOnLinkDown) {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, basic_cfg(3));
  FrrProgram prog(3);
  prog.add_route(FrrRoute{Ipv4Address(10, 0, 1, 0), 1, 2});
  sw.set_program(&prog);
  int tx1 = 0, tx2 = 0;
  sw.connect_tx(1, [&](net::Packet) { ++tx1; });
  sw.connect_tx(2, [&](net::Packet) { ++tx2; });

  sw.receive(0, flow_packet(Ipv4Address(10, 0, 0, 1),
                            Ipv4Address(10, 0, 1, 1)));
  sched.run_until(sim::Time::micros(100));
  EXPECT_EQ(tx1, 1);

  sw.set_link_status(1, false);
  sched.run_until(sim::Time::micros(200));
  sw.receive(0, flow_packet(Ipv4Address(10, 0, 0, 1),
                            Ipv4Address(10, 0, 1, 1)));
  sched.run_until(sim::Time::micros(300));
  EXPECT_EQ(tx1, 1);
  EXPECT_EQ(tx2, 1);
  EXPECT_EQ(prog.rerouted(), 1u);
  EXPECT_TRUE(prog.port_down(1));
  EXPECT_GT(prog.reroute_activated_at(), sim::Time::zero());
}

TEST(FastReroute, RecoveryRestoresPrimary) {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, basic_cfg(3));
  FrrProgram prog(3);
  prog.add_route(FrrRoute{Ipv4Address(10, 0, 1, 0), 1, 2});
  sw.set_program(&prog);
  int tx1 = 0;
  sw.connect_tx(1, [&](net::Packet) { ++tx1; });
  sw.connect_tx(2, [](net::Packet) {});
  sw.set_link_status(1, false);
  sched.run_until(sim::Time::micros(10));
  sw.set_link_status(1, true);
  sched.run_until(sim::Time::micros(20));
  sw.receive(0, flow_packet(Ipv4Address(10, 0, 0, 1),
                            Ipv4Address(10, 0, 1, 1)));
  sched.run_until(sim::Time::micros(100));
  EXPECT_EQ(tx1, 1);
  EXPECT_FALSE(prog.port_down(1));
}

TEST(FastReroute, BaselineProgramNeverSeesLinkEvents) {
  sim::Scheduler sched;
  core::BaselineSwitch bsw(sched, basic_cfg(3));
  FrrProgram prog(3);
  prog.add_route(FrrRoute{Ipv4Address(10, 0, 1, 0), 1, 2});
  bsw.set_program(&prog);
  int tx1 = 0;
  bsw.connect_tx(1, [&](net::Packet) { ++tx1; });
  bsw.connect_tx(2, [](net::Packet) {});
  bsw.set_link_status(1, false);  // hardware knows; the program does not
  sched.run_until(sim::Time::micros(10));
  EXPECT_FALSE(prog.port_down(1));  // the handler never ran
  // Until the CP intervenes, traffic still heads to the dead port.
  bsw.receive(0, flow_packet(Ipv4Address(10, 0, 0, 1),
                             Ipv4Address(10, 0, 1, 1)));
  sched.run_until(sim::Time::micros(100));
  EXPECT_EQ(tx1, 0);  // stuck in the queue of the downed port
  // CP eventually calls the control entry point.
  prog.control_set_port_down(1, true);
  bsw.receive(0, flow_packet(Ipv4Address(10, 0, 0, 1),
                             Ipv4Address(10, 0, 1, 1)));
  sched.run_until(sim::Time::micros(200));
  EXPECT_EQ(prog.rerouted(), 1u);
}

// ---- liveness ---------------------------------------------------------------------------

TEST(Liveness, DetectsNeighborFailure) {
  sim::Scheduler sched;
  // Two switches wired port1 <-> port1; both run liveness on port 1.
  core::EventSwitch a(sched, basic_cfg(3));
  core::EventSwitch b(sched, basic_cfg(3));
  bool wire_up = true;
  a.connect_tx(1, [&](net::Packet p) {
    if (wire_up) {
      b.receive(1, std::move(p));
    }
  });
  b.connect_tx(1, [&](net::Packet p) {
    if (wire_up) {
      a.receive(1, std::move(p));
    }
  });
  LivenessConfig lc;
  lc.self_id = 1;
  lc.monitored_ports = {1};
  lc.probe_period = sim::Time::micros(200);
  lc.check_period = sim::Time::micros(200);
  lc.dead_after = sim::Time::micros(700);
  lc.monitor_port = 2;
  LivenessProgram pa(lc);
  LivenessConfig lcb = lc;
  lcb.self_id = 2;
  LivenessProgram pb(lcb);
  a.set_program(&pa);
  b.set_program(&pb);
  int notices = 0;
  a.connect_tx(2, [&](net::Packet p) {
    const auto phv = pisa::Parser::standard().parse(std::move(p));
    ASSERT_TRUE(phv.liveness.has_value());
    EXPECT_EQ(phv.liveness->kind, net::LivenessHeader::kFailureNotice);
    ++notices;
  });
  b.connect_tx(2, [](net::Packet) {});

  sched.run_until(sim::Time::millis(2));
  EXPECT_TRUE(pa.neighbor_alive(0));
  EXPECT_GT(pa.replies_received(), 5u);
  EXPECT_GT(pa.rtt_us().count(), 0u);

  // Cut the wire silently (no link-status event: pure liveness detection).
  const sim::Time fail_time = sched.now();
  wire_up = false;
  sched.run_until(fail_time + sim::Time::millis(2));
  EXPECT_FALSE(pa.neighbor_alive(0));
  EXPECT_EQ(notices, 1);
  const sim::Time detect_latency = pa.failure_detected_at(0) - fail_time;
  EXPECT_LE(detect_latency, sim::Time::micros(1200));  // ~dead_after + check
}

TEST(Liveness, NoFalsePositivesWhileHealthy) {
  sim::Scheduler sched;
  core::EventSwitch a(sched, basic_cfg(3));
  core::EventSwitch b(sched, basic_cfg(3));
  a.connect_tx(1, [&](net::Packet p) { b.receive(1, std::move(p)); });
  b.connect_tx(1, [&](net::Packet p) { a.receive(1, std::move(p)); });
  LivenessConfig lc;
  lc.monitored_ports = {1};
  lc.monitor_port = 0xffff;  // notifications disabled
  LivenessProgram pa(lc), pb(lc);
  a.set_program(&pa);
  b.set_program(&pb);
  sched.run_until(sim::Time::millis(20));
  EXPECT_TRUE(pa.neighbor_alive(0));
  EXPECT_TRUE(pb.neighbor_alive(0));
  EXPECT_EQ(pa.notices_sent(), 0u);
}

// ---- rate measurement ---------------------------------------------------------------------

TEST(RateMeasure, WindowedRateTracksCbr) {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, basic_cfg());
  RateMeasureConfig rc;
  rc.buckets = 8;
  rc.bucket_width = sim::Time::micros(250);
  RateMeasureProgram prog(rc);
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});

  // 1000B every 10us = 800 Mb/s, for 5ms.
  const Ipv4Address src(10, 0, 0, 1), dst(10, 0, 1, 1);
  for (int i = 0; i < 500; ++i) {
    sched.at(sim::Time::micros(10 * i),
             [&sw, src, dst] { sw.receive(0, flow_packet(src, dst)); });
  }
  sched.run_until(sim::Time::millis(5));
  const double measured = prog.rate_bps(net::flow_id_src_dst(src, dst));
  EXPECT_NEAR(measured, 800e6, 120e6);
  EXPECT_GT(prog.ticks(), 15u);
}

TEST(RateMeasure, RateDecaysWhenFlowStops) {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, basic_cfg());
  RateMeasureProgram prog(RateMeasureConfig{});
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});
  const Ipv4Address src(10, 0, 0, 1), dst(10, 0, 1, 1);
  for (int i = 0; i < 100; ++i) {
    sched.at(sim::Time::micros(10 * i),
             [&sw, src, dst] { sw.receive(0, flow_packet(src, dst)); });
  }
  sched.run_until(sim::Time::millis(1) + sim::Time::micros(100));
  EXPECT_GT(prog.rate_bps(net::flow_id_src_dst(src, dst)), 0.0);
  // Flow stops; after a full window of timer ticks the rate reads zero —
  // exactly what packet-clocked (baseline) windows cannot do.
  sched.run_until(sim::Time::millis(10));
  EXPECT_DOUBLE_EQ(prog.rate_bps(net::flow_id_src_dst(src, dst)), 0.0);
}

// ---- NetCache -------------------------------------------------------------------------------

net::Packet kv_packet(std::uint8_t op, std::uint64_t key, std::uint64_t value,
                      Ipv4Address src, Ipv4Address dst) {
  net::KvHeader kv;
  kv.op = op;
  kv.key = key;
  kv.value = value;
  return net::PacketBuilder()
      .ethernet(MacAddress::from_u64(0x02), MacAddress::from_u64(0x03))
      .ipv4(src, dst, net::kIpProtoUdp)
      .udp(40000, net::kPortKvCache)
      .kv(kv)
      .pad_to(64)
      .build();
}

TEST(NetCache, HotKeyServedFromSwitch) {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, basic_cfg());
  NetCacheConfig nc;
  nc.hot_thresh = 3;
  nc.server_ip = Ipv4Address(10, 0, 9, 9);
  NetCacheProgram prog(nc);
  sw.set_program(&prog);

  const Ipv4Address client(10, 0, 0, 1);
  const Ipv4Address server = nc.server_ip;
  int server_rx = 0, client_rx = 0;
  std::uint64_t last_value = 0;
  // Server at port 1: answers GETs with value = key * 2.
  sw.connect_tx(1, [&](net::Packet p) {
    ++server_rx;
    auto phv = pisa::Parser::standard().parse(std::move(p));
    ASSERT_TRUE(phv.kv.has_value());
    sw.receive(1, kv_packet(net::KvHeader::kReply, phv.kv->key,
                            phv.kv->key * 2, server, client));
  });
  sw.connect_tx(0, [&](net::Packet p) {
    ++client_rx;
    auto phv = pisa::Parser::standard().parse(std::move(p));
    ASSERT_TRUE(phv.kv.has_value());
    last_value = phv.kv->value;
  });

  // 6 GETs for key 5: misses go to the server; once hot + inserted, later
  // GETs are answered by the switch.
  for (int i = 0; i < 6; ++i) {
    sched.at(sim::Time::micros(10 * (i + 1)), [&] {
      sw.receive(0, kv_packet(net::KvHeader::kGet, 5, 0, client, server));
    });
  }
  sched.run_until(sim::Time::millis(1));
  EXPECT_EQ(client_rx, 6);  // every GET answered
  EXPECT_LT(server_rx, 6);  // some absorbed by the cache
  EXPECT_GT(prog.cache_hits(), 0u);
  EXPECT_TRUE(prog.cached(5));
  EXPECT_EQ(last_value, 10u);
}

TEST(NetCache, SetUpdatesCachedValue) {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, basic_cfg());
  NetCacheConfig nc;
  nc.hot_thresh = 1;
  nc.server_ip = Ipv4Address(10, 0, 9, 9);
  NetCacheProgram prog(nc);
  sw.set_program(&prog);
  const Ipv4Address client(10, 0, 0, 1);
  const Ipv4Address server = nc.server_ip;
  std::uint64_t last_value = 0;
  sw.connect_tx(1, [&](net::Packet p) {
    auto phv = pisa::Parser::standard().parse(std::move(p));
    if (phv.kv && phv.kv->op == net::KvHeader::kGet) {
      sw.receive(1, kv_packet(net::KvHeader::kReply, phv.kv->key, 111,
                              server, client));
    }
  });
  sw.connect_tx(0, [&](net::Packet p) {
    auto phv = pisa::Parser::standard().parse(std::move(p));
    if (phv.kv) {
      last_value = phv.kv->value;
    }
  });
  // Miss -> insert; then SET rewrites the cached value; next GET hits with
  // the new value.
  sched.at(sim::Time::micros(10), [&] {
    sw.receive(0, kv_packet(net::KvHeader::kGet, 7, 0, client, server));
  });
  sched.at(sim::Time::micros(50), [&] {
    sw.receive(0, kv_packet(net::KvHeader::kSet, 7, 222, client, server));
  });
  sched.at(sim::Time::micros(100), [&] {
    sw.receive(0, kv_packet(net::KvHeader::kGet, 7, 0, client, server));
  });
  sched.run_until(sim::Time::millis(1));
  EXPECT_EQ(last_value, 222u);
}

TEST(NetCache, DecayMakesColdSlotsReplaceable) {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, basic_cfg());
  NetCacheConfig nc;
  nc.cache_slots = 1;  // force contention for the single slot
  nc.hot_thresh = 2;
  nc.decay_period = sim::Time::micros(200);
  nc.server_ip = Ipv4Address(10, 0, 9, 9);
  NetCacheProgram prog(nc);
  sw.set_program(&prog);
  const Ipv4Address client(10, 0, 0, 1);
  const Ipv4Address server = nc.server_ip;
  sw.connect_tx(1, [&](net::Packet p) {
    auto phv = pisa::Parser::standard().parse(std::move(p));
    if (phv.kv && phv.kv->op == net::KvHeader::kGet) {
      sw.receive(1, kv_packet(net::KvHeader::kReply, phv.kv->key, 1, server,
                              client));
    }
  });
  sw.connect_tx(0, [](net::Packet) {});

  // Key 1 becomes hot and cached early.
  for (int i = 0; i < 4; ++i) {
    sched.at(sim::Time::micros(10 * (i + 1)), [&] {
      sw.receive(0, kv_packet(net::KvHeader::kGet, 1, 0, client, server));
    });
  }
  // Workload shifts to key 2; after decay zeroes key 1's hit counter the
  // slot is handed over.
  for (int i = 0; i < 8; ++i) {
    sched.at(sim::Time::millis(1) + sim::Time::micros(50 * (i + 1)), [&] {
      sw.receive(0, kv_packet(net::KvHeader::kGet, 2, 0, client, server));
    });
  }
  sched.run_until(sim::Time::millis(5));
  EXPECT_TRUE(prog.cached(2));
  EXPECT_GT(prog.insertions(), 1u);
}

// ---- INT aggregator ---------------------------------------------------------------------------

TEST(IntAggregator, SuppressesQuietReportsAnomalies) {
  sim::Scheduler sched;
  core::EventSwitchConfig cfg = basic_cfg(3, 1e8);  // slow: queues build
  cfg.queue_limits.max_bytes = 256 * 1024;
  cfg.queue_limits.max_packets = 4096;
  core::EventSwitch sw(sched, cfg);
  IntAggregatorConfig ic;
  ic.num_ports = 3;
  ic.report_period = sim::Time::millis(1);
  ic.depth_thresh_bytes = 10'000;
  ic.report_port = 2;
  ic.monitor_ip = Ipv4Address(10, 0, 2, 2);
  ic.self_ip = Ipv4Address(10, 0, 254, 1);
  IntAggregatorProgram prog(ic);
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.set_program(&prog);
  int reports = 0;
  sw.connect_tx(1, [](net::Packet) {});
  sw.connect_tx(2, [&](net::Packet) { ++reports; });

  // Quiet first 3 ms: nothing anomalous, no reports.
  sched.run_until(sim::Time::millis(3) + sim::Time::micros(10));
  EXPECT_EQ(reports, 0);
  EXPECT_GT(prog.reports_suppressed(), 0u);

  // Now a burst that exceeds the depth threshold.
  for (int i = 0; i < 100; ++i) {
    sched.after(sim::Time::micros(2 * i), [&sw] {
      sw.receive(0, flow_packet(Ipv4Address(10, 0, 0, 1),
                                Ipv4Address(10, 0, 1, 1)));
    });
  }
  sched.run_until(sim::Time::millis(6));
  EXPECT_GT(reports, 0);
  EXPECT_GT(prog.reports_sent(), 0u);
  EXPECT_GT(prog.reduction_factor(), 5.0);
  EXPECT_EQ(prog.naive_postcards(), 100u);
}

// ---- HULA -----------------------------------------------------------------------------------

TEST(HulaTor, ProbesMeasureStalenessAndSteerTraffic) {
  sim::Scheduler sched;
  // Two ToRs wired back-to-back on both uplinks (the spine program is
  // tested separately; direct wires suffice for the ToR logic).
  core::EventSwitch tor0(sched, basic_cfg(3));
  core::EventSwitch tor1(sched, basic_cfg(3));
  HulaTorConfig c0;
  c0.tor_id = 0;
  c0.host_port = 0;
  c0.uplink_ports = {1, 2};
  c0.num_tors = 2;
  c0.probe_period = sim::Time::micros(100);
  c0.subnets = {{Ipv4Address(10, 0, 0, 0), 0}, {Ipv4Address(10, 0, 1, 0), 1}};
  HulaTorConfig c1 = c0;
  c1.tor_id = 1;
  HulaTorProgram p0(c0), p1(c1);
  tor0.set_program(&p0);
  tor1.set_program(&p1);
  tor0.connect_tx(1, [&](net::Packet p) { tor1.receive(1, std::move(p)); });
  tor0.connect_tx(2, [&](net::Packet p) { tor1.receive(2, std::move(p)); });
  tor1.connect_tx(1, [&](net::Packet p) { tor0.receive(1, std::move(p)); });
  tor1.connect_tx(2, [&](net::Packet p) { tor0.receive(2, std::move(p)); });
  int delivered = 0;
  tor1.connect_tx(0, [&](net::Packet) { ++delivered; });
  tor0.connect_tx(0, [](net::Packet) {});

  sched.run_until(sim::Time::millis(2));
  EXPECT_GT(p1.probes_received(), 10u);
  EXPECT_GT(p0.probes_originated(), 10u);
  // Staleness is tiny without CP involvement (well below the probe period).
  EXPECT_LT(p1.probe_staleness_us().mean(), 100.0);
  // Path utilization learned for ToR 0 on both uplinks.
  EXPECT_LT(p1.path_util(0, 0), 0xffffffffU);
  EXPECT_LT(p1.path_util(0, 1), 0xffffffffU);

  // Data packet from host at tor0 to tor1's subnet is delivered.
  tor0.receive(0, flow_packet(Ipv4Address(10, 0, 0, 5),
                              Ipv4Address(10, 0, 1, 5)));
  sched.run_until(sim::Time::millis(3));
  EXPECT_EQ(delivered, 1);
  EXPECT_GE(p0.data_forwarded(), 1u);
}

TEST(HulaSpine, RelaysProbesTowardOtherTor) {
  sim::Scheduler sched;
  core::EventSwitch spine(sched, basic_cfg(2));
  HulaSpineConfig sc;
  sc.num_tors = 2;
  sc.tor_port = {0, 1};
  sc.subnets = {{Ipv4Address(10, 0, 0, 0), 0}, {Ipv4Address(10, 0, 1, 0), 1}};
  HulaSpineProgram prog(sc);
  spine.set_program(&prog);
  int to_tor1 = 0;
  spine.connect_tx(1, [&](net::Packet p) {
    const auto phv = pisa::Parser::standard().parse(std::move(p));
    ASSERT_TRUE(phv.hula.has_value());
    EXPECT_EQ(phv.hula->tor_id, 0u);
    ++to_tor1;
  });
  spine.connect_tx(0, [](net::Packet) {});

  net::HulaProbeHeader probe;
  probe.tor_id = 0;  // advertising the path to ToR 0
  probe.path_util_permille = 120;
  probe.origin_ts_ps = 5;
  net::Packet pkt = net::PacketBuilder()
                        .ethernet(MacAddress::from_u64(0xa0),
                                  MacAddress::from_u64(0),
                                  net::kEtherTypeHula)
                        .hula_probe(probe)
                        .pad_to(64)
                        .build();
  spine.receive(0, std::move(pkt));  // arrives from ToR 0's port
  sched.run_until(sim::Time::millis(1));
  EXPECT_EQ(to_tor1, 1);
  EXPECT_EQ(prog.probes_relayed(), 1u);
}

// ---- NDP-style trimming -----------------------------------------------------------------

TEST(NdpTrim, CongestionTrimsToHeadersAtHighPriority) {
  sim::Scheduler sched;
  core::EventSwitchConfig cfg = basic_cfg(2, 1e8);  // 100 Mb/s bottleneck
  cfg.queues_per_port = 2;
  cfg.tm_scheduler = tm_::SchedulerKind::kStrictPriority;
  cfg.queue_limits.max_bytes = 1 << 20;
  cfg.queue_limits.max_packets = 4096;
  core::EventSwitch sw(sched, cfg);
  NdpTrimConfig nc;
  nc.num_ports = 2;
  nc.trim_thresh_bytes = 8'000;
  NdpTrimProgram prog(nc);
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.set_program(&prog);

  std::uint64_t full = 0, trimmed_rx = 0;
  constexpr std::size_t kHeaderOnly = net::EthernetHeader::kSize +
                                      net::Ipv4Header::kSize +
                                      net::UdpHeader::kSize;
  sw.connect_tx(1, [&](net::Packet p) {
    if (p.size() == kHeaderOnly) {
      ++trimmed_rx;
      // A trimmed packet is still a CONSISTENT packet: IPv4 length and
      // checksum were recomputed by the deparser, ECN says CE.
      const auto ip = net::Ipv4Header::decode(p, net::EthernetHeader::kSize);
      EXPECT_TRUE(ip.checksum_ok());
      EXPECT_EQ(ip.total_length,
                net::Ipv4Header::kSize + net::UdpHeader::kSize);
      EXPECT_EQ(ip.ecn, 3);
    } else {
      ++full;
    }
  });

  // 4x overload: the queue crosses the trim threshold quickly.
  for (int i = 0; i < 1000; ++i) {
    sched.at(sim::Time::micros(2 * i), [&sw] {
      sw.receive(0, flow_packet(Ipv4Address(10, 0, 0, 1),
                                Ipv4Address(10, 0, 1, 1)));
    });
  }
  sched.run_until(sim::Time::millis(120));
  EXPECT_GT(prog.trimmed(), 0u);
  EXPECT_EQ(trimmed_rx, prog.trimmed());
  EXPECT_GT(full, 0u);
  // NDP's guarantee in this setting: nothing is lost — every arriving
  // packet leaves either whole or as a header.
  EXPECT_EQ(full + trimmed_rx, 1000u);
  EXPECT_EQ(sw.traffic_manager().drops_total(), 0u);
}

TEST(NdpTrim, NoTrimmingBelowThreshold) {
  sim::Scheduler sched;
  core::EventSwitchConfig cfg = basic_cfg(2, 10e9);  // no bottleneck
  cfg.queues_per_port = 2;
  core::EventSwitch sw(sched, cfg);
  NdpTrimProgram prog(NdpTrimConfig{});
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.set_program(&prog);
  std::uint64_t shrunk = 0;
  sw.connect_tx(1, [&](net::Packet p) { shrunk += p.size() < 1000; });
  for (int i = 0; i < 50; ++i) {
    sched.at(sim::Time::micros(10 * i), [&sw] {
      sw.receive(0, flow_packet(Ipv4Address(10, 0, 0, 1),
                                Ipv4Address(10, 0, 1, 1)));
    });
  }
  sched.run_until(sim::Time::millis(5));
  EXPECT_EQ(prog.trimmed(), 0u);
  EXPECT_EQ(shrunk, 0u);
}

// ---- additional app edge cases --------------------------------------------------------

TEST(CmsMonitor, HeavyHitterCrossingCountedOncePerPeriod) {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, basic_cfg());
  CmsMonitorConfig cc;
  cc.heavy_thresh = 5;
  cc.reset_period = sim::Time::millis(10);
  CmsMonitorProgram prog(cc);
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});
  const Ipv4Address src(10, 0, 0, 1), dst(10, 0, 1, 1);
  // 20 packets of one flow within one period: crosses the threshold once.
  for (int i = 0; i < 20; ++i) {
    sched.at(sim::Time::micros(10 * i),
             [&sw, src, dst] { sw.receive(0, flow_packet(src, dst, 100)); });
  }
  sched.run_until(sim::Time::millis(5));
  EXPECT_EQ(prog.heavy_detections(), 1u);
  // After the reset the same flow can cross (and be reported) again.
  sched.run_until(sim::Time::millis(11));
  for (int i = 0; i < 20; ++i) {
    sched.after(sim::Time::micros(10 * i),
                [&sw, src, dst] { sw.receive(0, flow_packet(src, dst, 100)); });
  }
  sched.run_until(sim::Time::millis(20));
  EXPECT_EQ(prog.heavy_detections(), 2u);
}

TEST(Liveness, NeighborRecoveryReportsAliveAgain) {
  sim::Scheduler sched;
  core::EventSwitch a(sched, basic_cfg(3));
  core::EventSwitch b(sched, basic_cfg(3));
  bool wire_up = true;
  a.connect_tx(1, [&](net::Packet p) {
    if (wire_up) {
      b.receive(1, std::move(p));
    }
  });
  b.connect_tx(1, [&](net::Packet p) {
    if (wire_up) {
      a.receive(1, std::move(p));
    }
  });
  LivenessConfig lc;
  lc.monitored_ports = {1};
  lc.probe_period = sim::Time::micros(200);
  lc.check_period = sim::Time::micros(200);
  lc.dead_after = sim::Time::micros(700);
  lc.monitor_port = 0xffff;
  LivenessProgram pa(lc), pb(lc);
  a.set_program(&pa);
  b.set_program(&pb);
  sched.run_until(sim::Time::millis(2));
  ASSERT_TRUE(pa.neighbor_alive(0));
  wire_up = false;
  sched.run_until(sim::Time::millis(5));
  ASSERT_FALSE(pa.neighbor_alive(0));
  // The wire heals: the next reply resurrects the neighbor.
  wire_up = true;
  sched.run_until(sim::Time::millis(8));
  EXPECT_TRUE(pa.neighbor_alive(0));
  EXPECT_EQ(pa.failure_detected_at(0), sim::Time::zero());  // cleared
}

TEST(FastReroute, RepeatedFlapsOnlyRecordFirstActivation) {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, basic_cfg(3));
  FrrProgram prog(3);
  prog.add_route(FrrRoute{Ipv4Address(10, 0, 1, 0), 1, 2});
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});
  sw.connect_tx(2, [](net::Packet) {});
  sched.at(sim::Time::micros(100), [&] { sw.set_link_status(1, false); });
  sched.at(sim::Time::micros(200), [&] { sw.set_link_status(1, true); });
  sched.at(sim::Time::micros(300), [&] { sw.set_link_status(1, false); });
  sched.run_until(sim::Time::millis(1));
  // First activation timestamp is preserved across flaps.
  EXPECT_GE(prog.reroute_activated_at(), sim::Time::micros(100));
  EXPECT_LT(prog.reroute_activated_at(), sim::Time::micros(200));
  EXPECT_TRUE(prog.port_down(1));
}

TEST(IntAggregator, DropsCountedPerIntervalThenCleared) {
  sim::Scheduler sched;
  core::EventSwitchConfig cfg = basic_cfg(3, 1e8);
  cfg.queue_limits.max_packets = 4;  // force overflow drops
  cfg.queue_limits.max_bytes = 6'000;
  core::EventSwitch sw(sched, cfg);
  IntAggregatorConfig ic;
  ic.num_ports = 3;
  ic.report_period = sim::Time::millis(1);
  ic.depth_thresh_bytes = 1 << 30;  // only drops trigger anomalies
  ic.report_port = 2;
  ic.monitor_ip = Ipv4Address(10, 0, 2, 2);
  ic.self_ip = Ipv4Address(10, 0, 254, 1);
  IntAggregatorProgram prog(ic);
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.set_program(&prog);
  std::vector<std::uint32_t> reported_drops;
  sw.connect_tx(1, [](net::Packet) {});
  sw.connect_tx(2, [&](net::Packet p) {
    const auto phv = pisa::Parser::standard().parse(std::move(p));
    ASSERT_TRUE(phv.int_report.has_value());
    reported_drops.push_back(phv.int_report->drops);
  });
  // A short overflow burst in the first interval only.
  for (int i = 0; i < 30; ++i) {
    sched.at(sim::Time::micros(2 * i), [&sw] {
      sw.receive(0, flow_packet(Ipv4Address(10, 0, 0, 1),
                                Ipv4Address(10, 0, 1, 1)));
    });
  }
  sched.run_until(sim::Time::millis(4));
  ASSERT_GE(reported_drops.size(), 1u);
  EXPECT_GT(reported_drops[0], 0u);  // the burst's drops, reported once
  for (std::size_t i = 1; i < reported_drops.size(); ++i) {
    EXPECT_EQ(reported_drops[i], 0u);  // cleared after each report
  }
}

TEST(NetCache, NonKvTrafficRoutedNotCached) {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, basic_cfg());
  NetCacheConfig nc;
  nc.server_ip = Ipv4Address(10, 0, 9, 9);
  NetCacheProgram prog(nc);
  sw.set_program(&prog);
  int to_server = 0, to_client = 0;
  sw.connect_tx(1, [&](net::Packet) { ++to_server; });
  sw.connect_tx(0, [&](net::Packet) { ++to_client; });
  // Plain UDP toward the server IP and back.
  sw.receive(0, flow_packet(Ipv4Address(10, 0, 0, 1), nc.server_ip, 200));
  sw.receive(1, flow_packet(nc.server_ip, Ipv4Address(10, 0, 0, 1), 200));
  sched.run_until(sim::Time::millis(1));
  EXPECT_EQ(to_server, 1);
  EXPECT_EQ(to_client, 1);
  EXPECT_EQ(prog.cache_hits() + prog.cache_misses(), 0u);
}

// ---- swing-state migration ---------------------------------------------------------

TEST(SwingState, MigratesPerFlowStateOnLinkFailure) {
  sim::Scheduler sched;
  // holder: data out port 1 (monitored), migration via port 2 to `peer`.
  core::EventSwitch holder(sched, basic_cfg(3));
  core::EventSwitch peer(sched, basic_cfg(3));
  SwingStateConfig hc;
  hc.data_out_port = 1;
  hc.monitored_port = 1;
  hc.migration_port = 2;
  SwingStateConfig pc = hc;  // peer uses same shape; its link 1 stays up
  SwingStateProgram ph(hc), pp(pc);
  holder.set_program(&ph);
  peer.set_program(&pp);
  holder.connect_tx(1, [](net::Packet) {});
  holder.connect_tx(2, [&](net::Packet p) { peer.receive(2, std::move(p)); });
  peer.connect_tx(1, [](net::Packet) {});
  peer.connect_tx(2, [](net::Packet) {});

  // Two flows accumulate state at the holder.
  const Ipv4Address a(10, 0, 0, 1), b(10, 0, 0, 2), dst(10, 0, 9, 9);
  for (int i = 0; i < 7; ++i) {
    holder.receive(0, flow_packet(a, dst, 500));
  }
  for (int i = 0; i < 3; ++i) {
    holder.receive(0, flow_packet(b, dst, 200));
  }
  sched.run_until(sim::Time::micros(100));
  const std::uint32_t fa = net::flow_id_src_dst(a, dst);
  const std::uint32_t fb = net::flow_id_src_dst(b, dst);
  EXPECT_EQ(ph.flow_packets(fa), 7u);
  EXPECT_EQ(ph.flow_bytes(fb), 600u);
  EXPECT_EQ(pp.flow_packets(fa), 0u);

  // The monitored link dies: state swings to the peer, data plane only.
  holder.set_link_status(1, false);
  sched.run_until(sim::Time::millis(1));
  EXPECT_EQ(ph.migrated_out(), 2u);  // two dirty slots
  EXPECT_EQ(pp.migrated_in(), 2u);
  EXPECT_EQ(pp.flow_packets(fa), 7u);
  EXPECT_EQ(pp.flow_bytes(fa), 7u * 500u);
  EXPECT_EQ(pp.flow_packets(fb), 3u);
  EXPECT_GT(ph.migration_started_at(), sim::Time::zero());

  // The peer keeps counting from the migrated values.
  peer.receive(0, flow_packet(a, dst, 500));
  sched.run_until(sim::Time::millis(2));
  EXPECT_EQ(pp.flow_packets(fa), 8u);
}

TEST(SwingState, NoMigrationWithoutFailureAndNoDoubleMigration) {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, basic_cfg(3));
  SwingStateConfig sc;
  SwingStateProgram prog(sc);
  sw.set_program(&prog);
  int carried = 0;
  sw.connect_tx(1, [](net::Packet) {});
  sw.connect_tx(2, [&](net::Packet) { ++carried; });
  sw.receive(0, flow_packet(Ipv4Address(10, 0, 0, 1),
                            Ipv4Address(10, 0, 9, 9)));
  sched.run_until(sim::Time::millis(1));
  EXPECT_EQ(carried, 0);  // healthy link: nothing migrates
  sw.set_link_status(1, false);
  sched.run_until(sim::Time::millis(2));
  EXPECT_EQ(carried, 1);
  // Flapping does not re-send (single migration guard).
  sw.set_link_status(1, true);
  sw.set_link_status(1, false);
  sched.run_until(sim::Time::millis(3));
  EXPECT_EQ(carried, 1);
}

// ---- chain replication ----------------------------------------------------------------

namespace chain {

net::Packet kv_req(std::uint8_t op, std::uint64_t key, std::uint64_t value) {
  net::KvHeader kv;
  kv.op = op;
  kv.key = key;
  kv.value = value;
  return net::PacketBuilder()
      .ethernet(MacAddress::from_u64(0xc1), MacAddress::from_u64(0xc2))
      .ipv4(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 8, 8),
            net::kIpProtoUdp)
      .udp(45000, net::kPortKvCache)
      .kv(kv)
      .pad_to(64)
      .build();
}

struct Chain {
  explicit Chain(sim::Scheduler& sched)
      : head(sched, cfg()), mid(sched, cfg()), tail(sched, cfg()) {
    // head: client on 0; successors {1 -> mid, 2 -> tail (bypass)}.
    ChainNodeConfig h;
    h.client_port = 0;
    h.successor_ports = {1, 2};
    // mid: successor {1 -> tail}.
    ChainNodeConfig m;
    m.client_port = 0;
    m.successor_ports = {1};
    // tail: no successors; replies out port 0 (wired back to the client).
    ChainNodeConfig t;
    t.client_port = 0;
    ph = std::make_unique<ChainNodeProgram>(h);
    pm = std::make_unique<ChainNodeProgram>(m);
    pt = std::make_unique<ChainNodeProgram>(t);
    head.set_program(ph.get());
    mid.set_program(pm.get());
    tail.set_program(pt.get());
    head.connect_tx(1, [this](net::Packet p) { mid.receive(0, std::move(p)); });
    head.connect_tx(2,
                    [this](net::Packet p) { tail.receive(2, std::move(p)); });
    mid.connect_tx(1, [this](net::Packet p) { tail.receive(0, std::move(p)); });
    tail.connect_tx(0, [this](net::Packet p) {
      const auto phv = pisa::Parser::standard().parse(std::move(p));
      if (phv.kv && phv.kv->op == net::KvHeader::kReply) {
        ++client_replies;
        last_value = phv.kv->value;
      }
    });
    head.connect_tx(0, [](net::Packet) {});
    mid.connect_tx(0, [](net::Packet) {});
  }

  static core::EventSwitchConfig cfg() { return basic_cfg(3); }

  core::EventSwitch head, mid, tail;
  std::unique_ptr<ChainNodeProgram> ph, pm, pt;
  int client_replies = 0;
  std::uint64_t last_value = 0;
};

}  // namespace chain

TEST(ChainReplication, WritesReplicateAndTailAcks) {
  sim::Scheduler sched;
  chain::Chain c(sched);
  c.head.receive(0, chain::kv_req(net::KvHeader::kSet, 7, 700));
  sched.run_until(sim::Time::millis(1));
  // Stored on every replica; exactly one client ack, from the tail.
  EXPECT_EQ(c.ph->value(7), 700u);
  EXPECT_EQ(c.pm->value(7), 700u);
  EXPECT_EQ(c.pt->value(7), 700u);
  EXPECT_EQ(c.client_replies, 1);
  // Reads are served by the tail with the committed value.
  c.head.receive(0, chain::kv_req(net::KvHeader::kGet, 7, 0));
  sched.run_until(sim::Time::millis(2));
  EXPECT_EQ(c.client_replies, 2);
  EXPECT_EQ(c.last_value, 700u);
  EXPECT_EQ(c.pt->reads_served(), 1u);
}

TEST(ChainReplication, LinkFailureRepairsChainInstantly) {
  sim::Scheduler sched;
  chain::Chain c(sched);
  c.head.receive(0, chain::kv_req(net::KvHeader::kSet, 1, 100));
  sched.run_until(sim::Time::millis(1));
  EXPECT_EQ(c.client_replies, 1);

  // The head's link to mid dies; the very next write must bypass mid via
  // the direct link to the tail, still committing and still acked.
  c.head.set_link_status(1, false);
  sched.run_until(sim::Time::millis(1) + sim::Time::micros(10));
  EXPECT_EQ(c.ph->repairs(), 1u);
  c.head.receive(0, chain::kv_req(net::KvHeader::kSet, 2, 200));
  sched.run_until(sim::Time::millis(2));
  EXPECT_EQ(c.client_replies, 2);
  EXPECT_EQ(c.pt->value(2), 200u);
  EXPECT_FALSE(c.pm->has(2));  // mid was bypassed
  EXPECT_EQ(c.ph->live_successor(), 2);
}

TEST(ChainReplication, TailIsolationPromotesActingTail) {
  sim::Scheduler sched;
  chain::Chain c(sched);
  int head_acks = 0;
  // Re-wire head's client port to observe acks if the head becomes tail.
  c.head.connect_tx(0, [&](net::Packet p) {
    const auto phv = pisa::Parser::standard().parse(std::move(p));
    if (phv.kv && phv.kv->op == net::KvHeader::kReply) {
      ++head_acks;
    }
  });
  // Both of the head's successor links die: it acts as the tail.
  c.head.set_link_status(1, false);
  c.head.set_link_status(2, false);
  sched.run_until(sim::Time::micros(10));
  EXPECT_TRUE(c.ph->acting_tail());
  c.head.receive(0, chain::kv_req(net::KvHeader::kSet, 9, 900));
  sched.run_until(sim::Time::millis(1));
  EXPECT_EQ(c.ph->value(9), 900u);
  EXPECT_EQ(head_acks, 1);  // acked locally
}

// ---- WFQ over PIFO --------------------------------------------------------------

TEST(Wfq, WeightedByteSharesOnBottleneck) {
  sim::Scheduler sched;
  core::EventSwitchConfig cfg = basic_cfg(2, 1e8);  // 100 Mb/s bottleneck
  cfg.use_pifo = true;
  cfg.queue_limits.max_bytes = 4 << 20;
  cfg.queue_limits.max_packets = 1 << 14;
  core::EventSwitch sw(sched, cfg);
  WfqConfig wc;
  WfqProgram prog(wc);
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  const Ipv4Address heavy(10, 0, 0, 1), light(10, 0, 0, 2),
      dst(10, 0, 1, 1);
  prog.set_weight(net::flow_id_src_dst(heavy, dst), 3);
  prog.set_weight(net::flow_id_src_dst(light, dst), 1);
  sw.set_program(&prog);
  std::uint64_t heavy_bytes = 0, light_bytes = 0;
  sw.connect_tx(1, [&](net::Packet p) {
    const auto t = net::extract_five_tuple(p);
    (t.src == heavy ? heavy_bytes : light_bytes) += p.size();
  });
  // Both flows offer 400 Mb/s into the 100 Mb/s port: persistent backlog.
  for (int i = 0; i < 1500; ++i) {
    sched.at(sim::Time::micros(20 * i), [&sw, heavy, dst] {
      sw.receive(0, flow_packet(heavy, dst));
    });
    sched.at(sim::Time::micros(20 * i), [&sw, light, dst] {
      sw.receive(0, flow_packet(light, dst));
    });
  }
  // Measure only while both flows are backlogged (first 25 ms of the
  // 30 ms offered load).
  sched.run_until(sim::Time::millis(25));
  ASSERT_GT(light_bytes, 0u);
  const double ratio = static_cast<double>(heavy_bytes) /
                       static_cast<double>(light_bytes);
  EXPECT_NEAR(ratio, 3.0, 0.4);
}

TEST(Wfq, VirtualClockAdvancesOnDequeue) {
  sim::Scheduler sched;
  core::EventSwitchConfig cfg = basic_cfg(2, 1e9);
  cfg.use_pifo = true;
  core::EventSwitch sw(sched, cfg);
  WfqProgram prog(WfqConfig{});
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});
  EXPECT_EQ(prog.virtual_time(), 0u);
  for (int i = 0; i < 10; ++i) {
    sw.receive(0, flow_packet(Ipv4Address(10, 0, 0, 1),
                              Ipv4Address(10, 0, 1, 1)));
  }
  sched.run_until(sim::Time::millis(1));
  EXPECT_GT(prog.virtual_time(), 0u);
}

// ---- multi-bit ECN marking ---------------------------------------------------------

TEST(MultiBitEcn, MarksDscpWithQuantizedOccupancy) {
  sim::Scheduler sched;
  core::EventSwitchConfig cfg = basic_cfg(2, 1e8);  // queue builds
  cfg.queue_limits.max_bytes = 1 << 20;
  cfg.queue_limits.max_packets = 4096;
  core::EventSwitch sw(sched, cfg);
  EcnMarkConfig ec;
  ec.num_ports = 2;
  ec.quantum_bytes = 2048;
  MultiBitEcnProgram prog(ec);
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.set_program(&prog);
  std::uint8_t max_dscp_seen = 0;
  sw.connect_tx(1, [&](net::Packet p) {
    const auto ip = net::Ipv4Header::decode(p, net::EthernetHeader::kSize);
    max_dscp_seen = std::max(max_dscp_seen, ip.dscp);
  });
  // Overload 4:1 for 2 ms.
  for (int i = 0; i < 1000; ++i) {
    sched.at(sim::Time::micros(2 * i), [&sw] {
      sw.receive(0, flow_packet(Ipv4Address(10, 0, 0, 1),
                                Ipv4Address(10, 0, 1, 1)));
    });
  }
  sched.run_until(sim::Time::millis(100));
  EXPECT_GT(prog.packets_marked(), 0u);
  // Multi-bit: more than one distinct congestion level must be usable.
  EXPECT_GE(max_dscp_seen, 2);
  EXPECT_LE(max_dscp_seen, 63);
  EXPECT_EQ(prog.port_depth(1), 0);  // drained at the end
}

TEST(MultiBitEcn, MaxPropagatesAcrossHops) {
  // Two switches in series; only the second is congested. The DSCP at the
  // receiver must reflect the bottleneck (max along the path).
  sim::Scheduler sched;
  core::EventSwitchConfig fast = basic_cfg(2, 10e9);
  core::EventSwitchConfig slow = basic_cfg(2, 1e8);
  slow.queue_limits.max_bytes = 1 << 20;
  slow.queue_limits.max_packets = 4096;
  core::EventSwitch s0(sched, fast);
  core::EventSwitch s1(sched, slow);
  EcnMarkConfig ec;
  ec.num_ports = 2;
  MultiBitEcnProgram p0(ec), p1(ec);
  p0.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  p1.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  s0.set_program(&p0);
  s1.set_program(&p1);
  s0.connect_tx(1, [&](net::Packet p) { s1.receive(0, std::move(p)); });
  std::uint8_t max_dscp = 0;
  s1.connect_tx(1, [&](net::Packet p) {
    const auto ip = net::Ipv4Header::decode(p, net::EthernetHeader::kSize);
    max_dscp = std::max(max_dscp, ip.dscp);
  });
  for (int i = 0; i < 500; ++i) {
    sched.at(sim::Time::micros(2 * i), [&s0] {
      s0.receive(0, flow_packet(Ipv4Address(10, 0, 0, 1),
                                Ipv4Address(10, 0, 1, 1)));
    });
  }
  sched.run_until(sim::Time::millis(100));
  // s0 is uncongested (marks ~0); the mark comes from s1's queue.
  EXPECT_EQ(p0.packets_marked(), 0u);
  EXPECT_GT(p1.packets_marked(), 0u);
  EXPECT_GE(max_dscp, 2);
}

TEST(HulaSpine, RoutesDataBySubnet) {
  sim::Scheduler sched;
  core::EventSwitch spine(sched, basic_cfg(2));
  HulaSpineConfig sc;
  sc.num_tors = 2;
  sc.tor_port = {0, 1};
  sc.subnets = {{Ipv4Address(10, 0, 0, 0), 0}, {Ipv4Address(10, 0, 1, 0), 1}};
  HulaSpineProgram prog(sc);
  spine.set_program(&prog);
  int to0 = 0, to1 = 0;
  spine.connect_tx(0, [&](net::Packet) { ++to0; });
  spine.connect_tx(1, [&](net::Packet) { ++to1; });
  spine.receive(0, flow_packet(Ipv4Address(10, 0, 0, 1),
                               Ipv4Address(10, 0, 1, 7)));
  spine.receive(1, flow_packet(Ipv4Address(10, 0, 1, 7),
                               Ipv4Address(10, 0, 0, 1)));
  sched.run_until(sim::Time::millis(1));
  EXPECT_EQ(to1, 1);
  EXPECT_EQ(to0, 1);
}

}  // namespace
}  // namespace edp::apps
