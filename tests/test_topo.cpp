// Unit tests for edp::topo — links, hosts, traffic generators, network
// wiring, control-plane agent, and the L3 routing program.
#include <gtest/gtest.h>

#include "net/flow.hpp"
#include "net/packet_builder.hpp"
#include "topo/control_plane.hpp"
#include "topo/host.hpp"
#include "topo/link.hpp"
#include "topo/network.hpp"
#include "topo/routing.hpp"
#include "topo/traffic_gen.hpp"

namespace edp::topo {
namespace {

using net::Ipv4Address;
using net::MacAddress;

// ---- link ---------------------------------------------------------------------

TEST(Link, DeliversAfterPropagationDelay) {
  sim::Scheduler sched;
  Link link(sched, Link::Config{sim::Time::micros(3), true});
  std::vector<sim::Time> arrivals;
  link.end_b().deliver = [&](net::Packet) { arrivals.push_back(sched.now()); };
  sched.at(sim::Time::micros(10), [&] { link.send_a_to_b(net::Packet(64)); });
  sched.run(100);
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], sim::Time::micros(13));
  EXPECT_EQ(link.delivered(), 1u);
}

TEST(Link, DownLinkDropsAndNotifies) {
  sim::Scheduler sched;
  Link link(sched, Link::Config{sim::Time::micros(1), true});
  int delivered = 0;
  std::vector<bool> status_a, status_b;
  link.end_b().deliver = [&](net::Packet) { ++delivered; };
  link.end_a().status = [&](bool up) { status_a.push_back(up); };
  link.end_b().status = [&](bool up) { status_b.push_back(up); };

  link.set_up(false);
  link.set_up(false);  // duplicate: no second notification
  link.send_a_to_b(net::Packet(64));
  sched.run(100);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(link.dropped_down(), 1u);
  ASSERT_EQ(status_a.size(), 1u);
  EXPECT_FALSE(status_a[0]);
  EXPECT_EQ(status_b.size(), 1u);

  link.set_up(true);
  link.send_a_to_b(net::Packet(64));
  sched.run(100);
  EXPECT_EQ(delivered, 1);
}

TEST(Link, ScheduledFailureAndRecovery) {
  sim::Scheduler sched;
  Link link(sched, Link::Config{});
  link.fail_at(sim::Time::micros(100));
  link.recover_at(sim::Time::micros(200));
  sched.run_until(sim::Time::micros(150));
  EXPECT_FALSE(link.up());
  sched.run_until(sim::Time::micros(250));
  EXPECT_TRUE(link.up());
}

TEST(Link, InFlightPacketSurvivesFailure) {
  sim::Scheduler sched;
  Link link(sched, Link::Config{sim::Time::micros(10), true});
  int delivered = 0;
  link.end_b().deliver = [&](net::Packet) { ++delivered; };
  link.send_a_to_b(net::Packet(64));  // will arrive at t=10us
  link.fail_at(sim::Time::micros(5));
  sched.run(100);
  EXPECT_EQ(delivered, 1);  // already propagating
}

// ---- host ---------------------------------------------------------------------

Host::Config host_cfg(const char* name, std::uint32_t ip_last) {
  Host::Config c;
  c.name = name;
  c.mac = MacAddress::from_u64(0x020000000000ULL + ip_last);
  c.ip = Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(ip_last));
  c.nic_rate_bps = 1e9;  // 1 Gb/s for visible pacing
  return c;
}

TEST(Host, PacesTransmissionAtNicRate) {
  sim::Scheduler sched;
  Host h(sched, host_cfg("h", 1));
  std::vector<sim::Time> tx_times;
  h.connect_tx([&](net::Packet) { tx_times.push_back(sched.now()); });
  h.send(net::Packet(1250));  // 10 us at 1 Gb/s
  h.send(net::Packet(1250));
  EXPECT_EQ(h.tx_backlog(), 1u);  // second queued behind the first
  sched.run(100);
  ASSERT_EQ(tx_times.size(), 2u);
  EXPECT_EQ(tx_times[0], sim::Time::micros(10));
  EXPECT_EQ(tx_times[1], sim::Time::micros(20));
  EXPECT_EQ(h.tx_packets(), 2u);
}

TEST(Host, ReceiveStatsPerUdpPort) {
  sim::Scheduler sched;
  Host h(sched, host_cfg("h", 1));
  int app_calls = 0;
  h.on_receive = [&](const net::Packet&) { ++app_calls; };
  h.receive(net::make_udp_packet(Ipv4Address(1, 1, 1, 1), h.ip(), 5, 80, 100));
  h.receive(net::make_udp_packet(Ipv4Address(1, 1, 1, 1), h.ip(), 5, 80, 100));
  h.receive(net::make_udp_packet(Ipv4Address(1, 1, 1, 1), h.ip(), 5, 443, 100));
  EXPECT_EQ(h.rx_packets(), 3u);
  EXPECT_EQ(h.rx_bytes(), 300u);
  EXPECT_EQ(h.rx_on_port(80), 2u);
  EXPECT_EQ(h.rx_on_port(443), 1u);
  EXPECT_EQ(h.rx_on_port(9999), 0u);
  EXPECT_EQ(app_calls, 3);
}

// ---- traffic generators ------------------------------------------------------------

TEST(CbrGenerator, EmitsAtConfiguredRate) {
  sim::Scheduler sched;
  Host h(sched, host_cfg("h", 1));
  h.connect_tx([](net::Packet) {});
  CbrGenerator::Config cfg;
  cfg.flow.packet_size = 1250;
  cfg.rate_bps = 100e6;  // 1250B @ 100 Mb/s = 100 us spacing
  cfg.stop = sim::Time::millis(1);
  CbrGenerator gen(sched, h, cfg);
  gen.start();
  sched.run_until(sim::Time::millis(2));
  EXPECT_EQ(gen.sent(), 10u);  // t=0..900us
}

TEST(PoissonGenerator, MeanRateApproximatelyHonored) {
  sim::Scheduler sched;
  Host h(sched, host_cfg("h", 1));
  h.connect_tx([](net::Packet) {});
  PoissonGenerator::Config cfg;
  cfg.flow.packet_size = 1250;
  cfg.mean_rate_bps = 1e9;  // mean spacing 10 us
  cfg.stop = sim::Time::millis(100);
  cfg.seed = 99;
  PoissonGenerator gen(sched, h, cfg);
  gen.start();
  sched.run_until(sim::Time::millis(110));
  // ~10000 packets expected over 100 ms.
  EXPECT_NEAR(static_cast<double>(gen.sent()), 10'000.0, 500.0);
}

TEST(BurstGenerator, BurstsWithGaps) {
  sim::Scheduler sched;
  Host h(sched, host_cfg("h", 1));
  std::vector<sim::Time> tx;
  h.connect_tx([&](net::Packet) { tx.push_back(sched.now()); });
  BurstGenerator::Config cfg;
  cfg.flow.packet_size = 125;  // 1 us at 1 Gb/s NIC
  cfg.burst_rate_bps = 1e9;
  cfg.burst_packets = 5;
  cfg.gap = sim::Time::micros(100);
  cfg.stop = sim::Time::micros(250);
  BurstGenerator gen(sched, h, cfg);
  gen.start();
  sched.run_until(sim::Time::millis(1));
  EXPECT_EQ(gen.bursts(), 3u);  // t=0, ~105, ~210
  EXPECT_EQ(gen.sent(), 15u);
}

TEST(TraceReplay, ParsesCsvAndReplaysAtExactTimes) {
  const std::string csv =
      "# time_us,src,dst,sport,dport,size\n"
      "0,10.0.0.1,10.0.1.1,1000,2000,500\n"
      "\n"
      "12.5,10.0.0.2,10.0.1.1,1001,2000,64\n"
      "100,10.0.0.1,10.0.1.2,1000,2001,1500\n";
  std::size_t errors = 0;
  const auto trace = TraceReplayGenerator::parse_csv(csv, &errors);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(errors, 0u);
  EXPECT_EQ(trace[1].at, sim::Time::from_seconds(12.5e-6));
  EXPECT_EQ(trace[1].flow.src, Ipv4Address(10, 0, 0, 2));
  EXPECT_EQ(trace[2].flow.packet_size, 1500u);

  sim::Scheduler sched;
  Host h(sched, host_cfg("h", 1));
  std::vector<std::pair<sim::Time, std::size_t>> sent;
  h.connect_tx([&](net::Packet p) { sent.push_back({sched.now(), p.size()}); });
  TraceReplayGenerator gen(sched, h, trace);
  gen.start();
  sched.run(1000);
  ASSERT_EQ(sent.size(), 3u);
  EXPECT_EQ(gen.sent(), 3u);
  // Replay times = trace times + NIC serialization (1 Gb/s host NIC).
  EXPECT_EQ(sent[0].second, 500u);
  EXPECT_EQ(sent[0].first, sim::serialization_time(500, 1e9));
  EXPECT_EQ(sent[2].second, 1500u);
}

TEST(TraceReplay, MalformedLinesAreCountedNotReplayed) {
  const std::string csv =
      "0,10.0.0.1,10.0.1.1,1000,2000,500\n"
      "5,not_an_ip,10.0.1.1,1,2,100\n"     // bad src
      "5,10.0.0.1,10.0.1.1,999999,2,100\n"  // bad port
      "5,10.0.0.1,10.0.1.1,1,2,0\n"         // bad size
      "garbage line\n";
  std::size_t errors = 0;
  const auto trace = TraceReplayGenerator::parse_csv(csv, &errors);
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(errors, 4u);
}

TEST(ZipfGenerator, CountsMatchEmissionsAndSkew) {
  sim::Scheduler sched;
  Host h(sched, host_cfg("h", 1));
  h.connect_tx([](net::Packet) {});
  ZipfGenerator::Config cfg;
  cfg.num_flows = 50;
  cfg.skew = 1.3;
  cfg.rate_bps = 1e9;
  cfg.packet_size = 125;
  cfg.dst = Ipv4Address(10, 0, 9, 9);
  cfg.stop = sim::Time::millis(10);
  ZipfGenerator gen(sched, h, cfg);
  gen.start();
  sched.run_until(sim::Time::millis(20));
  std::uint64_t total = 0;
  for (const auto c : gen.true_counts()) {
    total += c;
  }
  EXPECT_EQ(total, gen.sent());
  EXPECT_GT(gen.sent(), 5000u);
  EXPECT_GT(gen.true_counts()[0], gen.true_counts()[20]);
}

// ---- network wiring -----------------------------------------------------------------

TEST(Network, HostSwitchHostForwarding) {
  sim::Scheduler sched;
  Network net(sched);

  core::EventSwitchConfig scfg;
  scfg.num_ports = 2;
  const std::size_t s = net.add_switch(scfg);
  const std::size_t h0 = net.add_host(host_cfg("h0", 1));
  const std::size_t h1 = net.add_host(host_cfg("h1", 2));
  net.connect_host(h0, s, 0, Link::Config{sim::Time::micros(1), true});
  net.connect_host(h1, s, 1, Link::Config{sim::Time::micros(1), true});

  L3Program prog;
  prog.add_route(Ipv4Address(10, 0, 0, 2), 32, 1);
  net.sw(s).set_program(&prog);

  net.host(h0).send(net::make_udp_packet(net.host(h0).ip(),
                                         net.host(h1).ip(), 1, 2, 200));
  net.run_until(sim::Time::millis(1));
  EXPECT_EQ(net.host(h1).rx_packets(), 1u);
  EXPECT_EQ(net.sw(s).counters().tx_packets, 1u);
}

TEST(Network, SwitchToSwitchLinkStatusPropagates) {
  sim::Scheduler sched;
  Network net(sched);
  core::EventSwitchConfig scfg;
  scfg.num_ports = 2;
  const std::size_t a = net.add_switch(scfg);
  const std::size_t b = net.add_switch(scfg);
  const std::size_t l = net.connect_switches(a, 1, b, 1);

  net.link(l).fail_at(sim::Time::micros(10));
  net.run_until(sim::Time::micros(20));
  EXPECT_FALSE(net.sw(a).link_up(1));
  EXPECT_FALSE(net.sw(b).link_up(1));
  EXPECT_TRUE(net.sw(a).link_up(0));
}

TEST(Network, PcapTapCapturesBothDirections) {
  sim::Scheduler sched;
  Network net(sched);
  core::EventSwitchConfig scfg;
  scfg.num_ports = 2;
  const std::size_t s = net.add_switch(scfg);
  const std::size_t h0 = net.add_host(host_cfg("h0", 1));
  const std::size_t h1 = net.add_host(host_cfg("h1", 2));
  const std::size_t l0 = net.connect_host(h0, s, 0);
  net.connect_host(h1, s, 1);
  L3Program prog;
  prog.add_route(net.host(h0).ip(), 32, 0);
  prog.add_route(net.host(h1).ip(), 32, 1);
  net.sw(s).set_program(&prog);

  const std::string path = ::testing::TempDir() + "/edp_tap.pcap";
  ASSERT_TRUE(net.attach_pcap(l0, path));
  EXPECT_FALSE(net.attach_pcap(l0, "/nonexistent_dir_zz/x.pcap"));

  // h0 -> h1 (outbound over l0) and h1 -> h0 (inbound over l0).
  net.host(h0).send(net::make_udp_packet(net.host(h0).ip(),
                                         net.host(h1).ip(), 1, 2, 100));
  net.host(h1).send(net::make_udp_packet(net.host(h1).ip(),
                                         net.host(h0).ip(), 3, 4, 200));
  net.run_until(sim::Time::millis(1));
  EXPECT_EQ(net.host(h1).rx_packets(), 1u);
  EXPECT_EQ(net.host(h0).rx_packets(), 1u);

  // The tap saw both directions of l0: h0's outbound data packet and the
  // return packet delivered to h0.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  // global header 24 + 2 records (16+100) + (16+200).
  EXPECT_EQ(size, 24 + 16 + 100 + 16 + 200);
  std::remove(path.c_str());
}

// ---- control plane -----------------------------------------------------------------

TEST(ControlPlaneAgent, PuntPaysChannelLatency) {
  sim::Scheduler sched;
  core::EventSwitchConfig scfg;
  scfg.num_ports = 2;
  core::EventSwitch sw(sched, scfg);
  ControlPlaneAgent cp(sched,
                       {sim::Time::micros(500), sim::Time::micros(50)});
  std::vector<sim::Time> handled;
  cp.attach(sw, [&](const core::ControlEventData&) {
    handled.push_back(sched.now());
  });
  sched.at(sim::Time::micros(100), [&] {
    sw.notify_control_plane(core::ControlEventData{});
  });
  sched.run(100);
  ASSERT_EQ(handled.size(), 1u);
  EXPECT_EQ(handled[0], sim::Time::micros(650));
  EXPECT_EQ(cp.messages_from_switch(), 1u);
}

TEST(ControlPlaneAgent, InjectionDelayedByChannel) {
  sim::Scheduler sched;
  core::EventSwitchConfig scfg;
  scfg.num_ports = 2;
  core::EventSwitch sw(sched, scfg);
  ControlPlaneAgent cp(sched, {sim::Time::micros(200), sim::Time::zero()});
  cp.inject_packet(sw, net::Packet(64));
  EXPECT_EQ(sw.counters().rx_packets, 0u);
  sched.run_until(sim::Time::micros(300));
  EXPECT_EQ(sw.counters().rx_packets, 1u);
  EXPECT_EQ(cp.packets_injected(), 1u);
}

TEST(ControlPlaneAgent, PeriodicCpTask) {
  sim::Scheduler sched;
  ControlPlaneAgent cp(sched, {});
  int runs = 0;
  auto task = cp.every(sim::Time::millis(1), [&] { ++runs; });
  sched.run_until(sim::Time::millis(10));
  EXPECT_EQ(runs, 10);
  task->stop();
}

// ---- routing program ----------------------------------------------------------------

TEST(L3Program, LpmForwardingAndMissDrop) {
  sim::Scheduler sched;
  core::EventSwitchConfig scfg;
  scfg.num_ports = 4;
  core::EventSwitch sw(sched, scfg);
  L3Program prog;
  prog.add_route(Ipv4Address(10, 1, 0, 0), 16, 2);
  prog.add_route(Ipv4Address(10, 1, 2, 0), 24, 3);
  sw.set_program(&prog);
  int tx2 = 0, tx3 = 0;
  sw.connect_tx(2, [&](net::Packet) { ++tx2; });
  sw.connect_tx(3, [&](net::Packet) { ++tx3; });

  sw.receive(0, net::make_udp_packet(Ipv4Address(9, 9, 9, 9),
                                     Ipv4Address(10, 1, 2, 5), 1, 2, 100));
  sw.receive(0, net::make_udp_packet(Ipv4Address(9, 9, 9, 9),
                                     Ipv4Address(10, 1, 9, 5), 1, 2, 100));
  sw.receive(0, net::make_udp_packet(Ipv4Address(9, 9, 9, 9),
                                     Ipv4Address(172, 16, 0, 1), 1, 2, 100));
  sched.run(10'000);
  EXPECT_EQ(tx3, 1);  // /24 wins
  EXPECT_EQ(tx2, 1);  // /16 fallback
  EXPECT_EQ(sw.counters().program_drops, 1u);  // default drop on miss
}

TEST(EcmpPick, DeterministicPerFlowAndSpreads) {
  pisa::Phv a;
  a.ipv4 = net::Ipv4Header{};
  a.ipv4->src = Ipv4Address(10, 0, 0, 1);
  a.ipv4->dst = Ipv4Address(10, 0, 0, 2);
  a.udp = net::UdpHeader{};
  a.udp->src_port = 100;
  a.udp->dst_port = 200;
  EXPECT_EQ(ecmp_pick(a, 4), ecmp_pick(a, 4));

  // Different flows must not all map to one port.
  std::set<std::uint16_t> picks;
  for (std::uint16_t p = 0; p < 64; ++p) {
    pisa::Phv b = a;
    b.udp->src_port = p;
    picks.insert(ecmp_pick(b, 4));
  }
  EXPECT_GT(picks.size(), 1u);
  EXPECT_EQ(ecmp_pick(a, 0), 0);
}

}  // namespace
}  // namespace edp::topo
