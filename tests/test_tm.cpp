// Unit tests for edp::tm_ — queues, PIFO, schedulers, buffer pool, and the
// traffic manager's event emission.
#include <gtest/gtest.h>

#include "net/packet_builder.hpp"
#include "tm/buffer_pool.hpp"
#include "tm/pifo.hpp"
#include "tm/queue.hpp"
#include "tm/scheduler.hpp"
#include "tm/traffic_manager.hpp"

namespace edp::tm_ {
namespace {

QueuedPacket qp_of(std::size_t size, std::uint64_t rank = 0) {
  QueuedPacket qp;
  qp.packet = net::Packet(size);
  qp.rank = rank;
  return qp;
}

// ---- FIFO queue -----------------------------------------------------------------

TEST(FifoQueue, FifoOrderAndByteAccounting) {
  FifoQueue q(QueueLimits{10, 10'000});
  ASSERT_TRUE(q.push(qp_of(100)));
  ASSERT_TRUE(q.push(qp_of(200)));
  EXPECT_EQ(q.bytes(), 300u);
  EXPECT_EQ(q.packets(), 2u);
  EXPECT_EQ(q.front_size(), 100u);
  auto first = q.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->packet.size(), 100u);
  EXPECT_EQ(q.bytes(), 200u);
}

TEST(FifoQueue, PacketLimitTailDrop) {
  FifoQueue q(QueueLimits{2, 10'000});
  EXPECT_TRUE(q.push(qp_of(10)));
  EXPECT_TRUE(q.push(qp_of(10)));
  EXPECT_FALSE(q.push(qp_of(10)));
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.stats().enqueued, 2u);
}

TEST(FifoQueue, ByteLimitTailDrop) {
  FifoQueue q(QueueLimits{100, 250});
  EXPECT_TRUE(q.push(qp_of(200)));
  EXPECT_FALSE(q.push(qp_of(100)));  // 300 > 250
  EXPECT_TRUE(q.push(qp_of(50)));
  EXPECT_EQ(q.bytes(), 250u);
}

TEST(FifoQueue, PopEmptyReturnsNullopt) {
  FifoQueue q(QueueLimits{});
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.empty());
}

TEST(FifoQueue, MaxDepthTracked) {
  FifoQueue q(QueueLimits{100, 100'000});
  q.push(qp_of(500));
  q.push(qp_of(500));
  q.pop();
  q.push(qp_of(100));
  EXPECT_EQ(q.stats().max_depth_bytes, 1000u);
  EXPECT_EQ(q.stats().max_depth_packets, 2u);
}

// ---- PIFO -------------------------------------------------------------------------

TEST(PifoQueue, DequeuesInRankOrder) {
  PifoQueue q(QueueLimits{100, 100'000});
  q.push(qp_of(10, 30));
  q.push(qp_of(11, 10));
  q.push(qp_of(12, 20));
  EXPECT_EQ(q.front_rank(), 10u);
  EXPECT_EQ(q.pop()->rank, 10u);
  EXPECT_EQ(q.pop()->rank, 20u);
  EXPECT_EQ(q.pop()->rank, 30u);
}

TEST(PifoQueue, TiesBreakFifo) {
  PifoQueue q(QueueLimits{100, 100'000});
  q.push(qp_of(64, 5));
  q.push(qp_of(65, 5));
  q.push(qp_of(66, 5));
  EXPECT_EQ(q.pop()->packet.size(), 64u);
  EXPECT_EQ(q.pop()->packet.size(), 65u);
  EXPECT_EQ(q.pop()->packet.size(), 66u);
}

TEST(PifoQueue, PushAfterPopKeepsOrder) {
  PifoQueue q(QueueLimits{100, 100'000});
  q.push(qp_of(10, 50));
  q.push(qp_of(11, 10));
  q.pop();  // rank 10
  q.push(qp_of(12, 5));
  EXPECT_EQ(q.pop()->rank, 5u);
  EXPECT_EQ(q.pop()->rank, 50u);
}

// ---- schedulers ----------------------------------------------------------------------

std::vector<std::unique_ptr<PacketQueue>> make_queues(std::size_t n) {
  std::vector<std::unique_ptr<PacketQueue>> qs;
  for (std::size_t i = 0; i < n; ++i) {
    qs.push_back(std::make_unique<FifoQueue>(QueueLimits{100, 100'000}));
  }
  return qs;
}

TEST(RoundRobinScheduler, CyclesAcrossNonEmpty) {
  auto qs = make_queues(3);
  qs[0]->push(qp_of(10));
  qs[0]->push(qp_of(10));
  qs[2]->push(qp_of(10));
  RoundRobinScheduler rr;
  EXPECT_EQ(rr.select(qs), 0);
  qs[0]->pop();
  EXPECT_EQ(rr.select(qs), 2);
  qs[2]->pop();
  EXPECT_EQ(rr.select(qs), 0);
  qs[0]->pop();
  EXPECT_EQ(rr.select(qs), -1);
}

TEST(StrictPriorityScheduler, LowestQidFirst) {
  auto qs = make_queues(3);
  qs[2]->push(qp_of(10));
  StrictPriorityScheduler sp;
  EXPECT_EQ(sp.select(qs), 2);
  qs[0]->push(qp_of(10));
  EXPECT_EQ(sp.select(qs), 0);
}

TEST(DwrrScheduler, BytesFollowWeights) {
  auto qs = make_queues(2);
  // Keep both queues backlogged with 100-byte packets (within the queue
  // packet limit so nothing tail-drops and both stay non-empty throughout).
  for (int i = 0; i < 100; ++i) {
    qs[0]->push(qp_of(100));
    qs[1]->push(qp_of(100));
  }
  DwrrScheduler dwrr(2, {3, 1}, /*quantum=*/100);
  std::size_t served[2] = {0, 0};
  for (int i = 0; i < 100; ++i) {
    const int q = dwrr.select(qs);
    ASSERT_GE(q, 0);
    const auto qu = static_cast<std::size_t>(q);
    qs[qu]->pop();
    dwrr.on_dequeued(q, 100);
    ++served[qu];
  }
  // Expect roughly a 3:1 byte split.
  const double ratio =
      static_cast<double>(served[0]) / static_cast<double>(served[1]);
  EXPECT_NEAR(ratio, 3.0, 0.5);
}

TEST(DwrrScheduler, EmptyQueuesForfeitCredit) {
  auto qs = make_queues(2);
  DwrrScheduler dwrr(2, {1, 1}, 100);
  EXPECT_EQ(dwrr.select(qs), -1);
  qs[1]->push(qp_of(100));
  EXPECT_EQ(dwrr.select(qs), 1);
}

// ---- buffer pool -----------------------------------------------------------------------

TEST(BufferPool, TotalCapacityEnforced) {
  BufferPool pool({1000, 100, 1.0}, 2);
  EXPECT_TRUE(pool.can_admit(0, 900));
  pool.on_enqueue(0, 900);
  EXPECT_FALSE(pool.can_admit(1, 200));
  EXPECT_TRUE(pool.can_admit(1, 100));  // within reservation
  pool.on_dequeue(0, 900);
  EXPECT_TRUE(pool.can_admit(1, 200));
}

TEST(BufferPool, ReservationAlwaysAvailable) {
  BufferPool pool({1000, 100, 0.0}, 2);  // alpha 0: no shared usage at all
  EXPECT_TRUE(pool.can_admit(0, 100));
  pool.on_enqueue(0, 100);
  EXPECT_FALSE(pool.can_admit(0, 1));  // above reservation, alpha=0
  EXPECT_TRUE(pool.can_admit(1, 100));
}

TEST(BufferPool, DynamicThresholdSharesFreeSpace) {
  BufferPool pool({1000, 100, 1.0}, 2);
  // Shared capacity = 1000 - 200 = 800; queue 0 may take its 100
  // reservation + up to alpha * free_shared.
  pool.on_enqueue(0, 100);
  EXPECT_TRUE(pool.can_admit(0, 700));
  pool.on_enqueue(0, 700);
  EXPECT_EQ(pool.free_shared(), 100u);
  // Queue 0 is already far above its dynamic threshold: further growth is
  // denied (classic dynamic-threshold back-pressure on the hog queue).
  EXPECT_FALSE(pool.can_admit(0, 150));
  EXPECT_FALSE(pool.can_admit(0, 100));
  // The other queue keeps its reservation plus its share of the free pool.
  EXPECT_TRUE(pool.can_admit(1, 100));
  EXPECT_TRUE(pool.can_admit(1, 200));   // 100 reserved + 100 shared
  EXPECT_FALSE(pool.can_admit(1, 250));  // exceeds alpha * free_shared
}

// ---- traffic manager -------------------------------------------------------------------

TmConfig small_tm() {
  TmConfig c;
  c.num_ports = 2;
  c.queues_per_port = 2;
  c.queue_limits = QueueLimits{8, 8000};
  c.buffer = BufferPool::Config{64 * 1024, 1024, 1.0};
  return c;
}

TEST(TrafficManager, EnqueueDequeueFiresEvents) {
  TrafficManager tm(small_tm());
  std::vector<EnqueueRecord> enqs;
  std::vector<DequeueRecord> deqs;
  tm.on_enqueue = [&](const EnqueueRecord& r) { enqs.push_back(r); };
  tm.on_dequeue = [&](const DequeueRecord& r) { deqs.push_back(r); };

  EventMetaWords meta{42, 1000, 0, 0};
  QueuedPacket qp = qp_of(1000);
  qp.deq_meta = meta;
  ASSERT_TRUE(tm.enqueue(1, 0, std::move(qp), meta, sim::Time::micros(5)));
  ASSERT_EQ(enqs.size(), 1u);
  EXPECT_EQ(enqs[0].port, 1);
  EXPECT_EQ(enqs[0].pkt_len, 1000u);
  EXPECT_EQ(enqs[0].enq_meta[0], 42u);
  EXPECT_EQ(enqs[0].depth_bytes, 1000u);

  auto out = tm.dequeue(1, sim::Time::micros(9));
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(deqs.size(), 1u);
  EXPECT_EQ(deqs[0].deq_meta[0], 42u);
  EXPECT_EQ(deqs[0].sojourn, sim::Time::micros(4));
  EXPECT_EQ(deqs[0].depth_bytes, 0u);
}

TEST(TrafficManager, OverflowFiresDropEvent) {
  TmConfig cfg = small_tm();
  cfg.queue_limits = QueueLimits{1, 10'000};
  TrafficManager tm(cfg);
  std::vector<DropRecord> drops;
  tm.on_drop = [&](const DropRecord& r) { drops.push_back(r); };
  ASSERT_TRUE(tm.enqueue(0, 0, qp_of(100), {}, sim::Time::zero()));
  ASSERT_FALSE(tm.enqueue(0, 0, qp_of(100), {}, sim::Time::zero()));
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0].reason, DropReason::kQueueLimit);
  EXPECT_EQ(tm.drops_total(), 1u);
}

TEST(TrafficManager, UnderflowFiresOnEmptyPort) {
  TrafficManager tm(small_tm());
  int underflows = 0;
  tm.on_underflow = [&](const UnderflowRecord&) { ++underflows; };
  EXPECT_FALSE(tm.dequeue(0, sim::Time::zero()).has_value());
  EXPECT_EQ(underflows, 1);
}

TEST(TrafficManager, AdmissionHookDropsWithReason) {
  TrafficManager tm(small_tm());
  std::vector<DropRecord> drops;
  tm.on_drop = [&](const DropRecord& r) { drops.push_back(r); };
  tm.admit = [](const EnqueueRecord&, const QueuedPacket&) { return false; };
  EXPECT_FALSE(tm.enqueue(0, 0, qp_of(100), {}, sim::Time::zero()));
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0].reason, DropReason::kAdmission);
}

TEST(TrafficManager, OccupancyQueries) {
  TrafficManager tm(small_tm());
  tm.enqueue(0, 0, qp_of(100), {}, sim::Time::zero());
  tm.enqueue(0, 1, qp_of(200), {}, sim::Time::zero());
  tm.enqueue(1, 0, qp_of(300), {}, sim::Time::zero());
  EXPECT_EQ(tm.queue_bytes(0, 0), 100u);
  EXPECT_EQ(tm.queue_bytes(0, 1), 200u);
  EXPECT_EQ(tm.port_bytes(0), 300u);
  EXPECT_EQ(tm.total_bytes(), 600u);
  EXPECT_FALSE(tm.port_empty(0));
  EXPECT_EQ(tm.next_packet_size(0), 100u);
}

TEST(TrafficManager, PifoModeOrdersByRank) {
  TmConfig cfg = small_tm();
  cfg.use_pifo = true;
  TrafficManager tm(cfg);
  tm.enqueue(0, 0, qp_of(10, 9), {}, sim::Time::zero());
  tm.enqueue(0, 0, qp_of(11, 1), {}, sim::Time::zero());
  tm.enqueue(0, 0, qp_of(12, 5), {}, sim::Time::zero());
  EXPECT_EQ(tm.dequeue(0, sim::Time::zero())->rank, 1u);
  EXPECT_EQ(tm.dequeue(0, sim::Time::zero())->rank, 5u);
  EXPECT_EQ(tm.dequeue(0, sim::Time::zero())->rank, 9u);
}

TEST(TrafficManager, BufferPoolExhaustionReason) {
  TmConfig cfg = small_tm();
  cfg.buffer = BufferPool::Config{2000, 100, 1.0};
  cfg.queue_limits = QueueLimits{100, 1'000'000};
  TrafficManager tm(cfg);
  std::vector<DropRecord> drops;
  tm.on_drop = [&](const DropRecord& r) { drops.push_back(r); };
  ASSERT_TRUE(tm.enqueue(0, 0, qp_of(1500), {}, sim::Time::zero()));
  ASSERT_FALSE(tm.enqueue(0, 0, qp_of(1500), {}, sim::Time::zero()));
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0].reason, DropReason::kBufferPool);
}

}  // namespace
}  // namespace edp::tm_
