// Tests for edp::analysis — the static feasibility analyzer (edp-verify).
//
// Each fixture program plants exactly one defect class; the assertions
// match on the stable finding codes so the lint vocabulary is part of the
// repo's contract. The shipped apps must all analyze clean (the same gate
// edp_lint enforces in ctest).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/hardware_model.hpp"
#include "analysis/optimizer.hpp"
#include "analysis/report.hpp"
#include "apps/registry.hpp"
#include "core/aggregated_register.hpp"
#include "core/event_program.hpp"
#include "core/shared_register.hpp"
#include "pisa/register.hpp"

namespace edp {
namespace {

using analysis::ActionKind;
using analysis::Finding;
using analysis::Handler;
using analysis::Report;
using analysis::Severity;

template <typename Program>
Report analyze(const std::string& name,
               analysis::AnalyzerOptions options = {}) {
  return analysis::analyze_program(
      name, [] { return std::make_unique<Program>(); }, options);
}

const analysis::HardwareModel* tor_model() {
  return analysis::find_hardware_model("linerate-tor");
}

const analysis::RegisterUsage* find_register(const Report& report,
                                             std::string_view name) {
  for (const analysis::RegisterUsage& reg : report.matrix.registers) {
    if (reg.name == name) {
      return &reg;
    }
  }
  return nullptr;
}

const Finding* find_code(const Report& report, std::string_view code) {
  for (const Finding& f : report.findings) {
    if (f.code == code) {
      return &f;
    }
  }
  return nullptr;
}

int count_code(const Report& report, std::string_view code) {
  int n = 0;
  for (const Finding& f : report.findings) {
    n += f.code == code ? 1 : 0;
  }
  return n;
}

// ---- fixture programs ---------------------------------------------------------

/// Overrides nothing: the analyzer must have nothing to say.
struct NoopProgram : core::EventProgram {};

/// One single-ported SharedRegister written from three event-processing
/// threads — not realizable (paper §4).
class OvercommittedProgram : public core::EventProgram {
 public:
  void on_ingress(pisa::Phv&, core::EventContext& ctx) override {
    reg_.rmw(0, [](std::uint64_t v) { return v + 1; },
             core::ThreadId::kIngress, ctx.cycle());
  }
  void on_enqueue(const tm_::EnqueueRecord&,
                  core::EventContext& ctx) override {
    reg_.rmw(0, [](std::uint64_t v) { return v + 1; },
             core::ThreadId::kEnqueue, ctx.cycle());
  }
  void on_dequeue(const tm_::DequeueRecord&,
                  core::EventContext& ctx) override {
    reg_.rmw(0, [](std::uint64_t v) { return v - 1; },
             core::ThreadId::kDequeue, ctx.cycle());
  }

 private:
  core::SharedRegister<std::uint64_t> reg_{"hot_counter", 16, /*ports=*/1};
};

/// Declares the wrong ThreadId on its accesses: the port accountant would
/// validate a schedule the handler never runs on.
class MislabeledThreadProgram : public core::EventProgram {
 public:
  void on_ingress(pisa::Phv&, core::EventContext& ctx) override {
    reg_.rmw(0, [](std::uint64_t v) { return v + 1; },
             core::ThreadId::kTimer, ctx.cycle());
  }

 private:
  core::SharedRegister<std::uint64_t> reg_{"mislabeled", 8, /*ports=*/4};
};

/// Touches the AggregatedRegister arrays from the wrong threads: ingress
/// writes the enqueue aggregation array, the enqueue handler steals the
/// main array's packet port.
class AggMisuseProgram : public core::EventProgram {
 public:
  void on_ingress(pisa::Phv&, core::EventContext& ctx) override {
    agg_.enqueue_add(0, 1, ctx.cycle());
  }
  void on_enqueue(const tm_::EnqueueRecord&,
                  core::EventContext& ctx) override {
    agg_.packet_add(0, 1, ctx.cycle());
  }

 private:
  core::AggregatedRegister agg_{"misused_agg", 8};
};

/// Recirculates every packet forever — the classic unguarded event storm.
class UnguardedRecircProgram : public core::EventProgram {
 public:
  void on_ingress(pisa::Phv& phv, core::EventContext&) override {
    phv.std_meta.recirculate = true;
  }
  void on_recirculate(pisa::Phv& phv, core::EventContext&) override {
    phv.std_meta.recirculate = true;
  }
};

/// Same recirculation cycle, but a hop count in a user word bounds it:
/// statically a cycle, dynamically guarded.
class GuardedRecircProgram : public core::EventProgram {
 public:
  static constexpr std::size_t kHopWord = 8;  // outside the enq/deq meta
  static constexpr std::uint64_t kMaxHops = 3;

  void on_ingress(pisa::Phv& phv, core::EventContext&) override {
    phv.user[kHopWord] = 0;
    phv.std_meta.recirculate = true;
  }
  void on_recirculate(pisa::Phv& phv, core::EventContext&) override {
    if (phv.user[kHopWord] + 1 < kMaxHops) {
      ++phv.user[kHopWord];
      phv.std_meta.recirculate = true;
    }
  }
};

/// Every user event raises another user event — amplification through the
/// event merger instead of the recirculation port.
class UserStormProgram : public core::EventProgram {
 public:
  void on_ingress(pisa::Phv&, core::EventContext& ctx) override {
    core::UserEventData data;
    data.id = 1;
    ctx.raise_user_event(data);
  }
  void on_user(const core::UserEventData& e,
               core::EventContext& ctx) override {
    core::UserEventData next = e;
    ++next.words[0];
    ctx.raise_user_event(next);
  }
};

/// Arms a timer without handling refusal: on a baseline architecture the
/// program silently loses its periodic work.
class UncheckedTimerProgram : public core::EventProgram {
 public:
  void on_attach(core::EventContext& ctx) override {
    ctx.set_periodic_timer(sim::Time::millis(10), /*cookie=*/0x7e57);
  }
};

/// The same timer, but with the kOpFacilityUnavailable punt on refusal —
/// the convention the resource lint checks for.
class CheckedTimerProgram : public core::EventProgram {
 public:
  void on_attach(core::EventContext& ctx) override {
    if (ctx.set_periodic_timer(sim::Time::millis(10), 0x7e57) == 0) {
      core::ControlEventData punt;
      punt.opcode = core::kOpFacilityUnavailable;
      punt.args[0] = 0x7e57;
      ctx.notify_control_plane(punt);
    }
  }
};

/// Passes the refusal sentinel (id 0) straight into an API — an
/// acquisition result was never checked.
class ZeroIdProgram : public core::EventProgram {
 public:
  void on_attach(core::EventContext& ctx) override {
    ctx.trigger_generator(0);
  }
};

/// Writes enq meta in the egress pipeline — both metas were extracted at
/// enqueue admission, so the write is dead.
class DeadMetaWriteProgram : public core::EventProgram {
 public:
  void on_egress(pisa::Phv& phv, core::EventContext&) override {
    set_enq_meta(phv, 0, 0xbeef);
  }
};

/// Attaches enq meta at ingress but never observes any buffer event.
class UnusedMetaProgram : public core::EventProgram {
 public:
  void on_ingress(pisa::Phv& phv, core::EventContext&) override {
    set_enq_meta(phv, 0, phv.length());
  }
};

/// Thirteen registers read in sequence within one ingress activation: each
/// read value conservatively feeds every later access, so the dependency
/// chain needs one stage per register — one more than linerate-tor has.
class DeepChainProgram : public core::EventProgram {
 public:
  static constexpr std::size_t kChain = 13;

  DeepChainProgram() {
    regs_.reserve(kChain);
    for (std::size_t i = 0; i < kChain; ++i) {
      regs_.emplace_back("chain" + std::to_string(i), 1, /*ports=*/1);
    }
  }

  void on_ingress(pisa::Phv&, core::EventContext& ctx) override {
    std::uint64_t acc = 0;
    for (auto& reg : regs_) {
      std::uint64_t v = 0;
      reg.read(0, v, core::ThreadId::kIngress, ctx.cycle());
      acc += v;
    }
    (void)acc;
  }

 private:
  std::vector<core::SharedRegister<std::uint64_t>> regs_;
};

/// A two-ported occupancy register: ingress updates it, the enqueue thread
/// *reads* it. Two declared ports satisfy the §4 budget, but a read needs
/// the live value, so a single-ported pipeline stage cannot absorb the
/// enqueue access through aggregation.
class EnqueueReadProgram : public core::EventProgram {
 public:
  void on_ingress(pisa::Phv&, core::EventContext& ctx) override {
    occ_.rmw(0, [](std::uint64_t v) { return v + 1; },
             core::ThreadId::kIngress, ctx.cycle());
  }
  void on_enqueue(const tm_::EnqueueRecord&,
                  core::EventContext& ctx) override {
    std::uint64_t v = 0;
    occ_.read(0, v, core::ThreadId::kEnqueue, ctx.cycle());
  }

 private:
  core::SharedRegister<std::uint64_t> occ_{"occupancy", 1, /*ports=*/2};
};

/// Correct §4 aggregation discipline, but every enqueue and dequeue posts a
/// delta: at the worst-case 84-byte packet rate nearly every cycle carries
/// a packet slot, leaving too few idle cycles to drain the side arrays.
class AggStarveProgram : public core::EventProgram {
 public:
  void on_ingress(pisa::Phv&, core::EventContext& ctx) override {
    agg_.packet_add(0, 1, ctx.cycle());
  }
  void on_enqueue(const tm_::EnqueueRecord&,
                  core::EventContext& ctx) override {
    agg_.enqueue_add(0, 1, ctx.cycle());
  }
  void on_dequeue(const tm_::DequeueRecord&,
                  core::EventContext& ctx) override {
    agg_.dequeue_add(0, 1, ctx.cycle());
  }

 private:
  core::AggregatedRegister agg_{"burst_bytes", 8};
};

/// Counts arrivals on ingress port 0 (only the tcp stimulus) and arms a
/// flag from the third packet on — reachable only because the driver
/// repeats each stimulus back-to-back.
class ThresholdProgram : public core::EventProgram {
 public:
  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override {
    if (phv.std_meta.ingress_port != 0) {
      return;
    }
    const std::uint64_t n =
        count_.rmw(0, [](std::uint64_t v) { return v + 1; },
                   core::ThreadId::kIngress, ctx.cycle());
    if (n >= 3) {
      armed_.write(0, 1, core::ThreadId::kIngress, ctx.cycle());
    }
  }

 private:
  core::SharedRegister<std::uint64_t> count_{"warmup_count", 1, 1};
  core::SharedRegister<std::uint64_t> armed_{"armed_flag", 1, 1};
};

/// Consumes dequeue metadata without any ingress ever attaching it: the
/// driver must replay buffer events with all-zero meta words, and the
/// meta-guarded branch must stay cold.
class ZeroMetaConsumerProgram : public core::EventProgram {
 public:
  void on_dequeue(const tm_::DequeueRecord& r,
                  core::EventContext& ctx) override {
    if (r.deq_meta[0] != 0) {
      stale_.write(0, r.deq_meta[0], core::ThreadId::kDequeue, ctx.cycle());
    }
    seen_.rmw(0, [](std::uint64_t v) { return v + 1; },
              core::ThreadId::kDequeue, ctx.cycle());
  }

 private:
  core::SharedRegister<std::uint64_t> stale_{"stale_meta", 1, 1};
  core::SharedRegister<std::uint64_t> seen_{"deq_seen", 1, 1};
};

/// Reacts to queue depth alone (never writes enq meta): only the driver's
/// deep-buffer replay reaches the congested branch.
class DeepBufferProgram : public core::EventProgram {
 public:
  void on_enqueue(const tm_::EnqueueRecord& r,
                  core::EventContext& ctx) override {
    if (r.depth_bytes > 100 * 1024) {
      congested_.rmw(0, [](std::uint64_t v) { return v + 1; },
                     core::ThreadId::kEnqueue, ctx.cycle());
    }
  }

 private:
  core::SharedRegister<std::uint64_t> congested_{"congested", 1, 1};
};

// ---- port budget --------------------------------------------------------------

TEST(AnalysisPortBudget, CleanProgramHasNoFindings) {
  const Report report = analyze<NoopProgram>("noop");
  EXPECT_TRUE(report.findings.empty());
  EXPECT_TRUE(report.clean());
}

TEST(AnalysisPortBudget, OvercommittedSharedRegisterIsError) {
  const Report report = analyze<OvercommittedProgram>("overcommitted");
  const Finding* f = find_code(report, "port-overcommit");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->subject, "hot_counter");
  EXPECT_FALSE(report.clean());
}

TEST(AnalysisPortBudget, MultiThreadWriteSetGetsAggregationNote) {
  const Report report = analyze<OvercommittedProgram>("overcommitted");
  const Finding* f = find_code(report, "needs-aggregation");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kNote);
  EXPECT_NE(f->message.find("AggregatedRegister"), std::string::npos);
}

TEST(AnalysisPortBudget, MislabeledThreadIdIsWarning) {
  const Report report = analyze<MislabeledThreadProgram>("mislabeled");
  const Finding* f = find_code(report, "thread-attribution");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_EQ(f->subject, "mislabeled");
  // Enough ports were provisioned, so only the attribution is wrong.
  EXPECT_EQ(find_code(report, "port-overcommit"), nullptr);
}

TEST(AnalysisPortBudget, AggregatedArrayOwnershipViolations) {
  const Report report = analyze<AggMisuseProgram>("agg-misuse");
  const Finding* main_misuse = find_code(report, "agg-main-misuse");
  ASSERT_NE(main_misuse, nullptr);
  EXPECT_NE(main_misuse->message.find("on_enqueue"), std::string::npos);
  const Finding* array_misuse = find_code(report, "agg-array-misuse");
  ASSERT_NE(array_misuse, nullptr);
  EXPECT_NE(array_misuse->message.find("on_ingress"), std::string::npos);
  EXPECT_FALSE(report.clean());
}

// ---- dataflow IR --------------------------------------------------------------

TEST(AnalysisDataflowIr, StimulusRepeatsReachWarmupThresholds) {
  const Report report = analyze<ThresholdProgram>("threshold");
  const analysis::RegisterUsage* armed = find_register(report, "armed_flag");
  ASSERT_NE(armed, nullptr);
  EXPECT_GT(armed->totals(Handler::kIngress).writes, 0u);
  // The counter is read (RMW) before the guarded write: a two-register
  // chain, so ingress needs two pipeline stages.
  EXPECT_EQ(report.ir.depth[static_cast<std::size_t>(Handler::kIngress)], 2u);
}

TEST(AnalysisDataflowIr, SingleStimulusMissesTheThreshold) {
  analysis::AnalyzerOptions options;
  options.stimulus_repeats = 1;
  const Report report = analyze<ThresholdProgram>("threshold", options);
  EXPECT_EQ(find_register(report, "armed_flag"), nullptr);
  EXPECT_EQ(report.ir.depth[static_cast<std::size_t>(Handler::kIngress)], 1u);
}

// ---- pipeline mapping ---------------------------------------------------------

TEST(AnalysisPipelineMapping, DeepDependencyChainOverflowsStages) {
  analysis::AnalyzerOptions options;
  options.model = tor_model();
  const Report report = analyze<DeepChainProgram>("deep-chain", options);
  const Finding* f = find_code(report, "stage-overflow");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_NE(f->message.find("13"), std::string::npos);
  EXPECT_EQ(report.ir.depth[static_cast<std::size_t>(Handler::kIngress)],
            DeepChainProgram::kChain);
  EXPECT_FALSE(report.clean());
}

TEST(AnalysisPipelineMapping, DeepChainIsCleanUnconstrained) {
  const Report report = analyze<DeepChainProgram>("deep-chain");
  EXPECT_TRUE(report.findings.empty());
  // The mapping is still computed for reporting: one stage per register.
  EXPECT_EQ(report.mapping.stages_used, DeepChainProgram::kChain);
}

TEST(AnalysisPipelineMapping, EnqueueReadCannotShareSinglePort) {
  analysis::AnalyzerOptions options;
  options.model = tor_model();
  const Report report = analyze<EnqueueReadProgram>("enq-read", options);
  const Finding* f = find_code(report, "port-schedule-conflict");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->subject, "occupancy");
  EXPECT_NE(f->message.find("on_enqueue"), std::string::npos);
  // Two declared ports satisfy the §4 budget — the conflict is a
  // pipeline-mapping fact, not a port-budget one.
  EXPECT_EQ(find_code(report, "port-overcommit"), nullptr);
}

TEST(AnalysisPipelineMapping, EnqueueReadIsCleanOnUnconstrained) {
  const Report report = analyze<EnqueueReadProgram>("enq-read");
  EXPECT_EQ(find_code(report, "port-schedule-conflict"), nullptr);
  EXPECT_TRUE(report.clean());
}

TEST(AnalysisPipelineMapping, WorstCaseRatesStarveAggregationDrain) {
  analysis::AnalyzerOptions options;
  options.model = tor_model();
  const Report report = analyze<AggStarveProgram>("agg-starve", options);
  const Finding* f = find_code(report, "aggregation-starvation");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->subject, "burst_bytes");
  ASSERT_EQ(report.mapping.drains.size(), 1u);
  EXPECT_TRUE(report.mapping.drains[0].starved);
  // Drain demand is the enqueue plus dequeue delta rate — twice the
  // admitted packet rate, far beyond the leftover idle cycles.
  EXPECT_GT(report.mapping.drains[0].demand, report.mapping.idle_rate);
}

TEST(AnalysisPipelineMapping, RealisticPacketSizeUnstarvesTheDrain) {
  analysis::AnalyzerOptions options;
  options.model = tor_model();
  options.rates.avg_packet_bytes = 700;
  const Report report = analyze<AggStarveProgram>("agg-starve", options);
  EXPECT_EQ(find_code(report, "aggregation-starvation"), nullptr);
  ASSERT_EQ(report.mapping.drains.size(), 1u);
  EXPECT_FALSE(report.mapping.drains[0].starved);
  EXPECT_TRUE(report.clean());
}

// ---- driver edge cases --------------------------------------------------------

TEST(AnalysisDriver, BufferEventsReplayWithZeroMetaWords) {
  const Report report = analyze<ZeroMetaConsumerProgram>("zero-meta");
  const analysis::RegisterUsage* seen = find_register(report, "deq_seen");
  ASSERT_NE(seen, nullptr);
  EXPECT_GT(seen->totals(Handler::kDequeue).writes, 0u);
  // No ingress attached meta, so the replayed words are zero and the
  // meta-guarded branch stays cold.
  EXPECT_EQ(find_register(report, "stale_meta"), nullptr);
  EXPECT_TRUE(report.clean());
}

TEST(AnalysisDriver, DeepReplayReachesDepthBranchesWithoutEnqMeta) {
  const Report report = analyze<DeepBufferProgram>("deep-buffer");
  const analysis::RegisterUsage* congested =
      find_register(report, "congested");
  ASSERT_NE(congested, nullptr);
  EXPECT_GT(congested->totals(Handler::kEnqueue).writes, 0u);
  EXPECT_TRUE(report.clean());
}

// ---- probe lifecycle ----------------------------------------------------------

TEST(RegisterProbeRace, InstallUninstallConcurrentWithAccesses) {
  struct CountingProbe : core::RegisterProbe {
    std::atomic<std::uint64_t> seen{0};
    void on_register_access(const core::RegisterAccessEvent&) override {
      seen.fetch_add(1, std::memory_order_relaxed);
    }
  };
  core::SharedRegister<std::uint64_t> reg("race_reg", 4, /*ports=*/2);
  CountingProbe probe;
  std::atomic<bool> done{false};
  std::thread toggler([&] {
    for (int i = 0; i < 2000; ++i) {
      core::exchange_register_probe(&probe);
      core::exchange_register_probe(nullptr);
    }
    done.store(true, std::memory_order_release);
  });
  std::uint64_t out = 0;
  std::uint64_t cycle = 0;
  while (!done.load(std::memory_order_acquire)) {
    reg.read(0, out, core::ThreadId::kIngress, ++cycle);
  }
  toggler.join();
  core::exchange_register_probe(nullptr);
  EXPECT_EQ(core::active_register_probe(), nullptr);
}

// ---- amplification ------------------------------------------------------------

TEST(AnalysisAmplification, UnguardedRecirculationCycleIsError) {
  const Report report = analyze<UnguardedRecircProgram>("recirc-storm");
  const Finding* f = find_code(report, "unguarded-cycle");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_NE(f->subject.find("on_recirculate"), std::string::npos);
  EXPECT_FALSE(report.clean());
}

TEST(AnalysisAmplification, GuardedRecirculationCycleIsNote) {
  const Report report = analyze<GuardedRecircProgram>("recirc-guarded");
  const Finding* f = find_code(report, "guarded-cycle");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kNote);
  EXPECT_EQ(find_code(report, "unguarded-cycle"), nullptr);
  // A dynamically bounded cycle is a fact to review, not a failure.
  EXPECT_TRUE(report.clean());
}

TEST(AnalysisAmplification, UserEventStormIsError) {
  const Report report = analyze<UserStormProgram>("user-storm");
  const Finding* f = find_code(report, "unguarded-cycle");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->subject.find("on_user"), std::string::npos);
  EXPECT_FALSE(report.clean());
}

TEST(AnalysisAmplification, CycleSearchSkipsRateBoundedEdges) {
  analysis::EventGraph g;
  g.edges.push_back({Handler::kUser, Handler::kUser,
                     ActionKind::kRaiseUserEvent, /*rate_bounded=*/false, ""});
  g.edges.push_back({Handler::kTimer, Handler::kTimer, ActionKind::kSetTimer,
                     /*rate_bounded=*/true, ""});
  const auto cycles = g.cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], std::vector<Handler>{Handler::kUser});
}

TEST(AnalysisAmplification, CycleSearchFindsMultiHandlerCycles) {
  analysis::EventGraph g;
  g.edges.push_back({Handler::kIngress, Handler::kRecirculate,
                     ActionKind::kRecirculate, false, ""});
  g.edges.push_back({Handler::kRecirculate, Handler::kUser,
                     ActionKind::kRaiseUserEvent, false, ""});
  g.edges.push_back({Handler::kUser, Handler::kIngress,
                     ActionKind::kInjectPacket, false, ""});
  const auto cycles = g.cycles();
  ASSERT_EQ(cycles.size(), 1u);
  const std::vector<Handler> expected{Handler::kIngress, Handler::kRecirculate,
                                      Handler::kUser};
  EXPECT_EQ(cycles[0], expected);
}

// ---- resource lint ------------------------------------------------------------

TEST(AnalysisResourceLint, UncheckedTimerRefusalIsWarning) {
  const Report report = analyze<UncheckedTimerProgram>("unchecked-timer");
  const Finding* f = find_code(report, "unchecked-facility");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_EQ(f->subject, "on_attach");
  EXPECT_FALSE(report.clean());
}

TEST(AnalysisResourceLint, FacilityPuntSilencesTheWarning) {
  const Report report = analyze<CheckedTimerProgram>("checked-timer");
  EXPECT_EQ(find_code(report, "unchecked-facility"), nullptr);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_TRUE(report.clean());
}

TEST(AnalysisResourceLint, ZeroIdUseIsError) {
  const Report report = analyze<ZeroIdProgram>("zero-id");
  const Finding* f = find_code(report, "zero-id");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->subject, "on_attach");
  // Reported once even though both analysis architectures observe it.
  EXPECT_EQ(count_code(report, "zero-id"), 1);
}

TEST(AnalysisResourceLint, EgressMetaWriteIsDead) {
  const Report report = analyze<DeadMetaWriteProgram>("dead-meta");
  const Finding* f = find_code(report, "dead-meta-write");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_EQ(f->subject, "on_egress");
  EXPECT_EQ(count_code(report, "dead-meta-write"), 1);
}

TEST(AnalysisResourceLint, UnconsumedMetaIsNoted) {
  const Report report = analyze<UnusedMetaProgram>("unused-meta");
  const Finding* f = find_code(report, "unused-meta");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kNote);
  EXPECT_TRUE(report.clean());
}

TEST(AnalysisResourceLint, BufferEventOverrideSuppressesMetaNote) {
  analysis::AnalyzerOptions options;
  options.lint.handles_buffer_events = true;
  const Report report = analyze<UnusedMetaProgram>("unused-meta", options);
  EXPECT_EQ(find_code(report, "unused-meta"), nullptr);
}

// ---- report -------------------------------------------------------------------

TEST(AnalysisReport, CleanAllowsNotesButNotWarnings) {
  Report report;
  report.findings.push_back(Finding{Severity::kNote, analysis::Pass::kPortBudget,
                                    "needs-aggregation", "r", ""});
  EXPECT_TRUE(report.clean());
  report.findings.push_back(Finding{Severity::kWarning,
                                    analysis::Pass::kResourceLint,
                                    "dead-meta-write", "on_egress", ""});
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.has(Severity::kNote));
  EXPECT_TRUE(report.has(Severity::kWarning));
  EXPECT_FALSE(report.has(Severity::kError));
}

TEST(AnalysisReport, RepeatedAnalysisFormatsByteIdentically) {
  // The IR stamps accesses with a process-global sequence counter; two
  // analyses therefore see different raw stamps and must still produce
  // byte-identical reports (seq is for ordering only, never printed).
  analysis::AnalyzerOptions options;
  options.model = tor_model();
  const Report a1 = analyze<AggStarveProgram>("determinism", options);
  const Report a2 = analyze<AggStarveProgram>("determinism", options);
  EXPECT_EQ(a1.format(/*verbose=*/true), a2.format(/*verbose=*/true));
  const Report b1 = analyze<OvercommittedProgram>("determinism", options);
  const Report b2 = analyze<OvercommittedProgram>("determinism", options);
  EXPECT_EQ(b1.format(/*verbose=*/true), b2.format(/*verbose=*/true));
}

// ---- the shipped programs -------------------------------------------------------

TEST(AnalysisRegistry, AllShippedProgramsAnalyzeClean) {
  for (const apps::RegisteredProgram& entry : apps::program_registry()) {
    analysis::AnalyzerOptions options;
    options.lint = entry.lint;
    const Report report =
        analysis::analyze_program(entry.name, entry.factory, options);
    EXPECT_TRUE(report.clean()) << report.format(/*verbose=*/false);
  }
}

TEST(AnalysisRegistry, AllShippedProgramsMapOntoLinerateTor) {
  // With their declared traffic rates, every shipped program must map onto
  // the most constrained built-in target — either as written, or (for
  // programs naively rejected on a port constraint, like microburst-shared's
  // 3-ported SharedRegister) through the optimizer's verified transforms.
  // edp_lint --optimize --target=linerate-tor enforces the same gate in CI.
  bool saw_naive_dirty = false;
  for (const apps::RegisteredProgram& entry : apps::program_registry()) {
    analysis::AnalyzerOptions options;
    options.lint = entry.lint;
    options.model = tor_model();
    options.rates = entry.rates;
    options.widths = entry.widths;
    const Report report =
        analysis::analyze_program(entry.name, entry.factory, options);
    if (report.clean()) {
      continue;
    }
    saw_naive_dirty = true;
    const analysis::OptimizationResult optimized =
        analysis::optimize_program(entry.name, entry.factory, options);
    EXPECT_TRUE(optimized.feasible)
        << entry.name << " fails linerate-tor naively and the optimizer "
        << "cannot resolve it:\n" << optimized.format(/*verbose=*/false);
  }
  // The contract is exercised, not vacuous: microburst-shared is the
  // shipped program that needs the optimizer.
  EXPECT_TRUE(saw_naive_dirty);
}

TEST(AnalysisRegistry, SharedMicroburstNeedsAggregationOnSinglePorted) {
  for (const apps::RegisteredProgram& entry : apps::program_registry()) {
    if (entry.name != "microburst-shared") {
      continue;
    }
    const Report report =
        analysis::analyze_program(entry.name, entry.factory, {});
    const Finding* f = find_code(report, "needs-aggregation");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->severity, Severity::kNote);
    EXPECT_TRUE(report.clean());
    return;
  }
  FAIL() << "microburst-shared missing from the registry";
}

TEST(AnalysisRegistry, AggregatedMicroburstMatrixMatchesThePaper) {
  for (const apps::RegisteredProgram& entry : apps::program_registry()) {
    if (entry.name != "microburst-aggregated") {
      continue;
    }
    const Report report =
        analysis::analyze_program(entry.name, entry.factory, {});
    const analysis::RegisterUsage* agg = nullptr;
    for (const analysis::RegisterUsage& reg : report.matrix.registers) {
      if (reg.aggregated) {
        agg = &reg;
      }
    }
    ASSERT_NE(agg, nullptr);
    const auto counts = [&](Handler h, core::RegisterRealization r) {
      return agg->counts[static_cast<std::size_t>(h)]
                        [static_cast<std::size_t>(r)];
    };
    // Paper §4 Figure 3: packet events read the main array, enqueue and
    // dequeue updates land in their own aggregation arrays.
    EXPECT_GT(counts(Handler::kIngress,
                     core::RegisterRealization::kAggregatedMain).reads, 0u);
    EXPECT_GT(counts(Handler::kEnqueue,
                     core::RegisterRealization::kAggregatedEnq).writes, 0u);
    EXPECT_GT(counts(Handler::kDequeue,
                     core::RegisterRealization::kAggregatedDeq).writes, 0u);
    // And no event thread touches the main array directly.
    EXPECT_EQ(counts(Handler::kEnqueue,
                     core::RegisterRealization::kAggregatedMain).any(), false);
    return;
  }
  FAIL() << "microburst-aggregated missing from the registry";
}

// ---- size-0 register regression -------------------------------------------------

TEST(RegisterSizeValidation, SharedRegisterRejectsZeroCells) {
  EXPECT_THROW((core::SharedRegister<std::uint64_t>("z", 0, 1)),
               std::invalid_argument);
}

TEST(RegisterSizeValidation, AggregatedRegisterRejectsZeroCells) {
  EXPECT_THROW(core::AggregatedRegister("z", 0), std::invalid_argument);
}

TEST(RegisterSizeValidation, PisaRegisterRejectsZeroCells) {
  EXPECT_THROW(pisa::Register<std::uint32_t>("z", 0), std::invalid_argument);
}

}  // namespace
}  // namespace edp
