// Tests for edp::analysis::optimize_program — the IR-driven pipeline
// optimizer (paper §4, Fig. 3).
//
// Covers the three verified transforms (aggregation-insertion, constant
// folding, pipeline merging into a DispatchPlan), the mandatory
// re-verification, the precise unresolvable-constraint diagnostics, and
// the differential-correctness contract: an optimized scenario replay must
// be digest-identical to the naive one for all non-aggregated state, with
// only a bounded-staleness tolerance on app-level detections.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <string_view>

#include "analysis/hardware_model.hpp"
#include "analysis/optimizer.hpp"
#include "apps/registry.hpp"
#include "core/dispatch_plan.hpp"
#include "core/event_program.hpp"
#include "core/shared_register.hpp"
#include "workload/replay.hpp"

namespace edp {
namespace {

using analysis::Finding;
using analysis::OptimizationResult;
using analysis::Severity;
using analysis::TransformRecord;
using core::DispatchMode;
using core::EventKind;

const analysis::HardwareModel* tor_model() {
  return analysis::find_hardware_model("linerate-tor");
}

const apps::RegisteredProgram* find_app(std::string_view name) {
  for (const apps::RegisteredProgram& entry : apps::program_registry()) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

OptimizationResult optimize_app(const apps::RegisteredProgram& entry) {
  analysis::AnalyzerOptions options;
  options.lint = entry.lint;
  options.model = tor_model();
  options.rates = entry.rates;
  options.widths = entry.widths;
  return analysis::optimize_program(entry.name, entry.factory, options);
}

const TransformRecord* find_transform(const OptimizationResult& result,
                                      std::string_view kind,
                                      std::string_view subject) {
  for (const TransformRecord& t : result.transforms) {
    if (t.kind == kind && t.subject == subject) {
      return &t;
    }
  }
  return nullptr;
}

const Finding* find_diagnostic(const OptimizationResult& result,
                               std::string_view code,
                               std::string_view subject) {
  for (const Finding& f : result.diagnostics) {
    if (f.code == code && f.subject == subject) {
      return &f;
    }
  }
  return nullptr;
}

// ---- fixture programs ---------------------------------------------------------

/// A two-ported register the enqueue thread *reads*: no aggregation side
/// array can absorb a value-consuming access, so the optimizer must reject
/// the rewrite and report exactly why.
class EnqueueReadProgram : public core::EventProgram {
 public:
  void on_ingress(pisa::Phv&, core::EventContext& ctx) override {
    occ_.rmw(0, [](std::uint64_t v) { return v + 1; },
             core::ThreadId::kIngress, ctx.cycle());
  }
  void on_enqueue(const tm_::EnqueueRecord&,
                  core::EventContext& ctx) override {
    std::uint64_t v = 0;
    occ_.read(0, v, core::ThreadId::kEnqueue, ctx.cycle());
  }

 private:
  core::SharedRegister<std::uint64_t> occ_{"occupancy", 1, /*ports=*/2};
};

/// A config table the program fills in on_attach and never writes again,
/// but reads from two event-processing threads: naively that over-commits
/// the single port, yet the register is an invariant-key lookup and must
/// constant-fold into match-action entries instead of aggregating.
class AttachOnlyConfigProgram : public core::EventProgram {
 public:
  void on_attach(core::EventContext& ctx) override {
    config_.write(0, 42, core::ThreadId::kOther, ctx.cycle());
  }
  void on_ingress(pisa::Phv&, core::EventContext& ctx) override {
    std::uint64_t v = 0;
    config_.read(0, v, core::ThreadId::kIngress, ctx.cycle());
  }
  void on_enqueue(const tm_::EnqueueRecord&,
                  core::EventContext& ctx) override {
    std::uint64_t v = 0;
    config_.read(0, v, core::ThreadId::kEnqueue, ctx.cycle());
  }

 private:
  core::SharedRegister<std::uint64_t> config_{"thresholds", 4, /*ports=*/1};
};

// ---- aggregation-insertion ----------------------------------------------------

TEST(Optimizer, SharedMicroburstFailsNaivelyAndOptimizesFeasible) {
  const apps::RegisteredProgram* app = find_app("microburst-shared");
  ASSERT_NE(app, nullptr);
  const OptimizationResult result = optimize_app(*app);

  // The acceptance scenario: naive verification rejects the 3-ported
  // SharedRegister on the single-ported target...
  bool naive_unrealizable = false;
  for (const Finding& f : result.naive.findings) {
    naive_unrealizable =
        naive_unrealizable || (f.code == "multiport-unrealizable" &&
                               f.subject == "bufSize_reg" &&
                               f.severity == Severity::kError);
  }
  EXPECT_TRUE(naive_unrealizable) << result.naive.format(false);

  // ...and the optimizer resolves it: aggregation-insertion with a derived
  // merge function, fused enqueue/dequeue handlers, feasible re-verify.
  EXPECT_TRUE(result.transformed);
  EXPECT_TRUE(result.feasible) << result.format(false);
  const TransformRecord* agg =
      find_transform(result, "aggregation-insertion", "bufSize_reg");
  ASSERT_NE(agg, nullptr) << result.format(false);
  EXPECT_NE(agg->detail.find("merge fn: sum"), std::string::npos);
  EXPECT_NE(find_transform(result, "fuse-handler", "on_enqueue"), nullptr);
  EXPECT_NE(find_transform(result, "fuse-handler", "on_dequeue"), nullptr);
  EXPECT_FALSE(result.optimized.has(Severity::kError))
      << result.optimized.format(false);
  EXPECT_EQ(find_diagnostic(result, "unresolvable-constraint", "bufSize_reg"),
            nullptr);
}

TEST(Optimizer, MicroburstStalenessBoundIsStableAndSane) {
  const apps::RegisteredProgram* app = find_app("microburst-shared");
  ASSERT_NE(app, nullptr);
  const OptimizationResult result = optimize_app(*app);

  ASSERT_EQ(result.staleness.size(), 1u) << result.format(false);
  const analysis::StalenessBound& b = result.staleness[0];
  EXPECT_EQ(b.reg, "bufSize_reg");
  EXPECT_TRUE(b.stable);
  EXPECT_GT(b.idle_rate_per_sec, b.demand_per_sec);
  // One drain sweep over both side arrays: 2 x 1024 entries at one idle
  // cycle each.
  const double expected =
      2.0 * 1024.0 / result.optimized.mapping.idle_rate;
  EXPECT_DOUBLE_EQ(b.bound_seconds, expected);
  EXPECT_EQ(b.bound_cycles,
            static_cast<std::uint64_t>(
                std::ceil(expected * tor_model()->clock_hz)));
  EXPECT_NE(find_diagnostic(result, "staleness-bound", "bufSize_reg"),
            nullptr);
}

TEST(Optimizer, DispatchPlanFusesBufferEventsAndSuppressesDefaults) {
  const apps::RegisteredProgram* app = find_app("microburst-shared");
  ASSERT_NE(app, nullptr);
  const OptimizationResult result = optimize_app(*app);

  EXPECT_EQ(result.plan.of(EventKind::kEnqueue), DispatchMode::kFused);
  EXPECT_EQ(result.plan.of(EventKind::kDequeue), DispatchMode::kFused);
  // Handlers the traces prove default never construct their events.
  EXPECT_EQ(result.plan.of(EventKind::kPacketTransmitted),
            DispatchMode::kSuppressed);
  EXPECT_EQ(result.plan.of(EventKind::kBufferOverflow),
            DispatchMode::kSuppressed);
  EXPECT_EQ(result.plan.of(EventKind::kControlPlane),
            DispatchMode::kSuppressed);
  // Timers are driven only when the program arms one; microburst never
  // does, so the handler is not *provably* default and the plan keeps the
  // conservative queued mode (no timer events exist at runtime anyway).
  EXPECT_EQ(result.plan.of(EventKind::kTimer), DispatchMode::kQueued);
  // Packet kinds always flow through the pipeline itself.
  EXPECT_EQ(result.plan.of(EventKind::kIngressPacket),
            DispatchMode::kQueued);
}

TEST(Optimizer, TextReportNamesTransformsAndReverification) {
  const apps::RegisteredProgram* app = find_app("microburst-shared");
  ASSERT_NE(app, nullptr);
  const std::string text = optimize_app(*app).format(false);
  EXPECT_NE(text.find("== edp-optimize: microburst-shared -> linerate-tor"),
            std::string::npos);
  EXPECT_NE(text.find("aggregation-insertion bufSize_reg"),
            std::string::npos);
  EXPECT_NE(text.find("staleness bound bufSize_reg"), std::string::npos);
  EXPECT_NE(text.find("re-verification:"), std::string::npos);
  EXPECT_NE(text.find("feasible"), std::string::npos);
}

// ---- unresolvable constraints -------------------------------------------------

TEST(Optimizer, ValueConsumingEventReadIsPreciselyUnresolvable) {
  analysis::AnalyzerOptions options;
  options.model = tor_model();
  const OptimizationResult result = analysis::optimize_program(
      "enq-read", [] { return std::make_unique<EnqueueReadProgram>(); },
      options);

  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(result.naive.has(Severity::kError));
  const Finding* f =
      find_diagnostic(result, "unresolvable-constraint", "occupancy");
  ASSERT_NE(f, nullptr) << result.format(false);
  EXPECT_EQ(f->severity, Severity::kError);
  // The diagnostic names the blocking access, not just the surviving code.
  EXPECT_NE(f->message.find("aggregation-insertion"), std::string::npos);
  EXPECT_NE(f->message.find("on_enqueue"), std::string::npos);
  EXPECT_EQ(find_transform(result, "aggregation-insertion", "occupancy"),
            nullptr);
  // combined() carries the diagnostic out to the json/sarif serializers.
  bool in_combined = false;
  for (const Finding& c : result.combined().findings) {
    in_combined =
        in_combined || (c.code == "unresolvable-constraint" &&
                        c.subject == "occupancy");
  }
  EXPECT_TRUE(in_combined);
}

// ---- constant folding ---------------------------------------------------------

TEST(Optimizer, AttachOnlyRegisterConstantFoldsClean) {
  analysis::AnalyzerOptions options;
  options.model = tor_model();
  const OptimizationResult result = analysis::optimize_program(
      "attach-config", [] { return std::make_unique<AttachOnlyConfigProgram>(); },
      options);

  // Naively the two event-thread readers over-commit the single port...
  EXPECT_TRUE(result.naive.has(Severity::kError))
      << result.naive.format(false);
  // ...but the register never changes after on_attach, so it folds into
  // match-action constants and the port constraint dissolves — without any
  // aggregation (a read needs the live value, aggregation could never
  // apply).
  EXPECT_NE(find_transform(result, "constant-fold", "thresholds"), nullptr)
      << result.format(false);
  EXPECT_EQ(find_transform(result, "aggregation-insertion", "thresholds"),
            nullptr);
  EXPECT_TRUE(result.feasible) << result.format(false);
  EXPECT_EQ(find_diagnostic(result, "unresolvable-constraint", "thresholds"),
            nullptr);
}

// ---- differential correctness on the scenario engine --------------------------

workload::ScenarioSpec diff_storm(std::uint64_t seed) {
  workload::ScenarioSpec spec;
  spec.name = "optimizer-diff";
  spec.seed = seed;
  spec.edges = 2;
  spec.hosts_per_edge = 2;
  spec.flows = 400;
  spec.incast_degree = 2;
  spec.burst_packets = 8;
  return spec;
}

/// Replay the same storm naively and optimized: every shard-invariant
/// observable the digest covers must match exactly (the transforms change
/// *when* state updates land, never the architectural outcome), and the
/// settled app state must be identical. Only detection counts — reads of
/// possibly-stale aggregated state — get a staleness tolerance.
void expect_differentially_equal(const char* app_name, std::uint64_t seed,
                                 std::size_t shards) {
  const apps::RegisteredProgram* app = find_app(app_name);
  ASSERT_NE(app, nullptr);
  const workload::ScenarioSpec spec = diff_storm(seed);

  workload::ReplayOptions naive_opt;
  naive_opt.shards = shards;
  const workload::ScenarioOutcome naive =
      workload::replay(spec, *app, naive_opt);

  workload::ReplayOptions opt = naive_opt;
  opt.optimize = true;
  const workload::ScenarioOutcome optimized =
      workload::replay(spec, *app, opt);

  EXPECT_TRUE(optimized.optimized);
  EXPECT_FALSE(naive.optimized);
  EXPECT_EQ(optimized.digest, naive.digest)
      << app_name << " seed=" << seed << " shards=" << shards;
  EXPECT_EQ(optimized.app_state_digest, naive.app_state_digest)
      << app_name << " seed=" << seed << " shards=" << shards;
  EXPECT_EQ(optimized.packets_sent, naive.packets_sent);
  EXPECT_EQ(optimized.sink_rx_packets, naive.sink_rx_packets);
  EXPECT_EQ(optimized.dut_tx_packets, naive.dut_tx_packets);
  // Aggregated state is bounded-stale: detections may shift but not
  // wildly. Non-aggregated apps must match exactly (tolerance 0).
  const double tol = optimized.transforms_applied > 0
                         ? std::max<double>(3.0, 0.5 * naive.detections)
                         : 0.0;
  EXPECT_NEAR(static_cast<double>(optimized.detections),
              static_cast<double>(naive.detections), tol)
      << app_name << " seed=" << seed << " shards=" << shards;
}

TEST(OptimizerDifferential, MicroburstSharedSeedByShards) {
  for (std::uint64_t seed : {1, 2, 3}) {
    for (std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
      expect_differentially_equal("microburst-shared", seed, shards);
    }
  }
}

TEST(OptimizerDifferential, CmsMonitorSeedByShards) {
  for (std::uint64_t seed : {1, 2, 3}) {
    for (std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
      expect_differentially_equal("cms-monitor", seed, shards);
    }
  }
}

TEST(OptimizerDifferential, MicroburstReplayReportsStalenessStats) {
  const apps::RegisteredProgram* app = find_app("microburst-shared");
  ASSERT_NE(app, nullptr);
  workload::ReplayOptions opt;
  opt.optimize = true;
  const workload::ScenarioOutcome out =
      workload::replay(diff_storm(1), *app, opt);
  EXPECT_TRUE(out.optimized);
  EXPECT_GT(out.transforms_applied, 0u);
  EXPECT_GT(out.staleness_bound_cycles, 0u);
  // The storm produced buffer events, so deltas flowed through the side
  // arrays and the drain actually ran.
  EXPECT_GT(out.agg_drained, 0u);
}

}  // namespace
}  // namespace edp
