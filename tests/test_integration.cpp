// Integration tests: whole topologies (hosts + links + switches + control
// plane) running end to end through the Network container.
#include <gtest/gtest.h>

#include "apps/fast_reroute.hpp"
#include "apps/hula.hpp"
#include "apps/microburst.hpp"
#include "core/baseline_switch.hpp"
#include "net/flow.hpp"
#include "net/packet_builder.hpp"
#include "topo/control_plane.hpp"
#include "topo/network.hpp"
#include "topo/reliable.hpp"
#include "topo/routing.hpp"
#include "topo/traffic_gen.hpp"

namespace edp {
namespace {

using net::Ipv4Address;
using net::MacAddress;

topo::Host::Config host_cfg(const char* name, Ipv4Address ip) {
  topo::Host::Config c;
  c.name = name;
  c.mac = MacAddress::from_u64(0x020000000000ULL + ip.value() % 256);
  c.ip = ip;
  return c;
}

core::EventSwitchConfig sw_cfg(std::uint16_t ports, double rate = 10e9) {
  core::EventSwitchConfig c;
  c.num_ports = ports;
  c.port_rate_bps = rate;
  return c;
}

// ---- two-switch line topology ----------------------------------------------------

TEST(Integration, TwoSwitchLineDeliversTraffic) {
  sim::Scheduler sched;
  topo::Network net(sched);
  // h0 -- s0 -- s1 -- h1
  const auto s0 = net.add_switch(sw_cfg(2));
  const auto s1 = net.add_switch(sw_cfg(2));
  const auto h0 = net.add_host(host_cfg("h0", Ipv4Address(10, 0, 0, 1)));
  const auto h1 = net.add_host(host_cfg("h1", Ipv4Address(10, 0, 1, 1)));
  net.connect_host(h0, s0, 0);
  net.connect_host(h1, s1, 0);
  net.connect_switches(s0, 1, s1, 1);

  topo::L3Program p0, p1;
  p0.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  p0.add_route(Ipv4Address(10, 0, 0, 0), 24, 0);
  p1.add_route(Ipv4Address(10, 0, 1, 0), 24, 0);
  p1.add_route(Ipv4Address(10, 0, 0, 0), 24, 1);
  net.sw(s0).set_program(&p0);
  net.sw(s1).set_program(&p1);

  topo::CbrGenerator::Config gc;
  gc.flow.src = net.host(h0).ip();
  gc.flow.dst = net.host(h1).ip();
  gc.flow.packet_size = 500;
  gc.rate_bps = 100e6;
  gc.stop = sim::Time::millis(5);
  topo::CbrGenerator gen(sched, net.host(h0), gc);
  gen.start();

  net.run_until(sim::Time::millis(10));
  EXPECT_GT(gen.sent(), 100u);
  EXPECT_EQ(net.host(h1).rx_packets(), gen.sent());
  EXPECT_EQ(net.sw(s0).counters().rx_packets, gen.sent());
  EXPECT_EQ(net.sw(s1).counters().tx_packets, gen.sent());
}

TEST(Integration, BidirectionalTrafficNoCrosstalk) {
  sim::Scheduler sched;
  topo::Network net(sched);
  const auto s0 = net.add_switch(sw_cfg(3));
  const auto h0 = net.add_host(host_cfg("h0", Ipv4Address(10, 0, 0, 1)));
  const auto h1 = net.add_host(host_cfg("h1", Ipv4Address(10, 0, 0, 2)));
  const auto h2 = net.add_host(host_cfg("h2", Ipv4Address(10, 0, 0, 3)));
  net.connect_host(h0, s0, 0);
  net.connect_host(h1, s0, 1);
  net.connect_host(h2, s0, 2);
  topo::L3Program prog;
  prog.add_route(net.host(h0).ip(), 32, 0);
  prog.add_route(net.host(h1).ip(), 32, 1);
  prog.add_route(net.host(h2).ip(), 32, 2);
  net.sw(s0).set_program(&prog);

  // h0 -> h1 and h2 -> h0 concurrently.
  topo::CbrGenerator::Config a;
  a.flow.src = net.host(h0).ip();
  a.flow.dst = net.host(h1).ip();
  a.rate_bps = 1e9;
  a.stop = sim::Time::millis(1);
  topo::CbrGenerator ga(sched, net.host(h0), a);
  topo::CbrGenerator::Config b;
  b.flow.src = net.host(h2).ip();
  b.flow.dst = net.host(h0).ip();
  b.rate_bps = 2e9;
  b.stop = sim::Time::millis(1);
  topo::CbrGenerator gb(sched, net.host(h2), b);
  ga.start();
  gb.start();
  net.run_until(sim::Time::millis(5));
  EXPECT_EQ(net.host(h1).rx_packets(), ga.sent());
  EXPECT_EQ(net.host(h0).rx_packets(), gb.sent());
  EXPECT_EQ(net.host(h2).rx_packets(), 0u);
}

// ---- congestion: bottleneck link drops and events fire --------------------------------

TEST(Integration, BottleneckOverflowRaisesBufferEvents) {
  sim::Scheduler sched;
  topo::Network net(sched);
  core::EventSwitchConfig cfg = sw_cfg(2, 1e8);  // 100 Mb/s egress
  cfg.queue_limits.max_bytes = 20'000;
  cfg.queue_limits.max_packets = 64;
  const auto s0 = net.add_switch(cfg);
  const auto h0 = net.add_host(host_cfg("h0", Ipv4Address(10, 0, 0, 1)));
  const auto h1 = net.add_host(host_cfg("h1", Ipv4Address(10, 0, 1, 1)));
  net.connect_host(h0, s0, 0);
  net.connect_host(h1, s0, 1);

  class OverflowCounter : public topo::L3Program {
   public:
    void on_overflow(const tm_::DropRecord&, core::EventContext&) override {
      ++overflows;
    }
    int overflows = 0;
  } prog;
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  net.sw(s0).set_program(&prog);

  // Offer 1 Gb/s into the 100 Mb/s port: massive overload.
  topo::CbrGenerator::Config gc;
  gc.flow.src = net.host(h0).ip();
  gc.flow.dst = net.host(h1).ip();
  gc.rate_bps = 1e9;
  gc.stop = sim::Time::millis(5);
  topo::CbrGenerator gen(sched, net.host(h0), gc);
  gen.start();
  net.run_until(sim::Time::millis(10));

  EXPECT_GT(prog.overflows, 0);
  EXPECT_GT(net.sw(s0).traffic_manager().drops_total(), 0u);
  EXPECT_LT(net.host(h1).rx_packets(), gen.sent());
  // Received matches what the switch actually transmitted.
  EXPECT_EQ(net.host(h1).rx_packets(), net.sw(s0).counters().tx_packets);
}

// ---- microburst end-to-end over the Network container ----------------------------------

TEST(Integration, MicroburstDetectionOnRealTopology) {
  sim::Scheduler sched;
  topo::Network net(sched);
  core::EventSwitchConfig cfg = sw_cfg(3, 1e9);
  const auto s0 = net.add_switch(cfg);
  const auto sender = net.add_host(host_cfg("tx", Ipv4Address(10, 0, 0, 1)));
  const auto burster = net.add_host(host_cfg("bx", Ipv4Address(10, 0, 0, 2)));
  const auto sink = net.add_host(host_cfg("rx", Ipv4Address(10, 0, 1, 1)));
  net.connect_host(sender, s0, 0);
  net.connect_host(burster, s0, 1);
  net.connect_host(sink, s0, 2);

  apps::MicroburstConfig mc;
  mc.flow_thresh = 10'000;
  apps::MicroburstProgram prog(mc);
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 2);
  net.sw(s0).register_aggregated(*prog.aggregated());
  net.sw(s0).set_program(&prog);

  // Background CBR from `sender` + violent on/off bursts from `burster`.
  topo::CbrGenerator::Config cbr;
  cbr.flow.src = net.host(sender).ip();
  cbr.flow.dst = net.host(sink).ip();
  cbr.rate_bps = 100e6;
  cbr.stop = sim::Time::millis(20);
  topo::CbrGenerator bg(sched, net.host(sender), cbr);
  bg.start();

  topo::BurstGenerator::Config bc;
  bc.flow.src = net.host(burster).ip();
  bc.flow.dst = net.host(sink).ip();
  bc.flow.packet_size = 1500;
  bc.burst_rate_bps = 10e9;
  bc.burst_packets = 40;  // 60 KB burst into a 1G port
  bc.gap = sim::Time::millis(5);
  bc.stop = sim::Time::millis(20);
  topo::BurstGenerator burst(sched, net.host(burster), bc);
  burst.start();

  net.run_until(sim::Time::millis(30));
  ASSERT_GT(prog.detections().size(), 0u);
  const std::uint32_t burst_flow = net::flow_id_src_dst(
      net.host(burster).ip(), net.host(sink).ip());
  const std::uint32_t bg_flow =
      net::flow_id_src_dst(net.host(sender).ip(), net.host(sink).ip());
  int burst_hits = 0;
  for (const auto& d : prog.detections()) {
    EXPECT_NE(d.flow_id, bg_flow);  // background flow never flagged
    burst_hits += d.flow_id == burst_flow;
  }
  EXPECT_GT(burst_hits, 0);
}

// ---- FRR end-to-end with scheduled link failure ------------------------------------------

TEST(Integration, FrrRecoversAroundFailedLink) {
  sim::Scheduler sched;
  topo::Network net(sched);
  // h0 - s0 =(primary s1 / backup s2)= s3 - h1, diamond topology.
  const auto s0 = net.add_switch(sw_cfg(3));
  const auto s1 = net.add_switch(sw_cfg(2));
  const auto s2 = net.add_switch(sw_cfg(2));
  const auto s3 = net.add_switch(sw_cfg(3));
  const auto h0 = net.add_host(host_cfg("h0", Ipv4Address(10, 0, 0, 1)));
  const auto h1 = net.add_host(host_cfg("h1", Ipv4Address(10, 0, 1, 1)));
  net.connect_host(h0, s0, 0);
  net.connect_host(h1, s3, 0);
  const auto primary_link = net.connect_switches(s0, 1, s1, 0);
  net.connect_switches(s1, 1, s3, 1);
  net.connect_switches(s0, 2, s2, 0);
  net.connect_switches(s2, 1, s3, 2);

  apps::FrrProgram p0(3);
  p0.add_route(apps::FrrRoute{Ipv4Address(10, 0, 1, 0), 1, 2});
  topo::L3Program p1, p2, p3;
  p1.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  p2.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  p3.add_route(Ipv4Address(10, 0, 1, 0), 24, 0);
  net.sw(s0).set_program(&p0);
  net.sw(s1).set_program(&p1);
  net.sw(s2).set_program(&p2);
  net.sw(s3).set_program(&p3);

  topo::CbrGenerator::Config gc;
  gc.flow.src = net.host(h0).ip();
  gc.flow.dst = net.host(h1).ip();
  gc.rate_bps = 100e6;
  gc.flow.packet_size = 500;
  gc.stop = sim::Time::millis(20);
  topo::CbrGenerator gen(sched, net.host(h0), gc);
  gen.start();

  net.link(primary_link).fail_at(sim::Time::millis(10));
  net.run_until(sim::Time::millis(30));

  // The data plane flipped to the backup instantly: loss is at most the
  // packets already in flight on / queued for the dead link.
  EXPECT_GT(p0.rerouted(), 0u);
  const std::uint64_t lost = gen.sent() - net.host(h1).rx_packets();
  EXPECT_LE(lost, 3u);
  EXPECT_GT(net.sw(s2).counters().tx_packets, 0u);  // backup path used
}

// ---- determinism ----------------------------------------------------------------------------

std::uint64_t run_seeded_experiment(std::uint64_t seed) {
  sim::Scheduler sched;
  topo::Network net(sched);
  core::EventSwitchConfig cfg = sw_cfg(2, 1e9);
  const auto s0 = net.add_switch(cfg);
  const auto h0 = net.add_host(host_cfg("h0", Ipv4Address(10, 0, 0, 1)));
  const auto h1 = net.add_host(host_cfg("h1", Ipv4Address(10, 0, 1, 1)));
  net.connect_host(h0, s0, 0);
  net.connect_host(h1, s0, 1);
  topo::L3Program prog;
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  net.sw(s0).set_program(&prog);
  topo::PoissonGenerator::Config pc;
  pc.flow.src = net.host(h0).ip();
  pc.flow.dst = net.host(h1).ip();
  pc.mean_rate_bps = 500e6;
  pc.stop = sim::Time::millis(5);
  pc.seed = seed;
  topo::PoissonGenerator gen(sched, net.host(h0), pc);
  gen.start();
  net.run_until(sim::Time::millis(10));
  // Combine several observables into one fingerprint.
  return net.host(h1).rx_packets() * 1'000'003u +
         net.sw(s0).merger().slots_total();
}

TEST(Integration, SameSeedSameTrace) {
  EXPECT_EQ(run_seeded_experiment(7), run_seeded_experiment(7));
  EXPECT_NE(run_seeded_experiment(7), run_seeded_experiment(8));
}

// ---- control plane in the loop -----------------------------------------------------------

TEST(Integration, ControlPlaneRoundTripLatency) {
  sim::Scheduler sched;
  topo::Network net(sched);
  const auto s0 = net.add_switch(sw_cfg(2));
  topo::ControlPlaneAgent cp(sched,
                             {sim::Time::micros(300), sim::Time::micros(50)});

  class PuntOnFirstPacket : public topo::L3Program {
   public:
    void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override {
      topo::L3Program::on_ingress(phv, ctx);
      if (!punted) {
        punted = true;
        core::ControlEventData msg;
        msg.opcode = 1;
        ctx.notify_control_plane(msg);
      }
    }
    bool punted = false;
  } prog;
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  net.sw(s0).set_program(&prog);
  net.sw(s0).connect_tx(1, [](net::Packet) {});

  sim::Time handled_at = sim::Time::zero();
  bool echoed = false;
  cp.attach(net.sw(s0), [&](const core::ControlEventData&) {
    handled_at = sched.now();
    if (!echoed) {
      echoed = true;
      core::ControlEventData reply;
      reply.opcode = 2;
      cp.send_control_event(net.sw(s0), reply);
    }
  });

  sim::Time pkt_at = sim::Time::micros(100);
  sched.at(pkt_at, [&] {
    net.sw(s0).receive(0, net::make_udp_packet(Ipv4Address(10, 0, 0, 1),
                                               Ipv4Address(10, 0, 1, 1), 1,
                                               2, 100));
  });
  net.run_until(sim::Time::millis(5));
  // Punt handled only after channel latency + processing time.
  EXPECT_GE(handled_at - pkt_at, sim::Time::micros(350));
  EXPECT_EQ(cp.messages_from_switch(), 1u);
  EXPECT_EQ(cp.messages_to_switch(), 1u);
}

// ---- baseline vs event architecture side-by-side ---------------------------------------------

// ---- multi-queue QoS: strict priority across queues ---------------------------------

TEST(Integration, StrictPriorityQueuesPreemptBestEffort) {
  sim::Scheduler sched;
  topo::Network net(sched);
  core::EventSwitchConfig cfg = sw_cfg(3, 1e8);  // 100 Mb/s bottleneck
  cfg.queues_per_port = 2;
  cfg.tm_scheduler = tm_::SchedulerKind::kStrictPriority;
  cfg.queue_limits.max_bytes = 1 << 20;
  cfg.queue_limits.max_packets = 4096;
  const auto s0 = net.add_switch(cfg);
  const auto hp = net.add_host(host_cfg("prio", Ipv4Address(10, 0, 0, 1)));
  const auto hb = net.add_host(host_cfg("bulk", Ipv4Address(10, 0, 0, 2)));
  const auto sink = net.add_host(host_cfg("sink", Ipv4Address(10, 0, 1, 1)));
  net.connect_host(hp, s0, 0);
  net.connect_host(hb, s0, 1);
  net.connect_host(sink, s0, 2);

  // DSCP 46 (EF) -> queue 0 (high priority); everything else queue 1.
  class QosProgram : public topo::L3Program {
   public:
    void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override {
      topo::L3Program::on_ingress(phv, ctx);
      if (phv.ipv4) {
        phv.std_meta.qid = phv.ipv4->dscp == 46 ? 0 : 1;
      }
    }
  } prog;
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 2);
  net.sw(s0).set_program(&prog);

  // Bulk floods 4x the bottleneck; priority sends a modest EF stream.
  topo::CbrGenerator::Config bulk;
  bulk.flow.src = net.host(hb).ip();
  bulk.flow.dst = net.host(sink).ip();
  bulk.rate_bps = 4e8;
  bulk.stop = sim::Time::millis(50);
  topo::CbrGenerator bulk_gen(sched, net.host(hb), bulk);
  bulk_gen.start();

  // EF traffic built explicitly to set DSCP.
  std::uint64_t ef_sent = 0;
  sim::PeriodicTask ef(sched, sim::Time::micros(500), [&] {
    if (sched.now() >= sim::Time::millis(50)) {
      return;
    }
    ++ef_sent;
    net.host(hp).send(net::PacketBuilder()
                          .ethernet(MacAddress::from_u64(1),
                                    MacAddress::from_u64(2))
                          .ipv4(net.host(hp).ip(), net.host(sink).ip(),
                                net::kIpProtoUdp, 64, /*dscp=*/46)
                          .udp(5000, 6000)
                          .payload(400)
                          .build());
  });
  ef.start();

  std::uint64_t ef_rx = 0, bulk_rx = 0;
  net.host(sink).on_receive = [&](const net::Packet& p) {
    const auto ip = net::Ipv4Header::decode(p, net::EthernetHeader::kSize);
    (ip.dscp == 46 ? ef_rx : bulk_rx) += 1;
  };

  net.run_until(sim::Time::millis(100));
  // The EF queue never backs up behind bulk: everything sent arrives.
  EXPECT_EQ(ef_rx, ef_sent);
  EXPECT_GT(ef_sent, 90u);
  // Bulk saturates the leftovers and experiences loss.
  EXPECT_LT(bulk_rx, bulk_gen.sent());
  EXPECT_GT(bulk_rx, 0u);
}

// ---- HULA on a full 3-ToR x 2-spine fabric (multicast probe flooding) ---------------

TEST(Integration, HulaThreeTorFabricWithMulticastProbes) {
  sim::Scheduler sched;
  topo::Network net(sched);
  constexpr std::uint32_t kTors = 3;

  std::vector<apps::TorSubnet> subnets;
  for (std::uint32_t t = 0; t < kTors; ++t) {
    subnets.push_back(
        {Ipv4Address(10, 0, static_cast<std::uint8_t>(t), 0), t});
  }

  // ToRs: port 0 host, 1 spine0, 2 spine1. Spines: port t -> ToR t.
  std::vector<std::size_t> tors, spines, hosts;
  for (std::uint32_t t = 0; t < kTors; ++t) {
    tors.push_back(net.add_switch(sw_cfg(3)));
    hosts.push_back(net.add_host(host_cfg(
        "h", Ipv4Address(10, 0, static_cast<std::uint8_t>(t), 5))));
    net.connect_host(hosts[t], tors[t], 0);
  }
  for (int s = 0; s < 2; ++s) {
    spines.push_back(net.add_switch(sw_cfg(kTors)));
  }
  for (std::uint32_t t = 0; t < kTors; ++t) {
    net.connect_switches(tors[t], 1, spines[0], static_cast<std::uint16_t>(t));
    net.connect_switches(tors[t], 2, spines[1], static_cast<std::uint16_t>(t));
  }

  // Spine programs flood probes via multicast groups 100+from_tor.
  std::vector<std::unique_ptr<apps::HulaSpineProgram>> spine_progs;
  for (const auto s : spines) {
    apps::HulaSpineConfig sc;
    sc.num_tors = kTors;
    sc.tor_port = {0, 1, 2};
    sc.subnets = subnets;
    sc.probe_mcast_base = 100;
    spine_progs.push_back(std::make_unique<apps::HulaSpineProgram>(sc));
    net.sw(s).set_program(spine_progs.back().get());
    for (std::uint16_t from = 0; from < kTors; ++from) {
      std::vector<std::uint16_t> members;
      for (std::uint16_t to = 0; to < kTors; ++to) {
        if (to != from) {
          members.push_back(to);
        }
      }
      net.sw(s).set_multicast_group(static_cast<std::uint16_t>(100 + from),
                                    members);
    }
  }

  std::vector<std::unique_ptr<apps::HulaTorProgram>> tor_progs;
  for (std::uint32_t t = 0; t < kTors; ++t) {
    apps::HulaTorConfig tc;
    tc.tor_id = t;
    tc.host_port = 0;
    tc.uplink_ports = {1, 2};
    tc.num_tors = kTors;
    tc.probe_period = sim::Time::micros(100);
    tc.subnets = subnets;
    tor_progs.push_back(std::make_unique<apps::HulaTorProgram>(tc));
    net.sw(tors[t]).set_program(tor_progs.back().get());
  }

  net.run_until(sim::Time::millis(3));
  // Every ToR learned a live path utilization toward every OTHER ToR on
  // both uplinks (probes flooded through both spines).
  for (std::uint32_t me = 0; me < kTors; ++me) {
    for (std::uint32_t other = 0; other < kTors; ++other) {
      if (me == other) {
        continue;
      }
      EXPECT_LT(tor_progs[me]->path_util(other, 0), 0xffffffffU)
          << me << "<-" << other << " via spine0";
      EXPECT_LT(tor_progs[me]->path_util(other, 1), 0xffffffffU)
          << me << "<-" << other << " via spine1";
    }
    EXPECT_GT(tor_progs[me]->probes_received(), 20u);
  }

  // Data flows between every ToR pair are delivered.
  for (std::uint32_t src = 0; src < kTors; ++src) {
    for (std::uint32_t dst = 0; dst < kTors; ++dst) {
      if (src == dst) {
        continue;
      }
      net.host(hosts[src])
          .send(net::make_udp_packet(net.host(hosts[src]).ip(),
                                     net.host(hosts[dst]).ip(), 1, 2, 300));
    }
  }
  net.run_until(sim::Time::millis(5));
  for (std::uint32_t t = 0; t < kTors; ++t) {
    EXPECT_EQ(net.host(hosts[t]).rx_packets(), kTors - 1) << "host " << t;
  }
}

// ---- reliable delivery over a lossy data plane (paper §8 thesis) --------------------

TEST(Integration, ReliableDeliveryOverLosslessPath) {
  sim::Scheduler sched;
  topo::Network net(sched);
  const auto s0 = net.add_switch(sw_cfg(2));
  const auto h0 = net.add_host(host_cfg("tx", Ipv4Address(10, 0, 0, 1)));
  const auto h1 = net.add_host(host_cfg("rx", Ipv4Address(10, 0, 1, 1)));
  net.connect_host(h0, s0, 0);
  net.connect_host(h1, s0, 1);
  topo::L3Program prog;
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  prog.add_route(Ipv4Address(10, 0, 0, 0), 24, 0);
  net.sw(s0).set_program(&prog);

  topo::ReliableConfig rc;
  rc.local = net.host(h0).ip();
  rc.peer = net.host(h1).ip();
  rc.total_segments = 500;
  rc.window = 16;
  topo::ReliableSender sender(sched, net.host(h0), rc);
  topo::ReliableReceiver receiver(net.host(h1), rc);
  net.host(h0).on_receive = [&](const net::Packet& p) { sender.handle(p); };
  net.host(h1).on_receive = [&](const net::Packet& p) { receiver.handle(p); };
  sender.start();
  net.run_until(sim::Time::millis(100));

  EXPECT_TRUE(sender.done());
  EXPECT_EQ(receiver.delivered(), 500u);
  EXPECT_EQ(sender.retransmissions(), 0u);  // clean path: no timeouts
  EXPECT_EQ(receiver.duplicates(), 0u);
}

TEST(Integration, ReliableDeliveryRecoversFromCongestionLoss) {
  sim::Scheduler sched;
  topo::Network net(sched);
  // Bottleneck with a tiny queue: the data plane WILL drop segments.
  core::EventSwitchConfig cfg = sw_cfg(2, 5e7);  // 50 Mb/s
  cfg.queue_limits.max_packets = 4;
  cfg.queue_limits.max_bytes = 5000;
  const auto s0 = net.add_switch(cfg);
  const auto h0 = net.add_host(host_cfg("tx", Ipv4Address(10, 0, 0, 1)));
  const auto h1 = net.add_host(host_cfg("rx", Ipv4Address(10, 0, 1, 1)));
  net.connect_host(h0, s0, 0);
  net.connect_host(h1, s0, 1);
  topo::L3Program prog;
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  prog.add_route(Ipv4Address(10, 0, 0, 0), 24, 0);
  net.sw(s0).set_program(&prog);

  topo::ReliableConfig rc;
  rc.local = net.host(h0).ip();
  rc.peer = net.host(h1).ip();
  rc.total_segments = 300;
  rc.window = 32;  // overruns the 4-packet queue -> losses
  rc.rto = sim::Time::millis(2);
  topo::ReliableSender sender(sched, net.host(h0), rc);
  topo::ReliableReceiver receiver(net.host(h1), rc);
  net.host(h0).on_receive = [&](const net::Packet& p) { sender.handle(p); };
  net.host(h1).on_receive = [&](const net::Packet& p) { receiver.handle(p); };
  sender.start();
  net.run_until(sim::Time::seconds(2));

  // The data plane dropped, the protocol recovered: exact in-order
  // delivery of everything, at the cost of retransmissions.
  EXPECT_GT(net.sw(s0).traffic_manager().drops_total(), 0u);
  EXPECT_TRUE(sender.done());
  EXPECT_EQ(receiver.delivered(), 300u);
  EXPECT_GT(sender.retransmissions(), 0u);
  EXPECT_GT(sender.completed_at(), sim::Time::zero());
}

// ---- failure injection: link flapping under traffic ----------------------------------

TEST(Integration, LinkFlappingDeliversEventsAndRecovers) {
  sim::Scheduler sched;
  topo::Network net(sched);
  const auto s0 = net.add_switch(sw_cfg(2));
  const auto h0 = net.add_host(host_cfg("tx", Ipv4Address(10, 0, 0, 1)));
  const auto h1 = net.add_host(host_cfg("rx", Ipv4Address(10, 0, 1, 1)));
  net.connect_host(h0, s0, 0);
  const auto out_link = net.connect_host(h1, s0, 1);
  class FlapCounter : public topo::L3Program {
   public:
    void on_link_status(const core::LinkStatusEventData& e,
                        core::EventContext&) override {
      ++(e.up ? ups : downs);
    }
    int ups = 0;
    int downs = 0;
  } prog;
  prog.add_route(Ipv4Address(10, 0, 1, 0), 24, 1);
  net.sw(s0).set_program(&prog);

  topo::CbrGenerator::Config gc;
  gc.flow.src = net.host(h0).ip();
  gc.flow.dst = net.host(h1).ip();
  gc.rate_bps = 50e6;
  gc.stop = sim::Time::millis(20);
  topo::CbrGenerator gen(sched, net.host(h0), gc);
  gen.start();

  // Flap the output link five times while traffic runs.
  for (int i = 0; i < 5; ++i) {
    net.link(out_link).fail_at(sim::Time::millis(2 + 3 * i));
    net.link(out_link).recover_at(sim::Time::millis(3 + 3 * i));
  }
  net.run_until(sim::Time::millis(40));

  EXPECT_EQ(prog.downs, 5);
  EXPECT_EQ(prog.ups, 5);
  // The switch held traffic during down periods and drained afterwards:
  // anything the link didn't eat mid-flight arrives eventually.
  EXPECT_GT(net.host(h1).rx_packets(), 0u);
  EXPECT_EQ(net.host(h1).rx_packets() + net.link(out_link).dropped_down() +
                net.sw(s0).traffic_manager().drops_total(),
            gen.sent());
}

// ---- recirculation loop guard ------------------------------------------------------

TEST(Integration, RecirculationLoopGuardDropsRunaways) {
  sim::Scheduler sched;
  core::EventSwitchConfig cfg = sw_cfg(2);
  cfg.max_recirculations = 4;
  core::EventSwitch sw(sched, cfg);
  class Forever : public core::EventProgram {
   public:
    void on_ingress(pisa::Phv& phv, core::EventContext&) override {
      phv.std_meta.recirculate = true;
    }
    void on_recirculate(pisa::Phv& phv, core::EventContext&) override {
      phv.std_meta.recirculate = true;  // never stops
    }
  } prog;
  sw.set_program(&prog);
  sw.receive(0, net::make_udp_packet(Ipv4Address(10, 0, 0, 1),
                                     Ipv4Address(10, 0, 1, 1), 1, 2, 100));
  sched.run(100'000);  // would loop forever without the guard
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sw.counters().recirc_loop_drops, 1u);
  EXPECT_EQ(sw.counters().recirculated, 4u);
}

TEST(Integration, BaselineNeedsCpForGeneration) {
  sim::Scheduler sched;
  // Event switch generates packets itself; baseline must lean on the CP.
  core::EventSwitchConfig cfg = sw_cfg(2);
  core::EventSwitch esw(sched, cfg);
  core::BaselineSwitch bsw(sched, cfg);
  topo::ControlPlaneAgent cp(sched, {sim::Time::micros(500),
                                     sim::Time::micros(50)});
  int e_tx = 0, b_tx = 0;
  esw.connect_tx(1, [&](net::Packet) { ++e_tx; });
  bsw.connect_tx(1, [&](net::Packet) { ++b_tx; });

  class GenForward : public core::EventProgram {
   public:
    void on_generated(pisa::Phv& phv, core::EventContext&) override {
      phv.std_meta.egress_port = 1;
    }
    void on_ingress(pisa::Phv& phv, core::EventContext&) override {
      phv.std_meta.egress_port = 1;
    }
  } eprog, bprog;
  esw.set_program(&eprog);
  bsw.set_program(&bprog);

  core::PacketGenerator::Config g;
  g.packet_template = net::make_udp_packet(
      Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 1, 2, 64);
  g.period = sim::Time::millis(1);
  esw.add_generator(g);

  // The baseline CP injects the "same" periodic packet.
  auto task = cp.every(sim::Time::millis(1), [&] {
    cp.inject_packet(bsw.device(),
                     net::make_udp_packet(Ipv4Address(1, 1, 1, 1),
                                          Ipv4Address(2, 2, 2, 2), 1, 2, 64));
  });

  sched.run_until(sim::Time::millis(10) + sim::Time::micros(600));
  EXPECT_GE(e_tx, 10);
  EXPECT_GE(b_tx, 9);  // works, but...
  // ...the baseline paid one CP message per packet; the event switch zero.
  EXPECT_GE(cp.messages_to_switch(), 9u);
  EXPECT_EQ(esw.counters().refused_ops, 0u);
}

}  // namespace
}  // namespace edp
