// Unit tests for edp::stats — sketches, estimators, windows, trackers.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hpp"
#include "stats/active_flows.hpp"
#include "stats/count_min_sketch.hpp"
#include "stats/ewma.hpp"
#include "stats/histogram.hpp"
#include "stats/rate_estimator.hpp"
#include "stats/sliding_window.hpp"

namespace edp::stats {
namespace {

// ---- Count-Min Sketch --------------------------------------------------------

TEST(CountMinSketch, NeverUnderestimates) {
  CountMinSketch cms(64, 3);
  sim::Random rng(1);
  std::vector<std::uint64_t> truth(200, 0);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t key = rng.uniform(200);
    cms.update(key);
    ++truth[key];
  }
  for (std::uint64_t k = 0; k < 200; ++k) {
    EXPECT_GE(cms.estimate(k), truth[k]) << "key " << k;
  }
}

TEST(CountMinSketch, ExactWhenNoCollisions) {
  CountMinSketch cms(4096, 4);
  cms.update(7, 5);
  cms.update(9, 2);
  EXPECT_EQ(cms.estimate(7), 5u);
  EXPECT_EQ(cms.estimate(9), 2u);
  EXPECT_EQ(cms.estimate(1234567), 0u);
  EXPECT_EQ(cms.total(), 7u);
}

TEST(CountMinSketch, ResetClears) {
  CountMinSketch cms(64, 2);
  cms.update(1, 100);
  cms.reset();
  EXPECT_EQ(cms.estimate(1), 0u);
  EXPECT_EQ(cms.total(), 0u);
}

TEST(CountMinSketch, FromErrorBoundsDimensions) {
  const auto cms = CountMinSketch::from_error_bounds(0.01, 0.01);
  EXPECT_GE(cms.width(), 271u);  // ceil(e/0.01)
  EXPECT_GE(cms.depth(), 5u);    // ceil(ln 100)
}

TEST(CountMinSketch, FootprintReporting) {
  CountMinSketch cms(128, 4);
  EXPECT_EQ(cms.bytes(), 128 * 4 * sizeof(std::uint32_t));
}

// ---- EWMA / decaying rate ------------------------------------------------------

TEST(Ewma, FirstSampleInitializes) {
  Ewma e(0.1);
  EXPECT_FALSE(e.initialized());
  e.observe(100);
  EXPECT_DOUBLE_EQ(e.value(), 100.0);
  e.observe(0);
  EXPECT_DOUBLE_EQ(e.value(), 90.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.2);
  for (int i = 0; i < 200; ++i) {
    e.observe(42);
  }
  EXPECT_NEAR(e.value(), 42.0, 1e-9);
}

TEST(DecayingRate, SteadyStreamConvergesToTrueRate) {
  DecayingRate r(sim::Time::micros(100));
  // 1000 bytes every 10 us = 100 MB/s.
  sim::Time t = sim::Time::zero();
  for (int i = 0; i < 300; ++i) {
    t += sim::Time::micros(10);
    r.observe(1000, t);
  }
  EXPECT_NEAR(r.bytes_per_sec(t), 1e8, 1e7);
}

TEST(DecayingRate, DecaysWhenIdle) {
  DecayingRate r(sim::Time::micros(100));
  sim::Time t = sim::Time::zero();
  for (int i = 0; i < 100; ++i) {
    t += sim::Time::micros(10);
    r.observe(1000, t);
  }
  const double busy = r.bytes_per_sec(t);
  const double later = r.bytes_per_sec(t + sim::Time::micros(300));
  EXPECT_LT(later, busy * 0.1);  // e^-3 ~ 0.05
}

// ---- windowed aggregates ----------------------------------------------------------

TEST(WindowedAggregate, SumOverWindow) {
  WindowedAggregate w(4, sim::Time::micros(10));
  w.observe(10);
  w.advance();
  w.observe(20);
  w.advance();
  w.observe(30);
  EXPECT_EQ(w.window_sum(), 60u);
  EXPECT_EQ(w.window_max(), 30u);
  EXPECT_EQ(w.window_span(), sim::Time::micros(40));
}

TEST(WindowedAggregate, MeanPerBucket) {
  WindowedAggregate w(4, sim::Time::micros(10));
  w.observe(40);
  w.advance();
  w.observe(20);
  // (40 + 20 + 0 + 0) / 4 buckets
  EXPECT_DOUBLE_EQ(w.window_mean_per_bucket(), 15.0);
}

TEST(WindowedAggregate, OldBucketsExpire) {
  WindowedAggregate w(3, sim::Time::micros(10));
  w.observe(100);
  w.advance();
  w.advance();
  EXPECT_EQ(w.window_sum(), 100u);
  w.advance();  // the 100 falls out of the 3-bucket window
  EXPECT_EQ(w.window_sum(), 0u);
}

// ---- flow rate table ----------------------------------------------------------------

TEST(FlowRateTable, MeasuresSteadyRate) {
  // 8 buckets x 250 us window = 2 ms.
  FlowRateTable table(16, 8, sim::Time::micros(250));
  // Flow deposits 2500 bytes per 250 us bucket = 80 Mb/s. Fill all eight
  // buckets (seven shifts) so the whole window carries the steady rate.
  for (int tick = 0; tick < 8; ++tick) {
    table.observe(5, 1250);
    table.observe(5, 1250);
    if (tick < 7) {
      table.tick();
    }
  }
  // 20000 B / 2 ms = 10 MB/s = 80 Mb/s.
  EXPECT_NEAR(table.rate_bps(5), 80e6, 1e3);
}

TEST(FlowRateTable, FlowsAreIndependentSlots) {
  FlowRateTable table(16, 4, sim::Time::micros(100));
  table.observe(1, 4000);
  EXPECT_GT(table.rate_bps(1), 0.0);
  EXPECT_DOUBLE_EQ(table.rate_bps(2), 0.0);
}

TEST(FlowRateTable, StateFootprint) {
  FlowRateTable table(128, 8, sim::Time::micros(100));
  EXPECT_EQ(table.bytes(), 128u * 8u * sizeof(std::uint64_t));
}

// ---- active flows ---------------------------------------------------------------------

TEST(ActiveFlowTracker, CountsDistinctBufferedFlows) {
  ActiveFlowTracker t(64);
  EXPECT_EQ(t.active_flows(), 0u);
  t.on_enqueue(1);
  t.on_enqueue(1);
  t.on_enqueue(2);
  EXPECT_EQ(t.active_flows(), 2u);
  t.on_dequeue(1);
  EXPECT_EQ(t.active_flows(), 2u);  // flow 1 still has one packet
  t.on_dequeue(1);
  EXPECT_EQ(t.active_flows(), 1u);
  t.on_dequeue(2);
  EXPECT_EQ(t.active_flows(), 0u);
}

TEST(ActiveFlowTracker, SpuriousDequeueIsIgnored) {
  ActiveFlowTracker t(8);
  t.on_dequeue(3);
  EXPECT_EQ(t.active_flows(), 0u);
  EXPECT_EQ(t.flow_packets(3), 0u);
}

TEST(ActiveFlowTracker, HashIndexWraps) {
  ActiveFlowTracker t(8);
  t.on_enqueue(1);
  t.on_enqueue(9);  // same slot as 1
  EXPECT_EQ(t.active_flows(), 1u);
  EXPECT_EQ(t.flow_packets(1), 2u);
}

// ---- summary -----------------------------------------------------------------------------

TEST(Summary, BasicStatistics) {
  Summary s;
  for (int i = 1; i <= 100; ++i) {
    s.add(i);
  }
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min(), 1);
  EXPECT_DOUBLE_EQ(s.max(), 100);
  EXPECT_NEAR(s.percentile(50), 50, 1);
  EXPECT_NEAR(s.percentile(99), 99, 1);
}

TEST(Summary, EmptyIsSafe) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0);
}

TEST(Summary, StddevOfConstantIsZero) {
  Summary s;
  s.add(5);
  s.add(5);
  s.add(5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0);
}

}  // namespace
}  // namespace edp::stats
