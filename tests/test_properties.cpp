// Property-based suites: invariants checked over randomized inputs and
// parameter sweeps (TEST_P), seeded for reproducibility.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/aggregated_register.hpp"
#include "core/event_switch.hpp"
#include "core/timer_wheel.hpp"
#include "pisa/meter.hpp"
#include "stats/sliding_window.hpp"
#include "topo/host.hpp"
#include "topo/reliable.hpp"
#include "net/checksum.hpp"
#include "net/packet_builder.hpp"
#include "pisa/deparser.hpp"
#include "pisa/parser.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "stats/count_min_sketch.hpp"
#include "tm/buffer_pool.hpp"
#include "tm/pifo.hpp"
#include "tm/scheduler.hpp"

namespace edp {
namespace {

// ---- P1: aggregated register equivalence -------------------------------------------
//
// For ANY interleaving of packet RMWs, enqueue/dequeue aggregation ops and
// partial drains, once fully drained the main register equals a ground
// truth accumulator; and at every instant true_value() equals the ground
// truth (aggregation never loses or invents updates).

class AggregationEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AggregationEquivalence, AnyInterleavingConverges) {
  sim::Random rng(GetParam());
  constexpr std::size_t kSize = 32;
  core::AggregatedRegister reg("r", kSize);
  std::vector<std::int64_t> truth(kSize, 0);

  std::uint64_t cycle = 0;
  for (int op = 0; op < 5000; ++op) {
    ++cycle;
    const std::size_t idx = rng.uniform(kSize);
    const auto delta =
        static_cast<std::int64_t>(rng.uniform_range(-500, 500));
    switch (rng.uniform(5)) {
      case 0:  // packet RMW on main
        reg.packet_add(idx, delta, cycle);
        truth[idx] += delta;
        break;
      case 1:  // enqueue event
        reg.enqueue_add(idx, delta, cycle);
        truth[idx] += delta;
        break;
      case 2:  // dequeue event
        reg.dequeue_add(idx, delta, cycle);
        truth[idx] += delta;
        break;
      case 3:  // idle cycle: drain a little
        reg.drain(cycle, 1 + rng.uniform(3));
        break;
      case 4: {  // packet read: must never exceed |truth| bound sanity
        (void)reg.packet_read(idx, cycle);
        break;
      }
    }
    // Invariant: the combined view is always exact.
    ASSERT_EQ(reg.true_value(idx), truth[idx]) << "op " << op;
  }
  reg.drain_all(cycle + 1);
  for (std::size_t i = 0; i < kSize; ++i) {
    ASSERT_EQ(reg.main_value(i), truth[i]) << "index " << i;
  }
  EXPECT_EQ(reg.backlog(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregationEquivalence,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// Staleness bound: if every cycle with an event is followed by at least one
// drain-capable idle cycle (drain rate >= event rate), backlog stays O(1)
// and staleness is bounded by a small constant.
TEST(AggregationStaleness, BoundedWhenDrainKeepsUp) {
  core::AggregatedRegister reg("r", 64);
  std::uint64_t cycle = 0;
  for (int i = 0; i < 10'000; ++i) {
    ++cycle;
    reg.enqueue_add(static_cast<std::size_t>(i) % 64, 10, cycle);
    ++cycle;                // idle cycle
    reg.drain(cycle, 1);    // drain bandwidth >= event bandwidth
  }
  EXPECT_LE(reg.backlog_max(), 2u);
  EXPECT_LE(reg.staleness_max(), 4u);
}

TEST(AggregationStaleness, UnboundedWhenNoIdleCycles) {
  core::AggregatedRegister reg("r", 4096);
  std::uint64_t cycle = 0;
  // Events on distinct indices every cycle, never a drain opportunity —
  // the saturated-pipeline case of §4.
  for (int i = 0; i < 2000; ++i) {
    ++cycle;
    reg.enqueue_add(static_cast<std::size_t>(i), 1, cycle);
  }
  EXPECT_EQ(reg.backlog(), 2000u);
  EXPECT_EQ(reg.oldest_age(cycle), 1999u);  // grows without bound
}

// ---- P2: PIFO ordering ----------------------------------------------------------------

class PifoOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PifoOrdering, DequeueSequenceIsSortedStable) {
  sim::Random rng(GetParam());
  tm_::PifoQueue q(tm_::QueueLimits{100'000, 100'000'000});
  struct Pushed {
    std::uint64_t rank;
    std::uint64_t seq;
  };
  std::vector<Pushed> pushed;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    tm_::QueuedPacket qp;
    qp.packet = net::Packet(64);
    qp.rank = rng.uniform(50);  // few ranks -> many ties
    qp.deq_meta[0] = i;         // remember the push order
    pushed.push_back({qp.rank, i});
    q.push(std::move(qp));
  }
  std::uint64_t prev_rank = 0;
  std::map<std::uint64_t, std::uint64_t> last_seq_of_rank;
  while (!q.empty()) {
    const auto qp = q.pop();
    ASSERT_TRUE(qp.has_value());
    ASSERT_GE(qp->rank, prev_rank) << "rank order violated";
    prev_rank = qp->rank;
    // Stability: within one rank, pops follow push order.
    const std::uint64_t seq = qp->deq_meta[0];
    auto it = last_seq_of_rank.find(qp->rank);
    if (it != last_seq_of_rank.end()) {
      ASSERT_GT(seq, it->second) << "FIFO tie-break violated";
    }
    last_seq_of_rank[qp->rank] = seq;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PifoOrdering,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ---- P3: CMS error bound ---------------------------------------------------------------

class CmsErrorBound
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(CmsErrorBound, EstimateWithinEpsilonN) {
  const auto [epsilon, delta] = GetParam();
  auto cms = stats::CountMinSketch::from_error_bounds(epsilon, delta,
                                                      /*seed=*/0xfeed);
  sim::Random rng(1234);
  sim::ZipfSampler zipf(2000, 1.1);
  std::vector<std::uint64_t> truth(2000, 0);
  constexpr std::uint64_t kN = 200'000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    const std::uint64_t key = zipf.sample(rng);
    cms.update(key);
    ++truth[key];
  }
  std::size_t violations = 0;
  for (std::uint64_t k = 0; k < truth.size(); ++k) {
    const std::uint64_t est = cms.estimate(k);
    ASSERT_GE(est, truth[k]);  // one-sided guarantee is absolute
    if (est > truth[k] + static_cast<std::uint64_t>(epsilon *
                                                    static_cast<double>(kN))) {
      ++violations;
    }
  }
  // P(violation) <= delta per key; allow 3x slack on the empirical rate.
  EXPECT_LE(static_cast<double>(violations),
            3.0 * delta * static_cast<double>(truth.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Bounds, CmsErrorBound,
    ::testing::Values(std::make_pair(0.01, 0.05), std::make_pair(0.005, 0.01),
                      std::make_pair(0.02, 0.1)));

// ---- P4: parser/deparser round trip -------------------------------------------------------

class ParserRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserRoundTrip, RandomPacketsSurviveUnchanged) {
  sim::Random rng(GetParam());
  const pisa::Parser parser = pisa::Parser::standard();
  const pisa::Deparser deparser;
  for (int i = 0; i < 200; ++i) {
    // Random protocol pick and random field values.
    const net::Ipv4Address src(static_cast<std::uint32_t>(rng.next_u64()));
    const net::Ipv4Address dst(static_cast<std::uint32_t>(rng.next_u64()));
    const auto sp = static_cast<std::uint16_t>(rng.uniform(65536));
    const auto dp = static_cast<std::uint16_t>(1 + rng.uniform(9000));
    const std::size_t size = 64 + rng.uniform(1400);
    net::Packet pkt;
    switch (rng.uniform(3)) {
      case 0:
        pkt = net::make_udp_packet(src, dst, sp, dp, size);
        break;
      case 1:
        pkt = net::PacketBuilder()
                  .ethernet(net::MacAddress::from_u64(rng.next_u64()),
                            net::MacAddress::from_u64(rng.next_u64()))
                  .ipv4(src, dst, net::kIpProtoTcp)
                  .tcp(sp, dp, static_cast<std::uint32_t>(rng.next_u64()))
                  .payload(size)
                  .build();
        break;
      case 2:
        pkt = net::PacketBuilder()
                  .ethernet(net::MacAddress::from_u64(rng.next_u64()),
                            net::MacAddress::from_u64(rng.next_u64()))
                  .vlan(static_cast<std::uint16_t>(rng.uniform(4096)))
                  .ipv4(src, dst, net::kIpProtoUdp)
                  .udp(sp, dp)
                  .payload(size)
                  .build();
        break;
    }
    const pisa::Phv phv = parser.parse(pkt);
    ASSERT_FALSE(phv.parse_error);
    const net::Packet out = deparser.deparse(phv);
    ASSERT_EQ(out.size(), pkt.size());
    for (std::size_t b = 0; b < out.size(); ++b) {
      ASSERT_EQ(out.u8(b), pkt.u8(b)) << "iteration " << i << " byte " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTrip,
                         ::testing::Values(101u, 202u, 303u));

// ---- P5: checksum detects any single bit flip ------------------------------------------------

TEST(ChecksumProperty, AnySingleBitFlipDetected) {
  net::Packet p(net::Ipv4Header::kSize);
  net::Ipv4Header h;
  h.src = net::Ipv4Address(10, 1, 2, 3);
  h.dst = net::Ipv4Address(172, 16, 254, 7);
  h.protocol = net::kIpProtoTcp;
  h.total_length = 1400;
  h.ttl = 63;
  h.update_checksum();
  h.encode(p, 0);
  ASSERT_EQ(net::internet_checksum(p.bytes()), 0);
  for (std::size_t byte = 0; byte < p.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      net::Packet q = p;
      q.set_u8(byte, static_cast<std::uint8_t>(q.u8(byte) ^ (1u << bit)));
      ASSERT_NE(net::internet_checksum(q.bytes()), 0)
          << "flip at byte " << byte << " bit " << bit << " undetected";
    }
  }
}

// ---- P6: timing wheel fires everything exactly once, in order --------------------------------

class TimingWheelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimingWheelProperty, AllTimersFireOnceInOrder) {
  sim::Random rng(GetParam());
  core::TimingWheel wheel;
  std::map<core::TimerId, std::uint64_t> want;  // id -> fire tick
  for (int i = 0; i < 500; ++i) {
    // Mix of short, medium and long delays across wheel levels.
    std::uint64_t delay = 0;
    switch (rng.uniform(3)) {
      case 0:
        delay = 1 + rng.uniform(250);
        break;
      case 1:
        delay = 256 + rng.uniform(65'000);
        break;
      case 2:
        delay = 65'536 + rng.uniform(2'000'000);
        break;
    }
    const std::uint64_t fire = wheel.now_tick() + delay;
    want.emplace(wheel.add(fire, fire), fire);
  }
  std::vector<core::TimingWheel::Expired> out;
  wheel.advance_to(3'000'000, out);
  ASSERT_EQ(out.size(), want.size());
  std::uint64_t prev = 0;
  for (const auto& e : out) {
    ASSERT_LE(prev, e.fire_tick) << "fire order violated";
    prev = e.fire_tick;
    const auto it = want.find(e.id);
    ASSERT_NE(it, want.end()) << "unknown or duplicate id";
    EXPECT_EQ(it->second, e.fire_tick);
    EXPECT_EQ(e.cookie, e.fire_tick);  // payload preserved
    want.erase(it);
  }
  EXPECT_TRUE(want.empty());
  EXPECT_EQ(wheel.pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimingWheelProperty,
                         ::testing::Values(7u, 77u, 777u));

// ---- P7: DWRR long-run fairness across weight vectors ----------------------------------------

class DwrrFairness
    : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(DwrrFairness, ServedBytesProportionalToWeights) {
  const std::vector<std::uint32_t> weights = GetParam();
  const std::size_t n = weights.size();
  std::vector<std::unique_ptr<tm_::PacketQueue>> qs;
  for (std::size_t i = 0; i < n; ++i) {
    qs.push_back(std::make_unique<tm_::FifoQueue>(
        tm_::QueueLimits{100'000, 1'000'000'000}));
  }
  sim::Random rng(5);
  // Varied packet sizes to stress byte (not packet) fairness.
  std::vector<std::vector<std::size_t>> sizes(n);
  for (std::size_t q = 0; q < n; ++q) {
    for (int i = 0; i < 20'000; ++i) {
      const std::size_t sz = 64 + rng.uniform(1436);
      sizes[q].push_back(sz);
      tm_::QueuedPacket qp;
      qp.packet = net::Packet(sz);
      qs[q]->push(std::move(qp));
    }
  }
  tm_::DwrrScheduler dwrr(n, weights, 1500);
  std::vector<std::uint64_t> bytes(n, 0);
  // Serve well below any single queue's backlog so every queue stays
  // non-empty throughout (an emptied queue would skew the shares).
  for (int round = 0; round < 15'000; ++round) {
    const int q = dwrr.select(qs);
    ASSERT_GE(q, 0);
    const auto qi = static_cast<std::size_t>(q);
    const auto qp = qs[qi]->pop();
    ASSERT_TRUE(qp.has_value());
    dwrr.on_dequeued(q, qp->packet.size());
    bytes[qi] += qp->packet.size();
  }
  // Compare byte shares to weight shares within 5%.
  const double total_bytes = [&] {
    double t = 0;
    for (const auto b : bytes) {
      t += static_cast<double>(b);
    }
    return t;
  }();
  double total_weight = 0;
  for (const auto w : weights) {
    total_weight += w;
  }
  for (std::size_t q = 0; q < n; ++q) {
    const double share = static_cast<double>(bytes[q]) / total_bytes;
    const double want = weights[q] / total_weight;
    EXPECT_NEAR(share, want, 0.05) << "queue " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WeightVectors, DwrrFairness,
    ::testing::Values(std::vector<std::uint32_t>{1, 1},
                      std::vector<std::uint32_t>{3, 1},
                      std::vector<std::uint32_t>{1, 2, 4},
                      std::vector<std::uint32_t>{5, 3, 1, 1}));

// ---- P8: scheduler total order --------------------------------------------------------------

TEST(SchedulerProperty, ExecutionRespectsTimeThenFifoOrder) {
  sim::Random rng(9);
  sim::Scheduler sched;
  struct Obs {
    sim::Time when;
    int id;
  };
  std::vector<Obs> fired;
  std::vector<std::pair<sim::Time, int>> scheduled;
  for (int i = 0; i < 2000; ++i) {
    const sim::Time t = sim::Time::micros(
        static_cast<std::int64_t>(rng.uniform(100)));  // many collisions
    scheduled.push_back({t, i});
    sched.at(t, [&fired, &sched, i] {
      fired.push_back({sched.now(), i});
    });
  }
  sched.run();
  ASSERT_EQ(fired.size(), scheduled.size());
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1].when, fired[i].when);
    if (fired[i - 1].when == fired[i].when) {
      // FIFO among equal times == ascending creation index.
      ASSERT_LT(fired[i - 1].id, fired[i].id);
    }
  }
}

// ---- P10: meter long-run conformance ----------------------------------------------------

class MeterConformance : public ::testing::TestWithParam<double> {};

TEST_P(MeterConformance, GreenBytesBoundedByCirPlusBursts) {
  const double cir = GetParam();  // bytes/sec
  pisa::Meter::Config cfg;
  cfg.cir_bytes_per_sec = cir;
  cfg.cbs_bytes = 4000;
  cfg.ebs_bytes = 4000;
  pisa::Meter meter("m", 1, cfg);
  sim::Random rng(77);
  // Offer ~4x the committed rate in randomly sized/spaced packets.
  sim::Time now = sim::Time::zero();
  std::uint64_t green_bytes = 0;
  std::uint64_t yellow_bytes = 0;
  const sim::Time horizon = sim::Time::seconds(2);
  while (now < horizon) {
    const std::uint64_t bytes = 64 + rng.uniform(1436);
    const auto color = meter.execute(0, bytes, now);
    if (color == pisa::MeterColor::kGreen) {
      green_bytes += bytes;
    } else if (color == pisa::MeterColor::kYellow) {
      yellow_bytes += bytes;
    }
    const double mean_gap_s =
        static_cast<double>(bytes) / (4.0 * cir);  // 4x overload
    now += sim::Time::from_seconds(rng.exponential(mean_gap_s));
  }
  // Long-run green+yellow throughput can never exceed CIR plus the two
  // burst allowances (tokens spill from committed into excess, so the
  // bound covers both buckets together).
  const double budget = cir * horizon.as_seconds() +
                        static_cast<double>(cfg.cbs_bytes + cfg.ebs_bytes);
  EXPECT_LE(static_cast<double>(green_bytes + yellow_bytes), budget);
  // And the meter is not vacuous: most of the budget is actually granted.
  EXPECT_GE(static_cast<double>(green_bytes + yellow_bytes), 0.8 * budget);
}

INSTANTIATE_TEST_SUITE_P(Rates, MeterConformance,
                         ::testing::Values(1.25e5, 1.25e6, 1.25e7));

// ---- P11: windowed aggregate equals a brute-force reference ------------------------------

TEST(WindowedAggregateProperty, MatchesBruteForceReference) {
  sim::Random rng(21);
  constexpr std::size_t kBuckets = 6;
  stats::WindowedAggregate w(kBuckets, sim::Time::micros(10));
  // Reference: per-epoch totals; window sum = last kBuckets epochs.
  std::vector<std::uint64_t> epoch_sums{0};
  std::vector<std::uint64_t> epoch_maxes{0};
  for (int step = 0; step < 5000; ++step) {
    if (rng.chance(0.2)) {
      w.advance();
      epoch_sums.push_back(0);
      epoch_maxes.push_back(0);
    } else {
      const std::uint64_t v = rng.uniform(1000);
      w.observe(v);
      epoch_sums.back() += v;
      epoch_maxes.back() = std::max(epoch_maxes.back(), v);
    }
    std::uint64_t want_sum = 0;
    std::uint64_t want_max = 0;
    const std::size_t n = epoch_sums.size();
    for (std::size_t i = n > kBuckets ? n - kBuckets : 0; i < n; ++i) {
      want_sum += epoch_sums[i];
      want_max = std::max(want_max, epoch_maxes[i]);
    }
    ASSERT_EQ(w.window_sum(), want_sum) << "step " << step;
    ASSERT_EQ(w.window_max(), want_max) << "step " << step;
  }
}

// ---- P12: timer block long-run rate ---------------------------------------------------------

class TimerRate : public ::testing::TestWithParam<int> {};

TEST_P(TimerRate, PeriodicFiresAtExactLongRunRate) {
  const int period_us = GetParam();
  sim::Scheduler sched;
  core::TimerBlock timers(sched, sim::Time::micros(1));
  std::uint64_t fires = 0;
  sim::Time last = sim::Time::zero();
  sim::Time max_gap = sim::Time::zero();
  timers.on_expire = [&](const core::TimerEventData& d) {
    ++fires;
    if (last > sim::Time::zero()) {
      max_gap = std::max(max_gap, d.fired_at - last);
    }
    last = d.fired_at;
  };
  timers.set_periodic(sim::Time::micros(period_us), 1);
  const sim::Time horizon = sim::Time::millis(500);
  sched.run_until(horizon);
  const auto expected = static_cast<std::uint64_t>(
      horizon.ps() / sim::Time::micros(period_us).ps());
  // Exact long-run rate (re-armed from the scheduled time, never drifts).
  EXPECT_GE(fires + 1, expected);
  EXPECT_LE(fires, expected + 1);
  // No fire-to-fire gap ever exceeds period + resolution quantization.
  EXPECT_LE(max_gap, sim::Time::micros(period_us) + sim::Time::micros(1));
}

INSTANTIATE_TEST_SUITE_P(Periods, TimerRate,
                         ::testing::Values(3, 17, 100, 977));

// ---- P13: reliable delivery under random loss -----------------------------------------------

class ReliableLoss : public ::testing::TestWithParam<double> {};

TEST_P(ReliableLoss, ExactInOrderDeliveryAtAnyLossRate) {
  const double loss = GetParam();
  sim::Scheduler sched;
  topo::Host::Config hc;
  hc.name = "tx";
  hc.ip = net::Ipv4Address(10, 0, 0, 1);
  topo::Host tx(sched, hc);
  hc.name = "rx";
  hc.ip = net::Ipv4Address(10, 0, 0, 2);
  topo::Host rx(sched, hc);
  sim::Random drop_rng(static_cast<std::uint64_t>(loss * 1000) + 5);
  // Lossy wire in both directions with 10us delay.
  tx.connect_tx([&](net::Packet p) {
    if (drop_rng.chance(loss)) {
      return;
    }
    sched.after(sim::Time::micros(10),
                [&rx, q = std::move(p)]() mutable { rx.receive(std::move(q)); });
  });
  rx.connect_tx([&](net::Packet p) {
    if (drop_rng.chance(loss)) {
      return;
    }
    sched.after(sim::Time::micros(10),
                [&tx, q = std::move(p)]() mutable { tx.receive(std::move(q)); });
  });

  topo::ReliableConfig rc;
  rc.local = tx.ip();
  rc.peer = rx.ip();
  rc.total_segments = 200;
  rc.window = 8;
  rc.rto = sim::Time::millis(1);
  topo::ReliableSender sender(sched, tx, rc);
  topo::ReliableReceiver receiver(rx, rc);
  tx.on_receive = [&](const net::Packet& p) { sender.handle(p); };
  rx.on_receive = [&](const net::Packet& p) { receiver.handle(p); };
  sender.start();
  sched.run_until(sim::Time::seconds(30));

  EXPECT_TRUE(sender.done()) << "loss " << loss;
  EXPECT_EQ(receiver.delivered(), 200u);
  if (loss > 0) {
    EXPECT_GT(sender.retransmissions(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, ReliableLoss,
                         ::testing::Values(0.0, 0.01, 0.1, 0.3));

// ---- P14: whole-switch packet conservation ----------------------------------------------------
//
// For ANY random traffic pattern, every received packet is accounted for:
// transmitted, dropped (with a recorded reason), or still queued somewhere
// inside the device. No packet is ever silently created or destroyed.

class SwitchConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwitchConservation, EveryPacketAccountedFor) {
  sim::Random rng(GetParam());
  sim::Scheduler sched;
  core::EventSwitchConfig cfg;
  cfg.num_ports = 3;
  cfg.port_rate_bps = 1e8;  // slow ports: queues build and overflow
  cfg.queue_limits.max_packets = 32;
  cfg.queue_limits.max_bytes = 20'000;
  core::EventSwitch sw(sched, cfg);

  // Random per-packet behavior: forward to a random port (sometimes an
  // invalid one), occasionally drop or recirculate.
  class ChaosProgram : public core::EventProgram {
   public:
    explicit ChaosProgram(std::uint64_t seed) : rng_(seed) {}
    void on_ingress(pisa::Phv& phv, core::EventContext&) override {
      route(phv);
    }
    void on_recirculate(pisa::Phv& phv, core::EventContext&) override {
      route(phv);
    }
    void route(pisa::Phv& phv) {
      const auto dice = rng_.uniform(100);
      if (dice < 5) {
        phv.std_meta.drop = true;
      } else if (dice < 10) {
        phv.std_meta.recirculate = true;
      } else if (dice < 14) {
        phv.std_meta.egress_port = 77;  // bad port
      } else {
        phv.std_meta.egress_port =
            static_cast<std::uint16_t>(1 + rng_.uniform(2));
      }
    }
    sim::Random rng_;
  } prog(GetParam() * 13 + 1);
  sw.set_program(&prog);
  std::uint64_t tx_seen = 0;
  sw.connect_tx(1, [&](net::Packet) { ++tx_seen; });
  sw.connect_tx(2, [&](net::Packet) { ++tx_seen; });

  // Random arrival process: bursts and pauses, mixed sizes.
  sim::Time t = sim::Time::zero();
  std::uint64_t offered = 0;
  while (t < sim::Time::millis(5)) {
    const std::size_t size = 64 + rng.uniform(1436);
    sched.at(t, [&sw, size, &rng] {
      const net::Ipv4Address src(
          0x0a000000U + static_cast<std::uint32_t>(rng.uniform(16)));
      sw.receive(0, net::make_udp_packet(src, net::Ipv4Address(10, 1, 0, 1),
                                         1, 2, size));
    });
    ++offered;
    t += sim::Time::nanos(static_cast<std::int64_t>(
        rng.chance(0.2) ? 100'000 + rng.uniform(400'000)
                        : 500 + rng.uniform(20'000)));
  }
  sched.run_until(sim::Time::millis(50));  // let everything settle

  const auto& c = sw.counters();
  std::uint64_t queued = 0;
  for (std::uint16_t p = 0; p < 3; ++p) {
    queued += sw.traffic_manager().queue_packets(p, 0);
  }
  // Conservation: offered = transmitted + every drop category + leftovers.
  // Recirculated packets re-enter and are not double counted on the rx
  // side (receive() counts only port arrivals).
  EXPECT_EQ(c.rx_packets, offered);
  EXPECT_EQ(c.tx_packets, tx_seen);
  EXPECT_EQ(offered,
            c.tx_packets + c.program_drops + c.bad_port_drops +
                c.parse_drops + c.recirc_loop_drops +
                sw.traffic_manager().drops_total() +
                sw.merger().packet_backlog_drops() + queued +
                sw.merger().packet_backlog())
      << "packets leaked or duplicated";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwitchConservation,
                         ::testing::Values(3u, 7u, 31u, 127u, 8191u));

// ---- P9: buffer pool conservation -------------------------------------------------------------

TEST(BufferPoolProperty, AccountingNeverLeaksUnderRandomOps) {
  sim::Random rng(31);
  tm_::BufferPool pool({100'000, 1'000, 1.0}, 8);
  std::vector<std::vector<std::size_t>> held(8);
  std::size_t total = 0;
  for (int op = 0; op < 20'000; ++op) {
    const std::size_t q = rng.uniform(8);
    if (rng.chance(0.55) || held[q].empty()) {
      const std::size_t bytes = 64 + rng.uniform(1436);
      if (pool.can_admit(q, bytes)) {
        pool.on_enqueue(q, bytes);
        held[q].push_back(bytes);
        total += bytes;
      }
    } else {
      const std::size_t bytes = held[q].back();
      held[q].pop_back();
      pool.on_dequeue(q, bytes);
      total -= bytes;
    }
    ASSERT_EQ(pool.used_total(), total);
    ASSERT_LE(pool.used_total(), 100'000u);
  }
}

}  // namespace
}  // namespace edp
