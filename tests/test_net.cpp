// Unit tests for edp::net — addresses, packets, header codecs, checksums,
// flow identification, and the packet builder.
#include <gtest/gtest.h>

#include <utility>

#include "net/address.hpp"
#include "net/checksum.hpp"
#include "net/flow.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"
#include "net/packet_builder.hpp"
#include "net/pcap.hpp"

namespace edp::net {
namespace {

// ---- addresses -------------------------------------------------------------

TEST(MacAddress, RoundTripU64) {
  const auto mac = MacAddress::from_u64(0x0123456789abULL);
  EXPECT_EQ(mac.to_u64(), 0x0123456789abULL);
  EXPECT_EQ(mac.to_string(), "01:23:45:67:89:ab");
}

TEST(MacAddress, ParseAndBroadcast) {
  EXPECT_EQ(MacAddress::parse("de:ad:be:ef:00:01").to_u64(),
            0xdeadbeef0001ULL);
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_FALSE(MacAddress::from_u64(1).is_broadcast());
}

TEST(Ipv4Address, OctetsAndString) {
  const Ipv4Address a(10, 1, 2, 3);
  EXPECT_EQ(a.value(), 0x0a010203U);
  EXPECT_EQ(a.to_string(), "10.1.2.3");
  EXPECT_EQ(Ipv4Address::parse("192.168.0.1").value(), 0xc0a80001U);
}

TEST(Ipv4Address, PrefixMatching) {
  const Ipv4Address net(10, 1, 2, 0);
  EXPECT_TRUE(net.matches_prefix(Ipv4Address(10, 1, 2, 200), 24));
  EXPECT_FALSE(net.matches_prefix(Ipv4Address(10, 1, 3, 1), 24));
  EXPECT_TRUE(net.matches_prefix(Ipv4Address(10, 1, 3, 1), 16));
  EXPECT_TRUE(net.matches_prefix(Ipv4Address(99, 9, 9, 9), 0));
  EXPECT_TRUE(net.matches_prefix(net, 32));
}

// ---- packet bytes -----------------------------------------------------------

TEST(Packet, BigEndianAccessors) {
  Packet p(16);
  p.set_u16(0, 0x1234);
  p.set_u32(2, 0xdeadbeef);
  p.set_u64(6, 0x0102030405060708ULL);
  EXPECT_EQ(p.u8(0), 0x12);
  EXPECT_EQ(p.u8(1), 0x34);
  EXPECT_EQ(p.u16(0), 0x1234);
  EXPECT_EQ(p.u32(2), 0xdeadbeefU);
  EXPECT_EQ(p.u64(6), 0x0102030405060708ULL);
  // Wire layout is truly big-endian.
  EXPECT_EQ(p.u8(2), 0xde);
  EXPECT_EQ(p.u8(5), 0xef);
}

TEST(Packet, AppendPadStrip) {
  Packet p;
  const std::uint8_t data[] = {1, 2, 3};
  p.append(data);
  EXPECT_EQ(p.size(), 3u);
  p.pad_to(8);
  EXPECT_EQ(p.size(), 8u);
  EXPECT_EQ(p.u8(7), 0);
  p.pad_to(4);  // never shrinks
  EXPECT_EQ(p.size(), 8u);
  p.strip_front(2);
  EXPECT_EQ(p.size(), 6u);
  EXPECT_EQ(p.u8(0), 3);
  p.strip_front(100);
  EXPECT_TRUE(p.empty());
}

TEST(Packet, InsertZeros) {
  Packet p(4);
  p.set_u32(0, 0x01020304);
  p.insert_zeros(2, 2);
  EXPECT_EQ(p.size(), 6u);
  EXPECT_EQ(p.u8(0), 1);
  EXPECT_EQ(p.u8(1), 2);
  EXPECT_EQ(p.u8(2), 0);
  EXPECT_EQ(p.u8(3), 0);
  EXPECT_EQ(p.u8(4), 3);
}

// ---- checksum ---------------------------------------------------------------

TEST(Checksum, Rfc1071Example) {
  // Classic example: checksum of {00 01 f2 03 f4 f5 f6 f7} = 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03,
                               0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, VerifiesToZeroWithChecksumEmbedded) {
  Packet p(20);
  Ipv4Header h;
  h.src = Ipv4Address(10, 0, 0, 1);
  h.dst = Ipv4Address(10, 0, 0, 2);
  h.protocol = kIpProtoUdp;
  h.total_length = 60;
  h.update_checksum();
  h.encode(p, 0);
  EXPECT_EQ(internet_checksum(p.bytes()), 0);
  EXPECT_TRUE(h.checksum_ok());
}

TEST(Checksum, OddLengthAndAccumulatorConsistency) {
  const std::uint8_t data[] = {0xab, 0xcd, 0xef};
  const std::uint16_t direct = internet_checksum(data);
  ChecksumAccumulator acc;
  acc.add(std::span<const std::uint8_t>(data, 1));
  acc.add(std::span<const std::uint8_t>(data + 1, 2));
  EXPECT_EQ(acc.finish(), direct);
}

TEST(Checksum, DetectsCorruption) {
  Packet p(20);
  Ipv4Header h;
  h.src = Ipv4Address(1, 2, 3, 4);
  h.dst = Ipv4Address(5, 6, 7, 8);
  h.update_checksum();
  h.encode(p, 0);
  p.set_u8(12, p.u8(12) ^ 0x01);  // flip one bit of src
  EXPECT_NE(internet_checksum(p.bytes()), 0);
}

// ---- header codecs -----------------------------------------------------------

TEST(Headers, EthernetRoundTrip) {
  Packet p(EthernetHeader::kSize);
  EthernetHeader h;
  h.dst = MacAddress::from_u64(0x112233445566);
  h.src = MacAddress::from_u64(0xaabbccddeeff);
  h.ether_type = kEtherTypeIpv4;
  h.encode(p, 0);
  const auto d = EthernetHeader::decode(p, 0);
  EXPECT_EQ(d.dst, h.dst);
  EXPECT_EQ(d.src, h.src);
  EXPECT_EQ(d.ether_type, h.ether_type);
}

TEST(Headers, VlanRoundTrip) {
  Packet p(VlanHeader::kSize);
  VlanHeader h;
  h.pcp = 5;
  h.dei = true;
  h.vid = 0xabc;
  h.ether_type = kEtherTypeIpv4;
  h.encode(p, 0);
  const auto d = VlanHeader::decode(p, 0);
  EXPECT_EQ(d.pcp, 5);
  EXPECT_TRUE(d.dei);
  EXPECT_EQ(d.vid, 0xabc);
  EXPECT_EQ(d.ether_type, kEtherTypeIpv4);
}

TEST(Headers, Ipv4RoundTrip) {
  Packet p(Ipv4Header::kSize);
  Ipv4Header h;
  h.dscp = 46;
  h.ecn = 2;
  h.total_length = 1500;
  h.identification = 0x5555;
  h.ttl = 17;
  h.protocol = kIpProtoTcp;
  h.src = Ipv4Address(172, 16, 0, 9);
  h.dst = Ipv4Address(172, 16, 1, 1);
  h.update_checksum();
  h.encode(p, 0);
  const auto d = Ipv4Header::decode(p, 0);
  EXPECT_EQ(d.dscp, 46);
  EXPECT_EQ(d.ecn, 2);
  EXPECT_EQ(d.total_length, 1500);
  EXPECT_EQ(d.identification, 0x5555);
  EXPECT_EQ(d.ttl, 17);
  EXPECT_EQ(d.protocol, kIpProtoTcp);
  EXPECT_EQ(d.src, h.src);
  EXPECT_EQ(d.dst, h.dst);
  EXPECT_TRUE(d.checksum_ok());
}

TEST(Headers, UdpTcpRoundTrip) {
  Packet p(TcpHeader::kSize);
  TcpHeader t;
  t.src_port = 4242;
  t.dst_port = 80;
  t.seq = 0xdeadbeef;
  t.ack = 0x01020304;
  t.flags = 0x12;  // SYN|ACK
  t.window = 0xffff;
  t.encode(p, 0);
  const auto td = TcpHeader::decode(p, 0);
  EXPECT_EQ(td.src_port, 4242);
  EXPECT_EQ(td.seq, 0xdeadbeefU);
  EXPECT_EQ(td.flags, 0x12);

  Packet q(UdpHeader::kSize);
  UdpHeader u;
  u.src_port = 1111;
  u.dst_port = kPortKvCache;
  u.length = 28;
  u.encode(q, 0);
  const auto ud = UdpHeader::decode(q, 0);
  EXPECT_EQ(ud.dst_port, kPortKvCache);
  EXPECT_EQ(ud.length, 28);
}

TEST(Headers, AppHeadersRoundTrip) {
  Packet p(HulaProbeHeader::kSize);
  HulaProbeHeader hp{7, 850, 123456789012ULL};
  hp.encode(p, 0);
  const auto hd = HulaProbeHeader::decode(p, 0);
  EXPECT_EQ(hd.tor_id, 7u);
  EXPECT_EQ(hd.path_util_permille, 850u);
  EXPECT_EQ(hd.origin_ts_ps, 123456789012ULL);

  Packet q(LivenessHeader::kSize);
  LivenessHeader lh;
  lh.kind = LivenessHeader::kReply;
  lh.seq = 99;
  lh.sender_id = 3;
  lh.ts_ps = 42;
  lh.encode(q, 0);
  const auto ld = LivenessHeader::decode(q, 0);
  EXPECT_EQ(ld.kind, LivenessHeader::kReply);
  EXPECT_EQ(ld.seq, 99);
  EXPECT_EQ(ld.sender_id, 3u);

  Packet r(IntReportHeader::kSize);
  IntReportHeader ih;
  ih.switch_id = 2;
  ih.queue_id = 1;
  ih.flags = IntReportHeader::kFlagAnomaly;
  ih.queue_depth_bytes = 65536;
  ih.active_flows = 12;
  ih.drops = 3;
  ih.ts_ps = 777;
  ih.encode(r, 0);
  const auto id = IntReportHeader::decode(r, 0);
  EXPECT_EQ(id.queue_depth_bytes, 65536u);
  EXPECT_EQ(id.flags, IntReportHeader::kFlagAnomaly);
  EXPECT_EQ(id.drops, 3u);

  Packet s(KvHeader::kSize);
  KvHeader kh;
  kh.op = KvHeader::kSet;
  kh.seq = 5;
  kh.key = 0x1122334455667788ULL;
  kh.value = 0x99aabbccddeeff00ULL;
  kh.encode(s, 0);
  const auto kd = KvHeader::decode(s, 0);
  EXPECT_EQ(kd.op, KvHeader::kSet);
  EXPECT_EQ(kd.key, kh.key);
  EXPECT_EQ(kd.value, kh.value);
}

// ---- flow identification --------------------------------------------------------

TEST(Flow, Crc32KnownVector) {
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xcbf43926U);  // standard CRC-32 check value
}

TEST(Flow, FnvDiffersBySeed) {
  const std::uint8_t data[] = {1, 2, 3};
  EXPECT_NE(fnv1a(data, 1), fnv1a(data, 2));
}

TEST(Flow, SrcDstHashIsDirectional) {
  const Ipv4Address a(10, 0, 0, 1), b(10, 0, 0, 2);
  EXPECT_NE(flow_id_src_dst(a, b), flow_id_src_dst(b, a));
  EXPECT_EQ(flow_id_src_dst(a, b), flow_id_src_dst(a, b));
}

TEST(Flow, ExtractFiveTupleFromUdpPacket) {
  const Packet p = make_udp_packet(Ipv4Address(10, 0, 0, 1),
                                   Ipv4Address(10, 0, 1, 2), 5555, 8888, 200);
  const FiveTuple t = extract_five_tuple(p);
  EXPECT_EQ(t.src, Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(t.dst, Ipv4Address(10, 0, 1, 2));
  EXPECT_EQ(t.src_port, 5555);
  EXPECT_EQ(t.dst_port, 8888);
  EXPECT_EQ(t.protocol, kIpProtoUdp);
}

TEST(Flow, ExtractFiveTupleNonIpIsZero) {
  Packet p(64);
  EthernetHeader eth;
  eth.ether_type = kEtherTypeLiveness;
  eth.encode(p, 0);
  const FiveTuple t = extract_five_tuple(p);
  EXPECT_EQ(t.src.value(), 0u);
  EXPECT_EQ(t.protocol, 0);
}

TEST(Flow, ExtractFiveTupleThroughVlan) {
  Packet p = PacketBuilder()
                 .ethernet(MacAddress::from_u64(1), MacAddress::from_u64(2))
                 .vlan(100)
                 .ipv4(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2),
                       kIpProtoUdp)
                 .udp(10, 20)
                 .build();
  const FiveTuple t = extract_five_tuple(p);
  EXPECT_EQ(t.src, Ipv4Address(1, 1, 1, 1));
  EXPECT_EQ(t.dst_port, 20);
}

// ---- builder ----------------------------------------------------------------

TEST(PacketBuilder, BuildsConsistentUdpPacket) {
  const Packet p = make_udp_packet(Ipv4Address(10, 0, 0, 1),
                                   Ipv4Address(10, 0, 0, 2), 1, 2, 500);
  EXPECT_EQ(p.size(), 500u);
  const auto eth = EthernetHeader::decode(p, 0);
  EXPECT_EQ(eth.ether_type, kEtherTypeIpv4);
  const auto ip = Ipv4Header::decode(p, EthernetHeader::kSize);
  EXPECT_TRUE(ip.checksum_ok());
  EXPECT_EQ(ip.total_length, 500 - EthernetHeader::kSize);
  const auto udp =
      UdpHeader::decode(p, EthernetHeader::kSize + Ipv4Header::kSize);
  EXPECT_EQ(udp.length,
            500 - EthernetHeader::kSize - Ipv4Header::kSize);
}

TEST(PacketBuilder, PadToMinimumFrame) {
  const Packet p = PacketBuilder()
                       .ethernet(MacAddress::from_u64(1),
                                 MacAddress::from_u64(2), kEtherTypeHula)
                       .hula_probe(HulaProbeHeader{})
                       .pad_to(64)
                       .build();
  EXPECT_EQ(p.size(), 64u);
}

TEST(PacketBuilder, ReusableAfterBuild) {
  PacketBuilder b;
  const Packet p1 = b.ethernet(MacAddress::from_u64(1),
                               MacAddress::from_u64(2))
                        .payload(10)
                        .build();
  const Packet p2 = b.ethernet(MacAddress::from_u64(3),
                               MacAddress::from_u64(4))
                        .payload(20)
                        .build();
  EXPECT_EQ(p1.size(), EthernetHeader::kSize + 10);
  EXPECT_EQ(p2.size(), EthernetHeader::kSize + 20);
}

// ---- pcap writer --------------------------------------------------------------

TEST(PcapWriter, WritesValidHeaderAndRecords) {
  const std::string path = ::testing::TempDir() + "/edp_test.pcap";
  {
    PcapWriter pcap(path);
    ASSERT_TRUE(pcap.ok());
    pcap.write(make_udp_packet(Ipv4Address(1, 1, 1, 1),
                               Ipv4Address(2, 2, 2, 2), 1, 2, 100),
               sim::Time::micros(1'500'000));  // t = 1.5 s
    pcap.write(make_udp_packet(Ipv4Address(1, 1, 1, 1),
                               Ipv4Address(2, 2, 2, 2), 1, 2, 200),
               sim::Time::micros(1'500'010));
    EXPECT_EQ(pcap.packets_written(), 2u);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::uint32_t magic = 0;
  ASSERT_EQ(std::fread(&magic, 4, 1, f), 1u);
  EXPECT_EQ(magic, 0xa1b2c3d4u);
  std::fseek(f, 24, SEEK_SET);  // skip the 24-byte global header
  std::uint32_t rec[4];
  ASSERT_EQ(std::fread(rec, 4, 4, f), 4u);
  EXPECT_EQ(rec[0], 1u);         // seconds
  EXPECT_EQ(rec[1], 500'000u);   // microseconds
  EXPECT_EQ(rec[2], 100u);       // captured length
  EXPECT_EQ(rec[3], 100u);       // original length
  // The first record's bytes are the packet itself.
  std::uint8_t first_byte = 0;
  ASSERT_EQ(std::fread(&first_byte, 1, 1, f), 1u);
  EXPECT_EQ(first_byte, 0x02);  // dst MAC first octet from make_udp_packet
  // Second record header sits right after the 100 payload bytes.
  std::fseek(f, 24 + 16 + 100, SEEK_SET);
  ASSERT_EQ(std::fread(rec, 4, 4, f), 4u);
  EXPECT_EQ(rec[2], 200u);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(PcapWriter, UnwritablePathReportsNotOk) {
  PcapWriter pcap("/nonexistent_dir_zz/x.pcap");
  EXPECT_FALSE(pcap.ok());
  // Writing through a failed writer must be a safe no-op.
  pcap.write(net::Packet(64), sim::Time::zero());
  EXPECT_EQ(pcap.packets_written(), 0u);
}

// ---- packet buffer pool -----------------------------------------------------

TEST(PacketBufferPool, RecyclesBuffersAcrossPacketLifetimes) {
  // Warm the pool: these buffers return to the freelist at scope exit.
  { net::Packet warm(1000); }
  const sim::PoolStats before = packet_buffer_pool_stats();
  for (int i = 0; i < 100; ++i) {
    net::Packet p(1000);
    EXPECT_EQ(p.size(), 1000u);
  }
  const sim::PoolStats after = packet_buffer_pool_stats();
  EXPECT_EQ(after.acquired - before.acquired, 100u);
  // Steady state: every sized construction was served from the freelist.
  EXPECT_EQ(after.allocated, before.allocated);
  EXPECT_EQ(after.reused - before.reused, 100u);
  EXPECT_EQ(after.released - before.released, 100u);
}

TEST(PacketBufferPool, RecycledBuffersAreZeroFilled) {
  {
    net::Packet p(64);
    for (std::size_t i = 0; i < 64; ++i) {
      p.set_u8(i, 0xAB);
    }
  }
  // The recycled buffer must come back as if freshly zero-constructed.
  net::Packet q(64);
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_EQ(q.u8(i), 0u) << "recycled byte leaked at offset " << i;
  }
}

TEST(PacketBufferPool, CopyDuplicatesMoveSteals) {
  net::Packet p(100);
  p.set_u8(0, 0x42);
  net::Packet copy = p;
  EXPECT_EQ(copy.u8(0), 0x42);
  copy.set_u8(0, 0x43);
  EXPECT_EQ(p.u8(0), 0x42);  // copies do not share the buffer
  net::Packet stolen = std::move(p);
  EXPECT_EQ(stolen.u8(0), 0x42);
  EXPECT_EQ(stolen.size(), 100u);
}

TEST(PacketBuilder, VlanRewritesEtherTypeChain) {
  const Packet p = PacketBuilder()
                       .ethernet(MacAddress::from_u64(1),
                                 MacAddress::from_u64(2))
                       .vlan(42)
                       .ipv4(Ipv4Address(1, 1, 1, 1),
                             Ipv4Address(2, 2, 2, 2), kIpProtoUdp)
                       .udp(1, 2)
                       .build();
  EXPECT_EQ(EthernetHeader::decode(p, 0).ether_type, kEtherTypeVlan);
  EXPECT_EQ(VlanHeader::decode(p, EthernetHeader::kSize).ether_type,
            kEtherTypeIpv4);
  EXPECT_EQ(VlanHeader::decode(p, EthernetHeader::kSize).vid, 42);
}

}  // namespace
}  // namespace edp::net
