// edp_lint — static feasibility analysis for event programs.
//
// Runs the edp::analysis passes (port budget, event amplification,
// resource lints) over programs from the registry before any simulation.
//
//   edp_lint                 lint every registered program
//   edp_lint hula-tor wfq    lint the named programs only
//   edp_lint -v              also print access matrices and event graphs
//   edp_lint --list          list registered program names
//
// Exit status: 0 when every linted program is clean (notes allowed),
// 1 when any warning or error was found, 2 on usage errors.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/registry.hpp"

int main(int argc, char** argv) {
  bool verbose = false;
  bool list = false;
  std::vector<std::string> selected;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-v" || arg == "--verbose") {
      verbose = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "-h" || arg == "--help") {
      std::printf(
          "usage: edp_lint [-v] [--list] [program...]\n"
          "Statically verifies event programs: register port budgets "
          "(paper par.4),\nevent-amplification cycles, and resource-usage "
          "lints.\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "edp_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      selected.push_back(arg);
    }
  }

  const auto& registry = edp::apps::program_registry();
  if (list) {
    for (const auto& entry : registry) {
      std::printf("%s\n", entry.name.c_str());
    }
    return 0;
  }

  for (const std::string& name : selected) {
    bool known = false;
    for (const auto& entry : registry) {
      known = known || entry.name == name;
    }
    if (!known) {
      std::fprintf(stderr, "edp_lint: unknown program '%s' (--list)\n",
                   name.c_str());
      return 2;
    }
  }

  int linted = 0;
  int dirty = 0;
  for (const auto& entry : registry) {
    if (!selected.empty() &&
        std::find(selected.begin(), selected.end(), entry.name) ==
            selected.end()) {
      continue;
    }
    edp::analysis::AnalyzerOptions options;
    options.lint = entry.lint;
    const edp::analysis::Report report =
        edp::analysis::analyze_program(entry.name, entry.factory, options);
    ++linted;
    if (!report.clean()) {
      ++dirty;
    }
    // Print clean programs only in verbose mode; findings always print.
    if (verbose || !report.findings.empty()) {
      std::fputs(report.format(verbose).c_str(), stdout);
    }
  }
  std::printf("edp_lint: %d program(s) linted, %d with warnings or errors\n",
              linted, dirty);
  return dirty == 0 ? 0 : 1;
}
