// edp_lint — static feasibility analysis for event programs.
//
// Runs the edp::analysis passes (port budget, pipeline mapping, event
// amplification, resource lints) over programs from the registry before
// any simulation.
//
//   edp_lint                        lint every registered program
//   edp_lint hula-tor wfq           lint the named programs only
//   edp_lint -v                     also print matrices, graphs, IR, mapping
//   edp_lint --list                 list registered program names
//   edp_lint --list-targets         list built-in hardware models
//   edp_lint --target linerate-tor  map onto a hardware target (default:
//                                   sim-unconstrained — nothing flagged)
//   edp_lint --format=json|sarif    machine-readable output (SARIF 2.1.0
//                                   feeds GitHub code scanning)
//   edp_lint --optimize             run the IR-driven optimizer: apply the
//                                   verified transforms (aggregation
//                                   insertion, pipeline merging) and
//                                   re-verify against the target
//   edp_lint --fail-on=note         severity threshold for the nonzero
//                                   exit (note|warning|error; default
//                                   warning, the historical contract)
//
// Exit status — identical across every format (text, json, sarif) and
// every target/optimize combination, enforced by
// scripts/check_lint_exit_codes.sh: 0 when every linted program passes the
// --fail-on threshold (default: notes allowed, warnings and errors fail),
// 1 when any program reaches the threshold, 2 on usage errors.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/optimizer.hpp"
#include "analysis/sarif.hpp"
#include "apps/registry.hpp"

int main(int argc, char** argv) {
  bool verbose = false;
  bool list = false;
  bool list_targets = false;
  bool optimize = false;
  std::string format = "text";
  edp::analysis::Severity fail_on = edp::analysis::Severity::kWarning;
  std::string target = "sim-unconstrained";
  std::vector<std::string> selected;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-v" || arg == "--verbose") {
      verbose = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--list-targets") {
      list_targets = true;
    } else if (arg == "--optimize") {
      optimize = true;
    } else if (arg == "--target") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "edp_lint: --target needs a model name\n");
        return 2;
      }
      target = argv[++i];
    } else if (arg.rfind("--target=", 0) == 0) {
      target = arg.substr(9);
    } else if (arg.rfind("--fail-on=", 0) == 0) {
      const std::string level = arg.substr(10);
      if (level == "note") {
        fail_on = edp::analysis::Severity::kNote;
      } else if (level == "warning") {
        fail_on = edp::analysis::Severity::kWarning;
      } else if (level == "error") {
        fail_on = edp::analysis::Severity::kError;
      } else {
        std::fprintf(stderr,
                     "edp_lint: --fail-on must be note|warning|error, got "
                     "'%s'\n",
                     level.c_str());
        return 2;
      }
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "sarif") {
        std::fprintf(stderr, "edp_lint: unknown format '%s'\n",
                     format.c_str());
        return 2;
      }
    } else if (arg == "-h" || arg == "--help") {
      std::printf(
          "usage: edp_lint [-v] [--list] [--list-targets] [--optimize]\n"
          "                [--target <model>] [--format=text|json|sarif]\n"
          "                [--fail-on=note|warning|error] [program...]\n"
          "Statically verifies event programs: register port budgets "
          "(paper par.4),\nhardware pipeline mapping (stage depth, port "
          "schedule, aggregation drain\nbudget), event-amplification "
          "cycles, and resource-usage lints.\nWith --optimize, also applies "
          "the verified transforms (aggregation\ninsertion, pipeline "
          "merging) and re-verifies the rewritten program.\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "edp_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      selected.push_back(arg);
    }
  }

  if (list_targets) {
    for (const auto& model : edp::analysis::builtin_hardware_models()) {
      std::printf("%-18s %s\n", model.name.c_str(),
                  model.description.c_str());
    }
    return 0;
  }

  const edp::analysis::HardwareModel* model =
      edp::analysis::find_hardware_model(target);
  if (model == nullptr) {
    std::fprintf(stderr, "edp_lint: unknown target '%s' (--list-targets)\n",
                 target.c_str());
    return 2;
  }

  const auto& registry = edp::apps::program_registry();
  if (list) {
    for (const auto& entry : registry) {
      std::printf("%s\n", entry.name.c_str());
    }
    return 0;
  }

  for (const std::string& name : selected) {
    bool known = false;
    for (const auto& entry : registry) {
      known = known || entry.name == name;
    }
    if (!known) {
      std::fprintf(stderr, "edp_lint: unknown program '%s' (--list)\n",
                   name.c_str());
      return 2;
    }
  }

  int linted = 0;
  int dirty = 0;
  std::vector<edp::analysis::Report> reports;
  std::vector<std::string> sources;
  for (const auto& entry : registry) {
    if (!selected.empty() &&
        std::find(selected.begin(), selected.end(), entry.name) ==
            selected.end()) {
      continue;
    }
    edp::analysis::AnalyzerOptions options;
    options.lint = entry.lint;
    options.model = model;
    options.rates = entry.rates;
    options.widths = entry.widths;
    edp::analysis::Report report;
    std::string text;
    if (optimize) {
      const edp::analysis::OptimizationResult result =
          edp::analysis::optimize_program(entry.name, entry.factory, options);
      report = result.combined();
      text = result.format(verbose);
    } else {
      report =
          edp::analysis::analyze_program(entry.name, entry.factory, options);
      text = report.format(verbose);
    }
    ++linted;
    if (report.has(fail_on)) {
      ++dirty;
    }
    if (format == "text") {
      // Print clean programs only in verbose mode; findings always print.
      if (verbose || !report.findings.empty()) {
        std::fputs(text.c_str(), stdout);
      }
    } else {
      reports.push_back(std::move(report));
      sources.push_back(entry.source);
    }
  }

  if (format == "text") {
    std::printf(
        "edp_lint: %d program(s) %s against %s, %d at or above the "
        "fail-on threshold\n",
        linted, optimize ? "optimized and re-verified" : "linted",
        target.c_str(), dirty);
  } else {
    std::vector<edp::analysis::ReportSource> rs;
    rs.reserve(reports.size());
    for (std::size_t i = 0; i < reports.size(); ++i) {
      rs.push_back({&reports[i], sources[i]});
    }
    const std::string out = format == "json"
                                ? edp::analysis::reports_to_json(rs, target)
                                : edp::analysis::reports_to_sarif(rs, target);
    std::fputs(out.c_str(), stdout);
  }
  return dirty == 0 ? 0 : 1;
}
