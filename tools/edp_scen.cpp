// edp_scen — trace-driven scenario engine CLI.
//
// Replays deterministic heavy-tailed traffic storms (src/workload/) against
// event programs from the registry:
//
//   edp_scen list                       registered apps + built-in mixes
//   edp_scen run --app hula-tor ...     one scenario against one app
//   edp_scen storm [--flows-per-app N]  the full storm: every registered app
//                                       (>=1M flows total at the default size)
//   edp_scen matrix --app NAME          digest gate: seeds {1..5} x shards
//                                       {1,2,4} must agree per seed
//   edp_scen fuzz [--runs N]            randomized scenario fuzzing with
//                                       shrinking reproducers
//
// Scenario flags (run/storm/matrix; defaults in src/workload/scenario.hpp):
//   --mix web-search|hadoop|fixed   --arrivals poisson|onoff
//   --seed N     --flows N          --load F        --cap BYTES
//   --edges N    --hosts-per-edge N --packet-bytes N --fixed-bytes N
//   --incast N   --incast-flow-bytes N  --bursts N
//   --flap sink|aux|source:IDX:DOWN_US:UP_US   (repeatable)
//   --shards N   --no-rates (ignore the app's registry EventRates)
//   --optimize [--optimize-target MODEL]   build the DUT through the
//       IR optimizer (docs/ANALYSIS.md): verified transforms + dispatch
//       plan, with aggregation staleness observables in the output
//
// Exit status: 0 success / all gates pass, 1 gate failure or fuzzer
// finding, 2 usage errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/hardware_model.hpp"
#include "apps/registry.hpp"
#include "workload/fuzzer.hpp"
#include "workload/replay.hpp"

namespace {

using edp::workload::ArrivalSampler;
using edp::workload::LinkFlap;
using edp::workload::ReplayOptions;
using edp::workload::ScenarioOutcome;
using edp::workload::ScenarioSpec;
using edp::workload::SizeMix;

struct Cli {
  ScenarioSpec spec;
  ReplayOptions options;
  std::string app;
  std::uint64_t flows_per_app = 50'000;  // storm: 20 apps -> 1M flows total
  std::uint64_t fuzz_runs = 20;
  std::uint64_t fuzz_seed = 1;
  std::uint64_t fuzz_flows = 2000;
  std::size_t max_failures = 1;
  bool flows_set = false;
};

bool parse_flap(const std::string& value, LinkFlap& flap) {
  char target[16] = {0};
  unsigned long long idx = 0, down_us = 0, up_us = 0;
  if (std::sscanf(value.c_str(), "%15[a-z]:%llu:%llu:%llu", target, &idx,
                  &down_us, &up_us) != 4) {
    return false;
  }
  if (std::strcmp(target, "sink") == 0) {
    flap.target = LinkFlap::Target::kSink;
  } else if (std::strcmp(target, "aux") == 0) {
    flap.target = LinkFlap::Target::kAux;
  } else if (std::strcmp(target, "source") == 0) {
    flap.target = LinkFlap::Target::kSource;
  } else {
    return false;
  }
  flap.source = idx;
  flap.down_at = edp::sim::Time::micros(static_cast<std::int64_t>(down_us));
  flap.up_at = edp::sim::Time::micros(static_cast<std::int64_t>(up_us));
  return flap.up_at > flap.down_at;
}

/// Parse one `--flag value` pair into `cli`. Returns -1 on error, 0 when the
/// flag is unknown, otherwise the number of argv slots consumed (1 or 2).
int parse_flag(Cli& cli, int argc, char** argv, int i) {
  const std::string arg = argv[i];
  const auto need = [&](const char* what) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "edp_scen: %s needs %s\n", arg.c_str(), what);
      return nullptr;
    }
    return argv[i + 1];
  };
  if (arg == "--app") {
    const char* v = need("a program name");
    if (!v) return -1;
    cli.app = v;
    return 2;
  }
  if (arg == "--mix") {
    const char* v = need("web-search|hadoop|fixed");
    if (!v) return -1;
    if (std::strcmp(v, "web-search") == 0) {
      cli.spec.sizes = SizeMix::kWebSearch;
    } else if (std::strcmp(v, "hadoop") == 0) {
      cli.spec.sizes = SizeMix::kHadoop;
    } else if (std::strcmp(v, "fixed") == 0) {
      cli.spec.sizes = SizeMix::kFixed;
    } else {
      std::fprintf(stderr, "edp_scen: unknown mix '%s'\n", v);
      return -1;
    }
    return 2;
  }
  if (arg == "--arrivals") {
    const char* v = need("poisson|onoff");
    if (!v) return -1;
    if (std::strcmp(v, "poisson") == 0) {
      cli.spec.arrivals = ArrivalSampler::Kind::kPoisson;
    } else if (std::strcmp(v, "onoff") == 0) {
      cli.spec.arrivals = ArrivalSampler::Kind::kOnOff;
    } else {
      std::fprintf(stderr, "edp_scen: unknown arrival process '%s'\n", v);
      return -1;
    }
    return 2;
  }
  if (arg == "--flap") {
    const char* v = need("target:idx:down_us:up_us");
    if (!v) return -1;
    LinkFlap flap;
    if (!parse_flap(v, flap)) {
      std::fprintf(stderr, "edp_scen: bad flap spec '%s'\n", v);
      return -1;
    }
    cli.spec.flaps.push_back(flap);
    return 2;
  }
  struct U64Flag {
    const char* name;
    std::uint64_t* dst;
  };
  std::uint64_t edges = 0, hosts = 0, packet = 0, incast = 0, bursts = 0,
                shards = 0;
  const U64Flag u64_flags[] = {
      {"--seed", &cli.spec.seed},
      {"--flows", &cli.spec.flows},
      {"--cap", &cli.spec.flow_size_cap_bytes},
      {"--fixed-bytes", &cli.spec.fixed_flow_bytes},
      {"--incast-flow-bytes", &cli.spec.incast_flow_bytes},
      {"--flows-per-app", &cli.flows_per_app},
      {"--runs", &cli.fuzz_runs},
      {"--fuzz-seed", &cli.fuzz_seed},
      {"--fuzz-flows", &cli.fuzz_flows},
      {"--edges", &edges},
      {"--hosts-per-edge", &hosts},
      {"--packet-bytes", &packet},
      {"--incast", &incast},
      {"--bursts", &bursts},
      {"--shards", &shards},
  };
  for (const U64Flag& f : u64_flags) {
    if (arg == f.name) {
      const char* v = need("a number");
      if (!v) return -1;
      *f.dst = std::strtoull(v, nullptr, 10);
      if (f.dst == &cli.spec.flows) cli.flows_set = true;
      if (f.dst == &edges) cli.spec.edges = edges;
      if (f.dst == &hosts) cli.spec.hosts_per_edge = hosts;
      if (f.dst == &packet) cli.spec.packet_bytes = packet;
      if (f.dst == &incast) cli.spec.incast_degree = incast;
      if (f.dst == &bursts) cli.spec.burst_packets = bursts;
      if (f.dst == &shards) cli.options.shards = shards;
      return 2;
    }
  }
  struct TimeUsFlag {
    const char* name;
    edp::sim::Time* dst;
  };
  const TimeUsFlag time_flags[] = {
      {"--incast-period-us", &cli.spec.incast_period},
      {"--burst-period-us", &cli.spec.burst_period},
      {"--on-us", &cli.spec.on_mean},
      {"--off-us", &cli.spec.off_mean},
  };
  for (const TimeUsFlag& f : time_flags) {
    if (arg == f.name) {
      const char* v = need("microseconds");
      if (!v) return -1;
      *f.dst = edp::sim::Time::micros(
          static_cast<std::int64_t>(std::strtoll(v, nullptr, 10)));
      return 2;
    }
  }
  if (arg == "--load") {
    const char* v = need("a fraction in (0,1]");
    if (!v) return -1;
    cli.spec.load = std::strtod(v, nullptr);
    if (cli.spec.load <= 0 || cli.spec.load > 1.0) {
      std::fprintf(stderr, "edp_scen: --load must be in (0,1]\n");
      return -1;
    }
    return 2;
  }
  if (arg == "--no-rates") {
    cli.options.use_registry_rates = false;
    return 1;
  }
  if (arg == "--optimize") {
    cli.options.optimize = true;
    return 1;
  }
  if (arg == "--optimize-target") {
    const char* v = need("a hardware model name");
    if (!v) return -1;
    cli.options.optimize_target = v;
    return 2;
  }
  return 0;
}

void print_outcome(const ScenarioOutcome& o) {
  std::printf(
      "  %-18s shards=%zu digest=%016llx flows=%llu/%llu pkts=%llu "
      "sink_rx=%llu drops=%llu punts=%llu uplink_drops=%llu\n"
      "  %-18s events=%llu xshard=%llu sim=%.3fs wall=%.2fs "
      "(%.2fM ev/s, %.0f flows/s) allocs/event=%.6f\n",
      o.app.c_str(), o.shards, static_cast<unsigned long long>(o.digest),
      static_cast<unsigned long long>(o.flows_completed),
      static_cast<unsigned long long>(o.flows_started),
      static_cast<unsigned long long>(o.packets_sent),
      static_cast<unsigned long long>(o.sink_rx_packets),
      static_cast<unsigned long long>(o.dut_program_drops),
      static_cast<unsigned long long>(o.dut_punts),
      static_cast<unsigned long long>(o.edge_uplink_drops), "",
      static_cast<unsigned long long>(o.events),
      static_cast<unsigned long long>(o.cross_shard_messages), o.sim_seconds,
      o.wall_seconds,
      o.wall_seconds > 0 ? static_cast<double>(o.events) / o.wall_seconds / 1e6
                         : 0.0,
      o.wall_seconds > 0
          ? static_cast<double>(o.flows_started) / o.wall_seconds
          : 0.0,
      o.allocations_per_event);
  if (o.optimized) {
    std::printf(
        "  %-18s optimized: transforms=%llu staleness=%llu/%llu cycles "
        "(max/bound) drained=%llu backlog_max=%llu "
        "value_error=%llu/%llu (max/bound)\n",
        "",
        static_cast<unsigned long long>(o.transforms_applied),
        static_cast<unsigned long long>(o.agg_staleness_max_cycles),
        static_cast<unsigned long long>(o.staleness_bound_cycles),
        static_cast<unsigned long long>(o.agg_drained),
        static_cast<unsigned long long>(o.agg_backlog_max),
        static_cast<unsigned long long>(o.agg_value_error_max),
        static_cast<unsigned long long>(o.value_error_bound));
  }
}

int cmd_list() {
  std::printf("registered programs:\n");
  for (const auto& p : edp::apps::program_registry()) {
    std::printf("  %-22s avg_packet_bytes=%zu\n", p.name.c_str(),
                p.rates.avg_packet_bytes);
  }
  std::printf("\nflow-size mixes: web-search hadoop fixed\n");
  std::printf("arrival processes: poisson onoff\n");
  return 0;
}

int cmd_run(const Cli& cli) {
  if (cli.app.empty()) {
    std::fprintf(stderr, "edp_scen run: --app is required\n");
    return 2;
  }
  const auto* program = edp::workload::find_program(cli.app);
  if (!program) {
    std::fprintf(stderr, "edp_scen: unknown program '%s'\n", cli.app.c_str());
    return 2;
  }
  const ScenarioOutcome o =
      edp::workload::replay(cli.spec, *program, cli.options);
  print_outcome(o);
  return 0;
}

int cmd_storm(const Cli& cli) {
  ScenarioSpec spec = cli.spec;
  spec.name = "storm";
  if (!cli.flows_set) {
    spec.flows = cli.flows_per_app;
  }
  const auto& registry = edp::apps::program_registry();
  std::uint64_t total_flows = 0, total_events = 0;
  double total_wall = 0;
  double worst_allocs = 0;
  std::printf("storm: %zu apps x %llu flows (%s mix, %s arrivals, seed "
              "%llu, %zu shards)\n",
              registry.size(),
              static_cast<unsigned long long>(spec.flows),
              std::string(to_string(spec.sizes)).c_str(),
              spec.arrivals == ArrivalSampler::Kind::kPoisson ? "poisson"
                                                              : "onoff",
              static_cast<unsigned long long>(spec.seed), cli.options.shards);
  for (const auto& program : registry) {
    const ScenarioOutcome o =
        edp::workload::replay(spec, program, cli.options);
    print_outcome(o);
    total_flows += o.flows_started;
    total_events += o.events;
    total_wall += o.wall_seconds;
    worst_allocs = std::max(worst_allocs, o.allocations_per_event);
  }
  std::printf(
      "storm totals: %llu flows, %llu events, %.1fs wall "
      "(%.2fM ev/s), worst allocs/event=%.6f\n",
      static_cast<unsigned long long>(total_flows),
      static_cast<unsigned long long>(total_events), total_wall,
      total_wall > 0 ? static_cast<double>(total_events) / total_wall / 1e6
                     : 0.0,
      worst_allocs);
  if (worst_allocs > 0) {
    std::fprintf(stderr,
                 "edp_scen storm: FAIL — replay loop allocated "
                 "(%.6f allocs/event after warmup)\n",
                 worst_allocs);
    return 1;
  }
  return 0;
}

int cmd_matrix(const Cli& cli) {
  if (cli.app.empty()) {
    std::fprintf(stderr, "edp_scen matrix: --app is required\n");
    return 2;
  }
  const auto* program = edp::workload::find_program(cli.app);
  if (!program) {
    std::fprintf(stderr, "edp_scen: unknown program '%s'\n", cli.app.c_str());
    return 2;
  }
  int failures = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ScenarioSpec spec = cli.spec;
    spec.seed = seed;
    std::uint64_t reference = 0;
    for (std::size_t shards : {std::size_t{1}, std::size_t{2},
                               std::size_t{4}}) {
      ReplayOptions options = cli.options;
      options.shards = shards;
      const ScenarioOutcome o =
          edp::workload::replay(spec, *program, options);
      if (shards == 1) {
        reference = o.digest;
        std::printf("seed %llu: digest %016llx (1 shard, %llu flows)",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(o.digest),
                    static_cast<unsigned long long>(o.flows_started));
      } else if (o.digest == reference) {
        std::printf(" == %zu shards", shards);
      } else {
        std::printf(" != %zu shards (%016llx)", shards,
                    static_cast<unsigned long long>(o.digest));
        ++failures;
      }
    }
    std::printf("\n");
  }
  if (failures > 0) {
    std::fprintf(stderr, "edp_scen matrix: FAIL — %d digest mismatches\n",
                 failures);
    return 1;
  }
  std::printf("matrix: all seeds bit-identical across shard counts\n");
  return 0;
}

int cmd_fuzz(const Cli& cli) {
  edp::workload::FuzzConfig config;
  config.seed = cli.fuzz_seed;
  config.runs = cli.fuzz_runs;
  config.flows = cli.fuzz_flows;
  if (!cli.app.empty()) {
    config.apps = {cli.app};
  }
  edp::workload::ScenarioFuzzer fuzzer(config);
  const auto report = fuzzer.run(cli.max_failures);
  std::printf("fuzz: %zu runs, %zu failures\n", report.runs,
              report.failures);
  for (const auto& f : report.shrunk) {
    std::printf("  [%s] %s\n  shrunk in %zu steps to:\n    %s\n",
                f.app.c_str(), f.what.c_str(), f.shrink_steps,
                f.repro.c_str());
  }
  return report.failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "-h") == 0 ||
      std::strcmp(argv[1], "--help") == 0) {
    std::printf(
        "usage: edp_scen <list|run|storm|matrix|fuzz> [flags]\n"
        "Deterministic heavy-tailed traffic storms for event programs.\n"
        "See the header of tools/edp_scen.cpp for the full flag list.\n");
    return argc < 2 ? 2 : 0;
  }
  const std::string command = argv[1];
  Cli cli;
  for (int i = 2; i < argc;) {
    const int consumed = parse_flag(cli, argc, argv, i);
    if (consumed < 0) {
      return 2;
    }
    if (consumed == 0) {
      std::fprintf(stderr, "edp_scen: unknown flag '%s'\n", argv[i]);
      return 2;
    }
    i += consumed;
  }
  if (cli.options.optimize &&
      edp::analysis::find_hardware_model(cli.options.optimize_target) ==
          nullptr) {
    std::fprintf(stderr, "edp_scen: unknown --optimize-target '%s'\n",
                 cli.options.optimize_target.c_str());
    return 2;
  }
  if (command == "list") return cmd_list();
  if (command == "run") return cmd_run(cli);
  if (command == "storm") return cmd_storm(cli);
  if (command == "matrix") return cmd_matrix(cli);
  if (command == "fuzz") return cmd_fuzz(cli);
  std::fprintf(stderr, "edp_scen: unknown command '%s'\n", command.c_str());
  return 2;
}
