// Scenario-replay throughput harness (docs/WORKLOAD.md).
//
// Replays one representative traffic storm — the web-search mix at 40%
// offered load with an incast lane and microburst trains — through the
// scenario engine at 1, 2 and 4 workers, and reports flows/sec, events/sec
// and allocations/event per worker count. The outcome digest must be
// bit-identical across worker counts (the engine's determinism contract);
// the harness exits nonzero on a mismatch or on a steady-state allocation,
// while throughput is reported but not gated (it depends on the machine).
//
// Results are written as JSON (default ./BENCH_scenario.json, or argv[1])
// to continue the scenario-replay perf trajectory across PRs. argv[2]
// overrides the flow count (default 20000; CI uses 100000). argv[3], when
// present, is a minimum 1-worker events/sec floor: the perf-gate CI job
// passes the previous trajectory point (with slack) so a replay-throughput
// regression fails the gate instead of drifting silently.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "workload/fuzzer.hpp"
#include "workload/replay.hpp"

namespace {

using namespace edp;

workload::ScenarioSpec make_spec(std::uint64_t flows) {
  workload::ScenarioSpec spec;
  spec.name = "bench-storm";
  spec.seed = 42;
  spec.edges = 4;
  spec.hosts_per_edge = 2;
  spec.flows = flows;
  spec.sizes = workload::SizeMix::kWebSearch;
  spec.load = 0.4;
  spec.incast_degree = 4;
  spec.burst_packets = 16;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_scenario.json";
  const std::uint64_t flows =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20'000;
  const double min_events_per_sec = argc > 3 ? std::strtod(argv[3], nullptr) : 0;
  const apps::RegisteredProgram* app = workload::find_program("ecn-marking");
  if (app == nullptr) {
    std::fprintf(stderr, "ecn-marking not in the registry\n");
    return 2;
  }
  const workload::ScenarioSpec spec = make_spec(flows);
  std::printf("bench_scenario: app=%s %llu flows, web-search mix, "
              "incast+burst lanes\n\n",
              app->name.c_str(), static_cast<unsigned long long>(flows));

  std::vector<workload::ScenarioOutcome> results;
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    workload::ReplayOptions opt;
    opt.shards = workers;
    results.push_back(workload::replay(spec, *app, opt));
  }

  const workload::ScenarioOutcome& base = results.front();
  bool deterministic = true;
  bool allocation_free = true;
  edp::bench::TextTable table({"workers", "wall s", "flows/sec", "events/sec",
                               "cross-shard", "allocs/event", "digest match"});
  for (const workload::ScenarioOutcome& r : results) {
    const bool match = r.digest == base.digest;
    deterministic = deterministic && match;
    allocation_free = allocation_free && r.allocations_per_event == 0.0;
    table.add_row({std::to_string(r.shards),
                   edp::bench::fmt("%.2f", r.wall_seconds),
                   edp::bench::fmt("%.3g", static_cast<double>(r.flows_started) /
                                               r.wall_seconds),
                   edp::bench::fmt("%.3g", static_cast<double>(r.events) /
                                               r.wall_seconds),
                   std::to_string(r.cross_shard_messages),
                   edp::bench::fmt("%.6f", r.allocations_per_event),
                   match ? "yes" : "NO"});
  }
  table.print();

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"scenario\",\n"
       << "  \"app\": \"" << app->name << "\",\n"
       << "  \"mix\": \"web-search\",\n"
       << "  \"flows\": " << flows << ",\n"
       << "  \"hw_threads\": "
       << std::max(1u, std::thread::hardware_concurrency()) << ",\n"
       << "  \"min_events_per_sec_gate\": "
       << edp::bench::fmt("%.0f", min_events_per_sec) << ",\n"
       << "  \"deterministic\": " << (deterministic ? "true" : "false")
       << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const workload::ScenarioOutcome& r = results[i];
    json << "    {\"workers\": " << r.shards << ", \"wall_s\": "
         << edp::bench::fmt("%.4f", r.wall_seconds)
         << ", \"flows_per_sec\": "
         << edp::bench::fmt(
                "%.0f", static_cast<double>(r.flows_started) / r.wall_seconds)
         << ", \"events\": " << r.events << ", \"events_per_sec\": "
         << edp::bench::fmt("%.0f",
                            static_cast<double>(r.events) / r.wall_seconds)
         << ", \"cross_shard_messages\": " << r.cross_shard_messages
         << ", \"allocations_per_event\": "
         << edp::bench::fmt("%g", r.allocations_per_event) << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote %s\n", json_path.c_str());

  if (!deterministic) {
    std::fprintf(stderr, "FAIL: digests diverged across worker counts\n");
    return 1;
  }
  if (!allocation_free) {
    std::fprintf(stderr, "FAIL: replay loop allocated at steady state\n");
    return 1;
  }
  const double base_events_per_sec =
      static_cast<double>(base.events) / base.wall_seconds;
  if (min_events_per_sec > 0 && base_events_per_sec < min_events_per_sec) {
    std::fprintf(stderr,
                 "FAIL: 1-worker replay at %.0f events/sec, gate is %.0f\n",
                 base_events_per_sec, min_events_per_sec);
    return 1;
  }
  if (min_events_per_sec > 0) {
    std::printf("OK: 1-worker replay %.3g events/sec (gate %.3g)\n",
                base_events_per_sec, min_events_per_sec);
  }
  return 0;
}
