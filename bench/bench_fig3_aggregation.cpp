// F3 — reproduces the paper's Figure 3 mechanism (§4): maintaining
// algorithmic state (per-flow queue size) with single-ported register
// arrays. Enqueue/dequeue updates aggregate in side arrays and are applied
// to the main register during idle cycles.
//
// The paper's claims to reproduce:
//  * "staleness is bounded if the pipeline runs slightly faster than the
//    line rate (as is typical)";
//  * "idle clock cycles occur when the workload contains larger than
//    minimum size packets or when the PISA pipeline is configured to run
//    faster than line rate";
//  * the trade-off "packet processing bandwidth versus accuracy".
//
// Sweep: pipeline speedup x packet size, at full 10G line rate. The
// pipeline clock is S x the 64B line-rate packet rate, so larger packets
// create idle cycles even at S = 1.0. Reported: event delivery/drops,
// aggregation backlog, staleness (cycles and time), throughput.
#include <cstdio>

#include "apps/microburst.hpp"
#include "common.hpp"
#include "core/event_switch.hpp"
#include "net/packet_builder.hpp"

namespace {

using namespace edp;

struct CellResult {
  double speedup;
  std::size_t pkt_size;
  std::uint64_t packets_tx = 0;
  double tx_gbps = 0;
  std::uint64_t enq_delivered = 0;
  std::uint64_t enq_dropped = 0;
  std::uint64_t backlog_max = 0;
  std::uint64_t backlog_end = 0;       ///< still undrained when traffic stops
  std::uint64_t oldest_pending_cyc = 0;
  double staleness_mean_cycles = 0;
  std::uint64_t staleness_max_cycles = 0;
  double staleness_max_ns = 0;
  std::uint64_t carrier_slots = 0;
};

CellResult run_cell(double speedup, std::size_t pkt_size) {
  constexpr double kLineRate = 10e9;
  const sim::Time min_pkt_time = sim::serialization_time(64, kLineRate);
  const auto cycle_ps = static_cast<std::int64_t>(
      static_cast<double>(min_pkt_time.ps()) / speedup);

  sim::Scheduler sched;
  core::EventSwitchConfig cfg;
  cfg.num_ports = 2;
  cfg.port_rate_bps = kLineRate;
  cfg.merger.cycle_time = sim::Time(cycle_ps);
  cfg.merger.event_fifo_depth = 64;
  cfg.queue_limits.max_bytes = 1 << 20;
  cfg.queue_limits.max_packets = 1 << 14;
  core::EventSwitch sw(sched, cfg);

  // The §2 per-flow queue-size program with the aggregated (§4) state
  // realization; detection disabled (huge threshold).
  apps::MicroburstConfig mc;
  mc.num_regs = 1024;
  mc.flow_thresh = 1LL << 40;
  mc.state = apps::StateModel::kAggregated;
  apps::MicroburstProgram prog(mc);
  prog.add_route(net::Ipv4Address(10, 1, 0, 0), 16, 1);
  sw.register_aggregated(*prog.aggregated());
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});

  // Line-rate arrivals, many flows so aggregation indices spread out.
  const sim::Time interval = sim::serialization_time(pkt_size, kLineRate);
  const sim::Time duration = sim::Time::millis(2);
  const auto count = static_cast<std::int64_t>(duration.ps() / interval.ps());
  for (std::int64_t i = 0; i < count; ++i) {
    sched.at(sim::Time(i * interval.ps()), [&sw, i, pkt_size] {
      const net::Ipv4Address src(
          0x0a000000U + static_cast<std::uint32_t>(i % 256));
      sw.receive(0, net::make_udp_packet(src, net::Ipv4Address(10, 1, 0, 1),
                                         1000, 2000, pkt_size));
    });
  }
  sched.run_until(duration + sim::Time::micros(50));

  CellResult r;
  r.speedup = speedup;
  r.pkt_size = pkt_size;
  r.packets_tx = sw.counters().tx_packets;
  r.tx_gbps = static_cast<double>(sw.counters().tx_bytes) * 8.0 /
              duration.as_seconds() / 1e9;
  const auto& enq = sw.merger().kind_stats(core::EventKind::kEnqueue);
  const auto& deq = sw.merger().kind_stats(core::EventKind::kDequeue);
  r.enq_delivered = enq.delivered + deq.delivered;
  r.enq_dropped = enq.dropped + deq.dropped;
  const auto& agg = *prog.aggregated();
  r.backlog_max = agg.backlog_max();
  r.backlog_end = agg.backlog();
  r.oldest_pending_cyc = agg.oldest_age(sw.merger().current_cycle());
  r.staleness_mean_cycles = agg.staleness_mean();
  r.staleness_max_cycles = agg.staleness_max();
  r.staleness_max_ns = static_cast<double>(agg.staleness_max()) *
                       static_cast<double>(cycle_ps) / 1e3;
  r.carrier_slots = sw.merger().slots_carrier();
  return r;
}

}  // namespace

int main() {
  using namespace edp;
  bench::section(
      "F3: Figure 3 — aggregated single-ported state, idle-cycle drains");
  std::printf(
      "Per-flow queue size maintained by enq/deq aggregation registers\n"
      "(microburst.p4 state), 10G line-rate input, 2 ms per cell.\n"
      "Pipeline clock = speedup x 64B line-rate packet rate.\n");

  bench::TextTable table({"speedup", "pkt B", "tx Gb/s", "events ok",
                          "events dropped", "backlog max", "stuck at end",
                          "staleness mean (cyc)", "staleness max (cyc)",
                          "staleness max (ns)"});
  for (const double speedup : {1.0, 1.1, 1.25, 1.5, 2.0}) {
    for (const std::size_t size : {64u, 256u, 1500u}) {
      const CellResult r = run_cell(speedup, size);
      table.add_row(
          {bench::fmt("%.2f", r.speedup), bench::fmt("%zu", r.pkt_size),
           bench::fmt("%.2f", r.tx_gbps),
           bench::fmt("%llu",
                      static_cast<unsigned long long>(r.enq_delivered)),
           bench::fmt("%llu",
                      static_cast<unsigned long long>(r.enq_dropped)),
           bench::fmt("%llu", static_cast<unsigned long long>(r.backlog_max)),
           bench::fmt("%llu", static_cast<unsigned long long>(r.backlog_end)),
           bench::fmt("%.1f", r.staleness_mean_cycles),
           bench::fmt("%llu",
                      static_cast<unsigned long long>(r.staleness_max_cycles)),
           bench::fmt("%.0f", r.staleness_max_ns)});
    }
  }
  table.print();

  std::printf(
      "\nReading the table (paper's §4 claims):\n"
      " * 64B @ speedup 1.0: zero idle cycles. Updates still coalesce into\n"
      "   the aggregation arrays (nothing is lost) but the main register is\n"
      "   NEVER updated — the backlog plateaus and the algorithmic state\n"
      "   stays stale indefinitely ('stuck at end' > 0). This is the case\n"
      "   the paper says needs headroom.\n"
      " * Larger packets OR any speedup > 1 create idle cycles: backlog\n"
      "   drains continuously and staleness is BOUNDED — hundreds of ns at\n"
      "   256B, ~one packet time at 1500B, matching the paper's 'a heavy\n"
      "   hitter might be detected a few nanoseconds late'.\n"
      " * At 64B, staleness falls steeply with speedup (1/(S-1) scaling):\n"
      "   the §4 packet-bandwidth-versus-accuracy trade-off, quantified.\n");
  return 0;
}
