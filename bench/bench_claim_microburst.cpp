// C1 — reproduces the paper's §2 microburst claims:
//
//  * "we can reduce the stateful requirements at least four-fold" vs the
//    Snappy-style baseline of Chen et al. [3];
//  * "and can perform the detection in the ingress pipeline before packets
//    are enqueued in the switch buffer" (the baseline detects at egress,
//    after the packet already sat in the queue).
//
// Identical workload on three detectors: the event-driven program with
// shared (multi-ported) and aggregated (single-ported, §4) state, and the
// Snappy egress-approximation baseline on a baseline PISA switch.
// Reported: programmer-visible state bytes, per-burst detection latency,
// culprit recall, and false positives on the innocent background flow.
#include <cstdio>
#include <memory>

#include "apps/microburst.hpp"
#include "apps/snappy_baseline.hpp"
#include "common.hpp"
#include "core/baseline_switch.hpp"
#include "net/flow.hpp"
#include "net/packet_builder.hpp"
#include "stats/histogram.hpp"

namespace {

using namespace edp;

constexpr double kEgressRate = 1e9;     // 1G bottleneck
constexpr int kBursts = 20;
constexpr int kBurstPackets = 40;       // 40 x 1500B = 60 KB burst
constexpr std::int64_t kThresh = 20'000;  // 20 KB per-flow occupancy

const net::Ipv4Address kBurstSrc(10, 0, 0, 2);
const net::Ipv4Address kBgSrc(10, 0, 0, 1);
const net::Ipv4Address kDst(10, 0, 1, 1);

struct RunResult {
  std::size_t state_bytes = 0;
  int bursts_detected = 0;
  stats::Summary latency_us;  // burst start -> first detection
  int false_positives = 0;
  bool at_ingress = true;
};

/// Drive the identical workload into `receive` and evaluate `detections`.
template <typename ReceiveFn>
void drive_workload(sim::Scheduler& sched, ReceiveFn&& receive) {
  // Background CBR: 500B every 40us = 100 Mb/s for the whole run.
  for (int i = 0; i < 500; ++i) {
    sched.at(sim::Time::micros(40 * i), [receive] {
      receive(net::make_udp_packet(kBgSrc, kDst, 1, 2, 500));
    });
  }
  // Bursts: every 1 ms, kBurstPackets x 1500B at 10G pace (1.2us spacing).
  for (int b = 0; b < kBursts; ++b) {
    const sim::Time start = sim::Time::millis(b);
    for (int i = 0; i < kBurstPackets; ++i) {
      sched.at(start + sim::Time::nanos(1200 * i), [receive] {
        receive(net::make_udp_packet(kBurstSrc, kDst, 3, 4, 1500));
      });
    }
  }
}

RunResult evaluate(const std::vector<apps::CulpritDetection>& detections,
                   std::size_t state_bytes) {
  RunResult r;
  r.state_bytes = state_bytes;
  const std::uint32_t culprit = net::flow_id_src_dst(kBurstSrc, kDst);
  const std::uint32_t innocent = net::flow_id_src_dst(kBgSrc, kDst);
  for (int b = 0; b < kBursts; ++b) {
    const sim::Time start = sim::Time::millis(b);
    const sim::Time end = sim::Time::millis(b + 1);
    for (const auto& d : detections) {
      if (d.flow_id == culprit && d.when >= start && d.when < end) {
        ++r.bursts_detected;
        r.latency_us.add((d.when - start).as_micros());
        break;
      }
    }
  }
  for (const auto& d : detections) {
    r.false_positives += d.flow_id == innocent;
    r.at_ingress = r.at_ingress && d.at_ingress;
  }
  return r;
}

core::EventSwitchConfig cfg() {
  core::EventSwitchConfig c;
  c.num_ports = 2;
  c.port_rate_bps = kEgressRate;
  c.queue_limits.max_bytes = 1 << 20;
  c.queue_limits.max_packets = 1 << 13;
  return c;
}

RunResult run_event(apps::StateModel state) {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, cfg());
  apps::MicroburstConfig mc;
  mc.flow_thresh = kThresh;
  mc.state = state;
  mc.dedup_window = sim::Time::micros(500);
  apps::MicroburstProgram prog(mc);
  prog.add_route(net::Ipv4Address(10, 0, 1, 0), 24, 1);
  if (prog.aggregated() != nullptr) {
    sw.register_aggregated(*prog.aggregated());
  }
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});
  drive_workload(sched, [&sw](net::Packet p) { sw.receive(0, std::move(p)); });
  sched.run_until(sim::Time::millis(kBursts + 5));
  return evaluate(prog.detections(), prog.state_bytes());
}

RunResult run_snappy() {
  sim::Scheduler sched;
  core::BaselineSwitch bsw(sched, cfg());
  apps::SnappyConfig sc;
  sc.flow_thresh = kThresh;
  sc.num_snapshots = 8;
  sc.rotation = sim::Time::micros(50);
  sc.dedup_window = sim::Time::micros(500);
  apps::SnappyProgram prog(sc);
  prog.add_route(net::Ipv4Address(10, 0, 1, 0), 24, 1);
  bsw.set_program(&prog);
  bsw.connect_tx(1, [](net::Packet) {});
  drive_workload(sched,
                 [&bsw](net::Packet p) { bsw.receive(0, std::move(p)); });
  sched.run_until(sim::Time::millis(kBursts + 5));
  return evaluate(prog.detections(), prog.state_bytes());
}

}  // namespace

int main() {
  using namespace edp;
  bench::section(
      "C1: microburst culprit detection — event-driven (paper §2) vs "
      "Snappy-style baseline [3]");
  std::printf(
      "Workload: %d bursts of %d x 1500B at 10G into a 1G port, plus an\n"
      "innocent 100 Mb/s background flow; culprit threshold %lld B.\n",
      kBursts, kBurstPackets, static_cast<long long>(kThresh));

  const RunResult ev_shared = run_event(apps::StateModel::kShared);
  const RunResult ev_agg = run_event(apps::StateModel::kAggregated);
  const RunResult snappy = run_snappy();

  bench::TextTable table({"detector", "state bytes", "bursts found",
                          "detect latency mean (us)", "latency p99 (us)",
                          "false pos", "detection point"});
  const auto row = [&](const char* name, const RunResult& r) {
    table.add_row({name, bench::fmt("%zu", r.state_bytes),
                   bench::fmt("%d/%d", r.bursts_detected, kBursts),
                   bench::fmt("%.1f", r.latency_us.mean()),
                   bench::fmt("%.1f", r.latency_us.percentile(99)),
                   bench::fmt("%d", r.false_positives),
                   r.at_ingress ? "ingress (pre-enqueue)"
                                : "egress (post-queue)"});
  };
  row("event-driven, shared_register", ev_shared);
  row("event-driven, aggregated (Fig.3)", ev_agg);
  row("baseline, Snappy-style egress", snappy);
  table.print();

  const double state_ratio = static_cast<double>(snappy.state_bytes) /
                             static_cast<double>(ev_shared.state_bytes);
  std::printf(
      "\nState ratio (Snappy / event-driven shared): %.1fx  (paper: 'at "
      "least four-fold')\n",
      state_ratio);
  std::printf(
      "Detection point: event-driven flags the culprit at INGRESS, before\n"
      "the packet is buffered; the baseline only at egress, %.0f us later "
      "on average.\n",
      snappy.latency_us.mean() - ev_shared.latency_us.mean());

  const bool ok = state_ratio >= 4.0 && ev_shared.at_ingress &&
                  !snappy.at_ingress &&
                  ev_shared.bursts_detected == kBursts;
  std::printf("\nShape check: %s\n", ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
