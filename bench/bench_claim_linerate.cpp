// C5 — reproduces the paper's abstract/§2 claim: "this more general notion
// of event processing can be supported without sacrificing line rate
// packet processing."
//
// A single switch forwards a 10G line-rate stream port0 -> port1. We
// compare a baseline PISA architecture against the event architecture
// running the full §2 state-maintenance program (enqueue + dequeue events
// updating aggregated per-flow state), across packet sizes and pipeline
// speedups (pipeline clock relative to the 64B line-rate packet rate).
//
// The architectural guarantee under test: the Event Merger gives ingress
// packets strict priority for pipeline slots — events only piggyback or
// ride idle slots — so packet throughput must be IDENTICAL with events on.
// When there is no spare bandwidth (64B @ speedup 1.0), the cost appears
// as event FIFO drops, never as packet loss.
#include <cstdio>

#include "apps/microburst.hpp"
#include "common.hpp"
#include "core/event_switch.hpp"
#include "net/packet_builder.hpp"

namespace {

using namespace edp;

struct Result {
  double tx_gbps = 0;
  std::uint64_t pkt_drops = 0;    // merger backlog + TM drops
  std::uint64_t event_drops = 0;  // event FIFO overflow
  std::uint64_t carrier_slots = 0;
  double piggyback_frac = 0;
};

Result run(bool events_on, std::size_t pkt_size, double speedup) {
  constexpr double kRate = 10e9;
  const sim::Time min_pkt = sim::serialization_time(64, kRate);
  sim::Scheduler sched;
  core::EventSwitchConfig cfg;
  cfg.num_ports = 2;
  cfg.port_rate_bps = kRate;
  cfg.event_architecture = events_on;
  cfg.merger.cycle_time = sim::Time(static_cast<std::int64_t>(
      static_cast<double>(min_pkt.ps()) / speedup));
  cfg.queue_limits.max_bytes = 1 << 20;
  cfg.queue_limits.max_packets = 1 << 14;
  core::EventSwitch sw(sched, cfg);

  apps::MicroburstConfig mc;
  mc.flow_thresh = 1LL << 40;
  mc.state = apps::StateModel::kAggregated;
  apps::MicroburstProgram prog(mc);
  prog.add_route(net::Ipv4Address(10, 1, 0, 0), 16, 1);
  if (prog.aggregated() != nullptr) {
    sw.register_aggregated(*prog.aggregated());
  }
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});

  const sim::Time interval = sim::serialization_time(pkt_size, kRate);
  const sim::Time duration = sim::Time::millis(2);
  const auto count = static_cast<std::int64_t>(duration.ps() / interval.ps());
  for (std::int64_t i = 0; i < count; ++i) {
    sched.at(sim::Time(i * interval.ps()), [&sw, i, pkt_size] {
      const net::Ipv4Address src(
          0x0a000000U + static_cast<std::uint32_t>(i % 64));
      sw.receive(0, net::make_udp_packet(src, net::Ipv4Address(10, 1, 0, 1),
                                         7, 8, pkt_size));
    });
  }
  sched.run_until(duration + sim::Time::micros(100));

  Result r;
  r.tx_gbps = static_cast<double>(sw.counters().tx_bytes) * 8.0 /
              duration.as_seconds() / 1e9;
  r.pkt_drops = sw.merger().packet_backlog_drops() +
                sw.traffic_manager().drops_total();
  for (std::size_t k = 0; k < core::kNumEventKinds; ++k) {
    r.event_drops +=
        sw.merger().kind_stats(static_cast<core::EventKind>(k)).dropped;
  }
  r.carrier_slots = sw.merger().slots_carrier();
  const std::uint64_t total_ev =
      sw.merger().events_piggybacked() + sw.merger().events_on_carrier();
  r.piggyback_frac =
      total_ev == 0 ? 0
                    : static_cast<double>(sw.merger().events_piggybacked()) /
                          static_cast<double>(total_ev);
  return r;
}

}  // namespace

int main() {
  using namespace edp;
  bench::section(
      "C5: line-rate processing with events enabled (paper abstract claim)");
  std::printf(
      "10G line-rate stream, 2 ms per cell; event program maintains\n"
      "per-flow queue state from enqueue/dequeue events (paper §2).\n");

  bench::TextTable table({"pkt B", "speedup", "arch", "tx Gb/s",
                          "pkt drops", "event drops", "carrier slots",
                          "piggyback"});
  bool shape_ok = true;
  for (const std::size_t size : {64u, 256u, 1500u}) {
    for (const double speedup : {1.0, 1.2, 2.0}) {
      const Result base = run(false, size, speedup);
      const Result ev = run(true, size, speedup);
      table.add_row({bench::fmt("%zu", size), bench::fmt("%.1f", speedup),
                     "baseline", bench::fmt("%.3f", base.tx_gbps),
                     bench::fmt("%llu",
                                static_cast<unsigned long long>(
                                    base.pkt_drops)),
                     "-", "-", "-"});
      table.add_row(
          {bench::fmt("%zu", size), bench::fmt("%.1f", speedup),
           "event-driven", bench::fmt("%.3f", ev.tx_gbps),
           bench::fmt("%llu",
                      static_cast<unsigned long long>(ev.pkt_drops)),
           bench::fmt("%llu",
                      static_cast<unsigned long long>(ev.event_drops)),
           bench::fmt("%llu",
                      static_cast<unsigned long long>(ev.carrier_slots)),
           bench::fmt("%.0f%%", 100 * ev.piggyback_frac)});
      // The claim: identical packet throughput, no packet loss from events.
      shape_ok = shape_ok && ev.tx_gbps >= base.tx_gbps * 0.999 &&
                 ev.pkt_drops == base.pkt_drops;
    }
  }
  table.print();

  std::printf(
      "\nEvent processing never costs packet throughput: packets own the\n"
      "pipeline slots and events ride along. Even 64B at speedup 1.0 sheds\n"
      "nothing — the per-kind metadata fields carry exactly one enqueue +\n"
      "one dequeue event per packet slot. The zero-headroom cost surfaces\n"
      "elsewhere: the aggregation drain starves (see bench_fig3) — the\n"
      "accuracy side of §4's bandwidth-vs-accuracy trade-off.\n");
  std::printf("\nShape check (tx identical, zero extra packet loss): %s\n",
              shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 1;
}
