// Microbenchmarks (google-benchmark): per-operation costs of the hot-path
// primitives — parsing, hashing, tables, registers, queues, sketches, the
// timing wheel, and a full switch slot. These bound the simulator's own
// throughput (events simulated per wall-clock second).
#include <benchmark/benchmark.h>

#include "apps/microburst.hpp"
#include "core/aggregated_register.hpp"
#include "core/event_switch.hpp"
#include "core/timer_wheel.hpp"
#include "net/flow.hpp"
#include "net/packet_builder.hpp"
#include "pisa/deparser.hpp"
#include "pisa/parser.hpp"
#include "sim/random.hpp"
#include "stats/count_min_sketch.hpp"
#include "tm/pifo.hpp"

namespace {

using namespace edp;

void BM_ParserUdp(benchmark::State& state) {
  const net::Packet pkt = net::make_udp_packet(
      net::Ipv4Address(10, 0, 0, 1), net::Ipv4Address(10, 0, 1, 1), 1, 2,
      static_cast<std::size_t>(state.range(0)));
  const pisa::Parser parser = pisa::Parser::standard();
  for (auto _ : state) {
    pisa::Phv phv = parser.parse(pkt);
    benchmark::DoNotOptimize(phv);
  }
}
BENCHMARK(BM_ParserUdp)->Arg(64)->Arg(1500);

void BM_Deparser(benchmark::State& state) {
  const pisa::Parser parser = pisa::Parser::standard();
  const pisa::Deparser deparser;
  const pisa::Phv phv = parser.parse(net::make_udp_packet(
      net::Ipv4Address(10, 0, 0, 1), net::Ipv4Address(10, 0, 1, 1), 1, 2,
      512));
  for (auto _ : state) {
    net::Packet out = deparser.deparse(phv);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Deparser);

void BM_Crc32FlowId(benchmark::State& state) {
  const net::Ipv4Address a(10, 0, 0, 1), b(10, 0, 1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::flow_id_src_dst(a, b));
  }
}
BENCHMARK(BM_Crc32FlowId);

void BM_TableLookup(benchmark::State& state) {
  const auto kind = static_cast<pisa::MatchKind>(state.range(0));
  pisa::MatchActionTable table("t", {pisa::MatchField{kind, 32, "dst"}},
                               4096);
  sim::Random rng(1);
  for (int i = 0; i < 1024; ++i) {
    pisa::TableEntry e;
    const auto v = static_cast<std::uint64_t>(rng.next_u64() & 0xffffffff);
    e.key = {pisa::KeyField{v, 24, 0xffffff00}};
    e.priority = i;
    table.insert(std::move(e));
  }
  std::uint64_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup({q++ & 0xffffffff}));
  }
}
BENCHMARK(BM_TableLookup)
    ->Arg(static_cast<int>(pisa::MatchKind::kExact))
    ->Arg(static_cast<int>(pisa::MatchKind::kLpm))
    ->Arg(static_cast<int>(pisa::MatchKind::kTernary));

void BM_AggregatedRegisterOp(benchmark::State& state) {
  core::AggregatedRegister reg("r", 1024);
  std::uint64_t cycle = 0;
  std::size_t idx = 0;
  for (auto _ : state) {
    ++cycle;
    reg.enqueue_add(idx++ & 1023, 100, cycle);
    reg.drain(cycle, 1);
  }
}
BENCHMARK(BM_AggregatedRegisterOp);

void BM_SharedRegisterRmw(benchmark::State& state) {
  core::SharedRegister<std::int64_t> reg("r", 1024, 3);
  std::uint64_t cycle = 0;
  std::size_t idx = 0;
  for (auto _ : state) {
    reg.rmw(idx++ & 1023, [](std::int64_t v) { return v + 1; },
            core::ThreadId::kEnqueue, ++cycle);
  }
}
BENCHMARK(BM_SharedRegisterRmw);

void BM_PifoPushPop(benchmark::State& state) {
  tm_::PifoQueue q(tm_::QueueLimits{1 << 20, 1 << 30});
  sim::Random rng(3);
  // Keep a standing population so push/pop operate on a realistic heap.
  for (int i = 0; i < 1000; ++i) {
    tm_::QueuedPacket qp;
    qp.packet = net::Packet(64);
    qp.rank = rng.next_u64() % 10000;
    q.push(std::move(qp));
  }
  for (auto _ : state) {
    tm_::QueuedPacket qp;
    qp.packet = net::Packet(64);
    qp.rank = rng.next_u64() % 10000;
    q.push(std::move(qp));
    benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_PifoPushPop);

void BM_CmsUpdateEstimate(benchmark::State& state) {
  stats::CountMinSketch cms(2048, 3);
  std::uint64_t key = 0;
  for (auto _ : state) {
    cms.update(key);
    benchmark::DoNotOptimize(cms.estimate(key));
    ++key;
  }
}
BENCHMARK(BM_CmsUpdateEstimate);

void BM_TimingWheelAddAdvance(benchmark::State& state) {
  core::TimingWheel wheel;
  std::uint64_t tick = 0;
  std::vector<core::TimingWheel::Expired> out;
  for (auto _ : state) {
    wheel.add(tick + 100, 0);
    out.clear();
    wheel.advance_to(++tick, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_TimingWheelAddAdvance);

/// Full path: receive -> slot -> parse -> program -> TM -> transmit, with
/// enqueue/dequeue events delivered to the §2 microburst program.
void BM_SwitchPacketPath(benchmark::State& state) {
  sim::Scheduler sched;
  core::EventSwitchConfig cfg;
  cfg.num_ports = 2;
  cfg.port_rate_bps = 100e9;  // never the bottleneck
  core::EventSwitch sw(sched, cfg);
  apps::MicroburstConfig mc;
  mc.flow_thresh = 1LL << 40;
  apps::MicroburstProgram prog(mc);
  prog.add_route(net::Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.register_aggregated(*prog.aggregated());
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});
  const net::Packet pkt = net::make_udp_packet(
      net::Ipv4Address(10, 0, 0, 1), net::Ipv4Address(10, 0, 1, 1), 1, 2,
      300);
  for (auto _ : state) {
    sw.receive(0, pkt);
    sched.run(64);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SwitchPacketPath);

}  // namespace
