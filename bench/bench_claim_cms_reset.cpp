// C2 — reproduces the paper's §1 claim about periodic sketch maintenance:
// "the control plane must be responsible for performing the reset
// operation. This can lead to significant overhead for the control plane,
// especially if the data structure must be frequently reset."
//
// Sweep the CMS reset period. Event-driven: a data-plane timer resets the
// sketch (zero CP messages, reset jitter bounded by the 1us timer
// resolution). Baseline: a ControlPlaneAgent schedules resets over a
// jittery 500us channel — one CP message per reset and control-channel
// jitter on the maintenance operation itself.
#include <cstdio>

#include "apps/cms_monitor.hpp"
#include "common.hpp"
#include "core/baseline_switch.hpp"
#include "net/packet_builder.hpp"
#include "sim/random.hpp"
#include "topo/control_plane.hpp"

namespace {

using namespace edp;

constexpr double kRunSeconds = 2.0;

struct Result {
  double cp_msgs_per_sec = 0;
  double jitter_mean_us = 0;
  double jitter_max_us = 0;
  std::uint64_t resets = 0;
};

/// Shared packet feed: Zipf-ish flows at a modest rate (the workload is
/// incidental; the subject is the maintenance path).
template <typename Rx>
void feed(sim::Scheduler& sched, Rx&& rx) {
  sim::Random rng(99);
  const auto packets =
      static_cast<int>(kRunSeconds * 50'000);  // 50k pps
  for (int i = 0; i < packets; ++i) {
    const net::Ipv4Address src(0x0a000000U +
                               static_cast<std::uint32_t>(rng.uniform(512)));
    sched.at(sim::Time::micros(20 * i), [rx, src] {
      rx(net::make_udp_packet(src, net::Ipv4Address(10, 0, 1, 1), 1, 2, 128));
    });
  }
}

Result run_event(sim::Time period) {
  sim::Scheduler sched;
  core::EventSwitchConfig cfg;
  cfg.num_ports = 2;
  core::EventSwitch sw(sched, cfg);
  apps::CmsMonitorConfig cc;
  cc.reset_period = period;
  apps::CmsMonitorProgram prog(cc);
  prog.add_route(net::Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});
  feed(sched, [&sw](net::Packet p) { sw.receive(0, std::move(p)); });
  sched.run_until(sim::Time::from_seconds(kRunSeconds));
  Result r;
  r.cp_msgs_per_sec = 0;  // no control plane involved at all
  r.jitter_mean_us = prog.reset_jitter_us().mean();
  r.jitter_max_us = prog.reset_jitter_us().max();
  r.resets = prog.resets();
  return r;
}

Result run_baseline(sim::Time period) {
  sim::Scheduler sched;
  core::EventSwitchConfig cfg;
  cfg.num_ports = 2;
  core::BaselineSwitch bsw(sched, cfg);
  apps::CmsMonitorConfig cc;
  cc.reset_period = period;
  apps::CmsMonitorProgram prog(cc);  // timer request will be refused
  prog.add_route(net::Ipv4Address(10, 0, 1, 0), 24, 1);
  bsw.set_program(&prog);
  bsw.connect_tx(1, [](net::Packet) {});
  feed(sched, [&bsw](net::Packet p) { bsw.receive(0, std::move(p)); });

  // The CP drives resets: each reset is one message over a 500us channel
  // with +-40% software jitter (driver + process scheduling).
  topo::ControlPlaneAgent cp(sched, {sim::Time::micros(500),
                                     sim::Time::micros(50)});
  sim::Random cp_rng(7);
  std::uint64_t cp_msgs = 0;
  sim::PeriodicTask reset_task(sched, period, [&] {
    ++cp_msgs;
    const double jitter = 0.6 + 0.8 * cp_rng.uniform01();  // 0.6x..1.4x
    const sim::Time delay = sim::Time::from_seconds(
        (cp.config().channel_latency + cp.config().processing_time)
            .as_seconds() *
        jitter);
    sched.after(delay, [&prog, &sched] { prog.control_reset(sched.now()); });
  });
  reset_task.start();
  sched.run_until(sim::Time::from_seconds(kRunSeconds));
  Result r;
  r.cp_msgs_per_sec = static_cast<double>(cp_msgs) / kRunSeconds;
  r.jitter_mean_us = prog.reset_jitter_us().mean();
  r.jitter_max_us = prog.reset_jitter_us().max();
  r.resets = prog.resets();
  return r;
}

}  // namespace

int main() {
  using namespace edp;
  bench::section(
      "C2: CMS periodic reset — data-plane timer events vs control-plane "
      "maintenance (paper §1)");
  std::printf("Workload: 50k pps over 512 flows for %.0f s per cell.\n",
              kRunSeconds);

  bench::TextTable table({"reset period", "arch", "CP msgs/s",
                          "reset jitter mean (us)", "reset jitter max (us)",
                          "resets done"});
  bool shape_ok = true;
  for (const auto period_ms : {100, 10, 1}) {
    const sim::Time period = sim::Time::millis(period_ms);
    const Result ev = run_event(period);
    const Result cp = run_baseline(period);
    table.add_row({bench::fmt("%d ms", period_ms), "event-driven (timer)",
                   bench::fmt("%.0f", ev.cp_msgs_per_sec),
                   bench::fmt("%.2f", ev.jitter_mean_us),
                   bench::fmt("%.2f", ev.jitter_max_us),
                   bench::fmt("%llu",
                              static_cast<unsigned long long>(ev.resets))});
    table.add_row({bench::fmt("%d ms", period_ms), "baseline (CP resets)",
                   bench::fmt("%.0f", cp.cp_msgs_per_sec),
                   bench::fmt("%.2f", cp.jitter_mean_us),
                   bench::fmt("%.2f", cp.jitter_max_us),
                   bench::fmt("%llu",
                              static_cast<unsigned long long>(cp.resets))});
    shape_ok = shape_ok && ev.cp_msgs_per_sec == 0 &&
               cp.cp_msgs_per_sec > 0 &&
               ev.jitter_max_us < cp.jitter_max_us;
  }
  table.print();

  std::printf(
      "\nReading the table:\n"
      " * Event-driven resets cost the control plane NOTHING at any rate;\n"
      "   baseline CP load grows proportionally to 1/period (the paper's\n"
      "   'significant overhead ... especially if frequently reset').\n"
      " * Reset timing: data-plane jitter is bounded by the 1us timer\n"
      "   resolution; the CP path wobbles by hundreds of us.\n");
  std::printf("\nShape check: %s\n", shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 1;
}
