// Hot-path event-kernel microbenchmark (docs/PERFORMANCE.md).
//
// Measures the simulation kernel's per-event cost on three axes:
//
//   schedule_fire   — tight schedule -> fire cycles through sim::Scheduler
//                     with a trivial callback: the pure dispatch floor.
//   schedule_cancel — schedule followed by cancel, never fired: the cost a
//                     retransmit timer or rearmed wakeup pays per event.
//   mixed_seq       — a 4-leaf/4-spine fabric with all-to-all Poisson
//                     traffic run sequentially (1 shard): the realistic
//                     blend of packets, timers, queues, and buffer events.
//   mixed_2shard    — the same spec on 2 shards through ParallelRuntime.
//   timer_storm     — 10k self-rescheduling periodic timers at the period
//                     classes the rate-based apps use (policer refill
//                     100 µs, liveness check 500 µs, AQM update 1 ms).
//                     Each policer-class refill additionally resets four
//                     flow-liveness watchdogs (cancel + re-arm 500 µs out,
//                     the mod_timer pattern: watchdogs are reset by traffic
//                     far more often than they fire). Run twice: once on
//                     the timing-wheel tier and once heap-only
//                     (timer_storm_heap), to keep the wheel win measured
//                     rather than asserted. The churn is where the wheel
//                     earns its keep: cancels are O(1) forget-and-skip,
//                     while the heap sifts every stale entry it pops.
//
// Results are written to BENCH_sched.json (argv[1] overrides the path).
// The mixed_seq result is compared against the recorded pre-PR baseline
// (measured on this repo at the PR-1 head with identical Release flags and
// workload); the harness exits nonzero when the required speedup or the
// steady-state zero-allocation property is violated, so the win stays
// measured, not asserted. Build in Release (scripts/check.sh does).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "net/packet.hpp"
#include "runtime/parallel_runtime.hpp"
#include "sim/scheduler.hpp"
#include "topo/routing.hpp"
#include "topo/spec.hpp"
#include "topo/traffic_gen.hpp"

namespace {

using namespace edp;
using net::Ipv4Address;

// Pre-PR baseline (commit 2ba4a3e, Release -O2 -DNDEBUG, this container):
// the std::function + unordered_set scheduler, best-of-3 on the identical
// workloads. Updated only when the workload itself changes.
constexpr double kPrePrScheduleFire = 6.01e6;   // events/sec
constexpr double kPrePrScheduleCancel = 4.41e6; // events/sec
constexpr double kPrePrMixedSeq = 1.21e6;       // events/sec
constexpr double kRequiredMixedSpeedup = 2.5;
// timer_storm is gated against the heap-only run of the same binary (not a
// recorded baseline): the wheel tier must make dense periodic timers at
// least this much faster than 4-ary-heap scheduling of the same workload.
constexpr double kRequiredStormSpeedup = 3.0;
// Steady-state allocator traffic tolerance on the mixed workload: the pools
// may still grow marginally as the high-water mark creeps (a handful of
// buffers over half a million events), but per-event allocation is gone.
constexpr double kMaxAllocsPerEvent = 0.01;

struct WorkloadResult {
  std::string name;
  std::uint64_t events = 0;
  double wall_ms = 0;
  double events_per_sec = 0;
  double allocations_per_event = 0;
};

double secs_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

WorkloadResult bench_schedule_fire() {
  sim::Scheduler sched;
  constexpr std::size_t kBatch = 4096;
  constexpr std::size_t kRounds = 512;
  std::uint64_t count = 0;
  // Warm one round so vectors/pools reach steady-state capacity.
  for (std::size_t i = 0; i < kBatch; ++i) {
    sched.after(sim::Time::nanos(static_cast<std::int64_t>(i) + 1),
                [&count] { ++count; });
  }
  sched.run();

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < kRounds; ++r) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      sched.after(sim::Time::nanos(static_cast<std::int64_t>(i) + 1),
                  [&count] { ++count; });
    }
    sched.run();
  }
  const double wall = secs_since(t0);

  WorkloadResult r;
  r.name = "schedule_fire";
  r.events = kBatch * kRounds;
  r.wall_ms = wall * 1e3;
  r.events_per_sec = static_cast<double>(r.events) / wall;
  return r;
}

WorkloadResult bench_schedule_cancel() {
  sim::Scheduler sched;
  constexpr std::size_t kBatch = 4096;
  constexpr std::size_t kRounds = 512;
  std::vector<sim::EventId> ids(kBatch);
  std::uint64_t count = 0;

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < kRounds; ++r) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      ids[i] = sched.after(sim::Time::nanos(static_cast<std::int64_t>(i) + 1),
                           [&count] { ++count; });
    }
    for (std::size_t i = 0; i < kBatch; ++i) {
      sched.cancel(ids[i]);
    }
    sched.run();  // collects the lazily-discarded heap entries
  }
  const double wall = secs_since(t0);

  WorkloadResult r;
  r.name = "schedule_cancel";
  r.events = kBatch * kRounds;
  r.wall_ms = wall * 1e3;
  r.events_per_sec = static_cast<double>(r.events) / wall;
  if (count != 0) {
    std::fprintf(stderr, "FAIL: cancelled callback fired\n");
    std::exit(1);
  }
  return r;
}

// ---- timer storm (dense periodic timers, wheel vs heap-only) ----------------

/// A self-rescheduling periodic timer, the PeriodicTask pattern without the
/// std::function: what policer refill / liveness check / AQM update loops
/// reduce to at the kernel level. Policer-class timers also reset a block
/// of flow-liveness watchdogs each refill (cancel + re-arm, mod_timer
/// style); under healthy traffic those watchdogs never fire.
struct StormTimer {
  static constexpr int kWatchdogs = 4;

  sim::Scheduler* sched = nullptr;
  sim::Time period = sim::Time::zero();
  std::uint64_t fires = 0;
  sim::EventId* watchdogs = nullptr;  ///< block of kWatchdogs ids, or null
  sim::Time watchdog_period = sim::Time::zero();

  void fire() {
    ++fires;
    if (watchdogs != nullptr) {
      sched->cancel_batch(watchdogs, kWatchdogs);
      for (int j = 0; j < kWatchdogs; ++j) {
        watchdogs[j] = sched->after(watchdog_period, [] {});
      }
    }
    sched->after(period, [this] { fire(); });
  }
};

WorkloadResult bench_timer_storm_mode(bool use_wheel) {
  constexpr std::size_t kTimers = 10000;
  constexpr auto kStormWarm = sim::Time::millis(2);
  constexpr auto kStormSpan = sim::Time::millis(20);
  // The rate-based apps' period classes (policer refill, liveness check,
  // AQM sample/update). 100 µs re-arms stay inside the wheel horizon
  // (~268 µs); the other two classes overflow to the heap and cascade back
  // in, so the storm exercises both tiers.
  static constexpr std::int64_t kPeriodsUs[3] = {100, 500, 1000};

  const sim::SchedulerOptions saved = sim::Scheduler::default_options();
  sim::Scheduler::set_default_options(
      sim::SchedulerOptions{use_wheel, sim::WheelTier::kDefaultResBits});
  WorkloadResult r;
  {
    sim::Scheduler sched;
    std::vector<StormTimer> timers(kTimers);
    std::vector<sim::EventId> watchdog_ids(
        StormTimer::kWatchdogs * (kTimers / 3 + 1), 0);
    for (std::size_t i = 0; i < kTimers; ++i) {
      timers[i].sched = &sched;
      timers[i].period = sim::Time::micros(kPeriodsUs[i % 3]);
      if (i % 3 == 0) {
        // Policer class: each refill batch resets this block of watchdogs.
        timers[i].watchdogs =
            &watchdog_ids[StormTimer::kWatchdogs * (i / 3)];
        timers[i].watchdog_period = sim::Time::micros(500);
      }
      // Deterministic phase stagger so expirations arrive as dense bursts
      // across many ticks, not one synchronized spike per period.
      const sim::Time phase(static_cast<std::int64_t>((i * 977) % 100000) *
                            1000);
      StormTimer* t = &timers[i];
      sched.at(timers[i].period + phase, [t] { t->fire(); });
    }
    sched.run_until(kStormWarm);
    const std::uint64_t warm_events = sched.executed();

    const auto t0 = std::chrono::steady_clock::now();
    sched.run_until(kStormSpan);
    const double wall = secs_since(t0);

    r.name = use_wheel ? "timer_storm" : "timer_storm_heap";
    r.events = sched.executed() - warm_events;
    r.wall_ms = wall * 1e3;
    r.events_per_sec = static_cast<double>(r.events) / wall;
    r.allocations_per_event = 0;  // no packets in flight; pools untouched
  }
  sim::Scheduler::set_default_options(saved);
  return r;
}

WorkloadResult bench_timer_storm() { return bench_timer_storm_mode(true); }
WorkloadResult bench_timer_storm_heap() {
  return bench_timer_storm_mode(false);
}

// ---- mixed packet workload (the bench_runtime_scale fabric, shorter) --------

constexpr std::size_t kLeaves = 4;
constexpr std::size_t kSpines = 4;
constexpr std::size_t kHostsPerLeaf = 2;
constexpr auto kWarmSpan = sim::Time::millis(2);
constexpr auto kSpan = sim::Time::millis(20);
constexpr std::uint64_t kSeed = 42;

topo::Spec make_spec() {
  topo::Spec spec;
  for (std::size_t l = 0; l < kLeaves; ++l) {
    core::EventSwitchConfig c;
    c.name = "leaf" + std::to_string(l);
    c.num_ports = static_cast<std::uint16_t>(kHostsPerLeaf + kSpines);
    spec.add_switch(c);
  }
  for (std::size_t s = 0; s < kSpines; ++s) {
    core::EventSwitchConfig c;
    c.name = "spine" + std::to_string(s);
    c.num_ports = static_cast<std::uint16_t>(kLeaves);
    spec.add_switch(c);
  }
  topo::Link::Config host_link;
  host_link.delay = sim::Time::nanos(500);
  topo::Link::Config fabric_link;
  fabric_link.delay = sim::Time::micros(2);
  for (std::size_t l = 0; l < kLeaves; ++l) {
    for (std::size_t k = 0; k < kHostsPerLeaf; ++k) {
      topo::Host::Config hc;
      hc.name = "h" + std::to_string(l * kHostsPerLeaf + k);
      hc.ip = Ipv4Address(10, 0, static_cast<std::uint8_t>(l),
                          static_cast<std::uint8_t>(1 + k));
      hc.mac = net::MacAddress::from_u64(0x020000000000ULL + hc.ip.value());
      const auto h = spec.add_host(hc);
      spec.connect_host(h, l, static_cast<std::uint16_t>(k), host_link);
    }
  }
  for (std::size_t l = 0; l < kLeaves; ++l) {
    for (std::size_t s = 0; s < kSpines; ++s) {
      spec.connect_switches(l, static_cast<std::uint16_t>(kHostsPerLeaf + s),
                            kLeaves + s, static_cast<std::uint16_t>(l),
                            fabric_link);
    }
  }
  return spec;
}

std::vector<std::unique_ptr<topo::L3Program>> make_programs() {
  std::vector<std::unique_ptr<topo::L3Program>> progs;
  for (std::size_t l = 0; l < kLeaves; ++l) {
    auto p = std::make_unique<topo::L3Program>();
    for (std::size_t m = 0; m < kLeaves; ++m) {
      for (std::size_t k = 0; k < kHostsPerLeaf; ++k) {
        const Ipv4Address ip(10, 0, static_cast<std::uint8_t>(m),
                             static_cast<std::uint8_t>(1 + k));
        if (m == l) {
          p->add_route(ip, 32, static_cast<std::uint16_t>(k));
        } else {
          p->add_route(ip, 32,
                       static_cast<std::uint16_t>(kHostsPerLeaf + m % kSpines));
        }
      }
    }
    progs.push_back(std::move(p));
  }
  for (std::size_t s = 0; s < kSpines; ++s) {
    auto p = std::make_unique<topo::L3Program>();
    for (std::size_t m = 0; m < kLeaves; ++m) {
      p->add_route(Ipv4Address(10, 0, static_cast<std::uint8_t>(m), 0), 24,
                   static_cast<std::uint16_t>(m));
    }
    progs.push_back(std::move(p));
  }
  return progs;
}

WorkloadResult bench_mixed(std::size_t shards) {
  const topo::Spec spec = make_spec();
  runtime::ParallelRuntime rt(spec, topo::plan_shards(spec, shards));
  auto progs = make_programs();
  for (std::size_t i = 0; i < spec.num_switches(); ++i) {
    rt.sw(i).set_program(progs[i].get());
  }
  const std::size_t num_hosts = spec.num_hosts();
  std::vector<std::unique_ptr<topo::PoissonGenerator>> gens;
  for (std::size_t h = 0; h < num_hosts; ++h) {
    topo::PoissonGenerator::Config c;
    c.flow.src = rt.host(h).ip();
    c.flow.dst = rt.host((h + 3) % num_hosts).ip();
    c.flow.src_port = static_cast<std::uint16_t>(10000 + h);
    c.flow.dst_port = static_cast<std::uint16_t>(20000 + h);
    c.flow.packet_size = 1000;
    c.mean_rate_bps = 2e9;
    c.stop = kSpan - sim::Time::millis(1);
    c.seed = kSeed * 1000 + h;
    gens.push_back(std::make_unique<topo::PoissonGenerator>(
        rt.scheduler_of_host(h), rt.host(h), c));
    gens.back()->start();
  }

  // Warmup phase: establishes pool/queue capacities before the timed phase
  // so the measurement reflects steady state, not cold-start allocation.
  rt.run_until(kWarmSpan);
  const std::uint64_t warm_events = rt.total_executed();
  const std::uint64_t allocs_before = net::packet_buffer_pool_stats().allocated;

  const auto t0 = std::chrono::steady_clock::now();
  rt.run_until(kSpan);
  const double wall = secs_since(t0);
  const std::uint64_t allocs_after = net::packet_buffer_pool_stats().allocated;

  WorkloadResult r;
  r.name = shards == 1 ? "mixed_seq" : ("mixed_" + std::to_string(shards) +
                                        "shard");
  r.events = rt.total_executed() - warm_events;
  r.wall_ms = wall * 1e3;
  r.events_per_sec = static_cast<double>(r.events) / wall;
  // Buffer-pool misses during the timed phase, per event: the steady-state
  // allocation rate the pool statistics hook exposes.
  r.allocations_per_event =
      static_cast<double>(allocs_after - allocs_before) /
      static_cast<double>(r.events);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_sched.json";
  std::printf("bench_sched_throughput: scheduler hot-path microbenchmark\n\n");

  // Best-of-5 per workload: this box is a single shared vCPU, and the
  // fastest repetition is the least-perturbed measurement of the kernel.
  constexpr int kRepeats = 5;
  const auto best = [](WorkloadResult (*fn)()) {
    WorkloadResult best_r = fn();
    for (int i = 1; i < kRepeats; ++i) {
      WorkloadResult r = fn();
      if (r.events_per_sec > best_r.events_per_sec) {
        best_r = r;
      }
    }
    return best_r;
  };
  const auto best_mixed = [](std::size_t shards) {
    WorkloadResult best_r = bench_mixed(shards);
    for (int i = 1; i < kRepeats; ++i) {
      WorkloadResult r = bench_mixed(shards);
      if (r.events_per_sec > best_r.events_per_sec) {
        best_r = r;
      }
    }
    return best_r;
  };

  std::vector<WorkloadResult> results;
  results.push_back(best(bench_schedule_fire));
  results.push_back(best(bench_schedule_cancel));
  results.push_back(best_mixed(1));
  results.push_back(best_mixed(2));
  results.push_back(best(bench_timer_storm));
  results.push_back(best(bench_timer_storm_heap));

  edp::bench::TextTable table({"workload", "events", "wall ms", "events/sec",
                               "allocs/event"});
  for (const auto& r : results) {
    table.add_row({r.name, std::to_string(r.events),
                   edp::bench::fmt("%.1f", r.wall_ms),
                   edp::bench::fmt("%.3g", r.events_per_sec),
                   edp::bench::fmt("%.4f", r.allocations_per_event)});
  }
  table.print();

  const double mixed_seq_eps = results[2].events_per_sec;
  const double mixed_speedup = mixed_seq_eps / kPrePrMixedSeq;
  const double fire_speedup = results[0].events_per_sec / kPrePrScheduleFire;
  const double cancel_speedup =
      results[1].events_per_sec / kPrePrScheduleCancel;
  const double storm_speedup =
      results[4].events_per_sec / results[5].events_per_sec;
  std::printf("\nspeedup vs pre-PR baseline: schedule_fire %.2fx, "
              "schedule_cancel %.2fx, mixed_seq %.2fx (required: %.1fx)\n",
              fire_speedup, cancel_speedup, mixed_speedup,
              kRequiredMixedSpeedup);
  std::printf("timer_storm wheel vs heap-only: %.2fx (required: %.1fx)\n",
              storm_speedup, kRequiredStormSpeedup);

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"sched_throughput\",\n"
       << "  \"baseline\": {\"commit\": \"2ba4a3e\", \"schedule_fire\": "
       << static_cast<std::uint64_t>(kPrePrScheduleFire)
       << ", \"schedule_cancel\": "
       << static_cast<std::uint64_t>(kPrePrScheduleCancel)
       << ", \"mixed_seq\": " << static_cast<std::uint64_t>(kPrePrMixedSeq)
       << "},\n"
       << "  \"mixed_seq_speedup\": " << edp::bench::fmt("%.2f", mixed_speedup)
       << ",\n  \"timer_storm_speedup\": "
       << edp::bench::fmt("%.2f", storm_speedup) << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    json << "    {\"workload\": \"" << r.name << "\", \"events\": " << r.events
         << ", \"wall_ms\": " << r.wall_ms << ", \"events_per_sec\": "
         << static_cast<std::uint64_t>(r.events_per_sec)
         << ", \"allocations_per_event\": " << r.allocations_per_event << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.flush();
  std::printf("wrote %s\n", json_path.c_str());

  bool ok = true;
  if (mixed_speedup < kRequiredMixedSpeedup) {
    std::fprintf(stderr, "FAIL: mixed_seq speedup %.2fx < required %.1fx\n",
                 mixed_speedup, kRequiredMixedSpeedup);
    ok = false;
  }
  if (storm_speedup < kRequiredStormSpeedup) {
    std::fprintf(stderr,
                 "FAIL: timer_storm wheel speedup %.2fx < required %.1fx "
                 "over heap-only\n",
                 storm_speedup, kRequiredStormSpeedup);
    ok = false;
  }
  for (const auto& r : results) {
    if (r.allocations_per_event > kMaxAllocsPerEvent) {
      std::fprintf(stderr,
                   "FAIL: %s allocates %.4f buffers/event in steady state "
                   "(max %.2f)\n",
                   r.name.c_str(), r.allocations_per_event,
                   kMaxAllocsPerEvent);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
