// T2 — reproduces paper Table 2: "Various application classes that can
// benefit from event-driven programming."
//
// The paper's table lists classes, example applications, and the events
// each uses. This harness actually RUNS one compact scenario per class on
// the event architecture and regenerates the table with a measured
// headline result per row — the events column reflects the handlers the
// scenario's programs genuinely exercised.
#include <cstdio>

#include "apps/aqm.hpp"
#include "apps/chain_replication.hpp"
#include "apps/fast_reroute.hpp"
#include "apps/hula.hpp"
#include "apps/int_aggregator.hpp"
#include "apps/liveness.hpp"
#include "apps/microburst.hpp"
#include "apps/netcache.hpp"
#include "apps/policer.hpp"
#include "apps/swing_state.hpp"
#include "common.hpp"
#include "core/event_switch.hpp"
#include "net/flow.hpp"
#include "net/packet_builder.hpp"

namespace {

using namespace edp;

core::EventSwitchConfig cfg(std::uint16_t ports, double rate = 10e9) {
  core::EventSwitchConfig c;
  c.num_ports = ports;
  c.port_rate_bps = rate;
  return c;
}

net::Packet pkt(net::Ipv4Address src, net::Ipv4Address dst,
                std::size_t size = 1000) {
  return net::make_udp_packet(src, dst, 1111, 2222, size);
}

// ---- class 1: congestion-aware forwarding (HULA) --------------------------------

std::string run_congestion_aware() {
  sim::Scheduler sched;
  core::EventSwitch tor0(sched, cfg(3));
  core::EventSwitch tor1(sched, cfg(3));
  apps::HulaTorConfig c0;
  c0.tor_id = 0;
  c0.host_port = 0;
  c0.uplink_ports = {1, 2};
  c0.num_tors = 2;
  c0.probe_period = sim::Time::micros(100);
  c0.subnets = {{net::Ipv4Address(10, 0, 0, 0), 0},
                {net::Ipv4Address(10, 0, 1, 0), 1}};
  apps::HulaTorConfig c1 = c0;
  c1.tor_id = 1;
  apps::HulaTorProgram p0(c0), p1(c1);
  tor0.set_program(&p0);
  tor1.set_program(&p1);
  tor0.connect_tx(1, [&](net::Packet p) { tor1.receive(1, std::move(p)); });
  tor0.connect_tx(2, [&](net::Packet p) { tor1.receive(2, std::move(p)); });
  tor1.connect_tx(1, [&](net::Packet p) { tor0.receive(1, std::move(p)); });
  tor1.connect_tx(2, [&](net::Packet p) { tor0.receive(2, std::move(p)); });
  tor0.connect_tx(0, [](net::Packet) {});
  tor1.connect_tx(0, [](net::Packet) {});
  sched.run_until(sim::Time::millis(5));
  return bench::fmt(
      "%llu probes generated in-switch; freshness %.1f us mean; 0 CP msgs",
      static_cast<unsigned long long>(p0.probes_originated() +
                                      p1.probes_originated()),
      p1.probe_staleness_us().mean());
}

// ---- class 2: network management (FRR + liveness) --------------------------------

std::string run_network_management() {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, cfg(3));
  apps::FrrProgram frr(3);
  frr.add_route(apps::FrrRoute{net::Ipv4Address(10, 0, 1, 0), 1, 2});
  sw.set_program(&frr);
  int tx2 = 0;
  sw.connect_tx(1, [](net::Packet) {});
  sw.connect_tx(2, [&](net::Packet) { ++tx2; });
  const sim::Time fail = sim::Time::micros(100);
  sched.at(fail, [&sw] { sw.set_link_status(1, false); });
  for (int i = 0; i < 50; ++i) {
    sched.at(sim::Time::micros(10 * i), [&sw] {
      sw.receive(0, pkt(net::Ipv4Address(10, 0, 0, 1),
                        net::Ipv4Address(10, 0, 1, 1), 300));
    });
  }
  sched.run_until(sim::Time::millis(2));
  const double react_ns = (frr.reroute_activated_at() - fail).as_nanos();
  return bench::fmt(
      "link-down handled in %.0f ns; %llu pkts re-routed, 0 CP msgs",
      react_ns, static_cast<unsigned long long>(frr.rerouted()));
}

// ---- class 2b: network management (data-plane state migration) --------------------

std::string run_state_migration() {
  sim::Scheduler sched;
  core::EventSwitch holder(sched, cfg(3));
  core::EventSwitch peer(sched, cfg(3));
  apps::SwingStateConfig sc;
  apps::SwingStateProgram ph(sc), pp(sc);
  holder.set_program(&ph);
  peer.set_program(&pp);
  holder.connect_tx(1, [](net::Packet) {});
  holder.connect_tx(2, [&](net::Packet p) { peer.receive(2, std::move(p)); });
  peer.connect_tx(1, [](net::Packet) {});
  peer.connect_tx(2, [](net::Packet) {});
  for (int f = 0; f < 20; ++f) {
    for (int i = 0; i <= f; ++i) {
      holder.receive(0, pkt(net::Ipv4Address(10, 0, 0,
                                             static_cast<std::uint8_t>(f + 1)),
                            net::Ipv4Address(10, 0, 9, 9), 500));
    }
  }
  sched.run_until(sim::Time::millis(1));
  const sim::Time fail = sched.now();
  holder.set_link_status(1, false);
  sched.run_until(fail + sim::Time::millis(1));
  return bench::fmt(
      "%llu flows' state swung to the backup-path switch %.0f ns after "
      "link-down (one pipeline slot), 0 CP msgs",
      static_cast<unsigned long long>(pp.migrated_in()),
      (ph.migration_started_at() - fail).as_nanos());
}

// ---- class 5b: in-network computing (chain-replicated coordination) ----------------

std::string run_coordination() {
  sim::Scheduler sched;
  core::EventSwitch head(sched, cfg(3)), mid(sched, cfg(3)),
      tail(sched, cfg(3));
  apps::ChainNodeConfig h;
  h.successor_ports = {1, 2};
  apps::ChainNodeConfig m;
  m.successor_ports = {1};
  apps::ChainNodeConfig t;
  apps::ChainNodeProgram ph(h), pm(m), pt(t);
  head.set_program(&ph);
  mid.set_program(&pm);
  tail.set_program(&pt);
  head.connect_tx(1, [&](net::Packet p) { mid.receive(0, std::move(p)); });
  head.connect_tx(2, [&](net::Packet p) { tail.receive(2, std::move(p)); });
  mid.connect_tx(1, [&](net::Packet p) { tail.receive(0, std::move(p)); });
  int acks = 0;
  tail.connect_tx(0, [&](net::Packet) { ++acks; });
  head.connect_tx(0, [](net::Packet) {});
  mid.connect_tx(0, [](net::Packet) {});

  const auto write = [&](std::uint64_t key, std::uint64_t value) {
    net::KvHeader kv;
    kv.op = net::KvHeader::kSet;
    kv.key = key;
    kv.value = value;
    head.receive(0, net::PacketBuilder()
                        .ethernet(net::MacAddress::from_u64(1),
                                  net::MacAddress::from_u64(2))
                        .ipv4(net::Ipv4Address(10, 0, 0, 1),
                              net::Ipv4Address(10, 0, 8, 8),
                              net::kIpProtoUdp)
                        .udp(45000, net::kPortKvCache)
                        .kv(kv)
                        .pad_to(64)
                        .build());
  };
  for (std::uint64_t k = 0; k < 50; ++k) {
    sched.after(sim::Time::micros(10 * k), [&write, k] { write(k, k * 10); });
  }
  sched.at(sim::Time::micros(250),
           [&head] { head.set_link_status(1, false); });  // mid-run failure
  sched.run_until(sim::Time::millis(2));
  return bench::fmt(
      "%d/50 writes committed+acked across a mid-chain link failure "
      "(repair via link event, %llu repairs)",
      acks, static_cast<unsigned long long>(ph.repairs()));
}

// ---- class 3: network monitoring (microburst + INT aggregation) -------------------

std::string run_network_monitoring() {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, cfg(3, 1e9));
  apps::IntAggregatorConfig ic;
  ic.num_ports = 3;
  ic.report_period = sim::Time::millis(1);
  ic.depth_thresh_bytes = 10'000;
  ic.report_port = 2;
  ic.monitor_ip = net::Ipv4Address(10, 0, 2, 2);
  ic.self_ip = net::Ipv4Address(10, 0, 254, 1);
  apps::IntAggregatorProgram prog(ic);
  prog.add_route(net::Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});
  sw.connect_tx(2, [](net::Packet) {});
  // Quiet period + one hot burst.
  for (int i = 0; i < 200; ++i) {
    sched.at(sim::Time::millis(4) + sim::Time::micros(2 * i), [&sw] {
      sw.receive(0, pkt(net::Ipv4Address(10, 0, 0, 9),
                        net::Ipv4Address(10, 0, 1, 1), 1000));
    });
  }
  sched.run_until(sim::Time::millis(10));
  return bench::fmt(
      "telemetry reduced %.0fx (%llu postcards -> %llu anomaly reports)",
      prog.reduction_factor(),
      static_cast<unsigned long long>(prog.naive_postcards()),
      static_cast<unsigned long long>(prog.reports_sent()));
}

// ---- class 4: traffic management (FRED-like AQM + timer token bucket) -------------

std::string run_traffic_management() {
  // Fair AQM (student project) on a 100 Mb/s bottleneck.
  sim::Scheduler sched;
  core::EventSwitchConfig c = cfg(2, 1e8);
  c.queue_limits.max_bytes = 1 << 20;
  c.queue_limits.max_packets = 4096;
  core::EventSwitch sw(sched, c);
  apps::FairAqmConfig fc;
  fc.engage_bytes = 4'000;
  fc.share_factor = 1.5;
  apps::FairAqmProgram aqm(fc);
  aqm.add_route(net::Ipv4Address(10, 0, 1, 0), 24, 1);
  sw.set_program(&aqm);
  sw.connect_tx(1, [](net::Packet) {});
  for (int i = 0; i < 300; ++i) {
    sched.at(sim::Time::micros(2 * i), [&sw] {  // hog
      sw.receive(0, pkt(net::Ipv4Address(10, 0, 0, 1),
                        net::Ipv4Address(10, 0, 1, 1)));
    });
  }
  for (int i = 0; i < 6; ++i) {
    sched.at(sim::Time::micros(100 * i), [&sw] {  // mouse
      sw.receive(0, pkt(net::Ipv4Address(10, 0, 0, 2),
                        net::Ipv4Address(10, 0, 1, 1)));
    });
  }
  sched.run_until(sim::Time::millis(60));

  // Timer-built token bucket beside it.
  sim::Scheduler sched2;
  core::EventSwitch sw2(sched2, cfg(2));
  apps::TokenBucketConfig tc;
  tc.rate_bytes_per_sec = 1.25e6;
  tc.burst_bytes = 5'000;
  apps::TimerTokenBucketProgram tb(tc);
  tb.add_route(net::Ipv4Address(10, 0, 1, 0), 24, 1);
  sw2.set_program(&tb);
  sw2.connect_tx(1, [](net::Packet) {});
  for (int i = 0; i < 125; ++i) {
    sched2.at(sim::Time::micros(80 * i), [&sw2] {
      sw2.receive(0, pkt(net::Ipv4Address(10, 0, 0, 1),
                         net::Ipv4Address(10, 0, 1, 1)));
    });
  }
  sched2.run_until(sim::Time::millis(20));

  return bench::fmt(
      "FRED-like AQM: %llu fairness drops, hog throttled; timer token "
      "bucket policed 10x overload to %llu pkts",
      static_cast<unsigned long long>(aqm.fairness_drops()),
      static_cast<unsigned long long>(tb.conformant()));
}

// ---- class 5: in-network computing (NetCache) -------------------------------------

std::string run_in_network_computing() {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, cfg(2));
  apps::NetCacheConfig nc;
  nc.hot_thresh = 3;
  nc.server_ip = net::Ipv4Address(10, 0, 9, 9);
  apps::NetCacheProgram prog(nc);
  sw.set_program(&prog);
  const net::Ipv4Address client(10, 0, 0, 1);
  sw.connect_tx(1, [&](net::Packet p) {  // the server
    auto phv = pisa::Parser::standard().parse(std::move(p));
    if (phv.kv && phv.kv->op == net::KvHeader::kGet) {
      net::KvHeader reply;
      reply.op = net::KvHeader::kReply;
      reply.key = phv.kv->key;
      reply.value = phv.kv->key * 2;
      sw.receive(1, net::PacketBuilder()
                        .ethernet(net::MacAddress::from_u64(2),
                                  net::MacAddress::from_u64(3))
                        .ipv4(nc.server_ip, client, net::kIpProtoUdp)
                        .udp(net::kPortKvCache, 40000)
                        .kv(reply)
                        .pad_to(64)
                        .build());
    }
  });
  sw.connect_tx(0, [](net::Packet) {});
  // Zipf-ish GET stream: hot keys 0..7 dominate.
  sim::Random rng(5);
  sim::ZipfSampler zipf(256, 1.3);
  for (int i = 0; i < 2000; ++i) {
    sched.at(sim::Time::micros(5 * (i + 1)), [&sw, &rng, &zipf, client, nc] {
      net::KvHeader get;
      get.op = net::KvHeader::kGet;
      get.key = zipf.sample(rng);
      sw.receive(0, net::PacketBuilder()
                        .ethernet(net::MacAddress::from_u64(4),
                                  net::MacAddress::from_u64(5))
                        .ipv4(client, nc.server_ip, net::kIpProtoUdp)
                        .udp(40000, net::kPortKvCache)
                        .kv(get)
                        .pad_to(64)
                        .build());
    });
  }
  sched.run_until(sim::Time::millis(50));
  return bench::fmt(
      "cache hit rate %.0f%%; server GET load cut %llu -> %llu; LRU decay "
      "+ stats clearing timer-driven",
      100 * prog.hit_rate(),
      static_cast<unsigned long long>(prog.cache_hits() +
                                      prog.cache_misses()),
      static_cast<unsigned long long>(prog.server_gets()));
}

}  // namespace

int main() {
  using namespace edp;
  bench::section(
      "T2: Table 2 — application classes benefiting from event-driven "
      "programming");

  bench::TextTable table(
      {"Application Class", "Examples (this repo)", "Events Used",
       "Measured result"});
  table.add_row({"Congestion Aware Forwarding",
                 "HULA load balancing (apps/hula)",
                 "Enqueue, Timer (pktgen)", run_congestion_aware()});
  table.add_row({"Network Management",
                 "Fast Re-Route, liveness (apps/fast_reroute, liveness)",
                 "Link Status, Timer", run_network_management()});
  table.add_row({"Network Management",
                 "Data-plane state migration (apps/swing_state)",
                 "Link Status", run_state_migration()});
  table.add_row({"Network Monitoring",
                 "Microburst, CMS, INT aggregation (apps/*)",
                 "Enqueue, Dequeue, Overflow, Timer",
                 run_network_monitoring()});
  table.add_row({"Traffic Management",
                 "FRED-like AQM, PIE, policing (apps/aqm, policer)",
                 "Enqueue, Dequeue, Overflow, Timer",
                 run_traffic_management()});
  table.add_row({"In-Network Computing",
                 "NetCache-style KV cache (apps/netcache)",
                 "Timer (LRU decay, stats clear)",
                 run_in_network_computing()});
  table.add_row({"In-Network Computing",
                 "Chain-replicated coordination (apps/chain_replication)",
                 "Link Status", run_coordination()});
  table.print();

  std::printf(
      "\nEvery class of paper Table 2 runs on the event architecture with\n"
      "zero control-plane involvement in its core loop.\n");
  return 0;
}
