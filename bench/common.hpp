// Shared helpers for the experiment harnesses: simple aligned table
// printing and common topology builders, so each bench binary reads like
// the experiment it reproduces.
#pragma once

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace edp::bench {

/// Fixed-width text table: add_row with printf-style cells, print once.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    const auto line = [&] {
      std::printf("+");
      for (const auto w : width) {
        for (std::size_t i = 0; i < w + 2; ++i) {
          std::printf("-");
        }
        std::printf("+");
      }
      std::printf("\n");
    };
    line();
    std::printf("|");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(width[c]), headers_[c].c_str());
    }
    std::printf("\n");
    line();
    for (const auto& row : rows_) {
      std::printf("|");
      for (std::size_t c = 0; c < row.size(); ++c) {
        std::printf(" %-*s |", static_cast<int>(width[c]), row[c].c_str());
      }
      std::printf("\n");
    }
    line();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

inline void section(const char* title) {
  std::printf("\n=== %s ===\n\n", title);
}

}  // namespace edp::bench
