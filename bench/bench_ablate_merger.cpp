// A2 — ablation of the Event Merger's delivery strategy (paper §5,
// Figure 4): "If there are no ingress packets for the metadata to
// piggyback onto, the Event Merger generates an empty packet, attaches the
// event metadata and injects it into the P4 pipeline."
//
// Two pipeline-clock regimes expose both delivery modes:
//   fast clock  (200 MHz, ~80x packet rate): a free slot is always a few
//               ns away, so events ride carrier frames almost immediately;
//   tight clock (1.05x the packet rate): slots are scarce and almost every
//               slot carries a packet, so events PIGGYBACK — the case the
//               merger's metadata bus exists for.
//
// Swept against ingress utilization and event rate; reported: how events
// traveled, their merger queueing delay, and drops (none at these rates).
#include <cstdio>

#include "common.hpp"
#include "core/event_switch.hpp"
#include "net/packet_builder.hpp"

namespace {

using namespace edp;

constexpr double kRate = 10e9;
constexpr std::size_t kPktSize = 500;

struct Result {
  double piggyback_frac = 0;
  std::uint64_t carriers = 0;
  sim::Time wait_mean = sim::Time::zero();
  sim::Time wait_max = sim::Time::zero();
  std::uint64_t dropped = 0;
  std::uint64_t delivered = 0;
};

class CountingProgram : public core::EventProgram {
 public:
  void on_ingress(pisa::Phv& phv, core::EventContext&) override {
    phv.std_meta.egress_port = 1;
  }
  void on_timer(const core::TimerEventData&, core::EventContext&) override {
    ++timers;
  }
  std::uint64_t timers = 0;
};

Result run(double utilization, sim::Time timer_period, bool tight_clock) {
  sim::Scheduler sched;
  core::EventSwitchConfig cfg;
  cfg.num_ports = 2;
  cfg.port_rate_bps = kRate;
  cfg.merger.event_fifo_depth = 64;
  if (tight_clock) {
    // 1.05x the 500B line-rate packet rate: slots are scarce.
    const sim::Time pkt_time = sim::serialization_time(kPktSize, kRate);
    cfg.merger.cycle_time = sim::Time(
        static_cast<std::int64_t>(static_cast<double>(pkt_time.ps()) / 1.05));
  }  // else: default 5 ns (200 MHz)
  core::EventSwitch sw(sched, cfg);
  CountingProgram prog;
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});

  const sim::Time duration = sim::Time::millis(10);
  if (utilization > 0) {
    const sim::Time interval = sim::Time::from_seconds(
        static_cast<double>(kPktSize) * 8.0 / (kRate * utilization));
    const auto count =
        static_cast<std::int64_t>(duration.ps() / interval.ps());
    for (std::int64_t i = 0; i < count; ++i) {
      sched.at(sim::Time(i * interval.ps()), [&sw] {
        sw.receive(0,
                   net::make_udp_packet(net::Ipv4Address(10, 0, 0, 1),
                                        net::Ipv4Address(10, 1, 0, 1), 1, 2,
                                        kPktSize));
      });
    }
  }
  sw.set_periodic_timer(timer_period, 0);

  sched.run_until(duration + sim::Time::micros(100));

  Result r;
  const auto& ts = sw.merger().kind_stats(core::EventKind::kTimer);
  const auto& enq = sw.merger().kind_stats(core::EventKind::kEnqueue);
  const auto& deq = sw.merger().kind_stats(core::EventKind::kDequeue);
  r.delivered = ts.delivered + enq.delivered + deq.delivered;
  r.dropped = ts.dropped + enq.dropped + deq.dropped;
  const std::uint64_t total =
      sw.merger().events_piggybacked() + sw.merger().events_on_carrier();
  r.piggyback_frac =
      total == 0 ? 0
                 : static_cast<double>(sw.merger().events_piggybacked()) /
                       static_cast<double>(total);
  r.carriers = sw.merger().slots_carrier();
  const std::int64_t wait_sum =
      ts.wait_sum.ps() + enq.wait_sum.ps() + deq.wait_sum.ps();
  r.wait_mean = r.delivered == 0
                    ? sim::Time::zero()
                    : sim::Time(wait_sum /
                                static_cast<std::int64_t>(r.delivered));
  r.wait_max = std::max({ts.wait_max, enq.wait_max, deq.wait_max});
  return r;
}

}  // namespace

int main() {
  using namespace edp;
  bench::section(
      "A2: Event Merger delivery — piggyback vs carrier frames (paper "
      "Figure 4)");
  std::printf(
      "10G port, 500B packets at the given utilization; one periodic timer "
      "supplies extra events.\n10 ms per cell.\n");

  bench::TextTable table({"pipeline clock", "ingress util", "timer period",
                          "events delivered", "piggybacked",
                          "carrier slots", "wait mean", "wait max",
                          "dropped"});
  bool shape_ok = true;
  for (const bool tight : {false, true}) {
    for (const double util : {0.0, 0.25, 0.75, 0.95}) {
      for (const auto period_us : {100, 10}) {
        const Result r = run(util, sim::Time::micros(period_us), tight);
        table.add_row(
            {tight ? "tight (1.05x pkt rate)" : "fast (200 MHz)",
             bench::fmt("%.0f%%", util * 100),
             bench::fmt("%d us", period_us),
             bench::fmt("%llu", static_cast<unsigned long long>(r.delivered)),
             bench::fmt("%.0f%%", r.piggyback_frac * 100),
             bench::fmt("%llu", static_cast<unsigned long long>(r.carriers)),
             r.wait_mean.to_string(), r.wait_max.to_string(),
             bench::fmt("%llu", static_cast<unsigned long long>(r.dropped))});
        shape_ok = shape_ok && r.dropped == 0;
        if (util == 0.0) {
          // No traffic: everything must ride carrier frames.
          shape_ok = shape_ok && r.piggyback_frac == 0 && r.carriers > 0;
        }
        if (tight && util >= 0.95) {
          // Scarce slots + busy link: piggybacking must dominate.
          shape_ok = shape_ok && r.piggyback_frac > 0.5;
        }
        if (!tight && util > 0) {
          // Abundant slots: events get a carrier within a cycle or two,
          // so waits stay within a handful of cycle times.
          shape_ok = shape_ok && r.wait_max <= sim::Time::nanos(25);
        }
      }
    }
  }
  table.print();

  std::printf(
      "\nWith an abundant clock (200 MHz vs ~2.6 Mpps) a spare slot is\n"
      "always ~5 ns away, so the merger injects carrier frames and events\n"
      "never wait. With a tight clock, slots almost always hold packets\n"
      "and events piggyback on their metadata — exactly the two delivery\n"
      "modes of Figure 4. Either way, nothing is dropped at these rates\n"
      "and delivery waits stay in nanoseconds.\n");
  std::printf("\nShape check: %s\n", shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 1;
}
