// A3 — the paper's §4 future work, implemented and measured: "we also need
// to consider how memory accesses are scheduled, depending on which events
// are the most important and urgent, and whether priorities are assigned
// by the programmer, the compiler, or the hardware."
//
// Two knobs, programmer-assigned in this architecture:
//
//  (1) Event Merger metadata priorities: under a constrained per-slot
//      event budget, which pending event kind gets the metadata space.
//      Scenario: a line-rate stream floods enqueue/dequeue events while a
//      rare-but-urgent LinkStatusChange event arrives; compare its
//      delivery latency with equal priorities vs link-status prioritized.
//
//  (2) AggregatedRegister drain policy: which aggregation array the idle
//      cycles apply first. A program that must never *under*-react to
//      congestion drains enqueues first (occupancy rises promptly, falls
//      lazily); dequeue-first gives the opposite bias. Measured as the
//      signed error of the main register vs ground truth during a burst.
#include <cstdio>

#include "common.hpp"
#include "core/aggregated_register.hpp"
#include "core/event_switch.hpp"
#include "net/packet_builder.hpp"
#include "sim/random.hpp"

namespace {

using namespace edp;

// ---- part 1: merger metadata priorities -------------------------------------------

sim::Time run_merger(bool prioritize_link) {
  constexpr double kRate = 10e9;
  const sim::Time pkt_time = sim::serialization_time(500, kRate);
  sim::Scheduler sched;
  core::EventSwitchConfig cfg;
  cfg.num_ports = 2;
  cfg.port_rate_bps = kRate;
  // Tight clock and a 1-event-per-slot budget: priorities matter.
  cfg.merger.cycle_time = sim::Time(static_cast<std::int64_t>(
      static_cast<double>(pkt_time.ps()) / 1.05));
  cfg.merger.events_per_slot = 1;
  if (prioritize_link) {
    cfg.merger.priority[static_cast<std::size_t>(
        core::EventKind::kLinkStatus)] = 10;
  }
  core::EventSwitch sw(sched, cfg);

  class Fwd : public core::EventProgram {
   public:
    void on_ingress(pisa::Phv& phv, core::EventContext&) override {
      phv.std_meta.egress_port = 1;
    }
    void on_link_status(const core::LinkStatusEventData&,
                        core::EventContext& ctx) override {
      handled_at = ctx.now();
    }
    sim::Time handled_at = sim::Time::zero();
  } prog;
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});

  // Line-rate 500B traffic: every slot has a packet and a backlog of
  // enqueue/dequeue events competing for the single metadata slot.
  const sim::Time duration = sim::Time::millis(1);
  const auto count = static_cast<std::int64_t>(duration.ps() / pkt_time.ps());
  for (std::int64_t i = 0; i < count; ++i) {
    sched.at(sim::Time(i * pkt_time.ps()), [&sw] {
      sw.receive(0, net::make_udp_packet(net::Ipv4Address(10, 0, 0, 1),
                                         net::Ipv4Address(10, 1, 0, 1), 1, 2,
                                         500));
    });
  }
  const sim::Time link_at = sim::Time::micros(500);
  sched.at(link_at, [&sw] { sw.set_link_status(0, false); });
  sched.run_until(duration + sim::Time::micros(200));
  return prog.handled_at - link_at;
}

// ---- part 2: drain policy bias -------------------------------------------------------

struct BiasResult {
  double mean_signed_error = 0;  ///< main - truth during the run
  double mean_abs_error = 0;
};

BiasResult run_drain(core::DrainPolicy policy) {
  core::AggregatedRegister reg("occ", 64, policy);
  sim::Random rng(11);
  std::int64_t truth[64] = {};
  std::uint64_t cycle = 0;
  double signed_sum = 0, abs_sum = 0;
  std::size_t samples = 0;
  for (int i = 0; i < 100'000; ++i) {
    ++cycle;
    const std::size_t f = rng.uniform(64);
    // Enqueue 1000B and (slightly later in expectation) dequeue 1000B.
    reg.enqueue_add(f, 1000, cycle);
    truth[f] += 1000;
    const std::size_t g = rng.uniform(64);
    reg.dequeue_add(g, -1000, cycle);
    truth[g] -= 1000;
    // One drain per event pair: drain bandwidth is the scarce resource the
    // policy arbitrates.
    ++cycle;
    reg.drain(cycle, 1);
    if (i % 16 == 0) {
      const std::size_t probe = rng.uniform(64);
      const auto err = static_cast<double>(reg.main_value(probe) -
                                           truth[probe]);
      signed_sum += err;
      abs_sum += std::abs(err);
      ++samples;
    }
  }
  return BiasResult{signed_sum / static_cast<double>(samples),
                    abs_sum / static_cast<double>(samples)};
}

const char* policy_name(core::DrainPolicy p) {
  switch (p) {
    case core::DrainPolicy::kRoundRobin:
      return "round-robin";
    case core::DrainPolicy::kEnqueueFirst:
      return "enqueue-first";
    case core::DrainPolicy::kDequeueFirst:
      return "dequeue-first";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace edp;
  bench::section(
      "A3: programmer-assigned event/memory scheduling (paper §4 future "
      "work)");

  std::printf("Part 1 — merger metadata priority under a 1-event/slot "
              "budget at line rate:\n\n");
  bench::TextTable merger({"policy", "LinkStatusChange delivery latency"});
  const sim::Time fifo_lat = run_merger(false);
  const sim::Time prio_lat = run_merger(true);
  merger.add_row({"equal priorities (per-kind RR)", fifo_lat.to_string()});
  merger.add_row({"link-status prioritized", prio_lat.to_string()});
  merger.print();
  std::printf(
      "The urgent-but-rare event jumps the enqueue/dequeue flood when the\n"
      "programmer marks it urgent.\n\n");

  std::printf("Part 2 — aggregation drain policy bias (signed error of the "
              "visible state):\n\n");
  bench::TextTable drain({"drain policy", "mean signed error (B)",
                          "mean |error| (B)", "bias"});
  bool shape_ok = prio_lat <= fifo_lat;
  double enq_first_err = 0, deq_first_err = 0;
  for (const auto policy :
       {core::DrainPolicy::kRoundRobin, core::DrainPolicy::kEnqueueFirst,
        core::DrainPolicy::kDequeueFirst}) {
    const BiasResult r = run_drain(policy);
    drain.add_row(
        {policy_name(policy), bench::fmt("%.0f", r.mean_signed_error),
         bench::fmt("%.0f", r.mean_abs_error),
         r.mean_signed_error > 50
             ? "over-estimates occupancy"
             : (r.mean_signed_error < -50 ? "under-estimates occupancy"
                                          : "~unbiased")});
    if (policy == core::DrainPolicy::kEnqueueFirst) {
      enq_first_err = r.mean_signed_error;
    }
    if (policy == core::DrainPolicy::kDequeueFirst) {
      deq_first_err = r.mean_signed_error;
    }
  }
  drain.print();
  // Enqueue-first applies +deltas promptly and lets -deltas lag: the
  // visible occupancy over-estimates (conservative for congestion
  // control); dequeue-first is the mirror image.
  shape_ok = shape_ok && enq_first_err > deq_first_err;
  std::printf(
      "\nEnqueue-first keeps the visible occupancy >= truth on average\n"
      "(safe for drop decisions); dequeue-first the opposite. The paper's\n"
      "open question — who assigns priority — is answered here with\n"
      "per-program knobs, and the bias is measurable and predictable.\n");
  std::printf("\nShape check: %s\n", shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 1;
}
