// Optimizer throughput harness (docs/ANALYSIS.md §optimizer).
//
// Drives the identical sustained near-line-rate load — three sources at a
// third of line rate each, 64 flows per source, all converging on one 10G
// egress at ~95% utilization — through microburst-shared twice:
// naively (multi-ported SharedRegister, every event merger-queued) and
// through `analysis::optimize_program` against linerate-tor (aggregated
// state, enqueue/dequeue handlers fused at the TM observation point,
// proven-default handlers suppressed). Gates:
//
//   * fused-pipeline throughput >= 1.2x naive (the PR's acceptance bar);
//   * settled per-slot occupancy identical naive vs optimized (the
//     transforms change staleness, never the converged value);
//   * measured drain staleness bounded: the optimizer's predicted bound
//     models *sustained* worst-case demand, and the bench's line-rate
//     trains starve the drain for up to one burst cycle on top of that —
//     so the ceiling is bound + burst-cycle span. A staleness that grew
//     with total run length (unbounded backlog) smashes through it.
//
// Results are written as JSON (default ./BENCH_optimizer.json, or argv[1])
// for the perf-gate trajectory. argv[2] overrides packets per source
// (default 60000).
#include <algorithm>
#include <ctime>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/optimizer.hpp"
#include "apps/microburst.hpp"
#include "apps/registry.hpp"
#include "common.hpp"
#include "core/event_switch.hpp"
#include "net/packet_builder.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace edp;

constexpr double kPortRate = 10e9;          // every port 10G
constexpr std::uint16_t kSourcePorts[] = {0, 2, 3};
constexpr int kFlowsPerSource = 64;
constexpr int kPacketBytes = 1500;
/// Aggregate offered load on the egress port. Just under saturation keeps
/// every packet on the full enqueue/dequeue/transmit event path (drops
/// would skip the buffer events fusion accelerates) while the queue stays
/// busy enough that idle-cycle drains actually interleave with updates.
constexpr double kUtilization = 0.95;
/// Packets per line-rate train (microburst arrival shape).
constexpr std::uint32_t kBurstLen = 32;
/// CPU-time repeats per pipeline; the best (fastest) run is reported.
/// Naive/optimized runs interleave, so ambient load (e.g. a CI runner's
/// writeback after the build) perturbs both variants alike; five repeats
/// give each variant a realistic shot at one unperturbed measurement.
constexpr int kRepeats = 5;

const net::Ipv4Address kDst(10, 0, 1, 1);   // registry route: 10/8 -> port 1

struct RunResult {
  std::uint64_t packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t sim_events = 0;   ///< scheduler callbacks executed
  double cpu_seconds = 0;
  double packets_per_sec = 0;
  std::uint64_t transforms = 0;
  std::uint64_t staleness_bound_cycles = 0;
  std::uint64_t staleness_max_cycles = 0;
  std::uint64_t agg_drained = 0;
  std::vector<std::int64_t> occupancy;      // settled per-slot ground truth
};

core::EventSwitchConfig cfg() {
  core::EventSwitchConfig c;
  c.num_ports = 4;
  c.port_rate_bps = kPortRate;
  c.queue_limits.max_bytes = 1 << 20;
  c.queue_limits.max_packets = 1 << 13;
  return c;
}

/// One self-rescheduling source: `packets` frames of kPacketBytes,
/// round-robining kFlowsPerSource source addresses, sent as line-rate
/// trains of kBurstLen frames separated by idle gaps sized so the three
/// sources together average kUtilization of the egress rate — the
/// microburst arrival shape the app is built for. Scheduling one callback
/// at a time keeps the generator's own event-queue footprint constant, and
/// the per-flow frames are built ONCE up front and copied per send — header
/// encoding is generator overhead that would otherwise dominate both
/// pipelines equally and dilute the dispatch-path difference under test.
void install_source(sim::Scheduler& sched, core::EventSwitch& sw,
                    std::uint16_t port, std::uint64_t packets) {
  auto state = std::make_shared<std::uint64_t>(0);
  auto frames = std::make_shared<std::vector<net::Packet>>();
  for (int f = 0; f < kFlowsPerSource; ++f) {
    const net::Ipv4Address src(10, 0, port, 1 + f);
    frames->push_back(net::make_udp_packet(src, kDst, 1000 + port,
                                           7, kPacketBytes));
  }
  const sim::Time line_gap = sim::Time::nanos(
      static_cast<std::int64_t>(8.0 * kPacketBytes / kPortRate * 1e9));
  // Mean inter-packet time that yields kUtilization/3 per source; the
  // burst compresses kBurstLen packets to line rate, the pause repays the
  // difference.
  const sim::Time mean_gap = sim::Time::nanos(static_cast<std::int64_t>(
      8.0 * kPacketBytes / kPortRate * 3.0 / kUtilization * 1e9));
  const sim::Time pause =
      line_gap + (mean_gap - line_gap) * static_cast<std::int64_t>(kBurstLen);
  auto fire = std::make_shared<std::function<void()>>();
  *fire = [state, frames, packets, port, line_gap, pause, fire, &sched, &sw] {
    if (*state >= packets) {
      return;
    }
    const std::uint32_t n = static_cast<std::uint32_t>((*state)++);
    sw.receive(port, net::Packet((*frames)[n % kFlowsPerSource]));
    const bool end_of_burst = (n + 1) % kBurstLen == 0;
    sched.at(sched.now() + (end_of_burst ? pause : line_gap),
             [fire] { (*fire)(); });
  };
  // Offset the sources slightly so their first frames don't collide on one
  // simulated instant (deterministic either way, just less degenerate).
  sched.at(sim::Time::nanos(10 * port), [fire] { (*fire)(); });
}

RunResult run(const apps::RegisteredProgram& entry, bool optimize,
              std::uint64_t packets_per_source) {
  sim::Scheduler sched;
  core::EventSwitch sw(sched, cfg());

  std::unique_ptr<core::EventProgram> program;
  RunResult r;
  if (optimize) {
    analysis::AnalyzerOptions options;
    options.lint = entry.lint;
    options.model = analysis::find_hardware_model("linerate-tor");
    options.rates = entry.rates;
    const analysis::OptimizationResult opt =
        analysis::optimize_program(entry.name, entry.factory, options);
    if (!opt.feasible || !opt.transformed) {
      std::fprintf(stderr, "optimizer did not transform %s into a feasible "
                           "program\n%s", entry.name.c_str(),
                   opt.format(false).c_str());
      std::exit(2);
    }
    program = opt.optimized_factory();
    sw.set_program(program.get());
    sw.set_dispatch_plan(opt.plan);
    r.transforms = opt.transforms.size();
    for (const analysis::StalenessBound& b : opt.staleness) {
      r.staleness_bound_cycles =
          std::max(r.staleness_bound_cycles, b.bound_cycles);
    }
  } else {
    program = entry.factory();
    sw.set_program(program.get());
  }
  program->visit_aggregated(
      [&sw](core::AggregatedRegister& reg) { sw.register_aggregated(reg); });

  std::uint64_t tx = 0;
  for (std::uint16_t p = 0; p < 4; ++p) {
    sw.connect_tx(p, [&tx](net::Packet) { ++tx; });
  }
  for (const std::uint16_t port : kSourcePorts) {
    install_source(sched, sw, port, packets_per_source);
  }

  // Process CPU time, not wall: the bench is single-threaded, so CPU time
  // is the real per-packet compute cost — and unlike wall it is immune to
  // ambient machine load (a busy CI runner inflates both variants' wall by
  // the same absolute amount, which compresses the ratio because the
  // optimized run is shorter).
  timespec t0{}, t1{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &t0);
  r.sim_events = sched.run();
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &t1);

  program->visit_aggregated([&r](core::AggregatedRegister& reg) {
    r.staleness_max_cycles = reg.staleness_max();
    r.agg_drained = reg.drained();
  });
  sw.settle();

  r.packets = packets_per_source * (sizeof(kSourcePorts) / sizeof(*kSourcePorts));
  r.tx_packets = tx;
  r.cpu_seconds = static_cast<double>(t1.tv_sec - t0.tv_sec) +
                   static_cast<double>(t1.tv_nsec - t0.tv_nsec) * 1e-9;
  r.packets_per_sec = static_cast<double>(r.packets) / r.cpu_seconds;
  auto* mb = dynamic_cast<apps::MicroburstProgram*>(program.get());
  if (mb != nullptr) {
    for (std::size_t s = 0; s < mb->config().num_regs; ++s) {
      r.occupancy.push_back(mb->occupancy(static_cast<std::uint32_t>(s)));
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edp;
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_optimizer.json";
  const std::uint64_t packets_per_source =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 60'000;

  const apps::RegisteredProgram* entry = nullptr;
  for (const auto& e : apps::program_registry()) {
    if (e.name == "microburst-shared") {
      entry = &e;
    }
  }
  if (entry == nullptr) {
    std::fprintf(stderr, "microburst-shared not in the registry\n");
    return 2;
  }

  bench::section(
      "Optimizer: fused physical pipeline vs naive merger dispatch "
      "(paper par.4, Fig. 3)");
  std::printf("Workload: 3 sources (%d flows each, %dB frames, %llu packets "
              "each) offering %.0f%%\nof one 10G egress on "
              "microburst-shared; best of %d runs per pipeline.\n\n",
              kFlowsPerSource, kPacketBytes,
              static_cast<unsigned long long>(packets_per_source),
              kUtilization * 100.0, kRepeats);

  // Best-of-N on CPU time: the simulated work is identical across
  // repeats, so the fastest run is the least-perturbed measurement.
  RunResult naive = run(*entry, /*optimize=*/false, packets_per_source);
  RunResult opt = run(*entry, /*optimize=*/true, packets_per_source);
  for (int rep = 1; rep < kRepeats; ++rep) {
    const RunResult n = run(*entry, /*optimize=*/false, packets_per_source);
    if (n.cpu_seconds < naive.cpu_seconds) {
      naive = n;
    }
    const RunResult o = run(*entry, /*optimize=*/true, packets_per_source);
    if (o.cpu_seconds < opt.cpu_seconds) {
      opt = o;
    }
  }

  const double speedup = opt.packets_per_sec / naive.packets_per_sec;
  bench::TextTable table({"pipeline", "packets", "tx", "sim events",
                          "cpu s", "packets/sec", "transforms",
                          "staleness max/bound (cyc)"});
  table.add_row({"naive (merger-queued)", bench::fmt("%llu", naive.packets),
                 bench::fmt("%llu", naive.tx_packets),
                 bench::fmt("%llu", naive.sim_events),
                 bench::fmt("%.3f", naive.cpu_seconds),
                 bench::fmt("%.3g", naive.packets_per_sec), "0", "-"});
  table.add_row({"optimized (fused)", bench::fmt("%llu", opt.packets),
                 bench::fmt("%llu", opt.tx_packets),
                 bench::fmt("%llu", opt.sim_events),
                 bench::fmt("%.3f", opt.cpu_seconds),
                 bench::fmt("%.3g", opt.packets_per_sec),
                 bench::fmt("%llu", opt.transforms),
                 bench::fmt("%llu/%llu", opt.staleness_max_cycles,
                            opt.staleness_bound_cycles)});
  table.print();
  std::printf("\nSpeedup (optimized / naive): %.2fx (gate: >= 1.20x)\n",
              speedup);

  const bool occupancy_equal = naive.occupancy == opt.occupancy;
  // Drain opportunities recur once per burst cycle (kBurstLen packets at
  // the mean pace); a pending delta can age at most that long before the
  // pause drains it, plus the sustained-load sweep bound itself.
  const double mean_gap_s =
      8.0 * kPacketBytes / kPortRate * 3.0 / kUtilization;
  const std::uint64_t burst_cycle_budget =
      opt.staleness_bound_cycles +
      static_cast<std::uint64_t>(
          kBurstLen * mean_gap_s *
          analysis::find_hardware_model("linerate-tor")->clock_hz);
  const bool staleness_sane =
      opt.agg_drained == 0 || opt.staleness_max_cycles <= burst_cycle_budget;

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"optimizer\",\n"
       << "  \"app\": \"microburst-shared\",\n"
       << "  \"target\": \"linerate-tor\",\n"
       << "  \"packets\": " << naive.packets << ",\n"
       << "  \"naive_packets_per_sec\": "
       << bench::fmt("%.0f", naive.packets_per_sec) << ",\n"
       << "  \"optimized_packets_per_sec\": "
       << bench::fmt("%.0f", opt.packets_per_sec) << ",\n"
       << "  \"speedup\": " << bench::fmt("%.3f", speedup) << ",\n"
       << "  \"transforms\": " << opt.transforms << ",\n"
       << "  \"staleness_bound_cycles\": " << opt.staleness_bound_cycles
       << ",\n"
       << "  \"staleness_max_cycles\": " << opt.staleness_max_cycles << ",\n"
       << "  \"agg_drained\": " << opt.agg_drained << ",\n"
       << "  \"occupancy_equal\": " << (occupancy_equal ? "true" : "false")
       << "\n}\n";
  std::printf("wrote %s\n", json_path.c_str());

  bool ok = true;
  if (!occupancy_equal) {
    std::fprintf(stderr, "FAIL: settled occupancy diverged between naive "
                         "and optimized runs\n");
    ok = false;
  }
  if (!staleness_sane) {
    std::fprintf(stderr,
                 "FAIL: measured staleness %llu cycles exceeds the "
                 "bound+burst budget %llu (predicted sustained bound %llu)\n",
                 static_cast<unsigned long long>(opt.staleness_max_cycles),
                 static_cast<unsigned long long>(burst_cycle_budget),
                 static_cast<unsigned long long>(opt.staleness_bound_cycles));
    ok = false;
  }
  if (speedup < 1.2) {
    std::fprintf(stderr, "FAIL: fused pipeline at %.2fx naive, gate is "
                         "1.20x\n", speedup);
    ok = false;
  }
  return ok ? 0 : 1;
}
