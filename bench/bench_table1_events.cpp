// T1 — reproduces paper Table 1: the set of useful data-plane events.
//
// For each of the thirteen event kinds, this harness triggers the event on
// a running SUME Event Switch model, verifies the corresponding handler
// fired, and reports the measured delivery latency (event observed at its
// architectural source -> handler executed in a pipeline slot). The paper's
// table is qualitative; our reproduction adds the delivery-cost column the
// simulation makes measurable.
#include <array>
#include <cstdio>

#include "common.hpp"
#include "core/event_switch.hpp"
#include "net/flow.hpp"
#include "net/packet_builder.hpp"

namespace {

using namespace edp;

/// Program that records handler invocations per event kind.
class ProbeProgram : public core::EventProgram {
 public:
  std::array<std::uint64_t, core::kNumEventKinds> fired{};

  void mark(core::EventKind k) { ++fired[static_cast<std::size_t>(k)]; }

  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override {
    mark(core::EventKind::kIngressPacket);
    phv.std_meta.egress_port = 1;
    // Trigger a recirculation exactly once to exercise that event.
    if (!recirculated_once_ && phv.udp && phv.udp->dst_port == 7777) {
      phv.std_meta.recirculate = true;
      recirculated_once_ = true;
    }
    // Raise a user event from the first packet.
    if (!user_raised_) {
      user_raised_ = true;
      ctx.raise_user_event(core::UserEventData{42, {1, 2, 3, 4}});
    }
  }
  void on_egress(pisa::Phv&, core::EventContext&) override {
    mark(core::EventKind::kEgressPacket);
  }
  void on_recirculate(pisa::Phv& phv, core::EventContext&) override {
    mark(core::EventKind::kRecirculatedPacket);
    phv.std_meta.egress_port = 1;
  }
  void on_generated(pisa::Phv& phv, core::EventContext&) override {
    mark(core::EventKind::kGeneratedPacket);
    phv.std_meta.egress_port = 1;
  }
  void on_transmit(const core::TransmitRecord&, core::EventContext&) override {
    mark(core::EventKind::kPacketTransmitted);
  }
  void on_enqueue(const tm_::EnqueueRecord&, core::EventContext&) override {
    mark(core::EventKind::kEnqueue);
  }
  void on_dequeue(const tm_::DequeueRecord&, core::EventContext&) override {
    mark(core::EventKind::kDequeue);
  }
  void on_overflow(const tm_::DropRecord&, core::EventContext&) override {
    mark(core::EventKind::kBufferOverflow);
  }
  void on_underflow(const tm_::UnderflowRecord&,
                    core::EventContext&) override {
    mark(core::EventKind::kBufferUnderflow);
  }
  void on_timer(const core::TimerEventData&, core::EventContext&) override {
    mark(core::EventKind::kTimer);
  }
  void on_control(const core::ControlEventData&,
                  core::EventContext&) override {
    mark(core::EventKind::kControlPlane);
  }
  void on_link_status(const core::LinkStatusEventData&,
                      core::EventContext&) override {
    mark(core::EventKind::kLinkStatus);
  }
  void on_user(const core::UserEventData&, core::EventContext&) override {
    mark(core::EventKind::kUser);
  }

 private:
  bool recirculated_once_ = false;
  bool user_raised_ = false;
};

}  // namespace

int main() {
  bench::section(
      "T1: Table 1 — data-plane events supported by the event-driven "
      "architecture");

  sim::Scheduler sched;
  core::EventSwitchConfig cfg;
  cfg.num_ports = 2;
  cfg.port_rate_bps = 10e9;
  cfg.egress_pipeline = true;  // exercise egress packet events as well
  // Tiny queue so an overflow is easy to trigger.
  cfg.queue_limits.max_packets = 4;
  core::EventSwitch sw(sched, cfg);
  ProbeProgram prog;
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});
  // Opt in to the two off-by-default kinds.
  sw.enable_event(core::EventKind::kPacketTransmitted, true);
  sw.enable_event(core::EventKind::kBufferUnderflow, true);

  // -- trigger every event source --------------------------------------------
  // Packets (ingress, enqueue, dequeue, egress, transmit) + recirculation.
  for (int i = 0; i < 20; ++i) {
    sched.at(sim::Time::micros(1 + i), [&sw, i] {
      sw.receive(0, net::make_udp_packet(net::Ipv4Address(10, 0, 0, 1),
                                         net::Ipv4Address(10, 0, 1, 1), 100,
                                         i == 0 ? 7777 : 2000, 300));
    });
  }
  // Overflow: a burst that exceeds the 4-packet queue while the port is
  // still serializing.
  sched.at(sim::Time::micros(30), [&sw] {
    for (int i = 0; i < 12; ++i) {
      sw.receive(0, net::make_udp_packet(net::Ipv4Address(10, 0, 0, 2),
                                         net::Ipv4Address(10, 0, 1, 1), 5, 6,
                                         1500));
    }
  });
  // Underflow: poll an empty port directly (the transmit loop normally
  // guards against this; the TM fires the event when polled dry).
  sched.at(sim::Time::micros(50), [&sw, &sched] {
    (void)sw.traffic_manager().dequeue(0, sched.now());
  });
  // Timer.
  sw.set_periodic_timer(sim::Time::micros(20), 0xbeef);
  // Generated packets.
  core::PacketGenerator::Config g;
  g.packet_template =
      net::make_udp_packet(net::Ipv4Address(1, 1, 1, 1),
                           net::Ipv4Address(2, 2, 2, 2), 9, 9, 64);
  g.period = sim::Time::micros(25);
  sw.add_generator(g);
  // Link status change on the *unused* receive port.
  sched.at(sim::Time::micros(60), [&sw] { sw.set_link_status(0, false); });
  sched.at(sim::Time::micros(70), [&sw] { sw.set_link_status(0, true); });
  // Control-plane triggered.
  sched.at(sim::Time::micros(80), [&sw] {
    core::ControlEventData d;
    d.opcode = 7;
    sw.control_event(d);
  });

  sched.run_until(sim::Time::millis(1));

  // -- report -------------------------------------------------------------------
  bench::TextTable table({"Data-Plane Event", "supported", "handler runs",
                          "mean delivery wait", "max delivery wait",
                          "dropped"});
  for (std::size_t k = 0; k < core::kNumEventKinds; ++k) {
    const auto kind = static_cast<core::EventKind>(k);
    const auto& ms = sw.merger().kind_stats(kind);
    const bool packet_kind = ms.submitted == 0;  // packet events skip FIFOs
    table.add_row(
        {std::string(core::to_string(kind)),
         prog.fired[k] > 0 ? "yes" : "NO",
         bench::fmt("%llu", static_cast<unsigned long long>(prog.fired[k])),
         packet_kind ? "(pipeline slot)" : ms.wait_mean().to_string(),
         packet_kind ? "-" : ms.wait_max.to_string(),
         bench::fmt("%llu", static_cast<unsigned long long>(ms.dropped))});
  }
  table.print();

  std::printf(
      "\nAll %zu event kinds of paper Table 1 fire and reach program "
      "handlers.\n",
      core::kNumEventKinds);
  std::printf(
      "Merger slots: %llu total, %llu with packets, %llu carrier-only; "
      "%llu events piggybacked, %llu on carriers.\n",
      static_cast<unsigned long long>(sw.merger().slots_total()),
      static_cast<unsigned long long>(sw.merger().slots_with_packet()),
      static_cast<unsigned long long>(sw.merger().slots_carrier()),
      static_cast<unsigned long long>(sw.merger().events_piggybacked()),
      static_cast<unsigned long long>(sw.merger().events_on_carrier()));

  // Exit nonzero if any kind failed to fire, so CI catches regressions.
  for (std::size_t k = 0; k < core::kNumEventKinds; ++k) {
    if (prog.fired[k] == 0) {
      std::printf(
          "ERROR: event kind %s never fired\n",
          std::string(core::to_string(static_cast<core::EventKind>(k)))
              .c_str());
      return 1;
    }
  }
  return 0;
}
