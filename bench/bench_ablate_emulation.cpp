// A4 — reproduces the paper's §6 observation about today's hardware:
// "Tofino also supports packet recirculation, which can emulate dequeue
// events that trigger the ingress pipeline. However, supporting all of the
// events listed in Table 1 requires changes to existing hardware."
//
// Both architectures maintain the same per-flow buffer occupancy:
//
//   baseline + recirculation : the egress pipeline clones every departing
//       packet back to ingress (the Tofino recirc-port trick); the clone's
//       arrival IS the dequeue signal. Cost: one extra pipeline slot per
//       packet — recirculation competes with ingress traffic for slots.
//   event architecture       : dequeue events ride the slot metadata bus
//       for free.
//
// Sweep offered load at a tight pipeline clock (1.05x the packet rate):
// the emulation works at low load and collapses as load approaches line
// rate (clones and packets fight for slots -> backlog drops and lost
// dequeue signals), while the event architecture tracks exactly at every
// load. This is the quantified version of "requires changes to existing
// hardware".
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/event_switch.hpp"
#include "net/flow.hpp"
#include "net/packet_builder.hpp"

namespace {

using namespace edp;

constexpr double kRate = 10e9;
constexpr std::size_t kPktSize = 500;
constexpr std::size_t kFlows = 64;

/// Baseline occupancy tracker: +len at ingress; egress clones every packet
/// back; the clone's re-arrival at ingress is the dequeue (-len), then the
/// clone dies.
class EmulatedOccupancy : public core::EventProgram {
 public:
  EmulatedOccupancy() : occ_(kFlows, 0) {}

  void on_ingress(pisa::Phv& phv, core::EventContext&) override {
    if (!phv.ipv4) {
      phv.std_meta.drop = true;
      return;
    }
    const std::size_t f =
        net::flow_id_src_dst(phv.ipv4->src, phv.ipv4->dst) % kFlows;
    occ_[f] += phv.std_meta.packet_length;
    phv.std_meta.egress_port = 1;
  }
  void on_recirculate(pisa::Phv& phv, core::EventContext&) override {
    if (phv.ipv4) {
      const std::size_t f =
          net::flow_id_src_dst(phv.ipv4->src, phv.ipv4->dst) % kFlows;
      occ_[f] -= phv.std_meta.packet_length;
      ++dequeue_signals_;
    }
    phv.std_meta.drop = true;  // the clone has served its purpose
  }
  void on_egress(pisa::Phv& phv, core::EventContext&) override {
    phv.std_meta.recirc_clone = true;  // every departure signals back
  }

  std::int64_t occupancy(std::size_t f) const { return occ_[f]; }
  std::int64_t total_occ() const {
    std::int64_t t = 0;
    for (const auto v : occ_) {
      t += v;
    }
    return t;
  }
  std::uint64_t dequeue_signals() const { return dequeue_signals_; }

 private:
  std::vector<std::int64_t> occ_;
  std::uint64_t dequeue_signals_ = 0;
};

/// Event-architecture tracker: the §2 pattern, dequeue events on the bus.
class EventOccupancy : public core::EventProgram {
 public:
  EventOccupancy() : occ_(kFlows, 0) {}

  void on_ingress(pisa::Phv& phv, core::EventContext&) override {
    if (!phv.ipv4) {
      phv.std_meta.drop = true;
      return;
    }
    const std::uint32_t flow =
        net::flow_id_src_dst(phv.ipv4->src, phv.ipv4->dst);
    set_enq_meta(phv, 0, flow);
    set_enq_meta(phv, 1, phv.std_meta.packet_length);
    set_deq_meta(phv, 0, flow);
    set_deq_meta(phv, 1, phv.std_meta.packet_length);
    phv.std_meta.egress_port = 1;
  }
  void on_enqueue(const tm_::EnqueueRecord& e, core::EventContext&) override {
    occ_[e.enq_meta[0] % kFlows] +=
        static_cast<std::int64_t>(e.enq_meta[1]);
  }
  void on_dequeue(const tm_::DequeueRecord& e, core::EventContext&) override {
    occ_[e.deq_meta[0] % kFlows] -=
        static_cast<std::int64_t>(e.deq_meta[1]);
    ++dequeue_signals_;
  }

  std::int64_t total_occ() const {
    std::int64_t t = 0;
    for (const auto v : occ_) {
      t += v;
    }
    return t;
  }
  std::uint64_t dequeue_signals() const { return dequeue_signals_; }

 private:
  std::vector<std::int64_t> occ_;
  std::uint64_t dequeue_signals_ = 0;
};

struct Result {
  double tx_gbps = 0;
  std::uint64_t pkt_drops = 0;       // merger backlog (pipeline overload)
  std::uint64_t dequeue_signals = 0;
  std::uint64_t packets = 0;
  std::int64_t residual_occ = 0;     // should be 0 after full drain
  double slots_per_packet = 0;
};

template <typename Program>
Result run(bool event_arch, double load, Program& prog) {
  sim::Scheduler sched;
  core::EventSwitchConfig cfg;
  cfg.num_ports = 2;
  cfg.port_rate_bps = kRate;
  cfg.event_architecture = event_arch;
  cfg.egress_pipeline = !event_arch;  // emulation needs the egress stage
  // Tight clock: 1.05 slots per line-rate packet.
  const sim::Time pkt_time = sim::serialization_time(kPktSize, kRate);
  cfg.merger.cycle_time = sim::Time(static_cast<std::int64_t>(
      static_cast<double>(pkt_time.ps()) / 1.05));
  cfg.queue_limits.max_bytes = 1 << 20;
  cfg.queue_limits.max_packets = 1 << 14;
  core::EventSwitch sw(sched, cfg);
  sw.set_program(&prog);
  sw.connect_tx(1, [](net::Packet) {});

  const sim::Time duration = sim::Time::millis(5);
  const sim::Time interval = sim::Time::from_seconds(
      static_cast<double>(kPktSize) * 8.0 / (kRate * load));
  const auto count =
      static_cast<std::int64_t>(duration.ps() / interval.ps());
  for (std::int64_t i = 0; i < count; ++i) {
    sched.at(sim::Time(i * interval.ps()), [&sw, i] {
      const net::Ipv4Address src(
          0x0a000000U + static_cast<std::uint32_t>(i % kFlows));
      sw.receive(0, net::make_udp_packet(src, net::Ipv4Address(10, 1, 0, 1),
                                         1, 2, kPktSize));
    });
  }
  sched.run_until(duration + sim::Time::millis(1));

  Result r;
  r.packets = static_cast<std::uint64_t>(count);
  r.tx_gbps = static_cast<double>(sw.counters().tx_bytes) * 8.0 /
              duration.as_seconds() / 1e9;
  r.pkt_drops = sw.merger().packet_backlog_drops() +
                sw.traffic_manager().drops_total();
  r.dequeue_signals = prog.dequeue_signals();
  r.residual_occ = prog.total_occ();
  r.slots_per_packet = static_cast<double>(sw.merger().slots_total()) /
                       static_cast<double>(count);
  return r;
}

}  // namespace

int main() {
  using namespace edp;
  bench::section(
      "A4: emulating dequeue events via recirculation (paper §6, Tofino) "
      "vs native events");
  std::printf(
      "Per-flow occupancy tracking; 500B packets at 10G; tight pipeline "
      "clock (1.05 slots per\nline-rate packet); 5 ms per cell. The "
      "emulation clones every departing packet back through\nthe "
      "pipeline.\n");

  bench::TextTable table({"load", "arch", "slots/pkt", "tx Gb/s",
                          "pkt drops", "deq signals seen",
                          "residual occupancy (B)"});
  bool shape_ok = true;
  for (const double load : {0.3, 0.5, 0.9, 1.0}) {
    EventOccupancy ev_prog;
    const Result ev = run(true, load, ev_prog);
    EmulatedOccupancy em_prog;
    const Result em = run(false, load, em_prog);
    table.add_row(
        {bench::fmt("%.0f%%", load * 100), "event-driven",
         bench::fmt("%.2f", ev.slots_per_packet),
         bench::fmt("%.2f", ev.tx_gbps),
         bench::fmt("%llu", static_cast<unsigned long long>(ev.pkt_drops)),
         bench::fmt("%llu/%llu",
                    static_cast<unsigned long long>(ev.dequeue_signals),
                    static_cast<unsigned long long>(ev.packets)),
         bench::fmt("%lld", static_cast<long long>(ev.residual_occ))});
    table.add_row(
        {bench::fmt("%.0f%%", load * 100), "baseline + recirc emulation",
         bench::fmt("%.2f", em.slots_per_packet),
         bench::fmt("%.2f", em.tx_gbps),
         bench::fmt("%llu", static_cast<unsigned long long>(em.pkt_drops)),
         bench::fmt("%llu/%llu",
                    static_cast<unsigned long long>(em.dequeue_signals),
                    static_cast<unsigned long long>(em.packets)),
         bench::fmt("%lld", static_cast<long long>(em.residual_occ))});
    // Event architecture: exact state and no packet loss at EVERY load.
    // (At low load its events ride carrier frames in otherwise-idle
    // slots, so slots/pkt can read 2.0 there — spare capacity, not cost;
    // what matters is that it converges to ~1 when slots get scarce.)
    shape_ok = shape_ok && ev.residual_occ == 0 && ev.pkt_drops == 0;
    if (load >= 0.9) {
      shape_ok = shape_ok && ev.slots_per_packet <= 1.25;
    }
    // Emulation: works at low load (~2 mandatory slots/pkt); collapses
    // near line rate.
    if (load <= 0.5) {
      shape_ok = shape_ok && em.residual_occ == 0 &&
                 em.slots_per_packet > 1.8;
    } else if (load >= 1.0) {
      shape_ok = shape_ok &&
                 (em.pkt_drops > 0 || em.residual_occ != 0) &&
                 em.tx_gbps < ev.tx_gbps * 0.9;
    }
  }
  table.print();

  std::printf(
      "\nThe recirculation trick works — while the pipeline has a slot to\n"
      "spare for every clone (a mandatory ~2 slots/packet). As offered\n"
      "load approaches line rate the clones and the packets fight for\n"
      "slots: throughput collapses (~5.7 vs 10 Gb/s), packets are lost at\n"
      "the merger, dequeue signals vanish, and the occupancy state is\n"
      "left permanently wrong (nonzero residual). Native events ride the\n"
      "metadata bus — at high load 1 slot/packet, exact state, full line\n"
      "rate. (At low load the event architecture's extra slots are idle-\n"
      "capacity carrier frames, not lost bandwidth.) This is the paragraph\n"
      "the paper ends §6 with: 'supporting all of the events ... requires\n"
      "changes to existing hardware'.\n");
  std::printf("\nShape check: %s\n", shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 1;
}
