// A1 — ablation of the §4 design decision: multi-ported shared state vs
// single-ported aggregated state.
//
// The same event stream (ingress read + enqueue add + dequeue subtract per
// packet, several operations landing in the same clock cycle) drives both
// realizations:
//
//   shared_register  : one array with a port per thread. Zero staleness,
//                      but the memory must physically provide 3 ports —
//                      we also show what happens if it only has 1 or 2
//                      (overcommitted cycles = unrealizable design).
//   aggregated (Fig3): three single-ported arrays + idle-cycle drains.
//                      Realizable at any line rate; pays bounded staleness
//                      and 3x array count.
//
// Sweep the idle-cycle fraction (spare pipeline bandwidth) to expose the
// §4 trade-off: "packet processing bandwidth versus accuracy".
#include <cstdio>

#include "common.hpp"
#include "core/aggregated_register.hpp"
#include "core/shared_register.hpp"
#include "sim/random.hpp"

namespace {

using namespace edp;

constexpr std::size_t kSize = 256;
constexpr int kPackets = 200'000;

struct AggResult {
  double staleness_mean = 0;
  std::uint64_t staleness_max = 0;
  std::size_t backlog_max = 0;
  std::uint64_t lost_updates = 0;
  std::size_t bytes = 0;
};

/// Drive the aggregated register: per packet one ingress read + one
/// enqueue add + one dequeue add; `idle_per_packet` spare cycles follow
/// each packet cycle.
AggResult run_aggregated(double idle_per_packet) {
  core::AggregatedRegister reg("qsize", kSize);
  sim::Random rng(42);
  std::uint64_t cycle = 0;
  double idle_credit = 0;
  for (int p = 0; p < kPackets; ++p) {
    ++cycle;
    const std::size_t flow = rng.uniform(kSize);
    (void)reg.packet_read(flow, cycle);            // ingress thread
    reg.enqueue_add(flow, 1000, cycle);            // enqueue thread
    reg.dequeue_add(rng.uniform(kSize), -1000, cycle);  // dequeue thread
    idle_credit += idle_per_packet;
    while (idle_credit >= 1.0) {
      ++cycle;
      reg.drain(cycle, 1);
      idle_credit -= 1.0;
    }
  }
  AggResult r;
  r.staleness_mean = reg.staleness_mean();
  r.staleness_max = reg.staleness_max();
  r.backlog_max = reg.backlog_max();
  r.lost_updates = 0;  // aggregation coalesces; nothing is ever lost
  r.bytes = reg.bytes();
  return r;
}

struct SharedResult {
  std::uint64_t overcommitted_cycles = 0;
  std::size_t bytes = 0;
};

SharedResult run_shared(int ports) {
  core::SharedRegister<std::int64_t> reg("qsize", kSize, ports);
  sim::Random rng(42);
  std::uint64_t cycle = 0;
  for (int p = 0; p < kPackets; ++p) {
    ++cycle;
    const std::size_t flow = rng.uniform(kSize);
    std::int64_t v;
    reg.read(flow, v, core::ThreadId::kIngress, cycle);
    reg.rmw(flow, [](std::int64_t x) { return x + 1000; },
            core::ThreadId::kEnqueue, cycle);
    reg.rmw(rng.uniform(kSize), [](std::int64_t x) { return x - 1000; },
            core::ThreadId::kDequeue, cycle);
  }
  return SharedResult{reg.overcommitted_cycles(), reg.bytes()};
}

}  // namespace

int main() {
  using namespace edp;
  bench::section(
      "A1: shared multi-ported state vs aggregated single-ported state "
      "(paper §4)");
  std::printf(
      "Workload: %d packets, each cycle carries 1 ingress read + 1 enqueue "
      "add + 1 dequeue add.\n\n",
      kPackets);

  bench::TextTable shared({"realization", "memory ports", "array bytes",
                           "unrealizable cycles", "staleness"});
  for (const int ports : {3, 2, 1}) {
    const SharedResult r = run_shared(ports);
    shared.add_row(
        {"shared_register", bench::fmt("%d", ports),
         bench::fmt("%zu", r.bytes),
         bench::fmt("%llu",
                    static_cast<unsigned long long>(r.overcommitted_cycles)),
         "0 (always exact)"});
  }
  shared.print();
  std::printf(
      "3 ports: exact and realizable only at low line rates (the paper's\n"
      "WiFi-AP case). With fewer physical ports the same program demands\n"
      "cycles the memory cannot serve — every 'unrealizable cycle' above\n"
      "is a design that cannot be built.\n");

  bench::section("Aggregated realization: staleness vs spare bandwidth");
  bench::TextTable agg({"idle cycles / packet", "staleness mean (cyc)",
                        "staleness max (cyc)", "backlog max",
                        "updates lost", "array bytes (3x)"});
  bool shape_ok = true;
  double prev_mean = 1e18;
  for (const double idle : {0.5, 1.0, 2.0, 3.0, 4.0}) {
    const AggResult r = run_aggregated(idle);
    agg.add_row(
        {bench::fmt("%.1f", idle), bench::fmt("%.1f", r.staleness_mean),
         bench::fmt("%llu", static_cast<unsigned long long>(r.staleness_max)),
         bench::fmt("%zu", r.backlog_max),
         bench::fmt("%llu", static_cast<unsigned long long>(r.lost_updates)),
         bench::fmt("%zu", r.bytes)});
    // Staleness must shrink monotonically with spare bandwidth (>= 2
    // idle/packet is the break-even for 2 event updates per packet).
    if (idle >= 2.0) {
      shape_ok = shape_ok && r.staleness_mean <= prev_mean;
      prev_mean = r.staleness_mean;
    }
  }
  agg.print();

  std::printf(
      "\nThe §4 trade-off, quantified: below 2 idle cycles/packet (the\n"
      "update rate) backlog grows and state lags; above it staleness is\n"
      "bounded and shrinks with headroom. Memory is single-ported\n"
      "everywhere — realizable at any line rate — at 3x array cost and\n"
      "bounded staleness instead of multi-port area.\n");
  std::printf("\nShape check: %s\n", shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 1;
}
