// T3 — reproduces paper Table 3: "The cost of adding support for events in
// the SUME Event Switch architecture. The increase in resources are shown
// as a percentage of the total resources available in a Xilinx Virtex-7
// FPGA."  Paper values: Lookup Tables +0.5%, Flip Flops +0.4%, BRAM +2.0%.
//
// Since we cannot synthesize, the numbers come from the documented area
// model (core/resource_model.*) over the same structures the prototype
// added; the itemized breakdown below makes the model auditable. What must
// reproduce is the SHAPE: all three costs are small, and BRAM is the
// largest (event FIFOs + the packet generator's template memory dominate).
#include <cstdio>

#include "common.hpp"
#include "core/resource_model.hpp"

int main() {
  using namespace edp;
  bench::section("T3: Table 3 — FPGA cost of event support (area model)");

  const auto device = core::DeviceBudget::virtex7_690t();
  const core::EventLogicParams params;  // SUME Event Switch defaults
  const auto items = core::ResourceModel::event_logic_breakdown(params);
  const auto total = core::ResourceModel::event_logic(params);
  const auto pct = core::ResourceModel::percent_of(total, device);

  std::printf("Device: %s (LUT %.0f, FF %.0f, BRAM36 %.0f)\n\n",
              device.name.c_str(), device.luts, device.flip_flops,
              device.bram36);

  bench::TextTable breakdown({"Component", "LUTs", "Flip Flops", "BRAM36"});
  for (const auto& item : items) {
    breakdown.add_row({item.component, bench::fmt("%.0f", item.cost.luts),
                       bench::fmt("%.0f", item.cost.flip_flops),
                       bench::fmt("%.0f", item.cost.bram36)});
  }
  breakdown.add_row({"TOTAL event logic", bench::fmt("%.0f", total.luts),
                     bench::fmt("%.0f", total.flip_flops),
                     bench::fmt("%.0f", total.bram36)});
  breakdown.print();

  bench::section("Regenerated Table 3 (% increase of device totals)");
  bench::TextTable t3({"FPGA Resource", "% Increase (model)",
                       "% Increase (paper)"});
  t3.add_row({"Lookup Tables", bench::fmt("%.1f", pct.luts), "0.5"});
  t3.add_row({"Flip Flops", bench::fmt("%.1f", pct.flip_flops), "0.4"});
  t3.add_row({"Block RAM", bench::fmt("%.1f", pct.bram36), "2.0"});
  t3.print();

  const bool shape_ok = pct.luts < 1.5 && pct.flip_flops < 1.5 &&
                        pct.bram36 <= 3.0 && pct.bram36 > pct.luts &&
                        pct.bram36 > pct.flip_flops;
  std::printf(
      "\nShape check (all costs small; BRAM dominant, ~2%%): %s\n",
      shape_ok ? "HOLDS" : "VIOLATED");

  // Sensitivity: how the BRAM cost scales with the event FIFO depth — the
  // designer's main knob (deeper FIFOs = fewer event drops, more BRAM).
  bench::section("Sensitivity: event FIFO depth vs BRAM cost");
  bench::TextTable sens({"FIFO depth (events)", "BRAM36", "% of device"});
  for (const std::size_t depth : {128u, 256u, 512u, 1024u, 2048u}) {
    core::EventLogicParams p;
    p.fifo_depth = depth;
    const auto cost = core::ResourceModel::event_logic(p);
    sens.add_row({bench::fmt("%zu", depth), bench::fmt("%.0f", cost.bram36),
                  bench::fmt("%.2f", 100.0 * cost.bram36 / device.bram36)});
  }
  sens.print();

  return shape_ok ? 0 : 1;
}
