// C3 — reproduces the paper's §3/§5 network-management claims:
//
//  * "By introducing link status change events, the data plane can
//    immediately respond to link failures [and] autonomously re-route
//    affected flows" (Fast Re-Route student project);
//  * control-plane recovery, by contrast, loses traffic for the whole
//    CP notification + processing round trip;
//  * "timer events allow data-planes to reliably and quickly probe and
//    detect failed neighbors" (Liveness Monitoring student project).
//
// Part 1: diamond topology, primary link fails mid-run; sweep the CP
// channel latency and compare packets lost + recovery time for data-plane
// FRR vs CP-driven reroute.
// Part 2: neighbor liveness detection latency vs probe period.
#include <cstdio>

#include "apps/fast_reroute.hpp"
#include "apps/liveness.hpp"
#include "common.hpp"
#include "core/baseline_switch.hpp"
#include "net/packet_builder.hpp"
#include "topo/control_plane.hpp"
#include "topo/network.hpp"
#include "topo/traffic_gen.hpp"

namespace {

using namespace edp;

constexpr double kFlowRate = 100e6;  // 100 Mb/s, 500B packets -> 25k pps
const sim::Time kFailAt = sim::Time::millis(10);
const sim::Time kRunFor = sim::Time::millis(40);

struct FrrResult {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t lost = 0;
  double recovery_ms = 0;  // failure -> first packet over the backup path
};

/// Build the diamond h0-s0=(s1|s2)=s3-h1 and run with a scheduled failure.
/// `use_events` selects the architecture of s0 (where FRR runs).
FrrResult run_frr(bool use_events, sim::Time cp_latency) {
  sim::Scheduler sched;
  topo::Network net(sched);
  core::EventSwitchConfig c3;
  c3.num_ports = 3;
  core::EventSwitchConfig c2;
  c2.num_ports = 2;
  core::EventSwitchConfig s0_cfg = c3;
  s0_cfg.event_architecture = use_events;
  const auto s0 = net.add_switch(s0_cfg);
  const auto s1 = net.add_switch(c2);
  const auto s2 = net.add_switch(c2);
  const auto s3 = net.add_switch(c3);
  topo::Host::Config h0c;
  h0c.name = "h0";
  h0c.ip = net::Ipv4Address(10, 0, 0, 1);
  topo::Host::Config h1c;
  h1c.name = "h1";
  h1c.ip = net::Ipv4Address(10, 0, 1, 1);
  const auto h0 = net.add_host(h0c);
  const auto h1 = net.add_host(h1c);
  net.connect_host(h0, s0, 0);
  net.connect_host(h1, s3, 0);
  const auto primary = net.connect_switches(s0, 1, s1, 0);
  net.connect_switches(s1, 1, s3, 1);
  net.connect_switches(s0, 2, s2, 0);
  net.connect_switches(s2, 1, s3, 2);

  apps::FrrProgram p0(3);
  p0.add_route(apps::FrrRoute{net::Ipv4Address(10, 0, 1, 0), 1, 2});
  topo::L3Program p1, p2, p3;
  p1.add_route(net::Ipv4Address(10, 0, 1, 0), 24, 1);
  p2.add_route(net::Ipv4Address(10, 0, 1, 0), 24, 1);
  p3.add_route(net::Ipv4Address(10, 0, 1, 0), 24, 0);
  net.sw(s0).set_program(&p0);
  net.sw(s1).set_program(&p1);
  net.sw(s2).set_program(&p2);
  net.sw(s3).set_program(&p3);

  if (!use_events) {
    // Baseline recovery: the MAC interrupt reaches the CP after the channel
    // latency + processing; only then does the CP rewrite the routes.
    const sim::Time cp_reacts_at =
        kFailAt + cp_latency + sim::Time::micros(50);
    sched.at(cp_reacts_at, [&p0] { p0.control_set_port_down(1, true); });
  }

  topo::CbrGenerator::Config gc;
  gc.flow.src = net.host(h0).ip();
  gc.flow.dst = net.host(h1).ip();
  gc.flow.packet_size = 500;
  gc.rate_bps = kFlowRate;
  gc.stop = kRunFor;
  topo::CbrGenerator gen(sched, net.host(h0), gc);
  gen.start();

  net.link(primary).fail_at(kFailAt);

  // Recovery time: first transmit on s2 (the backup path) after failure.
  sim::Time first_backup = sim::Time::zero();
  net.sw(s2).connect_tx(1, [&](net::Packet p) {
    if (first_backup == sim::Time::zero() && sched.now() >= kFailAt) {
      first_backup = sched.now();
    }
    // Forward onward to s3 (re-wire: connect_tx replaced the Network link
    // hookup, so deliver manually).
    net.sw(s3).receive(2, std::move(p));
  });

  net.run_until(kRunFor + sim::Time::millis(20));
  FrrResult r;
  r.sent = gen.sent();
  r.received = net.host(h1).rx_packets();
  r.lost = r.sent - r.received;
  r.recovery_ms = first_backup == sim::Time::zero()
                      ? -1.0
                      : (first_backup - kFailAt).as_millis();
  return r;
}

}  // namespace

int main() {
  using namespace edp;
  bench::section(
      "C3 (part 1): Fast Re-Route — link-status events vs control-plane "
      "recovery");
  std::printf(
      "Diamond topology, 100 Mb/s flow (25k pps), primary link fails at "
      "t=10ms.\n");

  bench::TextTable table({"architecture", "CP latency", "packets lost",
                          "loss (ms of traffic)", "recovery (ms)"});
  const FrrResult ev = run_frr(/*use_events=*/true, sim::Time::zero());
  table.add_row({"event-driven FRR", "n/a",
                 bench::fmt("%llu", static_cast<unsigned long long>(ev.lost)),
                 bench::fmt("%.3f", static_cast<double>(ev.lost) / 25.0),
                 bench::fmt("%.3f", ev.recovery_ms)});
  bool shape_ok = true;
  std::uint64_t prev_lost = ev.lost;
  for (const auto lat_us : {100, 500, 1000, 5000, 10000}) {
    const FrrResult cp =
        run_frr(/*use_events=*/false, sim::Time::micros(lat_us));
    table.add_row(
        {"baseline + CP reroute", bench::fmt("%d us", lat_us),
         bench::fmt("%llu", static_cast<unsigned long long>(cp.lost)),
         bench::fmt("%.3f", static_cast<double>(cp.lost) / 25.0),
         bench::fmt("%.3f", cp.recovery_ms)});
    shape_ok = shape_ok && cp.lost >= prev_lost && cp.lost > ev.lost;
    prev_lost = cp.lost;
  }
  table.print();
  std::printf(
      "\nData-plane FRR loses only the packets already committed to the\n"
      "dead link; CP-driven recovery loses ~latency x rate, growing "
      "linearly.\n");

  // ---- part 2: liveness detection -------------------------------------------
  bench::section(
      "C3 (part 2): data-plane liveness monitoring — detection latency vs "
      "probe period");
  bench::TextTable live({"probe period", "dead_after", "detect latency (ms)",
                         "notices", "CP involved"});
  for (const auto period_us : {200, 500, 1000, 5000}) {
    sim::Scheduler sched;
    core::EventSwitchConfig cfg;
    cfg.num_ports = 3;
    core::EventSwitch a(sched, cfg);
    core::EventSwitch b(sched, cfg);
    bool wire_up = true;
    a.connect_tx(1, [&](net::Packet p) {
      if (wire_up) {
        b.receive(1, std::move(p));
      }
    });
    b.connect_tx(1, [&](net::Packet p) {
      if (wire_up) {
        a.receive(1, std::move(p));
      }
    });
    apps::LivenessConfig lc;
    lc.self_id = 1;
    lc.monitored_ports = {1};
    lc.probe_period = sim::Time::micros(period_us);
    lc.check_period = sim::Time::micros(period_us);
    lc.dead_after = sim::Time::micros(3 * period_us + period_us / 2);
    lc.monitor_port = 2;
    apps::LivenessProgram pa(lc);
    apps::LivenessConfig lcb = lc;
    lcb.self_id = 2;
    apps::LivenessProgram pb(lcb);
    a.set_program(&pa);
    b.set_program(&pb);
    int notices = 0;
    a.connect_tx(2, [&](net::Packet) { ++notices; });
    b.connect_tx(2, [](net::Packet) {});

    const sim::Time fail = sim::Time::millis(20);
    sched.at(fail, [&wire_up] { wire_up = false; });
    sched.run_until(fail + sim::Time::millis(50));
    const double latency_ms =
        pa.failure_detected_at(0) > sim::Time::zero()
            ? (pa.failure_detected_at(0) - fail).as_millis()
            : -1.0;
    live.add_row({bench::fmt("%d us", period_us),
                  lc.dead_after.to_string(), bench::fmt("%.3f", latency_ms),
                  bench::fmt("%d", notices), "no (pure data plane)"});
    shape_ok = shape_ok && latency_ms > 0 &&
               latency_ms <= (lc.dead_after + lc.check_period).as_millis() +
                                 0.5;
  }
  live.print();
  std::printf(
      "\nDetection latency tracks dead_after (~3.5 probe periods) with no\n"
      "control-plane involvement; notifications go straight to the "
      "monitor.\n");
  std::printf("\nShape check: %s\n", shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 1;
}
