// Scaling harness for the sharded parallel runtime (docs/RUNTIME.md).
//
// Workload: an 8-switch leaf-spine fabric (4 leaves x 4 spines), 8 hosts,
// all-to-all Poisson traffic arriving as storm bursts — kBursts ON windows
// of kBurstSpan separated by quiet gaps, the scenario-engine pattern
// (PR 6) and the paper's motivating shape: activity is episodic, so an
// event-driven runtime should pay per event, not per polling tick. The old
// runtime barriered once per global-min lookahead (2us) no matter what,
// burning 500 windows per simulated ms even while the fabric was silent;
// the adaptive windows skip straight across the gaps. The same topo::Spec
// is executed with 1, 2 and 4 workers; for each worker count we report
// wall time, aggregate
// events/sec, synchronization rounds (windows) per simulated millisecond
// and the plan's cut fraction, and we verify the result digest is
// bit-identical to the 1-worker run (the determinism guarantee the runtime
// is built around — see tests/test_runtime.cpp for the seed-sweep property
// test).
//
// The perf gate is core-aware (the hw_threads field in the JSON makes the
// branch auditable):
//   * >= 4 hardware threads: 4 workers must beat 1 worker by >= 1.5x —
//     multi-worker runs must WIN when cores exist;
//   * fewer (e.g. the 1-thread CI container): wall time cannot tell
//     parallelism anything, so the gate falls back to determinism plus the
//     overhead bounds the adaptive-window rework established: windows per
//     simulated ms must stay >= 3x below the old global-min-lookahead
//     baseline (span / 2us cut delay = 500 windows/ms — the old runtime's
//     window count is workload-independent, so the constant is exact), and
//     the 4-worker run may cost at most 1.2x the 1-worker run.
//
// Results are also written as JSON (default ./BENCH_runtime.json, or
// argv[1]) to continue the perf trajectory across PRs.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "net/packet.hpp"
#include "runtime/parallel_runtime.hpp"
#include "topo/routing.hpp"
#include "topo/spec.hpp"
#include "topo/traffic_gen.hpp"

namespace {

using namespace edp;
using net::Ipv4Address;

constexpr std::size_t kLeaves = 4;
constexpr std::size_t kSpines = 4;
constexpr std::size_t kHostsPerLeaf = 2;
constexpr auto kWarmSpan = sim::Time::millis(2);  ///< untimed pool warmup
constexpr auto kSpan = sim::Time::millis(20);
constexpr std::uint64_t kSeed = 42;
// Storm-burst schedule: ON for kBurstSpan at each multiple of kBurstPeriod.
constexpr std::size_t kBursts = 4;
constexpr auto kBurstPeriod = sim::Time::millis(5);
constexpr auto kBurstSpan = sim::Time::micros(1500);

// The pre-adaptive-lookahead runtime barriered once per global minimum cut
// delay: 2us fabric links -> 500 windows per simulated millisecond, no
// matter what the event population looked like. The adaptive windows must
// hold a >= 3x improvement on this workload.
constexpr double kBaselineWindowsPerSimMs = 500.0;
constexpr double kWindowsImprovementGate = 3.0;
// On a machine that cannot run the workers in parallel at all, the 4-worker
// run may cost at most this factor over the 1-worker run (the old runtime
// sat at ~2.9x).
constexpr double kOversubscribedWallFactor = 1.2;
// With >= 4 hardware threads, 4 workers must actually win.
constexpr double kParallelSpeedupGate = 1.5;

topo::Spec make_spec() {
  topo::Spec spec;
  for (std::size_t l = 0; l < kLeaves; ++l) {
    core::EventSwitchConfig c;
    c.name = "leaf" + std::to_string(l);
    c.num_ports = static_cast<std::uint16_t>(kHostsPerLeaf + kSpines);
    spec.add_switch(c);
  }
  for (std::size_t s = 0; s < kSpines; ++s) {
    core::EventSwitchConfig c;
    c.name = "spine" + std::to_string(s);
    c.num_ports = static_cast<std::uint16_t>(kLeaves);
    spec.add_switch(c);
  }
  topo::Link::Config host_link;
  host_link.delay = sim::Time::nanos(500);
  topo::Link::Config fabric_link;
  fabric_link.delay = sim::Time::micros(2);
  for (std::size_t l = 0; l < kLeaves; ++l) {
    for (std::size_t k = 0; k < kHostsPerLeaf; ++k) {
      topo::Host::Config hc;
      hc.name = "h" + std::to_string(l * kHostsPerLeaf + k);
      hc.ip = Ipv4Address(10, 0, static_cast<std::uint8_t>(l),
                          static_cast<std::uint8_t>(1 + k));
      hc.mac = net::MacAddress::from_u64(0x020000000000ULL + hc.ip.value());
      const auto h = spec.add_host(hc);
      spec.connect_host(h, l, static_cast<std::uint16_t>(k), host_link);
    }
  }
  for (std::size_t l = 0; l < kLeaves; ++l) {
    for (std::size_t s = 0; s < kSpines; ++s) {
      spec.connect_switches(l, static_cast<std::uint16_t>(kHostsPerLeaf + s),
                            kLeaves + s, static_cast<std::uint16_t>(l),
                            fabric_link);
    }
  }
  return spec;
}

std::vector<std::unique_ptr<topo::L3Program>> make_programs() {
  std::vector<std::unique_ptr<topo::L3Program>> progs;
  for (std::size_t l = 0; l < kLeaves; ++l) {
    auto p = std::make_unique<topo::L3Program>();
    for (std::size_t m = 0; m < kLeaves; ++m) {
      for (std::size_t k = 0; k < kHostsPerLeaf; ++k) {
        const Ipv4Address ip(10, 0, static_cast<std::uint8_t>(m),
                             static_cast<std::uint8_t>(1 + k));
        if (m == l) {
          p->add_route(ip, 32, static_cast<std::uint16_t>(k));
        } else {
          // Deterministic spine choice per destination leaf.
          p->add_route(ip, 32,
                       static_cast<std::uint16_t>(kHostsPerLeaf + m % kSpines));
        }
      }
    }
    progs.push_back(std::move(p));
  }
  for (std::size_t s = 0; s < kSpines; ++s) {
    auto p = std::make_unique<topo::L3Program>();
    for (std::size_t m = 0; m < kLeaves; ++m) {
      p->add_route(Ipv4Address(10, 0, static_cast<std::uint8_t>(m), 0), 24,
                   static_cast<std::uint16_t>(m));
    }
    progs.push_back(std::move(p));
  }
  return progs;
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

struct Result {
  std::size_t workers = 0;
  std::size_t pool_threads = 0;  ///< threads actually executing shards
  double wall_ms = 0;
  std::uint64_t events = 0;  ///< timed phase only (warmup excluded)
  std::uint64_t cross_shard = 0;
  std::uint64_t ring_drains = 0;   ///< nonempty burst pops at barriers
  std::uint64_t ring_drained = 0;  ///< messages moved by those bursts
  std::uint64_t windows = 0;       ///< synchronization rounds (whole run)
  double cut_fraction = 0;         ///< cut links / total links in the plan
  std::uint64_t digest = 0;
  double allocations_per_event = 0;  ///< packet-buffer pool misses / event
};

Result run(std::size_t workers) {
  const topo::Spec spec = make_spec();
  runtime::ParallelRuntime rt(spec, topo::plan_shards(spec, workers));
  auto progs = make_programs();
  for (std::size_t i = 0; i < spec.num_switches(); ++i) {
    rt.sw(i).set_program(progs[i].get());
  }
  const std::size_t num_hosts = spec.num_hosts();
  std::vector<std::unique_ptr<topo::PoissonGenerator>> gens;
  for (std::size_t h = 0; h < num_hosts; ++h) {
    for (std::size_t b = 0; b < kBursts; ++b) {
      topo::PoissonGenerator::Config c;
      c.flow.src = rt.host(h).ip();
      c.flow.dst = rt.host((h + 3) % num_hosts).ip();  // mostly cross-leaf
      c.flow.src_port = static_cast<std::uint16_t>(10000 + h);
      c.flow.dst_port = static_cast<std::uint16_t>(20000 + h);
      c.flow.packet_size = 1000;
      c.mean_rate_bps = 500e6;
      c.start = kBurstPeriod * static_cast<std::int64_t>(b);
      c.stop = c.start + kBurstSpan;
      c.seed = (kSeed * 1000 + h) * kBursts + b;
      gens.push_back(std::make_unique<topo::PoissonGenerator>(
          rt.scheduler_of_host(h), rt.host(h), c));
      gens.back()->start();
    }
  }

  // Warmup window (untimed): brings schedulers, queues, and the packet
  // buffer pool to steady-state capacity so the timed phase measures the
  // kernel, not cold-start allocation. Splitting the run is result-neutral
  // (see ParallelRuntime.RepeatedRunUntilMatchesSingleRun).
  rt.run_until(kWarmSpan);
  const std::uint64_t warm_events = rt.total_executed();
  const std::uint64_t allocs_before =
      net::packet_buffer_pool_stats().allocated;

  const auto t0 = std::chrono::steady_clock::now();
  rt.run_until(kSpan);
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs_after =
      net::packet_buffer_pool_stats().allocated;

  Result r;
  r.workers = workers;
  r.pool_threads = rt.num_workers();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.events = rt.total_executed() - warm_events;
  r.cross_shard = rt.cross_shard_messages();
  r.ring_drains = rt.ring_drains();
  r.ring_drained = rt.ring_drained();
  r.windows = rt.windows();
  r.cut_fraction = rt.plan().cut_fraction;
  r.allocations_per_event = static_cast<double>(allocs_after - allocs_before) /
                            static_cast<double>(r.events);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < spec.num_switches(); ++i) {
    const auto& c = rt.sw(i).counters();
    for (std::uint64_t v : {c.rx_packets, c.tx_packets, c.tx_bytes,
                            c.program_drops, c.bad_port_drops}) {
      h = fnv_mix(h, v);
    }
  }
  for (std::size_t i = 0; i < num_hosts; ++i) {
    h = fnv_mix(h, rt.host(i).rx_packets());
    h = fnv_mix(h, rt.host(i).rx_bytes());
  }
  r.digest = h;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_runtime.json";
  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());
  const double sim_ms = kSpan.as_millis();
  std::printf("bench_runtime_scale: %zu-switch leaf-spine, %zu hosts, "
              "%lld ms simulated, %u hw threads\n\n",
              kLeaves + kSpines, kLeaves * kHostsPerLeaf,
              static_cast<long long>(kSpan.ps() / 1'000'000'000), hw_threads);

  std::vector<Result> results;
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    results.push_back(run(workers));
  }

  const Result& base = results.front();
  bool deterministic = true;
  edp::bench::TextTable table(
      {"workers", "threads", "wall ms", "events/sec", "speedup", "cross-shard",
       "windows", "win/sim-ms", "cut frac", "allocs/event", "digest match"});
  for (const Result& r : results) {
    const bool match = r.digest == base.digest;
    deterministic = deterministic && match;
    char buf[64];
    std::vector<std::string> row;
    row.push_back(std::to_string(r.workers));
    row.push_back(std::to_string(r.pool_threads));
    std::snprintf(buf, sizeof buf, "%.1f", r.wall_ms);
    row.push_back(buf);
    std::snprintf(buf, sizeof buf, "%.3g",
                  static_cast<double>(r.events) / (r.wall_ms / 1e3));
    row.push_back(buf);
    std::snprintf(buf, sizeof buf, "%.2fx", base.wall_ms / r.wall_ms);
    row.push_back(buf);
    row.push_back(std::to_string(r.cross_shard));
    row.push_back(std::to_string(r.windows));
    std::snprintf(buf, sizeof buf, "%.1f",
                  static_cast<double>(r.windows) / sim_ms);
    row.push_back(buf);
    std::snprintf(buf, sizeof buf, "%.2f", r.cut_fraction);
    row.push_back(buf);
    std::snprintf(buf, sizeof buf, "%.4f", r.allocations_per_event);
    row.push_back(buf);
    row.push_back(match ? "yes" : "NO");
    table.add_row(std::move(row));
  }
  table.print();

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"runtime_scale\",\n"
       << "  \"topology\": \"" << kLeaves << "-leaf/" << kSpines
       << "-spine\",\n"
       << "  \"sim_millis\": " << (kSpan.ps() / 1'000'000'000) << ",\n"
       << "  \"hw_threads\": " << hw_threads << ",\n"
       << "  \"gate\": \""
       << (hw_threads >= 4 ? "speedup4 >= 1.5x" : "windows + wall-factor")
       << "\",\n"
       << "  \"baseline_windows_per_sim_ms\": " << kBaselineWindowsPerSimMs
       << ",\n"
       << "  \"deterministic\": " << (deterministic ? "true" : "false")
       << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    json << "    {\"workers\": " << r.workers
         << ", \"pool_threads\": " << r.pool_threads
         << ", \"wall_ms\": " << r.wall_ms
         << ", \"events\": " << r.events << ", \"events_per_sec\": "
         << static_cast<std::uint64_t>(static_cast<double>(r.events) /
                                       (r.wall_ms / 1e3))
         << ", \"speedup\": " << (base.wall_ms / r.wall_ms)
         << ", \"cross_shard_messages\": " << r.cross_shard
         << ", \"ring_drains\": " << r.ring_drains
         << ", \"avg_drain_burst\": "
         << (r.ring_drains == 0 ? 0.0
                                : static_cast<double>(r.ring_drained) /
                                      static_cast<double>(r.ring_drains))
         << ", \"windows\": " << r.windows
         << ", \"windows_per_sim_ms\": "
         << (static_cast<double>(r.windows) / sim_ms)
         << ", \"cut_fraction\": " << r.cut_fraction
         << ", \"allocations_per_event\": " << r.allocations_per_event << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.flush();
  if (!json) {
    std::printf("\nERROR: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());

  if (!deterministic) {
    std::printf("FAIL: parallel digests diverge from the 1-worker run\n");
    return 1;
  }

  const Result& par4 = results.back();
  const double speedup4 = base.wall_ms / par4.wall_ms;
  if (hw_threads >= 4) {
    // Cores exist: multi-worker must win outright.
    if (speedup4 < kParallelSpeedupGate) {
      std::printf("FAIL: %u hw threads but 4-worker speedup %.2fx < %.2fx\n",
                  hw_threads, speedup4, kParallelSpeedupGate);
      return 1;
    }
    std::printf("OK: 4-worker speedup %.2fx (gate %.2fx, %u hw threads)\n",
                speedup4, kParallelSpeedupGate, hw_threads);
    return 0;
  }

  // Too few cores for wall-clock speedup; gate the overheads instead.
  const double win_per_ms = static_cast<double>(par4.windows) / sim_ms;
  const double win_gate = kBaselineWindowsPerSimMs / kWindowsImprovementGate;
  if (win_per_ms > win_gate) {
    std::printf("FAIL: %.1f windows/sim-ms at 4 workers; adaptive lookahead "
                "gate is <= %.1f (baseline %.0f)\n",
                win_per_ms, win_gate, kBaselineWindowsPerSimMs);
    return 1;
  }
  const double wall_factor = par4.wall_ms / base.wall_ms;
  if (wall_factor > kOversubscribedWallFactor) {
    std::printf("FAIL: 4-worker wall %.2fx the 1-worker wall; oversubscribed "
                "gate is <= %.2fx\n",
                wall_factor, kOversubscribedWallFactor);
    return 1;
  }
  std::printf("OK: determinism + %.1f windows/sim-ms (gate %.1f) + "
              "oversubscribed wall factor %.2fx (gate %.2fx)\n",
              win_per_ms, win_gate, wall_factor, kOversubscribedWallFactor);
  return 0;
}
