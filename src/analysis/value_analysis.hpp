// edp::analysis — abstract-interpretation value analysis over the
// sequenced dataflow IR (edp-verify v3).
//
// The PR 4 IR records *how* handlers touch registers (ordered traces with
// observed RMW old/new values); the PR 9 optimizer bounds the *staleness*
// of aggregated state in cycles. This pass closes the remaining gap: what
// can the *values* do? It runs an interval + congruence domain per
// (register, cell-class), seeded at the registers' zero-initialized state,
// folds in the per-handler observed deltas ([min, max] over activations),
// propagates unobservable values (plain writes, non-integral RMWs) through
// the dependency chains to a fixpoint, and scales the per-handler growth by
// the same worst-case event rates the pipeline-mapping pass budgets with.
//
// Four finding families come out of the domain:
//
//   * register-overflow      — the inferred interval escapes the register's
//                              annotated bit width on the target within the
//                              configured horizon (counter wrap).
//   * merge-noncommutative   — an event-thread RMW failed the runtime
//                              translation-equivariance probe (f(v+1)-(v+1)
//                              != f(v)-v), so it is not a pure delta and the
//                              optimizer's sum-of-deltas merge function is
//                              unsound; optimize_program treats this as a
//                              hard aggregation blocker.
//   * staleness-value-error  — the PR 9 cycle staleness bound translated
//                              into a worst-case *value deviation*:
//                              max |delta| x events arriving per staleness
//                              window (the paper's bandwidth-vs-accuracy
//                              trade-off as a number).
//   * queue-occupancy-unbounded — an occupancy-tracking register whose
//                              admission-side increments are never closed by
//                              a service-side decrement, so its interval
//                              grows past any finite TM buffer.
//
// Like every trace-grounded pass here, the deltas are *observed*, not
// proven: the domain is sound relative to the recorded stimulus drives, and
// anything the probe could not see (plain writes, value-dependent updates
// reached through a dependency edge) widens to top instead of guessing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/hardware_model.hpp"
#include "analysis/ir.hpp"
#include "tm/buffer_pool.hpp"

namespace edp::analysis {

class RecordingContext;

/// Per-register hardware bit-width annotations, declared in the program
/// registry next to the EventRates. Cells are signed (the simulator's
/// int64_t registers); an unannotated register falls back to
/// ValueAnalysisOptions::default_width_bits.
struct RegisterWidths {
  void set(std::string name, unsigned bits) {
    for (auto& w : widths_) {
      if (w.first == name) {
        w.second = bits;
        return;
      }
    }
    widths_.emplace_back(std::move(name), bits);
  }
  unsigned get(const std::string& name, unsigned fallback) const {
    for (const auto& w : widths_) {
      if (w.first == name) {
        return w.second;
      }
    }
    return fallback;
  }
  bool empty() const { return widths_.empty(); }

 private:
  std::vector<std::pair<std::string, unsigned>> widths_;
};

struct ValueAnalysisOptions {
  /// Horizon the growth rates are integrated over before the width check —
  /// "does this counter survive one second of worst-case traffic?".
  double horizon_seconds = 1.0;
  /// Width assumed for unannotated registers (the simulator's int64 cells).
  unsigned default_width_bits = 64;
  /// TM packet-buffer capacity the occupancy check closes against; defaults
  /// to the traffic manager's own default configuration.
  double buffer_bytes = static_cast<double>(tm_::BufferPool::Config{}.total_bytes);
};

/// One register's abstract value after the horizon. `top` means the domain
/// could not bound the cells at all (unobserved plain writes, non-integral
/// RMWs, or a tainted dependency chain).
struct ValueInterval {
  double lo = 0.0;
  double hi = 0.0;
  bool top = false;
};

struct RegisterValueInfo {
  std::size_t reg = 0;
  std::string name;
  unsigned width_bits = 64;

  /// Cells start at 0; `top` when any write was unobservable or a
  /// dependency chain from a top register reaches this register.
  bool opaque = false;
  bool has_event_deltas = false;  ///< any observed RMW delta outside attach

  /// Observed per-activation delta bounds over all handlers.
  std::int64_t delta_min = 0;
  std::int64_t delta_max = 0;
  /// Largest single-access |delta| — the unit of staleness value error.
  std::int64_t max_abs_delta = 0;

  /// Interval growth in value-units/s: positive deltas x their handler's
  /// worst-case rate (up), negative deltas likewise (down, <= 0).
  double growth_up = 0.0;
  double growth_down = 0.0;

  /// Congruence: every reachable cell value satisfies v == 0 (mod g).
  /// g == 0 means no delta was ever observed (constant zero); g == 1 is
  /// the trivial top congruence.
  std::uint64_t congruence = 0;

  ValueInterval after_horizon;
};

/// The staleness-value-error contract of one aggregated register: the
/// worst-case deviation between the main array and the true value while
/// deltas wait in the side arrays.
struct ValueErrorBound {
  std::size_t reg = 0;
  std::string name;
  double staleness_seconds = 0.0;   ///< PR 9 bound: 2 x size / idle rate
  double events_per_window = 0.0;   ///< worst-case updates per window
  std::int64_t max_abs_delta = 0;
  double bound = 0.0;               ///< max |delta| x events per window
  bool stable = false;              ///< drain keeps up; the error is bounded
};

struct ValueAnalysis {
  std::vector<RegisterValueInfo> registers;
  std::vector<ValueErrorBound> value_errors;

  const RegisterValueInfo* find(const std::string& name) const;
  std::string format() const;
};

/// Why the optimizer's sum-of-deltas merge function is unsound for this
/// register; empty when every observed event-thread update commutes. The
/// witness is concrete: an RMW whose update function failed the probe's
/// translation-equivariance check (shared_register.hpp re-evaluates the
/// functor at v+1 and v-1) — the new value is not old + constant-delta
/// (overwrite/max/clamp-like), so deferring and reordering it through side
/// arrays or shards changes the result.
std::string merge_commutativity_blocker(const DataflowIr& ir, std::size_t reg);

/// Run the value analysis and append its findings. `mapping` supplies the
/// drain accounting the staleness-value-error bounds build on; `rates` and
/// `ctx` feed the same worst-case rate derivation the mapping pass used.
/// Unconstrained models report the domain but only emit the registry-facing
/// notes (missing-rates, merge-noncommutative as a note).
ValueAnalysis value_analysis_pass(const DataflowIr& ir, const EventGraph& graph,
                                  const RecordingContext& ctx,
                                  const HardwareModel& model,
                                  const EventRates& rates,
                                  const RegisterWidths& widths,
                                  const PipelineMapping& mapping,
                                  const ValueAnalysisOptions& options,
                                  std::vector<Finding>& findings);

}  // namespace edp::analysis
