#include "analysis/passes.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "core/event_program.hpp"

namespace edp::analysis {
namespace {

std::string handler_list(const std::vector<Handler>& handlers) {
  std::string out;
  for (const Handler h : handlers) {
    if (!out.empty()) {
      out += ", ";
    }
    out += to_string(h);
  }
  return out;
}

std::string thread_list(const std::set<core::ThreadId>& threads) {
  std::string out;
  for (const core::ThreadId t : threads) {
    if (!out.empty()) {
      out += ", ";
    }
    out += to_string(t);
  }
  return out;
}

std::string cycle_string(const std::vector<Handler>& cycle) {
  std::string out;
  for (const Handler h : cycle) {
    out += to_string(h);
    out += " -> ";
  }
  out += to_string(cycle.front());
  return out;
}

void add(std::vector<Finding>& findings, Severity severity, Pass pass,
         std::string code, std::string subject, std::string message) {
  findings.push_back(Finding{severity, pass, std::move(code),
                             std::move(subject), std::move(message)});
}

}  // namespace

// ---- graph --------------------------------------------------------------------

EventGraph build_graph(const RecordingContext& ctx, const DriveLog& log) {
  EventGraph g;

  // Architecture edges: an admitted packet is eventually served (its
  // dequeue event fires and the egress pipeline runs on it) and then
  // transmitted. These are rate-preserving — one activation each — so
  // cycles through them amplify only via a program action edge.
  g.edges.push_back(GraphEdge{Handler::kEnqueue, Handler::kDequeue,
                              ActionKind::kForward, false, "architecture"});
  g.edges.push_back(GraphEdge{Handler::kDequeue, Handler::kEgress,
                              ActionKind::kForward, false, "architecture"});
  g.edges.push_back(GraphEdge{Handler::kEgress, Handler::kTransmit,
                              ActionKind::kForward, false, "architecture"});

  for (const PacketDrive& d : log.packet_drives) {
    if (d.recirculate) {
      g.edges.push_back(GraphEdge{d.handler, Handler::kRecirculate,
                                  ActionKind::kRecirculate, false,
                                  d.stimulus});
    }
    if (d.recirc_clone) {
      g.edges.push_back(GraphEdge{d.handler, Handler::kRecirculate,
                                  ActionKind::kRecircClone, false,
                                  d.stimulus});
    }
    if (d.forwarded && d.handler != Handler::kEgress) {
      g.edges.push_back(GraphEdge{d.handler, Handler::kEnqueue,
                                  ActionKind::kForward, false, d.stimulus});
    }
  }

  for (const RecordingContext::Call& c : ctx.calls()) {
    if (!c.accepted) {
      continue;
    }
    switch (c.kind) {
      case ActionKind::kInjectPacket:
        g.edges.push_back(GraphEdge{c.during, Handler::kGenerated,
                                    ActionKind::kInjectPacket, false, ""});
        break;
      case ActionKind::kSendPacket:
        g.edges.push_back(GraphEdge{c.during, Handler::kEnqueue,
                                    ActionKind::kSendPacket, false, ""});
        break;
      case ActionKind::kRaiseUserEvent:
        g.edges.push_back(GraphEdge{c.during, Handler::kUser,
                                    ActionKind::kRaiseUserEvent, false, ""});
        break;
      case ActionKind::kSetTimer:
        g.edges.push_back(GraphEdge{c.during, Handler::kTimer,
                                    ActionKind::kSetTimer, c.rate_bounded,
                                    ""});
        break;
      case ActionKind::kAddGenerator:
        g.edges.push_back(GraphEdge{c.during, Handler::kGenerated,
                                    ActionKind::kAddGenerator, c.rate_bounded,
                                    ""});
        break;
      case ActionKind::kTriggerGenerator:
        g.edges.push_back(GraphEdge{c.during, Handler::kGenerated,
                                    ActionKind::kTriggerGenerator, false,
                                    ""});
        break;
      default:
        break;  // cancel/set_template/punt spawn nothing
    }
  }
  return g;
}

// ---- port budget (§4) ---------------------------------------------------------

namespace {

void check_shared(const RegisterUsage& reg, std::vector<Finding>& findings) {
  const std::vector<Handler> accessing = reg.accessing_handlers();
  std::set<core::ThreadId> threads;
  for (const Handler h : accessing) {
    threads.insert(thread_of(h));
  }

  if (static_cast<int>(threads.size()) > reg.ports) {
    std::ostringstream msg;
    msg << "accessed from " << threads.size() << " event-processing threads ("
        << thread_list(threads) << ": " << handler_list(accessing)
        << ") but provisioned with only " << reg.ports
        << " port(s) — not realizable on the declared memory";
    add(findings, Severity::kError, Pass::kPortBudget, "port-overcommit",
        reg.name, msg.str());
  }

  std::set<core::ThreadId> write_threads;
  for (const Handler h : reg.writing_handlers()) {
    write_threads.insert(thread_of(h));
  }
  if (write_threads.size() >= 2) {
    std::ostringstream msg;
    msg << "write set spans " << write_threads.size() << " threads ("
        << thread_list(write_threads)
        << "); on single-ported targets this register requires the "
           "AggregatedRegister realization (paper §4)";
    add(findings, Severity::kNote, Pass::kPortBudget, "needs-aggregation",
        reg.name, msg.str());
  }

  // The per-access declared thread is what the port accountant charges; if
  // it disagrees with the thread the handler actually runs on, the runtime
  // budget check validates the wrong schedule.
  for (std::size_t h = 1; h < kNumHandlers; ++h) {
    const auto handler = static_cast<Handler>(h);
    const std::uint8_t declared = reg.declared_threads[h];
    const auto expected = static_cast<std::uint8_t>(
        1u << static_cast<unsigned>(thread_of(handler)));
    if (declared != 0 && (declared & ~expected) != 0) {
      std::ostringstream msg;
      msg << to_string(handler) << " declares a different ThreadId than the "
          << to_string(thread_of(handler))
          << " thread it runs on — port accounting is unsound";
      add(findings, Severity::kWarning, Pass::kPortBudget,
          "thread-attribution", reg.name, msg.str());
    }
  }
}

void check_aggregated(const RegisterUsage& reg,
                      std::vector<Finding>& findings) {
  for (std::size_t h = 1; h < kNumHandlers; ++h) {
    const auto handler = static_cast<Handler>(h);
    const auto& per = reg.counts[h];
    const auto at = [&](core::RegisterRealization r) -> const AccessCounts& {
      return per[static_cast<std::size_t>(r)];
    };

    // The main array's single port belongs to the merged packet pipeline;
    // an event thread touching it directly steals packet-rate bandwidth.
    if (at(core::RegisterRealization::kAggregatedMain).any() &&
        !is_packet_handler(handler)) {
      add(findings, Severity::kWarning, Pass::kPortBudget, "agg-main-misuse",
          reg.name,
          std::string(to_string(handler)) +
              " accesses the main array directly; only the packet pipeline "
              "owns its port — use enqueue_add/dequeue_add from event "
              "threads");
    }
    if (at(core::RegisterRealization::kAggregatedEnq).any() &&
        thread_of(handler) != core::ThreadId::kEnqueue) {
      add(findings, Severity::kWarning, Pass::kPortBudget, "agg-array-misuse",
          reg.name,
          std::string(to_string(handler)) +
              " updates the enqueue aggregation array, which is owned by "
              "the enqueue thread");
    }
    if (at(core::RegisterRealization::kAggregatedDeq).any() &&
        thread_of(handler) != core::ThreadId::kDequeue) {
      add(findings, Severity::kWarning, Pass::kPortBudget, "agg-array-misuse",
          reg.name,
          std::string(to_string(handler)) +
              " updates the dequeue aggregation array, which is owned by "
              "the dequeue thread");
    }
  }
}

}  // namespace

void port_budget_pass(const AccessMatrix& matrix,
                      std::vector<Finding>& findings) {
  for (const RegisterUsage& reg : matrix.registers) {
    if (reg.aggregated) {
      check_aggregated(reg, findings);
    } else {
      check_shared(reg, findings);
    }
  }
}

// ---- amplification ------------------------------------------------------------

void amplification_pass(const EventGraph& graph,
                        const std::vector<ChainRun>& chains,
                        std::vector<Finding>& findings) {
  const std::vector<std::vector<Handler>> cycles = graph.cycles();

  std::string limited_seeds;
  for (const ChainRun& run : chains) {
    if (run.limited) {
      if (!limited_seeds.empty()) {
        limited_seeds += ", ";
      }
      limited_seeds += run.seed;
    }
  }

  for (const auto& cycle : cycles) {
    if (!limited_seeds.empty()) {
      add(findings, Severity::kError, Pass::kAmplification, "unguarded-cycle",
          cycle_string(cycle),
          "event-generation cycle with no rate bound; chain simulation from "
          "seed(s) [" +
              limited_seeds +
              "] was still spawning events when the step budget ran out — "
              "one trigger amplifies without bound");
    } else {
      add(findings, Severity::kNote, Pass::kAmplification, "guarded-cycle",
          cycle_string(cycle),
          "event-generation cycle exists statically but every simulated "
          "chain terminated — a stateful guard bounds it; verify the guard "
          "holds under adversarial input");
    }
  }

  // A chain that never converged with no static cycle means the graph
  // under-approximated (e.g. payload-dependent generation); still report.
  if (cycles.empty() && !limited_seeds.empty()) {
    add(findings, Severity::kError, Pass::kAmplification, "runaway-chain",
        limited_seeds,
        "chain simulation exhausted its step budget although the event "
        "graph shows no cycle — event generation is input-dependent and "
        "unbounded");
  }
}

// ---- resource lint ------------------------------------------------------------

void resource_lint_pass(const RecordingContext& event_ctx,
                        const DriveLog& event_log,
                        const RecordingContext& baseline_ctx,
                        const AccessMatrix& matrix,
                        const LintOverrides& overrides,
                        std::vector<Finding>& findings) {
  // 1. Facilities requested on the baseline architecture and refused, with
  //    no kOpFacilityUnavailable punt in the same handler invocation: the
  //    program degrades silently where §6 requires explicit CP fallback.
  std::set<std::pair<ActionKind, Handler>> reported;
  for (const RecordingContext::Call& c : baseline_ctx.calls()) {
    if (c.accepted ||
        (c.kind != ActionKind::kSetTimer &&
         c.kind != ActionKind::kAddGenerator)) {
      continue;
    }
    const bool punted = std::any_of(
        baseline_ctx.punts().begin(), baseline_ctx.punts().end(),
        [&](const RecordingContext::Punt& p) {
          return p.drive == c.drive &&
                 p.opcode == core::kOpFacilityUnavailable;
        });
    if (punted || !reported.emplace(c.kind, c.during).second) {
      continue;
    }
    add(findings, Severity::kWarning, Pass::kResourceLint,
        "unchecked-facility", std::string(to_string(c.during)),
        std::string(to_string(c.kind)) +
            " is refused by the baseline architecture and the handler does "
            "not punt kOpFacilityUnavailable — the program silently loses "
            "this facility on non-event targets");
  }

  // 2. Id 0 is the refusal sentinel of every acquisition API; passing it
  //    onward means an unchecked result.
  std::set<std::pair<ActionKind, Handler>> zero_reported;
  for (const RecordingContext* ctx : {&event_ctx, &baseline_ctx}) {
    for (const RecordingContext::ZeroIdUse& z : ctx->zero_id_uses()) {
      if (!zero_reported.emplace(z.kind, z.during).second) {
        continue;
      }
      add(findings, Severity::kError, Pass::kResourceLint, "zero-id",
          std::string(to_string(z.during)),
          std::string(to_string(z.kind)) +
              " called with id 0 — 0 is the refusal sentinel, so an "
              "acquisition result was used without checking it");
    }
  }

  // 3. Egress writes to the enq/deq meta words are dead: the traffic
  //    manager extracted both at enqueue admission.
  for (const PacketDrive& d : event_log.packet_drives) {
    if (d.handler == Handler::kEgress && d.meta_written) {
      add(findings, Severity::kWarning, Pass::kResourceLint,
          "dead-meta-write", "on_egress",
          "writes enq/deq meta words (phv.user[0.." +
              std::to_string(core::kDeqMetaBase + 3) +
              "]) in the egress pipeline; both metas were extracted at "
              "enqueue admission, so these writes never reach a buffer "
              "event (stimulus: " +
              d.stimulus + ")");
      break;  // one finding is enough
    }
  }

  // 4. Ingress attaches metadata no buffer handler observably consumes.
  if (!overrides.handles_buffer_events) {
    const bool meta_written = std::any_of(
        event_log.packet_drives.begin(), event_log.packet_drives.end(),
        [](const PacketDrive& d) {
          return d.handler != Handler::kEgress && d.meta_written;
        });
    const auto is_buffer = [](Handler h) {
      return h == Handler::kEnqueue || h == Handler::kDequeue ||
             h == Handler::kOverflow || h == Handler::kUnderflow;
    };
    bool buffer_observed = std::any_of(
        event_ctx.calls().begin(), event_ctx.calls().end(),
        [&](const RecordingContext::Call& c) { return is_buffer(c.during); });
    buffer_observed =
        buffer_observed ||
        std::any_of(event_ctx.punts().begin(), event_ctx.punts().end(),
                    [&](const RecordingContext::Punt& p) {
                      return is_buffer(p.during);
                    });
    for (const RegisterUsage& reg : matrix.registers) {
      for (std::size_t h = 1; h < kNumHandlers && !buffer_observed; ++h) {
        buffer_observed = is_buffer(static_cast<Handler>(h)) &&
                          reg.totals(static_cast<Handler>(h)).any();
      }
    }
    if (meta_written && !buffer_observed) {
      add(findings, Severity::kNote, Pass::kResourceLint, "unused-meta",
          "on_ingress",
          "attaches enq/deq metadata but no buffer-event handler observably "
          "consumes it (no register access, facility call or punt from "
          "on_enqueue/on_dequeue/on_overflow/on_underflow); drop the "
          "metadata or set handles_buffer_events in the registry if state "
          "is member-only");
    }
  }
}

}  // namespace edp::analysis
