#include "analysis/passes.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "core/event_program.hpp"

namespace edp::analysis {
namespace {

std::string handler_list(const std::vector<Handler>& handlers) {
  std::string out;
  for (const Handler h : handlers) {
    if (!out.empty()) {
      out += ", ";
    }
    out += to_string(h);
  }
  return out;
}

std::string thread_list(const std::set<core::ThreadId>& threads) {
  std::string out;
  for (const core::ThreadId t : threads) {
    if (!out.empty()) {
      out += ", ";
    }
    out += to_string(t);
  }
  return out;
}

std::string cycle_string(const std::vector<Handler>& cycle) {
  std::string out;
  for (const Handler h : cycle) {
    out += to_string(h);
    out += " -> ";
  }
  out += to_string(cycle.front());
  return out;
}

void add(std::vector<Finding>& findings, Severity severity, Pass pass,
         std::string code, std::string subject, std::string message) {
  findings.push_back(Finding{severity, pass, std::move(code),
                             std::move(subject), std::move(message)});
}

}  // namespace

// ---- graph --------------------------------------------------------------------

EventGraph build_graph(const RecordingContext& ctx, const DriveLog& log) {
  EventGraph g;

  // Architecture edges: an admitted packet is eventually served (its
  // dequeue event fires and the egress pipeline runs on it) and then
  // transmitted. These are rate-preserving — one activation each — so
  // cycles through them amplify only via a program action edge.
  g.edges.push_back(GraphEdge{Handler::kEnqueue, Handler::kDequeue,
                              ActionKind::kForward, false, "architecture"});
  g.edges.push_back(GraphEdge{Handler::kDequeue, Handler::kEgress,
                              ActionKind::kForward, false, "architecture"});
  g.edges.push_back(GraphEdge{Handler::kEgress, Handler::kTransmit,
                              ActionKind::kForward, false, "architecture"});

  for (const PacketDrive& d : log.packet_drives) {
    if (d.recirculate) {
      g.edges.push_back(GraphEdge{d.handler, Handler::kRecirculate,
                                  ActionKind::kRecirculate, false,
                                  d.stimulus});
    }
    if (d.recirc_clone) {
      g.edges.push_back(GraphEdge{d.handler, Handler::kRecirculate,
                                  ActionKind::kRecircClone, false,
                                  d.stimulus});
    }
    if (d.forwarded && d.handler != Handler::kEgress) {
      g.edges.push_back(GraphEdge{d.handler, Handler::kEnqueue,
                                  ActionKind::kForward, false, d.stimulus});
    }
  }

  for (const RecordingContext::Call& c : ctx.calls()) {
    if (!c.accepted) {
      continue;
    }
    switch (c.kind) {
      case ActionKind::kInjectPacket:
        g.edges.push_back(GraphEdge{c.during, Handler::kGenerated,
                                    ActionKind::kInjectPacket, false, ""});
        break;
      case ActionKind::kSendPacket:
        g.edges.push_back(GraphEdge{c.during, Handler::kEnqueue,
                                    ActionKind::kSendPacket, false, ""});
        break;
      case ActionKind::kRaiseUserEvent:
        g.edges.push_back(GraphEdge{c.during, Handler::kUser,
                                    ActionKind::kRaiseUserEvent, false, ""});
        break;
      case ActionKind::kSetTimer:
        g.edges.push_back(GraphEdge{c.during, Handler::kTimer,
                                    ActionKind::kSetTimer, c.rate_bounded,
                                    ""});
        break;
      case ActionKind::kAddGenerator:
        g.edges.push_back(GraphEdge{c.during, Handler::kGenerated,
                                    ActionKind::kAddGenerator, c.rate_bounded,
                                    ""});
        break;
      case ActionKind::kTriggerGenerator:
        g.edges.push_back(GraphEdge{c.during, Handler::kGenerated,
                                    ActionKind::kTriggerGenerator, false,
                                    ""});
        break;
      default:
        break;  // cancel/set_template/punt spawn nothing
    }
  }
  return g;
}

// ---- port budget (§4) ---------------------------------------------------------

namespace {

void check_shared(const RegisterUsage& reg, std::vector<Finding>& findings) {
  if (reg.folded) {
    return;  // constant-folded to match-action entries: no ports to budget
  }
  const std::vector<Handler> accessing = reg.accessing_handlers();
  std::set<core::ThreadId> threads;
  for (const Handler h : accessing) {
    threads.insert(thread_of(h));
  }

  if (static_cast<int>(threads.size()) > reg.ports) {
    std::ostringstream msg;
    msg << "accessed from " << threads.size() << " event-processing threads ("
        << thread_list(threads) << ": " << handler_list(accessing)
        << ") but provisioned with only " << reg.ports
        << " port(s) — not realizable on the declared memory";
    add(findings, Severity::kError, Pass::kPortBudget, "port-overcommit",
        reg.name, msg.str());
  }

  std::set<core::ThreadId> write_threads;
  for (const Handler h : reg.writing_handlers()) {
    write_threads.insert(thread_of(h));
  }
  if (write_threads.size() >= 2) {
    std::ostringstream msg;
    msg << "write set spans " << write_threads.size() << " threads ("
        << thread_list(write_threads)
        << "); on single-ported targets this register requires the "
           "AggregatedRegister realization (paper §4)";
    add(findings, Severity::kNote, Pass::kPortBudget, "needs-aggregation",
        reg.name, msg.str());
  }

  // The per-access declared thread is what the port accountant charges; if
  // it disagrees with the thread the handler actually runs on, the runtime
  // budget check validates the wrong schedule.
  for (std::size_t h = 1; h < kNumHandlers; ++h) {
    const auto handler = static_cast<Handler>(h);
    const std::uint8_t declared = reg.declared_threads[h];
    const auto expected = static_cast<std::uint8_t>(
        1u << static_cast<unsigned>(thread_of(handler)));
    if (declared != 0 && (declared & ~expected) != 0) {
      std::ostringstream msg;
      msg << to_string(handler) << " declares a different ThreadId than the "
          << to_string(thread_of(handler))
          << " thread it runs on — port accounting is unsound";
      add(findings, Severity::kWarning, Pass::kPortBudget,
          "thread-attribution", reg.name, msg.str());
    }
  }
}

void check_aggregated(const RegisterUsage& reg,
                      std::vector<Finding>& findings) {
  for (std::size_t h = 1; h < kNumHandlers; ++h) {
    const auto handler = static_cast<Handler>(h);
    const auto& per = reg.counts[h];
    const auto at = [&](core::RegisterRealization r) -> const AccessCounts& {
      return per[static_cast<std::size_t>(r)];
    };

    // The main array's single port belongs to the merged packet pipeline;
    // an event thread touching it directly steals packet-rate bandwidth.
    if (at(core::RegisterRealization::kAggregatedMain).any() &&
        !is_packet_handler(handler)) {
      add(findings, Severity::kWarning, Pass::kPortBudget, "agg-main-misuse",
          reg.name,
          std::string(to_string(handler)) +
              " accesses the main array directly; only the packet pipeline "
              "owns its port — use enqueue_add/dequeue_add from event "
              "threads");
    }
    if (at(core::RegisterRealization::kAggregatedEnq).any() &&
        thread_of(handler) != core::ThreadId::kEnqueue) {
      add(findings, Severity::kWarning, Pass::kPortBudget, "agg-array-misuse",
          reg.name,
          std::string(to_string(handler)) +
              " updates the enqueue aggregation array, which is owned by "
              "the enqueue thread");
    }
    if (at(core::RegisterRealization::kAggregatedDeq).any() &&
        thread_of(handler) != core::ThreadId::kDequeue) {
      add(findings, Severity::kWarning, Pass::kPortBudget, "agg-array-misuse",
          reg.name,
          std::string(to_string(handler)) +
              " updates the dequeue aggregation array, which is owned by "
              "the dequeue thread");
    }
  }
}

}  // namespace

void port_budget_pass(const AccessMatrix& matrix,
                      std::vector<Finding>& findings) {
  for (const RegisterUsage& reg : matrix.registers) {
    if (reg.aggregated) {
      check_aggregated(reg, findings);
    } else {
      check_shared(reg, findings);
    }
  }
}

// ---- pipeline mapping (§4, quantitative) --------------------------------------

namespace {

std::string rate_str(double rate) {
  std::ostringstream os;
  if (rate >= 1e9) {
    os << rate / 1e9 << "G/s";
  } else if (rate >= 1e6) {
    os << rate / 1e6 << "M/s";
  } else if (rate >= 1e3) {
    os << rate / 1e3 << "k/s";
  } else {
    os << rate << "/s";
  }
  return os.str();
}

}  // namespace

std::array<double, kNumHandlers> derive_event_rates(
    const EventGraph& graph, const RecordingContext& ctx,
    const HardwareModel& model, const EventRates& rates) {
  std::array<double, kNumHandlers> rate{};
  const auto idx = [](Handler h) { return static_cast<std::size_t>(h); };
  const auto resolve = [&](Handler h, double derived) {
    rate[idx(h)] = rates.declared(h) ? rates.get(h)
                                     : std::min(derived, model.clock_hz);
  };
  const auto unbounded_edge_into = [&](Handler to) {
    return std::any_of(graph.edges.begin(), graph.edges.end(),
                       [&](const GraphEdge& e) {
                         return e.to == to && !e.rate_bounded;
                       });
  };

  const double pkt = model.packet_rate(rates.avg_packet_bytes);
  resolve(Handler::kIngress, pkt);
  const double ingress = rate[idx(Handler::kIngress)];

  // Worst case one recirculation per packet when any unbounded edge
  // re-enters the pipeline.
  resolve(Handler::kRecirculate,
          unbounded_edge_into(Handler::kRecirculate) ? ingress : 0.0);

  // Periodic generators emit 1/period; any unbounded generated edge
  // (inject/trigger per packet, zero-period generator) is worst-case one
  // per packet on top.
  double generated = 0.0;
  for (const RecordingContext::Call& c : ctx.calls()) {
    if (c.kind == ActionKind::kAddGenerator && c.accepted && c.periodic &&
        c.period > sim::Time::zero()) {
      generated += 1.0 / c.period.as_seconds();
    }
  }
  if (unbounded_edge_into(Handler::kGenerated)) {
    generated += ingress;
  }
  resolve(Handler::kGenerated, generated);

  // Every admitted packet enqueues, dequeues, runs egress, and transmits.
  const double admitted = std::min(rate[idx(Handler::kIngress)] +
                                       rate[idx(Handler::kRecirculate)] +
                                       rate[idx(Handler::kGenerated)],
                                   model.clock_hz);
  resolve(Handler::kEgress, admitted);
  resolve(Handler::kEnqueue, admitted);
  resolve(Handler::kDequeue, admitted);
  resolve(Handler::kTransmit, admitted);
  resolve(Handler::kOverflow, 0.0);
  resolve(Handler::kUnderflow, 0.0);

  double timer = 0.0;
  for (const RecordingContext::Call& c : ctx.calls()) {
    if (c.kind == ActionKind::kSetTimer && c.accepted && c.periodic) {
      timer += c.period > sim::Time::zero() ? 1.0 / c.period.as_seconds()
                                            : model.clock_hz;
    }
  }
  resolve(Handler::kTimer, timer);
  resolve(Handler::kControl, 0.0);     // control-plane paced
  resolve(Handler::kLinkStatus, 0.0);  // physical-event paced

  // User events ride their raisers: worst case one per source activation.
  double user = 0.0;
  std::set<Handler> user_sources;
  for (const GraphEdge& e : graph.edges) {
    if (e.to == Handler::kUser && !e.rate_bounded &&
        user_sources.insert(e.from).second) {
      user += rate[idx(e.from)];
    }
  }
  resolve(Handler::kUser, user);
  return rate;
}

PipelineMapping pipeline_mapping_pass(const DataflowIr& ir,
                                      const EventGraph& graph,
                                      const RecordingContext& ctx,
                                      const HardwareModel& model,
                                      const EventRates& rates,
                                      std::vector<Finding>& findings) {
  PipelineMapping m;
  m.target = model.name;
  const std::size_t n = ir.registers.size();
  m.stage_of.assign(n, PipelineMapping::kUnplaced);
  const auto idx = [](Handler h) { return static_cast<std::size_t>(h); };

  // ---- stage placement: greedy topological allocation ----
  if (ir.cyclic) {
    std::string cycle;
    for (const std::size_t r : ir.cycle_regs) {
      if (!cycle.empty()) {
        cycle += " -> ";
      }
      cycle += ir.registers[r].name;
    }
    if (!model.unconstrained) {
      add(findings, Severity::kError, Pass::kPipelineMapping, "stage-overflow",
          cycle,
          "cross-handler register dependencies form a cycle — no "
          "feed-forward stage order satisfies every handler on a "
          "pipelined target");
    }
  } else if (n > 0) {
    // Kahn topological order over the deduplicated dependency pairs.
    std::vector<std::vector<std::size_t>> adj(n);
    std::vector<std::size_t> indeg(n, 0);
    {
      std::set<std::pair<std::size_t, std::size_t>> pairs;
      for (const DepEdge& e : ir.deps) {
        if (pairs.emplace(e.from, e.to).second) {
          adj[e.from].push_back(e.to);
          ++indeg[e.to];
        }
      }
    }
    std::vector<std::size_t> order;
    order.reserve(n);
    for (std::size_t r = 0; r < n; ++r) {
      if (indeg[r] == 0) {
        order.push_back(r);
      }
    }
    for (std::size_t head = 0; head < order.size(); ++head) {
      for (const std::size_t next : adj[order[head]]) {
        if (--indeg[next] == 0) {
          order.push_back(next);
        }
      }
    }

    // Place each register at the first stage after all its producers with
    // a free stateful ALU and register slot; stages beyond the model are
    // virtual, so overflow reports how deep the program actually needs.
    const std::size_t capacity =
        std::min(model.alus_per_stage, model.registers_per_stage);
    std::vector<std::size_t> load(n + 1, 0);
    std::vector<std::size_t> placed(n, 0);
    for (const std::size_t r : order) {
      std::size_t stage = 0;
      for (std::size_t p = 0; p < n; ++p) {
        for (const std::size_t next : adj[p]) {
          if (next == r && placed[p] + 1 > stage) {
            stage = placed[p] + 1;
          }
        }
      }
      // A folded register is a constant match-action table: it keeps its
      // position in the dependency order but consumes no stateful-ALU /
      // register slot in the stage.
      const bool folded = ir.registers[r].folded;
      if (!folded) {
        while (stage < load.size() && load[stage] >= capacity) {
          ++stage;
        }
      }
      placed[r] = stage;
      if (!folded && stage < load.size()) {
        ++load[stage];
      }
      m.stages_used = std::max(m.stages_used, stage + 1);
    }
    std::vector<std::size_t> overflowed;
    for (std::size_t r = 0; r < n; ++r) {
      if (placed[r] < model.stages) {
        m.stage_of[r] = placed[r];
      } else {
        overflowed.push_back(r);
      }
    }
    m.mapped = overflowed.empty();
    if (!overflowed.empty() && !model.unconstrained) {
      std::string names;
      for (const std::size_t r : overflowed) {
        if (!names.empty()) {
          names += ", ";
        }
        names += ir.registers[r].name;
      }
      std::ostringstream msg;
      msg << "dependency chains need " << m.stages_used
          << " pipeline stage(s) but the target has " << model.stages
          << " — cannot place: " << names;
      add(findings, Severity::kError, Pass::kPipelineMapping, "stage-overflow",
          names, msg.str());
    }
  } else {
    m.mapped = true;
  }

  // ---- rates and the cycle budget ----
  const std::array<double, kNumHandlers> rate =
      derive_event_rates(graph, ctx, model, rates);
  m.slot_rate = std::min(rate[idx(Handler::kIngress)] +
                             rate[idx(Handler::kRecirculate)] +
                             rate[idx(Handler::kGenerated)],
                         model.clock_hz);
  m.carrier_rate = rate[idx(Handler::kTimer)] + rate[idx(Handler::kControl)] +
                   rate[idx(Handler::kLinkStatus)] +
                   rate[idx(Handler::kUser)];
  m.idle_rate = std::max(0.0, model.clock_hz - m.slot_rate - m.carrier_rate);

  // ---- per-register port schedule + drain demand ----
  const auto is_packet_thread = [](core::ThreadId t) {
    return t == core::ThreadId::kIngress || t == core::ThreadId::kEgress;
  };
  for (std::size_t r = 0; r < n; ++r) {
    if (ir.registers[r].folded) {
      continue;  // constants: no ports contended, nothing to drain
    }
    // A SharedRegister declared with more same-cycle ports than the target
    // stage memory physically provides cannot be realized at this line
    // rate no matter how its accesses schedule (§4: multi-ported SRAM is a
    // low-line-rate luxury). This is the constraint the optimizer's
    // aggregation-insertion transform resolves.
    if (!model.unconstrained && !ir.registers[r].aggregated &&
        ir.registers[r].ports > model.register_ports_per_stage) {
      std::ostringstream msg;
      msg << "declares " << ir.registers[r].ports
          << " same-cycle register port(s) but " << model.name
          << " stage memory provides " << model.register_ports_per_stage
          << " — multi-ported stateful SRAM is not realizable at this line "
             "rate; re-realize as an AggregatedRegister with side arrays "
             "(paper §4) or retarget";
      add(findings, Severity::kError, Pass::kPipelineMapping,
          "multiport-unrealizable", ir.registers[r].name, msg.str());
    }
    bool packet = false;
    // Per event thread: any access, any non-aggregable access, and the
    // summed rate of its aggregable accesses.
    bool any[2] = {false, false};
    bool nonagg[2] = {false, false};
    double agg_rate[2] = {0.0, 0.0};
    std::string nonagg_handlers;
    for (std::size_t h = 1; h < kNumHandlers; ++h) {
      const AccessPattern p = ir.patterns[h][r];
      if (p == AccessPattern::kNone) {
        continue;
      }
      const core::ThreadId t = thread_of(static_cast<Handler>(h));
      if (is_packet_thread(t)) {
        packet = true;
        continue;
      }
      // Timer/control/link/user accesses are scheduled into idle cycles
      // (they are carrier events), never into a packet slot.
      if (t != core::ThreadId::kEnqueue && t != core::ThreadId::kDequeue) {
        continue;
      }
      const std::size_t side = t == core::ThreadId::kEnqueue ? 0 : 1;
      any[side] = true;
      if (is_aggregable(p)) {
        agg_rate[side] += rate[h];
      } else {
        nonagg[side] = true;
        if (!nonagg_handlers.empty()) {
          nonagg_handlers += ", ";
        }
        nonagg_handlers += to_string(static_cast<Handler>(h));
      }
    }

    const int ports = model.register_ports_per_stage;
    const int contenders_all = (packet ? 1 : 0) + (any[0] ? 1 : 0) +
                               (any[1] ? 1 : 0);
    const int contenders_min = (packet ? 1 : 0) + (nonagg[0] ? 1 : 0) +
                               (nonagg[1] ? 1 : 0);
    if (contenders_min > ports && !model.unconstrained) {
      std::ostringstream msg;
      msg << "needs " << contenders_min
          << " same-cycle register port(s) — the packet pipeline plus "
             "value-consuming accesses from "
          << nonagg_handlers << " that aggregation cannot absorb — but "
          << model.name << " stage memory has " << ports << " port(s)";
      add(findings, Severity::kError, Pass::kPipelineMapping,
          "port-schedule-conflict", ir.registers[r].name, msg.str());
    }

    // Aggregated updates drain into the main array during idle cycles: an
    // AggregatedRegister always drains its side arrays; a SharedRegister
    // drains only when the port schedule had to absorb its updates.
    const bool drains =
        ir.registers[r].aggregated ||
        (contenders_all > ports && contenders_min <= ports);
    if (drains && (agg_rate[0] > 0.0 || agg_rate[1] > 0.0)) {
      PipelineMapping::Drain d;
      d.reg = r;
      d.name = ir.registers[r].name;
      d.demand = agg_rate[0] + agg_rate[1];
      d.starved = d.demand > m.idle_rate;
      if (d.starved && !model.unconstrained) {
        std::ostringstream msg;
        msg << "aggregated updates arrive at " << rate_str(d.demand)
            << " but slot (" << rate_str(m.slot_rate) << ") and carrier ("
            << rate_str(m.carrier_rate) << ") events leave only "
            << rate_str(m.idle_rate) << " idle cycles to drain the "
            << "side-registers — staleness grows without bound (paper §4); "
            << "declare a realistic packet size/event rate or shed load";
        add(findings, Severity::kError, Pass::kPipelineMapping,
            "aggregation-starvation", d.name, msg.str());
      }
      m.drains.push_back(std::move(d));
    }
  }
  return m;
}

// ---- amplification ------------------------------------------------------------

void amplification_pass(const EventGraph& graph,
                        const std::vector<ChainRun>& chains,
                        std::vector<Finding>& findings) {
  const std::vector<std::vector<Handler>> cycles = graph.cycles();

  std::string limited_seeds;
  for (const ChainRun& run : chains) {
    if (run.limited) {
      if (!limited_seeds.empty()) {
        limited_seeds += ", ";
      }
      limited_seeds += run.seed;
    }
  }

  for (const auto& cycle : cycles) {
    if (!limited_seeds.empty()) {
      add(findings, Severity::kError, Pass::kAmplification, "unguarded-cycle",
          cycle_string(cycle),
          "event-generation cycle with no rate bound; chain simulation from "
          "seed(s) [" +
              limited_seeds +
              "] was still spawning events when the step budget ran out — "
              "one trigger amplifies without bound");
    } else {
      add(findings, Severity::kNote, Pass::kAmplification, "guarded-cycle",
          cycle_string(cycle),
          "event-generation cycle exists statically but every simulated "
          "chain terminated — a stateful guard bounds it; verify the guard "
          "holds under adversarial input");
    }
  }

  // A chain that never converged with no static cycle means the graph
  // under-approximated (e.g. payload-dependent generation); still report.
  if (cycles.empty() && !limited_seeds.empty()) {
    add(findings, Severity::kError, Pass::kAmplification, "runaway-chain",
        limited_seeds,
        "chain simulation exhausted its step budget although the event "
        "graph shows no cycle — event generation is input-dependent and "
        "unbounded");
  }
}

// ---- resource lint ------------------------------------------------------------

void resource_lint_pass(const RecordingContext& event_ctx,
                        const DriveLog& event_log,
                        const RecordingContext& baseline_ctx,
                        const AccessMatrix& matrix,
                        const LintOverrides& overrides,
                        std::vector<Finding>& findings) {
  // 1. Facilities requested on the baseline architecture and refused, with
  //    no kOpFacilityUnavailable punt in the same handler invocation: the
  //    program degrades silently where §6 requires explicit CP fallback.
  std::set<std::pair<ActionKind, Handler>> reported;
  for (const RecordingContext::Call& c : baseline_ctx.calls()) {
    if (c.accepted ||
        (c.kind != ActionKind::kSetTimer &&
         c.kind != ActionKind::kAddGenerator)) {
      continue;
    }
    const bool punted = std::any_of(
        baseline_ctx.punts().begin(), baseline_ctx.punts().end(),
        [&](const RecordingContext::Punt& p) {
          return p.drive == c.drive &&
                 p.opcode == core::kOpFacilityUnavailable;
        });
    if (punted || !reported.emplace(c.kind, c.during).second) {
      continue;
    }
    add(findings, Severity::kWarning, Pass::kResourceLint,
        "unchecked-facility", std::string(to_string(c.during)),
        std::string(to_string(c.kind)) +
            " is refused by the baseline architecture and the handler does "
            "not punt kOpFacilityUnavailable — the program silently loses "
            "this facility on non-event targets");
  }

  // 2. Id 0 is the refusal sentinel of every acquisition API; passing it
  //    onward means an unchecked result.
  std::set<std::pair<ActionKind, Handler>> zero_reported;
  for (const RecordingContext* ctx : {&event_ctx, &baseline_ctx}) {
    for (const RecordingContext::ZeroIdUse& z : ctx->zero_id_uses()) {
      if (!zero_reported.emplace(z.kind, z.during).second) {
        continue;
      }
      add(findings, Severity::kError, Pass::kResourceLint, "zero-id",
          std::string(to_string(z.during)),
          std::string(to_string(z.kind)) +
              " called with id 0 — 0 is the refusal sentinel, so an "
              "acquisition result was used without checking it");
    }
  }

  // 3. Egress writes to the enq/deq meta words are dead: the traffic
  //    manager extracted both at enqueue admission.
  for (const PacketDrive& d : event_log.packet_drives) {
    if (d.handler == Handler::kEgress && d.meta_written) {
      add(findings, Severity::kWarning, Pass::kResourceLint,
          "dead-meta-write", "on_egress",
          "writes enq/deq meta words (phv.user[0.." +
              std::to_string(core::kDeqMetaBase + 3) +
              "]) in the egress pipeline; both metas were extracted at "
              "enqueue admission, so these writes never reach a buffer "
              "event (stimulus: " +
              d.stimulus + ")");
      break;  // one finding is enough
    }
  }

  // 4. Ingress attaches metadata no buffer handler observably consumes.
  if (!overrides.handles_buffer_events) {
    const bool meta_written = std::any_of(
        event_log.packet_drives.begin(), event_log.packet_drives.end(),
        [](const PacketDrive& d) {
          return d.handler != Handler::kEgress && d.meta_written;
        });
    const auto is_buffer = [](Handler h) {
      return h == Handler::kEnqueue || h == Handler::kDequeue ||
             h == Handler::kOverflow || h == Handler::kUnderflow;
    };
    bool buffer_observed = std::any_of(
        event_ctx.calls().begin(), event_ctx.calls().end(),
        [&](const RecordingContext::Call& c) { return is_buffer(c.during); });
    buffer_observed =
        buffer_observed ||
        std::any_of(event_ctx.punts().begin(), event_ctx.punts().end(),
                    [&](const RecordingContext::Punt& p) {
                      return is_buffer(p.during);
                    });
    for (const RegisterUsage& reg : matrix.registers) {
      for (std::size_t h = 1; h < kNumHandlers && !buffer_observed; ++h) {
        buffer_observed = is_buffer(static_cast<Handler>(h)) &&
                          reg.totals(static_cast<Handler>(h)).any();
      }
    }
    if (meta_written && !buffer_observed) {
      add(findings, Severity::kNote, Pass::kResourceLint, "unused-meta",
          "on_ingress",
          "attaches enq/deq metadata but no buffer-event handler observably "
          "consumes it (no register access, facility call or punt from "
          "on_enqueue/on_dequeue/on_overflow/on_underflow); drop the "
          "metadata or set handles_buffer_events in the registry if state "
          "is member-only");
    }
  }
}

}  // namespace edp::analysis
