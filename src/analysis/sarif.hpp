// edp::analysis — machine-readable report output.
//
// `edp_lint --format=json` is the tool's own stable schema (one object per
// program, findings verbatim); `--format=sarif` is SARIF 2.1.0, the static
// -analysis interchange format GitHub code scanning ingests, so findings
// annotate PRs. Both emitters are deterministic: reports arrive already
// finding-sorted (analyzer.cpp) and programs print in the order given.
#pragma once

#include <string>
#include <vector>

#include "analysis/report.hpp"

namespace edp::analysis {

/// One analyzed program plus the repo-relative path of its source file
/// (registry annotation) — SARIF results need an artifact location for
/// code-scanning annotations to land somewhere.
struct ReportSource {
  const Report* report = nullptr;
  std::string source_uri;
};

/// All finding codes any pass can emit, with one-line descriptions —
/// the SARIF rule catalogue.
struct RuleInfo {
  std::string_view id;
  std::string_view description;
};
const std::vector<RuleInfo>& finding_rules();

std::string reports_to_json(const std::vector<ReportSource>& reports,
                            const std::string& target);

std::string reports_to_sarif(const std::vector<ReportSource>& reports,
                             const std::string& target);

}  // namespace edp::analysis
