#include "analysis/sarif.hpp"

#include <cstdio>
#include <sstream>

namespace edp::analysis {
namespace {

/// JSON string escaping per RFC 8259 (control chars, quote, backslash).
std::string escape(std::string_view in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string_view sarif_level(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "none";
}

}  // namespace

const std::vector<RuleInfo>& finding_rules() {
  static const std::vector<RuleInfo> rules = {
      {"port-overcommit",
       "SharedRegister is accessed from more event-processing threads than "
       "it has ports — not realizable on the declared memory"},
      {"needs-aggregation",
       "write set spans multiple threads; single-ported targets require the "
       "AggregatedRegister realization"},
      {"thread-attribution",
       "handler declares a different ThreadId than the thread it runs on — "
       "port accounting is unsound"},
      {"agg-main-misuse",
       "event thread accesses the aggregated main array directly, stealing "
       "the packet pipeline's port"},
      {"agg-array-misuse",
       "handler updates an aggregation side array owned by a different "
       "thread"},
      {"stage-overflow",
       "register dependency chains need more pipeline stages than the "
       "hardware target provides (or form a cycle)"},
      {"port-schedule-conflict",
       "same-cycle register accesses that aggregation cannot absorb exceed "
       "the stage memory's port count"},
      {"aggregation-starvation",
       "worst-case event rates leave fewer idle cycles than the aggregation "
       "side-registers need to drain — staleness grows without bound"},
      {"unguarded-cycle",
       "event-generation cycle with no rate bound; one trigger amplifies "
       "without bound"},
      {"guarded-cycle",
       "event-generation cycle bounded only by a stateful guard; verify the "
       "guard under adversarial input"},
      {"runaway-chain",
       "chain simulation exhausted its step budget with no static cycle — "
       "event generation is input-dependent and unbounded"},
      {"unchecked-facility",
       "facility refused by the baseline architecture without a "
       "kOpFacilityUnavailable punt — silent degradation"},
      {"zero-id",
       "facility call passed id 0, the refusal sentinel — an acquisition "
       "result was used unchecked"},
      {"dead-meta-write",
       "egress writes enq/deq meta words after both were extracted at "
       "enqueue admission"},
      {"unused-meta",
       "ingress attaches enq/deq metadata no buffer-event handler "
       "observably consumes"},
      {"multiport-unrealizable",
       "SharedRegister declares more same-cycle ports than the target's "
       "stage memory provides — multi-ported stateful SRAM is not "
       "realizable at line rate"},
      {"transform-applied",
       "the optimizer rewrote this register or handler (aggregation "
       "insertion, constant fold, handler fusion, or default suppression)"},
      {"staleness-bound",
       "bounded-staleness contract of an aggregation insertion: worst-case "
       "age of a pending delta under the target's idle-cycle drain budget"},
      {"unresolvable-constraint",
       "the optimizer's transforms cannot resolve this constraint; the "
       "program does not map onto the target even optimized"},
      {"register-overflow",
       "the interval domain's worst-case growth under the declared event "
       "rates escapes the register's annotated bit width within the "
       "analysis horizon — the counter wraps"},
      {"merge-noncommutative",
       "observed event-thread updates discard prior state (same new value "
       "from different old values), so the derived aggregation merge "
       "function is order-sensitive; the optimizer refuses the rewrite"},
      {"staleness-value-error",
       "the cycle staleness bound translated into worst-case value "
       "deviation: max |delta| x events arriving per staleness window for "
       "an aggregated register"},
      {"queue-occupancy-unbounded",
       "occupancy-tracking register whose admission-side increments are "
       "never closed by a matching decrement — its interval grows past any "
       "finite traffic-manager buffer"},
      {"missing-rates",
       "handler writes register state but declares no EventRates entry and "
       "the pass derives a zero rate — the value and drain budgets are "
       "vacuous for it"},
  };
  return rules;
}

std::string reports_to_json(const std::vector<ReportSource>& reports,
                            const std::string& target) {
  std::ostringstream os;
  os << "{\n  \"tool\": \"edp-verify\",\n  \"target\": \"" << escape(target)
     << "\",\n  \"programs\": [";
  bool first_program = true;
  for (const ReportSource& rs : reports) {
    const Report& r = *rs.report;
    os << (first_program ? "\n" : ",\n");
    first_program = false;
    os << "    {\n      \"program\": \"" << escape(r.program)
       << "\",\n      \"source\": \"" << escape(rs.source_uri)
       << "\",\n      \"clean\": " << (r.clean() ? "true" : "false")
       << ",\n      \"findings\": [";
    bool first = true;
    for (const Finding& f : r.findings) {
      os << (first ? "\n" : ",\n");
      first = false;
      os << "        {\"severity\": \"" << to_string(f.severity)
         << "\", \"pass\": \"" << to_string(f.pass) << "\", \"code\": \""
         << escape(f.code) << "\", \"subject\": \"" << escape(f.subject)
         << "\", \"message\": \"" << escape(f.message) << "\"}";
    }
    os << (first ? "]" : "\n      ]") << "\n    }";
  }
  os << (first_program ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

std::string reports_to_sarif(const std::vector<ReportSource>& reports,
                             const std::string& target) {
  const std::vector<RuleInfo>& rules = finding_rules();
  const auto rule_index = [&](const std::string& code) {
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (rules[i].id == code) {
        return static_cast<long>(i);
      }
    }
    return -1L;
  };

  std::ostringstream os;
  os << "{\n"
        "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        "  \"version\": \"2.1.0\",\n"
        "  \"runs\": [\n"
        "    {\n"
        "      \"tool\": {\n"
        "        \"driver\": {\n"
        "          \"name\": \"edp-verify\",\n"
        "          \"version\": \"2.0.0\",\n"
        "          \"informationUri\": "
        "\"https://example.invalid/edp-verify\",\n"
        "          \"rules\": [";
  bool first = true;
  for (const RuleInfo& rule : rules) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "            {\"id\": \"" << rule.id
       << "\", \"shortDescription\": {\"text\": \"" << escape(rule.description)
       << "\"}}";
  }
  os << "\n          ]\n"
        "        }\n"
        "      },\n"
        "      \"properties\": {\"target\": \""
     << escape(target)
     << "\"},\n"
        "      \"results\": [";
  first = true;
  for (const ReportSource& rs : reports) {
    const Report& r = *rs.report;
    for (const Finding& f : r.findings) {
      os << (first ? "\n" : ",\n");
      first = false;
      os << "        {\n          \"ruleId\": \"" << escape(f.code) << "\"";
      const long idx = rule_index(f.code);
      if (idx >= 0) {
        os << ",\n          \"ruleIndex\": " << idx;
      }
      os << ",\n          \"level\": \"" << sarif_level(f.severity)
         << "\",\n          \"message\": {\"text\": \"" << escape(r.program)
         << ": " << escape(f.subject) << ": " << escape(f.message)
         << "\"},\n          \"locations\": [\n"
            "            {\n"
            "              \"physicalLocation\": {\n"
            "                \"artifactLocation\": {\"uri\": \""
         << escape(rs.source_uri.empty() ? std::string("src/apps/registry.cpp")
                                         : rs.source_uri)
         << "\"},\n"
            "                \"region\": {\"startLine\": 1}\n"
            "              },\n"
            "              \"logicalLocations\": [\n"
            "                {\"name\": \""
         << escape(f.subject) << "\", \"fullyQualifiedName\": \""
         << escape(r.program) << "/" << escape(f.subject)
         << "\"}\n"
            "              ]\n"
            "            }\n"
            "          ]\n        }";
    }
  }
  os << (first ? "]" : "\n      ]") << "\n    }\n  ]\n}\n";
  return os.str();
}

}  // namespace edp::analysis
