#include "analysis/ir.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/recording_context.hpp"

namespace edp::analysis {

std::string_view to_string(AccessPattern pattern) {
  switch (pattern) {
    case AccessPattern::kNone:
      return "none";
    case AccessPattern::kReadOnly:
      return "read-only";
    case AccessPattern::kBlindWrite:
      return "blind-write";
    case AccessPattern::kRmw:
      return "rmw-delta";
    case AccessPattern::kMixed:
      return "read+write";
  }
  return "?";
}

bool is_aggregable(AccessPattern pattern) {
  return pattern == AccessPattern::kBlindWrite || pattern == AccessPattern::kRmw;
}

// ---- probe --------------------------------------------------------------------

void TraceProbe::on_register_access(const core::RegisterAccessEvent& e) {
  auto [it, inserted] = index_.emplace(e.reg, registers_.size());
  if (inserted) {
    IrRegister reg;
    reg.name = std::string(e.name);
    reg.aggregated = e.realization != core::RegisterRealization::kShared;
    reg.size = e.size;
    reg.ports = e.ports;
    registers_.push_back(std::move(reg));
  }
  RawAccess raw;
  raw.access.reg = it->second;
  raw.access.op = e.op;
  raw.access.realization = e.realization;
  raw.access.declared_thread = e.declared_thread;
  raw.access.cell = e.index;
  raw.access.seq = e.seq;
  raw.access.has_rmw_values = e.has_rmw_values;
  raw.access.rmw_old = e.rmw_old;
  raw.access.rmw_new = e.rmw_new;
  raw.access.rmw_linear = e.rmw_linear;
  raw.handler = ctx_->current_handler();
  raw.drive = ctx_->drive_index();
  raw_.push_back(raw);
}

namespace {

/// Whether this access consumes the register's live value (a read, or a
/// main/shared RMW). Side-array RMWs are coalesced deltas: the hardware
/// never hands the value back, so nothing can flow from them.
bool consumes_value(const IrAccess& a) {
  if (a.op == core::RegisterOp::kRead) {
    return true;
  }
  if (a.op == core::RegisterOp::kRmw) {
    return a.realization == core::RegisterRealization::kShared ||
           a.realization == core::RegisterRealization::kAggregatedMain;
  }
  return false;
}

/// Longest path (in nodes) over `adj`, which must be acyclic; nodes with no
/// edges count as chains of length 1 when `present`.
std::size_t longest_chain(std::size_t n,
                          const std::vector<std::vector<std::size_t>>& adj,
                          const std::vector<bool>& present) {
  // Memoized DFS; the caller guarantees acyclicity.
  std::vector<std::size_t> memo(n, 0);
  std::vector<std::size_t> stack;
  std::size_t best = 0;
  for (std::size_t start = 0; start < n; ++start) {
    if (!present[start]) {
      continue;
    }
    if (memo[start] == 0) {
      // Iterative post-order so deep chains cannot overflow the C++ stack.
      stack.push_back(start);
      while (!stack.empty()) {
        const std::size_t node = stack.back();
        std::size_t longest = 0;
        bool ready = true;
        for (const std::size_t next : adj[node]) {
          if (memo[next] == 0) {
            stack.push_back(next);
            ready = false;
          } else {
            longest = std::max(longest, memo[next]);
          }
        }
        if (ready) {
          stack.pop_back();
          memo[node] = longest + 1;
        }
      }
    }
    best = std::max(best, memo[start]);
  }
  return best;
}

}  // namespace

DataflowIr TraceProbe::take_ir() {
  DataflowIr ir;
  ir.registers = std::move(registers_);
  const std::size_t n = ir.registers.size();
  for (auto& per_handler : ir.patterns) {
    per_handler.assign(n, AccessPattern::kNone);
  }

  // Group raw accesses into activations by drive window (drives ascend).
  for (const RawAccess& raw : raw_) {
    if (ir.activations.empty() || ir.activations.back().drive != raw.drive ||
        ir.activations.back().handler != raw.handler) {
      IrActivation act;
      act.handler = raw.handler;
      act.drive = raw.drive;
      ir.activations.push_back(std::move(act));
    }
    ir.activations.back().accesses.push_back(raw.access);
  }
  for (IrActivation& act : ir.activations) {
    std::sort(act.accesses.begin(), act.accesses.end(),
              [](const IrAccess& a, const IrAccess& b) { return a.seq < b.seq; });
  }

  // Patterns: classify each (handler, register) from the ops observed.
  struct OpBits {
    bool read = false, write = false, rmw = false;
  };
  std::array<std::vector<OpBits>, kNumHandlers> bits;
  for (auto& per_handler : bits) {
    per_handler.assign(n, OpBits{});
  }
  for (const IrActivation& act : ir.activations) {
    const auto h = static_cast<std::size_t>(act.handler);
    for (const IrAccess& a : act.accesses) {
      OpBits& b = bits[h][a.reg];
      const bool side =
          a.realization == core::RegisterRealization::kAggregatedEnq ||
          a.realization == core::RegisterRealization::kAggregatedDeq;
      if (a.op == core::RegisterOp::kRead) {
        b.read = true;
      } else if (a.op == core::RegisterOp::kWrite) {
        b.write = true;
      } else {
        // A side-array RMW is a coalesced delta (blind); a main/shared RMW
        // is a value-consuming delta the aggregation arrays can still
        // absorb when issued by an event thread.
        (side ? b.write : b.rmw) = true;
      }
    }
  }
  for (std::size_t h = 0; h < kNumHandlers; ++h) {
    for (std::size_t r = 0; r < n; ++r) {
      const OpBits& b = bits[h][r];
      AccessPattern p = AccessPattern::kNone;
      if (b.read && (b.write || b.rmw)) {
        p = AccessPattern::kMixed;
      } else if (b.read) {
        p = AccessPattern::kReadOnly;
      } else if (b.rmw) {
        p = b.write ? AccessPattern::kMixed : AccessPattern::kRmw;
      } else if (b.write) {
        p = AccessPattern::kBlindWrite;
      }
      ir.patterns[h][r] = p;
    }
  }

  // Dependency edges: within one activation, every register whose value was
  // consumed earlier conservatively feeds every later access to another
  // register.
  std::set<std::tuple<std::size_t, std::size_t, Handler>> seen;
  for (const IrActivation& act : ir.activations) {
    std::set<std::size_t> value_sources;
    for (const IrAccess& a : act.accesses) {
      for (const std::size_t src : value_sources) {
        if (src != a.reg &&
            seen.emplace(src, a.reg, act.handler).second) {
          ir.deps.push_back(DepEdge{src, a.reg, act.handler});
        }
      }
      if (consumes_value(a)) {
        value_sources.insert(a.reg);
      }
    }
  }

  // Per-handler depth: longest chain over that handler's own edges.
  for (std::size_t h = 0; h < kNumHandlers; ++h) {
    std::vector<std::vector<std::size_t>> adj(n);
    std::vector<bool> present(n, false);
    for (std::size_t r = 0; r < n; ++r) {
      present[r] = ir.patterns[h][r] != AccessPattern::kNone;
    }
    bool any_edge = false;
    for (const DepEdge& e : ir.deps) {
      if (e.witness == static_cast<Handler>(h)) {
        adj[e.from].push_back(e.to);
        any_edge = true;
      }
    }
    const bool any_reg =
        std::any_of(present.begin(), present.end(), [](bool p) { return p; });
    if (!any_reg) {
      ir.depth[h] = 0;
    } else if (!any_edge) {
      ir.depth[h] = 1;
    } else {
      // A single handler's trace is sequenced, so its edges are acyclic.
      ir.depth[h] = longest_chain(n, adj, present);
    }
  }

  // Merged graph: cycle detection, then longest chain if acyclic.
  {
    std::vector<std::vector<std::size_t>> adj(n);
    for (const DepEdge& e : ir.deps) {
      adj[e.from].push_back(e.to);
    }
    std::vector<int> state(n, 0);  // 0 unvisited, 1 on path, 2 done
    std::vector<std::size_t> path;
    // Iterative DFS with an explicit edge cursor per path node.
    for (std::size_t start = 0; start < n && !ir.cyclic; ++start) {
      if (state[start] != 0) {
        continue;
      }
      std::vector<std::pair<std::size_t, std::size_t>> frames{{start, 0}};
      state[start] = 1;
      path.push_back(start);
      while (!frames.empty() && !ir.cyclic) {
        auto& [node, cursor] = frames.back();
        if (cursor < adj[node].size()) {
          const std::size_t next = adj[node][cursor++];
          if (state[next] == 1) {
            // Cut the recorded path down to the cycle itself.
            const auto at = std::find(path.begin(), path.end(), next);
            ir.cycle_regs.assign(at, path.end());
            ir.cyclic = true;
          } else if (state[next] == 0) {
            state[next] = 1;
            path.push_back(next);
            frames.emplace_back(next, 0);
          }
        } else {
          state[node] = 2;
          path.pop_back();
          frames.pop_back();
        }
      }
    }
    if (!ir.cyclic) {
      std::vector<bool> present(n, true);
      ir.merged_depth = n == 0 ? 0 : longest_chain(n, adj, present);
    }
  }
  return ir;
}

// ---- DataflowIr ---------------------------------------------------------------

AccessPattern DataflowIr::pattern(Handler handler, std::size_t reg) const {
  const auto& per_handler = patterns[static_cast<std::size_t>(handler)];
  return reg < per_handler.size() ? per_handler[reg] : AccessPattern::kNone;
}

AccessMatrix DataflowIr::to_matrix() const {
  AccessMatrix matrix;
  matrix.registers.reserve(registers.size());
  for (const IrRegister& reg : registers) {
    RegisterUsage usage;
    usage.name = reg.name;
    usage.aggregated = reg.aggregated;
    usage.folded = reg.folded;
    usage.size = reg.size;
    usage.ports = reg.ports;
    matrix.registers.push_back(std::move(usage));
  }
  for (const IrActivation& act : activations) {
    const auto h = static_cast<std::size_t>(act.handler);
    for (const IrAccess& a : act.accesses) {
      RegisterUsage& usage = matrix.registers[a.reg];
      AccessCounts& counts =
          usage.counts[h][static_cast<std::size_t>(a.realization)];
      if (a.op == core::RegisterOp::kRead) {
        ++counts.reads;
      } else if (a.op == core::RegisterOp::kWrite) {
        ++counts.writes;
      } else {
        ++counts.reads;
        ++counts.writes;
      }
      if (a.realization == core::RegisterRealization::kShared) {
        usage.declared_threads[h] |= static_cast<std::uint8_t>(
            1u << static_cast<unsigned>(a.declared_thread));
      }
    }
  }
  return matrix;
}

std::string DataflowIr::format() const {
  std::ostringstream os;
  for (std::size_t h = 0; h < kNumHandlers; ++h) {
    const auto handler = static_cast<Handler>(h);
    bool any = false;
    for (std::size_t r = 0; r < registers.size(); ++r) {
      any = any || patterns[h][r] != AccessPattern::kNone;
    }
    if (!any) {
      continue;
    }
    os << "  " << to_string(handler) << " (depth " << depth[h] << "):";
    for (std::size_t r = 0; r < registers.size(); ++r) {
      if (patterns[h][r] != AccessPattern::kNone) {
        os << " " << registers[r].name << "=" << to_string(patterns[h][r]);
      }
    }
    os << "\n";
  }
  for (const DepEdge& e : deps) {
    os << "  dep " << registers[e.from].name << " -> " << registers[e.to].name
       << " [" << to_string(e.witness) << "]\n";
  }
  for (const IrRegister& reg : registers) {
    if (reg.folded) {
      os << "  folded: " << reg.name << " (constant match-action table)\n";
    }
  }
  if (cyclic) {
    os << "  dependency cycle:";
    for (const std::size_t r : cycle_regs) {
      os << " " << registers[r].name;
    }
    os << "\n";
  } else if (!registers.empty()) {
    os << "  merged depth: " << merged_depth << "\n";
  }
  return os.str();
}

}  // namespace edp::analysis
