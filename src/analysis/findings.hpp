// edp::analysis — findings, handlers, the access matrix, and the event
// graph: the result vocabulary shared by every pass.
//
// `edp-verify` (paper §4, plus McClurg et al. and Cascone et al. from
// PAPERS.md) checks an EventProgram *before* it runs:
//
//   * the handler-thread × register access matrix and its port-budget
//     feasibility (is the program realizable on the configured memories?),
//   * the ordered dataflow IR and its hardware pipeline mapping (ir.hpp,
//     hardware_model.hpp): stage depth, per-stage port schedule, and the
//     idle-cycle aggregation drain budget,
//   * the event-generation graph and its unguarded amplification cycles
//     (can one trigger snowball into an unbounded event storm?),
//   * resource lints (facilities used without checking availability,
//     enq/deq metadata conventions).
//
// report.hpp assembles these into the per-program Report.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/register_probe.hpp"

namespace edp::analysis {

// ---- findings -----------------------------------------------------------------

/// kNote findings are facts worth knowing (e.g. "requires AggregatedRegister
/// on single-ported targets"); kWarning and kError fail `edp_lint`.
enum class Severity : std::uint8_t { kNote, kWarning, kError };

enum class Pass : std::uint8_t {
  kPortBudget,
  kPipelineMapping,
  kAmplification,
  kResourceLint,
  kOptimizer,       ///< transform diagnostics from src/analysis/optimizer.hpp
  kValueAnalysis,   ///< abstract-interpretation value domain (value_analysis.hpp)
};

std::string_view to_string(Severity severity);
std::string_view to_string(Pass pass);

/// The complete finding-code vocabulary, in SARIF rule-catalogue order.
/// This is the single source of truth shared by sarif.cpp's rule catalogue
/// and scripts/validate_sarif.py --codes-from (which parses this array), so
/// the machine-readable catalogue cannot drift from the passes. Extend it
/// whenever a pass grows a new code; a ctest asserts finding_rules() matches.
inline constexpr std::string_view kFindingCodes[] = {
    "port-overcommit",
    "needs-aggregation",
    "thread-attribution",
    "agg-main-misuse",
    "agg-array-misuse",
    "stage-overflow",
    "port-schedule-conflict",
    "aggregation-starvation",
    "unguarded-cycle",
    "guarded-cycle",
    "runaway-chain",
    "unchecked-facility",
    "zero-id",
    "dead-meta-write",
    "unused-meta",
    "multiport-unrealizable",
    "transform-applied",
    "staleness-bound",
    "unresolvable-constraint",
    "register-overflow",
    "merge-noncommutative",
    "staleness-value-error",
    "queue-occupancy-unbounded",
    "missing-rates",
};

struct Finding {
  Severity severity = Severity::kNote;
  Pass pass = Pass::kResourceLint;
  /// Stable machine-readable id, e.g. "port-overcommit"; tests match on it.
  std::string code;
  /// What the finding is about (a register, handler, or cycle).
  std::string subject;
  std::string message;
};

// ---- handlers -----------------------------------------------------------------

/// One row of the access matrix: the 13 event-kind handlers plus on_attach.
/// Ordered to match core::EventKind (offset by kAttach).
enum class Handler : std::uint8_t {
  kAttach = 0,
  kIngress,
  kEgress,
  kRecirculate,
  kGenerated,
  kTransmit,
  kEnqueue,
  kDequeue,
  kOverflow,
  kUnderflow,
  kTimer,
  kControl,
  kLinkStatus,
  kUser,
};
inline constexpr std::size_t kNumHandlers = 14;

std::string_view to_string(Handler handler);

/// The event-processing thread a handler's logical pipeline runs on
/// (paper Figure 2) — the ground-truth row label for the access matrix.
core::ThreadId thread_of(Handler handler);

/// True for the four PHV-carrying handlers (ingress pipeline class).
bool is_packet_handler(Handler handler);

// ---- access matrix ------------------------------------------------------------

struct AccessCounts {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;  ///< writes + RMWs
  bool any() const { return reads + writes > 0; }
};

inline constexpr std::size_t kNumRealizations = 4;

/// Everything the analyzer learned about one register extern.
struct RegisterUsage {
  std::string name;
  bool aggregated = false;  ///< AggregatedRegister vs SharedRegister
  /// Constant-folded by the optimizer: never written outside on_attach, so
  /// it compiles to match-action constants — no ports, no stage capacity.
  bool folded = false;
  std::size_t size = 0;
  int ports = 1;  ///< configured budget (SharedRegister); 1 for aggregated

  /// counts[handler][realization]: reads/writes per handler per physical
  /// array (shared registers only use RegisterRealization::kShared).
  std::array<std::array<AccessCounts, kNumRealizations>, kNumHandlers>
      counts{};

  /// Declared-ThreadId bitmask per handler (SharedRegister accesses), for
  /// attribution-mismatch lints.
  std::array<std::uint8_t, kNumHandlers> declared_threads{};

  AccessCounts totals(Handler handler) const;
  /// Handlers (excluding on_attach) with any access / any write.
  std::vector<Handler> accessing_handlers() const;
  std::vector<Handler> writing_handlers() const;
};

struct AccessMatrix {
  std::vector<RegisterUsage> registers;
  std::string format() const;
};

// ---- event-generation graph ---------------------------------------------------

/// The program/architecture action that spawns the downstream event.
enum class ActionKind : std::uint8_t {
  kRecirculate,       ///< std_meta.recirculate after a packet handler
  kRecircClone,       ///< std_meta.recirc_clone from the egress pipeline
  kInjectPacket,      ///< EventContext::inject_packet
  kSendPacket,        ///< EventContext::send_packet (direct enqueue)
  kForward,           ///< normal unicast/multicast egress (enqueue follows)
  kRaiseUserEvent,    ///< EventContext::raise_user_event
  kSetTimer,          ///< set_periodic_timer / set_oneshot_timer
  kCancelTimer,       ///< cancel_timer (no downstream event)
  kAddGenerator,      ///< add_generator (periodic emissions)
  kTriggerGenerator,  ///< trigger_generator (burst now)
  kSetTemplate,       ///< set_generator_template (no downstream event)
};

std::string_view to_string(ActionKind action);

struct GraphEdge {
  Handler from = Handler::kAttach;
  Handler to = Handler::kIngress;
  ActionKind action = ActionKind::kForward;
  /// True when the architecture bounds the edge's rate (nonzero timer
  /// period / generator period): such edges cannot amplify.
  bool rate_bounded = false;
  std::string detail;
};

struct EventGraph {
  std::vector<GraphEdge> edges;

  /// Deduplicated (from, to, action) view, for printing and cycle search.
  std::string format() const;

  /// Handler cycles reachable through non-rate-bounded edges. Each cycle is
  /// the sequence of handlers, starting from its smallest element.
  std::vector<std::vector<Handler>> cycles() const;
};

}  // namespace edp::analysis
