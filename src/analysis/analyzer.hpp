// edp::analysis — the `edp-verify` entry point.
//
// `analyze_program` takes a *factory*, not an instance: each phase drives a
// fresh program so matrix extraction, chain simulation, and the baseline
// resource lint never contaminate one another's state (a dedup window
// primed by the matrix drives must not hide an amplification chain).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "analysis/passes.hpp"
#include "analysis/report.hpp"
#include "core/event_program.hpp"

namespace edp::analysis {

using ProgramFactory = std::function<std::unique_ptr<core::EventProgram>()>;

struct AnalyzerOptions {
  LintOverrides lint;
  /// Chain-simulation step budget per seed stimulus; a chain still
  /// spawning events at the budget is unguarded amplification.
  std::size_t max_chain_steps = 64;
  /// Hardware target the pipeline-mapping pass checks against; nullptr
  /// means the unconstrained simulation model (mapping reported, nothing
  /// flagged). The pointer must outlive the call.
  const HardwareModel* model = nullptr;
  /// Declared worst-case event rates (registry annotations); anything left
  /// unset is derived from the model and the recorded timer/generator
  /// periods.
  EventRates rates;
  /// Per-register bit-width annotations for the value analysis's overflow
  /// check (registry annotations; unannotated registers assume the
  /// simulator's 64-bit cells).
  RegisterWidths widths;
  /// Value-analysis horizon / width / buffer knobs.
  ValueAnalysisOptions value;
  /// Bounded multi-stimulus exploration (DriveOptions::ingress_repeats).
  std::size_t stimulus_repeats = 3;
};

/// Everything the passes consume, extracted once per program variant. The
/// optimizer re-extracts traces after a transform and re-runs the passes
/// over them, so extraction and judgement are separate entry points.
struct ProgramTraces {
  ProgramTraces();

  RecordingContext event_ctx;     ///< event-architecture facility log
  DriveLog event_log;
  DataflowIr ir;
  EventGraph graph;
  std::vector<ChainRun> chains;
  RecordingContext baseline_ctx;  ///< baseline architecture, for the lint
};

/// Phases 1-3 of the analysis: drive fresh instances from `factory` under
/// the trace probe, in chain mode, and on the baseline architecture.
ProgramTraces extract_traces(const ProgramFactory& factory,
                             const AnalyzerOptions& options);

/// Run the verification passes over already-extracted traces. The caller
/// may mutate `traces.ir` between extraction and judgement (the optimizer
/// marks constant-folded registers this way).
Report analyze_traces(const std::string& name, const ProgramTraces& traces,
                      const AnalyzerOptions& options);

/// Run all passes over the program `factory` builds. `name` labels the
/// report (typically the registry name).
Report analyze_program(const std::string& name, const ProgramFactory& factory,
                       const AnalyzerOptions& options = {});

}  // namespace edp::analysis
