// edp::analysis — the handler driver.
//
// Extracts the dataflow IR traces and the recorded-action log by invoking
// every handler of an EventProgram directly with synthetic stimuli (no
// network, no scheduler): each protocol the standard parser knows
// contributes a bounded burst of ingress/egress/recirculate packets (so
// threshold-guarded accesses appear in the IR, not just the first-packet
// path); buffer events replay the enq/deq metadata the program's own
// ingress wrote, at a shallow and a deep queue depth; timer and user
// events replay what the program itself configured. A second entry point
// re-runs a fresh program instance in *chain* mode, dynamically following
// the events each handler spawns, to distinguish guarded from unguarded
// amplification.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/recording_context.hpp"
#include "core/register_probe.hpp"

namespace edp::analysis {

/// Installs a probe for the current scope, restoring the previous one.
class ProbeInstallation {
 public:
  explicit ProbeInstallation(core::RegisterProbe* probe)
      : previous_(core::exchange_register_probe(probe)) {}
  ~ProbeInstallation() { core::exchange_register_probe(previous_); }

  ProbeInstallation(const ProbeInstallation&) = delete;
  ProbeInstallation& operator=(const ProbeInstallation&) = delete;

 private:
  core::RegisterProbe* previous_;
};

/// Postconditions of one packet-handler drive.
struct PacketDrive {
  Handler handler = Handler::kIngress;
  std::string stimulus;
  std::size_t drive = 0;  ///< RecordingContext drive index
  bool parse_error = false;
  bool drop = false;
  bool recirculate = false;
  bool recirc_clone = false;
  /// Ingress-class handler let the packet proceed to the traffic manager.
  bool forwarded = false;
  /// Handler wrote phv.user[0..7] (the enq/deq meta words).
  bool meta_written = false;
  tm_::EventMetaWords enq_meta{};
  tm_::EventMetaWords deq_meta{};
  std::uint32_t pkt_len = 0;
};

struct DriveLog {
  std::vector<PacketDrive> packet_drives;
  /// Handlers invoked at least once during the drive (bit index = the
  /// analysis Handler enum, which matches core::ProgramHandler).
  std::uint32_t driven_mask = 0;
  /// Handlers whose *default* (base-class) body ran during the drive, via
  /// core::exchange_default_handler_trace. driven && default means the
  /// program does not override the handler — provably a no-op, so the
  /// optimizer may suppress that event's delivery entirely.
  std::uint32_t default_mask = 0;

  bool driven(Handler h) const {
    return (driven_mask >> static_cast<unsigned>(h)) & 1u;
  }
  bool provably_default(Handler h) const {
    return driven(h) && ((default_mask >> static_cast<unsigned>(h)) & 1u);
  }
  /// Driven and never hit the default body: the program overrides it.
  bool overridden(Handler h) const {
    return driven(h) && !((default_mask >> static_cast<unsigned>(h)) & 1u);
  }
};

/// One chain-mode run from one seed stimulus.
struct ChainRun {
  std::string seed;
  std::size_t steps = 0;
  /// The chain was still spawning events when the step budget ran out —
  /// the dynamic signature of unguarded amplification.
  bool limited = false;
};

/// Bounds for the stimulus exploration in drive_all.
struct DriveOptions {
  /// How many times each ingress stimulus is repeated back-to-back, so
  /// counters cross small thresholds and the accesses behind them reach
  /// the IR. 0 behaves like 1.
  std::size_t ingress_repeats = 3;
  /// queue_bytes() answer during the deep buffer-event replay.
  std::size_t deep_queue_bytes = 256 * 1024;
};

/// Drive every handler per stimulus (trace mode; spawned events are
/// recorded but followed at most one level, e.g. injected packets feed the
/// on_generated drives). Facility calls accumulate in `ctx`.
DriveLog drive_all(core::EventProgram& program, RecordingContext& ctx,
                   const DriveOptions& options = {});

/// Chain mode: seed each ingress stimulus into a *fresh* program instance
/// and keep driving the handlers its actions spawn, following only edges
/// the architecture does not rate-bound. Stateful guards (TTLs, dedup
/// windows, hop limits) terminate the chain; a run that exhausts
/// `max_steps_per_seed` is dynamically unguarded.
std::vector<ChainRun> simulate_chains(core::EventProgram& program,
                                      RecordingContext& ctx,
                                      std::size_t max_steps_per_seed = 64);

}  // namespace edp::analysis
