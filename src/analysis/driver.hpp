// edp::analysis — the handler driver.
//
// Extracts the access matrix and the recorded-action log by invoking every
// handler of an EventProgram directly with synthetic stimuli (no network,
// no scheduler): each protocol the standard parser knows contributes one
// ingress/egress/recirculate packet; buffer events replay the enq/deq
// metadata the program's own ingress wrote; timer and user events replay
// what the program itself configured. A second entry point re-runs a fresh
// program instance in *chain* mode, dynamically following the events each
// handler spawns, to distinguish guarded from unguarded amplification.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/recording_context.hpp"
#include "analysis/report.hpp"
#include "core/register_probe.hpp"

namespace edp::analysis {

/// Builds the AccessMatrix from probe callbacks, attributing each register
/// access to the handler the RecordingContext is currently driving.
class MatrixProbe : public core::RegisterProbe {
 public:
  explicit MatrixProbe(const RecordingContext& ctx) : ctx_(&ctx) {}

  void on_register_access(const core::RegisterAccessEvent& e) override;

  AccessMatrix take_matrix() { return std::move(matrix_); }

 private:
  const RecordingContext* ctx_;
  AccessMatrix matrix_;
  std::unordered_map<const void*, std::size_t> index_;
};

/// Installs a probe for the current scope, restoring the previous one.
class ProbeInstallation {
 public:
  explicit ProbeInstallation(core::RegisterProbe* probe)
      : previous_(core::exchange_register_probe(probe)) {}
  ~ProbeInstallation() { core::exchange_register_probe(previous_); }

  ProbeInstallation(const ProbeInstallation&) = delete;
  ProbeInstallation& operator=(const ProbeInstallation&) = delete;

 private:
  core::RegisterProbe* previous_;
};

/// Postconditions of one packet-handler drive.
struct PacketDrive {
  Handler handler = Handler::kIngress;
  std::string stimulus;
  std::size_t drive = 0;  ///< RecordingContext drive index
  bool parse_error = false;
  bool drop = false;
  bool recirculate = false;
  bool recirc_clone = false;
  /// Ingress-class handler let the packet proceed to the traffic manager.
  bool forwarded = false;
  /// Handler wrote phv.user[0..7] (the enq/deq meta words).
  bool meta_written = false;
  tm_::EventMetaWords enq_meta{};
  tm_::EventMetaWords deq_meta{};
  std::uint32_t pkt_len = 0;
};

struct DriveLog {
  std::vector<PacketDrive> packet_drives;
};

/// One chain-mode run from one seed stimulus.
struct ChainRun {
  std::string seed;
  std::size_t steps = 0;
  /// The chain was still spawning events when the step budget ran out —
  /// the dynamic signature of unguarded amplification.
  bool limited = false;
};

/// Drive every handler once per stimulus (matrix mode; spawned events are
/// recorded but followed at most one level, e.g. injected packets feed the
/// on_generated drives). Facility calls accumulate in `ctx`.
DriveLog drive_all(core::EventProgram& program, RecordingContext& ctx);

/// Chain mode: seed each ingress stimulus into a *fresh* program instance
/// and keep driving the handlers its actions spawn, following only edges
/// the architecture does not rate-bound. Stateful guards (TTLs, dedup
/// windows, hop limits) terminate the chain; a run that exhausts
/// `max_steps_per_seed` is dynamically unguarded.
std::vector<ChainRun> simulate_chains(core::EventProgram& program,
                                      RecordingContext& ctx,
                                      std::size_t max_steps_per_seed = 64);

}  // namespace edp::analysis
