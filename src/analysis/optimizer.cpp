#include "analysis/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

namespace edp::analysis {
namespace {

std::string rate_str(double rate) {
  std::ostringstream os;
  if (rate >= 1e9) {
    os << rate / 1e9 << "G/s";
  } else if (rate >= 1e6) {
    os << rate / 1e6 << "M/s";
  } else if (rate >= 1e3) {
    os << rate / 1e3 << "k/s";
  } else {
    os << rate << "/s";
  }
  return os.str();
}

std::string micros_str(double seconds) {
  std::ostringstream os;
  os << seconds * 1e6 << "us";
  return os.str();
}

void add(std::vector<Finding>& findings, Severity severity, std::string code,
         std::string subject, std::string message) {
  findings.push_back(Finding{severity, Pass::kOptimizer, std::move(code),
                             std::move(subject), std::move(message)});
}

bool writes(AccessPattern p) {
  return p == AccessPattern::kBlindWrite || p == AccessPattern::kRmw ||
         p == AccessPattern::kMixed;
}

bool is_event_thread(core::ThreadId t) {
  return t == core::ThreadId::kEnqueue || t == core::ThreadId::kDequeue;
}

/// The port-constraint error codes aggregation-insertion can resolve.
bool aggregation_candidate_code(const std::string& code) {
  return code == "multiport-unrealizable" || code == "port-overcommit" ||
         code == "port-schedule-conflict";
}

/// Observed RMW deltas of one register on the enqueue/dequeue threads —
/// the data the merge function is derived from.
struct DeltaSummary {
  std::size_t count = 0;
  bool all_have_values = true;
  std::int64_t min = std::numeric_limits<std::int64_t>::max();
  std::int64_t max = std::numeric_limits<std::int64_t>::min();
};

DeltaSummary summarize_deltas(const DataflowIr& ir, std::size_t reg) {
  DeltaSummary s;
  for (const IrActivation& act : ir.activations) {
    if (!is_event_thread(thread_of(act.handler))) {
      continue;
    }
    for (const IrAccess& a : act.accesses) {
      if (a.reg != reg || a.op != core::RegisterOp::kRmw) {
        continue;
      }
      ++s.count;
      if (!a.has_rmw_values) {
        s.all_have_values = false;
        continue;
      }
      const std::int64_t delta = a.rmw_new - a.rmw_old;
      s.min = std::min(s.min, delta);
      s.max = std::max(s.max, delta);
    }
  }
  return s;
}

/// Why aggregation-insertion cannot rewrite this register; empty when the
/// observed access patterns prove the rewrite safe.
std::string aggregation_blocker(const DataflowIr& ir, std::size_t reg) {
  for (std::size_t h = 1; h < kNumHandlers; ++h) {
    const auto handler = static_cast<Handler>(h);
    const AccessPattern p = ir.patterns[h][reg];
    if (p == AccessPattern::kNone) {
      continue;
    }
    const core::ThreadId t = thread_of(handler);
    if (is_event_thread(t)) {
      if (p != AccessPattern::kRmw) {
        return std::string(to_string(handler)) + " " + std::string(to_string(p)) +
               "-accesses the register on an event thread — aggregation side "
               "arrays only absorb coalescible RMW deltas, not accesses that "
               "need the live value";
      }
    } else if (is_packet_handler(handler)) {
      continue;  // the packet pipeline owns the aggregated main port
    } else if (writes(p)) {
      return std::string(to_string(handler)) +
             " writes the register from a carrier thread — the aggregated "
             "realization provides no carrier-thread port";
    } else {
      return std::string(to_string(handler)) +
             " reads the register from a carrier thread — the aggregated "
             "main array's port belongs to the packet pipeline";
    }
  }
  const DeltaSummary deltas = summarize_deltas(ir, reg);
  if (deltas.count == 0) {
    return "no enqueue/dequeue-thread RMW deltas were observed — nothing "
           "for the side arrays to absorb";
  }
  if (!deltas.all_have_values) {
    return "RMW deltas are not integral — no merge function can be derived "
           "from the observed old/new values";
  }
  // The value analysis's soundness precondition: deferring deltas through
  // side arrays reorders them, so a witness that the update discards prior
  // state makes the derived sum-merge a determinism hazard, not a rewrite.
  const std::string witness = merge_commutativity_blocker(ir, reg);
  if (!witness.empty()) {
    return "derived merge function is not commutative: " + witness;
  }
  return "";
}

/// The EventKinds the Event Merger delivers (suppressible / fusible); the
/// four packet kinds flow through the pipeline itself and stay queued.
/// NOTE: Handler and EventKind are *not* offset-aligned (on_transmit sits
/// before the buffer events in the Handler enum, kPacketTransmitted before
/// kEnqueue in EventKind) — map explicitly.
struct MergerKind {
  Handler handler;
  core::EventKind kind;
};
constexpr MergerKind kMergerKinds[] = {
    {Handler::kTransmit, core::EventKind::kPacketTransmitted},
    {Handler::kEnqueue, core::EventKind::kEnqueue},
    {Handler::kDequeue, core::EventKind::kDequeue},
    {Handler::kOverflow, core::EventKind::kBufferOverflow},
    {Handler::kUnderflow, core::EventKind::kBufferUnderflow},
    {Handler::kTimer, core::EventKind::kTimer},
    {Handler::kControl, core::EventKind::kControlPlane},
    {Handler::kLinkStatus, core::EventKind::kLinkStatus},
    {Handler::kUser, core::EventKind::kUser},
};

/// Fusion candidates: TM-callback events whose handler can run inline at
/// the observation point.
bool fusion_candidate(Handler h) {
  return h == Handler::kEnqueue || h == Handler::kDequeue ||
         h == Handler::kOverflow || h == Handler::kUnderflow;
}

/// A handler is fusible when its every observed access lands in the
/// aggregation side arrays (pure delta coalescing) and it never touches an
/// architecture facility — then running it inline at the TM callback,
/// inside the same pipeline slot, changes only the deltas' timestamps.
bool fusible(const ProgramTraces& traces, Handler h) {
  bool any_access = false;
  for (const IrActivation& act : traces.ir.activations) {
    if (act.handler != h) {
      continue;
    }
    for (const IrAccess& a : act.accesses) {
      any_access = true;
      if (a.realization != core::RegisterRealization::kAggregatedEnq &&
          a.realization != core::RegisterRealization::kAggregatedDeq) {
        return false;
      }
    }
  }
  if (!any_access) {
    return false;  // side effects live in member state the probe cannot see
  }
  const auto during_h = [h](const auto& rec) { return rec.during == h; };
  return std::none_of(traces.event_ctx.calls().begin(),
                      traces.event_ctx.calls().end(), during_h) &&
         std::none_of(traces.event_ctx.punts().begin(),
                      traces.event_ctx.punts().end(), during_h);
}

std::size_t count_severity(const Report& report, Severity severity) {
  return static_cast<std::size_t>(
      std::count_if(report.findings.begin(), report.findings.end(),
                    [&](const Finding& f) { return f.severity == severity; }));
}

}  // namespace

Report OptimizationResult::combined() const {
  Report r = optimized;
  r.findings.insert(r.findings.end(), diagnostics.begin(), diagnostics.end());
  std::stable_sort(r.findings.begin(), r.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return std::tie(a.code, a.subject, a.message) <
                            std::tie(b.code, b.subject, b.message);
                   });
  return r;
}

std::string OptimizationResult::format(bool verbose) const {
  std::ostringstream os;
  os << "== edp-optimize: " << program << " -> " << target << " ==\n";
  if (transforms.empty()) {
    os << "  no transforms applied\n";
  } else {
    os << "  transforms applied: " << transforms.size() << "\n";
    for (const TransformRecord& t : transforms) {
      os << "    " << t.kind << " " << t.subject << ": " << t.detail << "\n";
    }
  }
  os << "  dispatch plan: " << plan.count(core::DispatchMode::kFused)
     << " fused, " << plan.count(core::DispatchMode::kSuppressed)
     << " suppressed, " << plan.count(core::DispatchMode::kQueued)
     << " queued event kind(s)\n";
  for (const StalenessBound& b : staleness) {
    os << "  staleness bound " << b.reg << ": demand "
       << rate_str(b.demand_per_sec) << " vs idle "
       << rate_str(b.idle_rate_per_sec);
    if (b.stable) {
      os << " -> " << micros_str(b.bound_seconds) << " (" << b.bound_cycles
         << " cycles)\n";
    } else {
      os << " -> unbounded (drain starved)\n";
    }
  }
  os << "  re-verification: naive " << count_severity(naive, Severity::kError)
     << " error(s)/" << count_severity(naive, Severity::kWarning)
     << " warning(s) -> optimized "
     << count_severity(optimized, Severity::kError) << " error(s)/"
     << count_severity(optimized, Severity::kWarning) << " warning(s); "
     << (feasible ? "feasible" : "unresolvable") << "\n";
  const Report all = combined();
  for (const Finding& f : all.findings) {
    os << "  " << to_string(f.severity) << " [" << to_string(f.pass) << "/"
       << f.code << "] " << f.subject << ": " << f.message << "\n";
  }
  if (verbose) {
    os << optimized.format(true);
  }
  return os.str();
}

OptimizationResult optimize_program(const std::string& name,
                                    const ProgramFactory& factory,
                                    const AnalyzerOptions& options) {
  OptimizationResult result;
  result.program = name;
  const HardwareModel& model =
      options.model != nullptr ? *options.model : unconstrained_model();
  result.target = model.name;

  ProgramTraces traces = extract_traces(factory, options);
  result.naive = analyze_traces(name, traces, options);

  // ---- transform 1: aggregation-insertion ---------------------------------
  // Candidates: SharedRegisters the naive verification rejected on a port
  // constraint. Candidate order follows the IR register order, so the
  // transform list is deterministic.
  std::set<std::string> candidate_names;
  for (const Finding& f : result.naive.findings) {
    if (f.severity == Severity::kError && aggregation_candidate_code(f.code)) {
      candidate_names.insert(f.subject);
    }
  }
  std::vector<std::string> accepted;
  // Rejection reasons, surfaced only if the register's error survives
  // re-verification — another transform (constant folding) may still
  // resolve it, and the re-verified report is the authority.
  std::map<std::string, std::string> blockers;
  for (std::size_t r = 0; r < traces.ir.registers.size(); ++r) {
    const IrRegister& reg = traces.ir.registers[r];
    if (reg.aggregated || candidate_names.count(reg.name) == 0) {
      continue;
    }
    std::string blocker = aggregation_blocker(traces.ir, r);
    if (blocker.empty()) {
      // The traces prove the rewrite safe; the program must also support
      // it (probe a throwaway instance before committing).
      if (!factory()->realize_aggregated(reg.name)) {
        blocker =
            "the program declines realize_aggregated for this register — no "
            "aggregated realization is implemented";
      }
    }
    if (!blocker.empty()) {
      blockers.emplace(
          reg.name,
          "port constraint cannot be resolved by aggregation-insertion: " +
              blocker);
      continue;
    }
    const DeltaSummary deltas = summarize_deltas(traces.ir, r);
    std::ostringstream detail;
    detail << "re-realized as AggregatedRegister (merge fn: sum of RMW "
           << "deltas in [" << deltas.min << ", " << deltas.max << "]; "
           << reg.ports << " declared port(s) -> 1 main + enq/deq side "
           << "arrays)";
    result.transforms.push_back(
        TransformRecord{"aggregation-insertion", reg.name, detail.str()});
    accepted.push_back(reg.name);
  }

  result.optimized_factory = factory;
  if (!accepted.empty()) {
    result.optimized_factory = [factory, accepted]() {
      std::unique_ptr<core::EventProgram> program = factory();
      for (const std::string& reg : accepted) {
        program->realize_aggregated(reg);
      }
      return program;
    };
    // The rewrite changed the program; everything downstream (constant
    // folding, the dispatch plan, re-verification) judges the rewritten
    // traces.
    traces = extract_traces(result.optimized_factory, options);
  }

  // ---- transform 2a: constant-fold attach-only registers ------------------
  for (std::size_t r = 0; r < traces.ir.registers.size(); ++r) {
    IrRegister& reg = traces.ir.registers[r];
    if (reg.aggregated || reg.folded) {
      continue;
    }
    bool read_after_attach = false;
    bool written_after_attach = false;
    for (std::size_t h = 1; h < kNumHandlers; ++h) {
      const AccessPattern p = traces.ir.patterns[h][r];
      read_after_attach = read_after_attach || p == AccessPattern::kReadOnly ||
                          p == AccessPattern::kMixed;
      written_after_attach = written_after_attach || writes(p);
    }
    if (read_after_attach && !written_after_attach) {
      reg.folded = true;
      result.transforms.push_back(TransformRecord{
          "constant-fold", reg.name,
          "never written after on_attach — every lookup key is invariant, so "
          "the register compiles to match-action constants (no register "
          "port, no stateful-ALU slot)"});
    }
  }

  // ---- transform 2b: pipeline merging (the dispatch plan) -----------------
  for (const MergerKind& mk : kMergerKinds) {
    if (fusion_candidate(mk.handler) &&
        traces.event_log.overridden(mk.handler) && fusible(traces, mk.handler)) {
      result.plan.set(mk.kind, core::DispatchMode::kFused);
      result.transforms.push_back(TransformRecord{
          "fuse-handler", std::string(to_string(mk.handler)),
          "only coalesces deltas into aggregation side arrays — inlined at "
          "the traffic-manager observation point, no carrier slot"});
    } else if (traces.event_log.provably_default(mk.handler)) {
      result.plan.set(mk.kind, core::DispatchMode::kSuppressed);
      result.transforms.push_back(TransformRecord{
          "suppress-default", std::string(to_string(mk.handler)),
          "provably runs the empty default body — the event is never "
          "constructed (counters still tick)"});
    }
  }
  result.transformed = !result.transforms.empty();

  // ---- transform 3: mandatory re-verification -----------------------------
  result.optimized = analyze_traces(name, traces, options);

  for (const TransformRecord& t : result.transforms) {
    add(result.diagnostics, Severity::kNote, "transform-applied", t.subject,
        t.kind + ": " + t.detail);
  }

  // Staleness contracts for every aggregated register the mapping drains.
  for (const PipelineMapping::Drain& d : result.optimized.mapping.drains) {
    if (!traces.ir.registers[d.reg].aggregated) {
      continue;
    }
    StalenessBound b;
    b.reg = d.name;
    b.demand_per_sec = d.demand;
    b.idle_rate_per_sec = result.optimized.mapping.idle_rate;
    b.stable = !d.starved && b.idle_rate_per_sec > 0.0;
    if (const RegisterValueInfo* vi =
            result.optimized.values.find(d.name)) {
      b.max_abs_delta = vi->max_abs_delta;
    }
    std::ostringstream msg;
    if (b.stable) {
      const std::size_t size = traces.ir.registers[d.reg].size;
      b.bound_seconds =
          2.0 * static_cast<double>(size) / b.idle_rate_per_sec;
      b.bound_cycles = static_cast<std::uint64_t>(
          std::ceil(b.bound_seconds * model.clock_hz));
      b.value_error_bound = static_cast<double>(b.max_abs_delta) *
                            b.demand_per_sec * b.bound_seconds;
      msg << "aggregated updates at " << rate_str(b.demand_per_sec)
          << " drain into " << rate_str(b.idle_rate_per_sec)
          << " idle cycles; worst-case staleness is one sweep of 2x" << size
          << " side entries = " << micros_str(b.bound_seconds) << " ("
          << b.bound_cycles << " cycles), value error <= "
          << b.value_error_bound;
    } else {
      msg << "aggregated updates at " << rate_str(b.demand_per_sec)
          << " exceed the " << rate_str(b.idle_rate_per_sec)
          << " idle-cycle drain budget — staleness is unbounded";
    }
    add(result.diagnostics, Severity::kNote, "staleness-bound", b.reg,
        msg.str());
    result.staleness.push_back(std::move(b));
  }

  // Any error surviving re-verification is, by definition, a constraint the
  // transforms could not resolve; name it precisely (once per subject),
  // preferring the recorded reason the rewrite was rejected.
  std::set<std::string> unresolved_subjects;
  for (const Finding& f : result.optimized.findings) {
    if (f.severity != Severity::kError ||
        !unresolved_subjects.insert(f.subject).second) {
      continue;
    }
    const auto blocked = blockers.find(f.subject);
    add(result.diagnostics, Severity::kError, "unresolvable-constraint",
        f.subject,
        blocked != blockers.end()
            ? blocked->second
            : "still fails re-verification after the transforms (" + f.code +
                  "): " + f.message);
  }

  result.feasible =
      !result.optimized.has(Severity::kError) &&
      std::none_of(result.diagnostics.begin(), result.diagnostics.end(),
                   [](const Finding& f) {
                     return f.severity == Severity::kError;
                   });
  return result;
}

}  // namespace edp::analysis
