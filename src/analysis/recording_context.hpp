// edp::analysis — an EventContext that records instead of simulating.
//
// The analyzer never builds a network: it hands each handler this context,
// which answers queries with fixed values and records every facility call
// (timers, generators, injections, user events, punts). The recorded
// actions are the raw material for the event-generation graph and the
// resource lints. In baseline mode it refuses exactly the facilities a
// baseline PISA architecture lacks, so the resource-lint pass can observe
// how a program behaves when its requests fail.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/findings.hpp"
#include "core/event_program.hpp"
#include "net/packet.hpp"

namespace edp::analysis {

class RecordingContext : public core::EventContext {
 public:
  struct Config {
    /// Event architecture (facilities granted) vs baseline PISA (refused).
    bool event_architecture = true;
    std::uint16_t num_ports = 4;
    std::uint32_t switch_id = 1;
    /// Fixed answer for queue_bytes() queries.
    std::size_t queue_bytes = 0;
  };

  /// One recorded facility call.
  struct Call {
    ActionKind kind = ActionKind::kForward;
    Handler during = Handler::kAttach;
    std::size_t drive = 0;     ///< which begin_drive() window it happened in
    bool accepted = false;     ///< architecture granted the request
    /// Timers/generators with a nonzero period cannot amplify (the
    /// architecture bounds their rate).
    bool rate_bounded = false;
    /// Timer period / oneshot delay / generator period — lets the
    /// pipeline-mapping pass derive the handler's event rate.
    sim::Time period = sim::Time::zero();
    /// True for periodic timers and generators (the rate recurs).
    bool periodic = false;
    /// Id the call returned (timer/generator) or operated on (trigger,
    /// set_template, cancel).
    std::uint64_t id = 0;
    std::uint64_t cookie = 0;  ///< timer cookie / user event id
    net::Packet packet;        ///< inject/send payload, generator template
    core::UserEventData user;  ///< raise_user_event payload
  };

  /// One recorded control-plane punt.
  struct Punt {
    std::uint32_t opcode = 0;
    Handler during = Handler::kAttach;
    std::size_t drive = 0;
  };

  /// A facility call that passed id 0 — the refusal sentinel — meaning the
  /// program used an acquisition result without checking it.
  struct ZeroIdUse {
    ActionKind kind = ActionKind::kTriggerGenerator;
    Handler during = Handler::kAttach;
  };

  explicit RecordingContext(Config config) : config_(config) {}

  // ---- driver interface -----------------------------------------------------

  /// Open a new drive window: one handler invocation with one stimulus.
  /// Advances time by 10us and the cycle by 1 so per-cycle port accounting
  /// and rate logic see distinct cycles.
  void begin_drive(Handler handler) {
    current_ = handler;
    ++drive_;
    now_ = now_ + sim::Time::micros(10);
    ++cycle_;
  }

  Handler current_handler() const { return current_; }
  std::size_t drive_index() const { return drive_; }

  /// Change the fixed queue_bytes() answer mid-run, so the driver can
  /// replay buffer events against a deep queue (threshold exploration).
  void set_queue_bytes(std::size_t bytes) { config_.queue_bytes = bytes; }

  const Config& config() const { return config_; }
  const std::vector<Call>& calls() const { return calls_; }
  const std::vector<Punt>& punts() const { return punts_; }
  const std::vector<ZeroIdUse>& zero_id_uses() const { return zero_ids_; }
  std::uint64_t refused_ops() const { return refused_; }

  // ---- EventContext ---------------------------------------------------------

  sim::Time now() const override { return now_; }
  std::uint64_t cycle() const override { return cycle_; }
  std::uint16_t num_ports() const override { return config_.num_ports; }
  std::uint32_t switch_id() const override { return config_.switch_id; }
  bool link_up(std::uint16_t) const override { return true; }
  std::size_t queue_bytes(std::uint16_t, std::uint8_t) const override {
    return config_.queue_bytes;
  }

  bool inject_packet(net::Packet packet) override;
  bool send_packet(net::Packet packet, std::uint16_t port,
                   std::uint8_t qid) override;

  core::TimerId set_periodic_timer(sim::Time period,
                                   std::uint64_t cookie) override;
  core::TimerId set_oneshot_timer(sim::Time delay,
                                  std::uint64_t cookie) override;
  bool cancel_timer(core::TimerId id) override;

  core::GeneratorId add_generator(
      core::PacketGenerator::Config config) override;
  void trigger_generator(core::GeneratorId id, std::uint64_t n) override;
  bool set_generator_template(core::GeneratorId id,
                              net::Packet tmpl) override;

  bool raise_user_event(const core::UserEventData& data) override;
  void notify_control_plane(const core::ControlEventData& msg) override;

 private:
  Call& record(ActionKind kind, bool accepted) {
    Call c;
    c.kind = kind;
    c.during = current_;
    c.drive = drive_;
    c.accepted = accepted;
    calls_.push_back(std::move(c));
    return calls_.back();
  }

  Config config_;
  Handler current_ = Handler::kAttach;
  std::size_t drive_ = 0;
  // Start late enough that "dead since attach" logic (e.g. liveness
  // timeouts) does not fire on the very first drive.
  sim::Time now_ = sim::Time::millis(1);
  std::uint64_t cycle_ = 1;

  core::TimerId next_timer_ = 1;
  core::GeneratorId next_generator_ = 1;

  std::vector<Call> calls_;
  std::vector<Punt> punts_;
  std::vector<ZeroIdUse> zero_ids_;
  std::uint64_t refused_ = 0;
};

}  // namespace edp::analysis
