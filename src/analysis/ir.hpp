// edp::analysis — the ordered per-handler dataflow IR.
//
// PR3's access matrix answers *which* handler touches *which* register;
// the IR adds *order*. Every probe callback is stamped with a process-wide
// sequence number (core::report_register_access), so each handler
// activation yields a sequenced access trace. From the traces the IR
// derives:
//
//   * per-(handler, register) access patterns — read-only, blind write,
//     coalescible read-modify-write, or mixed read-then-write — the
//     distinction that decides whether aggregation can absorb an access
//     (paper §4: enq/deq *updates* aggregate; a *read* needs the live
//     value),
//   * per-handler dependency chains: a register *read* sequenced before an
//     access of another register conservatively feeds it, so the second
//     register's pipeline stage must lie strictly after the first's,
//   * the merged cross-handler dependency graph the pipeline-mapping pass
//     (hardware_model.hpp) places onto physical stages.
//
// The unordered AccessMatrix is now *derived* from the IR (to_matrix), so
// the PR3 passes consume exactly what they always did.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/findings.hpp"
#include "core/register_probe.hpp"

namespace edp::analysis {

class RecordingContext;

/// How one handler uses one register, classified from its ordered traces.
enum class AccessPattern : std::uint8_t {
  kNone = 0,
  kReadOnly,    ///< only reads — needs the live value, never aggregable
  kBlindWrite,  ///< only plain writes — a deposit, separable by aggregation
  kRmw,         ///< only atomic RMWs — a coalescible delta (paper §4)
  kMixed,       ///< separate reads and writes — value flows through logic
};

std::string_view to_string(AccessPattern pattern);

/// True when aggregation side-registers can absorb this access pattern:
/// blind writes and coalescible RMW deltas, but never a value-consuming
/// read (the read would observe stale state the side array still holds).
bool is_aggregable(AccessPattern pattern);

/// One sequenced access inside an activation.
struct IrAccess {
  std::size_t reg = 0;  ///< index into DataflowIr::registers
  core::RegisterOp op = core::RegisterOp::kRead;
  core::RegisterRealization realization = core::RegisterRealization::kShared;
  core::ThreadId declared_thread = core::ThreadId::kOther;
  std::size_t cell = 0;
  /// Process-wide stamp; used for ordering only (never printed, so two
  /// analyses of the same program format identically).
  std::uint64_t seq = 0;
  /// Observed old/new cell values for integral RMWs (register_probe.hpp);
  /// the optimizer derives aggregation merge functions from the deltas.
  bool has_rmw_values = false;
  std::int64_t rmw_old = 0;
  std::int64_t rmw_new = 0;
  /// The update function tested translation-equivariant at probe time
  /// (register_probe.hpp): the delta is independent of the starting value.
  bool rmw_linear = true;
};

/// One handler activation (one begin_drive window) and its ordered trace.
struct IrActivation {
  Handler handler = Handler::kAttach;
  std::size_t drive = 0;
  std::vector<IrAccess> accesses;
};

/// Identity of one register extern in the IR.
struct IrRegister {
  std::string name;
  bool aggregated = false;
  /// Set by the optimizer's constant-fold transform: the register is never
  /// written outside on_attach, so its lookups compile to match-action
  /// constants. A folded register keeps its dependency edges (ordering)
  /// but consumes no stage capacity and no register port.
  bool folded = false;
  std::size_t size = 0;
  int ports = 1;
};

/// A conservative register-to-register dependency: some handler *read*
/// `from` and later accessed `to` in the same activation, so the read value
/// may feed the access and stage(`to`) must be > stage(`from`).
struct DepEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  Handler witness = Handler::kAttach;
};

struct DataflowIr {
  std::vector<IrRegister> registers;
  std::vector<IrActivation> activations;

  /// patterns[handler][reg], over the whole drive log.
  std::array<std::vector<AccessPattern>, kNumHandlers> patterns{};

  /// Deduplicated (from, to, witness) dependency edges.
  std::vector<DepEdge> deps;

  /// Longest dependency chain per handler, counted in registers — each
  /// register on the chain occupies its own pipeline stage. 0 when the
  /// handler touches no register.
  std::array<std::size_t, kNumHandlers> depth{};

  /// Longest chain over the merged cross-handler dependency graph — the
  /// stage span the merged physical pipeline must provide (0 if cyclic).
  std::size_t merged_depth = 0;

  /// The merged graph has a dependency cycle: no feed-forward stage order
  /// can satisfy every handler. `cycle_regs` lists one witness cycle.
  bool cyclic = false;
  std::vector<std::size_t> cycle_regs;

  AccessPattern pattern(Handler handler, std::size_t reg) const;

  /// Derive the PR3 access matrix (counts + declared-thread bitmasks).
  AccessMatrix to_matrix() const;

  std::string format() const;
};

/// RegisterProbe that records ordered access traces, attributing each
/// access to the handler the RecordingContext is currently driving.
/// Replaces PR3's unordered MatrixProbe.
class TraceProbe : public core::RegisterProbe {
 public:
  explicit TraceProbe(const RecordingContext& ctx) : ctx_(&ctx) {}

  void on_register_access(const core::RegisterAccessEvent& e) override;

  /// Build the IR (patterns, dependency chains, depths) from everything
  /// recorded so far.
  DataflowIr take_ir();

 private:
  struct RawAccess {
    IrAccess access;
    Handler handler = Handler::kAttach;
    std::size_t drive = 0;
  };

  const RecordingContext* ctx_;
  std::vector<IrRegister> registers_;
  std::unordered_map<const void*, std::size_t> index_;
  std::vector<RawAccess> raw_;
};

}  // namespace edp::analysis
