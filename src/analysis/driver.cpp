#include "analysis/driver.hpp"

#include <algorithm>
#include <deque>
#include <utility>

#include "core/event_switch.hpp"
#include "net/packet_builder.hpp"
#include "pisa/parser.hpp"

namespace edp::analysis {
namespace {

// ---- stimuli ------------------------------------------------------------------

struct Stimulus {
  std::string name;
  net::Packet packet;
};

net::Packet stamp(net::Packet p, std::uint16_t port) {
  p.meta().ingress_port = port;
  p.meta().arrival = sim::Time::millis(1);
  return p;
}

/// One packet per protocol branch of the standard parser, so every parse
/// path a program can react to is exercised.
std::vector<Stimulus> make_stimuli() {
  const net::MacAddress src_mac = net::MacAddress::from_u64(0x0a0000000001);
  const net::MacAddress dst_mac = net::MacAddress::from_u64(0x0a0000000002);
  const net::Ipv4Address src_ip(10, 0, 0, 1);
  const net::Ipv4Address dst_ip(10, 0, 1, 2);

  std::vector<Stimulus> out;
  out.push_back({"tcp", stamp(net::PacketBuilder()
                                  .ethernet(src_mac, dst_mac)
                                  .ipv4(src_ip, dst_ip, net::kIpProtoTcp)
                                  .tcp(31000, 80)
                                  .payload(400)
                                  .build(),
                              /*port=*/0)});
  out.push_back({"udp", stamp(net::PacketBuilder()
                                  .ethernet(src_mac, dst_mac)
                                  .ipv4(src_ip, dst_ip, net::kIpProtoUdp)
                                  .udp(32000, 2000)
                                  .payload(200)
                                  .build(),
                              /*port=*/1)});

  net::KvHeader get;
  get.op = net::KvHeader::kGet;
  get.seq = 1;
  get.key = 42;
  out.push_back({"kv-get", stamp(net::PacketBuilder()
                                     .ethernet(src_mac, dst_mac)
                                     .ipv4(src_ip, dst_ip, net::kIpProtoUdp)
                                     .udp(33000, net::kPortKvCache)
                                     .kv(get)
                                     .build(),
                                 /*port=*/1)});

  net::KvHeader set;
  set.op = net::KvHeader::kSet;
  set.seq = 2;
  set.key = 42;
  set.value = 7;
  out.push_back({"kv-set", stamp(net::PacketBuilder()
                                     .ethernet(src_mac, dst_mac)
                                     .ipv4(src_ip, dst_ip, net::kIpProtoUdp)
                                     .udp(33001, net::kPortKvCache)
                                     .kv(set)
                                     .build(),
                                 /*port=*/1)});

  net::HulaProbeHeader probe;
  probe.tor_id = 1;
  probe.path_util_permille = 300;
  out.push_back(
      {"hula-probe", stamp(net::PacketBuilder()
                               .ethernet(src_mac, dst_mac, net::kEtherTypeHula)
                               .hula_probe(probe)
                               .pad_to(60)
                               .build(),
                           /*port=*/2)});

  net::LivenessHeader echo;
  echo.kind = net::LivenessHeader::kRequest;
  echo.seq = 1;
  echo.sender_id = 7;
  out.push_back({"liveness-request",
                 stamp(net::PacketBuilder()
                           .ethernet(src_mac, dst_mac, net::kEtherTypeLiveness)
                           .liveness(echo)
                           .pad_to(60)
                           .build(),
                       /*port=*/2)});

  net::IntReportHeader report;
  report.switch_id = 9;
  report.queue_id = 1;
  report.queue_depth_bytes = 48000;
  report.active_flows = 12;
  out.push_back({"int-report", stamp(net::PacketBuilder()
                                         .ethernet(src_mac, dst_mac)
                                         .ipv4(src_ip, dst_ip, net::kIpProtoUdp)
                                         .udp(34000, net::kPortIntReport)
                                         .int_report(report)
                                         .build(),
                                     /*port=*/3)});
  return out;
}

bool meta_words_changed(const std::array<std::uint64_t, 16>& before,
                        const std::array<std::uint64_t, 16>& after) {
  for (std::size_t i = 0; i < 8; ++i) {
    if (before[i] != after[i]) {
      return true;
    }
  }
  return false;
}

tm_::EventMetaWords enq_meta_of(const pisa::Phv& phv) {
  tm_::EventMetaWords m{};
  for (std::size_t i = 0; i < 4; ++i) {
    m[i] = phv.user[core::kEnqMetaBase + i];
  }
  return m;
}

tm_::EventMetaWords deq_meta_of(const pisa::Phv& phv) {
  tm_::EventMetaWords m{};
  for (std::size_t i = 0; i < 4; ++i) {
    m[i] = phv.user[core::kDeqMetaBase + i];
  }
  return m;
}

/// Drive one packet handler and record its postconditions.
PacketDrive drive_packet(core::EventProgram& program, RecordingContext& ctx,
                         Handler handler, const std::string& stimulus,
                         pisa::Phv& phv) {
  ctx.begin_drive(handler);
  const auto user_before = phv.user;
  switch (handler) {
    case Handler::kIngress:
      program.on_ingress(phv, ctx);
      break;
    case Handler::kEgress:
      program.on_egress(phv, ctx);
      break;
    case Handler::kRecirculate:
      program.on_recirculate(phv, ctx);
      break;
    case Handler::kGenerated:
      program.on_generated(phv, ctx);
      break;
    default:
      break;
  }
  PacketDrive d;
  d.handler = handler;
  d.stimulus = stimulus;
  d.drive = ctx.drive_index();
  d.parse_error = phv.parse_error;
  d.drop = phv.std_meta.drop;
  d.recirculate = phv.std_meta.recirculate;
  d.recirc_clone = phv.std_meta.recirc_clone;
  d.forwarded = handler != Handler::kEgress && !d.drop && !d.recirculate;
  d.meta_written = meta_words_changed(user_before, phv.user);
  d.enq_meta = enq_meta_of(phv);
  d.deq_meta = deq_meta_of(phv);
  d.pkt_len = phv.length();
  return d;
}

tm_::EnqueueRecord make_enqueue(const PacketDrive& d, sim::Time now,
                                bool deep) {
  tm_::EnqueueRecord r;
  r.port = 1;
  r.qid = 0;
  r.pkt_len = d.pkt_len;
  r.enq_meta = d.enq_meta;
  r.depth_bytes = deep ? 256 * 1024 : 3000;
  r.depth_packets = deep ? 170 : 2;
  r.when = now;
  return r;
}

/// Installs the default-handler trace for the current scope (see
/// core::exchange_default_handler_trace), restoring the previous mask.
class DefaultTraceInstallation {
 public:
  explicit DefaultTraceInstallation(std::uint32_t* mask)
      : previous_(core::exchange_default_handler_trace(mask)) {}
  ~DefaultTraceInstallation() {
    core::exchange_default_handler_trace(previous_);
  }

  DefaultTraceInstallation(const DefaultTraceInstallation&) = delete;
  DefaultTraceInstallation& operator=(const DefaultTraceInstallation&) =
      delete;

 private:
  std::uint32_t* previous_;
};

tm_::DequeueRecord make_dequeue(const PacketDrive& d, sim::Time now,
                                bool deep) {
  tm_::DequeueRecord r;
  r.port = 1;
  r.qid = 0;
  r.pkt_len = d.pkt_len;
  r.deq_meta = d.deq_meta;
  r.sojourn = deep ? sim::Time::micros(500) : sim::Time::micros(10);
  r.depth_bytes = deep ? 254 * 1024 : 1500;
  r.depth_packets = deep ? 169 : 1;
  r.when = now;
  return r;
}

}  // namespace

// ---- trace-mode driver --------------------------------------------------------

DriveLog drive_all(core::EventProgram& program, RecordingContext& ctx,
                   const DriveOptions& options) {
  const pisa::Parser parser = pisa::Parser::standard();
  const std::vector<Stimulus> stimuli = make_stimuli();
  DriveLog log;

  // Record which handlers run the base-class default body, and which were
  // driven at all — together they prove which events a program ignores.
  DefaultTraceInstallation trace(&log.default_mask);
  const auto mark = [&log](Handler h) {
    log.driven_mask |= 1u << static_cast<unsigned>(h);
  };

  mark(Handler::kAttach);
  ctx.begin_drive(Handler::kAttach);
  program.on_attach(ctx);

  // Packet handlers. Each ingress stimulus repeats back-to-back so
  // counter-guarded branches (every-Nth-packet probes, warm-up thresholds)
  // execute and their register accesses reach the IR.
  const std::size_t repeats = std::max<std::size_t>(1, options.ingress_repeats);
  for (const Stimulus& s : stimuli) {
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      pisa::Phv phv = parser.parse(s.packet);
      if (phv.parse_error) {
        break;
      }
      log.packet_drives.push_back(
          drive_packet(program, ctx, Handler::kIngress, s.name, phv));
    }
  }
  for (const Stimulus& s : stimuli) {
    pisa::Phv phv = parser.parse(s.packet);
    if (phv.parse_error) {
      continue;
    }
    phv.std_meta.egress_port = 1;
    phv.std_meta.enqueue_timestamp = ctx.now();
    log.packet_drives.push_back(
        drive_packet(program, ctx, Handler::kEgress, s.name, phv));
  }
  for (const Stimulus& s : stimuli) {
    pisa::Phv phv = parser.parse(s.packet);
    if (phv.parse_error) {
      continue;
    }
    log.packet_drives.push_back(
        drive_packet(program, ctx, Handler::kRecirculate, s.name, phv));
  }

  // on_generated fires only for packets the program itself originated:
  // generator templates and injected packets recorded so far.
  {
    std::vector<std::pair<std::string, net::Packet>> generated;
    for (const RecordingContext::Call& c : ctx.calls()) {
      if (!c.accepted || c.packet.size() == 0) {
        continue;
      }
      if (c.kind == ActionKind::kAddGenerator) {
        generated.emplace_back("generator-template", c.packet);
      } else if (c.kind == ActionKind::kInjectPacket) {
        generated.emplace_back("injected", c.packet);
      }
    }
    for (auto& [name, pkt] : generated) {
      pisa::Phv phv = parser.parse(stamp(std::move(pkt), core::kPortGenerated));
      if (phv.parse_error) {
        continue;
      }
      log.packet_drives.push_back(
          drive_packet(program, ctx, Handler::kGenerated, name, phv));
    }
  }

  // Buffer events replay the meta the program's own ingress attached, at a
  // shallow and a deep queue depth (to reach threshold branches). The deep
  // replay also answers queue_bytes() queries with a deep queue. One
  // replay per stimulus: the repeats above share the same meta.
  const std::size_t shallow_queue_bytes = ctx.config().queue_bytes;
  const std::vector<PacketDrive> ingress_drives = log.packet_drives;
  std::string replayed_stimulus;
  for (const PacketDrive& d : ingress_drives) {
    if (d.handler != Handler::kIngress || !d.forwarded ||
        d.stimulus == replayed_stimulus) {
      continue;
    }
    replayed_stimulus = d.stimulus;
    for (const bool deep : {false, true}) {
      ctx.set_queue_bytes(deep ? options.deep_queue_bytes
                               : shallow_queue_bytes);
      mark(Handler::kEnqueue);
      ctx.begin_drive(Handler::kEnqueue);
      program.on_enqueue(make_enqueue(d, ctx.now(), deep), ctx);
      mark(Handler::kDequeue);
      ctx.begin_drive(Handler::kDequeue);
      program.on_dequeue(make_dequeue(d, ctx.now(), deep), ctx);
    }
    ctx.set_queue_bytes(shallow_queue_bytes);
    {
      mark(Handler::kOverflow);
      ctx.begin_drive(Handler::kOverflow);
      tm_::DropRecord drop;
      drop.port = 1;
      drop.pkt_len = d.pkt_len;
      drop.enq_meta = d.enq_meta;
      drop.reason = tm_::DropReason::kQueueLimit;
      drop.when = ctx.now();
      program.on_overflow(drop, ctx);
    }
    {
      mark(Handler::kTransmit);
      ctx.begin_drive(Handler::kTransmit);
      core::TransmitRecord tx;
      tx.port = 1;
      tx.pkt_len = d.pkt_len;
      tx.when = ctx.now();
      program.on_transmit(tx, ctx);
    }
  }
  {
    mark(Handler::kUnderflow);
    ctx.begin_drive(Handler::kUnderflow);
    tm_::UnderflowRecord uf;
    uf.port = 1;
    uf.when = ctx.now();
    program.on_underflow(uf, ctx);
  }

  // Timer expirations: exactly the timers the program armed.
  {
    const std::vector<RecordingContext::Call> calls = ctx.calls();
    for (const RecordingContext::Call& c : calls) {
      if (c.kind != ActionKind::kSetTimer || !c.accepted) {
        continue;
      }
      mark(Handler::kTimer);
      ctx.begin_drive(Handler::kTimer);
      core::TimerEventData t;
      t.timer_id = static_cast<std::uint32_t>(c.id);
      t.cookie = c.cookie;
      t.scheduled_for = ctx.now();
      t.fired_at = ctx.now();
      program.on_timer(t, ctx);
    }
  }

  // Control / link / user events.
  {
    mark(Handler::kControl);
    ctx.begin_drive(Handler::kControl);
    program.on_control(core::ControlEventData{}, ctx);
  }
  for (const bool up : {false, true}) {
    mark(Handler::kLinkStatus);
    ctx.begin_drive(Handler::kLinkStatus);
    core::LinkStatusEventData ls;
    ls.port = 1;
    ls.up = up;
    ls.when = ctx.now();
    program.on_link_status(ls, ctx);
  }
  {
    const std::vector<RecordingContext::Call> calls = ctx.calls();
    for (const RecordingContext::Call& c : calls) {
      if (c.kind != ActionKind::kRaiseUserEvent || !c.accepted) {
        continue;
      }
      mark(Handler::kUser);
      ctx.begin_drive(Handler::kUser);
      program.on_user(c.user, ctx);
    }
  }

  for (const PacketDrive& d : log.packet_drives) {
    mark(d.handler);
  }
  return log;
}

// ---- chain-mode driver --------------------------------------------------------

namespace {

/// One pending handler activation in a chain run.
struct Activation {
  Handler handler = Handler::kIngress;
  pisa::Phv phv;                // packet handlers
  tm_::EnqueueRecord enq;       // kEnqueue
  tm_::DequeueRecord deq;       // kDequeue
  core::TimerEventData timer;   // kTimer
  core::UserEventData user;     // kUser
};

/// Drive one activation; append the activations its actions spawn
/// (following only edges the architecture does not rate-bound).
void step(core::EventProgram& program, RecordingContext& ctx,
          const pisa::Parser& parser, Activation a,
          std::deque<Activation>& pending) {
  const std::size_t calls_before = ctx.calls().size();

  PacketDrive d;
  switch (a.handler) {
    case Handler::kIngress:
    case Handler::kEgress:
    case Handler::kRecirculate:
    case Handler::kGenerated:
      d = drive_packet(program, ctx, a.handler, "chain", a.phv);
      break;
    case Handler::kEnqueue:
      ctx.begin_drive(Handler::kEnqueue);
      program.on_enqueue(a.enq, ctx);
      break;
    case Handler::kDequeue:
      ctx.begin_drive(Handler::kDequeue);
      program.on_dequeue(a.deq, ctx);
      break;
    case Handler::kTimer:
      ctx.begin_drive(Handler::kTimer);
      program.on_timer(a.timer, ctx);
      break;
    case Handler::kUser:
      ctx.begin_drive(Handler::kUser);
      program.on_user(a.user, ctx);
      break;
    default:
      return;
  }

  // Packet steering consequences.
  if (is_packet_handler(a.handler)) {
    if (d.recirculate || d.recirc_clone) {
      Activation next;
      next.handler = Handler::kRecirculate;
      next.phv = a.phv;
      next.phv.std_meta.recirculate = false;
      next.phv.std_meta.recirc_clone = false;
      next.phv.std_meta.drop = false;
      pending.push_back(std::move(next));
    }
    if (d.forwarded) {
      // The packet proceeds to the TM: its buffer events fire, and the
      // egress pipeline runs at service time.
      Activation enq;
      enq.handler = Handler::kEnqueue;
      enq.enq = make_enqueue(d, ctx.now(), /*deep=*/false);
      pending.push_back(std::move(enq));
      Activation deq;
      deq.handler = Handler::kDequeue;
      deq.deq = make_dequeue(d, ctx.now(), /*deep=*/false);
      pending.push_back(std::move(deq));
      if (a.handler != Handler::kEgress) {
        Activation eg;
        eg.handler = Handler::kEgress;
        eg.phv = a.phv;
        eg.phv.std_meta.egress_port = 1;
        pending.push_back(std::move(eg));
      }
    }
  }

  // Facility-call consequences.
  const std::vector<RecordingContext::Call>& calls = ctx.calls();
  for (std::size_t i = calls_before; i < calls.size(); ++i) {
    const RecordingContext::Call& c = calls[i];
    if (!c.accepted) {
      continue;
    }
    switch (c.kind) {
      case ActionKind::kInjectPacket: {
        pisa::Phv phv =
            parser.parse(stamp(c.packet, core::kPortGenerated));
        if (!phv.parse_error) {
          Activation next;
          next.handler = Handler::kGenerated;
          next.phv = std::move(phv);
          pending.push_back(std::move(next));
        }
        break;
      }
      case ActionKind::kSendPacket: {
        // Direct enqueue: buffer events fire with empty meta (send_packet
        // bypasses the ingress pipeline that would have attached it).
        Activation enq;
        enq.handler = Handler::kEnqueue;
        enq.enq.port = static_cast<std::uint16_t>(c.id >> 8);
        enq.enq.pkt_len = static_cast<std::uint32_t>(c.packet.size());
        enq.enq.when = ctx.now();
        pending.push_back(std::move(enq));
        Activation deq;
        deq.handler = Handler::kDequeue;
        deq.deq.port = static_cast<std::uint16_t>(c.id >> 8);
        deq.deq.pkt_len = static_cast<std::uint32_t>(c.packet.size());
        deq.deq.when = ctx.now();
        pending.push_back(std::move(deq));
        pisa::Phv phv = parser.parse(stamp(c.packet, core::kPortCpu));
        if (!phv.parse_error) {
          Activation eg;
          eg.handler = Handler::kEgress;
          eg.phv = std::move(phv);
          eg.phv.std_meta.egress_port = static_cast<std::uint16_t>(c.id >> 8);
          pending.push_back(std::move(eg));
        }
        break;
      }
      case ActionKind::kRaiseUserEvent: {
        Activation next;
        next.handler = Handler::kUser;
        next.user = c.user;
        pending.push_back(std::move(next));
        break;
      }
      case ActionKind::kTriggerGenerator: {
        // Emit the freshest template recorded for this generator id.
        for (std::size_t j = calls.size(); j-- > 0;) {
          const RecordingContext::Call& g = calls[j];
          if (g.kind == ActionKind::kAddGenerator && g.id == c.id &&
              g.packet.size() > 0) {
            pisa::Phv phv =
                parser.parse(stamp(g.packet, core::kPortGenerated));
            if (!phv.parse_error) {
              Activation next;
              next.handler = Handler::kGenerated;
              next.phv = std::move(phv);
              pending.push_back(std::move(next));
            }
            break;
          }
        }
        break;
      }
      case ActionKind::kSetTimer: {
        // Zero-period timers fire immediately and forever; anything with a
        // real period is rate-bounded and cannot amplify.
        if (!c.rate_bounded) {
          Activation next;
          next.handler = Handler::kTimer;
          next.timer.timer_id = static_cast<std::uint32_t>(c.id);
          next.timer.cookie = c.cookie;
          next.timer.scheduled_for = ctx.now();
          next.timer.fired_at = ctx.now();
          pending.push_back(std::move(next));
        }
        break;
      }
      case ActionKind::kAddGenerator: {
        if (!c.rate_bounded && c.packet.size() > 0) {
          pisa::Phv phv =
              parser.parse(stamp(c.packet, core::kPortGenerated));
          if (!phv.parse_error) {
            Activation next;
            next.handler = Handler::kGenerated;
            next.phv = std::move(phv);
            pending.push_back(std::move(next));
          }
        }
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace

std::vector<ChainRun> simulate_chains(core::EventProgram& program,
                                      RecordingContext& ctx,
                                      std::size_t max_steps_per_seed) {
  const pisa::Parser parser = pisa::Parser::standard();

  ctx.begin_drive(Handler::kAttach);
  program.on_attach(ctx);

  std::vector<ChainRun> runs;
  for (const Stimulus& s : make_stimuli()) {
    pisa::Phv phv = parser.parse(s.packet);
    if (phv.parse_error) {
      continue;
    }
    ChainRun run;
    run.seed = s.name;

    std::deque<Activation> pending;
    Activation seed;
    seed.handler = Handler::kIngress;
    seed.phv = std::move(phv);
    pending.push_back(std::move(seed));

    while (!pending.empty()) {
      if (run.steps >= max_steps_per_seed) {
        run.limited = true;
        break;
      }
      Activation a = std::move(pending.front());
      pending.pop_front();
      ++run.steps;
      step(program, ctx, parser, std::move(a), pending);
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

}  // namespace edp::analysis
