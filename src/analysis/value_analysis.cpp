#include "analysis/value_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <sstream>

#include "analysis/passes.hpp"
#include "analysis/recording_context.hpp"

namespace edp::analysis {
namespace {

constexpr std::size_t kAttachIdx = static_cast<std::size_t>(Handler::kAttach);

void add(std::vector<Finding>& findings, Severity severity, std::string code,
         std::string subject, std::string message) {
  Finding f;
  f.severity = severity;
  f.pass = Pass::kValueAnalysis;
  f.code = std::move(code);
  f.subject = std::move(subject);
  f.message = std::move(message);
  findings.push_back(std::move(f));
}

std::string num_str(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Everything the interval/congruence domain accumulates for one register
/// before the rate scaling.
struct Accum {
  bool opaque_self = false;   ///< plain write or value-less RMW observed
  bool has_event_deltas = false;

  /// Per-handler activation-sum delta bounds (only meaningful where seen).
  std::array<bool, kNumHandlers> seen{};
  std::array<std::int64_t, kNumHandlers> dmin{};
  std::array<std::int64_t, kNumHandlers> dmax{};

  std::int64_t access_min = 0;  ///< per-access delta bounds (all handlers)
  std::int64_t access_max = 0;
  std::int64_t max_abs = 0;     ///< largest single-access |delta|
  std::uint64_t gcd = 0;        ///< congruence over |per-access deltas|

  /// on_attach activation-sum bounds — the start interval's offset.
  std::int64_t attach_min = 0;
  std::int64_t attach_max = 0;
  bool attach_seen = false;
};

}  // namespace

const RegisterValueInfo* ValueAnalysis::find(const std::string& name) const {
  for (const RegisterValueInfo& r : registers) {
    if (r.name == name) {
      return &r;
    }
  }
  return nullptr;
}

std::string ValueAnalysis::format() const {
  std::ostringstream os;
  for (const RegisterValueInfo& r : registers) {
    os << "  " << r.name << " (w" << r.width_bits << ")";
    if (r.opaque) {
      os << ": top (unobservable writes or tainted dependency)\n";
      continue;
    }
    if (!r.has_event_deltas) {
      os << ": constant (no event-thread deltas observed)\n";
      continue;
    }
    os << ": delta [" << r.delta_min << ", " << r.delta_max << "] max|d|="
       << r.max_abs_delta << " growth [" << num_str(r.growth_down) << ", "
       << num_str(r.growth_up) << "]/s";
    if (r.congruence > 1) {
      os << " cong mod " << r.congruence;
    }
    os << " horizon [" << num_str(r.after_horizon.lo) << ", "
       << num_str(r.after_horizon.hi) << "]\n";
  }
  for (const ValueErrorBound& b : value_errors) {
    os << "  " << b.name << ": value-error bound "
       << (b.stable ? num_str(b.bound) : std::string("unbounded"))
       << " (staleness " << num_str(b.staleness_seconds) << "s x "
       << num_str(b.events_per_window) << " ev x max|d| " << b.max_abs_delta
       << ")\n";
  }
  if (registers.empty()) {
    os << "  (no registers)\n";
  }
  return os.str();
}

std::string merge_commutativity_blocker(const DataflowIr& ir, std::size_t reg) {
  // The witness comes from the probe itself: SharedRegister::rmw evaluates
  // the update function at neighbouring starting values during analysis
  // drives and reports whether the delta is independent of the current value
  // (IrAccess::rmw_linear). A value-dependent delta (overwrite, saturate,
  // max) observed on an event thread means summing deferred deltas in a
  // different order yields a different result — the sum-merge is unsound.
  for (const IrActivation& act : ir.activations) {
    const core::ThreadId t = thread_of(act.handler);
    if (act.handler == Handler::kAttach ||
        (t != core::ThreadId::kEnqueue && t != core::ThreadId::kDequeue)) {
      continue;
    }
    for (const IrAccess& a : act.accesses) {
      if (a.reg != reg || a.op != core::RegisterOp::kRmw ||
          !a.has_rmw_values || a.rmw_linear) {
        continue;
      }
      std::ostringstream os;
      os << to_string(act.handler) << "'s update of cell " << a.cell
         << " is not a pure delta (observed old " << a.rmw_old << " -> new "
         << a.rmw_new
         << ", but the update function yields a different delta from a "
            "different starting value) — deferring and reordering it "
            "through side arrays changes the result";
      return os.str();
    }
  }
  return {};
}

ValueAnalysis value_analysis_pass(const DataflowIr& ir, const EventGraph& graph,
                                  const RecordingContext& ctx,
                                  const HardwareModel& model,
                                  const EventRates& rates,
                                  const RegisterWidths& widths,
                                  const PipelineMapping& mapping,
                                  const ValueAnalysisOptions& options,
                                  std::vector<Finding>& findings) {
  ValueAnalysis out;
  const std::size_t n = ir.registers.size();
  if (n == 0) {
    return out;
  }
  const std::array<double, kNumHandlers> rate =
      derive_event_rates(graph, ctx, model, rates);

  // ---- accumulate observed deltas per (register, handler) ----
  std::vector<Accum> acc(n);
  for (const IrActivation& act : ir.activations) {
    const std::size_t h = static_cast<std::size_t>(act.handler);
    std::vector<std::pair<std::size_t, std::int64_t>> sums;
    for (const IrAccess& a : act.accesses) {
      Accum& ac = acc[a.reg];
      if (a.op == core::RegisterOp::kWrite ||
          (a.op == core::RegisterOp::kRmw && !a.has_rmw_values)) {
        // A plain write deposits a value the probe never sees; a value-less
        // RMW transformed the cell opaquely. Both widen the register to top.
        ac.opaque_self = true;
        continue;
      }
      if (a.op != core::RegisterOp::kRmw) {
        continue;
      }
      const std::int64_t d = a.rmw_new - a.rmw_old;
      const std::uint64_t mag =
          d < 0 ? static_cast<std::uint64_t>(-(d + 1)) + 1
                : static_cast<std::uint64_t>(d);
      if (mag > 0) {
        ac.gcd = std::gcd(ac.gcd, mag);
      }
      ac.access_min = std::min(ac.access_min, d);
      ac.access_max = std::max(ac.access_max, d);
      ac.max_abs = std::max(ac.max_abs, static_cast<std::int64_t>(mag));
      auto it = std::find_if(sums.begin(), sums.end(),
                             [&](const auto& s) { return s.first == a.reg; });
      if (it == sums.end()) {
        sums.push_back({a.reg, d});
      } else {
        it->second += d;
      }
    }
    for (const auto& [reg, sum] : sums) {
      Accum& ac = acc[reg];
      if (h == kAttachIdx) {
        ac.attach_min = ac.attach_seen ? std::min(ac.attach_min, sum) : sum;
        ac.attach_max = ac.attach_seen ? std::max(ac.attach_max, sum) : sum;
        ac.attach_seen = true;
        continue;
      }
      ac.has_event_deltas = true;
      ac.dmin[h] = ac.seen[h] ? std::min(ac.dmin[h], sum) : sum;
      ac.dmax[h] = ac.seen[h] ? std::max(ac.dmax[h], sum) : sum;
      ac.seen[h] = true;
    }
  }

  // ---- opaqueness fixpoint over the dependency chains ----
  // A read of a top register may feed any later access in the activation
  // (the IR's conservative dep edges), so the written value of the target
  // register is no longer described by its observed deltas.
  std::vector<char> opaque(n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    opaque[r] = acc[r].opaque_self ? 1 : 0;
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (const DepEdge& e : ir.deps) {
      if (opaque[e.from] && !opaque[e.to]) {
        opaque[e.to] = 1;
        changed = true;
      }
    }
  }

  // ---- fold rates into per-register growth and the horizon interval ----
  out.registers.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    RegisterValueInfo& info = out.registers[r];
    const Accum& ac = acc[r];
    info.reg = r;
    info.name = ir.registers[r].name;
    info.width_bits = widths.get(info.name, options.default_width_bits);
    info.opaque = opaque[r] != 0;
    info.has_event_deltas = ac.has_event_deltas;
    info.delta_min = ac.access_min;
    info.delta_max = ac.access_max;
    info.max_abs_delta = ac.max_abs;
    info.congruence = ac.gcd;
    for (std::size_t h = 0; h < kNumHandlers; ++h) {
      if (h == kAttachIdx || !ac.seen[h]) {
        continue;
      }
      info.growth_up += rate[h] * static_cast<double>(std::max<std::int64_t>(
                                      0, ac.dmax[h]));
      info.growth_down += rate[h] * static_cast<double>(std::min<std::int64_t>(
                                        0, ac.dmin[h]));
    }
    if (info.opaque) {
      info.after_horizon.top = true;
    } else {
      const double start_lo =
          static_cast<double>(std::min<std::int64_t>(0, ac.attach_min));
      const double start_hi =
          static_cast<double>(std::max<std::int64_t>(0, ac.attach_max));
      info.after_horizon.lo =
          start_lo + info.growth_down * options.horizon_seconds;
      info.after_horizon.hi =
          start_hi + info.growth_up * options.horizon_seconds;
    }
  }

  // ---- register-overflow: interval vs annotated width on this target ----
  if (!model.unconstrained) {
    for (const RegisterValueInfo& info : out.registers) {
      if (ir.registers[info.reg].folded || info.opaque ||
          !info.has_event_deltas) {
        continue;
      }
      const double max_pos =
          std::ldexp(1.0, static_cast<int>(info.width_bits) - 1) - 1.0;
      const double min_neg =
          -std::ldexp(1.0, static_cast<int>(info.width_bits) - 1);
      const bool over = info.after_horizon.hi > max_pos;
      const bool under = info.after_horizon.lo < min_neg;
      if (!over && !under) {
        continue;
      }
      std::ostringstream os;
      os << "worst-case growth " << num_str(over ? info.growth_up
                                                 : info.growth_down)
         << "/s escapes the " << info.width_bits << "-bit range ["
         << num_str(min_neg) << ", " << num_str(max_pos) << "] within "
         << num_str(options.horizon_seconds) << "s";
      const double g = over ? info.growth_up : -info.growth_down;
      if (g > 0.0) {
        os << " (wraps after ~" << num_str(max_pos / g) << "s)";
      }
      if (info.congruence > 1) {
        os << "; values stay == 0 mod " << info.congruence
           << ", so the wrap aliases a valid reading";
      }
      add(findings, Severity::kError, "register-overflow", info.name,
          os.str());
    }
  }

  // ---- merge-noncommutative: the optimizer's soundness precondition ----
  for (std::size_t r = 0; r < n; ++r) {
    if (ir.registers[r].folded) {
      continue;
    }
    const std::string witness = merge_commutativity_blocker(ir, r);
    if (witness.empty()) {
      continue;
    }
    add(findings,
        model.unconstrained ? Severity::kNote : Severity::kWarning,
        "merge-noncommutative", ir.registers[r].name,
        "sum-of-deltas merge is order-sensitive: " + witness);
  }

  // ---- staleness-value-error: PR 9's cycle bound in value units ----
  for (const PipelineMapping::Drain& d : mapping.drains) {
    if (d.reg >= n || !ir.registers[d.reg].aggregated) {
      continue;
    }
    ValueErrorBound b;
    b.reg = d.reg;
    b.name = d.name;
    b.max_abs_delta = out.registers[d.reg].max_abs_delta;
    b.stable = !d.starved && mapping.idle_rate > 0.0;
    if (b.stable) {
      b.staleness_seconds =
          2.0 * static_cast<double>(ir.registers[d.reg].size) /
          mapping.idle_rate;
      b.events_per_window = d.demand * b.staleness_seconds;
      b.bound = static_cast<double>(b.max_abs_delta) * b.events_per_window;
    }
    out.value_errors.push_back(b);
    if (model.unconstrained) {
      continue;
    }
    std::ostringstream os;
    if (b.stable) {
      os << "aggregated value deviates from the true sum by at most "
         << num_str(b.bound) << " (" << num_str(b.events_per_window)
         << " updates/window x max |delta| " << b.max_abs_delta
         << " over a " << num_str(b.staleness_seconds)
         << "s staleness window)";
      add(findings, Severity::kNote, "staleness-value-error", b.name,
          os.str());
    } else {
      os << "drain budget cannot bound staleness (idle "
         << num_str(mapping.idle_rate) << "/s vs demand " << num_str(d.demand)
         << "/s), so the value deviation is unbounded";
      add(findings, Severity::kWarning, "staleness-value-error", b.name,
          os.str());
    }
  }

  // ---- queue-occupancy-unbounded: increments never closed ----
  if (!model.unconstrained) {
    for (std::size_t r = 0; r < n; ++r) {
      const RegisterValueInfo& info = out.registers[r];
      const Accum& ac = acc[r];
      const std::size_t enq = static_cast<std::size_t>(Handler::kEnqueue);
      if (ir.registers[r].folded || info.opaque || !info.has_event_deltas ||
          !ac.seen[enq] || ac.dmax[enq] <= 0 || info.delta_min < 0 ||
          info.growth_up <= 0.0) {
        continue;
      }
      // A register the service side actively updates is a counter with its
      // own discipline, not an occupancy gauge nobody closes: only flag
      // when no dequeue-thread handler ever applies a delta.
      bool service_side_delta = false;
      for (std::size_t h = 0; h < kNumHandlers; ++h) {
        service_side_delta =
            service_side_delta ||
            (ac.seen[h] && thread_of(static_cast<Handler>(h)) ==
                               core::ThreadId::kDequeue);
      }
      if (service_side_delta) {
        continue;
      }
      const double capacity =
          options.buffer_bytes / static_cast<double>(model.min_packet_bytes);
      std::ostringstream os;
      os << "admission-side increments (+" << ac.dmax[enq]
         << "/enqueue) are never closed by a decrement; the interval grows "
         << num_str(info.growth_up) << "/s and passes the TM buffer ("
         << num_str(capacity) << " min-size slots) after ~"
         << num_str(capacity / info.growth_up) << "s";
      add(findings, Severity::kWarning, "queue-occupancy-unbounded",
          info.name, os.str());
    }
  }

  // ---- missing-rates: writer handlers the rate model knows nothing about --
  for (std::size_t h = 0; h < kNumHandlers; ++h) {
    if (h == kAttachIdx) {
      continue;
    }
    const Handler handler = static_cast<Handler>(h);
    if (rates.declared(handler) || rate[h] > 0.0) {
      continue;
    }
    bool writes = false;
    std::string reg_name;
    for (std::size_t r = 0; r < n && !writes; ++r) {
      if (ir.registers[r].folded) {
        continue;
      }
      const AccessPattern p = ir.pattern(handler, r);
      if (p == AccessPattern::kBlindWrite || p == AccessPattern::kRmw ||
          p == AccessPattern::kMixed) {
        writes = true;
        reg_name = ir.registers[r].name;
      }
    }
    if (!writes) {
      continue;
    }
    add(findings, Severity::kNote, "missing-rates",
        std::string(to_string(handler)),
        "handler writes " + reg_name +
            " but has no declared EventRates entry and the derived "
            "worst-case rate is 0/s — overflow and drain budgets ignore it");
  }

  return out;
}

}  // namespace edp::analysis
