#include "analysis/hardware_model.hpp"

#include <algorithm>
#include <sstream>

namespace edp::analysis {

double HardwareModel::packet_rate(std::size_t packet_bytes) const {
  const std::size_t bytes =
      packet_bytes == 0 ? min_packet_bytes : packet_bytes;
  if (bytes == 0 || line_rate_bps <= 0.0) {
    return 0.0;
  }
  const double rate = line_rate_bps / (8.0 * static_cast<double>(bytes));
  return std::min(rate, clock_hz);
}

const std::vector<HardwareModel>& builtin_hardware_models() {
  static const std::vector<HardwareModel> models = [] {
    std::vector<HardwareModel> m;

    HardwareModel tor;
    tor.name = "linerate-tor";
    tor.description =
        "Tofino-class ToR ASIC: 12 stages, single-ported stage SRAM, "
        "800G aggregate at a 1.25GHz clock (paper §4's line-rate case)";
    tor.stages = 12;
    tor.register_ports_per_stage = 1;
    tor.alus_per_stage = 4;
    tor.registers_per_stage = 4;
    tor.clock_hz = 1.25e9;
    tor.line_rate_bps = 800e9;
    tor.min_packet_bytes = 84;
    m.push_back(std::move(tor));

    HardwareModel nic;
    nic.name = "smartnic";
    nic.description =
        "SmartNIC datapath: 8 stages, dual-ported memory, 100G at a "
        "0.8GHz clock — lower rate buys ports (paper §4's "
        "low-line-rate case)";
    nic.stages = 8;
    nic.register_ports_per_stage = 2;
    nic.alus_per_stage = 2;
    nic.registers_per_stage = 8;
    nic.clock_hz = 0.8e9;
    nic.line_rate_bps = 100e9;
    nic.min_packet_bytes = 84;
    m.push_back(std::move(nic));

    HardwareModel sim;
    sim.name = "sim-unconstrained";
    sim.description =
        "Simulation target with no physical limits: the mapping is "
        "reported, nothing is flagged";
    sim.unconstrained = true;
    sim.stages = 1u << 20;
    sim.register_ports_per_stage = 1 << 20;
    sim.alus_per_stage = 1u << 20;
    sim.registers_per_stage = 1u << 20;
    sim.clock_hz = 1e18;
    sim.line_rate_bps = 800e9;
    sim.min_packet_bytes = 84;
    m.push_back(std::move(sim));

    return m;
  }();
  return models;
}

const HardwareModel* find_hardware_model(const std::string& name) {
  for (const HardwareModel& model : builtin_hardware_models()) {
    if (model.name == name) {
      return &model;
    }
  }
  return nullptr;
}

const HardwareModel& unconstrained_model() {
  return *find_hardware_model("sim-unconstrained");
}

namespace {

/// Rates are intents (1.19e9 pkt/s), not measurements; print compactly.
std::string format_rate(double rate) {
  std::ostringstream os;
  if (rate >= 1e9) {
    os << rate / 1e9 << "G/s";
  } else if (rate >= 1e6) {
    os << rate / 1e6 << "M/s";
  } else if (rate >= 1e3) {
    os << rate / 1e3 << "k/s";
  } else {
    os << rate << "/s";
  }
  return os.str();
}

}  // namespace

std::string PipelineMapping::format(
    const std::vector<IrRegister>& registers) const {
  std::ostringstream os;
  os << "  target " << target << ": "
     << (mapped ? "mapped" : "NOT MAPPED") << ", " << stages_used
     << " stage(s) used\n";
  for (std::size_t r = 0; r < stage_of.size() && r < registers.size(); ++r) {
    os << "    " << registers[r].name << " -> ";
    if (stage_of[r] == kUnplaced) {
      os << "unplaced";
    } else {
      os << "stage " << stage_of[r];
    }
    os << "\n";
  }
  os << "    cycle budget: slot " << format_rate(slot_rate) << ", carrier "
     << format_rate(carrier_rate) << ", idle " << format_rate(idle_rate)
     << "\n";
  for (const Drain& d : drains) {
    os << "    drain " << d.name << ": demand " << format_rate(d.demand)
       << (d.starved ? " (STARVED)" : "") << "\n";
  }
  return os.str();
}

}  // namespace edp::analysis
