#include "analysis/analyzer.hpp"

#include <utility>

namespace edp::analysis {

Report analyze_program(const std::string& name, const ProgramFactory& factory,
                       const AnalyzerOptions& options) {
  Report report;
  report.program = name;

  // Phase 1: matrix extraction on the event architecture. The probe is
  // process-global, so it is installed only while this instance runs.
  RecordingContext::Config event_config;
  event_config.event_architecture = true;
  RecordingContext event_ctx(event_config);
  DriveLog event_log;
  {
    const std::unique_ptr<core::EventProgram> program = factory();
    MatrixProbe probe(event_ctx);
    ProbeInstallation installed(&probe);
    event_log = drive_all(*program, event_ctx);
    report.matrix = probe.take_matrix();
  }
  report.graph = build_graph(event_ctx, event_log);

  // Phase 2: chain simulation on a fresh instance (fresh guard state).
  std::vector<ChainRun> chains;
  {
    const std::unique_ptr<core::EventProgram> program = factory();
    RecordingContext chain_ctx(event_config);
    chains = simulate_chains(*program, chain_ctx, options.max_chain_steps);
  }

  // Phase 3: baseline architecture, for the resource lint.
  RecordingContext::Config baseline_config;
  baseline_config.event_architecture = false;
  RecordingContext baseline_ctx(baseline_config);
  {
    const std::unique_ptr<core::EventProgram> program = factory();
    drive_all(*program, baseline_ctx);
  }

  port_budget_pass(report.matrix, report.findings);
  amplification_pass(report.graph, chains, report.findings);
  resource_lint_pass(event_ctx, event_log, baseline_ctx, report.matrix,
                     options.lint, report.findings);
  return report;
}

}  // namespace edp::analysis
