#include "analysis/analyzer.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

namespace edp::analysis {

Report analyze_program(const std::string& name, const ProgramFactory& factory,
                       const AnalyzerOptions& options) {
  Report report;
  report.program = name;

  // Phase 1: trace extraction on the event architecture. The probe is
  // process-global, so it is installed only while this instance runs.
  RecordingContext::Config event_config;
  event_config.event_architecture = true;
  RecordingContext event_ctx(event_config);
  DriveLog event_log;
  DriveOptions drive_options;
  drive_options.ingress_repeats = options.stimulus_repeats;
  {
    const std::unique_ptr<core::EventProgram> program = factory();
    TraceProbe probe(event_ctx);
    ProbeInstallation installed(&probe);
    event_log = drive_all(*program, event_ctx, drive_options);
    report.ir = probe.take_ir();
  }
  report.matrix = report.ir.to_matrix();
  report.graph = build_graph(event_ctx, event_log);

  // Phase 2: chain simulation on a fresh instance (fresh guard state).
  std::vector<ChainRun> chains;
  {
    const std::unique_ptr<core::EventProgram> program = factory();
    RecordingContext chain_ctx(event_config);
    chains = simulate_chains(*program, chain_ctx, options.max_chain_steps);
  }

  // Phase 3: baseline architecture, for the resource lint.
  RecordingContext::Config baseline_config;
  baseline_config.event_architecture = false;
  RecordingContext baseline_ctx(baseline_config);
  {
    const std::unique_ptr<core::EventProgram> program = factory();
    drive_all(*program, baseline_ctx, drive_options);
  }

  const HardwareModel& model =
      options.model != nullptr ? *options.model : unconstrained_model();

  port_budget_pass(report.matrix, report.findings);
  report.mapping = pipeline_mapping_pass(report.ir, report.graph, event_ctx,
                                         model, options.rates,
                                         report.findings);
  amplification_pass(report.graph, chains, report.findings);
  resource_lint_pass(event_ctx, event_log, baseline_ctx, report.matrix,
                     options.lint, report.findings);

  // Deterministic finding order: two analyses of the same program must
  // format byte-identically, whatever order the passes appended in.
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return std::tie(a.code, a.subject, a.message) <
                            std::tie(b.code, b.subject, b.message);
                   });
  return report;
}

}  // namespace edp::analysis
