#include "analysis/analyzer.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

namespace edp::analysis {

namespace {

RecordingContext::Config make_config(bool event_architecture) {
  RecordingContext::Config config;
  config.event_architecture = event_architecture;
  return config;
}

}  // namespace

ProgramTraces::ProgramTraces()
    : event_ctx(make_config(/*event_architecture=*/true)),
      baseline_ctx(make_config(/*event_architecture=*/false)) {}

ProgramTraces extract_traces(const ProgramFactory& factory,
                             const AnalyzerOptions& options) {
  ProgramTraces traces;
  DriveOptions drive_options;
  drive_options.ingress_repeats = options.stimulus_repeats;

  // Phase 1: trace extraction on the event architecture. The probe is
  // process-global, so it is installed only while this instance runs.
  {
    const std::unique_ptr<core::EventProgram> program = factory();
    TraceProbe probe(traces.event_ctx);
    ProbeInstallation installed(&probe);
    traces.event_log = drive_all(*program, traces.event_ctx, drive_options);
    traces.ir = probe.take_ir();
  }
  traces.graph = build_graph(traces.event_ctx, traces.event_log);

  // Phase 2: chain simulation on a fresh instance (fresh guard state).
  {
    const std::unique_ptr<core::EventProgram> program = factory();
    RecordingContext chain_ctx(make_config(/*event_architecture=*/true));
    traces.chains =
        simulate_chains(*program, chain_ctx, options.max_chain_steps);
  }

  // Phase 3: baseline architecture, for the resource lint.
  {
    const std::unique_ptr<core::EventProgram> program = factory();
    drive_all(*program, traces.baseline_ctx, drive_options);
  }
  return traces;
}

Report analyze_traces(const std::string& name, const ProgramTraces& traces,
                      const AnalyzerOptions& options) {
  Report report;
  report.program = name;
  report.ir = traces.ir;
  report.matrix = traces.ir.to_matrix();
  report.graph = traces.graph;

  const HardwareModel& model =
      options.model != nullptr ? *options.model : unconstrained_model();

  port_budget_pass(report.matrix, report.findings);
  report.mapping = pipeline_mapping_pass(report.ir, report.graph,
                                         traces.event_ctx, model,
                                         options.rates, report.findings);
  report.values = value_analysis_pass(report.ir, report.graph,
                                      traces.event_ctx, model, options.rates,
                                      options.widths, report.mapping,
                                      options.value, report.findings);
  amplification_pass(report.graph, traces.chains, report.findings);
  resource_lint_pass(traces.event_ctx, traces.event_log, traces.baseline_ctx,
                     report.matrix, options.lint, report.findings);

  // Deterministic finding order: two analyses of the same program must
  // format byte-identically, whatever order the passes appended in.
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return std::tie(a.code, a.subject, a.message) <
                            std::tie(b.code, b.subject, b.message);
                   });
  return report;
}

Report analyze_program(const std::string& name, const ProgramFactory& factory,
                       const AnalyzerOptions& options) {
  return analyze_traces(name, extract_traces(factory, options), options);
}

}  // namespace edp::analysis
