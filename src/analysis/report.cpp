#include "analysis/report.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

namespace edp::analysis {

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string_view to_string(Pass pass) {
  switch (pass) {
    case Pass::kPortBudget:
      return "port-budget";
    case Pass::kPipelineMapping:
      return "pipeline-mapping";
    case Pass::kAmplification:
      return "amplification";
    case Pass::kResourceLint:
      return "resource-lint";
    case Pass::kOptimizer:
      return "optimizer";
    case Pass::kValueAnalysis:
      return "value-analysis";
  }
  return "?";
}

std::string_view to_string(Handler handler) {
  switch (handler) {
    case Handler::kAttach:
      return "on_attach";
    case Handler::kIngress:
      return "on_ingress";
    case Handler::kEgress:
      return "on_egress";
    case Handler::kRecirculate:
      return "on_recirculate";
    case Handler::kGenerated:
      return "on_generated";
    case Handler::kTransmit:
      return "on_transmit";
    case Handler::kEnqueue:
      return "on_enqueue";
    case Handler::kDequeue:
      return "on_dequeue";
    case Handler::kOverflow:
      return "on_overflow";
    case Handler::kUnderflow:
      return "on_underflow";
    case Handler::kTimer:
      return "on_timer";
    case Handler::kControl:
      return "on_control";
    case Handler::kLinkStatus:
      return "on_link_status";
    case Handler::kUser:
      return "on_user";
  }
  return "?";
}

core::ThreadId thread_of(Handler handler) {
  switch (handler) {
    // The three packet-event pipelines are merged into the ingress
    // processing thread (paper Figure 2: recirculated and generated packets
    // re-enter through the ingress pipeline).
    case Handler::kIngress:
    case Handler::kRecirculate:
    case Handler::kGenerated:
      return core::ThreadId::kIngress;
    case Handler::kEgress:
      return core::ThreadId::kEgress;
    // Admission-side buffer events run on the enqueue thread.
    case Handler::kEnqueue:
    case Handler::kOverflow:
      return core::ThreadId::kEnqueue;
    // Service-side buffer events (and transmit completion) run on the
    // dequeue thread.
    case Handler::kDequeue:
    case Handler::kUnderflow:
    case Handler::kTransmit:
      return core::ThreadId::kDequeue;
    case Handler::kTimer:
      return core::ThreadId::kTimer;
    // Attach-time configuration, control, link and user events are not
    // line-rate pipelines; they contend like a background thread.
    case Handler::kAttach:
    case Handler::kControl:
    case Handler::kLinkStatus:
    case Handler::kUser:
      return core::ThreadId::kOther;
  }
  return core::ThreadId::kOther;
}

bool is_packet_handler(Handler handler) {
  return handler == Handler::kIngress || handler == Handler::kEgress ||
         handler == Handler::kRecirculate || handler == Handler::kGenerated;
}

std::string_view to_string(ActionKind action) {
  switch (action) {
    case ActionKind::kRecirculate:
      return "recirculate";
    case ActionKind::kRecircClone:
      return "recirc_clone";
    case ActionKind::kInjectPacket:
      return "inject_packet";
    case ActionKind::kSendPacket:
      return "send_packet";
    case ActionKind::kForward:
      return "forward";
    case ActionKind::kRaiseUserEvent:
      return "raise_user_event";
    case ActionKind::kSetTimer:
      return "set_timer";
    case ActionKind::kCancelTimer:
      return "cancel_timer";
    case ActionKind::kAddGenerator:
      return "add_generator";
    case ActionKind::kTriggerGenerator:
      return "trigger_generator";
    case ActionKind::kSetTemplate:
      return "set_generator_template";
  }
  return "?";
}

AccessCounts RegisterUsage::totals(Handler handler) const {
  AccessCounts total;
  for (const auto& c : counts[static_cast<std::size_t>(handler)]) {
    total.reads += c.reads;
    total.writes += c.writes;
  }
  return total;
}

std::vector<Handler> RegisterUsage::accessing_handlers() const {
  std::vector<Handler> out;
  for (std::size_t h = 1; h < kNumHandlers; ++h) {
    if (totals(static_cast<Handler>(h)).any()) {
      out.push_back(static_cast<Handler>(h));
    }
  }
  return out;
}

std::vector<Handler> RegisterUsage::writing_handlers() const {
  std::vector<Handler> out;
  for (std::size_t h = 1; h < kNumHandlers; ++h) {
    if (totals(static_cast<Handler>(h)).writes > 0) {
      out.push_back(static_cast<Handler>(h));
    }
  }
  return out;
}

std::string AccessMatrix::format() const {
  std::ostringstream os;
  for (const auto& reg : registers) {
    os << "  " << reg.name << " ("
       << (reg.aggregated ? "aggregated" : "shared") << ", size=" << reg.size
       << ", ports=" << reg.ports << ")\n";
    for (std::size_t h = 0; h < kNumHandlers; ++h) {
      const auto handler = static_cast<Handler>(h);
      const AccessCounts t = reg.totals(handler);
      if (!t.any()) {
        continue;
      }
      os << "    " << to_string(handler) << " [" << to_string(thread_of(handler))
         << "]: " << t.reads << "r/" << t.writes << "w";
      if (reg.aggregated) {
        const auto& per = reg.counts[h];
        const auto realization =
            [&](core::RegisterRealization r) -> const AccessCounts& {
          return per[static_cast<std::size_t>(r)];
        };
        os << " (main "
           << realization(core::RegisterRealization::kAggregatedMain).reads
           << "r/"
           << realization(core::RegisterRealization::kAggregatedMain).writes
           << "w, enq+"
           << realization(core::RegisterRealization::kAggregatedEnq).writes
           << ", deq+"
           << realization(core::RegisterRealization::kAggregatedDeq).writes
           << ")";
      }
      os << "\n";
    }
  }
  return os.str();
}

std::string EventGraph::format() const {
  // Deduplicate (from, to, action) for display.
  std::vector<std::string> lines;
  for (const auto& e : edges) {
    std::ostringstream os;
    os << "  " << to_string(e.from) << " --" << to_string(e.action)
       << (e.rate_bounded ? " (rate-bounded)" : "") << "--> "
       << to_string(e.to);
    if (!e.detail.empty()) {
      os << "  [" << e.detail << "]";
    }
    lines.push_back(os.str());
  }
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

std::vector<std::vector<Handler>> EventGraph::cycles() const {
  // Adjacency over non-rate-bounded edges, deduplicated.
  std::array<std::array<bool, kNumHandlers>, kNumHandlers> adj{};
  for (const auto& e : edges) {
    if (!e.rate_bounded) {
      adj[static_cast<std::size_t>(e.from)][static_cast<std::size_t>(e.to)] =
          true;
    }
  }

  // Enumerate simple cycles with a bounded DFS (14 nodes; Johnson's
  // algorithm would be overkill). Each cycle is reported once, rooted at
  // its smallest handler.
  std::vector<std::vector<Handler>> found;
  std::array<bool, kNumHandlers> on_path{};
  std::vector<std::size_t> path;

  const std::function<void(std::size_t, std::size_t)> dfs =
      [&](std::size_t root, std::size_t node) {
        on_path[node] = true;
        path.push_back(node);
        for (std::size_t next = 0; next < kNumHandlers; ++next) {
          if (!adj[node][next]) {
            continue;
          }
          if (next == root) {
            std::vector<Handler> cycle;
            cycle.reserve(path.size());
            for (const std::size_t n : path) {
              cycle.push_back(static_cast<Handler>(n));
            }
            found.push_back(std::move(cycle));
          } else if (next > root && !on_path[next]) {
            // `next > root` keeps each cycle rooted at its smallest node.
            dfs(root, next);
          }
        }
        path.pop_back();
        on_path[node] = false;
      };

  for (std::size_t root = 0; root < kNumHandlers; ++root) {
    dfs(root, root);
  }
  return found;
}

bool Report::has(Severity at_least) const {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.severity >= at_least;
  });
}

std::string Report::format(bool verbose) const {
  std::ostringstream os;
  os << "== edp-verify: " << program << " ==\n";
  if (verbose) {
    os << "access matrix:\n" << matrix.format();
    os << "event graph:\n" << graph.format();
    os << "dataflow IR:\n" << ir.format();
    os << "pipeline mapping:\n" << mapping.format(ir.registers);
    os << "value analysis:\n" << values.format();
  }
  if (findings.empty()) {
    os << "  no findings\n";
  }
  for (const auto& f : findings) {
    os << "  " << to_string(f.severity) << " [" << to_string(f.pass) << "/"
       << f.code << "] " << f.subject << ": " << f.message << "\n";
  }
  return os.str();
}

}  // namespace edp::analysis
