// edp::analysis — the verification passes.
//
//   1. build_graph       — recorded actions -> event-generation graph
//   2. port_budget_pass  — access matrix vs per-register port budgets (§4)
//   3. amplification_pass— graph cycles × chain-simulation verdicts
//   4. resource_lint_pass— facility misuse and metadata-convention lints
//
// Passes only append Findings; the analyzer (analyzer.hpp) sequences them
// and assembles the Report.
#pragma once

#include <vector>

#include "analysis/driver.hpp"
#include "analysis/recording_context.hpp"
#include "analysis/report.hpp"

namespace edp::analysis {

/// Per-program lint suppressions, declared in the program registry next to
/// the factory (the analysis-side equivalent of a NOLINT comment).
struct LintOverrides {
  /// The program consumes buffer events through member state the probe
  /// cannot observe (no registers, no facility calls in those handlers);
  /// suppresses the unused-meta note.
  bool handles_buffer_events = false;
};

/// Build the event-generation graph from the matrix-mode drive log and the
/// facility calls recorded alongside it.
EventGraph build_graph(const RecordingContext& ctx, const DriveLog& log);

void port_budget_pass(const AccessMatrix& matrix,
                      std::vector<Finding>& findings);

void amplification_pass(const EventGraph& graph,
                        const std::vector<ChainRun>& chains,
                        std::vector<Finding>& findings);

void resource_lint_pass(const RecordingContext& event_ctx,
                        const DriveLog& event_log,
                        const RecordingContext& baseline_ctx,
                        const AccessMatrix& matrix,
                        const LintOverrides& overrides,
                        std::vector<Finding>& findings);

}  // namespace edp::analysis
