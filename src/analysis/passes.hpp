// edp::analysis — the verification passes.
//
//   1. build_graph            — recorded actions -> event-generation graph
//   2. port_budget_pass       — access matrix vs per-register port budgets
//   3. pipeline_mapping_pass  — dataflow IR vs a declarative HardwareModel:
//                               stage depth, per-stage port schedule, and
//                               the idle-cycle aggregation drain budget (§4)
//   4. amplification_pass     — graph cycles × chain-simulation verdicts
//   5. resource_lint_pass     — facility misuse and metadata lints
//
// Passes only append Findings; the analyzer (analyzer.hpp) sequences them
// and assembles the Report.
#pragma once

#include <vector>

#include "analysis/driver.hpp"
#include "analysis/hardware_model.hpp"
#include "analysis/ir.hpp"
#include "analysis/recording_context.hpp"
#include "analysis/report.hpp"

namespace edp::analysis {

/// Per-program lint suppressions, declared in the program registry next to
/// the factory (the analysis-side equivalent of a NOLINT comment).
struct LintOverrides {
  /// The program consumes buffer events through member state the probe
  /// cannot observe (no registers, no facility calls in those handlers);
  /// suppresses the unused-meta note.
  bool handles_buffer_events = false;
};

/// Build the event-generation graph from the matrix-mode drive log and the
/// facility calls recorded alongside it.
EventGraph build_graph(const RecordingContext& ctx, const DriveLog& log);

/// Worst-case events/s per handler: a declared rate wins; otherwise packet
/// handlers follow the model's line rate, timers and generators the periods
/// the program itself recorded, and downstream handlers the rates that feed
/// them through the event graph. Shared by the pipeline-mapping and value
/// passes so both budget against the same arrival model.
std::array<double, kNumHandlers> derive_event_rates(
    const EventGraph& graph, const RecordingContext& ctx,
    const HardwareModel& model, const EventRates& rates);

void port_budget_pass(const AccessMatrix& matrix,
                      std::vector<Finding>& findings);

/// Map the program's dataflow IR onto `model` (paper §4's quantitative
/// feasibility): greedy stage allocation respecting dependency order and
/// per-stage ALU/register capacity (`stage-overflow`), a per-register
/// same-cycle port schedule where aggregation absorbs enq/deq *updates* but
/// never value-consuming reads (`port-schedule-conflict`), and the
/// idle-cycle drain budget — worst-case event rates, declared in `rates` or
/// derived from the model's line rate and the recorded timer/generator
/// periods, must leave more idle cycles than the aggregation side-registers
/// demand (`aggregation-starvation`). Unconstrained models record the
/// mapping but emit no findings.
PipelineMapping pipeline_mapping_pass(const DataflowIr& ir,
                                      const EventGraph& graph,
                                      const RecordingContext& ctx,
                                      const HardwareModel& model,
                                      const EventRates& rates,
                                      std::vector<Finding>& findings);

void amplification_pass(const EventGraph& graph,
                        const std::vector<ChainRun>& chains,
                        std::vector<Finding>& findings);

void resource_lint_pass(const RecordingContext& event_ctx,
                        const DriveLog& event_log,
                        const RecordingContext& baseline_ctx,
                        const AccessMatrix& matrix,
                        const LintOverrides& overrides,
                        std::vector<Finding>& findings);

}  // namespace edp::analysis
