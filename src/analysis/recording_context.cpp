#include "analysis/recording_context.hpp"

namespace edp::analysis {

bool RecordingContext::inject_packet(net::Packet packet) {
  const bool ok = config_.event_architecture;
  if (!ok) {
    ++refused_;
  }
  Call& c = record(ActionKind::kInjectPacket, ok);
  c.packet = std::move(packet);
  return ok;
}

bool RecordingContext::send_packet(net::Packet packet, std::uint16_t port,
                                   std::uint8_t qid) {
  const bool ok = config_.event_architecture;
  if (!ok) {
    ++refused_;
  }
  Call& c = record(ActionKind::kSendPacket, ok);
  c.packet = std::move(packet);
  c.id = static_cast<std::uint64_t>(port) << 8 | qid;
  return ok;
}

core::TimerId RecordingContext::set_periodic_timer(sim::Time period,
                                                   std::uint64_t cookie) {
  const bool ok = config_.event_architecture;
  if (!ok) {
    ++refused_;
  }
  Call& c = record(ActionKind::kSetTimer, ok);
  c.rate_bounded = period > sim::Time::zero();
  c.period = period;
  c.periodic = true;
  c.id = ok ? next_timer_++ : 0;
  c.cookie = cookie;
  return static_cast<core::TimerId>(c.id);
}

core::TimerId RecordingContext::set_oneshot_timer(sim::Time delay,
                                                  std::uint64_t cookie) {
  const bool ok = config_.event_architecture;
  if (!ok) {
    ++refused_;
  }
  Call& c = record(ActionKind::kSetTimer, ok);
  // A oneshot timer with a nonzero delay fires at most once per arming —
  // the re-arm path is itself delayed, so the edge cannot amplify.
  c.rate_bounded = delay > sim::Time::zero();
  c.period = delay;
  c.id = ok ? next_timer_++ : 0;
  c.cookie = cookie;
  return static_cast<core::TimerId>(c.id);
}

bool RecordingContext::cancel_timer(core::TimerId id) {
  if (id == 0) {
    zero_ids_.push_back(ZeroIdUse{ActionKind::kCancelTimer, current_});
    return false;
  }
  return config_.event_architecture && id < next_timer_;
}

core::GeneratorId RecordingContext::add_generator(
    core::PacketGenerator::Config config) {
  const bool ok = config_.event_architecture;
  if (!ok) {
    ++refused_;
  }
  Call& c = record(ActionKind::kAddGenerator, ok);
  c.rate_bounded = config.period > sim::Time::zero();
  c.period = config.period;
  c.periodic = true;
  c.id = ok ? next_generator_++ : 0;
  c.packet = std::move(config.packet_template);
  return static_cast<core::GeneratorId>(c.id);
}

void RecordingContext::trigger_generator(core::GeneratorId id,
                                         std::uint64_t n) {
  if (id == 0) {
    zero_ids_.push_back(ZeroIdUse{ActionKind::kTriggerGenerator, current_});
    return;
  }
  if (!config_.event_architecture) {
    ++refused_;
    return;
  }
  Call& c = record(ActionKind::kTriggerGenerator, true);
  c.id = id;
  c.cookie = n;
}

bool RecordingContext::set_generator_template(core::GeneratorId id,
                                              net::Packet tmpl) {
  if (id == 0) {
    zero_ids_.push_back(ZeroIdUse{ActionKind::kSetTemplate, current_});
    return false;
  }
  if (!config_.event_architecture) {
    ++refused_;
    return false;
  }
  // Remember the freshest template so chain simulation emits what the
  // program would actually generate.
  for (auto it = calls_.rbegin(); it != calls_.rend(); ++it) {
    if (it->kind == ActionKind::kAddGenerator && it->id == id) {
      it->packet = std::move(tmpl);
      return true;
    }
  }
  return false;
}

bool RecordingContext::raise_user_event(const core::UserEventData& data) {
  const bool ok = config_.event_architecture;
  if (!ok) {
    ++refused_;
  }
  Call& c = record(ActionKind::kRaiseUserEvent, ok);
  c.cookie = data.id;
  c.user = data;
  return ok;
}

void RecordingContext::notify_control_plane(const core::ControlEventData& msg) {
  // Available on every architecture (the punt path).
  punts_.push_back(Punt{msg.opcode, current_, drive_});
}

}  // namespace edp::analysis
