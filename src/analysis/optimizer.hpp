// edp::analysis — the IR-driven pipeline optimizer (paper §4, Figure 3).
//
// From linter to compiler: the verification passes *report* why a program
// cannot map onto a constrained target; the optimizer *rewrites* the
// program and then mandatorily re-verifies the rewrite with the same
// passes. Three verified transforms:
//
//   1. aggregation-insertion — a SharedRegister whose naive mapping fails
//      on port constraints, and whose enqueue/dequeue-thread accesses are
//      all coalescible RMW deltas (the merge function is derived from the
//      old/new values the register probe observed), is re-realized as an
//      AggregatedRegister: a single-ported main array plus enq/deq side
//      arrays drained during idle cycles. Each insertion carries a
//      staleness bound computed from the target's idle-cycle budget.
//   2. pipeline-merging — the per-event logical pipelines are fused into
//      one physical pipeline, expressed as a core::DispatchPlan the
//      EventSwitch executes directly: handlers proven to run the default
//      body are suppressed (their events are never constructed), handlers
//      that only coalesce deltas into aggregation side arrays are fused
//      inline at the point the architecture observes the event, and
//      registers never written after on_attach constant-fold into
//      match-action entries (no ports, no stage capacity).
//   3. re-verification — port-budget, pipeline-mapping and amplification
//      re-run over the transformed traces; any constraint the transforms
//      cannot resolve is reported precisely as `unresolvable-constraint`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "core/dispatch_plan.hpp"

namespace edp::analysis {

/// One applied transform, for the diagnostics and the text report.
struct TransformRecord {
  /// "aggregation-insertion", "constant-fold", "suppress-default",
  /// "fuse-handler".
  std::string kind;
  std::string subject;  ///< register or handler the transform rewrote
  std::string detail;
};

/// The bounded-staleness contract an aggregation insertion buys (paper §4:
/// "the programmer needs to be aware of the staleness").
struct StalenessBound {
  std::string reg;
  double demand_per_sec = 0.0;     ///< aggregated updates/s
  double idle_rate_per_sec = 0.0;  ///< idle cycles/s left by slot+carrier
  /// Worst-case age of a pending delta under sustained load: one full
  /// drain sweep over both side arrays, 2*size entries at one idle cycle
  /// each. Meaningful only when `stable`.
  double bound_seconds = 0.0;
  std::uint64_t bound_cycles = 0;
  /// Drain bandwidth exceeds demand — staleness is bounded at all.
  bool stable = false;
  /// The staleness bound in *value* units (value-analysis pass): the main
  /// array deviates from the true sum by at most max |observed delta| x the
  /// updates that arrive within one staleness window. 0 when unstable.
  std::int64_t max_abs_delta = 0;
  double value_error_bound = 0.0;
};

/// Everything `optimize_program` produced: the naive and re-verified
/// reports, the transform list, the staleness contracts, the optimizer's
/// own diagnostics, and the executable artifacts (factory + dispatch plan)
/// the simulator runs directly.
struct OptimizationResult {
  std::string program;
  std::string target;

  Report naive;      ///< verification of the program as written
  Report optimized;  ///< mandatory re-verification after the transforms

  bool transformed = false;  ///< at least one rewrite was applied
  /// Re-verification found no errors and every port-constraint candidate
  /// was resolvable.
  bool feasible = false;

  std::vector<TransformRecord> transforms;
  std::vector<StalenessBound> staleness;
  /// Optimizer findings (Pass::kOptimizer): transform-applied,
  /// staleness-bound, unresolvable-constraint.
  std::vector<Finding> diagnostics;

  /// The flattened physical pipeline: build the program with
  /// `optimized_factory` and install `plan` via
  /// EventSwitch::set_dispatch_plan.
  core::DispatchPlan plan;
  ProgramFactory optimized_factory;

  /// The optimized report with the optimizer diagnostics merged in (what
  /// the JSON/SARIF serializers consume), deterministically sorted.
  Report combined() const;

  /// Findings-style text report; verbose appends the optimized Report dump.
  std::string format(bool verbose = false) const;
};

/// Run the optimizer: verify `factory`'s program naively, apply the
/// transforms the traces prove safe, re-verify, and derive the dispatch
/// plan. `options.model` selects the target (nullptr = unconstrained).
OptimizationResult optimize_program(const std::string& name,
                                    const ProgramFactory& factory,
                                    const AnalyzerOptions& options = {});

}  // namespace edp::analysis
