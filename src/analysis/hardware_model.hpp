// edp::analysis — declarative hardware targets for the pipeline-mapping
// pass.
//
// Paper §4's feasibility argument is quantitative: the merged physical
// pipeline (Figure 3) fits a device only if the dependency chains fit the
// stage count, every same-cycle register access gets a memory port, and the
// clock leaves enough *idle* cycles — cycles carrying neither a packet slot
// nor a carrier event — to drain the aggregation side-registers faster than
// worst-case event rates fill them. A HardwareModel states those device
// parameters declaratively; the pipeline-mapping pass (passes.hpp) checks a
// program's dataflow IR against them and PipelineMapping records the
// verdict.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/findings.hpp"
#include "analysis/ir.hpp"

namespace edp::analysis {

/// One pipeline target. Rates are events per second; a clock cycle carries
/// at most one packet slot (paper §3's slot model).
struct HardwareModel {
  std::string name;
  std::string description;

  /// True for simulation targets with no meaningful physical limits: the
  /// pipeline-mapping pass records the mapping but emits no findings.
  bool unconstrained = false;

  /// Physical match-action stages in the merged pipeline.
  std::size_t stages = 12;
  /// Same-cycle access ports on each stage's register memory. 1 models the
  /// single-ported SRAM of a line-rate device (§4).
  int register_ports_per_stage = 1;
  /// Stateful ALUs per stage — distinct registers placeable on one stage.
  std::size_t alus_per_stage = 4;
  /// Register externs one stage's memory can host.
  std::size_t registers_per_stage = 4;

  /// Pipeline clock. One cycle = one packet slot opportunity.
  double clock_hz = 1.25e9;
  /// Aggregate line rate, used to derive the worst-case packet arrival
  /// rate when a program declares no expected packet size.
  double line_rate_bps = 800e9;
  /// Minimum wire frame (64B + preamble + IFG = 84B for Ethernet).
  std::size_t min_packet_bytes = 84;

  /// Packets/s at line rate for `packet_bytes`-sized frames (0 = worst
  /// case, i.e. min_packet_bytes), capped at one slot per clock cycle.
  double packet_rate(std::size_t packet_bytes) const;
};

/// Built-in targets: "linerate-tor" (single-ported Tofino-class ToR),
/// "smartnic" (slower clock, dual-ported memory), "sim-unconstrained".
const std::vector<HardwareModel>& builtin_hardware_models();

/// Lookup by name; nullptr when unknown.
const HardwareModel* find_hardware_model(const std::string& name);

/// The "sim-unconstrained" model (the analyzer default: mapping is
/// reported, nothing is flagged).
const HardwareModel& unconstrained_model();

/// Worst-case event arrival rates, per handler, in events/s. Registered
/// programs annotate what they expect (src/apps/registry.cpp); anything
/// left unset is derived by the pass — packet handlers from the model's
/// line rate, timers and generators from their recorded periods.
struct EventRates {
  /// Expected packet size on the wire; 0 = assume worst-case minimum
  /// frames. Raising it lowers the packet slot rate proportionally.
  std::size_t avg_packet_bytes = 0;

  void set(Handler handler, double events_per_sec) {
    overrides_[static_cast<std::size_t>(handler)] = events_per_sec;
  }
  /// Declared rate, or a negative value when the pass should derive one.
  double get(Handler handler) const {
    return overrides_[static_cast<std::size_t>(handler)];
  }
  bool declared(Handler handler) const { return get(handler) >= 0.0; }

 private:
  std::array<double, kNumHandlers> overrides_ = [] {
    std::array<double, kNumHandlers> a{};
    a.fill(-1.0);
    return a;
  }();
};

/// The pipeline-mapping pass's result: where each register landed and the
/// cycle-budget accounting behind any starvation findings.
struct PipelineMapping {
  std::string target;  ///< HardwareModel::name
  bool mapped = false;  ///< stage placement succeeded

  /// stage_of[reg] — physical stage (0-based) per DataflowIr register
  /// index; kUnplaced when placement failed for that register.
  static constexpr std::size_t kUnplaced = ~std::size_t{0};
  std::vector<std::size_t> stage_of;
  std::size_t stages_used = 0;

  /// Cycle budget (events/s). slot = packet-carrying cycles, carrier =
  /// non-packet event cycles, idle = clock − slot − carrier.
  double slot_rate = 0.0;
  double carrier_rate = 0.0;
  double idle_rate = 0.0;

  /// Idle-cycle drain accounting for one aggregated register.
  struct Drain {
    std::size_t reg = 0;     ///< DataflowIr register index
    std::string name;
    double demand = 0.0;     ///< aggregated updates/s needing a drain cycle
    bool starved = false;    ///< demand exceeds the shared idle budget
  };
  std::vector<Drain> drains;

  std::string format(const std::vector<IrRegister>& registers) const;
};

}  // namespace edp::analysis
