// edp::analysis — the per-program analysis Report.
//
// The vocabulary (findings, handlers, the access matrix, the event graph)
// lives in findings.hpp; the ordered dataflow IR in ir.hpp; the hardware
// targets and mapping result in hardware_model.hpp. This header assembles
// them into the Report the analyzer returns and `edp_lint` prints.
#pragma once

#include <string>
#include <vector>

#include "analysis/findings.hpp"
#include "analysis/hardware_model.hpp"
#include "analysis/ir.hpp"
#include "analysis/value_analysis.hpp"

namespace edp::analysis {

struct Report {
  std::string program;
  AccessMatrix matrix;
  EventGraph graph;
  DataflowIr ir;
  PipelineMapping mapping;
  ValueAnalysis values;
  std::vector<Finding> findings;

  bool has(Severity at_least) const;
  /// No warnings or errors (notes allowed).
  bool clean() const { return !has(Severity::kWarning); }

  /// Human-readable report; verbose adds the matrix, graph, IR, and
  /// pipeline-mapping dumps.
  std::string format(bool verbose = false) const;
};

}  // namespace edp::analysis
