#include "topo/control_plane.hpp"

#include <utility>

namespace edp::topo {

void ControlPlaneAgent::attach(
    core::EventSwitch& sw,
    std::function<void(const core::ControlEventData&)> handler) {
  sw.on_punt = [this, handler = std::move(handler)](
                   const core::ControlEventData& msg) {
    ++from_switch_;
    const sim::Time delay = config_.channel_latency + config_.processing_time;
    sched_.after(delay, [handler, msg] { handler(msg); });
  };
}

void ControlPlaneAgent::send_control_event(core::EventSwitch& sw,
                                           core::ControlEventData data) {
  ++to_switch_;
  sched_.after(config_.channel_latency,
               [&sw, d = std::move(data)] { sw.control_event(d); });
}

void ControlPlaneAgent::inject_packet(core::EventSwitch& sw,
                                      net::Packet packet) {
  ++to_switch_;
  ++injected_;
  sched_.after(config_.channel_latency, [&sw, p = std::move(packet)]() mutable {
    sw.inject_from_control_plane(std::move(p));
  });
}

std::unique_ptr<sim::PeriodicTask> ControlPlaneAgent::every(
    sim::Time period, std::function<void()> fn) {
  auto task =
      std::make_unique<sim::PeriodicTask>(sched_, period, std::move(fn));
  task->start();
  return task;
}

}  // namespace edp::topo
