#include "topo/link.hpp"

#include <utility>

namespace edp::topo {

void Link::set_up(bool up) {
  if (up_ == up) {
    return;
  }
  up_ = up;
  if (a_.status) {
    a_.status(up);
  }
  if (b_.status) {
    b_.status(up);
  }
}

void Link::send(net::Packet& p, bool to_b) {
  if (!up_) {
    ++dropped_down_;
    return;
  }
  // Copy the target closure by reference-to-member: the End outlives the
  // scheduled delivery because the Link owns it for the simulation's life.
  End& dst = to_b ? b_ : a_;
  sched_.after(config_.delay, [this, &dst, pkt = std::move(p)]() mutable {
    ++delivered_;
    if (dst.deliver) {
      dst.deliver(std::move(pkt));
    }
  });
}

}  // namespace edp::topo
