// edp::topo — network container and wiring.
//
// Owns the switches, hosts, and links of an experiment topology and does
// the callback plumbing: switch tx ports feed links, links deliver to the
// peer and raise link-status changes into attached switches. Indices are
// stable handles (vectors of unique_ptr), so experiment code can keep
// references while building incrementally.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/event_switch.hpp"
#include "net/pcap.hpp"
#include "sim/scheduler.hpp"
#include "topo/host.hpp"
#include "topo/link.hpp"

namespace edp::topo {

class Network {
 public:
  explicit Network(sim::Scheduler& sched) : sched_(sched) {}

  sim::Scheduler& scheduler() { return sched_; }

  /// Create a switch; returns its index.
  std::size_t add_switch(core::EventSwitchConfig config);

  /// Create a host; returns its index.
  std::size_t add_host(Host::Config config);

  /// Connect host `h` to switch `s` port `port`; returns the link index.
  std::size_t connect_host(std::size_t h, std::size_t s, std::uint16_t port,
                           Link::Config link = {});

  /// Connect switch `s1` port `p1` to switch `s2` port `p2`.
  std::size_t connect_switches(std::size_t s1, std::uint16_t p1,
                               std::size_t s2, std::uint16_t p2,
                               Link::Config link = {});

  core::EventSwitch& sw(std::size_t i) { return *switches_[i]; }
  Host& host(std::size_t i) { return *hosts_[i]; }
  Link& link(std::size_t i) { return *links_[i]; }

  std::size_t num_switches() const { return switches_.size(); }
  std::size_t num_hosts() const { return hosts_.size(); }
  std::size_t num_links() const { return links_.size(); }

  /// Tap link `l`: every packet delivered in either direction is appended
  /// to a pcap file at `path` (tcpdump/Wireshark-readable). Returns false
  /// if the file cannot be opened. The tap wraps the link's deliver
  /// callbacks, so it must be attached AFTER the link is fully wired.
  bool attach_pcap(std::size_t l, const std::string& path);

  /// Run the simulation until `deadline`.
  void run_until(sim::Time deadline) { sched_.run_until(deadline); }

 private:
  sim::Scheduler& sched_;
  std::vector<std::unique_ptr<core::EventSwitch>> switches_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<net::PcapWriter>> taps_;
};

}  // namespace edp::topo
