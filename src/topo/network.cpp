#include "topo/network.hpp"

#include <cassert>

namespace edp::topo {

std::size_t Network::add_switch(core::EventSwitchConfig config) {
  switches_.push_back(
      std::make_unique<core::EventSwitch>(sched_, std::move(config)));
  return switches_.size() - 1;
}

std::size_t Network::add_host(Host::Config config) {
  hosts_.push_back(std::make_unique<Host>(sched_, std::move(config)));
  return hosts_.size() - 1;
}

std::size_t Network::connect_host(std::size_t h, std::size_t s,
                                  std::uint16_t port, Link::Config lc) {
  assert(h < hosts_.size() && s < switches_.size());
  links_.push_back(std::make_unique<Link>(sched_, lc));
  Link& link = *links_.back();
  Host& host = *hosts_[h];
  core::EventSwitch& swt = *switches_[s];

  // Host on side A, switch on side B.
  host.connect_tx([&link](net::Packet p) { link.send_a_to_b(std::move(p)); });
  link.end_b().deliver = [&swt, port](net::Packet p) {
    swt.receive(port, std::move(p));
  };
  link.end_b().status = [&swt, port](bool up) {
    swt.set_link_status(port, up);
  };
  link.end_a().deliver = [&host](net::Packet p) {
    host.receive(std::move(p));
  };
  swt.connect_tx(port, [&link](net::Packet p) {
    link.send_b_to_a(std::move(p));
  });
  return links_.size() - 1;
}

bool Network::attach_pcap(std::size_t l, const std::string& path) {
  assert(l < links_.size());
  auto writer = std::make_unique<net::PcapWriter>(path);
  if (!writer->ok()) {
    return false;
  }
  net::PcapWriter* pcap = writer.get();
  taps_.push_back(std::move(writer));
  Link& link = *links_[l];
  // Wrap both deliver directions; capture time is the delivery instant.
  for (Link::End* end : {&link.end_a(), &link.end_b()}) {
    auto inner = std::move(end->deliver);
    end->deliver = [this, pcap, inner = std::move(inner)](net::Packet p) {
      pcap->write(p, sched_.now());
      pcap->flush();  // a tap is a debugging aid: keep the file readable
      if (inner) {
        inner(std::move(p));
      }
    };
  }
  return true;
}

std::size_t Network::connect_switches(std::size_t s1, std::uint16_t p1,
                                      std::size_t s2, std::uint16_t p2,
                                      Link::Config lc) {
  assert(s1 < switches_.size() && s2 < switches_.size());
  links_.push_back(std::make_unique<Link>(sched_, lc));
  Link& link = *links_.back();
  core::EventSwitch& a = *switches_[s1];
  core::EventSwitch& b = *switches_[s2];

  a.connect_tx(p1, [&link](net::Packet p) { link.send_a_to_b(std::move(p)); });
  b.connect_tx(p2, [&link](net::Packet p) { link.send_b_to_a(std::move(p)); });
  link.end_a().deliver = [&a, p1](net::Packet p) {
    a.receive(p1, std::move(p));
  };
  link.end_b().deliver = [&b, p2](net::Packet p) {
    b.receive(p2, std::move(p));
  };
  link.end_a().status = [&a, p1](bool up) { a.set_link_status(p1, up); };
  link.end_b().status = [&b, p2](bool up) { b.set_link_status(p2, up); };
  return links_.size() - 1;
}

}  // namespace edp::topo
