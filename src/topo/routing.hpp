// edp::topo — basic L3 forwarding program.
//
// Most applications in this repository are "a router plus event logic", so
// they extend `L3Program`: a data-plane program whose ingress stage does
// longest-prefix-match routing on the IPv4 destination through a PISA
// match-action table. Subclasses call `route(phv)` and then layer their
// event handling on top — mirroring how real P4 programs compose a
// baseline router with extra logic.
#pragma once

#include <cstdint>

#include "core/event_program.hpp"
#include "pisa/table.hpp"

namespace edp::topo {

class L3Program : public core::EventProgram {
 public:
  explicit L3Program(std::size_t route_capacity = 1024);

  /// Control-plane API: route `prefix/len` out of `port`.
  void add_route(net::Ipv4Address prefix, int prefix_len, std::uint16_t port);

  /// Drop-in ingress: route and nothing else.
  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override;

  const pisa::MatchActionTable& routes() const { return routes_; }

 protected:
  /// LPM on phv.ipv4->dst; sets egress_port on hit, drop on miss (or on a
  /// non-IPv4 packet). Returns true on hit.
  bool route(pisa::Phv& phv);

 private:
  pisa::MatchActionTable routes_;
};

/// ECMP helper: pick one of `n` ports by 5-tuple hash (deterministic per
/// flow, as switch hardware does).
std::uint16_t ecmp_pick(const pisa::Phv& phv, std::uint16_t n);

}  // namespace edp::topo
