#include "topo/host.hpp"

#include <utility>

#include "net/flow.hpp"

namespace edp::topo {

Host::Host(sim::Scheduler& sched, Config config)
    : sched_(sched), config_(std::move(config)) {}

void Host::send(net::Packet packet) {
  tx_queue_.push_back(std::move(packet));
  pump_tx();
}

void Host::pump_tx() {
  if (tx_busy_ || tx_queue_.empty()) {
    return;
  }
  tx_busy_ = true;
  net::Packet pkt = std::move(tx_queue_.front());
  tx_queue_.pop_front();
  const sim::Time tx_time =
      sim::serialization_time(pkt.size(), config_.nic_rate_bps);
  sched_.after(tx_time, [this, p = std::move(pkt)]() mutable {
    ++tx_packets_;
    if (tx_) {
      tx_(std::move(p));
    }
    tx_busy_ = false;
    pump_tx();
  });
}

void Host::receive(net::Packet packet) {
  ++rx_packets_;
  rx_bytes_ += packet.size();
  // Track per-UDP-port arrivals for experiment accounting.
  const net::FiveTuple t = net::extract_five_tuple(packet);
  if (t.protocol == net::kIpProtoUdp) {
    ++rx_by_port_[t.dst_port];
  }
  if (on_receive) {
    on_receive(packet);
  }
}

std::uint64_t Host::rx_on_port(std::uint16_t udp_dst) const {
  const auto it = rx_by_port_.find(udp_dst);
  return it == rx_by_port_.end() ? 0 : it->second;
}

}  // namespace edp::topo
