// edp::topo — workload generators.
//
// Deterministic (seeded) traffic sources that drive the experiments:
//   * CbrGenerator      — constant bit rate (background load, line-rate fill)
//   * PoissonGenerator  — Poisson arrivals (smooth stochastic load)
//   * BurstGenerator    — on/off microbursts (the §2 microburst workload)
//   * ZipfGenerator     — skewed many-flow traffic (CMS / NetCache workloads)
//
// Each generator owns its schedule on the shared simulator and sends
// through a Host (which paces at the NIC rate).
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet_builder.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "topo/host.hpp"

namespace edp::topo {

/// Shared flow parameters for generated packets.
struct FlowSpec {
  net::Ipv4Address src;
  net::Ipv4Address dst;
  std::uint16_t src_port = 10000;
  std::uint16_t dst_port = 20000;
  std::size_t packet_size = 1000;  ///< total wire bytes
};

/// Constant-bit-rate UDP source.
class CbrGenerator {
 public:
  struct Config {
    FlowSpec flow;
    double rate_bps = 1e9;
    sim::Time start = sim::Time::zero();
    sim::Time stop = sim::Time::seconds(1);  ///< no packets at/after stop
  };

  CbrGenerator(sim::Scheduler& sched, Host& host, Config config);
  void start();

  std::uint64_t sent() const { return sent_; }

 private:
  void emit();

  sim::Scheduler& sched_;
  Host& host_;
  Config config_;
  sim::Time interval_;
  std::uint64_t sent_ = 0;
};

/// Poisson arrivals at a mean rate.
class PoissonGenerator {
 public:
  struct Config {
    FlowSpec flow;
    double mean_rate_bps = 1e9;
    sim::Time start = sim::Time::zero();
    sim::Time stop = sim::Time::seconds(1);
    std::uint64_t seed = 1;
  };

  PoissonGenerator(sim::Scheduler& sched, Host& host, Config config);
  void start();

  std::uint64_t sent() const { return sent_; }

 private:
  void emit();

  sim::Scheduler& sched_;
  Host& host_;
  Config config_;
  sim::Random rng_;
  sim::Time mean_interval_;
  std::uint64_t sent_ = 0;
};

/// On/off burst source: bursts of `burst_packets` back-to-back at the burst
/// rate, separated by idle gaps — the microburst workload of paper §2.
class BurstGenerator {
 public:
  struct Config {
    FlowSpec flow;
    double burst_rate_bps = 10e9;
    std::size_t burst_packets = 64;
    sim::Time gap = sim::Time::millis(1);  ///< idle time between bursts
    sim::Time start = sim::Time::zero();
    sim::Time stop = sim::Time::seconds(1);
    bool jitter_gap = false;  ///< randomize gaps +-50%
    std::uint64_t seed = 2;
  };

  BurstGenerator(sim::Scheduler& sched, Host& host, Config config);
  void start();

  std::uint64_t sent() const { return sent_; }
  std::uint64_t bursts() const { return bursts_; }

 private:
  void start_burst();
  void emit(std::size_t remaining);

  sim::Scheduler& sched_;
  Host& host_;
  Config config_;
  sim::Random rng_;
  std::uint64_t sent_ = 0;
  std::uint64_t bursts_ = 0;
};

/// One packet of a replayed trace.
struct TraceEntry {
  sim::Time at = sim::Time::zero();
  FlowSpec flow;
};

/// Replays an explicit (time, flow, size) trace through a host — the
/// substitute for production packet traces (see DESIGN.md §2): captured
/// workloads can be exported to the simple CSV format and re-run
/// deterministically.
class TraceReplayGenerator {
 public:
  TraceReplayGenerator(sim::Scheduler& sched, Host& host,
                       std::vector<TraceEntry> trace);

  /// Parse CSV text: one entry per line,
  ///   time_us,src_ip,dst_ip,src_port,dst_port,size_bytes
  /// Blank lines and lines starting with '#' are skipped. Malformed lines
  /// are dropped (count reported via parse_errors).
  static std::vector<TraceEntry> parse_csv(const std::string& text,
                                           std::size_t* parse_errors = nullptr);

  void start();

  std::uint64_t sent() const { return sent_; }
  std::size_t size() const { return trace_.size(); }

 private:
  sim::Scheduler& sched_;
  Host& host_;
  std::vector<TraceEntry> trace_;
  std::uint64_t sent_ = 0;
};

/// Many-flow source with Zipf-distributed flow popularity; flow i maps to
/// distinct src/dst addresses so switch-side hashing sees real diversity.
class ZipfGenerator {
 public:
  struct Config {
    std::size_t num_flows = 1000;
    double skew = 1.1;
    double rate_bps = 1e9;     ///< aggregate packet rate
    std::size_t packet_size = 256;
    std::uint16_t dst_port = 20000;
    net::Ipv4Address dst;      ///< common destination (e.g. the sink host)
    sim::Time start = sim::Time::zero();
    sim::Time stop = sim::Time::seconds(1);
    std::uint64_t seed = 3;
  };

  ZipfGenerator(sim::Scheduler& sched, Host& host, Config config);
  void start();

  std::uint64_t sent() const { return sent_; }
  /// Ground-truth packet count per flow index (for sketch accuracy checks).
  const std::vector<std::uint64_t>& true_counts() const { return counts_; }
  /// The source address used for flow `i`.
  static net::Ipv4Address flow_src(std::size_t i);

 private:
  void emit();

  sim::Scheduler& sched_;
  Host& host_;
  Config config_;
  sim::Random rng_;
  sim::ZipfSampler zipf_;
  sim::Time interval_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t sent_ = 0;
};

}  // namespace edp::topo
