#include "topo/spec.hpp"

#include <algorithm>
#include <cassert>

namespace edp::topo {

std::size_t Spec::connect_host(std::size_t h, std::size_t s,
                               std::uint16_t port, Link::Config link) {
  assert(h < hosts_.size() && s < switches_.size());
  links_.push_back(LinkSpec{/*host_side=*/true, h, 0, s, port, link});
  return links_.size() - 1;
}

std::size_t Spec::connect_switches(std::size_t s1, std::uint16_t p1,
                                   std::size_t s2, std::uint16_t p2,
                                   Link::Config link) {
  assert(s1 < switches_.size() && s2 < switches_.size());
  links_.push_back(LinkSpec{/*host_side=*/false, s1, p1, s2, p2, link});
  return links_.size() - 1;
}

void Spec::instantiate(Network& net) const {
  for (const auto& sc : switches_) {
    net.add_switch(sc);
  }
  for (const auto& hc : hosts_) {
    net.add_host(hc);
  }
  for (const auto& l : links_) {
    if (l.host_side) {
      net.connect_host(l.a, l.b, l.pb, l.config);
    } else {
      net.connect_switches(l.a, l.pa, l.b, l.pb, l.config);
    }
  }
}

ShardPlan plan_shards(const Spec& spec, std::size_t num_shards,
                      std::vector<std::size_t> switch_shard,
                      std::vector<std::size_t> host_shard) {
  assert(num_shards >= 1);
  assert(switch_shard.size() == spec.num_switches());

  ShardPlan plan;
  plan.num_shards = num_shards;
  plan.requested_shards = num_shards;
  plan.switch_shard = std::move(switch_shard);
  plan.host_shard = std::move(host_shard);
  plan.host_shard.resize(spec.num_hosts(), ShardPlan::npos);

  for (std::size_t s : plan.switch_shard) {
    assert(s < num_shards);
    (void)s;
  }

  // Hosts without an explicit shard follow the first switch they attach to.
  for (std::size_t l = 0; l < spec.num_links(); ++l) {
    const auto& ls = spec.link_spec(l);
    if (ls.host_side && plan.host_shard[ls.a] == ShardPlan::npos) {
      plan.host_shard[ls.a] = plan.switch_shard[ls.b];
    }
  }
  // Unattached hosts: deterministic round-robin.
  for (std::size_t h = 0; h < plan.host_shard.size(); ++h) {
    if (plan.host_shard[h] == ShardPlan::npos) {
      plan.host_shard[h] = h % num_shards;
    }
    assert(plan.host_shard[h] < num_shards);
  }

  plan.pair_lookahead_ps.assign(num_shards * num_shards,
                                ShardPlan::kNoChannel);
  for (std::size_t l = 0; l < spec.num_links(); ++l) {
    const auto& ls = spec.link_spec(l);
    const std::size_t sa =
        ls.host_side ? plan.host_shard[ls.a] : plan.switch_shard[ls.a];
    const std::size_t sb = plan.switch_shard[ls.b];
    if (sa == sb) {
      continue;
    }
    // The conservative window rule requires every cross-shard hop to carry
    // at least one lookahead of delay; a zero-delay cut link would force a
    // zero-length window (no parallelism, livelock).
    assert(ls.config.delay > sim::Time::zero() &&
           "cut links must have positive delay");
    plan.cut_links.push_back(l);
    if (!plan.lookahead || ls.config.delay < *plan.lookahead) {
      plan.lookahead = ls.config.delay;
    }
    // Links are full duplex: the pair bound tightens in both directions.
    const std::int64_t d = ls.config.delay.ps();
    for (auto [src, dst] : {std::pair{sa, sb}, std::pair{sb, sa}}) {
      std::int64_t& cell = plan.pair_lookahead_ps[src * num_shards + dst];
      cell = std::min(cell, d);
    }
  }
  plan.cut_fraction =
      spec.num_links() == 0
          ? 0.0
          : static_cast<double>(plan.cut_links.size()) /
                static_cast<double>(spec.num_links());

  // Empty shards are legal with an explicit assignment (the caller may be
  // reserving shard ids) but are worth surfacing: each one is a barrier
  // participant that never executes an event.
  std::vector<bool> used(num_shards, false);
  for (std::size_t s : plan.switch_shard) {
    used[s] = true;
  }
  for (std::size_t s : plan.host_shard) {
    used[s] = true;
  }
  plan.empty_shards = static_cast<std::size_t>(
      std::count(used.begin(), used.end(), false));
  return plan;
}

namespace {

/// num_shards clamped so every shard can own at least one switch. A
/// num_shards > num_switches request would leave shards with no nodes at
/// all — threads that barrier every window and never execute an event.
std::size_t clamp_shards(const Spec& spec, std::size_t num_shards) {
  const std::size_t max_useful = std::max<std::size_t>(1, spec.num_switches());
  return std::min(std::max<std::size_t>(1, num_shards), max_useful);
}

}  // namespace

ShardPlan plan_shards(const Spec& spec, std::size_t num_shards) {
  const std::size_t requested = num_shards;
  num_shards = clamp_shards(spec, num_shards);
  const std::size_t n_sw = spec.num_switches();

  // Node weight: the switch itself plus every host that will follow it
  // (hosts co-locate with the first switch they attach to), so "balanced"
  // means balanced simulation load, not just balanced switch counts.
  std::vector<std::size_t> weight(n_sw, 1);
  std::vector<bool> host_seen(spec.num_hosts(), false);
  // conn[i][j]: number of switch-switch links joining i and j. Host links
  // never cross shards under the first-switch rule, so they do not enter
  // the cut objective.
  std::vector<std::size_t> conn(n_sw * n_sw, 0);
  std::size_t total_weight = 0;
  for (std::size_t l = 0; l < spec.num_links(); ++l) {
    const auto& ls = spec.link_spec(l);
    if (ls.host_side) {
      if (!host_seen[ls.a]) {
        host_seen[ls.a] = true;
        ++weight[ls.b];
      }
    } else if (ls.a != ls.b) {
      ++conn[ls.a * n_sw + ls.b];
      ++conn[ls.b * n_sw + ls.a];
    }
  }
  for (std::size_t i = 0; i < n_sw; ++i) {
    total_weight += weight[i];
  }

  // Greedy graph growing: seed each shard with the lowest-index unassigned
  // switch, then repeatedly absorb the unassigned switch with the highest
  // connectivity into the shard (ties: lowest index) until the shard's
  // weight reaches its proportional target. The last shard takes whatever
  // remains, so every switch is assigned exactly once.
  std::vector<std::size_t> assign(n_sw, ShardPlan::npos);
  std::vector<std::size_t> attach(n_sw, 0);  // links into the growing shard
  std::size_t assigned = 0;
  std::size_t weight_left = total_weight;
  for (std::size_t s = 0; s < num_shards && assigned < n_sw; ++s) {
    const std::size_t shards_left = num_shards - s;
    // Ceiling split of the remaining weight keeps the tail shards nonempty.
    const std::size_t target = (weight_left + shards_left - 1) / shards_left;
    std::size_t shard_weight = 0;
    std::fill(attach.begin(), attach.end(), 0);
    // Grow while under target (the last shard absorbs the remainder), but
    // always leave one unassigned switch per not-yet-seeded shard so a
    // heavy region cannot starve the tail shards empty.
    while (assigned < n_sw &&
           (shard_weight == 0 ||
            (n_sw - assigned > num_shards - s - 1 &&
             (shard_weight < target || s + 1 == num_shards)))) {
      std::size_t best = ShardPlan::npos;
      for (std::size_t i = 0; i < n_sw; ++i) {
        if (assign[i] != ShardPlan::npos) {
          continue;
        }
        if (best == ShardPlan::npos || attach[i] > attach[best]) {
          best = i;  // seed: lowest index; growth: most-connected, then
                     // lowest index (strict > keeps the tie deterministic)
        }
      }
      assign[best] = s;
      shard_weight += weight[best];
      ++assigned;
      for (std::size_t j = 0; j < n_sw; ++j) {
        attach[j] += conn[best * n_sw + j];
      }
    }
    weight_left -= shard_weight;
  }

  ShardPlan plan = plan_shards(spec, num_shards, std::move(assign));
  plan.requested_shards = requested;
  return plan;
}

ShardPlan plan_shards_contiguous(const Spec& spec, std::size_t num_shards) {
  const std::size_t requested = num_shards;
  num_shards = clamp_shards(spec, num_shards);
  std::vector<std::size_t> switch_shard(spec.num_switches(), 0);
  for (std::size_t i = 0; i < spec.num_switches(); ++i) {
    switch_shard[i] = i * num_shards / spec.num_switches();
  }
  ShardPlan plan = plan_shards(spec, num_shards, std::move(switch_shard));
  plan.requested_shards = requested;
  return plan;
}

}  // namespace edp::topo
