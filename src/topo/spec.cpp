#include "topo/spec.hpp"

#include <cassert>

namespace edp::topo {

std::size_t Spec::connect_host(std::size_t h, std::size_t s,
                               std::uint16_t port, Link::Config link) {
  assert(h < hosts_.size() && s < switches_.size());
  links_.push_back(LinkSpec{/*host_side=*/true, h, 0, s, port, link});
  return links_.size() - 1;
}

std::size_t Spec::connect_switches(std::size_t s1, std::uint16_t p1,
                                   std::size_t s2, std::uint16_t p2,
                                   Link::Config link) {
  assert(s1 < switches_.size() && s2 < switches_.size());
  links_.push_back(LinkSpec{/*host_side=*/false, s1, p1, s2, p2, link});
  return links_.size() - 1;
}

void Spec::instantiate(Network& net) const {
  for (const auto& sc : switches_) {
    net.add_switch(sc);
  }
  for (const auto& hc : hosts_) {
    net.add_host(hc);
  }
  for (const auto& l : links_) {
    if (l.host_side) {
      net.connect_host(l.a, l.b, l.pb, l.config);
    } else {
      net.connect_switches(l.a, l.pa, l.b, l.pb, l.config);
    }
  }
}

ShardPlan plan_shards(const Spec& spec, std::size_t num_shards,
                      std::vector<std::size_t> switch_shard,
                      std::vector<std::size_t> host_shard) {
  assert(num_shards >= 1);
  assert(switch_shard.size() == spec.num_switches());

  ShardPlan plan;
  plan.num_shards = num_shards;
  plan.switch_shard = std::move(switch_shard);
  plan.host_shard = std::move(host_shard);
  plan.host_shard.resize(spec.num_hosts(), ShardPlan::npos);

  for (std::size_t s : plan.switch_shard) {
    assert(s < num_shards);
    (void)s;
  }

  // Hosts without an explicit shard follow the first switch they attach to.
  for (std::size_t l = 0; l < spec.num_links(); ++l) {
    const auto& ls = spec.link_spec(l);
    if (ls.host_side && plan.host_shard[ls.a] == ShardPlan::npos) {
      plan.host_shard[ls.a] = plan.switch_shard[ls.b];
    }
  }
  // Unattached hosts: deterministic round-robin.
  for (std::size_t h = 0; h < plan.host_shard.size(); ++h) {
    if (plan.host_shard[h] == ShardPlan::npos) {
      plan.host_shard[h] = h % num_shards;
    }
    assert(plan.host_shard[h] < num_shards);
  }

  for (std::size_t l = 0; l < spec.num_links(); ++l) {
    const auto& ls = spec.link_spec(l);
    const std::size_t sa =
        ls.host_side ? plan.host_shard[ls.a] : plan.switch_shard[ls.a];
    const std::size_t sb = plan.switch_shard[ls.b];
    if (sa == sb) {
      continue;
    }
    // The conservative window rule requires every cross-shard hop to carry
    // at least one lookahead of delay; a zero-delay cut link would force a
    // zero-length window (no parallelism, livelock).
    assert(ls.config.delay > sim::Time::zero() &&
           "cut links must have positive delay");
    plan.cut_links.push_back(l);
    if (!plan.lookahead || ls.config.delay < *plan.lookahead) {
      plan.lookahead = ls.config.delay;
    }
  }
  return plan;
}

ShardPlan plan_shards(const Spec& spec, std::size_t num_shards) {
  std::vector<std::size_t> switch_shard(spec.num_switches(), 0);
  if (spec.num_switches() > 0) {
    for (std::size_t i = 0; i < spec.num_switches(); ++i) {
      switch_shard[i] = i * num_shards / spec.num_switches();
    }
  }
  return plan_shards(spec, num_shards, std::move(switch_shard));
}

}  // namespace edp::topo
