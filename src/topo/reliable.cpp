#include "topo/reliable.hpp"

#include <cassert>

#include "net/flow.hpp"

namespace edp::topo {
namespace {

constexpr std::uint8_t kData = 1;
constexpr std::uint8_t kAck = 2;
constexpr std::size_t kHeaders = net::EthernetHeader::kSize +
                                 net::Ipv4Header::kSize +
                                 net::UdpHeader::kSize;

net::Packet make_segment(const ReliableConfig& c, std::uint8_t type,
                         std::uint64_t seq) {
  const std::size_t size =
      type == kData ? c.segment_size : kHeaders + 9;  // ACKs are small
  net::Packet p = net::make_udp_packet(
      type == kData ? c.local : c.peer,
      type == kData ? c.peer : c.local,
      /*src_port=*/type == kData ? c.ack_port : c.data_port,
      /*dst_port=*/type == kData ? c.data_port : c.ack_port, size);
  p.set_u8(kHeaders, type);
  p.set_u64(kHeaders + 1, seq);
  return p;
}

/// Returns (type, seq) if `p` is a protocol packet for `dst_port`.
bool decode(const net::Packet& p, std::uint16_t dst_port,
            std::uint8_t& type, std::uint64_t& seq) {
  if (p.size() < kHeaders + 9) {
    return false;
  }
  const net::FiveTuple t = net::extract_five_tuple(p);
  if (t.protocol != net::kIpProtoUdp || t.dst_port != dst_port) {
    return false;
  }
  type = p.u8(kHeaders);
  seq = p.u64(kHeaders + 1);
  return true;
}

}  // namespace

// ---- sender -------------------------------------------------------------------

ReliableSender::ReliableSender(sim::Scheduler& sched, Host& host,
                               ReliableConfig config)
    : sched_(sched), host_(host), config_(config) {
  assert(config_.segment_size >= kHeaders + 9);
  assert(config_.window > 0);
}

void ReliableSender::start() { pump(); }

void ReliableSender::pump() {
  while (next_seq_ < base_ + config_.window &&
         next_seq_ < config_.total_segments) {
    send_segment(next_seq_);
    ++next_seq_;
  }
  arm_timer();
}

void ReliableSender::send_segment(std::uint64_t seq) {
  ++sent_;
  host_.send(make_segment(config_, kData, seq));
}

void ReliableSender::arm_timer() {
  if (base_ >= config_.total_segments) {
    if (timer_armed_) {
      sched_.cancel(timer_);
      timer_armed_ = false;
    }
    return;
  }
  if (timer_armed_) {
    sched_.cancel(timer_);
  }
  timer_ = sched_.after(config_.rto, [this] { on_timeout(); });
  timer_armed_ = true;
}

void ReliableSender::on_timeout() {
  timer_armed_ = false;
  if (done()) {
    return;
  }
  // Go-back-N: retransmit the whole outstanding window.
  for (std::uint64_t seq = base_; seq < next_seq_; ++seq) {
    ++retx_;
    host_.send(make_segment(config_, kData, seq));
  }
  arm_timer();
}

bool ReliableSender::handle(const net::Packet& packet) {
  std::uint8_t type = 0;
  std::uint64_t seq = 0;
  if (!decode(packet, config_.ack_port, type, seq) || type != kAck) {
    return false;
  }
  if (seq > base_) {
    base_ = seq;  // cumulative ACK slides the window
    if (done()) {
      completed_at_ = sched_.now();
      arm_timer();  // cancels
    } else {
      pump();  // new window space + fresh RTO
    }
  }
  return true;
}

// ---- receiver -----------------------------------------------------------------

ReliableReceiver::ReliableReceiver(Host& host, ReliableConfig config)
    : host_(host), config_(config) {}

bool ReliableReceiver::handle(const net::Packet& packet) {
  std::uint8_t type = 0;
  std::uint64_t seq = 0;
  if (!decode(packet, config_.data_port, type, seq) || type != kData) {
    return false;
  }
  if (seq == expected_) {
    ++expected_;  // in-order delivery
  } else if (seq < expected_) {
    ++dups_;  // retransmission of something already delivered
  } else {
    ++out_of_order_;  // gap: go-back-N receiver discards
  }
  send_ack();
  return true;
}

void ReliableReceiver::send_ack() {
  host_.send(make_segment(config_, kAck, expected_));
}

}  // namespace edp::topo
