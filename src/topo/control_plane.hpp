// edp::topo — the control plane, as a latency-bound agent.
//
// The paper's comparisons hinge on where work happens: the data plane
// reacts within pipeline cycles, the control plane only after a software
// round trip (PCIe + driver + process scheduling). `ControlPlaneAgent`
// models that boundary: every message in either direction pays the channel
// latency, and every message is counted — the CP message load is exactly
// the overhead the paper says event-driven architectures remove (CMS
// resets, probe generation, failure handling).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/event_switch.hpp"
#include "sim/scheduler.hpp"

namespace edp::topo {

class ControlPlaneAgent {
 public:
  struct Config {
    /// One-way data-plane <-> control-plane latency (per message).
    sim::Time channel_latency = sim::Time::micros(500);
    /// Software processing time per message before a response can leave.
    sim::Time processing_time = sim::Time::micros(50);
  };

  ControlPlaneAgent(sim::Scheduler& sched, Config config)
      : sched_(sched), config_(config) {}

  /// Attach to a switch's punt path. `handler` runs *at the control plane*
  /// (after channel latency + processing time).
  void attach(core::EventSwitch& sw,
              std::function<void(const core::ControlEventData&)> handler);

  /// CP -> switch control event (arrives after the channel latency).
  void send_control_event(core::EventSwitch& sw,
                          core::ControlEventData data);

  /// CP -> switch packet-out (arrives after the channel latency). This is
  /// how a baseline architecture emulates packet generation (§6).
  void inject_packet(core::EventSwitch& sw, net::Packet packet);

  /// Run `fn` at the CP every `period` (e.g. periodic CMS reset, probe
  /// generation). Returns the task handle (caller keeps it alive).
  std::unique_ptr<sim::PeriodicTask> every(sim::Time period,
                                           std::function<void()> fn);

  // ---- load accounting --------------------------------------------------------
  std::uint64_t messages_from_switch() const { return from_switch_; }
  std::uint64_t messages_to_switch() const { return to_switch_; }
  std::uint64_t packets_injected() const { return injected_; }
  const Config& config() const { return config_; }

 private:
  sim::Scheduler& sched_;
  Config config_;
  std::uint64_t from_switch_ = 0;
  std::uint64_t to_switch_ = 0;
  std::uint64_t injected_ = 0;
};

}  // namespace edp::topo
