// edp::topo — end hosts.
//
// A host is a NIC with an address, a transmit pacing loop (so traffic
// generators can exceed the NIC rate without teleporting bytes), and a
// receive hook for applications (sinks, KV servers, monitors). Receive
// statistics are kept per UDP destination port, which is how the
// experiments separate concurrent flows and protocols.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "net/headers.hpp"
#include "net/packet.hpp"
#include "sim/ring_queue.hpp"
#include "sim/scheduler.hpp"

namespace edp::topo {

class Host {
 public:
  struct Config {
    std::string name = "h0";
    net::MacAddress mac;
    net::Ipv4Address ip;
    double nic_rate_bps = 10e9;
  };

  Host(sim::Scheduler& sched, Config config);

  const std::string& name() const { return config_.name; }
  net::MacAddress mac() const { return config_.mac; }
  net::Ipv4Address ip() const { return config_.ip; }

  /// Wire the NIC to a link direction (set by Network::connect).
  void connect_tx(std::function<void(net::Packet)> tx) {
    tx_ = std::move(tx);
  }

  /// Queue a packet for transmission (paced at the NIC rate).
  void send(net::Packet packet);

  /// Entry point for packets arriving from the link.
  void receive(net::Packet packet);

  /// Application receive hook (runs after statistics are recorded).
  std::function<void(const net::Packet&)> on_receive;

  // ---- statistics -----------------------------------------------------------
  std::uint64_t tx_packets() const { return tx_packets_; }
  std::uint64_t rx_packets() const { return rx_packets_; }
  std::uint64_t rx_bytes() const { return rx_bytes_; }
  /// Packets received with the given UDP destination port.
  std::uint64_t rx_on_port(std::uint16_t udp_dst) const;
  std::size_t tx_backlog() const { return tx_queue_.size(); }

 private:
  void pump_tx();

  sim::Scheduler& sched_;
  Config config_;
  std::function<void(net::Packet)> tx_;
  sim::RingQueue<net::Packet> tx_queue_;
  bool tx_busy_ = false;

  std::uint64_t tx_packets_ = 0;
  std::uint64_t rx_packets_ = 0;
  std::uint64_t rx_bytes_ = 0;
  std::unordered_map<std::uint16_t, std::uint64_t> rx_by_port_;
};

}  // namespace edp::topo
