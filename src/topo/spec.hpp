// edp::topo — declarative topology specification and shard planning.
//
// A `Spec` describes a topology (switches, hosts, links) without binding it
// to a scheduler. The same spec can be instantiated two ways:
//
//   * `instantiate(Network&)` — the whole topology into one Network on one
//     sim::Scheduler (the sequential reference; indices match the spec 1:1);
//   * shard-aware build via `runtime::ParallelRuntime`, which instantiates
//     each shard's nodes into a per-shard Network and replaces every *cut
//     link* (a link whose endpoints land in different shards) with a pair of
//     lock-free cross-shard ring endpoints.
//
// `plan_shards` computes the partition: node -> shard assignment, the set of
// cut links, and the *lookahead* — the minimum propagation delay over cut
// links. The lookahead is the conservative synchronization window of the
// parallel runtime: a packet crossing shards can never arrive sooner than
// one lookahead after it was sent, so shards may run a full window
// independently before exchanging deliveries.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "core/event_switch.hpp"
#include "topo/host.hpp"
#include "topo/link.hpp"
#include "topo/network.hpp"

namespace edp::topo {

/// Declarative topology description, mirroring the Network build API.
class Spec {
 public:
  struct LinkSpec {
    /// true: endpoint A is hosts[a]; false: endpoint A is switches[a], port pa.
    bool host_side = false;
    std::size_t a = 0;
    std::uint16_t pa = 0;
    std::size_t b = 0;  ///< always a switch index
    std::uint16_t pb = 0;
    Link::Config config;
  };

  std::size_t add_switch(core::EventSwitchConfig config) {
    switches_.push_back(std::move(config));
    return switches_.size() - 1;
  }

  std::size_t add_host(Host::Config config) {
    hosts_.push_back(std::move(config));
    return hosts_.size() - 1;
  }

  /// Connect host `h` to switch `s` port `port`; returns the link index.
  std::size_t connect_host(std::size_t h, std::size_t s, std::uint16_t port,
                           Link::Config link = {});

  /// Connect switch `s1` port `p1` to switch `s2` port `p2`.
  std::size_t connect_switches(std::size_t s1, std::uint16_t p1,
                               std::size_t s2, std::uint16_t p2,
                               Link::Config link = {});

  std::size_t num_switches() const { return switches_.size(); }
  std::size_t num_hosts() const { return hosts_.size(); }
  std::size_t num_links() const { return links_.size(); }

  const core::EventSwitchConfig& switch_config(std::size_t i) const {
    return switches_[i];
  }
  const Host::Config& host_config(std::size_t i) const { return hosts_[i]; }
  const LinkSpec& link_spec(std::size_t i) const { return links_[i]; }

  /// Build the full topology into `net` (sequential reference path). The
  /// returned Network indices equal the spec indices.
  void instantiate(Network& net) const;

 private:
  std::vector<core::EventSwitchConfig> switches_;
  std::vector<Host::Config> hosts_;
  std::vector<LinkSpec> links_;
};

/// A partition of a Spec into shards, plus the derived synchronization data.
struct ShardPlan {
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();
  /// pair_lookahead_ps sentinel: no cut link joins the directed pair.
  static constexpr std::int64_t kNoChannel =
      std::numeric_limits<std::int64_t>::max();

  std::size_t num_shards = 1;
  std::vector<std::size_t> switch_shard;  ///< spec switch index -> shard
  std::vector<std::size_t> host_shard;    ///< spec host index -> shard
  std::vector<std::size_t> cut_links;     ///< spec link indices crossing shards
  /// Minimum delay over cut links; nullopt when there are no cut links
  /// (shards are fully independent and can run any window length).
  std::optional<sim::Time> lookahead;
  /// Directed per-pair lookahead matrix, `[src * num_shards + dst]` in
  /// picoseconds: the minimum delay over cut links carrying traffic from
  /// shard `src` into shard `dst`, or kNoChannel when no such link exists.
  /// This is the edge weight of the shard constraint graph the runtime's
  /// adaptive windows are computed on — a message from `src` sent at local
  /// time t cannot take effect in `dst` before t + pair_lookahead(src, dst).
  std::vector<std::int64_t> pair_lookahead_ps;
  /// cut_links.size() / num_links (0 when the spec has no links). Reported
  /// so partition quality is auditable in benches and BENCH_runtime.json.
  double cut_fraction = 0.0;
  /// What the caller asked for before degenerate-split clamping. The auto
  /// planner clamps num_shards to the switch count so no shard is empty
  /// (an empty shard still costs a barrier participant every window);
  /// num_shards < requested_shards means the clamp fired.
  std::size_t requested_shards = 0;
  /// Shards owning neither a switch nor a host (possible only with an
  /// explicit assignment; the auto planner always yields 0).
  std::size_t empty_shards = 0;

  bool is_cut(std::size_t link) const {
    for (std::size_t c : cut_links) {
      if (c == link) {
        return true;
      }
    }
    return false;
  }

  /// Directed lookahead from shard `src` into shard `dst`; nullopt when no
  /// cut link joins the pair in that direction.
  std::optional<sim::Time> pair_lookahead(std::size_t src,
                                          std::size_t dst) const {
    const std::int64_t ps = pair_lookahead_ps[src * num_shards + dst];
    if (ps == kNoChannel) {
      return std::nullopt;
    }
    return sim::Time::picos(ps);
  }
};

/// Compute the cut-link set and lookahead for an explicit node->shard
/// assignment (`switch_shard` must cover every switch; hosts with
/// `host_shard[i] == ShardPlan::npos` or a short/empty `host_shard` are
/// placed in the shard of the first switch they connect to, falling back to
/// round-robin for unattached hosts). Every cut link must have a positive
/// delay — zero-delay links cannot cross shards (no lookahead) — enforced
/// with an assert.
ShardPlan plan_shards(const Spec& spec, std::size_t num_shards,
                      std::vector<std::size_t> switch_shard,
                      std::vector<std::size_t> host_shard = {});

/// Default partition: topology-aware greedy graph growing. Each shard is
/// seeded with the lowest-index unassigned switch and grown by repeatedly
/// absorbing the unassigned switch with the most links into the shard
/// (ties broken by lowest index), until the shard reaches its share of the
/// total node weight (switches + attached hosts). This keeps connected
/// regions together, so far fewer links are cut than under a blind index
/// split — cut traffic and the cut fraction reported in the plan drop
/// accordingly. Deterministic: a (spec, num_shards) pair always yields the
/// same plan. `num_shards` is clamped to the switch count (empty shards
/// would barrier every window for nothing); the clamp is visible as
/// requested_shards > num_shards.
ShardPlan plan_shards(const Spec& spec, std::size_t num_shards);

/// The pre-adaptive-planner default: contiguous blocks of switches (switch
/// i goes to shard i * num_shards / num_switches), hosts co-located with
/// their first switch. Kept for fixed-plan determinism baselines and
/// planner A/B comparisons; also clamps num_shards to the switch count.
ShardPlan plan_shards_contiguous(const Spec& spec, std::size_t num_shards);

}  // namespace edp::topo
