#include "topo/routing.hpp"

#include "net/flow.hpp"

namespace edp::topo {

L3Program::L3Program(std::size_t route_capacity)
    : routes_("ipv4_lpm",
              {pisa::MatchField{pisa::MatchKind::kLpm, 32, "ipv4.dst"}},
              route_capacity) {
  routes_.set_default_action(
      "drop", [](pisa::Phv& phv, const pisa::ActionData&) {
        phv.std_meta.drop = true;
      });
}

void L3Program::add_route(net::Ipv4Address prefix, int prefix_len,
                          std::uint16_t port) {
  pisa::TableEntry e;
  e.key = {pisa::KeyField{prefix.value(), prefix_len, ~0ULL}};
  e.action_name = "set_egress";
  e.data.args = {port};
  e.action = [](pisa::Phv& phv, const pisa::ActionData& d) {
    phv.std_meta.egress_port = static_cast<std::uint16_t>(d.arg(0));
  };
  routes_.insert(std::move(e));
}

bool L3Program::route(pisa::Phv& phv) {
  if (!phv.ipv4) {
    phv.std_meta.drop = true;
    return false;
  }
  // Stack key + span apply: the per-packet lookup builds no vector.
  const std::uint64_t key[1] = {phv.ipv4->dst.value()};
  return routes_.apply(phv, std::span<const std::uint64_t>(key));
}

void L3Program::on_ingress(pisa::Phv& phv, core::EventContext&) {
  route(phv);
}

std::uint16_t ecmp_pick(const pisa::Phv& phv, std::uint16_t n) {
  if (n == 0) {
    return 0;
  }
  net::FiveTuple t;
  if (phv.ipv4) {
    t.src = phv.ipv4->src;
    t.dst = phv.ipv4->dst;
    t.protocol = phv.ipv4->protocol;
  }
  if (phv.udp) {
    t.src_port = phv.udp->src_port;
    t.dst_port = phv.udp->dst_port;
  } else if (phv.tcp) {
    t.src_port = phv.tcp->src_port;
    t.dst_port = phv.tcp->dst_port;
  }
  return static_cast<std::uint16_t>(net::flow_id_five_tuple(t) % n);
}

}  // namespace edp::topo
