#include "topo/traffic_gen.hpp"

#include <cassert>
#include <cstdio>
#include <string>

namespace edp::topo {
namespace {

net::Packet make_packet(const FlowSpec& f) {
  return net::make_udp_packet(f.src, f.dst, f.src_port, f.dst_port,
                              f.packet_size);
}

}  // namespace

// ---- CBR --------------------------------------------------------------------

CbrGenerator::CbrGenerator(sim::Scheduler& sched, Host& host, Config config)
    : sched_(sched), host_(host), config_(config) {
  assert(config_.rate_bps > 0);
  interval_ = sim::serialization_time(config_.flow.packet_size,
                                      config_.rate_bps);
  assert(interval_ > sim::Time::zero());
}

void CbrGenerator::start() {
  sched_.at(config_.start, [this] { emit(); });
}

void CbrGenerator::emit() {
  if (sched_.now() >= config_.stop) {
    return;
  }
  host_.send(make_packet(config_.flow));
  ++sent_;
  sched_.after(interval_, [this] { emit(); });
}

// ---- Poisson ------------------------------------------------------------------

PoissonGenerator::PoissonGenerator(sim::Scheduler& sched, Host& host,
                                   Config config)
    : sched_(sched), host_(host), config_(config), rng_(config.seed) {
  assert(config_.mean_rate_bps > 0);
  mean_interval_ = sim::serialization_time(config_.flow.packet_size,
                                           config_.mean_rate_bps);
}

void PoissonGenerator::start() {
  sched_.at(config_.start, [this] { emit(); });
}

void PoissonGenerator::emit() {
  if (sched_.now() >= config_.stop) {
    return;
  }
  host_.send(make_packet(config_.flow));
  ++sent_;
  const double gap_s = rng_.exponential(mean_interval_.as_seconds());
  sched_.after(std::max(sim::Time::picos(1), sim::Time::from_seconds(gap_s)),
               [this] { emit(); });
}

// ---- Bursts -------------------------------------------------------------------

BurstGenerator::BurstGenerator(sim::Scheduler& sched, Host& host,
                               Config config)
    : sched_(sched), host_(host), config_(config), rng_(config.seed) {
  assert(config_.burst_rate_bps > 0 && config_.burst_packets > 0);
}

void BurstGenerator::start() {
  sched_.at(config_.start, [this] { start_burst(); });
}

void BurstGenerator::start_burst() {
  if (sched_.now() >= config_.stop) {
    return;
  }
  ++bursts_;
  emit(config_.burst_packets);
}

void BurstGenerator::emit(std::size_t remaining) {
  if (remaining == 0 || sched_.now() >= config_.stop) {
    // Burst over: idle gap, then the next burst.
    sim::Time gap = config_.gap;
    if (config_.jitter_gap) {
      const double factor = 0.5 + rng_.uniform01();  // 0.5x .. 1.5x
      gap = sim::Time::from_seconds(gap.as_seconds() * factor);
    }
    sched_.after(gap, [this] { start_burst(); });
    return;
  }
  host_.send(make_packet(config_.flow));
  ++sent_;
  const sim::Time spacing = sim::serialization_time(
      config_.flow.packet_size, config_.burst_rate_bps);
  sched_.after(spacing, [this, remaining] { emit(remaining - 1); });
}

// ---- trace replay ----------------------------------------------------------------

TraceReplayGenerator::TraceReplayGenerator(sim::Scheduler& sched, Host& host,
                                           std::vector<TraceEntry> trace)
    : sched_(sched), host_(host), trace_(std::move(trace)) {}

std::vector<TraceEntry> TraceReplayGenerator::parse_csv(
    const std::string& text, std::size_t* parse_errors) {
  std::vector<TraceEntry> out;
  std::size_t errors = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    double time_us = 0;
    char src[32] = {0};
    char dst[32] = {0};
    unsigned sport = 0, dport = 0, size = 0;
    const int n = std::sscanf(line.c_str(), "%lf,%31[^,],%31[^,],%u,%u,%u",
                              &time_us, src, dst, &sport, &dport, &size);
    // Addresses are validated explicitly (Ipv4Address::parse is assert-
    // based and asserts are off in release builds).
    const auto valid_ip = [](const char* s, std::uint32_t& v) {
      unsigned a, b, c, d;
      char tail;
      if (std::sscanf(s, "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4 ||
          a > 255 || b > 255 || c > 255 || d > 255) {
        return false;
      }
      v = (a << 24) | (b << 16) | (c << 8) | d;
      return true;
    };
    std::uint32_t src_v = 0, dst_v = 0;
    if (n != 6 || sport > 65535 || dport > 65535 || size == 0 ||
        size > 65535 || time_us < 0 || !valid_ip(src, src_v) ||
        !valid_ip(dst, dst_v)) {
      ++errors;
      continue;
    }
    TraceEntry e;
    e.at = sim::Time::from_seconds(time_us * 1e-6);
    e.flow.src = net::Ipv4Address(src_v);
    e.flow.dst = net::Ipv4Address(dst_v);
    e.flow.src_port = static_cast<std::uint16_t>(sport);
    e.flow.dst_port = static_cast<std::uint16_t>(dport);
    e.flow.packet_size = size;
    out.push_back(e);
  }
  if (parse_errors != nullptr) {
    *parse_errors = errors;
  }
  return out;
}

void TraceReplayGenerator::start() {
  for (const TraceEntry& e : trace_) {
    sched_.at(e.at, [this, &e] {
      host_.send(make_packet(e.flow));
      ++sent_;
    });
  }
}

// ---- Zipf ---------------------------------------------------------------------

ZipfGenerator::ZipfGenerator(sim::Scheduler& sched, Host& host, Config config)
    : sched_(sched),
      host_(host),
      config_(config),
      rng_(config.seed),
      zipf_(config.num_flows, config.skew),
      counts_(config.num_flows, 0) {
  assert(config_.rate_bps > 0);
  interval_ =
      sim::serialization_time(config_.packet_size, config_.rate_bps);
}

net::Ipv4Address ZipfGenerator::flow_src(std::size_t i) {
  // 10.x.y.z derived from the flow index; distinct per flow.
  return net::Ipv4Address(0x0a000000U + static_cast<std::uint32_t>(i) + 1);
}

void ZipfGenerator::start() {
  sched_.at(config_.start, [this] { emit(); });
}

void ZipfGenerator::emit() {
  if (sched_.now() >= config_.stop) {
    return;
  }
  const std::size_t flow = zipf_.sample(rng_);
  ++counts_[flow];
  FlowSpec f;
  f.src = flow_src(flow);
  f.dst = config_.dst;
  f.src_port = static_cast<std::uint16_t>(10000 + flow % 50000);
  f.dst_port = config_.dst_port;
  f.packet_size = config_.packet_size;
  host_.send(make_packet(f));
  ++sent_;
  sched_.after(interval_, [this] { emit(); });
}

}  // namespace edp::topo
