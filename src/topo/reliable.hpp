// edp::topo — a reliable delivery protocol at the end hosts (paper §8).
//
// "If one looks at the protocols running in end-host software ... the
// state machine for a simple reliable delivery protocol is driven by
// packet arrivals, packet departures, and timeout events."
//
// A go-back-N sender and cumulative-ACK receiver over UDP, driven by
// exactly those three event types on the simulation kernel. Used by the
// integration tests to close the loop end-to-end: data-plane AQM drops
// packets, the host protocol recovers, goodput is still exact.
//
// Wire format (UDP payload): type:u8 (1=DATA, 2=ACK) | seq:u64. DATA
// segments are padded to the configured segment size; ACK carries the
// next expected sequence number (cumulative).
#pragma once

#include <cstdint>

#include "net/packet_builder.hpp"
#include "sim/scheduler.hpp"
#include "topo/host.hpp"

namespace edp::topo {

/// Shared by both endpoints, written from the SENDER's perspective
/// (`local` = sender, `peer` = receiver); pass the identical struct to the
/// ReliableReceiver.
struct ReliableConfig {
  net::Ipv4Address local;
  net::Ipv4Address peer;
  std::uint16_t data_port = 7001;  ///< UDP dst port of DATA segments
  std::uint16_t ack_port = 7002;   ///< UDP dst port of ACKs
  std::size_t segment_size = 1000; ///< total wire bytes per DATA segment
  std::size_t window = 16;         ///< go-back-N window (segments)
  sim::Time rto = sim::Time::millis(2);
  std::uint64_t total_segments = 1000;
};

/// Go-back-N sender. Call `handle(packet)` from the host's receive hook so
/// ACKs reach the state machine; `start()` begins transmission.
class ReliableSender {
 public:
  ReliableSender(sim::Scheduler& sched, Host& host, ReliableConfig config);

  void start();

  /// Feed a received packet (filters for its own ACKs; returns true if
  /// consumed).
  bool handle(const net::Packet& packet);

  bool done() const { return base_ >= config_.total_segments; }
  sim::Time completed_at() const { return completed_at_; }
  std::uint64_t segments_sent() const { return sent_; }
  std::uint64_t retransmissions() const { return retx_; }
  std::uint64_t acked() const { return base_; }

 private:
  void pump();                 ///< send while the window allows
  void send_segment(std::uint64_t seq);
  void arm_timer();
  void on_timeout();

  sim::Scheduler& sched_;
  Host& host_;
  ReliableConfig config_;
  std::uint64_t base_ = 0;       ///< oldest unacked
  std::uint64_t next_seq_ = 0;   ///< next never-sent
  std::uint64_t sent_ = 0;
  std::uint64_t retx_ = 0;
  sim::EventId timer_ = 0;
  bool timer_armed_ = false;
  sim::Time completed_at_ = sim::Time::zero();
};

/// Cumulative-ACK receiver: delivers in order, ACKs every DATA arrival.
class ReliableReceiver {
 public:
  ReliableReceiver(Host& host, ReliableConfig config);

  /// Feed a received packet (filters for DATA; returns true if consumed).
  bool handle(const net::Packet& packet);

  std::uint64_t delivered() const { return expected_; }
  std::uint64_t duplicates() const { return dups_; }
  std::uint64_t out_of_order() const { return out_of_order_; }

 private:
  void send_ack();

  Host& host_;
  ReliableConfig config_;
  std::uint64_t expected_ = 0;  ///< next in-order sequence wanted
  std::uint64_t dups_ = 0;
  std::uint64_t out_of_order_ = 0;
};

}  // namespace edp::topo
