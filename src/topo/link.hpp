// edp::topo — point-to-point links with failure injection.
//
// A link carries packets between two endpoints with a propagation delay.
// Serialization pacing belongs to the *sender* (switch port / host NIC), so
// the link models propagation and up/down state only. Failing a link drops
// packets submitted while down and notifies both endpoints' status
// callbacks — which is what raises LinkStatusChange events in attached
// switches (paper Table 1) and what the FRR / liveness experiments exercise.
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.hpp"
#include "sim/scheduler.hpp"

namespace edp::topo {

class Link {
 public:
  struct Config {
    sim::Time delay = sim::Time::micros(1);  ///< propagation, per direction
    bool up = true;
  };

  /// One attachment point of the link.
  struct End {
    std::function<void(net::Packet)> deliver;  ///< packet to the endpoint
    std::function<void(bool)> status;          ///< link state to the endpoint
  };

  Link(sim::Scheduler& sched, Config config)
      : sched_(sched), config_(config), up_(config.up) {}

  End& end_a() { return a_; }
  End& end_b() { return b_; }

  /// Called by endpoint A's transmitter; delivers to B after the delay.
  void send_a_to_b(net::Packet p) { send(p, /*to_b=*/true); }
  void send_b_to_a(net::Packet p) { send(p, /*to_b=*/false); }

  bool up() const { return up_; }

  /// Change link state now; notifies both ends. In-flight packets (already
  /// propagating) still arrive; packets sent while down are lost.
  void set_up(bool up);

  /// Schedule a failure / recovery.
  void fail_at(sim::Time t) {
    sched_.at(t, [this] { set_up(false); });
  }
  void recover_at(sim::Time t) {
    sched_.at(t, [this] { set_up(true); });
  }

  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped_down() const { return dropped_down_; }
  const Config& config() const { return config_; }

 private:
  void send(net::Packet& p, bool to_b);

  sim::Scheduler& sched_;
  Config config_;
  bool up_;
  End a_;
  End b_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_down_ = 0;
};

}  // namespace edp::topo
