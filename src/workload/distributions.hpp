// edp::workload — flow-size and arrival-time distributions.
//
// The scenario engine synthesizes heavy-tailed data-center traffic from two
// ingredients:
//
//   * `FlowSizeCdf` — an empirical flow-size distribution sampled by
//     inverse-transform over piecewise log-linear knots. The two canonical
//     DC mixes ship built-in: the web-search CDF (DCTCP §2.2: mice-dominated
//     query traffic whose *bytes* are carried by a small elephant tail) and
//     the Hadoop CDF (Facebook-style RPC traffic: most flows under a few KB,
//     tail out to tens of MB).
//   * `ArrivalSampler` — flow inter-arrival processes: Poisson (exponential
//     gaps) and ON/OFF (exponential gaps inside exponentially-long ON
//     periods, separated by exponentially-long OFF silences — the bursty
//     shape microburst detectors exist for).
//
// Everything is driven by the repo's deterministic `sim::Random` streams;
// no wall-clock, no std:: distributions (their streams are not portable
// across standard libraries). Construction may allocate; `sample()` /
// `next_gap()` never do, so they are safe inside the replay hot loop.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace edp::workload {

/// Empirical flow-size CDF: knots of (bytes, cumulative probability),
/// sampled by inverse transform with linear interpolation between knots.
class FlowSizeCdf {
 public:
  struct Knot {
    double bytes = 0;
    double cum = 0;  ///< cumulative probability in (0, 1]
  };

  /// Knots must be strictly increasing in both fields; the last knot must
  /// have cum == 1.0, and the first knot's bytes must be >= `min_bytes`
  /// (the smallest representable flow — the inverse transform interpolates
  /// the first segment down to it). Throws std::invalid_argument otherwise.
  explicit FlowSizeCdf(std::vector<Knot> knots, double min_bytes = 1.0);

  /// Sample a flow size in bytes (>= 1). Allocation-free.
  std::uint64_t sample(sim::Random& rng) const;

  /// Analytic mean of the interpolated distribution, with every sample
  /// capped at `cap_bytes` (0 = uncapped) — what the engine uses to turn a
  /// target offered load into a flow arrival rate.
  double mean_bytes(std::uint64_t cap_bytes = 0) const;

  /// Value at cumulative probability `q` in (0, 1] (e.g. 0.99 = p99).
  double quantile(double q) const;

  const std::vector<Knot>& knots() const { return knots_; }

  /// DCTCP-style web-search mix (Alizadeh et al., SIGCOMM 2010 §2.2).
  static const FlowSizeCdf& web_search();
  /// Facebook-style Hadoop/RPC mix (Roy et al., SIGCOMM 2015).
  static const FlowSizeCdf& hadoop();
  /// Degenerate single-size distribution (calibration runs).
  static FlowSizeCdf fixed(std::uint64_t bytes);

 private:
  std::vector<Knot> knots_;
  double origin_ = 1.0;  ///< smallest representable flow size
};

/// Flow arrival process. Stateful: ON/OFF needs to remember how much of the
/// current ON period remains. One sampler per traffic source.
class ArrivalSampler {
 public:
  enum class Kind : std::uint8_t {
    kPoisson,  ///< exponential inter-arrival gaps
    kOnOff,    ///< Poisson inside ON periods, silent in OFF periods
  };

  struct Config {
    Kind kind = Kind::kPoisson;
    /// Mean flow arrival rate *during active periods* (flows/s, > 0).
    double flows_per_sec = 1e5;
    /// ON/OFF only: mean period lengths (both > 0 for kOnOff).
    sim::Time on_mean = sim::Time::millis(1);
    sim::Time off_mean = sim::Time::millis(4);
  };

  explicit ArrivalSampler(Config config);

  /// Gap from the previous flow arrival to the next one (>= 1 ps).
  /// Allocation-free.
  sim::Time next_gap(sim::Random& rng);

  /// Long-run average arrival rate (flows/s): the configured rate scaled by
  /// the ON duty cycle for kOnOff.
  double effective_rate() const;

  const Config& config() const { return config_; }

 private:
  Config config_;
  sim::Time on_left_ = sim::Time::zero();  ///< remaining ON time (kOnOff)
};

}  // namespace edp::workload
