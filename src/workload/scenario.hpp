// edp::workload — declarative scenario composition.
//
// A `ScenarioSpec` describes one end-to-end traffic storm without binding
// it to a scheduler: the fan-in topology (edge switches feeding one
// device-under-test switch), the background traffic mix (flow-size CDF +
// arrival process + offered load), the storm lanes layered on top (incast
// waves, microburst trains), and a link-flap schedule. `build_topology`
// lowers it onto a `topo::Spec`; the replay engine (replay.hpp) then runs
// it sequentially or through `runtime::ParallelRuntime` at any shard count.
//
// The registry's per-app `analysis::EventRates` annotations are consumed by
// `apply_rates`: the declared average packet size becomes the replay packet
// size, and a declared ingress-rate budget caps the offered load — so a
// control-paced app (liveness, int-aggregator) is driven at its annotated
// rate instead of a line-rate firehose.
//
// Topology shape (E edges, H source hosts each):
//
//     src h(e,0..H-1) ── edge e ──┐
//                                 ├── DUT ── port 1 ── sink host
//     src h(e',*)     ── edge e' ─┘  │
//                                    └ port 0 ── aux host
//
// The DUT (spec switch 0) runs the application under test, built by its
// registry factory; the registry convention routes 10.0.0.0/8 to port 1,
// so background flows fan in from every source to the sink. Edge switches
// run `EdgeProgram`, an L3 router with a structural loop-breaker: a packet
// that arrived from the uplink is never forwarded back up, so no app
// decision (ECMP bouncing, replication to an uplink port) can create a
// forwarding loop. Edge->DUT links are the only cut links under the default
// shard plan; host links stay shard-local, which is why the flap schedule
// targets host links (the parallel runtime cannot fail a cut link).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/hardware_model.hpp"
#include "net/address.hpp"
#include "sim/time.hpp"
#include "topo/routing.hpp"
#include "topo/spec.hpp"
#include "workload/distributions.hpp"

namespace edp::workload {

/// Which built-in flow-size mix the background lane draws from.
enum class SizeMix : std::uint8_t { kWebSearch, kHadoop, kFixed };

std::string_view to_string(SizeMix mix);

/// One scheduled link flap. Targets a *host* link (sink, aux, or a source
/// host), which stays shard-local under every shard plan.
struct LinkFlap {
  enum class Target : std::uint8_t { kSink, kAux, kSource };
  Target target = Target::kSink;
  /// kSource only: index of the source host (edge * hosts_per_edge + h).
  std::size_t source = 0;
  sim::Time down_at = sim::Time::millis(1);
  sim::Time up_at = sim::Time::millis(2);  ///< must be > down_at
};

struct ScenarioSpec {
  std::string name = "storm";
  std::uint64_t seed = 1;

  // ---- topology -------------------------------------------------------------
  std::size_t edges = 4;           ///< edge switches feeding the DUT
  std::size_t hosts_per_edge = 2;  ///< source hosts per edge switch
  double nic_rate_bps = 10e9;      ///< host NICs and switch ports
  sim::Time host_link_delay = sim::Time::nanos(500);
  sim::Time fabric_link_delay = sim::Time::micros(2);  ///< the cut links

  // ---- background traffic ---------------------------------------------------
  SizeMix sizes = SizeMix::kWebSearch;
  std::uint64_t fixed_flow_bytes = 10'000;  ///< kFixed only
  /// Samples above this cap are clipped (0 = uncapped). Keeps the elephant
  /// tail representable while bounding packets/flow for multi-million-flow
  /// replays; the sub-cap shape is untouched.
  std::uint64_t flow_size_cap_bytes = 64 * 1024;
  std::size_t packet_bytes = 1000;  ///< wire bytes per replay packet
  ArrivalSampler::Kind arrivals = ArrivalSampler::Kind::kPoisson;
  sim::Time on_mean = sim::Time::millis(1);   ///< kOnOff
  sim::Time off_mean = sim::Time::millis(4);  ///< kOnOff
  /// Offered background load as a fraction of the sink link rate; the
  /// per-source flow arrival rate is derived from the capped mean flow size.
  double load = 0.4;
  /// Total background flows, split evenly across source hosts (rounded up).
  std::uint64_t flows = 100'000;

  // ---- storm lanes ----------------------------------------------------------
  /// Incast waves: every `incast_period`, each of the first `incast_degree`
  /// sources fires one `incast_flow_bytes` flow at the sink. Sources offset
  /// their waves by (source index) picoseconds — synchronized for every
  /// physical purpose, but free of cross-switch same-picosecond ties, which
  /// the parallel runtime's determinism contract excludes.
  std::size_t incast_degree = 0;
  sim::Time incast_period = sim::Time::millis(2);
  std::uint64_t incast_flow_bytes = 32 * 1024;
  /// Microburst trains: every `burst_period`, each source emits
  /// `burst_packets` back-to-back at NIC rate (same 1 ps de-tie stagger).
  std::size_t burst_packets = 0;
  sim::Time burst_period = sim::Time::millis(1);

  // ---- failures -------------------------------------------------------------
  std::vector<LinkFlap> flaps;

  std::size_t num_sources() const { return edges * hosts_per_edge; }
  std::uint64_t flows_per_source() const {
    return (flows + num_sources() - 1) / num_sources();
  }
  const FlowSizeCdf& size_cdf() const;
  /// Capped mean flow size in bytes under this spec's mix and cap.
  double mean_flow_bytes() const;
  /// Derived per-source background flow arrival rate (flows/s).
  double flows_per_sec_per_source() const;
  /// Expected time for every source to finish its flow budget, with slack
  /// for arrival variance; storm lanes go idle at this point.
  sim::Time active_span() const;
  /// active_span plus a drain tail for in-flight packets — the replay
  /// engine's run horizon.
  sim::Time horizon() const;

  /// One-line reproducer in `edp_scen run` syntax (fuzzer reports, logs).
  std::string repro() const;
};

/// Scale a scenario to an app's declared `analysis::EventRates`: adopt the
/// annotated average packet size, and cap the aggregate background packet
/// rate at a declared ingress budget by lowering `load` (never raising it).
/// Returns the scaled copy; `spec` is untouched.
ScenarioSpec apply_rates(ScenarioSpec spec, const analysis::EventRates& rates);

/// Resolved spec indices of the lowered topology, all deterministic
/// functions of the ScenarioSpec dimensions.
struct TopologyMap {
  std::size_t dut = 0;                 ///< spec switch index of the DUT
  std::vector<std::size_t> edges;      ///< spec switch index per edge
  std::size_t sink_host = 0;
  std::size_t aux_host = 0;
  std::vector<std::size_t> source_hosts;  ///< edge-major order
  std::size_t sink_link = 0;           ///< spec link indices (host links)
  std::size_t aux_link = 0;
  std::vector<std::size_t> source_links;
  net::Ipv4Address sink_ip;
  net::Ipv4Address aux_ip;
  std::vector<net::Ipv4Address> source_ips;
};

/// Lower `spec` onto a topo::Spec. DUT = switch 0 (port 0 aux host, port 1
/// sink host, ports 2.. edges); edge e = switch 1+e (ports 0..H-1 hosts,
/// port H uplink).
TopologyMap build_topology(const ScenarioSpec& spec, topo::Spec& topo);

/// Edge-switch router with the structural loop-breaker: LPM-routes like
/// L3Program, but a packet that arrived on the uplink port and would be
/// forwarded back out of it is dropped instead (counted in uplink_drops).
class EdgeProgram : public topo::L3Program {
 public:
  explicit EdgeProgram(std::uint16_t uplink_port)
      : uplink_port_(uplink_port) {}

  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override;

  std::uint64_t uplink_drops() const { return uplink_drops_; }

 private:
  std::uint16_t uplink_port_;
  std::uint64_t uplink_drops_ = 0;
};

}  // namespace edp::workload
