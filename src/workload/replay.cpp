#include "workload/replay.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "analysis/optimizer.hpp"
#include "apps/fast_reroute.hpp"
#include "apps/microburst.hpp"
#include "core/aggregated_register.hpp"
#include "net/packet.hpp"
#include "runtime/parallel_runtime.hpp"
#include "topo/routing.hpp"

namespace edp::workload {
namespace {

/// Install scenario routes on DUT programs that expose a routing control
/// plane. L3 apps come pre-routed from the registry (10/8 -> port 1, the
/// sink); FRR ships without routes, so the replay provides them: the sink
/// /24 via its primary port, with the aux port as backup — flapping the
/// sink link then exercises the data-plane reroute. Returns true when the
/// program forwards background traffic to the sink.
bool configure_dut_routes(core::EventProgram& program) {
  if (auto* frr = dynamic_cast<apps::FrrProgram*>(&program)) {
    frr->add_route(
        {net::Ipv4Address(10, 0, 0, 0), /*primary=*/1, /*backup=*/0});
    return true;
  }
  return dynamic_cast<topo::L3Program*>(&program) != nullptr;
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t mix_switch(std::uint64_t h, const core::EventSwitch& sw) {
  const auto& c = sw.counters();
  for (std::uint64_t v :
       {c.rx_packets, c.tx_packets, c.tx_bytes, c.parse_drops,
        c.program_drops, c.bad_port_drops, c.recirculated,
        c.recirc_loop_drops, c.generated, c.punts, c.refused_ops}) {
    h = fnv_mix(h, v);
  }
  for (std::uint64_t v : c.observed) {
    h = fnv_mix(h, v);
  }
  return h;
}

std::uint64_t mix_host(std::uint64_t h, const topo::Host& host) {
  h = fnv_mix(h, host.tx_packets());
  h = fnv_mix(h, host.rx_packets());
  h = fnv_mix(h, host.rx_bytes());
  // Lane-separated sink statistics (background / incast / burst ports).
  for (std::uint16_t port : {20000, 20001, 20002}) {
    h = fnv_mix(h, host.rx_on_port(port));
  }
  return h;
}

}  // namespace

bool app_routes_to_sink(const apps::RegisteredProgram& app) {
  const std::unique_ptr<core::EventProgram> probe = app.factory();
  return configure_dut_routes(*probe);
}

const apps::RegisteredProgram* find_program(const std::string& name) {
  for (const auto& p : apps::program_registry()) {
    if (p.name == name) {
      return &p;
    }
  }
  return nullptr;
}

ScenarioOutcome replay(const ScenarioSpec& base_spec,
                       const apps::RegisteredProgram& app,
                       const ReplayOptions& options) {
  const ScenarioSpec spec = options.use_registry_rates
                                ? apply_rates(base_spec, app.rates)
                                : base_spec;
  topo::Spec topo;
  const TopologyMap map = build_topology(spec, topo);
  runtime::ParallelRuntime rt(topo, topo::plan_shards(topo, options.shards));

  // Device under test: a fresh instance from the registry factory, with
  // routes installed exactly as the analyzer sees them (10/8 -> port 1 for
  // L3 apps, i.e. the sink). Under `optimize`, the instance comes from the
  // optimizer's rewritten factory and runs its dispatch plan.
  std::unique_ptr<core::EventProgram> dut_program;
  std::uint64_t transforms_applied = 0;
  std::uint64_t staleness_bound_cycles = 0;
  std::uint64_t value_error_bound = 0;
  if (options.optimize) {
    analysis::AnalyzerOptions aopt;
    aopt.lint = app.lint;
    aopt.model = analysis::find_hardware_model(options.optimize_target);
    aopt.rates = app.rates;
    aopt.widths = app.widths;
    const analysis::OptimizationResult opt =
        analysis::optimize_program(app.name, app.factory, aopt);
    dut_program = opt.optimized_factory();
    rt.sw(map.dut).set_dispatch_plan(opt.plan);
    transforms_applied = opt.transforms.size();
    for (const analysis::StalenessBound& b : opt.staleness) {
      staleness_bound_cycles =
          std::max(staleness_bound_cycles, b.bound_cycles);
      if (b.stable) {
        value_error_bound = std::max(
            value_error_bound,
            static_cast<std::uint64_t>(std::ceil(b.value_error_bound)));
      }
    }
  } else {
    dut_program = app.factory();
  }
  configure_dut_routes(*dut_program);
  rt.sw(map.dut).set_program(dut_program.get());
  // Register any aggregated state for idle-cycle drains (paper §4). Drains
  // mutate only the registers' internal split, never an event observation,
  // so the outcome digest is unaffected.
  dut_program->visit_aggregated([&](core::AggregatedRegister& reg) {
    rt.sw(map.dut).register_aggregated(reg);
  });

  // Edge routers: local hosts via /32 down-routes, everything else up the
  // uplink — with the structural loop-breaker (scenario.hpp).
  const auto uplink = static_cast<std::uint16_t>(spec.hosts_per_edge);
  std::vector<std::unique_ptr<EdgeProgram>> edge_programs;
  for (std::size_t e = 0; e < spec.edges; ++e) {
    auto prog = std::make_unique<EdgeProgram>(uplink);
    prog->add_route(net::Ipv4Address(10, 0, 0, 0), 8, uplink);
    for (std::size_t h = 0; h < spec.hosts_per_edge; ++h) {
      prog->add_route(map.source_ips[e * spec.hosts_per_edge + h], 32,
                      static_cast<std::uint16_t>(h));
    }
    rt.sw(map.edges[e]).set_program(prog.get());
    edge_programs.push_back(std::move(prog));
  }

  // One storm source per source host, on the host's shard scheduler.
  const sim::Time horizon = spec.horizon();
  const sim::Time lanes_stop = spec.active_span();
  std::vector<std::unique_ptr<StormSource>> sources;
  for (std::size_t i = 0; i < map.source_hosts.size(); ++i) {
    StormSource::Config c;
    c.source_index = i;
    c.seed = spec.seed;
    c.src_ip = map.source_ips[i];
    c.dst_ip = map.sink_ip;
    c.packet_bytes = std::max<std::size_t>(spec.packet_bytes, 64);
    c.nic_rate_bps = spec.nic_rate_bps;
    c.flow_budget = spec.flows_per_source();
    c.cdf = &spec.size_cdf();
    c.cap_bytes = spec.flow_size_cap_bytes;
    c.arrivals.kind = spec.arrivals;
    c.arrivals.flows_per_sec = spec.flows_per_sec_per_source();
    c.arrivals.on_mean = spec.on_mean;
    c.arrivals.off_mean = spec.off_mean;
    if (spec.incast_degree > i) {
      c.incast_flow_bytes = spec.incast_flow_bytes;
      c.incast_period = spec.incast_period;
    }
    c.burst_packets = spec.burst_packets;
    c.burst_period = spec.burst_period;
    c.stop = lanes_stop;
    const std::size_t host = map.source_hosts[i];
    sources.push_back(std::make_unique<StormSource>(
        rt.scheduler_of_host(host), rt.host(host), c));
    sources.back()->start();
  }

  // Failure schedule. Host links only: they are shard-local under every
  // plan (the runtime cannot fail a cut link), and flapping the DUT's own
  // host links is what raises LinkStatusChange events at the app.
  for (const LinkFlap& f : spec.flaps) {
    std::size_t link = map.sink_link;
    if (f.target == LinkFlap::Target::kAux) {
      link = map.aux_link;
    } else if (f.target == LinkFlap::Target::kSource) {
      link = map.source_links[f.source % map.source_links.size()];
    }
    assert(f.up_at > f.down_at);
    // Flap events carry the reserved 199 ps clock phase (see
    // build_topology): they can never share a picosecond with any
    // switch's slot grid or any packet chained off one.
    const sim::Time phase = sim::Time::picos(199);
    rt.link(link).fail_at(f.down_at + phase);
    rt.link(link).recover_at(f.up_at + phase);
  }

  // Run to the horizon in chunks. The first chunk is the warmup window:
  // pools, rings and scheduler slots reach their high-water capacity there,
  // so the allocation gauge measures the steady-state replay loop.
  const sim::Time warmup =
      std::min(options.chunk, sim::Time(horizon.ps() / 10));
  const auto wall0 = std::chrono::steady_clock::now();
  // Debug aid (used when chasing determinism regressions): override the
  // chunk size and print a per-chunk digest of the DUT + sink state.
  sim::Time chunk = options.chunk;
  const char* trace_env = std::getenv("EDP_SCEN_TRACE_US");
  if (trace_env != nullptr) {
    chunk = sim::Time::micros(std::strtoll(trace_env, nullptr, 10));
  }
  rt.run_until(std::min(warmup, horizon));
  const std::uint64_t warm_events = rt.total_executed();
  const std::uint64_t warm_allocs = net::packet_buffer_pool_stats().allocated;
  for (sim::Time t = warmup; t < horizon;) {
    t = std::min(horizon, t + chunk);
    rt.run_until(t);
    if (trace_env != nullptr) {
      std::uint64_t th = 1469598103934665603ULL;
      th = mix_switch(th, rt.sw(map.dut));
      std::fprintf(stderr, "trace t=%lldus dut=%016llx sink_rx=%llu\n",
                   static_cast<long long>(t.ps() / 1'000'000),
                   static_cast<unsigned long long>(th),
                   static_cast<unsigned long long>(
                       rt.host(map.sink_host).rx_packets()));
    }
  }
  const auto wall1 = std::chrono::steady_clock::now();

  ScenarioOutcome out;
  out.app = app.name;
  out.scenario = spec.name;
  out.seed = spec.seed;
  out.shards = rt.num_shards();
  out.events = rt.total_executed();
  out.cross_shard_messages = rt.cross_shard_messages();
  out.sim_seconds = horizon.as_seconds();
  out.wall_seconds =
      std::chrono::duration<double>(wall1 - wall0).count();
  const std::uint64_t steady_events = out.events - warm_events;
  out.allocations_per_event =
      steady_events == 0
          ? 0.0
          : static_cast<double>(net::packet_buffer_pool_stats().allocated -
                                warm_allocs) /
                static_cast<double>(steady_events);

  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& src : sources) {
    out.flows_started += src->flows_started();
    out.flows_completed += src->flows_completed();
    out.packets_sent += src->packets_sent();
    out.bytes_sent += src->bytes_sent();
    out.incast_waves += src->incast_waves();
    out.bursts += src->bursts();
    h = fnv_mix(h, src->flows_started());
    h = fnv_mix(h, src->packets_sent());
    h = fnv_mix(h, src->bytes_sent());
  }
  h = mix_switch(h, rt.sw(map.dut));
  for (std::size_t e = 0; e < spec.edges; ++e) {
    h = mix_switch(h, rt.sw(map.edges[e]));
    h = fnv_mix(h, edge_programs[e]->uplink_drops());
    out.edge_uplink_drops += edge_programs[e]->uplink_drops();
  }
  h = mix_host(h, rt.host(map.sink_host));
  h = mix_host(h, rt.host(map.aux_host));
  for (std::size_t host : map.source_hosts) {
    h = mix_host(h, rt.host(host));
  }
  out.digest = h;

  out.optimized = options.optimize;
  out.transforms_applied = transforms_applied;
  out.staleness_bound_cycles = staleness_bound_cycles;
  // Aggregation stats are captured *before* settling: settle() drains every
  // pending delta at once, which would record end-of-run staleness that no
  // hardware drain schedule ever exhibits.
  dut_program->visit_aggregated([&](core::AggregatedRegister& reg) {
    out.agg_staleness_max_cycles =
        std::max(out.agg_staleness_max_cycles, reg.staleness_max());
    out.agg_drained += reg.drained();
    out.agg_backlog_max =
        std::max<std::uint64_t>(out.agg_backlog_max, reg.backlog_max());
    if (options.record_value_error) {
      out.agg_value_error_max = std::max(
          out.agg_value_error_max,
          static_cast<std::uint64_t>(reg.value_error_max()));
    }
  });
  out.value_error_bound = value_error_bound;
  // Settle so the app-state digest compares ground truth (main + pending
  // deltas applied) — order-independent sums, so naive and optimized
  // replays must agree exactly.
  rt.sw(map.dut).settle();
  if (const auto* mb =
          dynamic_cast<apps::MicroburstProgram*>(dut_program.get())) {
    out.detections = mb->detections().size();
    std::uint64_t ah = 1469598103934665603ULL;
    for (std::uint32_t s = 0;
         s < static_cast<std::uint32_t>(mb->config().num_regs); ++s) {
      ah = fnv_mix(ah, static_cast<std::uint64_t>(mb->occupancy(s)));
    }
    out.app_state_digest = ah;
  }

  const auto& dut_counters = rt.sw(map.dut).counters();
  out.dut_tx_packets = dut_counters.tx_packets;
  out.dut_program_drops = dut_counters.program_drops;
  out.dut_punts = dut_counters.punts;
  out.sink_rx_packets = rt.host(map.sink_host).rx_packets();
  return out;
}

}  // namespace edp::workload
