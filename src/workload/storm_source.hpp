// edp::workload — per-host replay sources (the hot path).
//
// One `StormSource` per source host replays that host's share of a
// scenario: background flows (size drawn from the scenario's CDF, arrivals
// from its arrival process), an optional incast lane, and an optional
// microburst lane. Each lane is a self-rescheduling callback on the host's
// shard scheduler — the replay loop proper.
//
// Hot-path discipline (scripts/lint_hotpath.sh covers this file): after
// construction the per-event path allocates nothing. Samplers are
// preallocated, callbacks capture only `this` (inline storage, no heap),
// packets draw pooled payload buffers, and the host TX ring reaches its
// high-water capacity during warmup. Flows are synthesized on the fly from
// the deterministic RNG — there is no per-flow storage, which is what lets
// one scenario replay millions of flows in flat memory.
//
// Determinism: a source's entire schedule is a function of (scenario seed,
// source index) only. Cross-switch same-picosecond ties — the one ordering
// the parallel runtime's determinism contract excludes (docs/RUNTIME.md) —
// are eliminated by the per-switch merger clock phases that
// `build_topology` assigns, not here: every cross-shard event is anchored
// to some switch's slot grid, and distinct sub-cycle phases keep grids
// from ever coinciding. The source-side hygiene in this file (per-source
// sub-ns start phase, whole-ns gaps, 5-byte wire quantum for whole-ns
// serialization) keeps host-side schedules on clean per-source lattices so
// no two sources on the same edge switch ever collide before that
// anchoring applies.
#pragma once

#include <cstdint>

#include "net/packet_builder.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "topo/host.hpp"
#include "workload/distributions.hpp"

namespace edp::workload {

class StormSource {
 public:
  struct Config {
    std::size_t source_index = 0;    ///< global index, used for de-tie offsets
    std::uint64_t seed = 1;          ///< scenario seed (stream forked per source)
    net::Ipv4Address src_ip;
    net::Ipv4Address dst_ip;         ///< the sink
    /// Rounded up to the 5-byte wire quantum (whole-ns serialization).
    std::size_t packet_bytes = 1000;
    double nic_rate_bps = 10e9;      ///< paces packets within a flow

    // Background lane: `flow_budget` flows, sizes from `*cdf` capped at
    // `cap_bytes`, arrivals from `arrivals`.
    std::uint64_t flow_budget = 0;
    const FlowSizeCdf* cdf = nullptr;  ///< non-owning; null = lane disabled
    std::uint64_t cap_bytes = 0;       ///< 0 = uncapped
    ArrivalSampler::Config arrivals;

    // Incast lane: one `incast_flow_bytes` flow every `incast_period`
    // until `stop`.
    std::uint64_t incast_flow_bytes = 0;  ///< 0 = lane disabled
    sim::Time incast_period = sim::Time::millis(2);

    // Microburst lane: `burst_packets` back-to-back every `burst_period`.
    std::size_t burst_packets = 0;  ///< 0 = lane disabled
    sim::Time burst_period = sim::Time::millis(1);

    sim::Time stop = sim::Time::seconds(1);  ///< lanes idle at/after stop
  };

  /// `sched` must be the scheduler owning `host` (its shard scheduler in a
  /// parallel run).
  StormSource(sim::Scheduler& sched, topo::Host& host, Config config);

  void start();

  // ---- statistics -----------------------------------------------------------
  std::uint64_t flows_started() const { return flows_started_; }
  /// Background flows fully emitted (every packet handed to the host).
  std::uint64_t flows_completed() const { return flows_completed_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t incast_waves() const { return incast_waves_; }
  std::uint64_t bursts() const { return bursts_; }
  /// Background lane exhausted its flow budget (all packets emitted).
  bool done() const { return flows_completed_ >= config_.flow_budget; }

 private:
  void next_flow();                ///< background lane: arrival of one flow
  void emit_flow_packet();         ///< background lane: one packet of the flow
  void incast_wave(std::uint64_t wave);
  void emit_incast_packet(std::uint64_t remaining);
  void burst(std::uint64_t n);
  void emit_burst_packet(std::uint64_t remaining);
  void send(std::size_t wire_bytes, std::uint16_t dst_port);

  sim::Scheduler& sched_;
  topo::Host& host_;
  Config config_;
  sim::Random rng_;          ///< background lane stream
  sim::Random lane_rng_;     ///< incast/burst lane stream (independent)
  ArrivalSampler arrivals_;
  sim::Time packet_gap_;     ///< serialization time at the NIC rate

  std::uint64_t flow_packets_left_ = 0;  ///< current background flow
  std::size_t flow_tail_bytes_ = 0;      ///< size of its last packet
  std::uint16_t flow_src_port_ = 10000;

  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_completed_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t incast_waves_ = 0;
  std::uint64_t bursts_ = 0;
};

}  // namespace edp::workload
