// edp::workload — the scenario fuzzer.
//
// Randomizes scenarios over (seed x topology x mix x storm lanes x failure
// schedule), replays each against an app, and checks invariants:
//
//   * determinism — the outcome digest at 2 shards equals the 1-shard run;
//   * liveness    — the sink received background traffic (no sink flap);
//   * optional caller-supplied oracles (the test suite injects a
//     deliberately-too-strong invariant to exercise the machinery).
//
// A failing case is *shrunk* to a minimal reproducer: halve the flow count,
// drop flap entries, shrink the topology and disable storm lanes — keeping
// each mutation only while the case still fails — then emit the scenario's
// one-line `edp_scen` repro string. Everything is seeded: the same fuzz
// seed always finds and shrinks the same case.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "workload/replay.hpp"

namespace edp::workload {

/// An invariant over a replayed scenario. Returns an error description when
/// violated, nullopt when satisfied. For determinism checks the 1-shard and
/// 2-shard outcomes of the same scenario are both provided.
using Invariant = std::function<std::optional<std::string>(
    const ScenarioSpec&, const ScenarioOutcome& one_shard,
    const ScenarioOutcome& two_shards)>;

struct FuzzConfig {
  std::uint64_t seed = 1;
  std::size_t runs = 20;
  /// Flow budget per generated case (shrinking lowers it further).
  std::uint64_t flows = 2000;
  /// Apps to draw from; empty = every registered program.
  std::vector<std::string> apps;
  /// Generate link-flap schedules (needed to exercise failure handling).
  bool with_flaps = true;
  /// Extra oracles on top of the built-in determinism + liveness checks.
  std::vector<Invariant> extra_invariants;
  std::size_t max_shrink_steps = 64;
};

struct FuzzFailure {
  ScenarioSpec scenario;       ///< the minimal (shrunk) failing case
  ScenarioSpec original;       ///< as generated, before shrinking
  std::string app;
  std::string what;            ///< violated invariant description
  std::size_t shrink_steps = 0;  ///< accepted shrinking mutations
  std::string repro;           ///< edp_scen command-line reproducer
};

struct FuzzReport {
  std::size_t runs = 0;
  std::size_t failures = 0;    ///< distinct generated cases that failed
  std::vector<FuzzFailure> shrunk;  ///< one minimal reproducer per failure
};

class ScenarioFuzzer {
 public:
  explicit ScenarioFuzzer(FuzzConfig config);

  /// Run the campaign. Stops early after `max_failures` distinct failures
  /// (each already shrunk); 0 = never stop early.
  FuzzReport run(std::size_t max_failures = 1);

  /// Generate the i-th random case (exposed for tests; deterministic).
  std::pair<ScenarioSpec, std::string> generate(std::size_t i);

  /// Evaluate every invariant; first violation or nullopt.
  std::optional<std::string> check(const ScenarioSpec& spec,
                                   const std::string& app);

  /// Shrink a failing case until no mutation keeps it failing.
  FuzzFailure shrink(ScenarioSpec spec, const std::string& app,
                     const std::string& what);

 private:
  FuzzConfig config_;
  std::vector<std::string> app_pool_;
};

}  // namespace edp::workload
