#include "workload/distributions.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace edp::workload {

FlowSizeCdf::FlowSizeCdf(std::vector<Knot> knots, double min_bytes)
    : knots_(std::move(knots)), origin_(min_bytes) {
  if (knots_.empty()) {
    throw std::invalid_argument("FlowSizeCdf: no knots");
  }
  if (!(origin_ >= 1.0) || knots_.front().bytes < origin_) {
    throw std::invalid_argument(
        "FlowSizeCdf: min_bytes must be >= 1 and <= the first knot");
  }
  double prev_bytes = 0;
  double prev_cum = 0;
  for (const Knot& k : knots_) {
    if (k.bytes <= prev_bytes || k.cum <= prev_cum || k.cum > 1.0) {
      throw std::invalid_argument("FlowSizeCdf: knots must be strictly "
                                  "increasing with cum in (0, 1]");
    }
    prev_bytes = k.bytes;
    prev_cum = k.cum;
  }
  if (knots_.back().cum != 1.0) {
    throw std::invalid_argument("FlowSizeCdf: last knot must have cum == 1");
  }
}

std::uint64_t FlowSizeCdf::sample(sim::Random& rng) const {
  const double u = rng.uniform01();
  // First knot whose cumulative probability covers u.
  std::size_t hi = 0;
  while (hi + 1 < knots_.size() && knots_[hi].cum < u) {
    ++hi;
  }
  const double hi_cum = knots_[hi].cum;
  const double hi_bytes = knots_[hi].bytes;
  const double lo_cum = hi == 0 ? 0.0 : knots_[hi - 1].cum;
  const double lo_bytes = hi == 0 ? origin_ : knots_[hi - 1].bytes;
  const double span = hi_cum - lo_cum;
  const double frac = span > 0 ? (u - lo_cum) / span : 1.0;
  const double bytes = lo_bytes + frac * (hi_bytes - lo_bytes);
  return static_cast<std::uint64_t>(std::max(1.0, bytes));
}

double FlowSizeCdf::mean_bytes(std::uint64_t cap_bytes) const {
  // Integrate the piecewise-linear inverse CDF segment by segment; within a
  // segment the conditional distribution is uniform on [lo, hi], so its
  // capped conditional mean has a closed form.
  const double cap = cap_bytes == 0
                         ? knots_.back().bytes
                         : static_cast<double>(cap_bytes);
  double mean = 0;
  double lo_cum = 0;
  double lo_bytes = origin_;
  for (const Knot& k : knots_) {
    const double p = k.cum - lo_cum;
    const double lo = std::min(lo_bytes, cap);
    const double hi = std::min(k.bytes, cap);
    double seg_mean = 0;
    if (k.bytes <= cap) {
      seg_mean = (lo_bytes + k.bytes) / 2.0;  // untouched by the cap
    } else if (lo_bytes >= cap) {
      seg_mean = cap;  // fully clipped
    } else {
      // Uniform on [lo_bytes, k.bytes]; the part above `cap` collapses.
      const double width = k.bytes - lo_bytes;
      const double below = (cap - lo_bytes) / width;
      seg_mean = below * (lo + hi) / 2.0 + (1.0 - below) * cap;
    }
    mean += p * seg_mean;
    lo_cum = k.cum;
    lo_bytes = k.bytes;
  }
  return mean;
}

double FlowSizeCdf::quantile(double q) const {
  assert(q > 0.0 && q <= 1.0);
  std::size_t hi = 0;
  while (hi + 1 < knots_.size() && knots_[hi].cum < q) {
    ++hi;
  }
  const double lo_cum = hi == 0 ? 0.0 : knots_[hi - 1].cum;
  const double lo_bytes = hi == 0 ? origin_ : knots_[hi - 1].bytes;
  const double span = knots_[hi].cum - lo_cum;
  const double frac = span > 0 ? (q - lo_cum) / span : 1.0;
  return lo_bytes + frac * (knots_[hi].bytes - lo_bytes);
}

const FlowSizeCdf& FlowSizeCdf::web_search() {
  // DCTCP web-search mix (Alizadeh et al., SIGCOMM 2010, §2.2 / Fig. 4's
  // query+background aggregate as discretized by the pFabric/Homa line of
  // follow-ups): ~half the flows are mice under ~50 KB, while flows over
  // 1 MB — under 10% by count — carry most of the bytes.
  static const FlowSizeCdf cdf({
      {6e3, 0.15},
      {13e3, 0.30},
      {19e3, 0.40},
      {33e3, 0.53},
      {53e3, 0.60},
      {133e3, 0.70},
      {667e3, 0.80},
      {1.3e6, 0.90},
      {6.7e6, 0.95},
      {20e6, 0.99},
      {30e6, 1.00},
  });
  return cdf;
}

const FlowSizeCdf& FlowSizeCdf::hadoop() {
  // Facebook Hadoop-cluster mix (Roy et al., SIGCOMM 2015): dominated by
  // sub-KB RPCs, with a long shuffle tail out to tens of MB.
  static const FlowSizeCdf cdf({
      {300, 0.50},
      {1e3, 0.63},
      {2e3, 0.72},
      {10e3, 0.82},
      {100e3, 0.90},
      {1e6, 0.95},
      {10e6, 0.99},
      {30e6, 1.00},
  });
  return cdf;
}

FlowSizeCdf FlowSizeCdf::fixed(std::uint64_t bytes) {
  assert(bytes >= 2);
  // A single segment whose origin equals its knot: a true point mass.
  return FlowSizeCdf({{static_cast<double>(bytes), 1.0}},
                     static_cast<double>(bytes));
}

ArrivalSampler::ArrivalSampler(Config config) : config_(config) {
  assert(config_.flows_per_sec > 0);
  if (config_.kind == Kind::kOnOff) {
    assert(config_.on_mean > sim::Time::zero() &&
           config_.off_mean > sim::Time::zero());
  }
}

sim::Time ArrivalSampler::next_gap(sim::Random& rng) {
  const double mean_gap_s = 1.0 / config_.flows_per_sec;
  // ON-time to consume before the next arrival (wall time for kPoisson).
  sim::Time on_needed = sim::Time::from_seconds(rng.exponential(mean_gap_s));
  if (config_.kind == Kind::kPoisson) {
    return std::max(sim::Time::picos(1), on_needed);
  }
  // Markov-modulated Poisson: burn the remainder of the current ON period,
  // insert an OFF silence, continue in a fresh ON period — repeated until
  // the needed ON-time fits.
  sim::Time gap = sim::Time::zero();
  while (on_needed > on_left_) {
    gap += on_left_;
    on_needed -= on_left_;
    gap += sim::Time::from_seconds(
        rng.exponential(config_.off_mean.as_seconds()));
    on_left_ = std::max(sim::Time::picos(1),
                        sim::Time::from_seconds(
                            rng.exponential(config_.on_mean.as_seconds())));
  }
  on_left_ -= on_needed;
  gap += on_needed;
  return std::max(sim::Time::picos(1), gap);
}

double ArrivalSampler::effective_rate() const {
  if (config_.kind == Kind::kPoisson) {
    return config_.flows_per_sec;
  }
  const double on = config_.on_mean.as_seconds();
  const double off = config_.off_mean.as_seconds();
  return config_.flows_per_sec * on / (on + off);
}

}  // namespace edp::workload
