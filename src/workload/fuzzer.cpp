#include "workload/fuzzer.hpp"

#include <algorithm>
#include <cassert>

#include "sim/random.hpp"

namespace edp::workload {
namespace {

/// Built-in oracle: parallel replay must be bit-identical to 1 shard.
std::optional<std::string> determinism_invariant(
    const ScenarioSpec&, const ScenarioOutcome& one,
    const ScenarioOutcome& two) {
  if (one.digest != two.digest) {
    return "digest mismatch: 1-shard vs 2-shard replay diverged";
  }
  return std::nullopt;
}

/// Built-in oracle: background traffic reaches the sink unless the sink
/// link itself was flapped.
std::optional<std::string> liveness_invariant(const ScenarioSpec& spec,
                                              const ScenarioOutcome& one,
                                              const ScenarioOutcome&) {
  bool sink_flapped = false;
  for (const LinkFlap& f : spec.flaps) {
    sink_flapped = sink_flapped || f.target == LinkFlap::Target::kSink;
  }
  if (!sink_flapped && one.packets_sent > 0 && one.sink_rx_packets == 0) {
    return "sink starved: packets were sent but none arrived";
  }
  return std::nullopt;
}

}  // namespace

ScenarioFuzzer::ScenarioFuzzer(FuzzConfig config)
    : config_(std::move(config)) {
  if (config_.apps.empty()) {
    for (const auto& p : apps::program_registry()) {
      app_pool_.push_back(p.name);
    }
  } else {
    app_pool_ = config_.apps;
  }
  assert(!app_pool_.empty());
}

std::pair<ScenarioSpec, std::string> ScenarioFuzzer::generate(std::size_t i) {
  // One independent stream per case index: case i is reproducible without
  // replaying cases 0..i-1.
  sim::Random rng(config_.seed * 0x9e3779b97f4a7c15ULL + i);
  ScenarioSpec spec;
  spec.name = "fuzz-" + std::to_string(config_.seed) + "-" + std::to_string(i);
  spec.seed = rng.uniform(1'000'000) + 1;
  spec.edges = 1 + rng.uniform(4);                  // 1..4
  spec.hosts_per_edge = 1 + rng.uniform(3);         // 1..3
  spec.flows = config_.flows;
  spec.sizes = rng.chance(0.5) ? SizeMix::kWebSearch : SizeMix::kHadoop;
  spec.arrivals = rng.chance(0.5) ? ArrivalSampler::Kind::kPoisson
                                  : ArrivalSampler::Kind::kOnOff;
  spec.load = 0.1 + rng.uniform01() * 0.5;
  spec.flow_size_cap_bytes = 16 * 1024;
  if (rng.chance(0.3)) {
    spec.incast_degree = 1 + rng.uniform(spec.num_sources());
    spec.incast_period = sim::Time::micros(
        200 + static_cast<std::int64_t>(rng.uniform(1800)));
  }
  if (rng.chance(0.3)) {
    spec.burst_packets = 8 << rng.uniform(4);  // 8..64
    spec.burst_period = sim::Time::micros(
        100 + static_cast<std::int64_t>(rng.uniform(900)));
  }
  if (config_.with_flaps) {
    const std::size_t flaps = rng.uniform(3);  // 0..2
    const sim::Time span = spec.active_span();
    for (std::size_t f = 0; f < flaps; ++f) {
      LinkFlap flap;
      const std::uint64_t which = rng.uniform(3);
      flap.target = which == 0   ? LinkFlap::Target::kSink
                    : which == 1 ? LinkFlap::Target::kAux
                                 : LinkFlap::Target::kSource;
      flap.source = rng.uniform(spec.num_sources());
      // Microsecond lattice so the repro string (which prints whole
      // microseconds) round-trips exactly.
      const auto half_span_us = static_cast<std::uint64_t>(
          std::max<std::int64_t>(1, span.ps() / 2'000'000));
      flap.down_at = sim::Time::micros(
          1 + static_cast<std::int64_t>(rng.uniform(half_span_us)));
      flap.up_at = flap.down_at +
                   sim::Time::micros(10 + static_cast<std::int64_t>(
                                              rng.uniform(200)));
      spec.flaps.push_back(flap);
    }
  }
  const std::string app =
      app_pool_[static_cast<std::size_t>(rng.uniform(app_pool_.size()))];
  return {spec, app};
}

std::optional<std::string> ScenarioFuzzer::check(const ScenarioSpec& spec,
                                                 const std::string& app) {
  const apps::RegisteredProgram* program = find_program(app);
  assert(program != nullptr);
  ReplayOptions one;
  one.shards = 1;
  ReplayOptions two;
  two.shards = 2;
  const ScenarioOutcome a = replay(spec, *program, one);
  const ScenarioOutcome b = replay(spec, *program, two);
  if (auto err = determinism_invariant(spec, a, b)) {
    return err;
  }
  // Liveness only means something for apps that forward to the sink;
  // non-routing apps (telemetry reporters, ToR-semantics apps) legitimately
  // deliver nothing there.
  if (app_routes_to_sink(*program)) {
    if (auto err = liveness_invariant(spec, a, b)) {
      return err;
    }
  }
  for (const Invariant& inv : config_.extra_invariants) {
    if (auto err = inv(spec, a, b)) {
      return err;
    }
  }
  return std::nullopt;
}

FuzzFailure ScenarioFuzzer::shrink(ScenarioSpec spec, const std::string& app,
                                   const std::string& what) {
  FuzzFailure failure;
  failure.original = spec;
  failure.app = app;
  failure.what = what;

  // Candidate mutations, coarsest first. Each is applied tentatively and
  // kept only if the shrunk case still violates the *same* invariant.
  const auto still_fails = [&](const ScenarioSpec& candidate) {
    const auto err = check(candidate, app);
    return err.has_value() && *err == what;
  };
  std::size_t steps = 0;
  bool progress = true;
  while (progress && steps < config_.max_shrink_steps) {
    progress = false;
    // Halve the flow budget.
    if (spec.flows > 1) {
      ScenarioSpec c = spec;
      c.flows = std::max<std::uint64_t>(1, c.flows / 2);
      if (still_fails(c)) {
        spec = c;
        ++steps;
        progress = true;
        continue;
      }
    }
    // Drop one flap at a time.
    bool flap_dropped = false;
    for (std::size_t f = 0; f < spec.flaps.size(); ++f) {
      ScenarioSpec c = spec;
      c.flaps.erase(c.flaps.begin() + static_cast<std::ptrdiff_t>(f));
      if (still_fails(c)) {
        spec = c;
        ++steps;
        progress = true;
        flap_dropped = true;
        break;
      }
    }
    if (flap_dropped) {
      continue;
    }
    // Disable storm lanes.
    if (spec.incast_degree > 0) {
      ScenarioSpec c = spec;
      c.incast_degree = 0;
      if (still_fails(c)) {
        spec = c;
        ++steps;
        progress = true;
        continue;
      }
    }
    if (spec.burst_packets > 0) {
      ScenarioSpec c = spec;
      c.burst_packets = 0;
      if (still_fails(c)) {
        spec = c;
        ++steps;
        progress = true;
        continue;
      }
    }
    // Shrink the topology (flap source indices are re-wrapped by replay).
    if (spec.edges > 1) {
      ScenarioSpec c = spec;
      c.edges = spec.edges - 1;
      if (still_fails(c)) {
        spec = c;
        ++steps;
        progress = true;
        continue;
      }
    }
    if (spec.hosts_per_edge > 1) {
      ScenarioSpec c = spec;
      c.hosts_per_edge = spec.hosts_per_edge - 1;
      if (still_fails(c)) {
        spec = c;
        ++steps;
        progress = true;
        continue;
      }
    }
  }
  failure.scenario = spec;
  failure.shrink_steps = steps;
  failure.repro = "edp_scen run --app " + app + " " + spec.repro();
  return failure;
}

FuzzReport ScenarioFuzzer::run(std::size_t max_failures) {
  FuzzReport report;
  for (std::size_t i = 0; i < config_.runs; ++i) {
    auto [spec, app] = generate(i);
    ++report.runs;
    const auto err = check(spec, app);
    if (!err) {
      continue;
    }
    ++report.failures;
    report.shrunk.push_back(shrink(spec, app, *err));
    if (max_failures != 0 && report.failures >= max_failures) {
      break;
    }
  }
  return report;
}

}  // namespace edp::workload
