#include "workload/storm_source.hpp"

#include <algorithm>
#include <cassert>

namespace edp::workload {
namespace {

/// UDP destination ports per lane, so sink-side `rx_on_port` statistics
/// (and the scenario digest) separate background, incast, and burst
/// traffic.
constexpr std::uint16_t kBackgroundPort = 20000;
constexpr std::uint16_t kIncastPort = 20001;
constexpr std::uint16_t kBurstPort = 20002;

/// Smallest replay packet: headers plus a little payload, so tail packets
/// of a flow stay valid wire frames.
constexpr std::size_t kMinWireBytes = 65;

/// Wire sizes are rounded up to this quantum so serialization times are
/// whole nanoseconds (5 bytes = 40 bits = 4 ns at 10 Gb/s and every rate
/// that divides it). Together with whole-ns arrival gaps and the
/// per-source sub-ns phase (start()), every event a source causes before
/// its traffic is re-anchored by a switch's clock grid stays in that
/// source's picosecond residue class mod 1000 — distinct sources on one
/// edge switch never collide.
constexpr std::size_t kWireQuantum = 5;

std::size_t quantize_wire(std::size_t bytes) {
  bytes = std::max(bytes, kMinWireBytes);
  return (bytes + kWireQuantum - 1) / kWireQuantum * kWireQuantum;
}

/// Round a sampled inter-arrival gap up to a whole (positive) nanosecond,
/// keeping scheduled times on the source's residue lattice.
sim::Time quantize_gap(sim::Time gap) {
  const std::int64_t ns = (gap.ps() + 999) / 1000;
  return sim::Time::nanos(std::max<std::int64_t>(1, ns));
}

std::uint64_t source_stream_seed(std::uint64_t seed, std::size_t index) {
  // splitmix-style spread: distinct, well-separated xoshiro seeds per
  // (scenario seed, source index) without correlating nearby indices.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

StormSource::StormSource(sim::Scheduler& sched, topo::Host& host,
                         Config config)
    : sched_(sched),
      host_(host),
      config_(config),
      rng_(source_stream_seed(config.seed, config.source_index)),
      lane_rng_(rng_.fork()),
      arrivals_(config.arrivals) {
  config_.packet_bytes = quantize_wire(config_.packet_bytes);
  packet_gap_ =
      sim::serialization_time(config_.packet_bytes, config_.nic_rate_bps);
  assert(config_.source_index < 999);
  assert(packet_gap_ > sim::Time::zero());
  assert(packet_gap_.ps() % 1000 == 0);
}

void StormSource::start() {
  // De-tie phase: every lane of source i lives at picosecond residue i+1
  // (mod 1000) — residue 0 is left to app timers and flap schedules. All
  // subsequent gaps are whole nanoseconds (see kWireQuantum), so no two
  // sources ever cause events at the same picosecond, anywhere.
  const sim::Time offset = sim::Time::picos(
      static_cast<std::int64_t>(config_.source_index + 1));
  if (config_.cdf != nullptr && config_.flow_budget > 0) {
    sched_.at(offset + quantize_gap(arrivals_.next_gap(rng_)),
              [this] { next_flow(); });
  }
  if (config_.incast_flow_bytes > 0) {
    sched_.at(config_.incast_period + offset, [this] { incast_wave(1); });
  }
  if (config_.burst_packets > 0) {
    sched_.at(config_.burst_period + offset, [this] { burst(1); });
  }
}

// ---- background lane --------------------------------------------------------

void StormSource::next_flow() {
  if (flows_started_ >= config_.flow_budget || sched_.now() >= config_.stop) {
    return;
  }
  std::uint64_t bytes = config_.cdf->sample(rng_);
  if (config_.cap_bytes > 0) {
    bytes = std::min(bytes, config_.cap_bytes);
  }
  bytes = std::max<std::uint64_t>(bytes, kMinWireBytes);
  flow_packets_left_ = (bytes + config_.packet_bytes - 1) / config_.packet_bytes;
  const std::uint64_t tail = bytes % config_.packet_bytes;
  flow_tail_bytes_ = quantize_wire(static_cast<std::size_t>(
      tail == 0 ? config_.packet_bytes : tail));
  flow_src_port_ = static_cast<std::uint16_t>(10000 + flows_started_ % 50000);
  ++flows_started_;
  emit_flow_packet();
}

void StormSource::emit_flow_packet() {
  const bool last = flow_packets_left_ == 1;
  send(last ? flow_tail_bytes_ : config_.packet_bytes, kBackgroundPort);
  --flow_packets_left_;
  if (!last) {
    sched_.after(packet_gap_, [this] { emit_flow_packet(); });
    return;
  }
  ++flows_completed_;
  // Next arrival, measured from this flow's start per the arrival process;
  // if the sampled gap already elapsed while the flow was transmitting,
  // start the next flow one NIC slot later (a busy source, not a time warp).
  const sim::Time gap = quantize_gap(arrivals_.next_gap(rng_));
  sched_.after(std::max(gap, packet_gap_), [this] { next_flow(); });
}

// ---- incast lane ------------------------------------------------------------

void StormSource::incast_wave(std::uint64_t wave) {
  if (sched_.now() >= config_.stop) {
    return;
  }
  ++incast_waves_;
  const std::uint64_t packets = std::max<std::uint64_t>(
      1, (config_.incast_flow_bytes + config_.packet_bytes - 1) /
             config_.packet_bytes);
  emit_incast_packet(packets);
  const sim::Time offset =
      sim::Time::picos(static_cast<std::int64_t>(config_.source_index + 1));
  sched_.at(config_.incast_period * static_cast<std::int64_t>(wave + 1) +
                offset,
            [this, wave] { incast_wave(wave + 1); });
}

void StormSource::emit_incast_packet(std::uint64_t remaining) {
  send(config_.packet_bytes, kIncastPort);
  if (remaining > 1) {
    sched_.after(packet_gap_,
                 [this, remaining] { emit_incast_packet(remaining - 1); });
  }
}

// ---- microburst lane --------------------------------------------------------

void StormSource::burst(std::uint64_t n) {
  if (sched_.now() >= config_.stop) {
    return;
  }
  ++bursts_;
  emit_burst_packet(config_.burst_packets);
  const sim::Time offset =
      sim::Time::picos(static_cast<std::int64_t>(config_.source_index + 1));
  sched_.at(config_.burst_period * static_cast<std::int64_t>(n + 1) + offset,
            [this, n] { burst(n + 1); });
}

void StormSource::emit_burst_packet(std::uint64_t remaining) {
  send(config_.packet_bytes, kBurstPort);
  if (remaining > 1) {
    sched_.after(packet_gap_,
                 [this, remaining] { emit_burst_packet(remaining - 1); });
  }
}

// ---- shared ----------------------------------------------------------------

void StormSource::send(std::size_t wire_bytes, std::uint16_t dst_port) {
  host_.send(net::make_udp_packet(config_.src_ip, config_.dst_ip,
                                  flow_src_port_, dst_port, wire_bytes));
  ++packets_sent_;
  bytes_sent_ += wire_bytes;
}

}  // namespace edp::workload
