#include "workload/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <memory>
#include <string>

#include "net/address.hpp"

namespace edp::workload {

std::string_view to_string(SizeMix mix) {
  switch (mix) {
    case SizeMix::kWebSearch:
      return "web-search";
    case SizeMix::kHadoop:
      return "hadoop";
    case SizeMix::kFixed:
      return "fixed";
  }
  return "?";
}

const FlowSizeCdf& ScenarioSpec::size_cdf() const {
  switch (sizes) {
    case SizeMix::kWebSearch:
      return FlowSizeCdf::web_search();
    case SizeMix::kHadoop:
      return FlowSizeCdf::hadoop();
    case SizeMix::kFixed: {
      // Cache per distinct size: the engine calls this once per run.
      static thread_local std::uint64_t cached_bytes = 0;
      static thread_local std::unique_ptr<FlowSizeCdf> cached;
      const std::uint64_t bytes = std::max<std::uint64_t>(2, fixed_flow_bytes);
      if (!cached || cached_bytes != bytes) {
        cached = std::make_unique<FlowSizeCdf>(FlowSizeCdf::fixed(bytes));
        cached_bytes = bytes;
      }
      return *cached;
    }
  }
  return FlowSizeCdf::web_search();
}

double ScenarioSpec::mean_flow_bytes() const {
  return size_cdf().mean_bytes(flow_size_cap_bytes);
}

double ScenarioSpec::flows_per_sec_per_source() const {
  assert(load > 0 && nic_rate_bps > 0);
  const double offered_bps = load * nic_rate_bps;
  const double per_source_bps =
      offered_bps / static_cast<double>(num_sources());
  return per_source_bps / (mean_flow_bytes() * 8.0);
}

sim::Time ScenarioSpec::active_span() const {
  // Expected budget-completion time per source, x1.5 slack for arrival
  // variance (ON/OFF duty cycling is folded in via effective_rate).
  ArrivalSampler::Config ac;
  ac.kind = arrivals;
  ac.flows_per_sec = flows_per_sec_per_source();
  ac.on_mean = on_mean;
  ac.off_mean = off_mean;
  const double rate = ArrivalSampler(ac).effective_rate();
  const double expected_s =
      static_cast<double>(flows_per_source()) / std::max(1e-9, rate);
  return std::max(sim::Time::millis(1),
                  sim::Time::from_seconds(expected_s * 1.5));
}

sim::Time ScenarioSpec::horizon() const {
  return active_span() + sim::Time::millis(5);
}

std::string ScenarioSpec::repro() const {
  // Lossless round-trip through `edp_scen run` flags: every field that
  // affects the replay is emitted (load at full double precision, lane
  // periods in integral microseconds) — a shrunk fuzzer case must
  // reproduce its failure exactly.
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "--mix %s --arrivals %s --seed %llu --flows %llu --load %.17g "
      "--edges %zu --hosts-per-edge %zu --cap %llu --packet-bytes %zu",
      std::string(to_string(sizes)).c_str(),
      arrivals == ArrivalSampler::Kind::kPoisson ? "poisson" : "onoff",
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(flows), load, edges, hosts_per_edge,
      static_cast<unsigned long long>(flow_size_cap_bytes), packet_bytes);
  std::string out = buf;
  const auto micros_of = [](sim::Time t) {
    return std::to_string(t.ps() / 1'000'000);
  };
  if (sizes == SizeMix::kFixed) {
    out += " --fixed-bytes " + std::to_string(fixed_flow_bytes);
  }
  if (arrivals == ArrivalSampler::Kind::kOnOff) {
    out += " --on-us " + micros_of(on_mean) + " --off-us " +
           micros_of(off_mean);
  }
  if (incast_degree > 0) {
    out += " --incast " + std::to_string(incast_degree) +
           " --incast-flow-bytes " + std::to_string(incast_flow_bytes) +
           " --incast-period-us " + micros_of(incast_period);
  }
  if (burst_packets > 0) {
    out += " --bursts " + std::to_string(burst_packets) +
           " --burst-period-us " + micros_of(burst_period);
  }
  for (const LinkFlap& f : flaps) {
    const char* target = f.target == LinkFlap::Target::kSink   ? "sink"
                         : f.target == LinkFlap::Target::kAux ? "aux"
                                                              : "source";
    out += " --flap " + std::string(target) + ":" +
           std::to_string(f.source) + ":" + micros_of(f.down_at) + ":" +
           micros_of(f.up_at);
  }
  return out;
}

ScenarioSpec apply_rates(ScenarioSpec spec,
                         const analysis::EventRates& rates) {
  if (rates.avg_packet_bytes != 0) {
    spec.packet_bytes = rates.avg_packet_bytes;
  }
  if (rates.declared(analysis::Handler::kIngress)) {
    // The annotation is the app's worst-case ingress budget in events/s
    // (one ingress event per packet). Scale the offered load down so the
    // aggregate background packet rate stays inside it.
    const double budget_pps = rates.get(analysis::Handler::kIngress);
    const double mean_pkts_per_flow = std::max(
        1.0, spec.mean_flow_bytes() / static_cast<double>(spec.packet_bytes));
    const double offered_pps = spec.flows_per_sec_per_source() *
                               static_cast<double>(spec.num_sources()) *
                               mean_pkts_per_flow;
    if (offered_pps > budget_pps && offered_pps > 0) {
      spec.load *= budget_pps / offered_pps;
    }
  }
  return spec;
}

TopologyMap build_topology(const ScenarioSpec& spec, topo::Spec& topo) {
  assert(spec.edges >= 1 && spec.hosts_per_edge >= 1);
  // Every cross-shard event is anchored to some switch's clock grid (its
  // merger slot times plus serialization chains, which only ever shift a
  // timestamp by multiples of 200 ps — bytes x 800 ps at 10 Gb/s). Distinct
  // per-switch clock phases, all distinct mod 200 ps, therefore make
  // cross-switch same-picosecond ties — the one ordering the parallel
  // runtime's determinism contract excludes — structurally impossible:
  //   DUT = 0, edge e = 1+e (needs edges <= 198), flaps = 199 (replay.cpp).
  assert(spec.edges <= 198);
  // Whole-ns link delays keep deliveries on the sending switch's lattice.
  assert(spec.host_link_delay.ps() % 1000 == 0);
  assert(spec.fabric_link_delay.ps() % 1000 == 0);
  TopologyMap map;

  core::EventSwitchConfig dut;
  dut.name = "dut";
  dut.num_ports = static_cast<std::uint16_t>(2 + spec.edges);
  dut.port_rate_bps = spec.nic_rate_bps;
  // Two queues, strict priority: the superset every registered app needs
  // (ndp-trim rides qid 1 for full packets; single-queue apps only ever
  // touch qid 0, where the scheduler choice is moot).
  dut.queues_per_port = 2;
  dut.tm_scheduler = tm_::SchedulerKind::kStrictPriority;
  dut.merger.clock_phase = sim::Time::zero();
  map.dut = topo.add_switch(dut);

  for (std::size_t e = 0; e < spec.edges; ++e) {
    core::EventSwitchConfig c;
    c.name = "edge" + std::to_string(e);
    c.num_ports = static_cast<std::uint16_t>(spec.hosts_per_edge + 1);
    c.port_rate_bps = spec.nic_rate_bps;
    c.merger.clock_phase = sim::Time::picos(static_cast<std::int64_t>(1 + e));
    map.edges.push_back(topo.add_switch(c));
  }

  const auto host_cfg = [&spec](const std::string& name, net::Ipv4Address ip) {
    topo::Host::Config c;
    c.name = name;
    c.ip = ip;
    c.mac = net::MacAddress::from_u64(0x020000000000ULL + ip.value());
    c.nic_rate_bps = spec.nic_rate_bps;
    return c;
  };

  topo::Link::Config host_link;
  host_link.delay = spec.host_link_delay;
  topo::Link::Config fabric_link;
  fabric_link.delay = spec.fabric_link_delay;

  // DUT-attached hosts. The sink owns 10.0.0.1: the registry convention
  // (10.0.0.0/8 -> port 1) makes it the destination of every background
  // flow. The aux host sits on port 0 for apps with host-port semantics
  // (hula-tor, netcache clients) and as a flap target that raises
  // LinkStatusChange events at the DUT itself.
  map.sink_ip = net::Ipv4Address(10, 0, 0, 1);
  map.aux_ip = net::Ipv4Address(10, 0, 0, 2);
  map.aux_host = topo.add_host(host_cfg("aux", map.aux_ip));
  map.aux_link = topo.connect_host(map.aux_host, map.dut, 0, host_link);
  map.sink_host = topo.add_host(host_cfg("sink", map.sink_ip));
  map.sink_link = topo.connect_host(map.sink_host, map.dut, 1, host_link);

  // Source hosts: 10.(1+e).(1+h).1, outside the sink's /24 but inside the
  // registry's 10/8 default route.
  for (std::size_t e = 0; e < spec.edges; ++e) {
    for (std::size_t h = 0; h < spec.hosts_per_edge; ++h) {
      const net::Ipv4Address ip(10, static_cast<std::uint8_t>(1 + e),
                                static_cast<std::uint8_t>(1 + h), 1);
      const std::size_t host = topo.add_host(host_cfg(
          "src" + std::to_string(e) + "_" + std::to_string(h), ip));
      map.source_hosts.push_back(host);
      map.source_ips.push_back(ip);
      map.source_links.push_back(topo.connect_host(
          host, map.edges[e], static_cast<std::uint16_t>(h), host_link));
    }
  }

  // Edge uplinks: edge e port H <-> DUT port 2+e. The only links the
  // default shard plan can cut.
  for (std::size_t e = 0; e < spec.edges; ++e) {
    topo.connect_switches(map.edges[e],
                          static_cast<std::uint16_t>(spec.hosts_per_edge),
                          map.dut, static_cast<std::uint16_t>(2 + e),
                          fabric_link);
  }
  return map;
}

void EdgeProgram::on_ingress(pisa::Phv& phv, core::EventContext& ctx) {
  topo::L3Program::on_ingress(phv, ctx);
  if (!phv.std_meta.drop && phv.std_meta.ingress_port == uplink_port_ &&
      phv.std_meta.egress_port == uplink_port_) {
    phv.std_meta.drop = true;
    ++uplink_drops_;
  }
}

}  // namespace edp::workload
