// edp::workload — the scenario replay engine.
//
// Lowers a `ScenarioSpec` onto the fan-in topology, attaches an application
// from the registry to the device-under-test switch, installs one
// `StormSource` per source host plus the flap schedule, and runs the whole
// thing either sequentially (one sim::Scheduler) or through
// `runtime::ParallelRuntime` at any shard count. The result is a
// `ScenarioOutcome`: replay volume counters plus an FNV-1a digest over
// every shard-invariant observable (per-switch counters and event
// observations, per-host statistics, per-source replay totals) — the value
// the determinism gates compare across seeds x shard counts, and the
// fuzzer's oracle.
#pragma once

#include <cstdint>
#include <string>

#include "apps/registry.hpp"
#include "workload/scenario.hpp"
#include "workload/storm_source.hpp"

namespace edp::workload {

struct ReplayOptions {
  std::size_t shards = 1;
  /// Scale the spec to the app's registry EventRates before replaying.
  bool use_registry_rates = true;
  /// Run in fixed chunks of simulated time instead of one run_until — the
  /// engine's default, proven result-neutral by the runtime's repeated-run
  /// property; lets callers sample progress.
  sim::Time chunk = sim::Time::millis(50);
  /// Build the DUT through the optimizer (src/analysis/optimizer.hpp):
  /// apply the verified transforms, install the dispatch plan, and fill the
  /// optimizer fields of the outcome. The differential-correctness tests
  /// replay each scenario with and without this flag.
  bool optimize = false;
  /// Hardware target the optimizer rewrites for.
  std::string optimize_target = "linerate-tor";
  /// Capture the aggregated registers' observed worst-case value deviation
  /// (AggregatedRegister::value_error_max) alongside the optimizer's static
  /// staleness-value-error bound, so tests can assert observed <= bound.
  bool record_value_error = true;
};

struct ScenarioOutcome {
  std::string app;
  std::string scenario;
  std::uint64_t seed = 0;
  std::size_t shards = 1;

  std::uint64_t digest = 0;          ///< shard-invariant outcome digest
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t packets_sent = 0;    ///< by the storm sources
  std::uint64_t bytes_sent = 0;
  std::uint64_t incast_waves = 0;
  std::uint64_t bursts = 0;
  std::uint64_t events = 0;          ///< scheduler callbacks executed
  std::uint64_t sink_rx_packets = 0;
  std::uint64_t dut_tx_packets = 0;
  std::uint64_t dut_program_drops = 0;
  std::uint64_t dut_punts = 0;
  std::uint64_t edge_uplink_drops = 0;  ///< loop-breaker hits
  std::uint64_t cross_shard_messages = 0;
  double sim_seconds = 0;
  double wall_seconds = 0;
  /// Packet-buffer pool growth per event after the warmup chunk — the
  /// replay loop's allocation gauge (0 at steady state).
  double allocations_per_event = 0;

  // ---- optimizer differential observables (ReplayOptions::optimize) ------
  bool optimized = false;            ///< DUT ran the optimized program
  std::uint64_t transforms_applied = 0;
  /// Predicted worst-case staleness (max over the optimizer's per-register
  /// bounds, cycles); 0 when nothing is aggregated.
  std::uint64_t staleness_bound_cycles = 0;
  /// Measured aggregation stats, captured *before* settling (settle drains
  /// everything at once and would record meaningless staleness).
  std::uint64_t agg_staleness_max_cycles = 0;
  std::uint64_t agg_drained = 0;
  std::uint64_t agg_backlog_max = 0;
  /// Observed worst-case |main - true| deviation across aggregated cells
  /// (ReplayOptions::record_value_error), and the static
  /// staleness-value-error bound it must stay under (value-analysis pass;
  /// 0 when nothing is aggregated or the bound is unstable).
  std::uint64_t agg_value_error_max = 0;
  std::uint64_t value_error_bound = 0;
  /// App-level detections (MicroburstProgram; 0 for other apps).
  std::uint64_t detections = 0;
  /// FNV digest over the app's settled ground-truth state (microburst
  /// per-slot occupancy; 0 for other apps). Order-independent, so it must
  /// match exactly between naive and optimized replays.
  std::uint64_t app_state_digest = 0;
};

/// Replay `spec` against registered program `app`. The app factory builds a
/// fresh program instance for the DUT; edges run EdgeProgram routers.
ScenarioOutcome replay(const ScenarioSpec& spec,
                       const apps::RegisteredProgram& app,
                       const ReplayOptions& options = {});

/// Registry lookup by name; nullptr when unknown.
const apps::RegisteredProgram* find_program(const std::string& name);

/// True when a fresh instance of `app` forwards background traffic to the
/// scenario sink: L3-routed apps (registry installs 10/8 -> sink port) and
/// FRR (the replay injects its routes). Probe-constructs one instance.
/// Scopes the fuzzer's liveness oracle to forwarding apps.
bool app_routes_to_sink(const apps::RegisteredProgram& app);

}  // namespace edp::workload
