#include "apps/microburst.hpp"

#include "net/flow.hpp"

namespace edp::apps {

MicroburstProgram::MicroburstProgram(MicroburstConfig config)
    : config_(config), last_detect_(config.num_regs, sim::Time::zero()) {
  if (config_.state == StateModel::kShared) {
    // Ports: ingress + enqueue + dequeue threads.
    shared_ = std::make_unique<core::SharedRegister<std::int64_t>>(
        "bufSize_reg", config_.num_regs, /*ports=*/3);
  } else {
    agg_ = std::make_unique<core::AggregatedRegister>("bufSize_reg",
                                                      config_.num_regs);
  }
}

void MicroburstProgram::on_ingress(pisa::Phv& phv, core::EventContext& ctx) {
  route(phv);
  if (!phv.ipv4 || phv.std_meta.drop) {
    return;
  }
  // compute flowID (hash of ip.src ++ ip.dst, as in the paper)
  const std::uint32_t flow_id =
      net::flow_id_src_dst(phv.ipv4->src, phv.ipv4->dst);
  // initialize enq & deq metadata for this pkt
  set_enq_meta(phv, 0, flow_id);
  set_enq_meta(phv, 1, phv.std_meta.packet_length);
  set_deq_meta(phv, 0, flow_id);
  set_deq_meta(phv, 1, phv.std_meta.packet_length);
  // read buffer occupancy of this flow
  std::int64_t buf_size = 0;
  if (shared_) {
    shared_->read(slot(flow_id), buf_size, core::ThreadId::kIngress,
                  ctx.cycle());
  } else {
    buf_size = agg_->packet_read(slot(flow_id), ctx.cycle());
  }
  // detect microburst
  if (buf_size > config_.flow_thresh) {
    detect(flow_id, buf_size, ctx.now());
  }
}

void MicroburstProgram::on_enqueue(const tm_::EnqueueRecord& e,
                                   core::EventContext& ctx) {
  const auto flow_id = static_cast<std::uint32_t>(e.enq_meta[0]);
  const auto len = static_cast<std::int64_t>(e.enq_meta[1]);
  if (shared_) {
    shared_->rmw(
        slot(flow_id), [len](std::int64_t v) { return v + len; },
        core::ThreadId::kEnqueue, ctx.cycle());
  } else {
    agg_->enqueue_add(slot(flow_id), len, ctx.cycle());
  }
}

void MicroburstProgram::on_dequeue(const tm_::DequeueRecord& e,
                                   core::EventContext& ctx) {
  const auto flow_id = static_cast<std::uint32_t>(e.deq_meta[0]);
  const auto len = static_cast<std::int64_t>(e.deq_meta[1]);
  if (shared_) {
    shared_->rmw(
        slot(flow_id), [len](std::int64_t v) { return v - len; },
        core::ThreadId::kDequeue, ctx.cycle());
  } else {
    agg_->dequeue_add(slot(flow_id), -len, ctx.cycle());
  }
}

bool MicroburstProgram::realize_aggregated(std::string_view reg) {
  if (reg != "bufSize_reg") {
    return false;
  }
  if (agg_) {
    return true;  // already aggregated (idempotent)
  }
  config_.state = StateModel::kAggregated;
  shared_.reset();
  agg_ = std::make_unique<core::AggregatedRegister>("bufSize_reg",
                                                    config_.num_regs);
  return true;
}

void MicroburstProgram::visit_aggregated(
    const std::function<void(core::AggregatedRegister&)>& visit) {
  if (agg_) {
    visit(*agg_);
  }
}

void MicroburstProgram::detect(std::uint32_t flow_id, std::int64_t occupancy,
                               sim::Time now) {
  const std::uint32_t s = slot(flow_id);
  if (last_detect_[s] > sim::Time::zero() &&
      now - last_detect_[s] < config_.dedup_window) {
    return;
  }
  last_detect_[s] = now;
  detections_.push_back(CulpritDetection{flow_id, occupancy, now, true});
}

std::int64_t MicroburstProgram::occupancy(std::uint32_t flow_id) const {
  if (shared_) {
    // Verification read outside the pipeline; use true state directly.
    std::int64_t v = 0;
    const_cast<core::SharedRegister<std::int64_t>&>(*shared_).read(
        slot(flow_id), v, core::ThreadId::kOther, ~0ULL);
    return v;
  }
  return agg_->true_value(slot(flow_id));
}

std::size_t MicroburstProgram::state_bytes() const {
  return shared_ ? shared_->bytes() : agg_->bytes();
}

}  // namespace edp::apps
