#include "apps/netcache.hpp"

namespace edp::apps {
namespace {

constexpr std::uint64_t kDecayCookie = 0xcac4e;

/// 64-bit mix for slot indexing.
std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

NetCacheProgram::NetCacheProgram(NetCacheConfig config)
    : config_(config),
      slots_(config.cache_slots),
      popularity_(1024, 3) {}

void NetCacheProgram::on_attach(core::EventContext& ctx) {
  if (ctx.set_periodic_timer(config_.decay_period, kDecayCookie) == 0) {
    // Baseline target: punt so the control plane can decay popularity.
    core::ControlEventData punt;
    punt.opcode = core::kOpFacilityUnavailable;
    punt.args[0] = kDecayCookie;
    ctx.notify_control_plane(punt);
  }
}

std::size_t NetCacheProgram::slot_of(std::uint64_t key) const {
  return static_cast<std::size_t>(mix(key) % slots_.size());
}

bool NetCacheProgram::cached(std::uint64_t key) const {
  const Slot& s = slots_[slot_of(key)];
  return s.valid && s.key == key;
}

void NetCacheProgram::answer_from_cache(pisa::Phv& phv, const Slot& slot) {
  // Bounce the request back as a reply: swap L2/L3/L4 addressing, fill in
  // the value — the switch impersonates the server.
  std::swap(phv.eth->src, phv.eth->dst);
  std::swap(phv.ipv4->src, phv.ipv4->dst);
  std::swap(phv.udp->src_port, phv.udp->dst_port);
  phv.kv->op = net::KvHeader::kReply;
  phv.kv->value = slot.value;
  phv.std_meta.egress_port = phv.std_meta.ingress_port;
}

void NetCacheProgram::on_ingress(pisa::Phv& phv, core::EventContext&) {
  if (!phv.kv || !phv.ipv4 || !phv.udp || !phv.eth) {
    // Non-KV traffic: plain two-port forwarding between client and server.
    if (phv.ipv4 && phv.ipv4->dst == config_.server_ip) {
      phv.std_meta.egress_port = config_.server_port;
    } else if (phv.ipv4) {
      phv.std_meta.egress_port = config_.client_port;
    } else {
      phv.std_meta.drop = true;
    }
    return;
  }

  Slot& slot = slots_[slot_of(phv.kv->key)];
  switch (phv.kv->op) {
    case net::KvHeader::kGet: {
      if (slot.valid && slot.key == phv.kv->key) {
        ++hits_;
        if (slot.hits < UINT32_MAX) {
          ++slot.hits;
        }
        answer_from_cache(phv, slot);
        return;
      }
      ++misses_;
      ++server_gets_;
      popularity_.update(phv.kv->key, 1);
      phv.std_meta.egress_port = config_.server_port;
      return;
    }
    case net::KvHeader::kReply: {
      // Server reply passing through: insert hot keys. A key earns a slot
      // if it is hot and the incumbent is colder (decayed hits).
      if (popularity_.estimate(phv.kv->key) >= config_.hot_thresh) {
        const bool take =
            !slot.valid || slot.key == phv.kv->key || slot.hits == 0;
        if (take) {
          slot.valid = true;
          slot.key = phv.kv->key;
          slot.value = phv.kv->value;
          slot.hits = 1;
          ++insertions_;
        }
      }
      phv.std_meta.egress_port = config_.client_port;
      return;
    }
    case net::KvHeader::kSet: {
      // Write-through invalidate + update on the way to the server.
      if (slot.valid && slot.key == phv.kv->key) {
        slot.value = phv.kv->value;
      }
      phv.std_meta.egress_port = config_.server_port;
      return;
    }
    default:
      phv.std_meta.drop = true;
      return;
  }
}

void NetCacheProgram::on_timer(const core::TimerEventData& e,
                               core::EventContext&) {
  if (e.cookie != kDecayCookie) {
    return;
  }
  // Approximate LRU: halve every slot's hit counter; a slot that decays to
  // zero becomes replaceable.
  for (auto& s : slots_) {
    s.hits >>= 1;
  }
  // Fast workload adaptation: periodically clear the popularity stats.
  if (config_.clear_every != 0 &&
      ++decay_ticks_ % config_.clear_every == 0) {
    popularity_.reset();
  }
}

}  // namespace edp::apps
