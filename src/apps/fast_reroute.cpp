#include "apps/fast_reroute.hpp"

namespace edp::apps {

void FrrProgram::on_ingress(pisa::Phv& phv, core::EventContext&) {
  if (!phv.ipv4) {
    phv.std_meta.drop = true;
    return;
  }
  for (const auto& r : routes_) {
    if (!r.prefix.matches_prefix(phv.ipv4->dst, 24)) {
      continue;
    }
    if (port_down(r.primary)) {
      phv.std_meta.egress_port = r.backup;
      ++rerouted_;
    } else {
      phv.std_meta.egress_port = r.primary;
    }
    return;
  }
  phv.std_meta.drop = true;
}

void FrrProgram::on_link_status(const core::LinkStatusEventData& e,
                                core::EventContext& ctx) {
  if (e.port >= port_down_.size()) {
    return;
  }
  const bool was_down = port_down_[e.port] != 0;
  port_down_[e.port] = e.up ? 0 : 1;
  if (!e.up && !was_down && activated_at_ == sim::Time::zero()) {
    activated_at_ = ctx.now();
  }
}

void FrrProgram::control_set_port_down(std::uint16_t port, bool down) {
  if (port >= port_down_.size()) {
    return;
  }
  port_down_[port] = down ? 1 : 0;
}

}  // namespace edp::apps
