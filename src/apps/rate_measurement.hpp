// edp::apps — time-windowed flow rate measurement (paper §5 student
// project "Time-Windowed Network Measurement").
//
// "One student group demonstrated how to use timer events in conjunction
// with a simple shift register to accurately measure flow rates in the
// data plane." Per-flow bytes accumulate into the current bucket of a
// shift register; every timer tick shifts; the rate is the window sum over
// its span. Without timer events (baseline), the only recourse is
// packet-clocked window rotation, which silently stops measuring when a
// flow pauses — the comparison bench_table2_apps demonstrates.
#pragma once

#include <cstdint>

#include "stats/rate_estimator.hpp"
#include "topo/routing.hpp"

namespace edp::apps {

struct RateMeasureConfig {
  std::size_t flow_slots = 256;
  std::size_t buckets = 8;
  sim::Time bucket_width = sim::Time::micros(250);
};

class RateMeasureProgram : public topo::L3Program {
 public:
  explicit RateMeasureProgram(RateMeasureConfig config);

  void on_attach(core::EventContext& ctx) override;
  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override;
  void on_timer(const core::TimerEventData& e,
                core::EventContext& ctx) override;

  /// Measured rate for a flow id (bits/second over the sliding window).
  double rate_bps(std::uint32_t flow_id) const {
    return table_.rate_bps(flow_id);
  }

  std::uint64_t ticks() const { return ticks_; }
  std::size_t state_bytes() const { return table_.bytes(); }
  const RateMeasureConfig& config() const { return config_; }

 private:
  RateMeasureConfig config_;
  stats::FlowRateTable table_;
  std::uint64_t ticks_ = 0;
};

}  // namespace edp::apps
