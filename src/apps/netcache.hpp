// edp::apps — NetCache-style in-network key-value cache (Jin et al.,
// reference [13]; paper §3 "In-Network Computing").
//
// "Timer events allow the programmer to write more sophisticated cache
// replacement policies, such as approximate least-recently-used (LRU),
// entirely in the data plane. Timer events can also be used to quickly
// clear all NetCache statistics, which ... would allow the cache to more
// rapidly react to workload changes."
//
// The cache is a hash-indexed slot array; GET hits are answered directly
// by the switch, misses are counted in a CMS and forwarded to the server;
// hot keys are inserted from the reply path. A decay timer halves slot hit
// counters (approximate LRU) and periodically clears the popularity
// statistics (fast workload adaptation) — both pure data-plane maintenance
// that a baseline architecture would need the control plane for.
#pragma once

#include <cstdint>
#include <vector>

#include "core/event_program.hpp"
#include "stats/count_min_sketch.hpp"

namespace edp::apps {

struct NetCacheConfig {
  std::size_t cache_slots = 256;
  std::uint64_t hot_thresh = 8;   ///< CMS count to consider a key hot
  sim::Time decay_period = sim::Time::millis(1);
  /// Clear the popularity sketch every `clear_every` decay ticks
  /// (0 = never clear).
  std::uint32_t clear_every = 8;
  std::uint16_t client_port = 0;
  std::uint16_t server_port = 1;
  net::Ipv4Address server_ip;
};

class NetCacheProgram : public core::EventProgram {
 public:
  explicit NetCacheProgram(NetCacheConfig config);

  void on_attach(core::EventContext& ctx) override;
  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override;
  void on_timer(const core::TimerEventData& e,
                core::EventContext& ctx) override;

  std::uint64_t cache_hits() const { return hits_; }
  std::uint64_t cache_misses() const { return misses_; }
  std::uint64_t server_gets() const { return server_gets_; }
  std::uint64_t insertions() const { return insertions_; }
  double hit_rate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(total);
  }
  bool cached(std::uint64_t key) const;

  const NetCacheConfig& config() const { return config_; }

 private:
  struct Slot {
    bool valid = false;
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    std::uint32_t hits = 0;  ///< decayed by the timer (approximate LRU)
  };

  std::size_t slot_of(std::uint64_t key) const;
  void answer_from_cache(pisa::Phv& phv, const Slot& slot);

  NetCacheConfig config_;
  std::vector<Slot> slots_;
  stats::CountMinSketch popularity_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t server_gets_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint32_t decay_ticks_ = 0;
};

}  // namespace edp::apps
