#include "apps/int_aggregator.hpp"

#include <algorithm>

#include "net/flow.hpp"
#include "net/packet_builder.hpp"

namespace edp::apps {
namespace {
constexpr std::uint64_t kReportCookie = 0x1277;
}  // namespace

IntAggregatorProgram::IntAggregatorProgram(IntAggregatorConfig config)
    : config_(config),
      depth_(config.num_ports, 0),
      drops_since_(config.num_ports, 0),
      flows_(config.flow_slots) {}

void IntAggregatorProgram::on_attach(core::EventContext& ctx) {
  if (ctx.set_periodic_timer(config_.report_period, kReportCookie) == 0) {
    // Baseline target: punt so the control plane can pull reports instead.
    core::ControlEventData punt;
    punt.opcode = core::kOpFacilityUnavailable;
    punt.args[0] = kReportCookie;
    ctx.notify_control_plane(punt);
  }
}

void IntAggregatorProgram::on_ingress(pisa::Phv& phv,
                                      core::EventContext&) {
  route(phv);
  if (!phv.ipv4 || phv.std_meta.drop) {
    return;
  }
  ++naive_postcards_;  // a per-packet INT postcard would leave here
  const std::uint32_t flow_id =
      net::flow_id_src_dst(phv.ipv4->src, phv.ipv4->dst);
  set_enq_meta(phv, 0, flow_id);
  set_deq_meta(phv, 0, flow_id);
}

void IntAggregatorProgram::on_enqueue(const tm_::EnqueueRecord& e,
                                      core::EventContext&) {
  if (e.port < depth_.size()) {
    depth_[e.port] += e.pkt_len;
  }
  flows_.on_enqueue(static_cast<std::uint32_t>(e.enq_meta[0]));
}

void IntAggregatorProgram::on_dequeue(const tm_::DequeueRecord& e,
                                      core::EventContext&) {
  if (e.port < depth_.size()) {
    depth_[e.port] =
        std::max<std::int64_t>(0, depth_[e.port] - e.pkt_len);
  }
  flows_.on_dequeue(static_cast<std::uint32_t>(e.deq_meta[0]));
}

void IntAggregatorProgram::on_overflow(const tm_::DropRecord& e,
                                       core::EventContext&) {
  if (e.port < drops_since_.size()) {
    ++drops_since_[e.port];
  }
}

void IntAggregatorProgram::on_timer(const core::TimerEventData& e,
                                    core::EventContext& ctx) {
  if (e.cookie != kReportCookie) {
    return;
  }
  for (std::uint16_t port = 0; port < config_.num_ports; ++port) {
    const bool anomalous =
        depth_[port] >
            static_cast<std::int64_t>(config_.depth_thresh_bytes) ||
        drops_since_[port] > 0;
    if (!anomalous) {
      ++reports_suppressed_;
      continue;
    }
    net::IntReportHeader rep;
    rep.switch_id = ctx.switch_id();
    rep.queue_id = port;
    rep.flags = net::IntReportHeader::kFlagAnomaly;
    rep.queue_depth_bytes = static_cast<std::uint32_t>(
        std::max<std::int64_t>(0, depth_[port]));
    rep.active_flows = flows_.active_flows();
    rep.drops = drops_since_[port];
    rep.ts_ps = static_cast<std::uint64_t>(ctx.now().ps());
    drops_since_[port] = 0;
    net::Packet p =
        net::PacketBuilder()
            .ethernet(net::MacAddress::from_u64(0x02000000cc00),
                      net::MacAddress::from_u64(0x02000000dd00))
            .ipv4(config_.self_ip, config_.monitor_ip, net::kIpProtoUdp)
            .udp(static_cast<std::uint16_t>(31000 + seq_++),
                 net::kPortIntReport)
            .int_report(rep)
            .pad_to(64)
            .build();
    if (ctx.send_packet(std::move(p), config_.report_port)) {
      ++reports_sent_;
    }
  }
}

}  // namespace edp::apps
