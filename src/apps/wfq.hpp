// edp::apps — programmable packet scheduling: WFQ over a PIFO (paper §3).
//
// "Taking this one step further, we can construct a complete, programmable
// packet scheduler using our event-driven model in combination with the
// recently proposed Push-In-First-Out (PIFO) queue."
//
// Start-time fair queueing on a PIFO: the ingress pipeline computes each
// packet's rank (its virtual start time) from per-flow finish-time state;
// dequeue events advance the scheduler's virtual clock. Weights are
// per-flow, set through the control API — changing the scheduling
// discipline is a program change, not a hardware change.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/routing.hpp"

namespace edp::apps {

struct WfqConfig {
  std::size_t flow_slots = 256;
  std::uint32_t default_weight = 1;
};

class WfqProgram : public topo::L3Program {
 public:
  explicit WfqProgram(WfqConfig config);

  /// Control API: scheduling weight for a flow (by flow id hash).
  void set_weight(std::uint32_t flow_id, std::uint32_t weight);

  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override;
  void on_dequeue(const tm_::DequeueRecord& e,
                  core::EventContext& ctx) override;

  std::uint64_t virtual_time() const { return virtual_time_; }
  std::uint64_t flow_finish(std::uint32_t flow_id) const {
    return finish_[flow_id % finish_.size()];
  }

 private:
  std::size_t slot(std::uint32_t flow_id) const {
    return flow_id % finish_.size();
  }

  WfqConfig config_;
  std::vector<std::uint64_t> finish_;   ///< per-flow virtual finish time
  std::vector<std::uint32_t> weight_;
  std::uint64_t virtual_time_ = 0;
};

}  // namespace edp::apps
