// edp::apps — in-network coordination with chain replication (paper §3,
// Table 2 "In-Network Computing: Coordination", citing NetChain [12]).
//
// "Link status change events enable coordination services, such as
// NetChain, to quickly react to network failures."
//
// A NetChain-style replicated key-value store across a chain of switches:
// writes enter at the head, are stored at every node, and are acknowledged
// by the tail; reads are served by the tail (strong consistency). Each
// node keeps an ordered successor list; a LinkStatusChange event flips a
// port-down register and the very next packet follows the surviving
// successor — sub-microsecond chain repair with no coordination service
// in the control plane.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/event_program.hpp"

namespace edp::apps {

struct ChainNodeConfig {
  /// Port toward the client side (the head receives requests here; the
  /// acting tail emits replies here).
  std::uint16_t client_port = 0;
  /// Successor ports in preference order; empty = this node is the tail.
  std::vector<std::uint16_t> successor_ports;
  std::uint16_t num_ports = 4;
};

class ChainNodeProgram : public core::EventProgram {
 public:
  explicit ChainNodeProgram(ChainNodeConfig config);

  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override;
  void on_link_status(const core::LinkStatusEventData& e,
                      core::EventContext& ctx) override;

  /// First successor whose link is up; -1 if none (acting tail).
  int live_successor() const;
  bool acting_tail() const { return live_successor() < 0; }

  /// Store introspection.
  bool has(std::uint64_t key) const { return store_.contains(key); }
  std::uint64_t value(std::uint64_t key) const {
    const auto it = store_.find(key);
    return it == store_.end() ? 0 : it->second;
  }

  std::uint64_t writes_stored() const { return writes_; }
  std::uint64_t reads_served() const { return reads_; }
  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t repairs() const { return repairs_; }

 private:
  ChainNodeConfig config_;
  std::vector<std::uint8_t> port_down_;
  std::unordered_map<std::uint64_t, std::uint64_t> store_;
  std::uint64_t writes_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t repairs_ = 0;
};

}  // namespace edp::apps
