// edp::apps — the program registry.
//
// One table of every shipped EventProgram, each with a factory that builds
// an analysis-ready instance (routes installed, ports configured) and the
// program's lint overrides. `edp_lint` and the analysis tests iterate this
// table; a new app is registered by adding one entry.
#pragma once

#include <string>
#include <vector>

#include "analysis/analyzer.hpp"

namespace edp::apps {

struct RegisteredProgram {
  std::string name;
  analysis::ProgramFactory factory;
  analysis::LintOverrides lint;
  /// Declared worst-case event rates for the pipeline-mapping pass (e.g.
  /// the expected packet size); unset fields fall back to the hardware
  /// model's worst case.
  analysis::EventRates rates;
  /// Repo-relative path of the program's implementation, for SARIF
  /// code-scanning annotations.
  std::string source;
  /// Register bit-width annotations for the value analysis's overflow
  /// check; unannotated registers assume the simulator's 64-bit cells.
  /// Audit note: only the microburst variants expose probed register
  /// externs today — the other programs keep member state or counters the
  /// probe does not see, so there is nothing to annotate (the value pass
  /// emits `missing-rates` the moment a writer handler appears without a
  /// declared rate, so a silent gap cannot reopen).
  analysis::RegisterWidths widths;
};

/// Every shipped program, in stable (alphabetical) order.
const std::vector<RegisteredProgram>& program_registry();

}  // namespace edp::apps
