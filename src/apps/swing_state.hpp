// edp::apps — data-plane state migration on link failure (paper §3,
// Table 2 "Network Management: Data-plane State Migration", citing
// swing-state [17]).
//
// "re-routing traffic when links fail usually requires the control plane
// to detect the failure, re-route the affected flows, and potentially
// migrate data-plane state from a flow's old path to its new one. By
// introducing link status change events, the data plane can immediately
// respond to link failures, autonomously re-route affected flows and
// migrate data-plane state."
//
// A switch on a flow's path maintains per-flow state (here: a per-flow
// packet/byte accounting register, standing in for a policer/firewall
// state). When the monitored downstream link dies, the LinkStatusChange
// handler serializes every dirty slot into state-carry packets and sends
// them out the migration port toward the switch on the backup path — no
// control plane anywhere. The peer merges them and continues from the
// migrated values.
//
// Wire format (EtherType 0x88b7): slot:u32 | packets:u64 | bytes:u64.
#pragma once

#include <cstdint>
#include <vector>

#include "core/event_program.hpp"

namespace edp::apps {

/// Experimental EtherType for state-carry frames.
inline constexpr std::uint16_t kEtherTypeSwingState = 0x88b7;

struct SwingStateConfig {
  std::size_t flow_slots = 256;
  /// Data packets are forwarded out this port.
  std::uint16_t data_out_port = 1;
  /// Link whose failure triggers migration (usually == data_out_port).
  std::uint16_t monitored_port = 1;
  /// Where state-carry packets go (toward the backup-path switch).
  std::uint16_t migration_port = 2;
};

class SwingStateProgram : public core::EventProgram {
 public:
  explicit SwingStateProgram(SwingStateConfig config);

  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override;
  void on_link_status(const core::LinkStatusEventData& e,
                      core::EventContext& ctx) override;

  std::uint64_t flow_packets(std::uint32_t flow_id) const {
    return packets_[flow_id % packets_.size()];
  }
  std::uint64_t flow_bytes(std::uint32_t flow_id) const {
    return bytes_[flow_id % bytes_.size()];
  }
  std::uint64_t migrated_out() const { return migrated_out_; }
  std::uint64_t migrated_in() const { return migrated_in_; }
  sim::Time migration_started_at() const { return migration_at_; }

 private:
  net::Packet make_state_packet(std::uint32_t slot) const;

  SwingStateConfig config_;
  std::vector<std::uint64_t> packets_;
  std::vector<std::uint64_t> bytes_;
  std::uint64_t migrated_out_ = 0;
  std::uint64_t migrated_in_ = 0;
  sim::Time migration_at_ = sim::Time::zero();
  bool migrated_ = false;
};

}  // namespace edp::apps
