// edp::apps — active queue management (paper §3 "Traffic Management").
//
// "AQM algorithms ... need access to several congestion signals in the
// ingress pipeline ... current queue occupancy, queue service rate,
// queueing delay, packet loss volume, rate of change of the queue size,
// per-active-flow queue occupancy, and number of active flows.
// Event-driven programming gives the user access to all of these signals."
//
// Three AQMs, by architecture capability:
//   * RedAqm       — classic RED as a *fixed-function TM hook*: what a
//                    baseline device ships, not programmable from P4.
//   * FairAqmProgram — FRED-like flow-fair dropping written as an event
//                    program (the §5 student project): enqueue/dequeue
//                    events maintain total occupancy, per-active-flow
//                    occupancy and active flow count; ingress drops flows
//                    exceeding their fair share *before* they enter the
//                    buffer; a timer samples occupancy into INT reports.
//   * PieAqmProgram — PIE (reference [23]): needs queueing delay (dequeue
//                    events) and a periodic probability update (timer
//                    events) — expressible only on the event architecture.
#pragma once

#include <cstdint>
#include <vector>

#include "core/event_program.hpp"
#include "stats/active_flows.hpp"
#include "stats/ewma.hpp"
#include "stats/histogram.hpp"
#include "sim/random.hpp"
#include "tm/traffic_manager.hpp"
#include "topo/routing.hpp"

namespace edp::apps {

/// Classic RED (Floyd & Jacobson), realized as a TrafficManager admission
/// hook — the fixed-function facility of a baseline device. Install with
/// `red.install(tm)`.
class RedAqm {
 public:
  struct Config {
    double min_thresh_bytes = 32 * 1024;
    double max_thresh_bytes = 128 * 1024;
    double max_p = 0.1;
    double weight = 0.002;  ///< EWMA weight for the average queue size
    std::uint64_t seed = 7;
  };

  explicit RedAqm(Config config) : config_(config), rng_(config.seed) {}

  /// Set as `tm.admit` for the ports/queues it should govern.
  void install(tm_::TrafficManager& tm);

  std::uint64_t early_drops() const { return early_drops_; }
  double avg_queue() const { return avg_.value(); }

 private:
  bool admit(const tm_::EnqueueRecord& rec);

  Config config_;
  sim::Random rng_;
  stats::Ewma avg_{0.002};
  std::uint64_t early_drops_ = 0;
};

/// FRED-like flow-fair AQM as an event-driven program (student project of
/// paper §5, "Computing Congestion Signals").
struct FairAqmConfig {
  std::size_t flow_slots = 1024;
  /// Drop an arriving packet when its flow's buffered bytes exceed
  /// `share_factor * total_buffered / active_flows`.
  double share_factor = 2.0;
  /// Fairness only engages above this total occupancy (no starvation when
  /// the buffer is empty).
  std::size_t engage_bytes = 16 * 1024;
  /// Timer-driven occupancy sampling -> INT report to the monitor.
  sim::Time sample_period = sim::Time::millis(1);
  bool send_reports = false;
  std::uint16_t report_port = 0;        ///< switch port toward the monitor
  net::Ipv4Address monitor_ip;
  net::Ipv4Address self_ip;
};

class FairAqmProgram : public topo::L3Program {
 public:
  explicit FairAqmProgram(FairAqmConfig config);

  void on_attach(core::EventContext& ctx) override;
  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override;
  void on_enqueue(const tm_::EnqueueRecord& e,
                  core::EventContext& ctx) override;
  void on_dequeue(const tm_::DequeueRecord& e,
                  core::EventContext& ctx) override;
  void on_overflow(const tm_::DropRecord& e, core::EventContext& ctx) override;
  void on_timer(const core::TimerEventData& e,
                core::EventContext& ctx) override;

  std::uint64_t fairness_drops() const { return fairness_drops_; }
  std::int64_t total_buffered() const { return total_buffered_; }
  std::uint32_t active_flows() const { return flows_.active_flows(); }
  std::int64_t flow_buffered(std::uint32_t flow_id) const;
  std::uint64_t reports_sent() const { return reports_sent_; }
  std::uint64_t loss_volume() const { return loss_volume_; }

 private:
  std::uint32_t slot(std::uint32_t flow_id) const {
    return flow_id % static_cast<std::uint32_t>(config_.flow_slots);
  }

  FairAqmConfig config_;
  std::vector<std::int64_t> flow_bytes_;
  stats::ActiveFlowTracker flows_;
  std::int64_t total_buffered_ = 0;
  std::uint64_t fairness_drops_ = 0;
  std::uint64_t loss_volume_ = 0;  ///< bytes lost to buffer overflow
  std::uint64_t reports_sent_ = 0;
  std::uint16_t report_seq_ = 0;
};

/// PIE (Proportional Integral controller Enhanced), reference [23].
struct PieConfig {
  sim::Time target_delay = sim::Time::micros(100);
  sim::Time update_period = sim::Time::millis(1);
  double alpha = 0.125;  ///< gain on (delay - target)
  double beta = 1.25;    ///< gain on (delay - old_delay)
  std::uint64_t seed = 11;
};

class PieAqmProgram : public topo::L3Program {
 public:
  explicit PieAqmProgram(PieConfig config);

  void on_attach(core::EventContext& ctx) override;
  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override;
  void on_dequeue(const tm_::DequeueRecord& e,
                  core::EventContext& ctx) override;
  void on_timer(const core::TimerEventData& e,
                core::EventContext& ctx) override;

  double drop_probability() const { return drop_prob_; }
  std::uint64_t early_drops() const { return early_drops_; }
  double latest_delay_us() const { return latest_delay_us_; }

 private:
  PieConfig config_;
  sim::Random rng_;
  double drop_prob_ = 0;
  double latest_delay_us_ = 0;
  double prev_delay_us_ = 0;
  std::uint64_t early_drops_ = 0;
};

}  // namespace edp::apps
