// edp::apps — Fast Re-Route on link status events (paper §3 "Network
// Management" and §5 student project "Fast Re-Route").
//
// "By introducing link status change events, the data plane can immediately
// respond to link failures [and] autonomously re-route affected flows."
//
// `FrrProgram` keeps a primary and a backup port per route; a per-port
// "down" register, flipped by the LinkStatusChange handler, steers packets
// to the backup with zero control-plane involvement. The baseline recovery
// path (modeled in bench_claim_frr) is: the MAC raises an interrupt, the
// control plane learns of it after the channel latency, processes, and
// only then rewrites the routes via `control_set_port_down` — every packet
// sent to the dead port in between is lost.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/routing.hpp"

namespace edp::apps {

struct FrrRoute {
  net::Ipv4Address prefix;  ///< /24
  std::uint16_t primary = 0;
  std::uint16_t backup = 0;
};

class FrrProgram : public core::EventProgram {
 public:
  explicit FrrProgram(std::uint16_t num_ports) : port_down_(num_ports, 0) {}

  void add_route(const FrrRoute& route) { routes_.push_back(route); }

  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override;

  /// Data-plane reaction: flip the port-down register the moment the event
  /// arrives. On a baseline architecture this handler is never invoked.
  void on_link_status(const core::LinkStatusEventData& e,
                      core::EventContext& ctx) override;

  /// Control-plane entry point (the baseline path; also used to model CP
  /// cleanup after data-plane FRR).
  void control_set_port_down(std::uint16_t port, bool down);

  bool port_down(std::uint16_t port) const {
    return port < port_down_.size() && port_down_[port] != 0;
  }
  std::uint64_t rerouted() const { return rerouted_; }
  sim::Time reroute_activated_at() const { return activated_at_; }

 private:
  std::vector<FrrRoute> routes_;
  std::vector<std::uint8_t> port_down_;
  std::uint64_t rerouted_ = 0;
  sim::Time activated_at_ = sim::Time::zero();
};

}  // namespace edp::apps
