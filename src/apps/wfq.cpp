#include "apps/wfq.hpp"

#include <algorithm>

#include "net/flow.hpp"

namespace edp::apps {

WfqProgram::WfqProgram(WfqConfig config)
    : config_(config),
      finish_(config.flow_slots, 0),
      weight_(config.flow_slots, config.default_weight) {}

void WfqProgram::set_weight(std::uint32_t flow_id, std::uint32_t weight) {
  weight_[slot(flow_id)] = std::max<std::uint32_t>(1, weight);
}

void WfqProgram::on_ingress(pisa::Phv& phv, core::EventContext&) {
  route(phv);
  if (!phv.ipv4 || phv.std_meta.drop) {
    return;
  }
  const std::uint32_t flow_id =
      net::flow_id_src_dst(phv.ipv4->src, phv.ipv4->dst);
  const std::size_t s = slot(flow_id);
  // Start-time fair queueing: start tag = max(V, F[f]); the PIFO serves
  // packets in start-tag order, which is weighted-fair in bytes.
  const std::uint64_t start = std::max(virtual_time_, finish_[s]);
  // Virtual length = bytes / weight, scaled to keep integer precision.
  const std::uint64_t vlen =
      (static_cast<std::uint64_t>(phv.std_meta.packet_length) * 1024) /
      weight_[s];
  finish_[s] = start + vlen;
  phv.std_meta.pifo_rank = start;
  // Carry the start tag to the dequeue handler through deq_meta.
  set_deq_meta(phv, 0, start);
}

void WfqProgram::on_dequeue(const tm_::DequeueRecord& e,
                            core::EventContext&) {
  // The virtual clock advances to the start tag of the packet being
  // served — dequeue events give the scheduler its time base.
  virtual_time_ = std::max(virtual_time_, e.deq_meta[0]);
}

}  // namespace edp::apps
