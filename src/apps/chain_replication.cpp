#include "apps/chain_replication.hpp"

namespace edp::apps {

ChainNodeProgram::ChainNodeProgram(ChainNodeConfig config)
    : config_(std::move(config)), port_down_(config_.num_ports, 0) {}

int ChainNodeProgram::live_successor() const {
  for (const std::uint16_t p : config_.successor_ports) {
    if (p < port_down_.size() && port_down_[p] == 0) {
      return p;
    }
  }
  return -1;
}

void ChainNodeProgram::on_ingress(pisa::Phv& phv, core::EventContext&) {
  if (!phv.kv || !phv.ipv4 || !phv.udp || !phv.eth) {
    phv.std_meta.drop = true;  // chain nodes only speak the KV protocol
    return;
  }
  const int succ = live_successor();
  switch (phv.kv->op) {
    case net::KvHeader::kSet: {
      // Every replica stores the write on its way down the chain.
      store_[phv.kv->key] = phv.kv->value;
      ++writes_;
      if (succ >= 0) {
        ++forwarded_;
        phv.std_meta.egress_port = static_cast<std::uint16_t>(succ);
        return;
      }
      // Acting tail: the write is committed; acknowledge to the client.
      std::swap(phv.eth->src, phv.eth->dst);
      std::swap(phv.ipv4->src, phv.ipv4->dst);
      std::swap(phv.udp->src_port, phv.udp->dst_port);
      phv.kv->op = net::KvHeader::kReply;
      phv.std_meta.egress_port = config_.client_port;
      return;
    }
    case net::KvHeader::kGet: {
      if (succ >= 0) {
        // Reads are answered by the tail for strong consistency.
        ++forwarded_;
        phv.std_meta.egress_port = static_cast<std::uint16_t>(succ);
        return;
      }
      ++reads_;
      std::swap(phv.eth->src, phv.eth->dst);
      std::swap(phv.ipv4->src, phv.ipv4->dst);
      std::swap(phv.udp->src_port, phv.udp->dst_port);
      phv.kv->op = net::KvHeader::kReply;
      phv.kv->value = value(phv.kv->key);
      phv.std_meta.egress_port = config_.client_port;
      return;
    }
    default:
      phv.std_meta.drop = true;
      return;
  }
}

void ChainNodeProgram::on_link_status(const core::LinkStatusEventData& e,
                                      core::EventContext&) {
  if (e.port >= port_down_.size()) {
    return;
  }
  const bool was_down = port_down_[e.port] != 0;
  port_down_[e.port] = e.up ? 0 : 1;
  if (!e.up && !was_down) {
    // Chain repair happened the instant this handler ran: subsequent
    // packets take the surviving successor (or this node acts as tail).
    ++repairs_;
  }
}

}  // namespace edp::apps
