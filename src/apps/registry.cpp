#include "apps/registry.hpp"

#include <memory>
#include <utility>

#include "apps/aqm.hpp"
#include "apps/chain_replication.hpp"
#include "apps/cms_monitor.hpp"
#include "apps/ecn_marking.hpp"
#include "apps/fast_reroute.hpp"
#include "apps/hula.hpp"
#include "apps/int_aggregator.hpp"
#include "apps/liveness.hpp"
#include "apps/microburst.hpp"
#include "apps/ndp_trim.hpp"
#include "apps/netcache.hpp"
#include "apps/policer.hpp"
#include "apps/rate_measurement.hpp"
#include "apps/snappy_baseline.hpp"
#include "apps/swing_state.hpp"
#include "apps/wfq.hpp"

namespace edp::apps {
namespace {

/// Factory for an L3Program-derived app: construct and install a default
/// route so the analyzer's stimuli actually traverse the pipeline.
template <typename Program, typename Config>
analysis::ProgramFactory l3_factory(Config config) {
  return [config]() -> std::unique_ptr<core::EventProgram> {
    auto program = std::make_unique<Program>(config);
    program->add_route(net::Ipv4Address(10, 0, 0, 0), 8, /*port=*/1);
    return program;
  };
}

std::vector<RegisteredProgram> build_registry() {
  std::vector<RegisteredProgram> r;
  analysis::LintOverrides none;
  analysis::LintOverrides member_state_buffers;
  // These programs consume buffer events into plain member state (no
  // registers, no facility calls from those handlers), which the probe
  // cannot observe; without the override the unused-meta note would fire.
  member_state_buffers.handles_buffer_events = true;

  // Rate annotation for datacenter forwarding apps: ~700B average frames
  // (the mixed mice/elephants distribution), not the 84B worst case. The
  // pipeline-mapping pass scales the packet slot rate accordingly.
  analysis::EventRates dc_mix;
  dc_mix.avg_packet_bytes = 700;
  // Control-plane-style apps see no line-rate data traffic at all.
  analysis::EventRates control_paced;
  control_paced.avg_packet_bytes = 1500;
  control_paced.set(analysis::Handler::kIngress, 1e6);
  // Key-value RPC traffic (netcache): small query/reply frames dominate.
  analysis::EventRates kv_mix;
  kv_mix.avg_packet_bytes = 256;
  // Bulk data transport (ndp-trim): MTU-size data packets are the common
  // case — trimming them to headers under congestion is the app.
  analysis::EventRates mtu_data;
  mtu_data.avg_packet_bytes = 1500;

  {
    ChainNodeConfig c;
    c.successor_ports = {2, 3};
    r.push_back({"chain-replication",
                 [c]() { return std::make_unique<ChainNodeProgram>(c); },
                 none, dc_mix, "src/apps/chain_replication.cpp", {}});
  }
  r.push_back({"cms-monitor", l3_factory<CmsMonitorProgram>(CmsMonitorConfig{}),
               none, dc_mix, "src/apps/cms_monitor.cpp", {}});
  r.push_back({"ecn-marking", l3_factory<MultiBitEcnProgram>(EcnMarkConfig{}),
               member_state_buffers, dc_mix, "src/apps/ecn_marking.cpp", {}});
  {
    FairAqmConfig c;
    c.send_reports = true;
    c.report_port = 3;
    c.monitor_ip = net::Ipv4Address(10, 9, 9, 9);
    c.self_ip = net::Ipv4Address(10, 0, 0, 254);
    r.push_back({"fair-aqm", l3_factory<FairAqmProgram>(c),
                 member_state_buffers, dc_mix, "src/apps/aqm.cpp", {}});
  }
  r.push_back({"fast-reroute",
               []() { return std::make_unique<FrrProgram>(4); }, none, dc_mix,
               "src/apps/fast_reroute.cpp", {}});
  {
    HulaSpineConfig c;
    c.num_tors = 2;
    c.tor_port = {1, 2};
    r.push_back({"hula-spine",
                 [c]() { return std::make_unique<HulaSpineProgram>(c); },
                 none, dc_mix, "src/apps/hula.cpp", {}});
  }
  {
    HulaTorConfig c;
    c.tor_id = 1;
    c.host_port = 0;
    c.uplink_ports = {1, 2};
    r.push_back({"hula-tor",
                 [c]() { return std::make_unique<HulaTorProgram>(c); },
                 member_state_buffers, dc_mix, "src/apps/hula.cpp", {}});
  }
  r.push_back({"int-aggregator",
               l3_factory<IntAggregatorProgram>(IntAggregatorConfig{}),
               member_state_buffers, control_paced,
               "src/apps/int_aggregator.cpp", {}});
  {
    LivenessConfig c;
    c.self_id = 1;
    c.monitored_ports = {1, 2};
    c.monitor_port = 3;
    r.push_back({"liveness",
                 [c]() { return std::make_unique<LivenessProgram>(c); },
                 none, control_paced, "src/apps/liveness.cpp", {}});
  }
  {
    MicroburstConfig c;
    c.state = StateModel::kAggregated;
    // bufSize_reg tracks per-flow queued bytes; real switch byte counters
    // are 48-bit. At dc_mix rates (~1.4e8 pkt/s x 700B) the interval grows
    // ~1e11/s — comfortably inside 2^47 over the 1s analysis horizon, and
    // the annotation makes the overflow check meaningful rather than
    // vacuous at the 64-bit default.
    analysis::RegisterWidths burst_widths;
    burst_widths.set("bufSize_reg", 48);
    r.push_back({"microburst-aggregated", l3_factory<MicroburstProgram>(c),
                 none, dc_mix, "src/apps/microburst.cpp", burst_widths});
    // microburst-shared is the optimizer's acceptance target: its 3-port
    // SharedRegister cannot map onto linerate-tor naively, but
    // `edp_lint --optimize` rewrites it into the aggregated realization
    // (MicroburstProgram::realize_aggregated) and proves the result.
    c.state = StateModel::kShared;
    r.push_back({"microburst-shared", l3_factory<MicroburstProgram>(c),
                 none, dc_mix, "src/apps/microburst.cpp", burst_widths});
  }
  r.push_back({"meter-policer",
               []() -> std::unique_ptr<core::EventProgram> {
                 auto p = std::make_unique<MeterPolicerProgram>(
                     /*flow_slots=*/256, pisa::Meter::Config{});
                 p->add_route(net::Ipv4Address(10, 0, 0, 0), 8, 1);
                 return p;
               },
               none, dc_mix, "src/apps/policer.cpp", {}});
  r.push_back({"ndp-trim", l3_factory<NdpTrimProgram>(NdpTrimConfig{}),
               member_state_buffers, mtu_data, "src/apps/ndp_trim.cpp", {}});
  {
    NetCacheConfig c;
    c.client_port = 0;
    c.server_port = 1;
    c.server_ip = net::Ipv4Address(10, 0, 1, 2);
    r.push_back({"netcache",
                 [c]() { return std::make_unique<NetCacheProgram>(c); },
                 none, kv_mix, "src/apps/netcache.cpp", {}});
  }
  r.push_back({"pie-aqm", l3_factory<PieAqmProgram>(PieConfig{}), none, dc_mix,
               "src/apps/aqm.cpp", {}});
  r.push_back({"rate-measurement",
               l3_factory<RateMeasureProgram>(RateMeasureConfig{}), none,
               dc_mix, "src/apps/rate_measurement.cpp", {}});
  r.push_back({"snappy-baseline", l3_factory<SnappyProgram>(SnappyConfig{}),
               none, dc_mix, "src/apps/snappy_baseline.cpp", {}});
  r.push_back({"swing-state",
               []() {
                 return std::make_unique<SwingStateProgram>(SwingStateConfig{});
               },
               none, dc_mix, "src/apps/swing_state.cpp", {}});
  r.push_back({"timer-token-bucket",
               l3_factory<TimerTokenBucketProgram>(TokenBucketConfig{}),
               none, dc_mix, "src/apps/policer.cpp", {}});
  r.push_back({"wfq", l3_factory<WfqProgram>(WfqConfig{}),
               member_state_buffers, dc_mix, "src/apps/wfq.cpp", {}});
  return r;
}

}  // namespace

const std::vector<RegisteredProgram>& program_registry() {
  static const std::vector<RegisteredProgram> registry = build_registry();
  return registry;
}

}  // namespace edp::apps
