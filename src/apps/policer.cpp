#include "apps/policer.hpp"

#include <algorithm>
#include <cmath>

#include "net/flow.hpp"

namespace edp::apps {

TimerTokenBucketProgram::TimerTokenBucketProgram(TokenBucketConfig config)
    : config_(config),
      tokens_(config.flow_slots,
              static_cast<std::int64_t>(config.burst_bytes)) {
  refill_amount_ = static_cast<std::int64_t>(std::llround(
      config_.rate_bytes_per_sec * config_.refill_period.as_seconds()));
}

void TimerTokenBucketProgram::on_attach(core::EventContext& ctx) {
  if (ctx.set_periodic_timer(config_.refill_period, /*cookie=*/0x70c) == 0) {
    // Baseline target: punt so the control plane can drive refills.
    core::ControlEventData punt;
    punt.opcode = core::kOpFacilityUnavailable;
    punt.args[0] = 0x70c;
    ctx.notify_control_plane(punt);
  }
}

void TimerTokenBucketProgram::on_ingress(pisa::Phv& phv,
                                         core::EventContext&) {
  route(phv);
  if (!phv.ipv4 || phv.std_meta.drop) {
    return;
  }
  const std::uint32_t flow_id =
      net::flow_id_src_dst(phv.ipv4->src, phv.ipv4->dst);
  auto& bucket = tokens_[flow_id % tokens_.size()];
  const auto len = static_cast<std::int64_t>(phv.std_meta.packet_length);
  if (bucket >= len) {
    bucket -= len;
    ++conformant_;
  } else {
    phv.std_meta.drop = true;
    ++policed_;
  }
}

void TimerTokenBucketProgram::on_timer(const core::TimerEventData& e,
                                       core::EventContext&) {
  if (e.cookie != 0x70c) {
    return;
  }
  const auto cap = static_cast<std::int64_t>(config_.burst_bytes);
  for (auto& bucket : tokens_) {
    bucket = std::min(cap, bucket + refill_amount_);
  }
}

MeterPolicerProgram::MeterPolicerProgram(std::size_t flow_slots,
                                         pisa::Meter::Config meter)
    : meter_("policer", flow_slots, meter) {}

void MeterPolicerProgram::on_ingress(pisa::Phv& phv,
                                     core::EventContext& ctx) {
  route(phv);
  if (!phv.ipv4 || phv.std_meta.drop) {
    return;
  }
  const std::uint32_t flow_id =
      net::flow_id_src_dst(phv.ipv4->src, phv.ipv4->dst);
  const pisa::MeterColor color =
      meter_.execute(flow_id, phv.std_meta.packet_length, ctx.now());
  if (color == pisa::MeterColor::kRed) {
    phv.std_meta.drop = true;
    ++policed_;
  } else {
    ++conformant_;
  }
}

}  // namespace edp::apps
