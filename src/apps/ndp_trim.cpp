#include "apps/ndp_trim.hpp"

#include <algorithm>

namespace edp::apps {

NdpTrimProgram::NdpTrimProgram(NdpTrimConfig config)
    : config_(config), depth_(config.num_ports, 0) {}

void NdpTrimProgram::on_ingress(pisa::Phv& phv, core::EventContext&) {
  route(phv);
  if (!phv.ipv4 || phv.std_meta.drop) {
    return;
  }
  const std::uint16_t out = phv.std_meta.egress_port;
  if (out < depth_.size() &&
      depth_[out] > static_cast<std::int64_t>(config_.trim_thresh_bytes)) {
    // Trim: discard the payload (the deparser re-emits the headers with a
    // recomputed IPv4 length/checksum) and escalate to the priority queue.
    phv.payload_offset = phv.packet.size();
    phv.ipv4->ecn = 3;  // CE mark so endpoints see the congestion too
    phv.std_meta.qid = config_.priority_qid;
    ++trimmed_;
  } else {
    phv.std_meta.qid = config_.data_qid;
  }
}

void NdpTrimProgram::on_enqueue(const tm_::EnqueueRecord& e,
                                core::EventContext&) {
  if (e.port < depth_.size()) {
    depth_[e.port] += e.pkt_len;
  }
}

void NdpTrimProgram::on_dequeue(const tm_::DequeueRecord& e,
                                core::EventContext&) {
  if (e.port < depth_.size()) {
    depth_[e.port] = std::max<std::int64_t>(0, depth_[e.port] - e.pkt_len);
  }
}

}  // namespace edp::apps
