#include "apps/ecn_marking.hpp"

#include <algorithm>

namespace edp::apps {

MultiBitEcnProgram::MultiBitEcnProgram(EcnMarkConfig config)
    : config_(config), depth_(config.num_ports, 0) {}

std::uint8_t MultiBitEcnProgram::level_of(std::int64_t depth_bytes) const {
  if (depth_bytes <= 0) {
    return 0;
  }
  const auto level = static_cast<std::uint64_t>(depth_bytes) /
                     config_.quantum_bytes;
  return static_cast<std::uint8_t>(std::min<std::uint64_t>(63, level));
}

void MultiBitEcnProgram::on_ingress(pisa::Phv& phv, core::EventContext&) {
  route(phv);
  if (!phv.ipv4 || phv.std_meta.drop) {
    return;
  }
  const std::uint16_t out = phv.std_meta.egress_port;
  if (out < depth_.size()) {
    // Fold the local occupancy into the DSCP with a max(): downstream the
    // field ends up carrying the bottleneck's occupancy level.
    const std::uint8_t level = level_of(depth_[out]);
    if (level > phv.ipv4->dscp) {
      phv.ipv4->dscp = level;
      ++marked_;
    }
  }
}

void MultiBitEcnProgram::on_enqueue(const tm_::EnqueueRecord& e,
                                    core::EventContext&) {
  if (e.port < depth_.size()) {
    depth_[e.port] += e.pkt_len;
  }
}

void MultiBitEcnProgram::on_dequeue(const tm_::DequeueRecord& e,
                                    core::EventContext&) {
  if (e.port < depth_.size()) {
    depth_[e.port] =
        std::max<std::int64_t>(0, depth_[e.port] - e.pkt_len);
  }
}

}  // namespace edp::apps
