// edp::apps — Count-Min-Sketch heavy-hitter monitor with periodic reset
// (paper §1: "When a CMS is used in a baseline PISA architecture, the
// control plane must be responsible for performing the reset operation.
// This can lead to significant overhead for the control plane, especially
// if the data structure must be frequently reset.")
//
// Event-driven mode: on_attach installs a periodic timer; on_timer resets
// the sketch in the data plane — zero control-plane involvement.
// Baseline mode: the timer request is refused; a ControlPlaneAgent must
// call `control_reset()` on its own schedule, paying channel latency per
// reset and one CP message per reset (bench_claim_cms_reset counts both).
#pragma once

#include <cstdint>
#include <vector>

#include "stats/count_min_sketch.hpp"
#include "stats/histogram.hpp"
#include "topo/routing.hpp"

namespace edp::apps {

struct CmsMonitorConfig {
  std::size_t width = 2048;
  std::size_t depth = 3;
  sim::Time reset_period = sim::Time::millis(10);
  /// Flows whose estimate exceeds this within one period are heavy hitters.
  std::uint64_t heavy_thresh = 1000;
};

class CmsMonitorProgram : public topo::L3Program {
 public:
  explicit CmsMonitorProgram(CmsMonitorConfig config);

  void on_attach(core::EventContext& ctx) override;
  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override;
  void on_timer(const core::TimerEventData& e,
                core::EventContext& ctx) override;

  /// Control-plane reset entry point (baseline mode). `when` is the time
  /// the reset takes effect (after CP channel latency).
  void control_reset(sim::Time when);

  std::uint64_t estimate(std::uint32_t flow_id) const {
    return cms_.estimate(flow_id);
  }
  const stats::CountMinSketch& sketch() const { return cms_; }

  std::uint64_t resets() const { return resets_; }
  std::uint64_t heavy_detections() const { return heavy_detections_; }
  /// Observed reset-interval error vs. the configured period, in
  /// microseconds (jitter of the maintenance operation).
  const stats::Summary& reset_jitter_us() const { return jitter_; }

  const CmsMonitorConfig& config() const { return config_; }

 private:
  void do_reset(sim::Time now);

  CmsMonitorConfig config_;
  stats::CountMinSketch cms_;
  std::uint64_t resets_ = 0;
  std::uint64_t heavy_detections_ = 0;
  sim::Time last_reset_ = sim::Time::zero();
  stats::Summary jitter_;
};

}  // namespace edp::apps
