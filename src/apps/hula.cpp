#include "apps/hula.hpp"

#include <algorithm>
#include <cassert>

#include "core/event_switch.hpp"
#include "net/packet_builder.hpp"

namespace edp::apps {
namespace {

/// Unknown paths start saturated so any real probe immediately wins.
constexpr std::uint32_t kUtilUnknown = 0xffffffffU;

std::uint32_t util_permille(const stats::DecayingRate& rate, double port_bps,
                            sim::Time now) {
  const double bps = rate.bytes_per_sec(now) * 8.0;
  return static_cast<std::uint32_t>(
      std::min(4000.0, 1000.0 * bps / port_bps));
}

}  // namespace

// ---- ToR --------------------------------------------------------------------

HulaTorProgram::HulaTorProgram(HulaTorConfig config)
    : config_(std::move(config)),
      path_util_(config_.num_tors,
                 std::vector<std::uint32_t>(config_.uplink_ports.size(),
                                            kUtilUnknown)) {
  uplink_rate_.reserve(config_.uplink_ports.size());
  for (std::size_t i = 0; i < config_.uplink_ports.size(); ++i) {
    uplink_rate_.emplace_back(config_.util_tau);
  }
}

net::Packet HulaTorProgram::make_probe(std::size_t uplink_index) const {
  net::HulaProbeHeader probe;
  probe.tor_id = config_.tor_id;
  probe.path_util_permille = 0;  // stamped at origination
  probe.origin_ts_ps = 0;        // stamped at origination
  // The uplink index rides in the destination MAC so on_generated knows
  // which port this template targets (generator ids don't reach the PHV).
  return net::PacketBuilder()
      .ethernet(net::MacAddress::from_u64(0x0200000000a0 + config_.tor_id),
                net::MacAddress::from_u64(uplink_index),
                net::kEtherTypeHula)
      .hula_probe(probe)
      .pad_to(64)
      .build();
}

void HulaTorProgram::on_attach(core::EventContext& ctx) {
  // One generator per uplink. On a baseline architecture these calls are
  // refused (return 0) and the CP must inject probes instead — punt once
  // so it knows to.
  bool refused = false;
  for (std::size_t i = 0; i < config_.uplink_ports.size(); ++i) {
    core::PacketGenerator::Config g;
    g.packet_template = make_probe(i);
    g.period = config_.probe_period;
    g.start_immediately = false;
    refused = ctx.add_generator(std::move(g)) == 0 || refused;
  }
  if (refused) {
    core::ControlEventData punt;
    punt.opcode = core::kOpFacilityUnavailable;
    punt.args[0] = config_.tor_id;
    ctx.notify_control_plane(punt);
  }
}

void HulaTorProgram::on_generated(pisa::Phv& phv, core::EventContext& ctx) {
  if (!phv.hula || !phv.eth) {
    phv.std_meta.drop = true;
    return;
  }
  // Probe origination: stamp time, send out the uplink encoded in the
  // template's destination MAC. Utilization starts at zero — probes record
  // the utilization of links in the direction *toward this ToR* (the
  // direction data will flow), which downstream switches fill in.
  const auto uplink = static_cast<std::size_t>(phv.eth->dst.to_u64() %
                                               config_.uplink_ports.size());
  phv.hula->origin_ts_ps = static_cast<std::uint64_t>(ctx.now().ps());
  phv.hula->path_util_permille = 0;
  phv.std_meta.egress_port = config_.uplink_ports[uplink];
  ++probes_tx_;
}

void HulaTorProgram::on_ingress(pisa::Phv& phv, core::EventContext& ctx) {
  if (phv.hula) {
    // CP-injected probes (baseline mode) arrive at ingress from the CPU
    // port still unstamped: originate them here.
    if (phv.std_meta.ingress_port == core::kPortCpu && phv.eth) {
      const auto uplink = static_cast<std::size_t>(
          phv.eth->dst.to_u64() % config_.uplink_ports.size());
      // origin_ts was stamped by the CP when it built the packet, so CP
      // channel latency counts against freshness, as it should.
      phv.hula->path_util_permille = 0;
      phv.std_meta.egress_port = config_.uplink_ports[uplink];
      ++probes_tx_;
      return;
    }
    handle_probe(phv, ctx);
    return;
  }
  forward_data(phv, ctx);
}

void HulaTorProgram::handle_probe(pisa::Phv& phv, core::EventContext& ctx) {
  // A probe advertising the path toward phv.hula->tor_id arrived on an
  // uplink; record it and consume the probe.
  const std::uint16_t in_port = phv.std_meta.ingress_port;
  const auto it = std::find(config_.uplink_ports.begin(),
                            config_.uplink_ports.end(), in_port);
  if (it == config_.uplink_ports.end() ||
      phv.hula->tor_id >= config_.num_tors) {
    phv.std_meta.drop = true;
    return;
  }
  const auto uplink =
      static_cast<std::size_t>(it - config_.uplink_ports.begin());
  // Complete the path with the first hop data will take from here: this
  // ToR's own uplink toward the spine (local tx utilization).
  path_util_[phv.hula->tor_id][uplink] =
      std::max(phv.hula->path_util_permille,
               local_util_permille(uplink, ctx.now()));
  ++probes_rx_;
  const sim::Time staleness =
      ctx.now() - sim::Time(static_cast<std::int64_t>(phv.hula->origin_ts_ps));
  staleness_.add(staleness.as_micros());
  phv.std_meta.drop = true;  // probes terminate here
}

std::uint32_t HulaTorProgram::dst_tor_of(net::Ipv4Address dst) const {
  for (const auto& s : config_.subnets) {
    if (s.prefix.matches_prefix(dst, 24)) {
      return s.tor_id;
    }
  }
  return kUtilUnknown;
}

void HulaTorProgram::forward_data(pisa::Phv& phv, core::EventContext&) {
  if (!phv.ipv4) {
    phv.std_meta.drop = true;
    return;
  }
  const std::uint32_t tor = dst_tor_of(phv.ipv4->dst);
  if (tor == kUtilUnknown) {
    phv.std_meta.drop = true;
    return;
  }
  if (tor == config_.tor_id) {
    phv.std_meta.egress_port = config_.host_port;  // local delivery
  } else {
    phv.std_meta.egress_port = best_uplink(tor);
  }
  ++data_fwd_;
}

std::uint16_t HulaTorProgram::best_uplink(std::uint32_t tor) const {
  assert(tor < config_.num_tors && !config_.uplink_ports.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < config_.uplink_ports.size(); ++i) {
    if (path_util_[tor][i] < path_util_[tor][best]) {
      best = i;
    }
  }
  return config_.uplink_ports[best];
}

std::uint32_t HulaTorProgram::path_util(std::uint32_t tor,
                                        std::size_t i) const {
  return path_util_[tor][i];
}

void HulaTorProgram::on_enqueue(const tm_::EnqueueRecord& e,
                                core::EventContext&) {
  // Track utilization of the uplinks from buffer enqueue events.
  const auto it = std::find(config_.uplink_ports.begin(),
                            config_.uplink_ports.end(), e.port);
  if (it == config_.uplink_ports.end()) {
    return;
  }
  const auto i =
      static_cast<std::size_t>(it - config_.uplink_ports.begin());
  uplink_rate_[i].observe(e.pkt_len, e.when);
}

std::uint32_t HulaTorProgram::local_util_permille(std::size_t i,
                                                  sim::Time now) const {
  return util_permille(uplink_rate_[i], config_.port_rate_bps, now);
}

// ---- Spine -------------------------------------------------------------------

HulaSpineProgram::HulaSpineProgram(HulaSpineConfig config)
    : config_(std::move(config)) {
  port_rate_.reserve(config_.tor_port.size());
  for (std::size_t i = 0; i < config_.tor_port.size(); ++i) {
    port_rate_.emplace_back(config_.util_tau);
  }
}

std::uint32_t HulaSpineProgram::port_tor(std::uint16_t port) const {
  for (std::size_t t = 0; t < config_.tor_port.size(); ++t) {
    if (config_.tor_port[t] == port) {
      return static_cast<std::uint32_t>(t);
    }
  }
  return 0xffffffffU;
}

void HulaSpineProgram::on_ingress(pisa::Phv& phv, core::EventContext& ctx) {
  if (phv.hula) {
    // Relay the probe to the other ToR(s); with two ToRs this is the single
    // port that is not the arrival port. The probe accumulates the max
    // utilization along its path.
    const std::uint32_t from_tor = port_tor(phv.std_meta.ingress_port);
    if (from_tor == 0xffffffffU) {
      phv.std_meta.drop = true;  // probe from a non-ToR port
      return;
    }
    // The probe advertises the path TOWARD its originating ToR, so the
    // relevant link here is this spine's egress toward that origin — the
    // port the probe arrived on (data to the origin flows out of it).
    phv.hula->path_util_permille =
        std::max(phv.hula->path_util_permille,
                 util_permille(port_rate_[from_tor], config_.port_rate_bps,
                               ctx.now()));
    if (config_.probe_mcast_base != 0) {
      // Flood to every other ToR through the replication engine.
      phv.std_meta.mcast_group = static_cast<std::uint16_t>(
          config_.probe_mcast_base + from_tor);
      ++probes_relayed_;
      return;
    }
    std::uint32_t target = 0xffffffffU;
    for (std::size_t t = 0; t < config_.tor_port.size(); ++t) {
      if (static_cast<std::uint32_t>(t) != from_tor) {
        target = static_cast<std::uint32_t>(t);
      }
    }
    if (target == 0xffffffffU) {
      phv.std_meta.drop = true;
      return;
    }
    phv.std_meta.egress_port = config_.tor_port[target];
    ++probes_relayed_;
    return;
  }
  // Data packets: route to the ToR owning the destination subnet.
  if (!phv.ipv4) {
    phv.std_meta.drop = true;
    return;
  }
  for (const auto& s : config_.subnets) {
    if (s.prefix.matches_prefix(phv.ipv4->dst, 24) &&
        s.tor_id < config_.tor_port.size()) {
      phv.std_meta.egress_port = config_.tor_port[s.tor_id];
      return;
    }
  }
  phv.std_meta.drop = true;
}

void HulaSpineProgram::on_enqueue(const tm_::EnqueueRecord& e,
                                  core::EventContext&) {
  const std::uint32_t tor = port_tor(e.port);
  if (tor != 0xffffffffU) {
    port_rate_[tor].observe(e.pkt_len, e.when);
  }
}

}  // namespace edp::apps
