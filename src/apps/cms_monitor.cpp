#include "apps/cms_monitor.hpp"

#include <cmath>

#include "net/flow.hpp"

namespace edp::apps {

CmsMonitorProgram::CmsMonitorProgram(CmsMonitorConfig config)
    : config_(config), cms_(config.width, config.depth) {}

void CmsMonitorProgram::on_attach(core::EventContext& ctx) {
  // Event-driven architectures grant this; baselines refuse (returns 0)
  // and the control plane must drive control_reset instead.
  if (ctx.set_periodic_timer(config_.reset_period, /*cookie=*/0xc35) == 0) {
    core::ControlEventData punt;
    punt.opcode = core::kOpFacilityUnavailable;
    punt.args[0] = 0xc35;
    ctx.notify_control_plane(punt);
  }
}

void CmsMonitorProgram::on_ingress(pisa::Phv& phv, core::EventContext&) {
  route(phv);
  if (!phv.ipv4 || phv.std_meta.drop) {
    return;
  }
  const std::uint32_t flow_id =
      net::flow_id_src_dst(phv.ipv4->src, phv.ipv4->dst);
  cms_.update(flow_id, 1);
  if (cms_.estimate(flow_id) == config_.heavy_thresh) {
    ++heavy_detections_;  // first crossing within this period
  }
}

void CmsMonitorProgram::on_timer(const core::TimerEventData& e,
                                 core::EventContext&) {
  if (e.cookie != 0xc35) {
    return;
  }
  do_reset(e.fired_at);
}

void CmsMonitorProgram::control_reset(sim::Time when) { do_reset(when); }

void CmsMonitorProgram::do_reset(sim::Time now) {
  if (resets_ > 0) {
    const double interval_us = (now - last_reset_).as_micros();
    jitter_.add(std::abs(interval_us - config_.reset_period.as_micros()));
  }
  last_reset_ = now;
  ++resets_;
  cms_.reset();
}

}  // namespace edp::apps
