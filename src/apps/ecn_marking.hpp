// edp::apps — multi-bit ECN marking from buffer events (paper §3).
//
// "This allows for variants of ECN marking, with packets carrying multiple
// bits rather than just one, to communicate queue occupancy along the
// path, or just the maximum queue occupancy at the bottleneck."
//
// Per-port queue occupancy is maintained from enqueue/dequeue events; the
// ingress pipeline quantizes the occupancy of the packet's *chosen egress
// port* into a 6-bit level and folds it into the IPv4 DSCP field with a
// max() — so the receiver reads the occupancy of the most congested queue
// on the path. A baseline PISA program cannot do this: ingress has no view
// of queue state without the buffer events.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/routing.hpp"

namespace edp::apps {

struct EcnMarkConfig {
  std::uint16_t num_ports = 4;
  /// Bytes per DSCP step; level = min(63, depth / quantum).
  std::size_t quantum_bytes = 2048;
};

class MultiBitEcnProgram : public topo::L3Program {
 public:
  explicit MultiBitEcnProgram(EcnMarkConfig config);

  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override;
  void on_enqueue(const tm_::EnqueueRecord& e,
                  core::EventContext& ctx) override;
  void on_dequeue(const tm_::DequeueRecord& e,
                  core::EventContext& ctx) override;

  std::int64_t port_depth(std::uint16_t port) const { return depth_[port]; }
  std::uint8_t level_of(std::int64_t depth_bytes) const;
  std::uint64_t packets_marked() const { return marked_; }

 private:
  EcnMarkConfig config_;
  std::vector<std::int64_t> depth_;
  std::uint64_t marked_ = 0;
};

}  // namespace edp::apps
