// edp::apps — timer-aggregated telemetry with anomaly filtering (paper §3
// "Network Monitoring").
//
// "One challenge with INT is the potentially huge volume of measurement
// data ... data planes can use timer events to aggregate congestion
// information (e.g. queue size, packet loss, or active flow count) and
// only report anomalous events to the monitoring system periodically."
//
// The program maintains per-port congestion state from enqueue / dequeue /
// overflow events and, on each report timer, emits an INT report toward
// the monitor only when something anomalous happened in the interval
// (depth over threshold, or any drops). It also counts how many per-packet
// postcards a naive INT deployment would have produced, so the bench can
// report the data-reduction factor.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/active_flows.hpp"
#include "topo/routing.hpp"

namespace edp::apps {

struct IntAggregatorConfig {
  std::uint16_t num_ports = 4;
  sim::Time report_period = sim::Time::millis(1);
  std::size_t depth_thresh_bytes = 64 * 1024;  ///< anomaly threshold
  std::uint16_t report_port = 0;  ///< toward the monitor host
  net::Ipv4Address monitor_ip;
  net::Ipv4Address self_ip;
  std::size_t flow_slots = 1024;
};

class IntAggregatorProgram : public topo::L3Program {
 public:
  explicit IntAggregatorProgram(IntAggregatorConfig config);

  void on_attach(core::EventContext& ctx) override;
  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override;
  void on_enqueue(const tm_::EnqueueRecord& e,
                  core::EventContext& ctx) override;
  void on_dequeue(const tm_::DequeueRecord& e,
                  core::EventContext& ctx) override;
  void on_overflow(const tm_::DropRecord& e, core::EventContext& ctx) override;
  void on_timer(const core::TimerEventData& e,
                core::EventContext& ctx) override;

  std::uint64_t reports_sent() const { return reports_sent_; }
  std::uint64_t reports_suppressed() const { return reports_suppressed_; }
  /// Postcards a naive per-packet INT would have emitted.
  std::uint64_t naive_postcards() const { return naive_postcards_; }
  double reduction_factor() const {
    return reports_sent_ == 0
               ? static_cast<double>(naive_postcards_)
               : static_cast<double>(naive_postcards_) /
                     static_cast<double>(reports_sent_);
  }
  std::int64_t port_depth(std::uint16_t port) const {
    return depth_[port];
  }

 private:
  IntAggregatorConfig config_;
  std::vector<std::int64_t> depth_;         ///< per egress port, bytes
  std::vector<std::uint32_t> drops_since_;  ///< per port since last report
  stats::ActiveFlowTracker flows_;
  std::uint64_t reports_sent_ = 0;
  std::uint64_t reports_suppressed_ = 0;
  std::uint64_t naive_postcards_ = 0;
  std::uint16_t seq_ = 0;
};

}  // namespace edp::apps
