// edp::apps — data-plane liveness monitoring (paper §5 student project).
//
// "The event-driven programming model was used to implement a protocol in
// the data plane that periodically checks the liveness of neighboring
// network devices by transmitting echo request packets and waiting for
// replies. Upon detecting failure of a neighbor, the data plane transmits
// notifications to a central monitor, with no intervention by the control
// plane."
//
// Per monitored port: a packet generator emits echo requests every probe
// period; replies refresh a last-seen register; a periodic check timer
// declares the neighbor dead after `dead_after` of silence and sends a
// FailureNotice packet toward the monitor — all in the data plane.
#pragma once

#include <cstdint>
#include <vector>

#include "core/event_program.hpp"
#include "stats/histogram.hpp"
#include "topo/routing.hpp"

namespace edp::apps {

struct LivenessConfig {
  std::uint32_t self_id = 0;
  std::vector<std::uint16_t> monitored_ports;
  sim::Time probe_period = sim::Time::micros(500);
  sim::Time check_period = sim::Time::micros(500);
  sim::Time dead_after = sim::Time::micros(1600);  ///< ~3 missed probes
  /// Where failure notices go (switch port toward the central monitor);
  /// kPortInvalid disables notification.
  std::uint16_t monitor_port = 0xffff;
};

class LivenessProgram : public core::EventProgram {
 public:
  explicit LivenessProgram(LivenessConfig config);

  void on_attach(core::EventContext& ctx) override;
  void on_generated(pisa::Phv& phv, core::EventContext& ctx) override;
  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override;
  void on_timer(const core::TimerEventData& e,
                core::EventContext& ctx) override;

  /// Detection state per monitored port index.
  bool neighbor_alive(std::size_t i) const { return alive_[i] != 0; }
  sim::Time failure_detected_at(std::size_t i) const {
    return failed_at_[i];
  }

  std::uint64_t requests_sent() const { return requests_tx_; }
  std::uint64_t replies_received() const { return replies_rx_; }
  std::uint64_t notices_sent() const { return notices_tx_; }
  const stats::Summary& rtt_us() const { return rtt_; }

  const LivenessConfig& config() const { return config_; }

 private:
  int port_index(std::uint16_t port) const;

  LivenessConfig config_;
  std::vector<sim::Time> last_seen_;
  std::vector<std::uint8_t> alive_;
  std::vector<sim::Time> failed_at_;
  std::uint16_t next_seq_ = 0;
  std::uint64_t requests_tx_ = 0;
  std::uint64_t replies_rx_ = 0;
  std::uint64_t notices_tx_ = 0;
  stats::Summary rtt_;
};

}  // namespace edp::apps
