#include "apps/snappy_baseline.hpp"

#include <algorithm>

#include "net/flow.hpp"

namespace edp::apps {

SnappyProgram::SnappyProgram(SnappyConfig config)
    : config_(config),
      snapshots_(config.num_snapshots,
                 std::vector<std::int64_t>(config.num_regs, 0)),
      last_detect_(config.num_regs, sim::Time::zero()) {}

void SnappyProgram::on_ingress(pisa::Phv& phv, core::EventContext&) {
  route(phv);
}

void SnappyProgram::maybe_rotate(sim::Time now) {
  if (head_start_ == sim::Time::zero()) {
    head_start_ = now;
    return;
  }
  // May need several rotations after an idle period.
  while (now - head_start_ >= config_.rotation) {
    head_ = (head_ + 1) % snapshots_.size();
    std::fill(snapshots_[head_].begin(), snapshots_[head_].end(), 0);
    head_start_ += config_.rotation;
    ++epoch_;
  }
}

void SnappyProgram::on_egress(pisa::Phv& phv, core::EventContext& ctx) {
  if (!phv.ipv4) {
    return;
  }
  const sim::Time now = ctx.now();
  maybe_rotate(now);
  const std::uint32_t flow_id =
      net::flow_id_src_dst(phv.ipv4->src, phv.ipv4->dst);
  const std::uint32_t s = slot(flow_id);
  snapshots_[head_][s] += phv.std_meta.packet_length;

  // The packet's own queueing delay selects how many snapshots still
  // correspond to bytes that are plausibly in the queue.
  const sim::Time delay = now - phv.std_meta.enqueue_timestamp;
  const std::int64_t est = estimate(flow_id, delay, now);
  if (est > config_.flow_thresh) {
    if (last_detect_[s] > sim::Time::zero() &&
        now - last_detect_[s] < config_.dedup_window) {
      return;
    }
    last_detect_[s] = now;
    detections_.push_back(CulpritDetection{flow_id, est, now, false});
  }
}

std::int64_t SnappyProgram::estimate(std::uint32_t flow_id,
                                     sim::Time queue_delay,
                                     sim::Time now) const {
  // Bytes of this flow seen at egress within the last `queue_delay` are an
  // estimate of what is still queued (they entered <= delay ago).
  const std::uint32_t s = flow_id % static_cast<std::uint32_t>(
                                        config_.num_regs);
  std::int64_t sum = 0;
  sim::Time covered = now - head_start_;  // age of the head snapshot
  std::size_t idx = head_;
  for (std::size_t i = 0; i < snapshots_.size(); ++i) {
    sum += snapshots_[idx][s];
    if (covered >= queue_delay) {
      break;
    }
    covered += config_.rotation;
    idx = (idx + snapshots_.size() - 1) % snapshots_.size();
  }
  return sum;
}

std::size_t SnappyProgram::state_bytes() const {
  // k snapshot arrays of 32-bit counters (hardware width), plus rotation
  // bookkeeping (head index, epoch timestamps).
  return snapshots_.size() * config_.num_regs * sizeof(std::uint32_t) + 64;
}

}  // namespace edp::apps
