#include "apps/liveness.hpp"

#include "net/packet_builder.hpp"

namespace edp::apps {
namespace {

constexpr std::uint64_t kCheckCookie = 0x11fe;

net::Packet make_echo(std::uint32_t self_id, std::size_t port_index) {
  net::LivenessHeader h;
  h.kind = net::LivenessHeader::kRequest;
  h.sender_id = self_id;
  return net::PacketBuilder()
      .ethernet(net::MacAddress::from_u64(0x020000000100 + self_id),
                net::MacAddress::from_u64(port_index),
                net::kEtherTypeLiveness)
      .liveness(h)
      .pad_to(64)
      .build();
}

}  // namespace

LivenessProgram::LivenessProgram(LivenessConfig config)
    : config_(std::move(config)),
      last_seen_(config_.monitored_ports.size(), sim::Time::zero()),
      alive_(config_.monitored_ports.size(), 1),
      failed_at_(config_.monitored_ports.size(), sim::Time::zero()) {}

void LivenessProgram::on_attach(core::EventContext& ctx) {
  bool refused = false;
  for (std::size_t i = 0; i < config_.monitored_ports.size(); ++i) {
    core::PacketGenerator::Config g;
    g.packet_template = make_echo(config_.self_id, i);
    g.period = config_.probe_period;
    g.start_immediately = true;
    refused = ctx.add_generator(std::move(g)) == 0 || refused;
    last_seen_[i] = ctx.now();  // grace period from attach
  }
  refused = ctx.set_periodic_timer(config_.check_period, kCheckCookie) == 0 ||
            refused;
  if (refused) {
    // Baseline target: probing and dead-port checks need CP emulation.
    core::ControlEventData punt;
    punt.opcode = core::kOpFacilityUnavailable;
    punt.args[0] = kCheckCookie;
    ctx.notify_control_plane(punt);
  }
}

int LivenessProgram::port_index(std::uint16_t port) const {
  for (std::size_t i = 0; i < config_.monitored_ports.size(); ++i) {
    if (config_.monitored_ports[i] == port) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void LivenessProgram::on_generated(pisa::Phv& phv, core::EventContext& ctx) {
  if (!phv.liveness || !phv.eth) {
    phv.std_meta.drop = true;
    return;
  }
  const auto idx = static_cast<std::size_t>(
      phv.eth->dst.to_u64() % config_.monitored_ports.size());
  phv.liveness->seq = next_seq_++;
  phv.liveness->ts_ps = static_cast<std::uint64_t>(ctx.now().ps());
  phv.std_meta.egress_port = config_.monitored_ports[idx];
  ++requests_tx_;
}

void LivenessProgram::on_ingress(pisa::Phv& phv, core::EventContext& ctx) {
  if (!phv.liveness) {
    phv.std_meta.drop = true;  // this program only speaks liveness
    return;
  }
  if (phv.liveness->kind == net::LivenessHeader::kRequest) {
    // Reflect: turn the request into a reply back out the arrival port,
    // preserving the originator's timestamp for RTT measurement.
    phv.liveness->kind = net::LivenessHeader::kReply;
    phv.std_meta.egress_port = phv.std_meta.ingress_port;
    return;
  }
  if (phv.liveness->kind == net::LivenessHeader::kReply) {
    const int i = port_index(phv.std_meta.ingress_port);
    if (i >= 0) {
      const auto idx = static_cast<std::size_t>(i);
      last_seen_[idx] = ctx.now();
      const sim::Time rtt =
          ctx.now() -
          sim::Time(static_cast<std::int64_t>(phv.liveness->ts_ps));
      rtt_.add(rtt.as_micros());
      ++replies_rx_;
      if (alive_[idx] == 0) {
        alive_[idx] = 1;  // neighbor recovered
        failed_at_[idx] = sim::Time::zero();
      }
    }
    phv.std_meta.drop = true;
    return;
  }
  phv.std_meta.drop = true;  // failure notices terminate at the monitor
}

void LivenessProgram::on_timer(const core::TimerEventData& e,
                               core::EventContext& ctx) {
  if (e.cookie != kCheckCookie) {
    return;
  }
  for (std::size_t i = 0; i < config_.monitored_ports.size(); ++i) {
    if (alive_[i] == 0) {
      continue;
    }
    if (ctx.now() - last_seen_[i] > config_.dead_after) {
      alive_[i] = 0;
      failed_at_[i] = ctx.now();
      if (config_.monitor_port != 0xffff) {
        net::LivenessHeader h;
        h.kind = net::LivenessHeader::kFailureNotice;
        h.sender_id = config_.self_id;
        h.seq = static_cast<std::uint16_t>(i);
        h.ts_ps = static_cast<std::uint64_t>(ctx.now().ps());
        net::Packet notice =
            net::PacketBuilder()
                .ethernet(
                    net::MacAddress::from_u64(0x020000000100 +
                                              config_.self_id),
                    net::MacAddress::broadcast(), net::kEtherTypeLiveness)
                .liveness(h)
                .pad_to(64)
                .build();
        if (ctx.send_packet(std::move(notice), config_.monitor_port)) {
          ++notices_tx_;
        }
      }
    }
  }
}

}  // namespace edp::apps
