// edp::apps — microburst culprit detection (paper §2, microburst.p4).
//
// The paper's worked example, transliterated handler for handler:
//
//   shared_register<bit<32>>(NUM_REGS) bufSize_reg;
//   Ingress: flowID = hash(ip.src ++ ip.dst); init enq/deq metadata;
//            bufSize_reg.read(flowID, bufSize);
//            if (bufSize > FLOW_THRESH) { /* microburst culprit! */ }
//   Enqueue: bufSize += meta.pkt_len   (per meta.flowID)
//   Dequeue: bufSize -= meta.pkt_len
//
// Two state realizations are provided, matching §4:
//   kShared     — multi-ported shared_register (logical model; exact)
//   kAggregated — single-ported main register + enq/deq aggregation arrays
//                 (high line-rate model; bounded-stale)
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/aggregated_register.hpp"
#include "core/shared_register.hpp"
#include "topo/routing.hpp"

namespace edp::apps {

/// How the shared per-flow occupancy state is realized (paper §4).
enum class StateModel : std::uint8_t { kShared, kAggregated };

/// One detected culprit occurrence.
struct CulpritDetection {
  std::uint32_t flow_id = 0;
  std::int64_t occupancy = 0;        ///< bytes the detector saw
  sim::Time when = sim::Time::zero();
  bool at_ingress = true;            ///< detected before enqueue?
};

struct MicroburstConfig {
  std::size_t num_regs = 1024;       ///< NUM_REGS
  std::int64_t flow_thresh = 32 * 1024;  ///< FLOW_THRESH (bytes)
  StateModel state = StateModel::kAggregated;
  /// Suppress repeat detections of one flow within this window.
  sim::Time dedup_window = sim::Time::micros(100);
};

class MicroburstProgram : public topo::L3Program {
 public:
  explicit MicroburstProgram(MicroburstConfig config);

  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override;
  void on_enqueue(const tm_::EnqueueRecord& e,
                  core::EventContext& ctx) override;
  void on_dequeue(const tm_::DequeueRecord& e,
                  core::EventContext& ctx) override;

  /// Optimizer hook (paper §4): switch bufSize_reg from the multi-ported
  /// shared realization to the single-ported main + side-array aggregated
  /// realization. Fresh instances only (state starts at zero either way).
  bool realize_aggregated(std::string_view reg) override;
  void visit_aggregated(
      const std::function<void(core::AggregatedRegister&)>& visit) override;

  const std::vector<CulpritDetection>& detections() const {
    return detections_;
  }

  /// Current per-flow occupancy as the detector would read it.
  std::int64_t occupancy(std::uint32_t flow_id) const;

  /// Programmer-visible stateful memory (for the C1 state comparison).
  std::size_t state_bytes() const;

  /// The aggregated register (nullptr under kShared) — register it with the
  /// switch for idle-cycle drains.
  core::AggregatedRegister* aggregated() { return agg_.get(); }

  const MicroburstConfig& config() const { return config_; }

 private:
  std::uint32_t slot(std::uint32_t flow_id) const {
    return flow_id % static_cast<std::uint32_t>(config_.num_regs);
  }
  void detect(std::uint32_t flow_id, std::int64_t occupancy, sim::Time now);

  MicroburstConfig config_;
  std::unique_ptr<core::SharedRegister<std::int64_t>> shared_;
  std::unique_ptr<core::AggregatedRegister> agg_;
  std::vector<CulpritDetection> detections_;
  /// Last detection time per state slot (dedup).
  std::vector<sim::Time> last_detect_;
};

}  // namespace edp::apps
