// edp::apps — NDP-style packet trimming with priority forwarding (paper
// §3 "Congestion Aware Forwarding", citing NDP [8]: congestion signals
// "can be used in the ingress pipeline to make priority forwarding
// decisions, as in NDP").
//
// NDP's core trick: when a queue is congested, don't drop the packet —
// TRIM it to its headers and forward the header at high priority. The
// receiver still learns the packet existed (and can request a resend)
// within one RTT, instead of waiting out a timeout.
//
// Event-driven realization: per-port occupancy is maintained from
// enqueue/dequeue events; the ingress handler compares the chosen egress
// port's occupancy against the trim threshold and, when exceeded, cuts
// the PHV's payload (the deparser re-emits a consistent header-only
// packet) and steers it to the strict-priority queue 0. Untrimmed traffic
// rides queue 1. Requires queues_per_port >= 2 with the strict-priority
// TM scheduler.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/routing.hpp"

namespace edp::apps {

struct NdpTrimConfig {
  std::uint16_t num_ports = 4;
  /// Trim arriving packets for a port whose occupancy exceeds this.
  std::size_t trim_thresh_bytes = 16 * 1024;
  std::uint8_t priority_qid = 0;  ///< trimmed headers (strict priority)
  std::uint8_t data_qid = 1;      ///< full packets
};

class NdpTrimProgram : public topo::L3Program {
 public:
  explicit NdpTrimProgram(NdpTrimConfig config);

  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override;
  void on_enqueue(const tm_::EnqueueRecord& e,
                  core::EventContext& ctx) override;
  void on_dequeue(const tm_::DequeueRecord& e,
                  core::EventContext& ctx) override;

  std::uint64_t trimmed() const { return trimmed_; }
  std::int64_t port_depth(std::uint16_t port) const { return depth_[port]; }

 private:
  NdpTrimConfig config_;
  std::vector<std::int64_t> depth_;
  std::uint64_t trimmed_ = 0;
};

}  // namespace edp::apps
