#include "apps/rate_measurement.hpp"

#include "net/flow.hpp"

namespace edp::apps {
namespace {
constexpr std::uint64_t kTickCookie = 0x4a7e;
}  // namespace

RateMeasureProgram::RateMeasureProgram(RateMeasureConfig config)
    : config_(config),
      table_(config.flow_slots, config.buckets, config.bucket_width) {}

void RateMeasureProgram::on_attach(core::EventContext& ctx) {
  if (ctx.set_periodic_timer(config_.bucket_width, kTickCookie) == 0) {
    // Baseline target: punt so the control plane can advance buckets.
    core::ControlEventData punt;
    punt.opcode = core::kOpFacilityUnavailable;
    punt.args[0] = kTickCookie;
    ctx.notify_control_plane(punt);
  }
}

void RateMeasureProgram::on_ingress(pisa::Phv& phv, core::EventContext&) {
  route(phv);
  if (!phv.ipv4 || phv.std_meta.drop) {
    return;
  }
  const std::uint32_t flow_id =
      net::flow_id_src_dst(phv.ipv4->src, phv.ipv4->dst);
  table_.observe(flow_id, phv.std_meta.packet_length);
}

void RateMeasureProgram::on_timer(const core::TimerEventData& e,
                                  core::EventContext&) {
  if (e.cookie != kTickCookie) {
    return;
  }
  ++ticks_;
  table_.tick();
}

}  // namespace edp::apps
