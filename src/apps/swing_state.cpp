#include "apps/swing_state.hpp"

#include "net/flow.hpp"
#include "net/packet_builder.hpp"

namespace edp::apps {
namespace {

constexpr std::size_t kSlotOff = net::EthernetHeader::kSize;
constexpr std::size_t kPktsOff = kSlotOff + 4;
constexpr std::size_t kBytesOff = kPktsOff + 8;
constexpr std::size_t kFrameSize = kBytesOff + 8;

}  // namespace

SwingStateProgram::SwingStateProgram(SwingStateConfig config)
    : config_(config),
      packets_(config.flow_slots, 0),
      bytes_(config.flow_slots, 0) {}

net::Packet SwingStateProgram::make_state_packet(std::uint32_t slot) const {
  net::Packet p =
      net::PacketBuilder()
          .ethernet(net::MacAddress::from_u64(0x02000000ee01),
                    net::MacAddress::from_u64(0x02000000ee02),
                    kEtherTypeSwingState)
          .payload(kFrameSize - net::EthernetHeader::kSize)
          .pad_to(64)
          .build();
  p.set_u32(kSlotOff, slot);
  p.set_u64(kPktsOff, packets_[slot]);
  p.set_u64(kBytesOff, bytes_[slot]);
  return p;
}

void SwingStateProgram::on_ingress(pisa::Phv& phv, core::EventContext&) {
  // State-carry frames from a failing peer: merge and consume.
  if (phv.eth && phv.eth->ether_type == kEtherTypeSwingState) {
    if (phv.packet.size() >= kFrameSize) {
      const std::uint32_t slot =
          phv.packet.u32(kSlotOff) % static_cast<std::uint32_t>(
                                         packets_.size());
      packets_[slot] += phv.packet.u64(kPktsOff);
      bytes_[slot] += phv.packet.u64(kBytesOff);
      ++migrated_in_;
    }
    phv.std_meta.drop = true;
    return;
  }
  if (!phv.ipv4) {
    phv.std_meta.drop = true;
    return;
  }
  // The per-flow state this switch is responsible for.
  const std::uint32_t flow_id =
      net::flow_id_src_dst(phv.ipv4->src, phv.ipv4->dst);
  const std::size_t s = flow_id % packets_.size();
  ++packets_[s];
  bytes_[s] += phv.std_meta.packet_length;
  phv.std_meta.egress_port = config_.data_out_port;
}

void SwingStateProgram::on_link_status(const core::LinkStatusEventData& e,
                                       core::EventContext& ctx) {
  if (e.up || e.port != config_.monitored_port || migrated_) {
    return;
  }
  // Swing the state: one carry packet per dirty slot, sent immediately
  // from the data plane toward the backup-path switch.
  migrated_ = true;
  migration_at_ = ctx.now();
  for (std::uint32_t s = 0; s < packets_.size(); ++s) {
    if (packets_[s] == 0) {
      continue;
    }
    if (ctx.send_packet(make_state_packet(s), config_.migration_port)) {
      ++migrated_out_;
    }
  }
}

}  // namespace edp::apps
