// edp::apps — programmable policing (paper §3 "Traffic Management").
//
// "While baseline PISA architectures might expose fixed-function meters to
// P4 programmers as primitive elements, if we use timer events, token
// bucket meters can be constructed from simple registers. This approach
// allows data-plane developers to build and customize their own policing
// algorithms."
//
// `TimerTokenBucketProgram` builds a per-flow single-rate policer out of a
// token register array refilled by timer events; `MeterPolicerProgram`
// wraps the fixed-function srTCM extern as the baseline. Both drop
// non-conformant packets at ingress; bench_table2_apps compares their rate
// conformance.
#pragma once

#include <cstdint>
#include <vector>

#include "pisa/meter.hpp"
#include "topo/routing.hpp"

namespace edp::apps {

struct TokenBucketConfig {
  std::size_t flow_slots = 256;
  double rate_bytes_per_sec = 1.25e6;  ///< committed rate (10 Mb/s default)
  std::uint64_t burst_bytes = 15000;   ///< bucket depth
  sim::Time refill_period = sim::Time::micros(100);
};

/// Token bucket from registers + timer events (event architecture only:
/// without timers the bucket never refills and everything is dropped,
/// which is exactly the baseline gap the paper points at).
class TimerTokenBucketProgram : public topo::L3Program {
 public:
  explicit TimerTokenBucketProgram(TokenBucketConfig config);

  void on_attach(core::EventContext& ctx) override;
  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override;
  void on_timer(const core::TimerEventData& e,
                core::EventContext& ctx) override;

  std::uint64_t conformant() const { return conformant_; }
  std::uint64_t policed() const { return policed_; }
  std::int64_t tokens(std::uint32_t flow_id) const {
    return tokens_[flow_id % tokens_.size()];
  }

  const TokenBucketConfig& config() const { return config_; }

 private:
  TokenBucketConfig config_;
  std::vector<std::int64_t> tokens_;
  std::int64_t refill_amount_ = 0;
  std::uint64_t conformant_ = 0;
  std::uint64_t policed_ = 0;
};

/// Baseline: fixed-function srTCM meter extern; red packets are dropped.
class MeterPolicerProgram : public topo::L3Program {
 public:
  MeterPolicerProgram(std::size_t flow_slots, pisa::Meter::Config meter);

  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override;

  std::uint64_t conformant() const { return conformant_; }
  std::uint64_t policed() const { return policed_; }

 private:
  pisa::Meter meter_;
  std::uint64_t conformant_ = 0;
  std::uint64_t policed_ = 0;
};

}  // namespace edp::apps
