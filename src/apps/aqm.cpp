#include "apps/aqm.hpp"

#include <algorithm>

#include "net/flow.hpp"
#include "net/packet_builder.hpp"

namespace edp::apps {

// ---- RED ----------------------------------------------------------------------

void RedAqm::install(tm_::TrafficManager& tm) {
  tm.admit = [this](const tm_::EnqueueRecord& rec, const tm_::QueuedPacket&) {
    return admit(rec);
  };
}

bool RedAqm::admit(const tm_::EnqueueRecord& rec) {
  // Average over the pre-enqueue depth (depth_bytes includes this packet).
  avg_.observe(static_cast<double>(rec.depth_bytes - rec.pkt_len));
  const double avg = avg_.value();
  if (avg < config_.min_thresh_bytes) {
    return true;
  }
  if (avg >= config_.max_thresh_bytes) {
    ++early_drops_;
    return false;
  }
  const double p = config_.max_p * (avg - config_.min_thresh_bytes) /
                   (config_.max_thresh_bytes - config_.min_thresh_bytes);
  if (rng_.chance(p)) {
    ++early_drops_;
    return false;
  }
  return true;
}

// ---- FRED-like fair AQM ----------------------------------------------------------

FairAqmProgram::FairAqmProgram(FairAqmConfig config)
    : config_(std::move(config)),
      flow_bytes_(config_.flow_slots, 0),
      flows_(config_.flow_slots) {}

void FairAqmProgram::on_attach(core::EventContext& ctx) {
  if (config_.send_reports &&
      ctx.set_periodic_timer(config_.sample_period, /*cookie=*/0xfa1) == 0) {
    // Baseline target: punt so the control plane can emulate the timer.
    core::ControlEventData punt;
    punt.opcode = core::kOpFacilityUnavailable;
    punt.args[0] = 0xfa1;
    ctx.notify_control_plane(punt);
  }
}

void FairAqmProgram::on_ingress(pisa::Phv& phv, core::EventContext&) {
  route(phv);
  if (!phv.ipv4 || phv.std_meta.drop) {
    return;
  }
  const std::uint32_t flow_id =
      net::flow_id_src_dst(phv.ipv4->src, phv.ipv4->dst);
  set_enq_meta(phv, 0, flow_id);
  set_enq_meta(phv, 1, phv.std_meta.packet_length);
  set_deq_meta(phv, 0, flow_id);
  set_deq_meta(phv, 1, phv.std_meta.packet_length);

  // Flow-fair early drop: congestion signals maintained by the enqueue /
  // dequeue handlers below, read here *before* the packet is buffered.
  const std::uint32_t active = flows_.active_flows();
  if (total_buffered_ >
          static_cast<std::int64_t>(config_.engage_bytes) &&
      active > 0) {
    const double fair_share =
        static_cast<double>(total_buffered_) / active;
    if (static_cast<double>(flow_bytes_[slot(flow_id)]) >
        config_.share_factor * fair_share) {
      phv.std_meta.drop = true;
      ++fairness_drops_;
    }
  }
}

void FairAqmProgram::on_enqueue(const tm_::EnqueueRecord& e,
                                core::EventContext&) {
  const auto flow_id = static_cast<std::uint32_t>(e.enq_meta[0]);
  const auto len = static_cast<std::int64_t>(e.enq_meta[1]);
  flow_bytes_[slot(flow_id)] += len;
  total_buffered_ += len;
  flows_.on_enqueue(flow_id);
}

void FairAqmProgram::on_dequeue(const tm_::DequeueRecord& e,
                                core::EventContext&) {
  const auto flow_id = static_cast<std::uint32_t>(e.deq_meta[0]);
  const auto len = static_cast<std::int64_t>(e.deq_meta[1]);
  auto& fb = flow_bytes_[slot(flow_id)];
  fb = std::max<std::int64_t>(0, fb - len);
  total_buffered_ = std::max<std::int64_t>(0, total_buffered_ - len);
  flows_.on_dequeue(flow_id);
}

void FairAqmProgram::on_overflow(const tm_::DropRecord& e,
                                 core::EventContext&) {
  loss_volume_ += e.pkt_len;
}

void FairAqmProgram::on_timer(const core::TimerEventData&,
                              core::EventContext& ctx) {
  if (!config_.send_reports) {
    return;
  }
  // Timer-driven sampling: emit an INT report with the current congestion
  // signals toward the monitor (student project of §5).
  net::IntReportHeader rep;
  rep.switch_id = ctx.switch_id();
  rep.queue_id = 0;
  rep.queue_depth_bytes = static_cast<std::uint32_t>(
      std::max<std::int64_t>(0, total_buffered_));
  rep.active_flows = flows_.active_flows();
  rep.drops = static_cast<std::uint32_t>(loss_volume_ / 1000);
  rep.ts_ps = static_cast<std::uint64_t>(ctx.now().ps());
  net::Packet p = net::PacketBuilder()
                      .ethernet(net::MacAddress::from_u64(0x02000000aa00),
                                net::MacAddress::from_u64(0x02000000bb00))
                      .ipv4(config_.self_ip, config_.monitor_ip,
                            net::kIpProtoUdp)
                      .udp(30000, net::kPortIntReport)
                      .int_report(rep)
                      .pad_to(64)
                      .build();
  if (ctx.send_packet(std::move(p), config_.report_port)) {
    ++reports_sent_;
  }
}

std::int64_t FairAqmProgram::flow_buffered(std::uint32_t flow_id) const {
  return flow_bytes_[flow_id % config_.flow_slots];
}

// ---- PIE ------------------------------------------------------------------------

PieAqmProgram::PieAqmProgram(PieConfig config)
    : config_(config), rng_(config.seed) {}

void PieAqmProgram::on_attach(core::EventContext& ctx) {
  if (ctx.set_periodic_timer(config_.update_period, /*cookie=*/0x91e) == 0) {
    // Baseline target: punt so the control plane can drive the PIE update.
    core::ControlEventData punt;
    punt.opcode = core::kOpFacilityUnavailable;
    punt.args[0] = 0x91e;
    ctx.notify_control_plane(punt);
  }
}

void PieAqmProgram::on_ingress(pisa::Phv& phv, core::EventContext&) {
  route(phv);
  if (phv.std_meta.drop) {
    return;
  }
  if (drop_prob_ > 0 && rng_.chance(drop_prob_)) {
    phv.std_meta.drop = true;
    ++early_drops_;
  }
}

void PieAqmProgram::on_dequeue(const tm_::DequeueRecord& e,
                               core::EventContext&) {
  latest_delay_us_ = e.sojourn.as_micros();
}

void PieAqmProgram::on_timer(const core::TimerEventData& e,
                             core::EventContext&) {
  if (e.cookie != 0x91e) {
    return;
  }
  // PIE controller update (drop probability in [0, 1)).
  const double target_us = config_.target_delay.as_micros();
  double p = drop_prob_ +
             config_.alpha * (latest_delay_us_ - target_us) / 1e3 +
             config_.beta * (latest_delay_us_ - prev_delay_us_) / 1e3;
  prev_delay_us_ = latest_delay_us_;
  drop_prob_ = std::clamp(p, 0.0, 0.95);
}

}  // namespace edp::apps
