// edp::apps — Snappy-style baseline microburst detection (Chen et al.,
// "Catching the Microburst Culprits with Snappy", reference [3]).
//
// The approach the paper contrasts against: on a *baseline* PISA
// architecture there are no enqueue/dequeue events, so per-flow queue
// occupancy must be approximated in the egress pipeline with multiple
// rotating snapshot arrays. Each snapshot accumulates the bytes of packets
// seen at egress during one rotation interval; a flow's occupancy is
// estimated as its bytes across the snapshots young enough to still be in
// the queue (selected by the packet's measured queueing delay, which PSA
// egress intrinsic metadata provides).
//
// Costs vs. the event-driven version (measured by bench_claim_microburst):
//   * k snapshot arrays instead of one register (>= 4x state);
//   * detection happens at egress, after the packet already sat in the
//     queue, instead of at ingress before enqueue;
//   * occupancy is approximate (rotation quantization + hash collisions).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/microburst.hpp"
#include "topo/routing.hpp"

namespace edp::apps {

struct SnappyConfig {
  std::size_t num_regs = 1024;          ///< per snapshot array
  std::size_t num_snapshots = 8;        ///< k rotating snapshots
  sim::Time rotation = sim::Time::micros(50);  ///< snapshot interval
  std::int64_t flow_thresh = 32 * 1024;
  sim::Time dedup_window = sim::Time::micros(100);
};

class SnappyProgram : public topo::L3Program {
 public:
  explicit SnappyProgram(SnappyConfig config);

  /// Ingress just routes (baseline router).
  void on_ingress(pisa::Phv& phv, core::EventContext& ctx) override;

  /// All the detection work happens at egress.
  void on_egress(pisa::Phv& phv, core::EventContext& ctx) override;

  const std::vector<CulpritDetection>& detections() const {
    return detections_;
  }

  /// Estimated occupancy for a flow given an assumed queueing delay.
  std::int64_t estimate(std::uint32_t flow_id, sim::Time queue_delay,
                        sim::Time now) const;

  /// Programmer-visible stateful memory: k snapshot arrays + rotation
  /// bookkeeping registers.
  std::size_t state_bytes() const;

  const SnappyConfig& config() const { return config_; }

 private:
  std::uint32_t slot(std::uint32_t flow_id) const {
    return flow_id % static_cast<std::uint32_t>(config_.num_regs);
  }
  /// Rotate if the rotation interval elapsed (driven by packet timestamps —
  /// the only clock a baseline data plane has).
  void maybe_rotate(sim::Time now);

  SnappyConfig config_;
  /// snapshots_[i] = byte counters of rotation epoch (epoch_ - i mod k).
  std::vector<std::vector<std::int64_t>> snapshots_;
  std::size_t head_ = 0;               ///< index of the current snapshot
  sim::Time head_start_ = sim::Time::zero();
  std::uint64_t epoch_ = 0;
  std::vector<CulpritDetection> detections_;
  std::vector<sim::Time> last_detect_;
};

}  // namespace edp::apps
