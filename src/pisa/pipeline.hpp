// edp::pisa — the match-action pipeline container.
//
// A pipeline is an ordered sequence of named stages, each a function over
// the PHV (in P4 terms, one `control` block apply). The container exists
// for structure and per-stage accounting: the resource model and the
// staleness analysis both reason about *which stage* state lives in.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pisa/phv.hpp"

namespace edp::pisa {

/// One pipeline stage.
struct Stage {
  std::string name;
  std::function<void(Phv&)> logic;
  std::uint64_t phvs_processed = 0;
};

/// An ordered sequence of stages applied to each PHV. A stage may set
/// `std_meta.drop`; subsequent stages still run (as in hardware, where the
/// PHV physically traverses all stages) unless `stop_on_drop` is set.
class Pipeline {
 public:
  explicit Pipeline(std::string name, bool stop_on_drop = false)
      : name_(std::move(name)), stop_on_drop_(stop_on_drop) {}

  const std::string& name() const { return name_; }

  void add_stage(std::string stage_name, std::function<void(Phv&)> logic);

  std::size_t depth() const { return stages_.size(); }
  const Stage& stage(std::size_t i) const { return stages_[i]; }

  /// Apply every stage in order.
  void process(Phv& phv);

  std::uint64_t phvs_processed() const { return phvs_; }

 private:
  std::string name_;
  bool stop_on_drop_;
  std::vector<Stage> stages_;
  std::uint64_t phvs_ = 0;
};

}  // namespace edp::pisa
