// edp::pisa — indexed packet/byte counters (the P4 `counter` extern).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace edp::pisa {

/// An array of (packets, bytes) counter cells. Indices wrap like registers.
class Counter {
 public:
  struct Cell {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };

  Counter(std::string name, std::size_t size)
      : name_(std::move(name)), cells_(size) {}

  const std::string& name() const { return name_; }
  std::size_t size() const { return cells_.size(); }

  void count(std::size_t idx, std::uint64_t bytes) {
    Cell& c = cells_[idx % cells_.size()];
    ++c.packets;
    c.bytes += bytes;
  }

  const Cell& cell(std::size_t idx) const {
    return cells_[idx % cells_.size()];
  }

  void reset() {
    for (auto& c : cells_) {
      c = Cell{};
    }
  }

  Cell total() const {
    Cell t;
    for (const auto& c : cells_) {
      t.packets += c.packets;
      t.bytes += c.bytes;
    }
    return t;
  }

 private:
  std::string name_;
  std::vector<Cell> cells_;
};

}  // namespace edp::pisa
