#include "pisa/meter.hpp"

#include <algorithm>

namespace edp::pisa {

Meter::Meter(std::string name, std::size_t size, Config config)
    : name_(std::move(name)), config_(config), cells_(size) {
  for (auto& c : cells_) {
    c.committed_tokens = static_cast<double>(config_.cbs_bytes);
    c.excess_tokens = static_cast<double>(config_.ebs_bytes);
  }
}

void Meter::refill(Cell& c, sim::Time now) const {
  const sim::Time dt = now - c.last_update;
  if (dt <= sim::Time::zero()) {
    return;
  }
  c.last_update = now;
  // srTCM: tokens arrive at CIR; overflow of the committed bucket spills
  // into the excess bucket.
  double add = config_.cir_bytes_per_sec * dt.as_seconds();
  const double c_room =
      static_cast<double>(config_.cbs_bytes) - c.committed_tokens;
  const double to_committed = std::min(add, std::max(0.0, c_room));
  c.committed_tokens += to_committed;
  add -= to_committed;
  c.excess_tokens = std::min(static_cast<double>(config_.ebs_bytes),
                             c.excess_tokens + add);
}

MeterColor Meter::execute(std::size_t idx, std::uint64_t bytes,
                          sim::Time now) {
  Cell& c = cells_[idx % cells_.size()];
  refill(c, now);
  const auto b = static_cast<double>(bytes);
  if (c.committed_tokens >= b) {
    c.committed_tokens -= b;
    return MeterColor::kGreen;
  }
  if (c.excess_tokens >= b) {
    c.excess_tokens -= b;
    return MeterColor::kYellow;
  }
  return MeterColor::kRed;
}

}  // namespace edp::pisa
