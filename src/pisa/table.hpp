// edp::pisa — match-action tables.
//
// The workhorse of PISA programs. A table is configured with a key schema
// (a list of fields, each exact / LPM / ternary), filled with entries by
// the control plane, and applied to PHVs by the data plane. Actions are
// bound callables over the PHV plus the entry's action data — the C++
// equivalent of a P4 action with its compile-time parameters.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "pisa/phv.hpp"

namespace edp::pisa {

enum class MatchKind : std::uint8_t { kExact, kLpm, kTernary };

/// One field of the key schema.
struct MatchField {
  MatchKind kind = MatchKind::kExact;
  int width_bits = 32;  ///< informative; values are held in 64-bit lanes
  std::string name;     ///< for diagnostics
};

/// One field of a concrete entry key.
struct KeyField {
  std::uint64_t value = 0;
  /// LPM: prefix length in bits; Ternary: ignored (use mask). Exact: ignored.
  int prefix_len = 0;
  /// Ternary: care-mask (1 bits must match). Exact: all-ones implied.
  std::uint64_t mask = ~0ULL;
};

/// Action data passed to the bound action at hit time.
struct ActionData {
  std::vector<std::uint64_t> args;
  std::uint64_t arg(std::size_t i) const {
    return i < args.size() ? args[i] : 0;
  }
};

using Action = std::function<void(Phv&, const ActionData&)>;

/// A table entry: key fields (one per schema field), priority (ternary
/// tie-break, higher wins), the action and its data.
struct TableEntry {
  std::vector<KeyField> key;
  std::int32_t priority = 0;
  std::string action_name;
  Action action;
  ActionData data;
  mutable std::uint64_t hits = 0;
  /// Matched-bits count for LPM/ternary ordering, filled in by insert()
  /// (it depends only on the schema and key, so computing it per lookup
  /// would redo the same popcounts on every packet).
  int spec_bits = 0;
};

/// Result of a lookup.
struct LookupResult {
  bool hit = false;
  const TableEntry* entry = nullptr;  ///< valid iff hit
};

/// Match-action table with bounded capacity.
///
/// Lookup semantics follow P4:
///  - all-exact schema: hash lookup, at most one match;
///  - schemas containing LPM: longest prefix wins (then priority);
///  - schemas containing ternary: highest priority matching entry wins.
class MatchActionTable {
 public:
  MatchActionTable(std::string name, std::vector<MatchField> schema,
                   std::size_t capacity = 1024);

  const std::string& name() const { return name_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Set the miss action (P4 default_action). Null = no-op on miss.
  void set_default_action(std::string action_name, Action action,
                          ActionData data = {});

  /// Insert an entry. Returns false (and does not insert) if the table is
  /// full or the key arity mismatches the schema.
  bool insert(TableEntry entry);

  /// Remove all entries whose key fields equal `key` exactly (control-plane
  /// delete). Returns the number removed.
  std::size_t erase(const std::vector<KeyField>& key);

  void clear();

  /// Pure lookup (no action execution). The span form is the hot path:
  /// callers pass a stack array, so per-packet lookups build no vector.
  LookupResult lookup(std::span<const std::uint64_t> key) const;
  LookupResult lookup(const std::vector<std::uint64_t>& key) const {
    return lookup(std::span<const std::uint64_t>(key));
  }

  /// P4 `table.apply()` with a pre-extracted key: run the matching (or
  /// default) action. Returns hit/miss. Allocation-free.
  bool apply(Phv& phv, std::span<const std::uint64_t> key) const;

  /// P4 `table.apply()`: look up using `key_fn` to extract the key from the
  /// PHV, run the matching (or default) action. Returns hit/miss.
  bool apply(Phv& phv,
             const std::function<std::vector<std::uint64_t>(const Phv&)>&
                 key_fn) const;

  /// Lookup statistics.
  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t misses() const { return misses_; }

 private:
  bool entry_matches(const TableEntry& e,
                     std::span<const std::uint64_t> key) const;
  /// Sum of matched prefix bits, for LPM ordering (exact fields count full
  /// width; ternary fields count popcount of mask). Cached per entry at
  /// insert time (TableEntry::spec_bits).
  int specificity(const TableEntry& e) const;
  std::string hash_key(std::span<const std::uint64_t> key) const;

  std::string name_;
  std::vector<MatchField> schema_;
  std::size_t capacity_;
  bool all_exact_;
  std::vector<TableEntry> entries_;
  /// Index into entries_ for all-exact tables.
  std::unordered_map<std::string, std::size_t> exact_index_;

  std::string default_name_ = "NoAction";
  Action default_action_;
  ActionData default_data_;

  mutable std::uint64_t lookups_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace edp::pisa
