// Counter is header-only; this TU anchors the module in the build so the
// archive always exists even if no inline symbol is emitted elsewhere.
#include "pisa/counter.hpp"

namespace edp::pisa {
// (intentionally empty)
}  // namespace edp::pisa
