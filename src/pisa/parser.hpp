// edp::pisa — programmable parser.
//
// A parser is a state machine, exactly as in P4: each state extracts a
// header from the packet at the current offset and selects the next state.
// States are registered by name; `Parser::standard()` builds the parse
// graph for this repository's protocol suite, and programs may add or
// replace states to parse custom formats.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "pisa/phv.hpp"

namespace edp::pisa {

/// Result of one parser state: where to go next and the new byte offset.
/// `next_state` is a view — state names are string literals (or the keys of
/// registered states, which outlive any parse), so transitions carry no
/// string construction on the per-packet hot path.
struct ParseStep {
  std::string_view next_state;  ///< "accept" / "reject" end parsing
  std::size_t offset = 0;
};

/// One parser state: examine `phv.packet` at `offset`, extract into `phv`,
/// return the transition.
using ParseState =
    std::function<ParseStep(Phv& phv, std::size_t offset)>;

/// P4-style programmable parser.
class Parser {
 public:
  static constexpr std::string_view kAccept = "accept";
  static constexpr std::string_view kReject = "reject";

  /// Empty parser; the caller supplies every state.
  Parser() = default;

  /// The standard parse graph:
  ///   start -> ethernet -> {vlan ->} {ipv4 -> {tcp|udp -> {kv|int}}}
  ///                        | hula | liveness | carrier(accept)
  static Parser standard();

  /// Register (or replace) a state. Adding or replacing any state drops the
  /// parser back to the generic (name-dispatched) state machine; the
  /// compiled fast path below only covers the untouched standard graph.
  void add_state(const std::string& name, ParseState state);

  /// Run the state machine from "start". On reject/truncation the PHV is
  /// returned with `parse_error` set. Also fills packet_length,
  /// ingress_port and ingress_timestamp from the packet metadata.
  Phv parse(net::Packet packet) const;

  /// Loop guard: maximum state transitions per packet.
  static constexpr std::size_t kMaxSteps = 32;

 private:
  /// Direct-coded equivalent of the standard() graph — no per-transition
  /// hash lookup or std::function dispatch. parse() takes this path while
  /// the graph is exactly the one standard() registered (kept equivalent by
  /// the ParserFastPathMatchesGeneric differential test).
  static void parse_standard(Phv& phv);

  /// Transparent hashing lets parse() look states up by string_view —
  /// no std::string materialized per transition.
  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, ParseState, NameHash, std::equal_to<>>
      states_;
  bool standard_graph_ = false;  ///< true ⟺ parse() may use parse_standard
};

}  // namespace edp::pisa
