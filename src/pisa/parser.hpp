// edp::pisa — programmable parser.
//
// A parser is a state machine, exactly as in P4: each state extracts a
// header from the packet at the current offset and selects the next state.
// States are registered by name; `Parser::standard()` builds the parse
// graph for this repository's protocol suite, and programs may add or
// replace states to parse custom formats.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "pisa/phv.hpp"

namespace edp::pisa {

/// Result of one parser state: where to go next and the new byte offset.
struct ParseStep {
  std::string next_state;  ///< "accept" / "reject" end parsing
  std::size_t offset = 0;
};

/// One parser state: examine `phv.packet` at `offset`, extract into `phv`,
/// return the transition.
using ParseState =
    std::function<ParseStep(Phv& phv, std::size_t offset)>;

/// P4-style programmable parser.
class Parser {
 public:
  static constexpr const char* kAccept = "accept";
  static constexpr const char* kReject = "reject";

  /// Empty parser; the caller supplies every state.
  Parser() = default;

  /// The standard parse graph:
  ///   start -> ethernet -> {vlan ->} {ipv4 -> {tcp|udp -> {kv|int}}}
  ///                        | hula | liveness | carrier(accept)
  static Parser standard();

  /// Register (or replace) a state.
  void add_state(const std::string& name, ParseState state);

  /// Run the state machine from "start". On reject/truncation the PHV is
  /// returned with `parse_error` set. Also fills packet_length,
  /// ingress_port and ingress_timestamp from the packet metadata.
  Phv parse(net::Packet packet) const;

  /// Loop guard: maximum state transitions per packet.
  static constexpr std::size_t kMaxSteps = 32;

 private:
  std::unordered_map<std::string, ParseState> states_;
};

}  // namespace edp::pisa
