// edp::pisa — stateful register arrays.
//
// Registers are the stateful extern of PISA programs. Physical register
// memories in a switch pipeline are *single-ported* per clock cycle (one
// read-modify-write); that constraint is the entire reason for the paper's
// §4 aggregation mechanism, so we model it explicitly: each array has a
// port budget per cycle, tracked by `PortUsage`. Functional reads/writes
// are separate from port accounting so tests can use registers directly
// while the EventSwitch enforces the hardware constraint.
#pragma once

#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace edp::pisa {

/// Tracks how many of a memory's ports have been consumed in the current
/// clock cycle, and counts contention (attempts beyond the budget).
class PortUsage {
 public:
  explicit PortUsage(int ports = 1) : ports_(ports) { assert(ports >= 1); }

  int ports() const { return ports_; }

  /// Try to consume one port in `cycle`. Returns false (and counts
  /// contention) if the budget for that cycle is exhausted.
  bool try_acquire(std::uint64_t cycle);

  /// True if at least one port is still free in `cycle` (no side effects).
  bool available(std::uint64_t cycle) const;

  std::uint64_t contention() const { return contention_; }
  std::uint64_t acquired() const { return acquired_; }

 private:
  int ports_;
  std::uint64_t current_cycle_ = ~0ULL;
  int used_this_cycle_ = 0;
  std::uint64_t contention_ = 0;
  std::uint64_t acquired_ = 0;
};

/// A register array of `T` cells.
template <typename T>
class Register {
 public:
  Register(std::string name, std::size_t size, int ports = 1)
      : name_(std::move(name)), cells_(size, T{}), port_usage_(ports) {
    if (size == 0) {
      // Every access wraps with `idx % size`; a zero-cell array is not
      // realizable and would divide by zero.
      throw std::invalid_argument("Register '" + name_ +
                                  "': size must be >= 1");
    }
  }

  const std::string& name() const { return name_; }
  std::size_t size() const { return cells_.size(); }

  /// Functional read. Out-of-range indices wrap (hash-indexed state in
  /// hardware wraps the same way), keeping programs total.
  T read(std::size_t idx) const {
    ++reads_;
    return cells_[idx % cells_.size()];
  }

  void write(std::size_t idx, const T& value) {
    ++writes_;
    cells_[idx % cells_.size()] = value;
  }

  /// Atomic read-modify-write (one port in hardware).
  template <typename Fn>
  T rmw(std::size_t idx, Fn&& fn) {
    const std::size_t i = idx % cells_.size();
    ++reads_;
    ++writes_;
    cells_[i] = fn(cells_[i]);
    return cells_[i];
  }

  void fill(const T& value) {
    for (auto& c : cells_) {
      c = value;
    }
  }

  PortUsage& ports() { return port_usage_; }
  const PortUsage& ports() const { return port_usage_; }

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }

  /// Modeled memory footprint (for the resource model / state comparisons).
  std::size_t bytes() const { return cells_.size() * sizeof(T); }

 private:
  std::string name_;
  std::vector<T> cells_;
  PortUsage port_usage_;
  mutable std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace edp::pisa
