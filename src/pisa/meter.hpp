// edp::pisa — fixed-function meter extern.
//
// A single-rate three-color marker (srTCM, RFC 2697 / Heinanen & Guérin),
// the meter primitive the paper contrasts with timer-built token buckets
// (§3, Traffic Management). Each cell holds two token buckets refilled
// lazily on access from the elapsed simulated time, exactly how switch
// hardware implements it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace edp::pisa {

enum class MeterColor : std::uint8_t { kGreen, kYellow, kRed };

/// Array of srTCM cells.
class Meter {
 public:
  struct Config {
    double cir_bytes_per_sec = 1.25e6;  ///< committed information rate
    std::uint64_t cbs_bytes = 3000;     ///< committed burst size
    std::uint64_t ebs_bytes = 6000;     ///< excess burst size
  };

  Meter(std::string name, std::size_t size, Config config);

  const std::string& name() const { return name_; }
  std::size_t size() const { return cells_.size(); }
  const Config& config() const { return config_; }

  /// Meter `bytes` against cell `idx` at time `now`; returns the color and
  /// (for green/yellow) debits the corresponding bucket.
  MeterColor execute(std::size_t idx, std::uint64_t bytes, sim::Time now);

 private:
  struct Cell {
    double committed_tokens = 0;  ///< <= cbs
    double excess_tokens = 0;     ///< <= ebs
    sim::Time last_update = sim::Time::zero();
  };

  void refill(Cell& c, sim::Time now) const;

  std::string name_;
  Config config_;
  std::vector<Cell> cells_;
};

}  // namespace edp::pisa
