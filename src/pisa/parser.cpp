#include "pisa/parser.hpp"

#include <utility>

namespace edp::pisa {
namespace {

using net::EthernetHeader;
using net::HulaProbeHeader;
using net::IntReportHeader;
using net::Ipv4Header;
using net::KvHeader;
using net::LivenessHeader;
using net::TcpHeader;
using net::UdpHeader;
using net::VlanHeader;

/// True if the packet has at least `need` bytes from `off`.
bool have(const Phv& phv, std::size_t off, std::size_t need) {
  return off + need <= phv.packet.size();
}

}  // namespace

void Parser::add_state(const std::string& name, ParseState state) {
  states_[name] = std::move(state);
  standard_graph_ = false;  // custom graph: use the generic dispatcher
}

Parser Parser::standard() {
  Parser p;

  p.add_state("start", [](Phv&, std::size_t off) {
    return ParseStep{"ethernet", off};
  });

  p.add_state("ethernet", [](Phv& phv, std::size_t off) -> ParseStep {
    if (!have(phv, off, EthernetHeader::kSize)) {
      return {Parser::kReject, off};
    }
    phv.eth = EthernetHeader::decode(phv.packet, off);
    off += EthernetHeader::kSize;
    switch (phv.eth->ether_type) {
      case net::kEtherTypeVlan:
        return {"vlan", off};
      case net::kEtherTypeIpv4:
        return {"ipv4", off};
      case net::kEtherTypeHula:
        return {"hula", off};
      case net::kEtherTypeLiveness:
        return {"liveness", off};
      case net::kEtherTypeCarrier:
        // Event-metadata carrier frame: nothing further to parse.
        return {Parser::kAccept, off};
      default:
        return {Parser::kAccept, off};
    }
  });

  p.add_state("vlan", [](Phv& phv, std::size_t off) -> ParseStep {
    if (!have(phv, off, VlanHeader::kSize)) {
      return {Parser::kReject, off};
    }
    phv.vlan = VlanHeader::decode(phv.packet, off);
    off += VlanHeader::kSize;
    switch (phv.vlan->ether_type) {
      case net::kEtherTypeIpv4:
        return {"ipv4", off};
      default:
        return {Parser::kAccept, off};
    }
  });

  p.add_state("ipv4", [](Phv& phv, std::size_t off) -> ParseStep {
    if (!have(phv, off, Ipv4Header::kSize)) {
      return {Parser::kReject, off};
    }
    phv.ipv4 = Ipv4Header::decode(phv.packet, off);
    off += Ipv4Header::kSize;
    switch (phv.ipv4->protocol) {
      case net::kIpProtoTcp:
        return {"tcp", off};
      case net::kIpProtoUdp:
        return {"udp", off};
      default:
        return {Parser::kAccept, off};
    }
  });

  p.add_state("tcp", [](Phv& phv, std::size_t off) -> ParseStep {
    if (!have(phv, off, TcpHeader::kSize)) {
      return {Parser::kReject, off};
    }
    phv.tcp = TcpHeader::decode(phv.packet, off);
    return {Parser::kAccept, off + TcpHeader::kSize};
  });

  p.add_state("udp", [](Phv& phv, std::size_t off) -> ParseStep {
    if (!have(phv, off, UdpHeader::kSize)) {
      return {Parser::kReject, off};
    }
    phv.udp = UdpHeader::decode(phv.packet, off);
    off += UdpHeader::kSize;
    // App protocols are recognized on either port so that replies (which
    // carry the well-known port as the *source*) parse too.
    if (phv.udp->dst_port == net::kPortKvCache ||
        phv.udp->src_port == net::kPortKvCache) {
      return {"kv", off};
    }
    if (phv.udp->dst_port == net::kPortIntReport ||
        phv.udp->src_port == net::kPortIntReport) {
      return {"int_report", off};
    }
    return {Parser::kAccept, off};
  });

  p.add_state("kv", [](Phv& phv, std::size_t off) -> ParseStep {
    if (!have(phv, off, KvHeader::kSize)) {
      return {Parser::kReject, off};
    }
    phv.kv = KvHeader::decode(phv.packet, off);
    return {Parser::kAccept, off + KvHeader::kSize};
  });

  p.add_state("int_report", [](Phv& phv, std::size_t off) -> ParseStep {
    if (!have(phv, off, IntReportHeader::kSize)) {
      return {Parser::kReject, off};
    }
    phv.int_report = IntReportHeader::decode(phv.packet, off);
    return {Parser::kAccept, off + IntReportHeader::kSize};
  });

  p.add_state("hula", [](Phv& phv, std::size_t off) -> ParseStep {
    if (!have(phv, off, HulaProbeHeader::kSize)) {
      return {Parser::kReject, off};
    }
    phv.hula = HulaProbeHeader::decode(phv.packet, off);
    return {Parser::kAccept, off + HulaProbeHeader::kSize};
  });

  p.add_state("liveness", [](Phv& phv, std::size_t off) -> ParseStep {
    if (!have(phv, off, LivenessHeader::kSize)) {
      return {Parser::kReject, off};
    }
    phv.liveness = LivenessHeader::decode(phv.packet, off);
    return {Parser::kAccept, off + LivenessHeader::kSize};
  });

  // The registered graph above is exactly the compiled parse_standard()
  // below; flag it so parse() can skip the name-dispatched loop (add_state
  // cleared the flag on every registration).
  p.standard_graph_ = true;
  return p;
}

void Parser::parse_standard(Phv& phv) {
  // Mirrors the standard() state lambdas one-for-one: same decode calls in
  // the same order, same accept/reject offsets — only the dispatch differs.
  const auto accept = [&phv](std::size_t off) { phv.payload_offset = off; };
  const auto reject = [&phv](std::size_t off) {
    phv.payload_offset = off;
    phv.parse_error = true;
  };

  std::size_t off = 0;
  if (!have(phv, off, EthernetHeader::kSize)) {
    return reject(off);
  }
  phv.eth = EthernetHeader::decode(phv.packet, off);
  off += EthernetHeader::kSize;
  std::uint16_t ether_type = phv.eth->ether_type;

  if (ether_type == net::kEtherTypeVlan) {
    if (!have(phv, off, VlanHeader::kSize)) {
      return reject(off);
    }
    phv.vlan = VlanHeader::decode(phv.packet, off);
    off += VlanHeader::kSize;
    ether_type = phv.vlan->ether_type;
    if (ether_type != net::kEtherTypeIpv4) {
      return accept(off);
    }
  }

  switch (ether_type) {
    case net::kEtherTypeIpv4:
      break;  // continue below
    case net::kEtherTypeHula:
      if (!have(phv, off, HulaProbeHeader::kSize)) {
        return reject(off);
      }
      phv.hula = HulaProbeHeader::decode(phv.packet, off);
      return accept(off + HulaProbeHeader::kSize);
    case net::kEtherTypeLiveness:
      if (!have(phv, off, LivenessHeader::kSize)) {
        return reject(off);
      }
      phv.liveness = LivenessHeader::decode(phv.packet, off);
      return accept(off + LivenessHeader::kSize);
    default:
      // Carrier frames and unknown EtherTypes both accept as-is.
      return accept(off);
  }

  if (!have(phv, off, Ipv4Header::kSize)) {
    return reject(off);
  }
  phv.ipv4 = Ipv4Header::decode(phv.packet, off);
  off += Ipv4Header::kSize;
  switch (phv.ipv4->protocol) {
    case net::kIpProtoTcp:
      if (!have(phv, off, TcpHeader::kSize)) {
        return reject(off);
      }
      phv.tcp = TcpHeader::decode(phv.packet, off);
      return accept(off + TcpHeader::kSize);
    case net::kIpProtoUdp:
      break;  // continue below
    default:
      return accept(off);
  }

  if (!have(phv, off, UdpHeader::kSize)) {
    return reject(off);
  }
  phv.udp = UdpHeader::decode(phv.packet, off);
  off += UdpHeader::kSize;
  // App protocols are recognized on either port so that replies (which
  // carry the well-known port as the *source*) parse too.
  if (phv.udp->dst_port == net::kPortKvCache ||
      phv.udp->src_port == net::kPortKvCache) {
    if (!have(phv, off, KvHeader::kSize)) {
      return reject(off);
    }
    phv.kv = KvHeader::decode(phv.packet, off);
    return accept(off + KvHeader::kSize);
  }
  if (phv.udp->dst_port == net::kPortIntReport ||
      phv.udp->src_port == net::kPortIntReport) {
    if (!have(phv, off, IntReportHeader::kSize)) {
      return reject(off);
    }
    phv.int_report = IntReportHeader::decode(phv.packet, off);
    return accept(off + IntReportHeader::kSize);
  }
  return accept(off);
}

Phv Parser::parse(net::Packet packet) const {
  Phv phv;
  phv.std_meta.packet_length = static_cast<std::uint32_t>(packet.size());
  phv.std_meta.ingress_port = packet.meta().ingress_port;
  phv.std_meta.ingress_timestamp = packet.meta().arrival;
  phv.packet = std::move(packet);

  if (standard_graph_) {
    parse_standard(phv);
    return phv;
  }

  std::string_view state = "start";
  std::size_t off = 0;
  for (std::size_t step = 0; step < kMaxSteps; ++step) {
    if (state == kAccept) {
      phv.payload_offset = off;
      return phv;
    }
    if (state == kReject) {
      phv.payload_offset = off;
      phv.parse_error = true;
      return phv;
    }
    // Heterogeneous lookup: the view indexes the map directly, so a
    // transition costs one hash — no temporary std::string.
    const auto it = states_.find(state);
    if (it == states_.end()) {
      phv.parse_error = true;
      return phv;
    }
    const ParseStep next = it->second(phv, off);
    state = next.next_state;
    off = next.offset;
  }
  // Exceeded the loop guard: treat as a parse error.
  phv.parse_error = true;
  return phv;
}

}  // namespace edp::pisa
