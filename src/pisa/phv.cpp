#include "pisa/phv.hpp"

#include <cstdio>
#include <string>

namespace edp::pisa {

/// Debug rendering of a PHV: which headers are valid plus key fields.
/// Declared here (not in the header) so tests/tools can opt in without
/// pulling <string> formatting into the hot path.
std::string describe(const Phv& phv);

std::string describe(const Phv& phv) {
  std::string out = "phv[";
  if (phv.eth) {
    out += "eth(" + std::to_string(phv.eth->ether_type) + ") ";
  }
  if (phv.vlan) {
    out += "vlan(" + std::to_string(phv.vlan->vid) + ") ";
  }
  if (phv.ipv4) {
    out += "ipv4(" + phv.ipv4->src.to_string() + "->" +
           phv.ipv4->dst.to_string() + ") ";
  }
  if (phv.tcp) {
    out += "tcp ";
  }
  if (phv.udp) {
    out += "udp ";
  }
  if (phv.hula) {
    out += "hula ";
  }
  if (phv.liveness) {
    out += "live ";
  }
  if (phv.int_report) {
    out += "int ";
  }
  if (phv.kv) {
    out += "kv ";
  }
  char meta[96];
  std::snprintf(meta, sizeof meta, "in=%u out=%u len=%u%s%s]",
                phv.std_meta.ingress_port, phv.std_meta.egress_port,
                phv.std_meta.packet_length, phv.std_meta.drop ? " DROP" : "",
                phv.parse_error ? " PARSE_ERR" : "");
  out += meta;
  return out;
}

}  // namespace edp::pisa
